// CtrlSharding: the sharded, replicated SDN controller. The mapping table
// is split across four shards by consistent hash of (VNI, vGID); each shard
// has a push-replicated standby. The example connects two RDMA pairs, then
// crashes one shard's primary mid-workload: its standby is promoted with
// the replicated table under a bumped epoch, lease renewals repair the
// replication-lag tail, and the other three shards — and the connections
// they own — never notice.
package main

import (
	"fmt"
	"log"

	"masq"
	"masq/internal/cluster"
	"masq/internal/controller"
	mqbackend "masq/internal/masq"
	"masq/internal/simtime"
)

func main() {
	fmt.Println("== sharded, replicated SDN controller ==")

	cfg := masq.DefaultConfig()
	cfg.Hosts = 3
	cfg.CtrlShards = 4              // four mapping-table shards
	cfg.Ctrl.Replicate = true       // each with a push-replicated standby
	cfg.Ctrl.ReplDelay = masq.Us(20)
	cfg.Ctrl.FailoverDetect = masq.Ms(2)
	cfg.Masq.PushDown = true
	cfg.Masq.LeaseRenewEvery = masq.Ms(1)
	cfg.Ctrl.LeaseTTL = masq.Ms(20)
	tb := masq.NewTestbed(cfg)
	tb.AddTenant(100, "acme")
	tb.AllowAll(100)

	mk := func(host int, last byte) *cluster.Node {
		n, err := tb.NewNode(masq.ModeMasQ, host, 100, masq.NewIP(10, 0, 3, last))
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	a, b := mk(0, 1), mk(1, 2) // pair 1
	c, d := mk(2, 3), mk(1, 4) // pair 2

	// Connect both pairs.
	tb.Eng.Spawn("wire", func(p *simtime.Proc) {
		for i, pair := range [][2]*cluster.Node{{a, b}, {c, d}} {
			cep, err := pair[0].Setup(p, cluster.DefaultEndpointOpts())
			if err != nil {
				log.Fatal(err)
			}
			sep, err := pair[1].Setup(p, cluster.DefaultEndpointOpts())
			if err != nil {
				log.Fatal(err)
			}
			se, ce := cluster.Pair(tb.Eng, sep, cep, uint16(7000+i))
			if err := se.Wait(p); err != nil {
				log.Fatal(err)
			}
			if err := ce.Wait(p); err != nil {
				log.Fatal(err)
			}
		}
	})
	tb.Eng.Run()

	// Every node's (VNI, vGID) key hashes to one shard — that shard owns
	// its registration, lease, and rename pushes.
	fmt.Println("\nshard ownership:")
	for _, n := range []*cluster.Node{a, b, c, d} {
		vb := n.Provider.(*mqbackend.Frontend).VBond()
		k := controller.Key{VNI: vb.VNI(), VGID: vb.GID()}
		fmt.Printf("  %-3s %v -> shard %d\n", n.Name, vb.VIP(), tb.CtrlSharded.Owner(k))
	}

	vb := a.Provider.(*mqbackend.Frontend).VBond()
	victim := tb.CtrlSharded.Owner(controller.Key{VNI: vb.VNI(), VGID: vb.GID()})

	base := tb.Eng.Now()
	tb.StartLeases(base.Add(masq.Ms(40)))
	tb.Eng.At(base.Add(masq.Ms(10)), func() {
		fmt.Printf("\n[%v] crashing shard %d's primary (it owns %s's mapping)\n",
			masq.Ms(10), victim, a.Name)
		tb.CtrlSharded.CrashShard(victim)
	})

	stats := make([]controller.ShardStats, cfg.CtrlShards)
	tb.Eng.At(base.Add(masq.Ms(30)), func() {
		for i := range stats {
			stats[i] = tb.CtrlSharded.ShardStats(i)
		}
	})
	tb.Eng.Run()

	fmt.Printf("\n20 ms later (standby promoted after the %v detect window):\n", cfg.Ctrl.FailoverDetect)
	fmt.Println("  shard  epoch  leases  failovers  fenced  down")
	for i, st := range stats {
		mark := ""
		if i == victim {
			mark = "  <- promoted standby"
		}
		fmt.Printf("  %5d  %5d  %6d  %9d  %6d  %5v%s\n",
			i, st.Epoch, st.Leases, st.Failovers, st.FencedWrites, st.Down, mark)
	}
	fmt.Println("\nthe failed-over shard serves at epoch 2; the other shards kept epoch 1 —")
	fmt.Println("their leases, pushes, and connections were untouched the whole time.")
}
