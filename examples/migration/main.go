// Migration: moving a VM with live RDMA connections. RDMA bypasses the
// hypervisor, so a VM with registered (pinned) memory cannot simply be
// moved. The paper's Sec. 5 endorses an application-assisted scheme
// (disconnect RDMA, fall back to TCP, migrate, re-establish); this repo
// also implements the transparent alternative — Testbed.LiveMigrateNode —
// where the engine freezes the VM, carries the QP/CQ/MR state and guest
// memory across with iterative pre-copy, and the controller renames the
// endpoint in place on every peer. The connection survives: same QP
// handles, same MR keys, zero lost or duplicated completions.
//
// This example runs both on a three-host testbed: a transparent live
// migration under a streaming client, then the app-assisted cycle for
// contrast.
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	cfg := masq.DefaultConfig()
	cfg.Hosts = 3
	tb := masq.NewTestbed(cfg)
	tb.AddTenant(100, "acme")
	tb.AllowAll(100)

	client, err := tb.NewNode(masq.ModeMasQ, 0, 100, masq.NewIP(192, 168, 1, 1))
	if err != nil {
		log.Fatal(err)
	}
	server, err := tb.NewNode(masq.ModeMasQ, 1, 100, masq.NewIP(192, 168, 1, 2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== transparent live migration of an RDMA-attached VM ==")
	fmt.Printf("server VM %v starts on %s (%v)\n\n", server.VIP, server.Host.Name, server.Host.IP)

	run := func(name string, fn func(p *masq.Proc) error) {
		errCh := make([]error, 1)
		tb.Eng.Spawn(name, func(p *masq.Proc) { errCh[0] = fn(p) })
		tb.Eng.Run()
		if errCh[0] != nil {
			log.Fatalf("%s: %v", name, errCh[0])
		}
	}

	// Phase 1: connect once.
	var cep, sep *masq.Endpoint
	run("connect", func(p *masq.Proc) error {
		var err error
		if cep, err = client.Setup(p, masq.DefaultEndpointOpts()); err != nil {
			return err
		}
		if sep, err = server.Setup(p, masq.DefaultEndpointOpts()); err != nil {
			return err
		}
		if err := cep.ConnectRC(p, sep.Info()); err != nil {
			return err
		}
		return sep.ConnectRC(p, cep.Info())
	})

	// Phase 2: stream messages while the server VM moves host1 -> host2.
	// The application never tears anything down — the engine suspends the
	// peers, captures the QP/MR/CQ state, pre-copies the guest memory, and
	// the controller pushes the rename so the client's QP keeps working.
	const total, msgLen = 16, 64
	received := 0
	tb.Eng.Spawn("server-recv", func(p *masq.Proc) {
		for i := 0; i < total; i++ {
			sep.QP.PostRecv(p, masq.RecvWR{
				WRID: uint64(i), Addr: sep.Buf + uint64(i*msgLen), LKey: sep.MR.LKey(), Len: msgLen,
			})
		}
		for i := 0; i < total; i++ {
			if wc, ok := sep.RCQ.WaitTimeout(p, masq.Ms(100)); ok && wc.Status == masq.WCSuccess {
				received++
			}
		}
	})
	tb.Eng.Spawn("client-send", func(p *masq.Proc) {
		p.Sleep(masq.Us(50))
		for i := 0; i < total; i++ {
			client.Write(cep.Buf+uint64(i*msgLen), []byte(fmt.Sprintf("live msg %02d", i)))
			cep.QP.PostSend(p, masq.SendWR{
				WRID: uint64(i), Op: masq.WRSend,
				LocalAddr: cep.Buf + uint64(i*msgLen), LKey: cep.MR.LKey(), Len: msgLen,
			})
			p.Sleep(masq.Us(250))
		}
	})
	// Keep some guest state around to prove the memory image moves.
	marker, _ := server.Alloc(4096)
	server.Write(marker, []byte("in-guest state"))

	var rep *masq.MigrateReport
	run("migrate", func(p *masq.Proc) error {
		p.Sleep(masq.Ms(1)) // land mid-stream
		rep, err = tb.LiveMigrateNode(p, server, 2, masq.MigrateOpts{
			DirtyRate:     0.5e9, // guest dirties at half the copy bandwidth
			CopyBandwidth: 1e9,
		})
		return err
	})
	fmt.Printf("VM live-migrated to %s (%v) — the connection stayed up\n", server.Host.Name, server.Host.IP)
	fmt.Printf("pre-copy: %d rounds, %d KB shipped while the VM ran\n", rep.PreCopyRounds, rep.PreCopyBytes/1024)
	fmt.Printf("blackout %v = freeze %v + stop-copy %v + restore %v + commit %v\n",
		rep.Blackout, rep.FreezeTime, rep.StopCopyTime, rep.RestoreTime, rep.CommitTime)
	fmt.Printf("carried: %d QPs, %d MRs, %d tracked connections\n", rep.QPs, rep.MRs, rep.Conns)
	fmt.Printf("stream across the move: %d/%d messages delivered — zero lost, zero duplicated\n", received, total)
	buf := make([]byte, 14)
	server.Read(marker, buf)
	fmt.Printf("guest memory preserved: %q\n", buf)

	// Phase 3: the same QP keeps carrying traffic from its new home.
	run("after", func(p *masq.Proc) error {
		sep.QP.PostRecv(p, masq.RecvWR{WRID: 99, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: msgLen})
		client.Write(cep.Buf, []byte("after migration"))
		if err := cep.QP.PostSend(p, masq.SendWR{
			WRID: 99, Op: masq.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 15,
		}); err != nil {
			return err
		}
		wc := sep.RCQ.Wait(p)
		got := make([]byte, wc.ByteLen)
		server.Read(sep.Buf, got)
		fmt.Printf("\n[%8v] same QP after the move: %q (status %v)\n", p.Now(), got, wc.Status)
		return nil
	})
	fmt.Printf("RNIC traffic: host1 rx %d msgs (old home), host2 rx %d msgs (new home)\n",
		tb.Hosts[1].Dev.Stats.RxMsgs, tb.Hosts[2].Dev.Stats.RxMsgs)
	fmt.Println("the client never learned a physical address — the controller renamed the endpoint in place")

	// For contrast, the paper's Sec. 5 application-assisted scheme: the app
	// must disconnect (fall back to TCP), migrate cold, and re-establish.
	fmt.Println("\n== application-assisted migration (Sec. 5), for contrast ==")
	if err := tb.MigrateNode(server, 1); err != nil {
		fmt.Printf("naive cold migration refused while memory is pinned: %v\n", err)
	}
	run("teardown", func(p *masq.Proc) error {
		fmt.Println("application disconnects: destroy QP, deregister MR (fall back to TCP)")
		if err := sep.QP.Destroy(p); err != nil {
			return err
		}
		return sep.MR.Dereg(p)
	})
	if err := tb.MigrateNode(server, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM cold-migrated back to %s; the app must now rebuild its connections\n", server.Host.Name)
	run("reconnect", func(p *masq.Proc) error {
		sep2, err := server.Setup(p, masq.DefaultEndpointOpts())
		if err != nil {
			return err
		}
		cep2, err := client.Setup(p, masq.DefaultEndpointOpts())
		if err != nil {
			return err
		}
		if err := cep2.ConnectRC(p, sep2.Info()); err != nil {
			return err
		}
		if err := sep2.ConnectRC(p, cep2.Info()); err != nil {
			return err
		}
		fmt.Println("re-established over RDMA — RConnrename re-resolved the same vGID")
		return nil
	})
}
