// Migration: the live-migration extension sketched in the paper's Sec. 5.
// RDMA bypasses the hypervisor, so a VM with registered (pinned) memory
// cannot simply be moved; the AccelNet-style, application-assisted scheme
// the paper endorses is: disconnect RDMA, fall back to TCP, migrate,
// re-establish. This example runs the whole cycle on a three-host testbed
// and shows vBond re-registering the (VNI, vGID) mapping so the peer finds
// the VM at its new home.
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	cfg := masq.DefaultConfig()
	cfg.Hosts = 3
	tb := masq.NewTestbed(cfg)
	tb.AddTenant(100, "acme")
	tb.AllowAll(100)

	client, err := tb.NewNode(masq.ModeMasQ, 0, 100, masq.NewIP(192, 168, 1, 1))
	if err != nil {
		log.Fatal(err)
	}
	server, err := tb.NewNode(masq.ModeMasQ, 1, 100, masq.NewIP(192, 168, 1, 2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== live migration of an RDMA-attached VM ==")
	fmt.Printf("server VM %v starts on %s (%v)\n\n", server.VIP, server.Host.Name, server.Host.IP)

	// Phase 1: connect and use the RDMA path.
	var cep, sep *masq.Endpoint
	run := func(name string, fn func(p *masq.Proc) error) {
		errCh := make([]error, 1)
		tb.Eng.Spawn(name, func(p *masq.Proc) { errCh[0] = fn(p) })
		tb.Eng.Run()
		if errCh[0] != nil {
			log.Fatalf("%s: %v", name, errCh[0])
		}
	}
	run("connect", func(p *masq.Proc) error {
		var err error
		if cep, err = client.Setup(p, masq.DefaultEndpointOpts()); err != nil {
			return err
		}
		if sep, err = server.Setup(p, masq.DefaultEndpointOpts()); err != nil {
			return err
		}
		if err := cep.ConnectRC(p, sep.Info()); err != nil {
			return err
		}
		if err := sep.ConnectRC(p, cep.Info()); err != nil {
			return err
		}
		sep.QP.PostRecv(p, masq.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: 64})
		client.Write(cep.Buf, []byte("before migration"))
		cep.QP.PostSend(p, masq.SendWR{WRID: 2, Op: masq.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 16})
		wc := sep.RCQ.Wait(p)
		fmt.Printf("[%8v] transfer over RDMA: status %v\n", p.Now(), wc.Status)
		return nil
	})

	// A naive migration attempt must fail: guest memory is pinned.
	if err := tb.MigrateNode(server, 2); err != nil {
		fmt.Printf("\nnaive migration refused: %v\n", err)
	}

	// Phase 2: application-assisted teardown (fall back to the TCP path),
	// then migrate.
	run("teardown", func(p *masq.Proc) error {
		fmt.Println("\napplication disconnects: destroy QP, deregister MR (fall back to TCP)")
		if err := sep.QP.Destroy(p); err != nil {
			return err
		}
		return sep.MR.Dereg(p)
	})
	// Keep some guest state around to prove the memory image moves.
	marker, _ := server.Alloc(4096)
	server.Write(marker, []byte("in-guest state"))

	if err := tb.MigrateNode(server, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM migrated to %s (%v)\n", server.Host.Name, server.Host.IP)
	buf := make([]byte, 14)
	server.Read(marker, buf)
	fmt.Printf("guest memory preserved: %q\n", buf)

	// Phase 3: re-establish. The client still only knows the server's
	// virtual GID; the controller now maps it to host2.
	run("reconnect", func(p *masq.Proc) error {
		sep2, err := server.Setup(p, masq.DefaultEndpointOpts())
		if err != nil {
			return err
		}
		cep2, err := client.Setup(p, masq.DefaultEndpointOpts())
		if err != nil {
			return err
		}
		if err := cep2.ConnectRC(p, sep2.Info()); err != nil {
			return err
		}
		if err := sep2.ConnectRC(p, cep2.Info()); err != nil {
			return err
		}
		sep2.QP.PostRecv(p, masq.RecvWR{WRID: 1, Addr: sep2.Buf, LKey: sep2.MR.LKey(), Len: 64})
		client.Write(cep2.Buf, []byte("after migration"))
		cep2.QP.PostSend(p, masq.SendWR{WRID: 2, Op: masq.WRSend, LocalAddr: cep2.Buf, LKey: cep2.MR.LKey(), Len: 15})
		wc := sep2.RCQ.Wait(p)
		got := make([]byte, wc.ByteLen)
		server.Read(sep2.Buf, got)
		fmt.Printf("\n[%8v] transfer re-established: %q (status %v)\n", p.Now(), got, wc.Status)
		return nil
	})

	fmt.Printf("\nRNIC traffic after migration: host1 rx %d msgs (old home), host2 rx %d msgs (new home)\n",
		tb.Hosts[1].Dev.Stats.RxMsgs, tb.Hosts[2].Dev.Stats.RxMsgs)
	fmt.Println("the client never learned a physical address — RConnrename re-resolved the same vGID")
}
