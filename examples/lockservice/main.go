// Lockservice: RDMA atomics on a MasQ VPC. Two client VMs coordinate
// through one-sided operations against a third VM's memory — a
// compare-and-swap spinlock and a fetch-and-add counter — with zero CPU
// involvement at the "server". This is the building block of RDMA lock
// services and sequencers (FaRM-style), here running over virtualized
// queue pairs.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"masq"
)

const (
	lockOff    = 0 // 8-byte CAS spinlock
	counterOff = 8 // 8-byte FAA sequencer
	scratchOff = 64
)

func main() {
	tb := masq.NewTestbed(masq.DefaultConfig())
	tb.AddTenant(100, "locks")
	tb.AllowAll(100)

	serverNode, err := tb.NewNode(masq.ModeMasQ, 1, 100, masq.NewIP(10, 0, 0, 100))
	if err != nil {
		log.Fatal(err)
	}
	clientA, err := tb.NewNode(masq.ModeMasQ, 0, 100, masq.NewIP(10, 0, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	clientB, err := tb.NewNode(masq.ModeMasQ, 0, 100, masq.NewIP(10, 0, 0, 2))
	if err != nil {
		log.Fatal(err)
	}

	// The server exposes ONE memory region; both client QPs on the server
	// side must live in the same protection domain as that region, so the
	// server resources are built by hand: one PD, one MR, one QP per
	// client (a fresh Setup per client would mint separate PDs and the
	// RNIC would rightly refuse cross-PD atomics).
	opts := masq.DefaultEndpointOpts()
	opts.Access |= masq.AccessRemoteAtomic
	type conn struct {
		cli  *masq.Endpoint
		node *masq.Node
		name string
	}
	var region masq.ConnInfo
	var srvQPs []masq.QP
	var srvGID masq.GID
	{
		errs := make([]error, 1)
		tb.Eng.Spawn("server-setup", func(p *masq.Proc) {
			dev, err := serverNode.Device(p)
			if err != nil {
				errs[0] = err
				return
			}
			pd, _ := dev.AllocPD(p)
			va, _ := serverNode.Alloc(4096)
			mr, err := dev.RegMR(p, pd, va, 4096, masq.AccessLocalWrite|masq.AccessRemoteAtomic)
			if err != nil {
				errs[0] = err
				return
			}
			gid, _ := dev.QueryGID(p)
			srvGID = gid
			for i := 0; i < 2; i++ {
				cq, _ := dev.CreateCQ(p, 64)
				qp, err := dev.CreateQP(p, pd, cq, cq, masq.RC, masq.DefaultEndpointOpts().Caps)
				if err != nil {
					errs[0] = err
					return
				}
				srvQPs = append(srvQPs, qp)
			}
			region = masq.ConnInfo{GID: gid, RKey: mr.RKey(), Addr: va}
		})
		tb.Eng.Run()
		if errs[0] != nil {
			log.Fatal(errs[0])
		}
	}
	wire := func(n *masq.Node, name string, srvQP masq.QP) *conn {
		c := &conn{node: n, name: name}
		errs := make([]error, 1)
		tb.Eng.Spawn("wire-"+name, func(p *masq.Proc) {
			cep, err := n.Setup(p, opts)
			if err != nil {
				errs[0] = err
				return
			}
			if err := cep.ConnectRC(p, masq.ConnInfo{GID: srvGID, QPN: srvQP.Num()}); err != nil {
				errs[0] = err
				return
			}
			if err := srvQP.Modify(p, masq.Attr{ToState: masq.StateInit}); err != nil {
				errs[0] = err
				return
			}
			if err := srvQP.Modify(p, masq.Attr{ToState: masq.StateRTR, DGID: cep.GID, DQPN: cep.QP.Num()}); err != nil {
				errs[0] = err
				return
			}
			if err := srvQP.Modify(p, masq.Attr{ToState: masq.StateRTS}); err != nil {
				errs[0] = err
				return
			}
			c.cli = cep
		})
		tb.Eng.Run()
		if errs[0] != nil {
			log.Fatalf("%s: %v", name, errs[0])
		}
		return c
	}
	ca := wire(clientA, "A", srvQPs[0])
	cb := wire(clientB, "B", srvQPs[1])

	fmt.Println("== RDMA lock service over MasQ ==")
	fmt.Printf("lock server VM %v exposes an 8B CAS lock and an 8B FAA sequencer\n\n", serverNode.VIP)

	atomicOp := func(p *masq.Proc, c *conn, op masq.SendWR) uint64 {
		op.LocalAddr = c.cli.Buf + scratchOff
		op.LKey = c.cli.MR.LKey()
		op.RKey = region.RKey
		if err := c.cli.QP.PostSend(p, op); err != nil {
			log.Fatal(err)
		}
		wc := c.cli.SCQ.Wait(p)
		if wc.Status != masq.WCSuccess {
			log.Fatalf("%s atomic failed: %v", c.name, wc.Status)
		}
		var b [8]byte
		c.node.Read(c.cli.Buf+scratchOff, b[:])
		return binary.BigEndian.Uint64(b[:])
	}

	// Each client: grab the lock by CAS(0→id), bump the sequencer 3 times
	// while holding it, release by CAS(id→0).
	var order []string
	worker := func(c *conn, id uint64) {
		tb.Eng.Spawn("worker-"+c.name, func(p *masq.Proc) {
			for round := 0; round < 2; round++ {
				spins := 0
				for {
					orig := atomicOp(p, c, masq.SendWR{Op: masq.WRAtomicCSwap, RemoteAddr: region.Addr + lockOff, Compare: 0, SwapAdd: id})
					if orig == 0 {
						break // acquired
					}
					spins++
					p.Sleep(masq.Us(2)) // backoff
				}
				var seqs []uint64
				for i := 0; i < 3; i++ {
					seqs = append(seqs, atomicOp(p, c, masq.SendWR{Op: masq.WRAtomicFAdd, RemoteAddr: region.Addr + counterOff, SwapAdd: 1}))
				}
				order = append(order, fmt.Sprintf("[%8v] client %s held the lock (spun %d): tickets %v", p.Now(), c.name, spins, seqs))
				if orig := atomicOp(p, c, masq.SendWR{Op: masq.WRAtomicCSwap, RemoteAddr: region.Addr + lockOff, Compare: id, SwapAdd: 0}); orig != id {
					log.Fatalf("lock stolen?! owner field held %d", orig)
				}
			}
		})
	}
	worker(ca, 1)
	worker(cb, 2)
	tb.Eng.Run()

	for _, l := range order {
		fmt.Println(l)
	}
	// Tickets must be 0..11 without duplicates: read the final counter.
	final := make([]byte, 8)
	serverNode.Read(region.Addr+counterOff, final)
	fmt.Printf("\nfinal sequencer value: %d (4 critical sections x 3 tickets)\n", binary.BigEndian.Uint64(final))
	fmt.Println("the lock server's CPU did nothing — every operation was a one-sided RDMA atomic")
}
