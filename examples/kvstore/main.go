// KVStore: the paper's HERD-style key-value service (Sec. 4.4.2) on a
// MasQ VPC, compared against bare metal and FreeFlow — the Fig. 21
// experiment as an application you can poke at.
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	cfg := masq.DefaultKVSConfig()
	cfg.KeysPerW = 1024

	fmt.Println("== RDMA key-value store on a VPC ==")
	fmt.Printf("server: %d workers, %d keys each, %dB keys / %dB values, %.0f%% GET\n\n",
		cfg.Workers, cfg.KeysPerW, cfg.KeySize, cfg.ValSize, cfg.GetFraction*100)

	for _, mode := range []masq.Mode{masq.ModeHost, masq.ModeMasQ, masq.ModeFreeFlow} {
		tb := masq.NewTestbed(masq.DefaultConfig())
		tb.AddTenant(100, "kv")
		tb.AllowAll(100)
		server, err := tb.NewNode(mode, 1, 100, masq.NewIP(10, 0, 0, 2))
		if err != nil {
			log.Fatal(err)
		}
		client, err := tb.NewNode(mode, 0, 100, masq.NewIP(10, 0, 0, 1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := masq.RunKVS(tb, server, client, 14, 500, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  14 clients  %7d ops in %8v  ->  %5.2f Mops (hit rate %.1f%%)\n",
			mode, res.Ops, res.Elapsed, res.Mops(), float64(res.Hits)/float64(res.Ops)*100)
	}
	fmt.Println("\npaper's Fig. 21 shape: MasQ == Host-RDMA (~9.7 Mops); FreeFlow FFR-bound (~1 Mops)")
}
