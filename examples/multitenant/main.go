// Multitenant: the security story of the paper, end to end. Two tenants
// with OVERLAPPING virtual IPs share the physical testbed; RConnrename
// keeps their RDMA traffic apart, RConntrack refuses connections the
// security group does not allow, and revoking a rule mid-transfer tears a
// live connection down by forcing its QP into the ERROR state (Fig. 17's
// kill, Table 2's semantics).
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	tb := masq.NewTestbed(masq.DefaultConfig())
	acme := tb.AddTenant(100, "acme")
	tb.AddTenant(200, "globex")

	// acme: allow RDMA only between its two subnets, plus TCP everywhere
	// (the out-of-band channel). globex: open.
	all, _ := masq.ParseCIDR("0.0.0.0/0")
	subA, _ := masq.ParseCIDR("192.168.1.0/24")
	subB, _ := masq.ParseCIDR("192.168.2.0/24")
	acme.Policy.AddRule(masq.Rule{Priority: 1, Proto: masq.ProtoTCP, Src: all, Dst: all, Action: masq.Allow})
	rdmaRule := acme.Policy.AddRule(masq.Rule{Priority: 10, Proto: masq.ProtoRDMA, Src: subA, Dst: subB, Action: masq.Allow})
	acme.Policy.AddRule(masq.Rule{Priority: 10, Proto: masq.ProtoRDMA, Src: subB, Dst: subA, Action: masq.Allow})
	tb.AllowAll(200)

	node := func(vni uint32, host int, ip masq.IP) *masq.Node {
		n, err := tb.NewNode(masq.ModeMasQ, host, vni, ip)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	// acme VMs in two subnets; globex reuses acme's exact IPs.
	acmeA := node(100, 0, masq.NewIP(192, 168, 1, 1))
	acmeB := node(100, 1, masq.NewIP(192, 168, 2, 1))
	glxA := node(200, 0, masq.NewIP(192, 168, 1, 1))
	glxB := node(200, 1, masq.NewIP(192, 168, 2, 1))

	fmt.Println("== tenant isolation with overlapping IPs ==")
	connect := func(name string, c, s *masq.Node, port uint16) (*masq.Endpoint, *masq.Endpoint, error) {
		var cep, sep *masq.Endpoint
		var firstErr error
		done := false
		tb.Eng.Spawn(name, func(p *masq.Proc) {
			var err error
			if cep, err = c.Setup(p, masq.DefaultEndpointOpts()); err != nil {
				firstErr = err
				done = true
				return
			}
			if sep, err = s.Setup(p, masq.DefaultEndpointOpts()); err != nil {
				firstErr = err
				done = true
				return
			}
			se, ce := masq.Pair(tb.Eng, sep, cep, port)
			if err := se.Wait(p); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := ce.Wait(p); err != nil && firstErr == nil {
				firstErr = err
			}
			done = true
		})
		tb.Eng.Run()
		if !done {
			log.Fatalf("%s: wire-up stalled", name)
		}
		return cep, sep, firstErr
	}

	aC, aS, err := connect("acme", acmeA, acmeB, 7000)
	if err != nil {
		log.Fatalf("acme connect: %v", err)
	}
	fmt.Printf("acme   %v -> %v: connected (QPs %d -> %d)\n", acmeA.VIP, acmeB.VIP, aC.QP.Num(), aS.QP.Num())
	gC, gS, err := connect("globex", glxA, glxB, 7000)
	if err != nil {
		log.Fatalf("globex connect: %v", err)
	}
	fmt.Printf("globex %v -> %v: connected — same virtual IPs, different VNI, no collision\n\n", glxA.VIP, glxB.VIP)

	// Prove the two tenants' identical addresses reach different peers.
	send := func(cep, sep *masq.Endpoint, text string, out *string) {
		tb.Eng.Spawn("srv", func(p *masq.Proc) {
			sep.QP.PostRecv(p, masq.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: sep.Len})
			wc := sep.RCQ.Wait(p)
			buf := make([]byte, wc.ByteLen)
			sep.Node.Read(sep.Buf, buf)
			*out = string(buf)
		})
		tb.Eng.Spawn("cli", func(p *masq.Proc) {
			cep.Node.Write(cep.Buf, []byte(text))
			cep.QP.PostSend(p, masq.SendWR{WRID: 2, Op: masq.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: len(text)})
			cep.SCQ.Wait(p)
		})
	}
	var gotAcme, gotGlx string
	send(aC, aS, "for acme only", &gotAcme)
	send(gC, gS, "for globex only", &gotGlx)
	tb.Eng.Run()
	fmt.Printf("acme's server received:   %q\n", gotAcme)
	fmt.Printf("globex's server received: %q\n\n", gotGlx)

	// A connection the rules do not allow: acme VM to a third subnet.
	fmt.Println("== RConntrack denies an unauthorized connection ==")
	acmeC := node(100, 1, masq.NewIP(192, 168, 3, 1))
	_, _, err = connect("acme-denied", acmeA, acmeC, 7001)
	fmt.Printf("connect 192.168.1.1 -> 192.168.3.1: %v\n\n", err)

	// Revoke the allow rule mid-transfer: Fig. 17's kill.
	fmt.Println("== revoking the rule kills the live connection ==")
	killed := false
	tb.Eng.Spawn("transfer", func(p *masq.Proc) {
		peer := aS.Info()
		for i := 0; ; i++ {
			if err := aC.QP.PostSend(p, masq.SendWR{
				WRID: uint64(i), Op: masq.WRWrite, LocalAddr: aC.Buf, LKey: aC.MR.LKey(),
				Len: 32 * 1024, RemoteAddr: peer.Addr, RKey: peer.RKey,
			}); err != nil {
				fmt.Printf("[%8v] post refused after reset: %v\n", p.Now(), err)
				killed = true
				return
			}
			wc, ok := aC.SCQ.WaitTimeout(p, masq.Ms(100))
			if !ok {
				return
			}
			if wc.Status != masq.WCSuccess {
				fmt.Printf("[%8v] transfer aborted with CQE status %v (QP -> ERROR)\n", p.Now(), wc.Status)
				killed = true
				return
			}
		}
	})
	tb.Eng.Spawn("revoker", func(p *masq.Proc) {
		p.Sleep(masq.Ms(1))
		fmt.Printf("[%8v] operator removes the RDMA allow rule\n", p.Now())
		acme.Policy.RemoveRule(rdmaRule)
	})
	tb.Eng.Run()
	resets := tb.Backend(0).CT.Stats.Resets + tb.Backend(1).CT.Stats.Resets
	fmt.Printf("connection killed: %v (RConntrack resets: %d)\n", killed, resets)
}
