// HPC: an MPI job on a MasQ VPC — 16 ranks round-robin across two hosts
// (the paper's Graph500 setup), running OSU-style collectives and a
// Graph500 BFS with validation. Shows that HPC workloads keep their
// performance when the RDMA network is virtualized.
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	fmt.Println("== MPI + Graph500 on a MasQ VPC ==")

	world := func() *masq.MPIWorld {
		tb := masq.NewTestbed(masq.DefaultConfig())
		tb.AddTenant(100, "hpc")
		tb.AllowAll(100)
		nodes, err := masq.SpawnMPIRanks(tb, masq.ModeMasQ, 100, 16)
		if err != nil {
			log.Fatal(err)
		}
		w, err := masq.NewMPIWorld(tb, nodes, masq.DefaultMPIOptions())
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	// Point-to-point and collectives.
	w := world()
	lat, err := masq.MPILatency(w, 4, 100)
	if err != nil {
		log.Fatal(err)
	}
	w = world()
	bw, err := masq.MPIBandwidth(w, 64*1024, 320, 32)
	if err != nil {
		log.Fatal(err)
	}
	w = world()
	bcast, err := masq.MPIBcastLatency(w, 1024, 10)
	if err != nil {
		log.Fatal(err)
	}
	w = world()
	allred, err := masq.MPIAllreduce(w, 1024, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("osu_latency   4B, 2 ranks:    %v one-way\n", lat)
	fmt.Printf("osu_bw       64KB, 2 ranks:   %.1f Gbps\n", bw)
	fmt.Printf("osu_bcast     1KB, 16 ranks:  %v\n", bcast)
	fmt.Printf("osu_allreduce 1KB, 16 ranks:  %v\n\n", allred)

	// Graph500 kernels with validation (RunBFS validates the parent tree
	// on every rank against the regenerated graph).
	cfg := masq.DefaultGraph500Config()
	fmt.Printf("graph500: scale=%d edgefactor=%d (%d vertices, %d edges), 16 ranks\n",
		cfg.Scale, cfg.EdgeFactor, 1<<cfg.Scale, (1<<cfg.Scale)*cfg.EdgeFactor)

	w = world()
	bfs, err := masq.Graph500BFS(w, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  BFS:  visited %5d vertices, traversed %7d edges in %8v -> %6.1f MTEPS (validated)\n",
		bfs.Visited, bfs.Traversed, bfs.Time, bfs.TEPS/1e6)

	w = world()
	sssp, err := masq.Graph500SSSP(w, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SSSP: visited %5d vertices, relaxed   %7d edges in %8v -> %6.1f MTEPS\n",
		sssp.Visited, sssp.Traversed, sssp.Time, sssp.TEPS/1e6)

	fmt.Println("\npaper's Fig. 20: MasQ shows almost no TEPS degradation vs bare metal")
}
