// Quickstart: two VMs in one VPC exchange messages over MasQ-virtualized
// RDMA — an RC SEND/RECV ping followed by a one-sided RDMA WRITE — and the
// program prints what happened on the (virtual) wire.
package main

import (
	"fmt"
	"log"

	"masq"
)

func main() {
	// A testbed like the paper's: two hosts, 40 Gbps, one tenant, and a
	// connected RC endpoint pair between two MasQ VMs.
	pair, err := masq.NewConnectedPair(masq.DefaultConfig(), masq.ModeMasQ)
	if err != nil {
		log.Fatal(err)
	}
	eng := pair.TB.Eng
	client, server := pair.Client, pair.Server

	fmt.Println("== MasQ quickstart ==")
	fmt.Printf("client VM %v (vGID %v) -> server VM %v\n",
		client.Node.VIP, client.GID, server.Node.VIP)
	fmt.Printf("underlay: host %v -> host %v (RConnrename rewrote the QPC)\n\n",
		pair.TB.Hosts[0].IP, pair.TB.Hosts[1].IP)

	// Two-sided: SEND / RECV.
	eng.Spawn("server", func(p *masq.Proc) {
		s := server
		s.QP.PostRecv(p, masq.RecvWR{WRID: 1, Addr: s.Buf, LKey: s.MR.LKey(), Len: s.Len})
		wc := s.RCQ.Wait(p)
		buf := make([]byte, wc.ByteLen)
		s.Node.Read(s.Buf, buf)
		fmt.Printf("[%8v] server received %q (%d bytes, status %v)\n",
			p.Now(), buf, wc.ByteLen, wc.Status)
	})
	eng.Spawn("client", func(p *masq.Proc) {
		c := client
		msg := []byte("hello through the VPC")
		c.Node.Write(c.Buf, msg)
		start := p.Now()
		c.QP.PostSend(p, masq.SendWR{
			WRID: 2, Op: masq.WRSend, LocalAddr: c.Buf, LKey: c.MR.LKey(), Len: len(msg),
		})
		wc := c.SCQ.Wait(p)
		fmt.Printf("[%8v] client send completed in %v (status %v)\n",
			p.Now(), p.Now().Sub(start), wc.Status)
	})
	eng.Run()

	// One-sided: RDMA WRITE straight into the server's registered buffer —
	// no server CPU involved.
	eng.Spawn("writer", func(p *masq.Proc) {
		c := client
		peer := server.Info()
		payload := []byte("one-sided write, no remote CPU")
		c.Node.Write(c.Buf, payload)
		start := p.Now()
		c.QP.PostSend(p, masq.SendWR{
			WRID: 3, Op: masq.WRWrite, LocalAddr: c.Buf, LKey: c.MR.LKey(), Len: len(payload),
			RemoteAddr: peer.Addr, RKey: peer.RKey,
		})
		wc := c.SCQ.Wait(p)
		buf := make([]byte, len(payload))
		server.Node.Read(server.Buf, buf)
		fmt.Printf("[%8v] RDMA WRITE done in %v (status %v); server memory now holds %q\n",
			p.Now(), p.Now().Sub(start), wc.Status, buf)
	})
	eng.Run()

	d0, d1 := pair.TB.Hosts[0].Dev.Stats, pair.TB.Hosts[1].Dev.Stats
	fmt.Printf("\nwire traffic: host0 tx %d pkts / host1 tx %d pkts, 0 retransmits: %v\n",
		d0.TxPackets, d1.TxPackets, d0.Retransmits+d1.Retransmits == 0)
	fmt.Println("all timing above is virtual time on the simulated testbed")
}
