// Command perftest is the simulation's ib_send_lat / ib_write_lat /
// ib_send_bw / ib_write_bw: it builds a two-host testbed, connects a QP
// pair under the chosen virtualization system, and runs the selected
// microbenchmark.
//
//	perftest -op send_lat -mode masq -size 2 -iters 1000
//	perftest -op write_bw -mode host-rdma -size 65536 -iters 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"masq"
)

var modes = map[string]masq.Mode{
	"host-rdma": masq.ModeHost,
	"sr-iov":    masq.ModeSRIOV,
	"masq":      masq.ModeMasQ,
	"masq-pf":   masq.ModeMasQPF,
	"freeflow":  masq.ModeFreeFlow,
}

func main() {
	op := flag.String("op", "send_lat", "send_lat | write_lat | send_bw | write_bw")
	modeName := flag.String("mode", "masq", "host-rdma | sr-iov | masq | masq-pf | freeflow")
	size := flag.Int("size", 2, "message size in bytes")
	iters := flag.Int("iters", 1000, "iterations")
	window := flag.Int("window", 64, "posting window (bandwidth tests)")
	rate := flag.Float64("rate", 0, "tenant rate limit in Gbps (masq only; 0 = none)")
	pcap := flag.String("pcap", "", "capture the underlay traffic to this pcap file")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the control path to this file")
	flag.Parse()

	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "perftest: unknown mode %q\n", *modeName)
		os.Exit(1)
	}
	cfg := masq.DefaultConfig()
	cfg.Trace = *traceOut != ""
	pair, err := masq.NewConnectedPair(cfg, mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
		os.Exit(1)
	}
	if *rate > 0 {
		if mode != masq.ModeMasQ {
			fmt.Fprintln(os.Stderr, "perftest: -rate applies to masq mode only")
			os.Exit(1)
		}
		if err := pair.TB.Backend(0).SetTenantRateLimit(100, *rate*1e9); err != nil {
			fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
			os.Exit(1)
		}
	}
	eng := pair.TB.Eng
	var tap *masq.LinkTap
	if *pcap != "" {
		tap = pair.TB.Links[0].AttachTap()
	}

	fmt.Printf("# %s, %s, %d B x %d iters\n", *op, *modeName, *size, *iters)
	fmt.Printf("# client VM %v -> server VM %v over hosts %v -> %v\n",
		pair.ClientNode.VIP, pair.ServerNode.VIP, pair.TB.Hosts[0].IP, pair.TB.Hosts[1].IP)

	switch *op {
	case "send_lat", "write_lat":
		var ev = masq.StartSendLat(eng, pair.Client, pair.Server, *size, *iters)
		if *op == "write_lat" {
			ev = masq.StartWriteLat(eng, pair.Client, pair.Server, *size, *iters)
		}
		eng.Run()
		r := ev.Value()
		fmt.Printf("%-10s %-8s %-8s %-8s %-8s\n", "iters", "min", "avg", "p99", "max")
		fmt.Printf("%-10d %-8v %-8v %-8v %-8v\n", r.Iters, r.Min, r.Avg, r.P99, r.Max)
	case "send_bw", "write_bw":
		var ev = masq.StartSendBW(eng, pair.Client, pair.Server, *size, *iters, *window)
		if *op == "write_bw" {
			ev = masq.StartWriteBW(eng, pair.Client, pair.Server, *size, *iters, *window)
		}
		eng.Run()
		r := ev.Value()
		fmt.Printf("%-10s %-12s %-12s %-10s\n", "msgs", "bytes", "Gbps", "Mops")
		fmt.Printf("%-10d %-12d %-12.2f %-10.3f\n", r.Msgs, r.Bytes, r.Gbps(), r.Mops())
	default:
		fmt.Fprintf(os.Stderr, "perftest: unknown op %q\n", *op)
		os.Exit(1)
	}

	if tap != nil {
		f, err := os.Create(*pcap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := masq.WriteTapPcap(f, tap); err != nil {
			fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# captured %d frames to %s (wireshark-readable)\n", len(tap.Frames()), *pcap)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pair.TB.Trace.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "perftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d trace events to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			pair.TB.Trace.Events(), *traceOut)
	}
}
