// Command masqbench regenerates the tables and figures of the MasQ paper's
// evaluation (and this repo's ablation studies) on the simulated testbed.
//
// Usage:
//
//	masqbench -list            # enumerate experiments
//	masqbench -run fig8a       # run one experiment
//	masqbench -run fig8a,fig10 # run several
//	masqbench -all             # run everything (slow)
//	masqbench -shards 4        # sharded-engine determinism fingerprint
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"masq/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "comma-separated experiment ids to run")
	all := flag.Bool("all", false, "run every experiment")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` at exit")
	simbench := flag.String("simbench", "", "measure the simulation core and write the report to `file` (e.g. BENCH_simcore.json)")
	shards := flag.Int("shards", 0, "run the sharded-engine determinism workload on `N` shards and print its fingerprint (byte-identical for every N)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
			}
		}()
	}

	switch {
	case *shards > 0:
		// The fingerprint intentionally excludes the shard count and wall
		// time, so `masqbench -shards 1` and `masqbench -shards 4` emit
		// byte-identical output iff the parallel engine replays the
		// single-shard oracle exactly. CI diffs the two.
		fmt.Println(bench.ShardDeterminismRun(*shards))
	case *simbench != "":
		rep := bench.SimCoreBench()
		f, err := os.Create(*simbench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "masqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("simulation core: %.0f events/sec end-to-end (%d events in %.2fs); report → %s\n",
			rep.EndToEnd.EventsPerSec, rep.EndToEnd.Events, rep.EndToEnd.WallSeconds, *simbench)
		var idxPt, linPt *bench.RuleScalePoint
		for i := range rep.RuleScale {
			pt := &rep.RuleScale[i]
			if pt.Rules != 100000 {
				continue
			}
			if pt.Engine == "indexed" {
				idxPt = pt
			} else {
				linPt = pt
			}
		}
		if idxPt != nil && linPt != nil {
			fmt.Printf("rule engine at 100k rules: valid_conn %.1fµs indexed vs %.1fµs linear (%.0fx); revoke %.0fµs vs %.0fµs (%.0fx)\n",
				idxPt.ValidateMicros, linPt.ValidateMicros, linPt.ValidateMicros/idxPt.ValidateMicros,
				idxPt.EnforceMicros, linPt.EnforceMicros, linPt.EnforceMicros/idxPt.EnforceMicros)
		}
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
	case *all:
		for _, e := range bench.All() {
			runOne(e)
		}
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "masqbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			runOne(e)
		}
	default:
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nexperiments:")
		for _, e := range bench.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.ID, e.Paper)
		}
		os.Exit(2)
	}
}

func runOne(e bench.Experiment) {
	start := time.Now()
	t := e.Run()
	t.Render(os.Stdout)
	fmt.Printf("  (%s completed in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
}
