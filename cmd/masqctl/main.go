// Command masqctl builds a small multi-tenant MasQ scenario and dumps the
// control-plane state an operator would inspect: tenant security policies,
// the SDN controller's (VNI, vGID)→pGID mapping table, each host's
// RConntrack (RCT) table and VF grouping, and per-device statistics. It
// then exercises a rule change so the enforcement path is visible.
package main

import (
	"flag"
	"fmt"
	"sort"

	"masq"
	"masq/internal/cluster"
	"masq/internal/controller"
	"masq/internal/simtime"
)

func main() {
	kill := flag.Bool("kill", true, "revoke a rule at the end to show RConntrack enforcement")
	flag.Parse()

	cfg := masq.DefaultConfig()
	cfg.Trace = true // collect per-verb layer attribution while the scenario runs
	tb := masq.NewTestbed(cfg)
	acme := tb.AddTenant(100, "acme")
	globex := tb.AddTenant(200, "globex")
	acmeRule := tb.AllowAll(100)
	tb.AllowAll(200)

	mk := func(vni uint32, host int, ip masq.IP) *cluster.Node {
		n, err := tb.NewNode(masq.ModeMasQ, host, vni, ip)
		if err != nil {
			panic(err)
		}
		return n
	}
	a1, a2 := mk(100, 0, masq.NewIP(10, 0, 1, 1)), mk(100, 1, masq.NewIP(10, 0, 1, 2))
	g1, g2 := mk(200, 0, masq.NewIP(10, 0, 1, 1)), mk(200, 1, masq.NewIP(10, 0, 1, 2))

	connect := func(c, s *cluster.Node, port uint16) (*cluster.Endpoint, *cluster.Endpoint) {
		var cep, sep *cluster.Endpoint
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var err error
			if cep, err = c.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			if sep, err = s.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			se, ce := cluster.Pair(tb.Eng, sep, cep, port)
			if err := se.Wait(p); err != nil {
				panic(err)
			}
			if err := ce.Wait(p); err != nil {
				panic(err)
			}
		})
		tb.Eng.Run()
		return cep, sep
	}
	connect(a1, a2, 7000)
	connect(g1, g2, 7001)

	fmt.Println("=== tenants ===")
	for _, t := range []*masq.Tenant{acme, globex} {
		fmt.Printf("VNI %-4d %-8s rules:\n", t.VNI, t.Name)
		for _, r := range t.Policy.Rules() {
			fmt.Printf("  #%d prio %-3d proto %-4v %v -> %v : %v\n",
				r.ID, r.Priority, protoName(int(r.Proto)), r.Src, r.Dst, r.Action)
		}
	}

	fmt.Println("\n=== SDN controller mapping table (VNI, vGID) -> physical ===")
	dumpMappings(tb, 100)
	dumpMappings(tb, 200)
	fmt.Printf("controller stats: %d queries, %d updates\n", tb.Ctrl.Stats.Queries, tb.Ctrl.Stats.Updates)
	fmt.Printf("controller faults: %d timeouts (%d dropped replies)\n",
		tb.Ctrl.Stats.Timeouts, tb.Ctrl.Stats.DroppedReplies)
	fmt.Printf("controller pushes: %d sent, %d delivered, %d dropped\n",
		tb.Ctrl.Stats.NotifySent, tb.Ctrl.Stats.NotifyDelivered, tb.Ctrl.Stats.NotifyDropped)

	fmt.Println("\n=== per-host MasQ backends ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		fmt.Printf("host%d (%v):\n", i, tb.Hosts[i].IP)
		fmt.Printf("  rename cache: %d hits, %d misses, %d invalidations\n",
			be.Stats.CacheHits, be.Stats.CacheMisses, be.Stats.Invalidations)
		fmt.Printf("  renames applied: %d (%d recovered from stale mappings)\n",
			be.Stats.Renames, be.Stats.StaleRenames)
		fmt.Printf("  controller queries: %d retries, %d gave up\n",
			be.Stats.QueryRetries, be.Stats.QueryFailures)
		conns := be.CT.Conns()
		sort.Slice(conns, func(a, b int) bool { return conns[a].QPN < conns[b].QPN })
		fmt.Printf("  RCT table (%d established connections):\n", len(conns))
		for _, id := range conns {
			fmt.Printf("    %v\n", id)
		}
		fmt.Printf("  device: %d QPs live, tx %d pkts, rx %d pkts, %d retransmits\n",
			tb.Hosts[i].Dev.QPs(), tb.Hosts[i].Dev.Stats.TxPackets,
			tb.Hosts[i].Dev.Stats.RxPackets, tb.Hosts[i].Dev.Stats.Retransmits)
	}

	fmt.Println("\n=== wire diagnosis (Sec. 5): (physical IP, QPN) -> tenant virtual IP ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		for qpn := uint32(1); qpn <= 8; qpn++ {
			if vni, vip, ok := be.WireInfo(qpn); ok {
				fmt.Printf("  packet to %v, DestQP %d  =>  tenant VNI %d, VM %v\n",
					tb.Hosts[i].IP, qpn, vni, vip)
			}
		}
	}

	fmt.Println("\n=== control-path trace: per-tenant-VM × per-verb layer self-times ===")
	for _, row := range tb.Trace.Aggregate() {
		fmt.Printf("  %-14s %-16s %-14s x%-3d %v\n", row.Actor, row.Verb, row.Layer, row.Count, row.Self)
	}
	if cs := tb.Trace.Counters(); len(cs) > 0 {
		fmt.Println("trace counters:")
		for _, c := range cs {
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}

	if *kill {
		fmt.Println("\n=== revoking acme's allow rule ===")
		acme.Policy.RemoveRule(acmeRule)
		tb.Eng.Run() // let the enforcement processes run
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: RCT now holds %d connections; resets performed: %d\n",
				i, len(be.CT.Conns()), be.CT.Stats.Resets)
		}
		fmt.Println("globex's connections are untouched (different tenant policy)")
	}
}

func protoName(p int) string {
	switch p {
	case 1:
		return "tcp"
	case 2:
		return "rdma"
	}
	return "any"
}

func dumpMappings(tb *masq.Testbed, vni uint32) {
	dump := tb.Ctrl.Dump(vni)
	keys := make([]controller.Key, 0, len(dump))
	for k := range dump {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].VGID.String() < keys[j].VGID.String() })
	for _, k := range keys {
		m := dump[k]
		fmt.Printf("  VNI %-4d %-22v -> pGID %-22v host %v\n", k.VNI, k.VGID, m.PGID, m.PIP)
	}
}
