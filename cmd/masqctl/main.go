// Command masqctl builds a small multi-tenant MasQ scenario and dumps the
// control-plane state an operator would inspect: tenant security policies,
// the SDN controller's (VNI, vGID)→pGID mapping table, each host's
// RConntrack (RCT) table and VF grouping, and per-device statistics. It
// then exercises a rule change so the enforcement path is visible.
package main

import (
	"flag"
	"fmt"
	"sort"

	"masq"
	"masq/internal/cluster"
	"masq/internal/controller"
	"masq/internal/simtime"
)

func main() {
	kill := flag.Bool("kill", true, "revoke a rule at the end to show RConntrack enforcement")
	doChaos := flag.Bool("chaos", true, "inject a link outage and a VM crash at the end and dump fault counters")
	flag.Parse()

	cfg := masq.DefaultConfig()
	cfg.Trace = true // collect per-verb layer attribution while the scenario runs
	// Fast retry exhaustion so the chaos section's outage kills a QP in
	// a few simulated milliseconds instead of tens.
	cfg.RNIC.RetransTimeout = masq.Us(500)
	cfg.RNIC.MaxRetry = 3
	tb := masq.NewTestbed(cfg)
	acme := tb.AddTenant(100, "acme")
	globex := tb.AddTenant(200, "globex")
	acmeRule := tb.AllowAll(100)
	tb.AllowAll(200)

	mk := func(vni uint32, host int, ip masq.IP) *cluster.Node {
		n, err := tb.NewNode(masq.ModeMasQ, host, vni, ip)
		if err != nil {
			panic(err)
		}
		return n
	}
	a1, a2 := mk(100, 0, masq.NewIP(10, 0, 1, 1)), mk(100, 1, masq.NewIP(10, 0, 1, 2))
	g1, g2 := mk(200, 0, masq.NewIP(10, 0, 1, 1)), mk(200, 1, masq.NewIP(10, 0, 1, 2))

	connect := func(c, s *cluster.Node, port uint16) (*cluster.Endpoint, *cluster.Endpoint) {
		var cep, sep *cluster.Endpoint
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var err error
			if cep, err = c.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			if sep, err = s.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			se, ce := cluster.Pair(tb.Eng, sep, cep, port)
			if err := se.Wait(p); err != nil {
				panic(err)
			}
			if err := ce.Wait(p); err != nil {
				panic(err)
			}
		})
		tb.Eng.Run()
		return cep, sep
	}
	connect(a1, a2, 7000)
	gep, gsep := connect(g1, g2, 7001)

	fmt.Println("=== tenants ===")
	for _, t := range []*masq.Tenant{acme, globex} {
		fmt.Printf("VNI %-4d %-8s rules:\n", t.VNI, t.Name)
		for _, r := range t.Policy.Rules() {
			fmt.Printf("  #%d prio %-3d proto %-4v %v -> %v : %v\n",
				r.ID, r.Priority, protoName(int(r.Proto)), r.Src, r.Dst, r.Action)
		}
	}

	fmt.Println("\n=== SDN controller mapping table (VNI, vGID) -> physical ===")
	dumpMappings(tb, 100)
	dumpMappings(tb, 200)
	fmt.Printf("controller stats: %d queries, %d updates\n", tb.Ctrl.Stats.Queries, tb.Ctrl.Stats.Updates)
	fmt.Printf("controller faults: %d timeouts (%d dropped replies)\n",
		tb.Ctrl.Stats.Timeouts, tb.Ctrl.Stats.DroppedReplies)
	fmt.Printf("controller pushes: %d sent, %d delivered, %d dropped\n",
		tb.Ctrl.Stats.NotifySent, tb.Ctrl.Stats.NotifyDelivered, tb.Ctrl.Stats.NotifyDropped)

	fmt.Println("\n=== per-host MasQ backends ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		fmt.Printf("host%d (%v):\n", i, tb.Hosts[i].IP)
		fmt.Printf("  rename cache: %d hits, %d misses, %d invalidations\n",
			be.Stats.CacheHits, be.Stats.CacheMisses, be.Stats.Invalidations)
		fmt.Printf("  renames applied: %d (%d recovered from stale mappings)\n",
			be.Stats.Renames, be.Stats.StaleRenames)
		fmt.Printf("  controller queries: %d retries, %d gave up\n",
			be.Stats.QueryRetries, be.Stats.QueryFailures)
		conns := be.CT.Conns()
		sort.Slice(conns, func(a, b int) bool { return conns[a].QPN < conns[b].QPN })
		fmt.Printf("  RCT table (%d established connections):\n", len(conns))
		for _, id := range conns {
			fmt.Printf("    %v\n", id)
		}
		fmt.Printf("  device: %d QPs live, tx %d pkts, rx %d pkts, %d retransmits\n",
			tb.Hosts[i].Dev.QPs(), tb.Hosts[i].Dev.Stats.TxPackets,
			tb.Hosts[i].Dev.Stats.RxPackets, tb.Hosts[i].Dev.Stats.Retransmits)
	}

	fmt.Println("\n=== wire diagnosis (Sec. 5): (physical IP, QPN) -> tenant virtual IP ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		for qpn := uint32(1); qpn <= 8; qpn++ {
			if vni, vip, ok := be.WireInfo(qpn); ok {
				fmt.Printf("  packet to %v, DestQP %d  =>  tenant VNI %d, VM %v\n",
					tb.Hosts[i].IP, qpn, vni, vip)
			}
		}
	}

	fmt.Println("\n=== control-path trace: per-tenant-VM × per-verb layer self-times ===")
	for _, row := range tb.Trace.Aggregate() {
		fmt.Printf("  %-14s %-16s %-14s x%-3d %v\n", row.Actor, row.Verb, row.Layer, row.Count, row.Self)
	}
	if cs := tb.Trace.Counters(); len(cs) > 0 {
		fmt.Println("trace counters:")
		for _, c := range cs {
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}

	if *kill {
		fmt.Println("\n=== revoking acme's allow rule ===")
		acme.Policy.RemoveRule(acmeRule)
		tb.Eng.Run() // let the enforcement processes run
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: RCT now holds %d connections; resets performed: %d\n",
				i, len(be.CT.Conns()), be.CT.Stats.Resets)
		}
		fmt.Println("globex's connections are untouched (different tenant policy)")
	}

	if *doChaos {
		fmt.Println("\n=== chaos: link outage, then a VM crash ===")
		// Cut host0's wire long enough to exhaust the transport's
		// retries: globex's client QP dies, and the guest sees the full
		// async-event sequence (port down, QP fatal, port up).
		now := tb.Eng.Now()
		tb.Chaos.Arm(masq.ChaosPlan{Events: masq.ChaosOutage(tb.HostLink(0),
			now.Add(masq.Ms(1)), now.Add(masq.Ms(6)))})
		var guestEvents []masq.AsyncEvent
		tb.Eng.Spawn("guest-watcher", func(p *masq.Proc) {
			aev, ok := masq.AsAsync(gep.Dev)
			if !ok {
				return
			}
			for {
				ev, ok := aev.GetAsyncEventTimeout(p, masq.Ms(20))
				if !ok {
					return
				}
				guestEvents = append(guestEvents, ev)
			}
		})
		sent, failed := 0, 0
		tb.Eng.Spawn("g1-writer", func(p *masq.Proc) {
			peer := gsep.Info()
			for i := 0; ; i++ {
				if err := gep.QP.PostSend(p, masq.SendWR{
					WRID: uint64(i), Op: masq.WRWrite, LocalAddr: gep.Buf,
					LKey: gep.MR.LKey(), Len: 4096, RemoteAddr: peer.Addr, RKey: peer.RKey,
				}); err != nil {
					return
				}
				wc, ok := gep.SCQ.WaitTimeout(p, masq.Ms(100))
				if !ok || wc.Status != masq.WCSuccess {
					failed++
					return
				}
				sent++
			}
		})
		tb.Eng.Run()
		fmt.Printf("g1 writer: %d writes completed, then %d failed when retries exhausted\n", sent, failed)
		fmt.Println("g1 guest async events (via ibv_get_async_event):")
		for _, ev := range guestEvents {
			fmt.Printf("  %v\n", ev)
		}

		// Now kill g2's VM outright: its host backend flushes the RCT
		// and MRs and the controller unmaps the tenant endpoint — the
		// surviving peer is told nothing (it would discover the death by
		// retry exhaustion, exactly like the outage above).
		before := len(tb.Ctrl.Dump(200))
		if err := tb.CrashNode(g2); err != nil {
			panic(err)
		}
		tb.Eng.Run()
		fmt.Printf("crashed g2: controller VNI-200 mappings %d -> %d\n", before, len(tb.Ctrl.Dump(200)))

		fmt.Println("\n=== fault & recovery counters ===")
		fmt.Printf("injector: %d link transitions, %d loss windows, %d switch transitions, %d crashes\n",
			tb.Chaos.Stats.LinkTransitions, tb.Chaos.Stats.LossWindows,
			tb.Chaos.Stats.SwitchTransitions, tb.Chaos.Stats.Crashes)
		for _, line := range tb.Chaos.Trace() {
			fmt.Printf("  trace: %s\n", line)
		}
		for i, l := range tb.Links {
			st := l.Stats
			fmt.Printf("link%d: %d delivered, %d dropped (%d link-down, %d loss-model, %d hook)\n",
				i, st.Delivered, st.Dropped, st.DroppedDown, st.DroppedLoss, st.DroppedHook)
		}
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: %d device async events; backend: %d QP fatals, %d async cleanups, %d VM crashes\n",
				i, tb.Hosts[i].Dev.Stats.AsyncEvents,
				be.Stats.FatalEvents, be.Stats.AsyncCleanups, be.Stats.Crashes)
		}
		for _, n := range []*cluster.Node{a1, a2, g1, g2} {
			st := n.OOB.Stats
			fmt.Printf("oob %-3s: %d SYN retx, %d DATA retx, %d dup DATA, %d resets\n",
				n.Name, st.SynRetx, st.DataRetx, st.DupData, st.Resets)
		}
	}
}

func protoName(p int) string {
	switch p {
	case 1:
		return "tcp"
	case 2:
		return "rdma"
	}
	return "any"
}

func dumpMappings(tb *masq.Testbed, vni uint32) {
	dump := tb.Ctrl.Dump(vni)
	keys := make([]controller.Key, 0, len(dump))
	for k := range dump {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].VGID.String() < keys[j].VGID.String() })
	for _, k := range keys {
		m := dump[k]
		fmt.Printf("  VNI %-4d %-22v -> pGID %-22v host %v\n", k.VNI, k.VGID, m.PGID, m.PIP)
	}
}
