// Command masqctl builds a small multi-tenant MasQ scenario and dumps the
// control-plane state an operator would inspect: tenant security policies,
// the SDN controller's (VNI, vGID)→pGID mapping table, each host's
// RConntrack (RCT) table and VF grouping, and per-device statistics. It
// then exercises a rule change so the enforcement path is visible.
package main

import (
	"flag"
	"fmt"
	"sort"

	"masq"
	"masq/internal/cluster"
	"masq/internal/controller"
	mqbackend "masq/internal/masq"
	"masq/internal/simtime"
)

func main() {
	kill := flag.Bool("kill", true, "revoke a rule at the end to show RConntrack enforcement")
	doChaos := flag.Bool("chaos", true, "inject a link outage and a VM crash at the end and dump fault counters")
	ctrlCrash := flag.Bool("ctrlcrash", true, "crash and restart the controller at the end; show grace-mode renames, the epoch bump, and lease-driven reconvergence")
	doMigrate := flag.Bool("migrate", true, "live-migrate a VM to a spare host under a live RDMA stream; print the blackout breakdown and per-phase counters")
	ctrlFailover := flag.Bool("ctrlfailover", true, "run a 4-shard replicated controller, crash one shard's primary mid-workload, and dump the per-shard counter table")
	nrules := flag.Int("rules", 0, "bulk-load N synthetic rules into acme's chain first (e.g. 100000): the decision index keeps valid_conn and enforcement flat at any N")
	flag.Parse()

	cfg := masq.DefaultConfig()
	cfg.Trace = true // collect per-verb layer attribution while the scenario runs
	// Fast retry exhaustion so the chaos section's outage kills a QP in
	// a few simulated milliseconds instead of tens.
	cfg.RNIC.RetransTimeout = masq.Us(500)
	cfg.RNIC.MaxRetry = 3
	if *ctrlCrash {
		// The controller-crash demo needs push-down (so rename caches are
		// warm before the crash) and a grace TTL generous enough to cover
		// entries seeded when the scenario started.
		cfg.Masq.PushDown = true
		cfg.Masq.GraceTTL = masq.Ms(500)
	}
	if *doMigrate {
		cfg.Hosts = 3 // spare destination host for the live-migration demo
	}
	tb := masq.NewTestbed(cfg)
	acme := tb.AddTenant(100, "acme")
	globex := tb.AddTenant(200, "globex")
	acmeRule := tb.AllowAll(100)
	tb.AllowAll(200)
	if *nrules > 0 {
		// Synthetic chain in the 198.18/15 benchmarking space — disjoint from
		// the scenario's 10/8 VMs, so it only exercises scale, never verdicts.
		// One AddRules call: a bulk load is a single chain sort and a single
		// subscriber notification, not N of each.
		seed := uint32(1)
		next := func(m int) int {
			seed = seed*1664525 + 1013904223
			return int(seed>>8) % m
		}
		batch := make([]masq.Rule, 0, *nrules)
		for i := 0; i < *nrules; i++ {
			act := masq.Deny
			if next(2) == 0 {
				act = masq.Allow
			}
			src, _ := masq.ParseCIDR(fmt.Sprintf("198.18.%d.%d/%d", next(250), next(250), []int{16, 24, 32}[next(3)]))
			dst, _ := masq.ParseCIDR(fmt.Sprintf("198.19.%d.%d/%d", next(250), next(250), []int{16, 24, 32}[next(3)]))
			batch = append(batch, masq.Rule{
				Priority: 2 + next(1024), Proto: masq.ProtoRDMA, Src: src, Dst: dst, Action: act,
			})
		}
		acme.Policy.AddRules(batch)
	}

	mk := func(vni uint32, host int, ip masq.IP) *cluster.Node {
		n, err := tb.NewNode(masq.ModeMasQ, host, vni, ip)
		if err != nil {
			panic(err)
		}
		return n
	}
	a1, a2 := mk(100, 0, masq.NewIP(10, 0, 1, 1)), mk(100, 1, masq.NewIP(10, 0, 1, 2))
	g1, g2 := mk(200, 0, masq.NewIP(10, 0, 1, 1)), mk(200, 1, masq.NewIP(10, 0, 1, 2))

	connect := func(c, s *cluster.Node, port uint16) (*cluster.Endpoint, *cluster.Endpoint) {
		var cep, sep *cluster.Endpoint
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var err error
			if cep, err = c.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			if sep, err = s.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			se, ce := cluster.Pair(tb.Eng, sep, cep, port)
			if err := se.Wait(p); err != nil {
				panic(err)
			}
			if err := ce.Wait(p); err != nil {
				panic(err)
			}
		})
		tb.Eng.Run()
		return cep, sep
	}
	connect(a1, a2, 7000)
	gep, gsep := connect(g1, g2, 7001)

	fmt.Println("=== tenants ===")
	for _, t := range []*masq.Tenant{acme, globex} {
		fmt.Printf("VNI %-4d %-8s rules:\n", t.VNI, t.Name)
		rules := t.Policy.Rules()
		shown := rules
		if len(shown) > 8 {
			shown = shown[:8]
		}
		for _, r := range shown {
			fmt.Printf("  #%d prio %-3d proto %-4v %v -> %v : %v\n",
				r.ID, r.Priority, protoName(int(r.Proto)), r.Src, r.Dst, r.Action)
		}
		if len(rules) > len(shown) {
			fmt.Printf("  … and %d more\n", len(rules)-len(shown))
		}
		inf := t.Policy.IndexInfo()
		fmt.Printf("  decision index: %d rules over %d prefix-pair classes, %d buckets (%d incremental updates, %d rebuilds)\n",
			inf.Rules, inf.Pairs, inf.Buckets, inf.Updates, inf.Rebuilds)
	}

	fmt.Println("\n=== SDN controller mapping table (VNI, vGID) -> physical ===")
	dumpMappings(tb, 100)
	dumpMappings(tb, 200)
	fmt.Printf("controller stats: %d queries, %d updates\n", tb.Ctrl.Stats.Queries, tb.Ctrl.Stats.Updates)
	fmt.Printf("controller faults: %d timeouts (%d dropped replies)\n",
		tb.Ctrl.Stats.Timeouts, tb.Ctrl.Stats.DroppedReplies)
	fmt.Printf("controller pushes: %d sent, %d delivered, %d dropped\n",
		tb.Ctrl.Stats.NotifySent, tb.Ctrl.Stats.NotifyDelivered, tb.Ctrl.Stats.NotifyDropped)
	fmt.Printf("controller epoch %d: %d crashes, %d restarts; leases: %d renewed, %d expired; %d updates lost in crashes, %d queued pushes wiped\n",
		tb.Ctrl.Epoch(), tb.Ctrl.Stats.Crashes, tb.Ctrl.Stats.Restarts,
		tb.Ctrl.Stats.Renewals, tb.Ctrl.Stats.LeaseExpired,
		tb.Ctrl.Stats.LostUpdates, tb.Ctrl.Stats.NotifyWiped)
	fmt.Printf("controller subscriber queue depth HWMs: %v (overall %d)\n",
		tb.Ctrl.QueueHWMs(), tb.Ctrl.Stats.NotifyQueueHWM)
	fmt.Printf("controller batches: %d batch RPCs resolving %d keys, %d piggybacked renewals\n",
		tb.Ctrl.Stats.BatchQueries, tb.Ctrl.Stats.BatchedKeys, tb.Ctrl.Stats.BatchRenewals)

	fmt.Println("\n=== per-host MasQ backends ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		fmt.Printf("host%d (%v):\n", i, tb.Hosts[i].IP)
		fmt.Printf("  rename cache: %d hits, %d misses, %d invalidations\n",
			be.Stats.CacheHits, be.Stats.CacheMisses, be.Stats.Invalidations)
		fmt.Printf("  renames applied: %d (%d recovered from stale mappings)\n",
			be.Stats.Renames, be.Stats.StaleRenames)
		fmt.Printf("  controller queries: %d retries, %d gave up\n",
			be.Stats.QueryRetries, be.Stats.QueryFailures)
		fmt.Printf("  epoch %d (%d bumps): %d stale pushes fenced, %d notify gaps, %d resyncs\n",
			be.Epoch(), be.Stats.EpochBumps, be.Stats.FencedNotifies,
			be.Stats.NotifyGaps, be.Stats.Resyncs)
		fmt.Printf("  leases: %d renewed, %d failed; grace: %d renames, %d expired, %d revalidated, %d reset\n",
			be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures,
			be.Stats.GraceRenames, be.Stats.GraceExpired,
			be.Stats.GraceRevalidated, be.Stats.GraceResets)
		fmt.Printf("  setup fast path: batches %d rpcs/%d lookups (max %d); pool %d hits, %d misses, %d refills, %d flushes; shared %d carriers, %d attaches, %d flushes\n",
			be.Stats.BatchRPCs, be.Stats.BatchedLookups, be.Stats.BatchMax,
			be.Stats.PoolHits, be.Stats.PoolMisses, be.Stats.PoolRefills, be.Stats.PoolFlushes,
			be.Stats.SharedCarriers, be.Stats.SharedAttaches, be.Stats.SharedFlushes)
		cts := be.CT.Stats
		fmt.Printf("  rule engine: verdict cache %d hits / %d misses; scans %d incremental, %d full, %d skipped; %d entries revalidated\n",
			cts.VerdictHits, cts.VerdictMisses, cts.IncrScans, cts.FullScans, cts.SkippedScans, cts.Revalidated)
		conns := be.CT.Conns()
		sort.Slice(conns, func(a, b int) bool { return conns[a].QPN < conns[b].QPN })
		fmt.Printf("  RCT table (%d established connections):\n", len(conns))
		for _, id := range conns {
			fmt.Printf("    %v\n", id)
		}
		fmt.Printf("  device: %d QPs live, tx %d pkts, rx %d pkts, %d retransmits\n",
			tb.Hosts[i].Dev.QPs(), tb.Hosts[i].Dev.Stats.TxPackets,
			tb.Hosts[i].Dev.Stats.RxPackets, tb.Hosts[i].Dev.Stats.Retransmits)
	}

	fmt.Println("\n=== wire diagnosis (Sec. 5): (physical IP, QPN) -> tenant virtual IP ===")
	for i := range tb.Hosts {
		be := tb.Backend(i)
		for qpn := uint32(1); qpn <= 8; qpn++ {
			if vni, vip, ok := be.WireInfo(qpn); ok {
				fmt.Printf("  packet to %v, DestQP %d  =>  tenant VNI %d, VM %v\n",
					tb.Hosts[i].IP, qpn, vni, vip)
			}
		}
	}

	fmt.Println("\n=== control-path trace: per-tenant-VM × per-verb layer self-times ===")
	for _, row := range tb.Trace.Aggregate() {
		fmt.Printf("  %-14s %-16s %-14s x%-3d %v\n", row.Actor, row.Verb, row.Layer, row.Count, row.Self)
	}
	if cs := tb.Trace.Counters(); len(cs) > 0 {
		fmt.Println("trace counters:")
		for _, c := range cs {
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}

	if *kill {
		fmt.Println("\n=== revoking acme's allow rule ===")
		acme.Policy.RemoveRule(acmeRule)
		tb.Eng.Run() // let the enforcement processes run
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: RCT now holds %d connections; resets performed: %d (%d incremental / %d full scans, %d entries revalidated)\n",
				i, len(be.CT.Conns()), be.CT.Stats.Resets,
				be.CT.Stats.IncrScans, be.CT.Stats.FullScans, be.CT.Stats.Revalidated)
		}
		fmt.Println("globex's connections are untouched (different tenant policy)")
	}

	if *doChaos {
		fmt.Println("\n=== chaos: link outage, then a VM crash ===")
		// Cut host0's wire long enough to exhaust the transport's
		// retries: globex's client QP dies, and the guest sees the full
		// async-event sequence (port down, QP fatal, port up).
		now := tb.Eng.Now()
		tb.Chaos.Arm(masq.ChaosPlan{Events: masq.ChaosOutage(tb.HostLink(0),
			now.Add(masq.Ms(1)), now.Add(masq.Ms(6)))})
		var guestEvents []masq.AsyncEvent
		tb.Eng.Spawn("guest-watcher", func(p *masq.Proc) {
			aev, ok := masq.AsAsync(gep.Dev)
			if !ok {
				return
			}
			for {
				ev, ok := aev.GetAsyncEventTimeout(p, masq.Ms(20))
				if !ok {
					return
				}
				guestEvents = append(guestEvents, ev)
			}
		})
		sent, failed := 0, 0
		tb.Eng.Spawn("g1-writer", func(p *masq.Proc) {
			peer := gsep.Info()
			for i := 0; ; i++ {
				if err := gep.QP.PostSend(p, masq.SendWR{
					WRID: uint64(i), Op: masq.WRWrite, LocalAddr: gep.Buf,
					LKey: gep.MR.LKey(), Len: 4096, RemoteAddr: peer.Addr, RKey: peer.RKey,
				}); err != nil {
					return
				}
				wc, ok := gep.SCQ.WaitTimeout(p, masq.Ms(100))
				if !ok || wc.Status != masq.WCSuccess {
					failed++
					return
				}
				sent++
			}
		})
		tb.Eng.Run()
		fmt.Printf("g1 writer: %d writes completed, then %d failed when retries exhausted\n", sent, failed)
		fmt.Println("g1 guest async events (via ibv_get_async_event):")
		for _, ev := range guestEvents {
			fmt.Printf("  %v\n", ev)
		}

		// Now kill g2's VM outright: its host backend flushes the RCT
		// and MRs and the controller unmaps the tenant endpoint — the
		// surviving peer is told nothing (it would discover the death by
		// retry exhaustion, exactly like the outage above).
		before := len(tb.Ctrl.Dump(200))
		if err := tb.CrashNode(g2); err != nil {
			panic(err)
		}
		tb.Eng.Run()
		fmt.Printf("crashed g2: controller VNI-200 mappings %d -> %d\n", before, len(tb.Ctrl.Dump(200)))

		fmt.Println("\n=== fault & recovery counters ===")
		fmt.Printf("injector: %d link transitions, %d loss windows, %d switch transitions, %d crashes\n",
			tb.Chaos.Stats.LinkTransitions, tb.Chaos.Stats.LossWindows,
			tb.Chaos.Stats.SwitchTransitions, tb.Chaos.Stats.Crashes)
		for _, line := range tb.Chaos.Trace() {
			fmt.Printf("  trace: %s\n", line)
		}
		for i, l := range tb.Links {
			st := l.Stats()
			fmt.Printf("link%d: %d delivered, %d dropped (%d link-down, %d loss-model, %d hook)\n",
				i, st.Delivered, st.Dropped, st.DroppedDown, st.DroppedLoss, st.DroppedHook)
		}
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: %d device async events; backend: %d QP fatals, %d async cleanups, %d VM crashes\n",
				i, tb.Hosts[i].Dev.Stats.AsyncEvents,
				be.Stats.FatalEvents, be.Stats.AsyncCleanups, be.Stats.Crashes)
		}
		for _, n := range []*cluster.Node{a1, a2, g1, g2} {
			st := n.OOB.Stats
			fmt.Printf("oob %-3s: %d SYN retx, %d DATA retx, %d dup DATA, %d resets\n",
				n.Name, st.SynRetx, st.DataRetx, st.DupData, st.Resets)
		}
	}

	if *ctrlCrash {
		fmt.Println("\n=== controller crash: epochs, leases, grace mode ===")
		// Re-allow acme (the enforcement demo revoked its rule) so the
		// in-the-dark connection below passes the security policy.
		tb.AllowAll(100)
		// Pre-build the endpoints now — MR pinning costs milliseconds of
		// virtual time — so only the QP state walk lands inside the outage.
		var dep, dsep *cluster.Endpoint
		tb.Eng.Spawn("dark-setup", func(p *simtime.Proc) {
			var err error
			if dep, err = a1.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			if dsep, err = a2.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
		})
		tb.Eng.Run()

		now := tb.Eng.Now()
		crashAt := now.Add(masq.Ms(1))
		restartAt := crashAt.Add(masq.Ms(10))
		epochBefore := tb.Ctrl.Epoch()
		tb.StartLeases(restartAt.Add(masq.Ms(20)))
		tb.CrashController(crashAt, restartAt)

		var downSeen, graced bool
		tb.Eng.Spawn("connect-in-the-dark", func(p *simtime.Proc) {
			p.Sleep(crashAt.Add(masq.Ms(2)).Sub(p.Now()))
			be := tb.Backend(0)
			downSeen = be.CtrlDown()
			before := be.Stats.GraceRenames
			se, ce := cluster.Pair(tb.Eng, dsep, dep, 7002)
			if err := se.Wait(p); err != nil {
				panic(err)
			}
			if err := ce.Wait(p); err != nil {
				panic(err)
			}
			graced = be.Stats.GraceRenames > before
		})
		// Leases lazily expire once renewals stop, so read the reconverged
		// table mid-run rather than after the engine drains.
		var acmeMaps, globexMaps int
		tb.Eng.At(restartAt.Add(masq.Ms(10)), func() {
			acmeMaps, globexMaps = len(tb.Ctrl.Dump(100)), len(tb.Ctrl.Dump(200))
		})
		tb.Eng.Run()

		fmt.Printf("controller dark for [%v, %v); leases renew every %v\n",
			crashAt, restartAt, cfg.Masq.LeaseRenewEvery)
		fmt.Printf("backend had detected the outage before connecting: %v\n", downSeen)
		fmt.Printf("a1 -> a2 RC connection established in the dark; rename grace-served from cache: %v\n", graced)
		fmt.Printf("controller epoch %d -> %d (%d crash, %d restart); restarted empty, rebuilt by lease re-registration\n",
			epochBefore, tb.Ctrl.Epoch(), tb.Ctrl.Stats.Crashes, tb.Ctrl.Stats.Restarts)
		fmt.Printf("table 10 ms after restart: VNI 100 has %d mappings, VNI 200 has %d\n",
			acmeMaps, globexMaps)
		if *doChaos {
			fmt.Println("(g2 was crashed earlier and stayed out — reconvergence resurrects no ghosts)")
		}
		for i := range tb.Hosts {
			be := tb.Backend(i)
			fmt.Printf("host%d: epoch %d (%d bumps); grace: %d renames, %d revalidated, %d reset; leases: %d renewed, %d failed\n",
				i, be.Epoch(), be.Stats.EpochBumps, be.Stats.GraceRenames,
				be.Stats.GraceRevalidated, be.Stats.GraceResets,
				be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures)
		}
	}
	if *doMigrate {
		fmt.Println("\n=== transparent live migration: a2 -> host2 under a live stream ===")
		tb.AllowAll(100) // earlier sections may have revoked acme's rule
		var mc, ms *cluster.Endpoint
		tb.Eng.Spawn("mig-setup", func(p *simtime.Proc) {
			var err error
			if mc, err = a1.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			if ms, err = a2.Setup(p, cluster.DefaultEndpointOpts()); err != nil {
				panic(err)
			}
			se, ce := cluster.Pair(tb.Eng, ms, mc, 7003)
			if err := se.Wait(p); err != nil {
				panic(err)
			}
			if err := ce.Wait(p); err != nil {
				panic(err)
			}
		})
		tb.Eng.Run()

		// a1 streams 24 distinct 1 KiB messages into a2 while a2's VM moves
		// host1 -> host2 mid-stream. Both sides count completions: the move
		// must lose and duplicate nothing.
		const total, msgLen = 24, 1024
		sentOK, recvOK := 0, 0
		tb.Eng.Spawn("mig-server", func(p *simtime.Proc) {
			for i := 0; i < total; i++ {
				if err := ms.QP.PostRecv(p, masq.RecvWR{
					WRID: uint64(i), Addr: ms.Buf + uint64(i*msgLen), LKey: ms.MR.LKey(), Len: msgLen,
				}); err != nil {
					panic(err)
				}
			}
			for i := 0; i < total; i++ {
				wc, ok := ms.RCQ.WaitTimeout(p, masq.Ms(100))
				if !ok {
					return
				}
				if wc.Status == masq.WCSuccess {
					recvOK++
				}
			}
		})
		tb.Eng.Spawn("mig-client", func(p *simtime.Proc) {
			p.Sleep(masq.Us(50)) // let the receives land first
			for i := 0; i < total; i++ {
				if err := mc.QP.PostSend(p, masq.SendWR{
					WRID: uint64(i), Op: masq.WRSend,
					LocalAddr: mc.Buf + uint64(i*msgLen), LKey: mc.MR.LKey(), Len: msgLen,
				}); err != nil {
					return
				}
				p.Sleep(masq.Us(250))
			}
			for i := 0; i < total; i++ {
				wc, ok := mc.SCQ.WaitTimeout(p, masq.Ms(100))
				if !ok {
					return
				}
				if wc.Status == masq.WCSuccess {
					sentOK++
				}
			}
		})
		var mrep *masq.MigrateReport
		var merr error
		tb.Eng.Spawn("migrator", func(p *simtime.Proc) {
			p.Sleep(masq.Ms(1)) // land in the middle of the stream
			mrep, merr = tb.LiveMigrateNode(p, a2, 2, masq.MigrateOpts{
				DirtyRate:         0.5e9, // guest dirties at half the copy rate
				CopyBandwidth:     1e9,
				StopCopyThreshold: 8 << 10,
			})
		})
		tb.Eng.Run()
		if merr != nil {
			panic(merr)
		}
		fmt.Printf("pre-copy: %d rounds, %d KB shipped in %v (VM live); final dirty set %d KB\n",
			mrep.PreCopyRounds, mrep.PreCopyBytes/1024, mrep.PreCopyTime, mrep.StopCopyBytes/1024)
		fmt.Printf("blackout %v = freeze %v + stop-copy %v + restore %v + commit %v\n",
			mrep.Blackout, mrep.FreezeTime, mrep.StopCopyTime, mrep.RestoreTime, mrep.CommitTime)
		fmt.Printf("carried across: %d QPs, %d MRs, %d tracked connections\n", mrep.QPs, mrep.MRs, mrep.Conns)
		fmt.Printf("stream across the move: %d/%d sends completed, %d/%d receives completed — zero lost, zero duplicated\n",
			sentOK, total, recvOK, total)
		srcBE, dstBE, peerBE := tb.Backend(1), tb.Backend(2), tb.Backend(0)
		fmt.Printf("src host1: %d migration out, %d QP-pool flushes; dst host2: %d migration in\n",
			srcBE.Stats.MigrOut, srcBE.Stats.PoolFlushes, dstBE.Stats.MigrIn)
		fmt.Printf("peer host0: %d QPs suspended, %d renamed in place, %d resumed with PSN replay\n",
			peerBE.Stats.MigrSuspendedQPs, peerBE.Stats.MigrRenames, peerBE.Stats.MigrResumes)
		fmt.Printf("controller: %d suspend pushes, %d move commits; a2 now served by host%d\n",
			tb.Ctrl.Stats.Suspends, tb.Ctrl.Stats.Moves, 2)
	}

	if *ctrlFailover {
		fmt.Println("\n=== sharded controller: per-shard failover on a fresh 4-shard testbed ===")
		// The main scenario runs the classic unsharded controller; the
		// sharded demo gets its own testbed so the two control-plane
		// flavors are shown side by side.
		cfg2 := masq.DefaultConfig()
		cfg2.Hosts = 3
		cfg2.CtrlShards = 4
		cfg2.Masq.PushDown = true
		cfg2.Masq.LeaseRenewEvery = masq.Ms(1)
		cfg2.Ctrl.LeaseTTL = masq.Ms(20)
		cfg2.Ctrl.Replicate = true
		cfg2.Ctrl.ReplDelay = masq.Us(20)
		cfg2.Ctrl.FailoverDetect = masq.Ms(2)
		tb2 := masq.NewTestbed(cfg2)
		tb2.AddTenant(100, "acme")
		tb2.AllowAll(100)
		mk2 := func(host int, last byte) *cluster.Node {
			n, err := tb2.NewNode(masq.ModeMasQ, host, 100, masq.NewIP(10, 0, 2, last))
			if err != nil {
				panic(err)
			}
			return n
		}
		f1, f2, f3, f4 := mk2(0, 1), mk2(1, 2), mk2(2, 3), mk2(1, 4)
		tb2.Eng.Spawn("shard-wire", func(p *simtime.Proc) {
			for _, pair := range [][2]*cluster.Node{{f1, f2}, {f3, f4}} {
				c, err := pair[0].Setup(p, cluster.DefaultEndpointOpts())
				if err != nil {
					panic(err)
				}
				s, err := pair[1].Setup(p, cluster.DefaultEndpointOpts())
				if err != nil {
					panic(err)
				}
				se, ce := cluster.Pair(tb2.Eng, s, c, 7500)
				if err := se.Wait(p); err != nil {
					panic(err)
				}
				if err := ce.Wait(p); err != nil {
					panic(err)
				}
			}
		})
		tb2.Eng.Run()
		base := tb2.Eng.Now() // the wiring above burned virtual time
		tb2.StartLeases(base.Add(masq.Ms(40)))

		vb := f1.Provider.(*mqbackend.Frontend).VBond()
		key := controller.Key{VNI: vb.VNI(), VGID: vb.GID()}
		victim := tb2.CtrlSharded.Owner(key)
		tb2.Eng.At(base.Add(masq.Ms(10)), func() { tb2.CtrlSharded.CrashShard(victim) })

		// Snapshot the per-shard counters mid-run, with renewals still
		// live — after the engine drains, leases have lazily expired.
		shards := tb2.CtrlSharded.NumShards()
		stats := make([]controller.ShardStats, shards)
		tb2.Eng.At(base.Add(masq.Ms(30)), func() {
			for i := range stats {
				stats[i] = tb2.CtrlSharded.ShardStats(i)
			}
		})
		tb2.Eng.Run()

		fmt.Printf("4 shards, replicated standbys (repl delay %v, failover detect %v)\n",
			cfg2.Ctrl.ReplDelay, cfg2.Ctrl.FailoverDetect)
		fmt.Printf("crashed shard %d's primary at 10 ms (it owns f1's registration); standby promoted at 12 ms\n", victim)
		fmt.Println("per-shard counters 20 ms after the crash:")
		fmt.Println("  shard  epoch  leases  queueHWM  replLag  fenced  failovers  down")
		for i, st := range stats {
			mark := ""
			if i == victim {
				mark = "  <- failed over"
			}
			fmt.Printf("  %5d  %5d  %6d  %8d  %7d  %6d  %9d  %5v%s\n",
				i, st.Epoch, st.Leases, st.QueueHWM, st.ReplLag, st.FencedWrites,
				st.Failovers, st.Down, mark)
		}
		for i := range tb2.Hosts {
			be := tb2.Backend(i)
			fmt.Printf("host%d: victim-shard epoch %d (%d bumps); leases %d renewed, %d failed\n",
				i, be.ShardEpoch(victim), be.Stats.EpochBumps,
				be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures)
		}
		fmt.Println("other shards kept epoch 1: their connections never noticed")
	}
}

func protoName(p int) string {
	switch p {
	case 1:
		return "tcp"
	case 2:
		return "rdma"
	}
	return "any"
}

func dumpMappings(tb *masq.Testbed, vni uint32) {
	dump := tb.Ctrl.Dump(vni)
	keys := make([]controller.Key, 0, len(dump))
	for k := range dump {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].VGID.String() < keys[j].VGID.String() })
	for _, k := range keys {
		m := dump[k]
		fmt.Printf("  VNI %-4d %-22v -> pGID %-22v host %v\n", k.VNI, k.VGID, m.PGID, m.PIP)
	}
}
