// Package masq is a complete, simulation-backed reproduction of
// "MasQ: RDMA for Virtual Private Cloud" (SIGCOMM 2020): software-defined
// RDMA network virtualization in which software defines the communication
// rules on the control path and (simulated) hardware executes the
// communication operations on the data path.
//
// The package is a facade over the full system, which lives under
// internal/ (see DESIGN.md for the inventory):
//
//   - a deterministic discrete-event simulation engine (virtual time, no
//     wall clock anywhere),
//   - a packet-level RoCEv2 RNIC model — QPs, CQs, MRs, the Fig. 5 state
//     machine, RC/UD transports with PSN sequencing and go-back-N
//     retransmission, SR-IOV functions and hardware rate limiters,
//   - hosts, QEMU-style VMs with layered guest memory, containers, a
//     virtio transport, a VXLAN overlay with security groups, and an SDN
//     controller,
//   - MasQ itself: the paravirtual frontend/backend drivers, vBond,
//     RConnrename and RConntrack,
//   - the three comparison systems of the paper's evaluation (Host-RDMA,
//     SR-IOV passthrough, FreeFlow), and
//   - the evaluation workloads (perftest, MPI + OSU benchmarks, Graph500,
//     a HERD-style KVS, an RDMA-Spark model).
//
// # Quick start
//
//	pair, err := masq.NewConnectedPair(masq.DefaultConfig(), masq.ModeMasQ)
//	if err != nil { ... }
//	pair.TB.Eng.Spawn("app", func(p *masq.Proc) {
//	    c := pair.Client
//	    c.Node.Write(c.Buf, []byte("hello vpc"))
//	    c.QP.PostSend(p, masq.SendWR{Op: masq.WRSend, LocalAddr: c.Buf,
//	        LKey: c.MR.LKey(), Len: 9})
//	    wc := c.SCQ.Wait(p)
//	    _ = wc
//	})
//	pair.TB.Eng.Run()
//
// Everything happens in virtual time: a benchmark that "runs for a
// minute" completes in a second of wall clock and produces identical
// results on every run.
//
// The experiment registry (Experiments, RunExperiment) regenerates every
// table and figure of the paper's Sec. 4; cmd/masqbench is its CLI.
package masq
