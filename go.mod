module masq

go 1.22
