package masq

import (
	"io"

	"masq/internal/apps/graph500"
	"masq/internal/apps/kvs"
	"masq/internal/apps/mpi"
	"masq/internal/apps/perftest"
	"masq/internal/apps/sparksim"
	"masq/internal/packet"
	"masq/internal/simnet"
)

// --- Packet capture ----------------------------------------------------------

// LinkTap is a passive capture point on an underlay link
// (Testbed.Links[i].AttachTap()).
type LinkTap = simnet.Tap

// WriteTapPcap writes a tap's capture as a Wireshark-readable pcap stream
// with virtual-time timestamps.
func WriteTapPcap(w io.Writer, tap *LinkTap) error {
	frames := make([]packet.CapturedFrame, len(tap.Frames()))
	for i, f := range tap.Frames() {
		frames[i] = packet.CapturedFrame{TimeNanos: f.TimeNanos, Data: f.Data}
	}
	return packet.WritePcap(w, frames)
}

// --- perftest (ib_send_lat / ib_write_lat / ib_send_bw / ib_write_bw) -------

type (
	// LatencyResult summarizes a latency run.
	LatencyResult = perftest.LatencyResult
	// ThroughputResult summarizes a bandwidth run.
	ThroughputResult = perftest.ThroughputResult
)

// Perftest tools; each returns an event that triggers with the result once
// the testbed's engine has run.
var (
	StartSendLat      = perftest.StartSendLat
	StartWriteLat     = perftest.StartWriteLat
	StartSendBW       = perftest.StartSendBW
	StartWriteBW      = perftest.StartWriteBW
	StartTimedWriteBW = perftest.StartTimedWriteBW
)

// --- MPI runtime -------------------------------------------------------------

type (
	// MPIWorld is a communicator of fully connected ranks.
	MPIWorld = mpi.World
	// MPIRank is one MPI process.
	MPIRank = mpi.Rank
	// MPIOptions size the runtime buffers.
	MPIOptions = mpi.Options
)

// MPI constructors and OSU-style benchmarks.
var (
	NewMPIWorld       = mpi.NewWorld
	SpawnMPIRanks     = mpi.SpawnRanks
	DefaultMPIOptions = mpi.DefaultOptions
	MPILatency        = mpi.PtToPtLatency
	MPIBandwidth      = mpi.PtToPtBandwidth
	MPIBcastLatency   = mpi.BcastLatency
	MPIAllreduce      = mpi.AllreduceLatency
)

// --- Graph500 ------------------------------------------------------------------

type (
	// Graph500Config parameterizes the Kronecker benchmark.
	Graph500Config = graph500.Config
	// Graph500Result reports TEPS and traversal statistics.
	Graph500Result = graph500.Result
)

// Graph500 kernels.
var (
	Graph500Generate = graph500.Generate
	Graph500BFS      = graph500.RunBFS
	Graph500SSSP     = graph500.RunSSSP
)

// DefaultGraph500Config is a laptop-scale graph.
func DefaultGraph500Config() Graph500Config { return graph500.DefaultConfig() }

// --- KVS (HERD-style) ----------------------------------------------------------

type (
	// KVSConfig parameterizes the key-value store.
	KVSConfig = kvs.Config
	// KVSResult is the aggregate throughput.
	KVSResult = kvs.Result
)

// RunKVS executes the Fig. 21 benchmark.
var RunKVS = kvs.Run

// DefaultKVSConfig mirrors the paper with a laptop-scale key count.
func DefaultKVSConfig() KVSConfig { return kvs.DefaultConfig() }

// --- Spark ----------------------------------------------------------------------

type (
	// SparkConfig parameterizes the two-stage job.
	SparkConfig = sparksim.Config
	// SparkResult is a finished job with per-stage times.
	SparkResult = sparksim.JobResult
)

// Spark jobs.
var (
	SparkGroupBy = sparksim.RunGroupBy
	SparkSortBy  = sparksim.RunSortBy
)

// DefaultSparkConfig mirrors the paper's workload.
func DefaultSparkConfig() SparkConfig { return sparksim.DefaultConfig() }
