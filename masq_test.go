package masq

import (
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would — everything below compiles and runs against package masq alone.

func TestFacadeQuickstart(t *testing.T) {
	pair, err := NewConnectedPair(DefaultConfig(), ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello vpc")
	var got string
	pair.TB.Eng.Spawn("server", func(p *Proc) {
		s := pair.Server
		s.QP.PostRecv(p, RecvWR{WRID: 1, Addr: s.Buf, LKey: s.MR.LKey(), Len: s.Len})
		wc := s.RCQ.Wait(p)
		buf := make([]byte, wc.ByteLen)
		s.Node.Read(s.Buf, buf)
		got = string(buf)
	})
	pair.TB.Eng.Spawn("client", func(p *Proc) {
		c := pair.Client
		c.Node.Write(c.Buf, msg)
		c.QP.PostSend(p, SendWR{WRID: 2, Op: WRSend, LocalAddr: c.Buf, LKey: c.MR.LKey(), Len: len(msg)})
		if wc := c.SCQ.Wait(p); wc.Status != WCSuccess {
			t.Errorf("send WC: %v", wc.Status)
		}
	})
	pair.TB.Eng.Run()
	if got != string(msg) {
		t.Fatalf("got %q", got)
	}
}

func TestFacadeTenantPolicyTypes(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	tenant := tb.AddTenant(7, "acme")
	src, ok := ParseCIDR("10.0.0.0/8")
	if !ok {
		t.Fatal("ParseCIDR")
	}
	id := tenant.Policy.AddRule(Rule{Priority: 5, Proto: ProtoRDMA, Src: src, Dst: src, Action: Allow})
	if !tenant.Policy.Allows(ProtoRDMA, NewIP(10, 1, 1, 1), NewIP(10, 2, 2, 2)) {
		t.Fatal("rule should allow")
	}
	if !tenant.Policy.RemoveRule(id) {
		t.Fatal("RemoveRule")
	}
}

func TestFacadePerftest(t *testing.T) {
	pair, err := NewConnectedPair(DefaultConfig(), ModeHost)
	if err != nil {
		t.Fatal(err)
	}
	ev := StartSendLat(pair.TB.Eng, pair.Client, pair.Server, 2, 50)
	pair.TB.Eng.Run()
	if avg := ev.Value().Avg; avg < Us(0.5) || avg > Us(1.2) {
		t.Fatalf("latency = %v", avg)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 25 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	want := []string{
		"table1", "table2", "table4", "table5",
		"fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"abl-rename", "abl-cache", "abl-conntrack", "abl-qos", "abl-virtio-batch", "abl-nic-cache", "abl-mtu", "abl-transport",
	}
	have := map[string]bool{}
	for _, e := range exps {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := RunExperiment("nonexistent"); ok {
		t.Error("RunExperiment accepted a bogus id")
	}
}

func TestFacadeMPI(t *testing.T) {
	tb := NewTestbed(DefaultConfig())
	tb.AddTenant(100, "hpc")
	tb.AllowAll(100)
	nodes, err := SpawnMPIRanks(tb, ModeMasQ, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewMPIWorld(tb, nodes, DefaultMPIOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc, r *MPIRank) error {
		out, err := r.Allreduce(p, []float64{1})
		if err != nil {
			return err
		}
		if out[0] != 4 {
			t.Errorf("allreduce = %v", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
