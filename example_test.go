package masq_test

import (
	"fmt"

	"masq"
)

// The simulation is fully deterministic, so these examples assert their
// exact output — including virtual-time measurements.

func ExampleNewConnectedPair() {
	pair, err := masq.NewConnectedPair(masq.DefaultConfig(), masq.ModeMasQ)
	if err != nil {
		fmt.Println(err)
		return
	}
	eng := pair.TB.Eng
	eng.Spawn("server", func(p *masq.Proc) {
		s := pair.Server
		s.QP.PostRecv(p, masq.RecvWR{WRID: 1, Addr: s.Buf, LKey: s.MR.LKey(), Len: s.Len})
		wc := s.RCQ.Wait(p)
		buf := make([]byte, wc.ByteLen)
		s.Node.Read(s.Buf, buf)
		fmt.Printf("server received %q\n", buf)
	})
	eng.Spawn("client", func(p *masq.Proc) {
		c := pair.Client
		c.Node.Write(c.Buf, []byte("hello vpc"))
		c.QP.PostSend(p, masq.SendWR{WRID: 2, Op: masq.WRSend, LocalAddr: c.Buf, LKey: c.MR.LKey(), Len: 9})
		wc := c.SCQ.Wait(p)
		fmt.Printf("client send status: %v\n", wc.Status)
	})
	eng.Run()
	// Output:
	// server received "hello vpc"
	// client send status: SUCCESS
}

func ExamplePolicy_security() {
	tb := masq.NewTestbed(masq.DefaultConfig())
	tenant := tb.AddTenant(100, "acme")
	web, _ := masq.ParseCIDR("10.0.1.0/24")
	db, _ := masq.ParseCIDR("10.0.2.0/24")
	tenant.Policy.AddRule(masq.Rule{
		Priority: 10, Proto: masq.ProtoRDMA, Src: web, Dst: db, Action: masq.Allow,
	})
	fmt.Println("web->db:", tenant.Policy.Allows(masq.ProtoRDMA, masq.NewIP(10, 0, 1, 5), masq.NewIP(10, 0, 2, 5)))
	fmt.Println("db->web:", tenant.Policy.Allows(masq.ProtoRDMA, masq.NewIP(10, 0, 2, 5), masq.NewIP(10, 0, 1, 5)))
	// Output:
	// web->db: true
	// db->web: false
}

func ExampleStartSendLat() {
	pair, err := masq.NewConnectedPair(masq.DefaultConfig(), masq.ModeMasQ)
	if err != nil {
		fmt.Println(err)
		return
	}
	ev := masq.StartSendLat(pair.TB.Eng, pair.Client, pair.Server, 2, 1000)
	pair.TB.Eng.Run()
	fmt.Printf("2B one-way latency over MasQ: %v\n", ev.Value().Avg)
	// Output:
	// 2B one-way latency over MasQ: 1.08µs
}

func ExampleRunExperiment() {
	tbl, ok := masq.RunExperiment("table5")
	if !ok {
		fmt.Println("unknown experiment")
		return
	}
	for _, row := range tbl.Rows {
		fmt.Printf("%s: %s VMs (%s)\n", row[0], row[1], row[2])
	}
	// Output:
	// sr-iov: 8 VMs (non-ARI PCIe (8 VFs))
	// masq: 160 VMs (host memory)
}
