package simtime

import (
	"fmt"
	"testing"
)

// TestQueueTimeoutCompactsEagerly: a timed-out Getter's waiter record must
// leave the wait list immediately, not linger until the next Put skims it.
func TestQueueTimeoutCompactsEagerly(t *testing.T) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	eng.Spawn("getter", func(p *Proc) {
		if _, ok := q.GetTimeout(p, 10); ok {
			t.Error("got a value from an empty queue")
		}
		if got := len(q.waiters) - q.whead; got != 0 {
			t.Errorf("stale waiter left in list after timeout: %d", got)
		}
	})
	eng.Run()

	// A Put after the timeout must buffer the item (no waiter to swallow it).
	q.Put(42)
	if v, ok := q.TryGet(); !ok || v != 42 {
		t.Fatalf("item after timeout: got %v,%v want 42,true", v, ok)
	}
}

// TestEventTimeoutCompactsEagerly: same property for Event.WaitTimeout.
func TestEventTimeoutCompactsEagerly(t *testing.T) {
	eng := NewEngine()
	ev := NewEvent[string](eng)
	eng.Spawn("waiter", func(p *Proc) {
		if _, ok := ev.WaitTimeout(p, 10); ok {
			t.Error("wait succeeded without a trigger")
		}
		if got := len(ev.waiters); got != 0 {
			t.Errorf("stale waiter left in list after timeout: %d", got)
		}
	})
	eng.Run()
}

// TestTimeoutGenGuard: a waiter record recycled between a timeout's
// scheduling and its firing must not be corrupted by the stale callback.
// The first GetTimeout is satisfied early; its record is recycled by the
// second GetTimeout; the first deadline then passes and must be a no-op.
func TestTimeoutGenGuard(t *testing.T) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	eng.Spawn("getter", func(p *Proc) {
		// Satisfied at t=1, deadline at t=10 left pending.
		if v, ok := q.GetTimeout(p, 10); !ok || v != 1 {
			t.Errorf("first get: got %v,%v want 1,true", v, ok)
		}
		// Reuses the pooled record; its deadline is t≈101. The stale t=10
		// callback fires mid-wait and must not fake a timeout.
		if v, ok := q.GetTimeout(p, 100); !ok || v != 2 {
			t.Errorf("second get: got %v,%v want 2,true", v, ok)
		}
	})
	eng.After(1, func() { q.Put(1) })
	eng.After(50, func() { q.Put(2) })
	eng.Run()
}

// TestEventTimeoutGenGuard: the same reuse race through Event. The event
// triggers before the deadline; the waiter record is recycled onto a second
// event whose wait spans the stale deadline.
func TestEventTimeoutGenGuard(t *testing.T) {
	eng := NewEngine()
	ev1 := NewEvent[int](eng)
	ev2 := NewEvent[int](eng)
	eng.Spawn("waiter", func(p *Proc) {
		if v, ok := ev1.WaitTimeout(p, 10); !ok || v != 1 {
			t.Errorf("first wait: got %v,%v want 1,true", v, ok)
		}
		if v, ok := ev2.WaitTimeout(p, 100); !ok || v != 2 {
			t.Errorf("second wait: got %v,%v want 2,true", v, ok)
		}
	})
	eng.After(1, func() { ev1.Trigger(1) })
	eng.After(50, func() { ev2.Trigger(2) })
	eng.Run()
}

// TestResourceFIFOFairness: under sustained contention a capacity-1
// resource admits processes strictly in arrival order.
func TestResourceFIFOFairness(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		// Stagger arrivals so the queue order is unambiguous.
		eng.After(Duration(i+1), func() {
			eng.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				r.Acquire(p)
				order = append(order, i)
				p.Sleep(100) // hold long enough that all later arrivals queue
				r.Release()
			})
		})
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v: position %d got worker %d", order, i, got)
		}
	}
	if len(order) != 8 {
		t.Fatalf("only %d of 8 workers ran", len(order))
	}
}

// mixedWorkload drives procs, sleeps, queues (both consumption styles),
// events with and without timeouts, timers, and a contended resource, and
// returns the full event log as "time:tag" strings.
func mixedWorkload() []string {
	eng := NewEngine()
	var log []string
	mark := func(tag string) { log = append(log, fmt.Sprintf("%d:%s", eng.Now(), tag)) }

	q := NewQueue[int](eng)
	cbq := NewQueue[int](eng)
	ev := NewEvent[int](eng)
	res := NewResource(eng, 2)

	var onItem func(int)
	onItem = func(v int) {
		mark(fmt.Sprintf("cb=%d", v))
		cbq.OnNext(onItem)
	}
	cbq.OnNext(onItem)

	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
			for j := 0; j < 8; j++ {
				p.Sleep(Duration(3 + i))
				q.Put(i*100 + j)
				cbq.Put(i*100 + j)
			}
		})
		eng.Spawn(fmt.Sprintf("cons%d", i), func(p *Proc) {
			for j := 0; j < 8; j++ {
				if v, ok := q.GetTimeout(p, Duration(5+i)); ok {
					mark(fmt.Sprintf("got=%d", v))
				} else {
					mark("timeout")
				}
				res.Acquire(p)
				p.Sleep(2)
				res.Release()
			}
			if v, ok := ev.WaitTimeout(p, 40); ok {
				mark(fmt.Sprintf("ev=%d", v))
			} else {
				mark("evto")
			}
		})
	}
	tick := 0
	var tm *Timer
	tm = eng.NewTimer(func() {
		tick++
		mark(fmt.Sprintf("tick%d", tick))
		if tick < 10 {
			tm.ScheduleAfter(7)
		}
	})
	tm.ScheduleAfter(7)
	eng.After(60, func() { ev.Trigger(999) })
	eng.Run()
	log = append(log, fmt.Sprintf("end:%d:%d", eng.Now(), eng.Events()))
	return log
}

// TestDeterminismAB runs the mixed workload twice and compares the full
// event logs: pooling and free-list state must never leak into ordering.
func TestDeterminismAB(t *testing.T) {
	a, b := mixedWorkload(), mixedWorkload()
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestSleepWakeZeroAlloc: steady-state Sleep/wake must not allocate — the
// wake event is intrusive in the Proc and the heap slot is recycled.
func TestSleepWakeZeroAlloc(t *testing.T) {
	eng := NewEngine()
	ping := NewQueue[struct{}](eng)
	eng.Spawn("sleeper", func(p *Proc) {
		for {
			ping.Get(p)
			p.Sleep(1)
		}
	})
	step := func() {
		ping.Put(struct{}{})
		eng.RunUntil(eng.Now().Add(Us(1)))
	}
	step() // warm the waiter pool and queue ring
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state Sleep/wake allocates %.1f allocs/op, want 0", allocs)
	}
}
