package simtime

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5µs", woke)
	}
}

func TestSequentialSleeps(t *testing.T) {
	e := NewEngine()
	var ts []Time
	e.Spawn("s", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Millisecond)
			ts = append(ts, p.Now())
		}
	})
	e.Run()
	want := []Time{Time(Millisecond), Time(2 * Millisecond), Time(3 * Millisecond)}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("ts[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(2 * Microsecond)
				order = append(order, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(3 * Microsecond)
				order = append(order, "b")
			}
		})
		e.Run()
		return order
	}
	first := run()
	// t=2,3,4,6,6; at t=6 b wakes first because its wakeup was scheduled
	// earlier (at t=3) than a's (at t=4).
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("order = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: nondeterministic order %v", trial, got)
			}
		}
	}
}

func TestAtCallbacksRunInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 0) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(Time(Second), func() { fired = true })
	end := e.RunUntil(Time(Millisecond))
	if fired {
		t.Fatal("event past deadline fired")
	}
	if end != Time(Millisecond) {
		t.Fatalf("end = %v, want 1ms", end)
	}
	e.Run()
	if !fired {
		t.Fatal("event did not fire after resuming")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			n++
			if n == 10 {
				e.Stop()
				return
			}
		}
	})
	e.Run()
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

func TestEventTriggerWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	ev := NewEvent[int](e)
	var got []int
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) { got = append(got, ev.Wait(p)) })
	}
	e.Spawn("t", func(p *Proc) {
		p.Sleep(Microsecond)
		ev.Trigger(42)
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(got))
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestEventIsSticky(t *testing.T) {
	e := NewEngine()
	ev := NewEvent[string](e)
	ev.Trigger("x")
	ev.Trigger("y") // ignored
	var got string
	var at Time
	e.Spawn("late", func(p *Proc) {
		p.Sleep(Millisecond)
		got = ev.Wait(p)
		at = p.Now()
	})
	e.Run()
	if got != "x" {
		t.Fatalf("got %q, want x (second trigger must be ignored)", got)
	}
	if at != Time(Millisecond) {
		t.Fatalf("late waiter blocked; woke at %v", at)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	e := NewEngine()
	ev := NewEvent[int](e)
	var ok1, ok2 bool
	var t1, t2 Time
	e.Spawn("timesout", func(p *Proc) {
		_, ok1 = ev.WaitTimeout(p, 10*Microsecond)
		t1 = p.Now()
	})
	e.Spawn("succeeds", func(p *Proc) {
		_, ok2 = ev.WaitTimeout(p, 100*Microsecond)
		t2 = p.Now()
	})
	e.Spawn("trigger", func(p *Proc) {
		p.Sleep(50 * Microsecond)
		ev.Trigger(1)
	})
	e.Run()
	if ok1 || t1 != Time(10*Microsecond) {
		t.Fatalf("waiter 1: ok=%v at %v, want timeout at 10µs", ok1, t1)
	}
	if !ok2 || t2 != Time(50*Microsecond) {
		t.Fatalf("waiter 2: ok=%v at %v, want success at 50µs", ok2, t2)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microsecond)
			q.Put(i)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueBuffersWhenNoWaiter(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
	var second string
	e.Spawn("c", func(p *Proc) { second = q.Get(p) })
	e.Run()
	if second != "b" {
		t.Fatalf("second = %q", second)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var ok bool
	var at Time
	e.Spawn("c", func(p *Proc) {
		_, ok = q.GetTimeout(p, 7*Microsecond)
		at = p.Now()
	})
	e.Run()
	if ok || at != Time(7*Microsecond) {
		t.Fatalf("ok=%v at=%v", ok, at)
	}
	// A timed-out waiter must not swallow a later Put.
	var got int
	e.Spawn("c2", func(p *Proc) { got = q.Get(p) })
	e.Spawn("p", func(p *Proc) { q.Put(99) })
	e.Run()
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
}

func TestResourceSerializesAccess(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Microsecond)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	if len(finish) != 3 {
		t.Fatalf("finish = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Microsecond)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// Two run in [0,10], two in [10,20].
	want := []Time{Time(10 * Microsecond), Time(10 * Microsecond), Time(20 * Microsecond), Time(20 * Microsecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Microsecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(Microsecond)
			childAt = c.Now()
		})
		p.Sleep(10 * Microsecond)
	})
	e.Run()
	if childAt != Time(2*Microsecond) {
		t.Fatalf("child finished at %v, want 2µs", childAt)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		500 * Nanosecond: "500ns",
		2 * Microsecond:  "2µs",
		Ms(1.5):          "1.5ms",
		3 * Second:       "3s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestUsMsHelpers(t *testing.T) {
	if Us(2.5) != 2500*Nanosecond {
		t.Errorf("Us(2.5) = %v", Us(2.5))
	}
	if Ms(0.5) != 500*Microsecond {
		t.Errorf("Ms(0.5) = %v", Ms(0.5))
	}
	if Us(1).Micros() != 1 {
		t.Errorf("Micros() = %v", Us(1).Micros())
	}
	if Ms(1).Millis() != 1 {
		t.Errorf("Millis() = %v", Ms(1).Millis())
	}
	if Second.Seconds() != 1 {
		t.Errorf("Seconds() = %v", Second.Seconds())
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	if t0.Add(50) != Time(150) {
		t.Error("Add")
	}
	if Time(150).Sub(t0) != 50 {
		t.Error("Sub")
	}
}

func TestPendingProcsReportsBlocked(t *testing.T) {
	e := NewEngine()
	ev := NewEvent[int](e)
	e.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	e.Run() // drains: stuck is blocked forever, queue empties
	got := e.PendingProcs()
	if len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("PendingProcs = %v", got)
	}
}

// TestQuickScheduleOrdering: for any random set of sleep schedules, every
// process observes Now() as non-decreasing and wakeups never fire early.
func TestQuickScheduleOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 64 {
			delays = delays[:64]
		}
		e := NewEngine()
		ok := true
		var last Time
		for _, d := range delays {
			d := Duration(d%5000) * Microsecond
			e.Spawn("s", func(p *Proc) {
				start := p.Now()
				p.Sleep(d)
				if p.Now() < start.Add(d) {
					ok = false // woke early
				}
			})
		}
		e.At(0, func() { last = e.Now() })
		prev := Time(-1)
		for i := 0; i < 16; i++ {
			at := Time(Duration(i) * 100 * Microsecond)
			e.At(at, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		_ = last
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQueueOrderPreservedUnderMixedOps: random interleavings of puts and
// gets preserve FIFO order.
func TestQueueOrderPreservedUnderMixedOps(t *testing.T) {
	f := func(script []bool) bool {
		e := NewEngine()
		q := NewQueue[int](e)
		var got []int
		want := 0
		e.Spawn("driver", func(p *Proc) {
			next := 0
			for _, put := range script {
				if put {
					q.Put(next)
					next++
					want++
				} else if v, ok := q.TryGet(); ok {
					got = append(got, v)
				}
				p.Sleep(Microsecond)
			}
			for {
				v, ok := q.TryGet()
				if !ok {
					break
				}
				got = append(got, v)
			}
		})
		e.Run()
		if len(got) != want {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
