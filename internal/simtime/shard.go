package simtime

import (
	"fmt"
	"sort"
)

// ShardedEngine runs N Engines ("shards") under conservative-lookahead
// synchronization, the classic parallel-DES recipe for topologies whose
// components only interact through links with nonzero latency: each shard
// owns its own event heap, pools, and processes, and shards only exchange
// events through Exchanges that declare a minimum delivery latency.
//
// Execution proceeds in windows. Each window the coordinator computes the
// global minimum next-event time m (over every shard heap and every
// undelivered cross-shard message), sets the horizon h = m + L where L is
// the lookahead (the minimum latency declared by any Exchange), delivers
// every staged message with timestamp < h into its destination shard's
// heap, and lets every shard execute its events with timestamps < h in
// parallel. A message sent at time t carries a timestamp >= t + L >= h,
// so it always lands in a strictly future window: no shard ever receives
// an event in its past, and the barrier at h is the only synchronization.
//
// Determinism. Within a shard, events run in (time, seq) order exactly as
// on a standalone Engine. Across shards, staged messages are applied in
// (time, exchange ID, per-exchange seq) order — a key that depends only on
// wiring order and per-endpoint message counts, not on shard count or heap
// state — and they are applied at a window boundary, which falls at the
// same virtual instant for every shard count. A one-shard ShardedEngine
// therefore runs the same windows, applies the same messages in the same
// order, and produces byte-identical virtual-time traces to an N-shard
// run of the same program: it is the reference oracle the A/B guards
// compare against.
//
// The contract for sharded programs: a process or callback running on
// shard i must touch only shard-i state, and every cross-shard effect must
// go through an Exchange with at least the declared latency. Engine-level
// primitives (Queue, Event, Timer, Resource) are shard-local.
type ShardedEngine struct {
	shards    []*Engine
	exchanges []*Exchange
	lookahead Duration // min latency declared by any exchange
	haveLook  bool
	pending   []xmsg // staged messages not yet delivered to a shard heap

	// Worker plumbing: shard 0 runs on the coordinator goroutine; shards
	// 1..N-1 each get a persistent worker for the duration of a run.
	start []chan Time
	done  chan int
}

// xmsg is one staged cross-shard message. The (at, ex, seq) triple is a
// strict total order that is independent of shard count.
type xmsg struct {
	at  Time
	ex  int    // exchange ID, assigned in wiring order
	seq uint64 // per-exchange send sequence
	dst int
	fn  func()
}

// NewSharded returns a sharded engine with n shards (n >= 1), all clocks
// at zero. With n == 1 the windowed execution machinery still runs, which
// is exactly what makes the single-shard configuration a meaningful
// oracle for N-shard runs.
func NewSharded(n int) *ShardedEngine {
	if n < 1 {
		panic("simtime: NewSharded needs at least one shard")
	}
	se := &ShardedEngine{shards: make([]*Engine, n)}
	for i := range se.shards {
		se.shards[i] = NewEngine()
		se.shards[i].shard = i
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i's engine. Build shard-i components against it
// exactly as against a standalone Engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Lookahead returns the conservative lookahead: the minimum latency
// declared by any exchange, or 0 if no exchange exists yet (in which case
// shards are fully independent and run unsynchronized).
func (se *ShardedEngine) Lookahead() Duration {
	if !se.haveLook {
		return 0
	}
	return se.lookahead
}

// Now returns the global virtual time: the latest shard clock. Between
// windows every shard clock is within one lookahead of it.
func (se *ShardedEngine) Now() Time {
	var t Time
	for _, e := range se.shards {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Events returns the total number of events dispatched across all shards.
func (se *ShardedEngine) Events() uint64 {
	var n uint64
	for _, e := range se.shards {
		n += e.nevents
	}
	return n
}

// PendingProcs returns the names of unfinished processes across all
// shards, sorted. Useful in tests for deadlock diagnosis.
func (se *ShardedEngine) PendingProcs() []string {
	var names []string
	for _, e := range se.shards {
		names = append(names, e.PendingProcs()...)
	}
	sort.Strings(names)
	return names
}

// Stop makes the current run return at the next window barrier. It only
// marks shard 0 (the coordinator's shard), which the barrier check sees —
// writing other shards' flags from here would race with their window
// workers. Simulation code on shard i stops the whole run by calling its
// own engine's Stop: the shard quits its window early and the barrier
// ends the run.
func (se *ShardedEngine) Stop() { se.shards[0].stopped = true }

// Stopped reports whether any shard has stopped since the last run began.
func (se *ShardedEngine) Stopped() bool { return se.anyStopped() }

// Exchange is a directed cross-shard channel with a declared minimum
// delivery latency. Sends are staged in a single-writer buffer (only the
// source shard's goroutine appends; only the coordinator drains, at a
// barrier), making the mailbox lock-free. The exchange ID is assigned in
// creation order, so as long as the topology is wired in a deterministic
// order the cross-shard application order is deterministic too.
type Exchange struct {
	se       *ShardedEngine
	id       int
	src, dst int
	lat      Duration
	seq      uint64
	buf      []xmsg
}

// NewExchange declares a directed channel from shard src to shard dst
// whose messages always arrive at least minLatency after they are sent.
// The global lookahead shrinks to the smallest declared latency. src may
// equal dst: a self-exchange still stages and window-applies its messages,
// which keeps a one-shard topology byte-identical to the same topology
// split across shards.
func (se *ShardedEngine) NewExchange(src, dst int, minLatency Duration) *Exchange {
	if src < 0 || src >= len(se.shards) || dst < 0 || dst >= len(se.shards) {
		panic(fmt.Sprintf("simtime: NewExchange(%d, %d) out of range for %d shards", src, dst, len(se.shards)))
	}
	if minLatency <= 0 {
		panic("simtime: exchange latency must be positive (conservative lookahead needs a nonzero horizon)")
	}
	x := &Exchange{se: se, id: len(se.exchanges), src: src, dst: dst, lat: minLatency}
	se.exchanges = append(se.exchanges, x)
	if !se.haveLook || minLatency < se.lookahead {
		se.lookahead = minLatency
		se.haveLook = true
	}
	return x
}

// MinLatency returns the latency the exchange was declared with.
func (x *Exchange) MinLatency() Duration { return x.lat }

// Send stages fn to run on the destination shard at virtual time at. It
// must be called from the source shard's execution context (or before the
// run starts), and at must honor the global lookahead: at >= src.Now() +
// Lookahead. Violating the bound is a wiring bug — the destination shard
// may already have advanced past at — and panics rather than corrupting
// causality.
func (x *Exchange) Send(at Time, fn func()) {
	src := x.se.shards[x.src]
	if at < src.now.Add(x.se.lookahead) {
		panic(fmt.Sprintf("simtime: exchange %d send at %v violates lookahead %v (now %v)",
			x.id, at, x.se.lookahead, src.now))
	}
	x.seq++
	x.buf = append(x.buf, xmsg{at: at, ex: x.id, seq: x.seq, dst: x.dst, fn: fn})
}

// Run executes until every shard heap and every mailbox drains (or Stop
// is called) and returns the final virtual time, with all shard clocks
// settled on it.
func (se *ShardedEngine) Run() Time { return se.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= deadline and stops, leaving
// later events queued and undelivered messages staged. Like
// Engine.RunUntil it clears a previous Stop on entry and leaves every
// shard clock at the returned time.
func (se *ShardedEngine) RunUntil(deadline Time) Time {
	for _, e := range se.shards {
		e.stopped = false
	}
	se.startWorkers()
	defer se.stopWorkers()

	// Pick up messages staged before the run (topology setup, a previous
	// run cut short by Stop or deadline).
	se.collect()

	hitDeadline := false
	for !se.anyStopped() {
		next, ok := se.next()
		if !ok {
			break
		}
		if next > deadline {
			hitDeadline = true
			break
		}
		horizon := deadline + 1
		if se.haveLook {
			if h := next.Add(se.lookahead); h < horizon {
				horizon = h
			}
		}
		se.deliver(horizon)
		se.window(horizon)
		se.collect()
	}

	// Settle the clocks the way Engine.RunUntil does: on the deadline when
	// the run was cut short by it, otherwise on the last executed event.
	// A Stop leaves each shard's clock where it halted — a stopped shard
	// can still hold events older than its siblings' clocks, and bumping
	// it forward would replay them "in the past" on resume.
	end := Time(0)
	for _, e := range se.shards {
		if e.now > end {
			end = e.now
		}
	}
	if hitDeadline {
		end = deadline
	}
	if !se.anyStopped() {
		for _, e := range se.shards {
			if e.now < end {
				e.now = end
			}
		}
	}
	return end
}

// next returns the earliest pending timestamp across all shard heaps and
// staged messages.
func (se *ShardedEngine) next() (Time, bool) {
	var best Time
	ok := false
	for _, e := range se.shards {
		if len(e.pq) > 0 && (!ok || e.pq[0].at < best) {
			best = e.pq[0].at
			ok = true
		}
	}
	for i := range se.pending {
		if at := se.pending[i].at; !ok || at < best {
			best = at
			ok = true
		}
	}
	return best, ok
}

// deliver moves staged messages with timestamps below horizon into their
// destination shards' heaps. No sorting happens here: each message carries
// its (exchange, seq) key into the destination heap via scheduleEx, so the
// execution order is fixed by the heap comparator and is independent of
// which window a message rode in on.
func (se *ShardedEngine) deliver(horizon Time) {
	keep := se.pending[:0]
	for _, m := range se.pending {
		if m.at < horizon {
			se.shards[m.dst].scheduleEx(m.at, m.ex, m.seq, m.fn)
		} else {
			keep = append(keep, m)
		}
	}
	se.pending = keep
}

// window runs one synchronization window: every shard with work below the
// horizon executes it, shard 0 inline on the coordinator goroutine and
// the rest on their workers, then the barrier joins them.
func (se *ShardedEngine) window(horizon Time) {
	active := 0
	for i := 1; i < len(se.shards); i++ {
		e := se.shards[i]
		if len(e.pq) > 0 && e.pq[0].at < horizon {
			se.start[i] <- horizon
			active++
		}
	}
	se.shards[0].runWindow(horizon)
	for ; active > 0; active-- {
		<-se.done
	}
}

// collect drains every exchange's staging buffer into the pending list.
// It runs on the coordinator between windows, after the barrier, so no
// shard is appending concurrently.
func (se *ShardedEngine) collect() {
	for _, x := range se.exchanges {
		if len(x.buf) > 0 {
			se.pending = append(se.pending, x.buf...)
			x.buf = x.buf[:0]
		}
	}
}

func (se *ShardedEngine) anyStopped() bool {
	for _, e := range se.shards {
		if e.stopped {
			return true
		}
	}
	return false
}

// startWorkers launches one persistent goroutine per non-coordinator
// shard for the duration of a run. The channel handoffs give the barrier
// its happens-before edges: everything a shard wrote during its window is
// visible to the coordinator after done, and everything the coordinator
// delivered is visible to the shard after start.
func (se *ShardedEngine) startWorkers() {
	if len(se.shards) <= 1 || se.start != nil {
		return
	}
	se.start = make([]chan Time, len(se.shards))
	se.done = make(chan int, len(se.shards))
	for i := 1; i < len(se.shards); i++ {
		ch := make(chan Time)
		se.start[i] = ch
		go func(i int, ch chan Time) {
			for h := range ch {
				se.shards[i].runWindow(h)
				se.done <- i
			}
		}(i, ch)
	}
}

// stopWorkers retires the run's workers. Blocked simulation processes
// keep their goroutines (as on a standalone Engine), but no window worker
// outlives the run.
func (se *ShardedEngine) stopWorkers() {
	if se.start == nil {
		return
	}
	for i := 1; i < len(se.start); i++ {
		close(se.start[i])
	}
	se.start = nil
}
