package simtime

// waiter is one parked process's slot in a queue or event wait list.
// Waiters are pooled per primitive: the blocked process releases its waiter
// back to the pool when it resumes, so steady-state blocking allocates
// nothing. gen is a reuse-after-free guard — a timeout callback captured
// against an earlier incarnation of the record compares generations and
// becomes a no-op instead of corrupting the waiter's next user.
type waiter[T any] struct {
	p        *Proc
	val      T
	gen      uint32
	fired    bool
	timedOut bool
}

// waiterPool is a per-primitive free list of waiter records.
type waiterPool[T any] struct {
	free []*waiter[T]
}

func (wp *waiterPool[T]) get(p *Proc) *waiter[T] {
	if n := len(wp.free); n > 0 {
		w := wp.free[n-1]
		wp.free[n-1] = nil
		wp.free = wp.free[:n-1]
		w.p = p
		return w
	}
	return &waiter[T]{p: p}
}

// put releases w for reuse. The generation bump invalidates any timeout
// callback still holding a reference to this incarnation.
func (wp *waiterPool[T]) put(w *waiter[T]) {
	var zero T
	w.val = zero
	w.p = nil
	w.fired, w.timedOut = false, false
	w.gen++
	wp.free = append(wp.free, w)
}

// Event is a one-shot future: processes Wait on it, and a single Trigger
// wakes them all and records a value. Once triggered the event stays
// triggered, so later Waits return immediately. Use Queue for repeated
// notifications.
type Event[T any] struct {
	eng       *Engine
	triggered bool
	val       T
	waiters   []*waiter[T]
	pool      waiterPool[T]
}

// NewEvent returns an untriggered event owned by e.
func NewEvent[T any](e *Engine) *Event[T] {
	return &Event[T]{eng: e}
}

// Triggered reports whether the event has fired.
func (ev *Event[T]) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (zero if not yet).
func (ev *Event[T]) Value() T { return ev.val }

// Trigger fires the event with val, waking all current waiters at the
// current virtual time. Triggering an already-triggered event is a no-op.
func (ev *Event[T]) Trigger(val T) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.val = val
	for i, w := range ev.waiters {
		ev.waiters[i] = nil
		if w.fired {
			continue
		}
		w.fired = true
		w.val = val
		ev.eng.wake(w.p, ev.eng.now)
	}
	ev.waiters = ev.waiters[:0]
}

// Wait blocks p until the event triggers, returning the trigger value.
func (ev *Event[T]) Wait(p *Proc) T {
	if ev.triggered {
		return ev.val
	}
	w := ev.pool.get(p)
	ev.waiters = append(ev.waiters, w)
	p.block()
	val := w.val
	ev.pool.put(w)
	return val
}

// WaitTimeout blocks p until the event triggers or d elapses. ok is false
// on timeout. A timed-out waiter is removed from the wait list eagerly, so
// abandoned records never pile up between Triggers.
func (ev *Event[T]) WaitTimeout(p *Proc, d Duration) (val T, ok bool) {
	if ev.triggered {
		return ev.val, true
	}
	w := ev.pool.get(p)
	ev.waiters = append(ev.waiters, w)
	gen := w.gen
	eng := p.eng
	eng.schedule(eng.now.Add(d), func() {
		if w.gen != gen || w.fired {
			return // raced with Trigger, or the record was recycled
		}
		w.fired, w.timedOut = true, true
		ev.removeWaiter(w)
		eng.wake(w.p, eng.now)
	})
	p.block()
	val, timedOut := w.val, w.timedOut
	ev.pool.put(w)
	return val, !timedOut
}

// removeWaiter compacts w out of the wait list, preserving order.
func (ev *Event[T]) removeWaiter(w *waiter[T]) {
	for i, x := range ev.waiters {
		if x == w {
			copy(ev.waiters[i:], ev.waiters[i+1:])
			ev.waiters[len(ev.waiters)-1] = nil
			ev.waiters = ev.waiters[:len(ev.waiters)-1]
			return
		}
	}
}

// Queue is an unbounded FIFO channel between simulation processes. Put
// never blocks; Get blocks while the queue is empty. Items are delivered in
// insertion order and each item wakes at most one waiter.
//
// A queue has two consumption styles. Process style: a Proc calls Get and
// parks until an item arrives. Callback style: OnNext arms a function that
// the engine invokes inline with the next item — no goroutine, no channel
// handoff, no scheduler round trip. Purely reactive components (packet
// pipelines, demultiplexers) should use the callback style; a queue must
// not mix blocked Getters and an armed callback.
type Queue[T any] struct {
	eng *Engine

	// items is a head-indexed ring: popping advances head, and the backing
	// array is reused from the start each time the queue drains, so a
	// steady-state produce/consume cycle stops allocating.
	items []T
	head  int

	waiters []*waiter[T]
	whead   int
	pool    waiterPool[T]

	cb  func(T) // armed one-shot consumer callback (nil when absent)
	svc event   // intrusive delivery event for the callback path
}

// NewQueue returns an empty queue owned by e.
func NewQueue[T any](e *Engine) *Queue[T] {
	q := &Queue[T]{eng: e}
	q.svc.fn = q.service
	return q
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

func (q *Queue[T]) pushItem(v T) { q.items = append(q.items, v) }

func (q *Queue[T]) popItem() (T, bool) {
	if q.head == len(q.items) {
		var zero T
		return zero, false
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

func (q *Queue[T]) pushWaiter(w *waiter[T]) { q.waiters = append(q.waiters, w) }

func (q *Queue[T]) popWaiter() (*waiter[T], bool) {
	if q.whead == len(q.waiters) {
		return nil, false
	}
	w := q.waiters[q.whead]
	q.waiters[q.whead] = nil
	q.whead++
	if q.whead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.whead = 0
	}
	return w, true
}

// removeWaiter compacts w out of the wait list, preserving FIFO order.
func (q *Queue[T]) removeWaiter(w *waiter[T]) {
	for i := q.whead; i < len(q.waiters); i++ {
		if q.waiters[i] != w {
			continue
		}
		copy(q.waiters[i:], q.waiters[i+1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		if q.whead == len(q.waiters) {
			q.waiters = q.waiters[:0]
			q.whead = 0
		}
		return
	}
}

// Put appends v and, if a process is blocked in Get, hands v to the
// longest-waiting one; if a callback is armed instead, delivery is
// scheduled at the current instant.
func (q *Queue[T]) Put(v T) {
	for {
		w, ok := q.popWaiter()
		if !ok {
			break
		}
		if w.fired {
			continue // defensive: timed-out waiters are compacted eagerly
		}
		w.fired = true
		w.val = v
		q.eng.wake(w.p, q.eng.now)
		return
	}
	q.pushItem(v)
	if q.cb != nil && !q.svc.inHeap {
		q.eng.scheduleEvent(&q.svc, q.eng.now)
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	if v, ok := q.popItem(); ok {
		return v
	}
	w := q.pool.get(p)
	q.pushWaiter(w)
	p.block()
	v := w.val
	q.pool.put(w)
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	return q.popItem()
}

// GetTimeout is Get with a deadline; ok is false on timeout. Like every
// other resume path the timeout wakes the process through the engine's wake
// event rather than running it inline, and the abandoned waiter record is
// compacted out of the wait list immediately.
func (q *Queue[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	if v, ok := q.popItem(); ok {
		return v, true
	}
	w := q.pool.get(p)
	q.pushWaiter(w)
	gen := w.gen
	eng := p.eng
	eng.schedule(eng.now.Add(d), func() {
		if w.gen != gen || w.fired {
			return // raced with Put, or the record was recycled
		}
		w.fired, w.timedOut = true, true
		q.removeWaiter(w)
		eng.wake(w.p, eng.now)
	})
	p.block()
	v, timedOut := w.val, w.timedOut
	q.pool.put(w)
	return v, !timedOut
}

// OnNext arms fn as a one-shot consumer callback: the engine delivers the
// next available item to fn inline in the event loop, at the instant the
// item is available (items already buffered are delivered at the current
// time, mirroring how a Put wakes a parked Getter). The callback is
// consumed by the delivery; re-arm from inside fn — typically after
// draining any backlog with TryGet — to keep receiving. Only one callback
// may be armed at a time, and an armed queue must not also have blocked
// Getters.
func (q *Queue[T]) OnNext(fn func(T)) {
	if q.cb != nil {
		panic("simtime: Queue.OnNext: a callback is already armed")
	}
	if fn == nil {
		panic("simtime: Queue.OnNext: nil callback")
	}
	q.cb = fn
	if q.Len() > 0 && !q.svc.inHeap {
		q.eng.scheduleEvent(&q.svc, q.eng.now)
	}
}

// service is the queue's intrusive delivery event: hand one item to the
// armed callback.
func (q *Queue[T]) service() {
	cb := q.cb
	if cb == nil {
		return // disarmed after the delivery was scheduled
	}
	v, ok := q.popItem()
	if !ok {
		return // consumed by a TryGet after the delivery was scheduled
	}
	q.cb = nil
	cb(v)
}

// Resource is a counting semaphore with FIFO admission, used to model
// contended capacity such as NIC processing slots or CPU cores.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Proc
	whead    int
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("simtime: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire blocks p until a unit of capacity is available and claims it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// Whoever released on our behalf already counted us in.
}

// Release returns a unit of capacity, waking the longest waiter if any.
func (r *Resource) Release() {
	if r.whead < len(r.waiters) {
		p := r.waiters[r.whead]
		r.waiters[r.whead] = nil
		r.whead++
		if r.whead == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.whead = 0
		}
		// Capacity transfers directly to the waiter; inUse is unchanged.
		r.eng.wake(p, r.eng.now)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("simtime: Release without Acquire")
	}
}

// InUse returns the number of currently-held units.
func (r *Resource) InUse() int { return r.inUse }
