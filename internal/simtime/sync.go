package simtime

// Event is a one-shot future: processes Wait on it, and a single Trigger
// wakes them all and records a value. Once triggered the event stays
// triggered, so later Waits return immediately. Use Queue for repeated
// notifications.
type Event[T any] struct {
	eng       *Engine
	triggered bool
	val       T
	waiters   []*waiter[T]
}

type waiter[T any] struct {
	p        *Proc
	fired    bool
	val      T
	timedOut bool
}

// NewEvent returns an untriggered event owned by e.
func NewEvent[T any](e *Engine) *Event[T] {
	return &Event[T]{eng: e}
}

// Triggered reports whether the event has fired.
func (ev *Event[T]) Triggered() bool { return ev.triggered }

// Value returns the value the event was triggered with (zero if not yet).
func (ev *Event[T]) Value() T { return ev.val }

// Trigger fires the event with val, waking all current waiters at the
// current virtual time. Triggering an already-triggered event is a no-op.
func (ev *Event[T]) Trigger(val T) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.val = val
	for _, w := range ev.waiters {
		if w.fired {
			continue
		}
		w.fired = true
		w.val = val
		p := w.p
		ev.eng.wake(p, ev.eng.now)
	}
	ev.waiters = nil
}

// Wait blocks p until the event triggers, returning the trigger value.
func (ev *Event[T]) Wait(p *Proc) T {
	if ev.triggered {
		return ev.val
	}
	w := &waiter[T]{p: p}
	ev.waiters = append(ev.waiters, w)
	p.block()
	return w.val
}

// WaitTimeout blocks p until the event triggers or d elapses. ok is false
// on timeout.
func (ev *Event[T]) WaitTimeout(p *Proc, d Duration) (val T, ok bool) {
	if ev.triggered {
		return ev.val, true
	}
	w := &waiter[T]{p: p}
	ev.waiters = append(ev.waiters, w)
	p.eng.schedule(p.eng.now.Add(d), func() {
		if w.fired {
			return
		}
		w.fired = true
		w.timedOut = true
		p.eng.runProc(p)
	})
	p.block()
	return w.val, !w.timedOut
}

// Queue is an unbounded FIFO channel between simulation processes. Put
// never blocks; Get blocks while the queue is empty. Items are delivered in
// insertion order and each item wakes at most one waiter.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiters []*waiter[T]
}

// NewQueue returns an empty queue owned by e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and, if a process is blocked in Get, hands v to the
// longest-waiting one.
func (q *Queue[T]) Put(v T) {
	// Deliver directly to the first still-armed waiter, if any.
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.fired {
			continue
		}
		w.fired = true
		w.val = v
		q.eng.wake(w.p, q.eng.now)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	w := &waiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.block()
	return w.val
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// GetTimeout is Get with a deadline; ok is false on timeout.
func (q *Queue[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		return v, true
	}
	w := &waiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.eng.schedule(p.eng.now.Add(d), func() {
		if w.fired {
			return
		}
		w.fired = true
		w.timedOut = true
		p.eng.runProc(p)
	})
	p.block()
	return w.val, !w.timedOut
}

// Resource is a counting semaphore with FIFO admission, used to model
// contended capacity such as NIC processing slots or CPU cores.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("simtime: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire blocks p until a unit of capacity is available and claims it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// Whoever released on our behalf already counted us in.
}

// Release returns a unit of capacity, waking the longest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Capacity transfers directly to the waiter; inUse is unchanged.
		r.eng.wake(p, r.eng.now)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("simtime: Release without Acquire")
	}
}

// InUse returns the number of currently-held units.
func (r *Resource) InUse() int { return r.inUse }
