// Package simtime implements a deterministic discrete-event simulation
// engine in the style of SimPy: simulated components run as cooperative
// processes (goroutines managed by the engine), exactly one of which
// executes at a time. Blocking primitives — Sleep, Wait, Queue.Get,
// Resource.Acquire — hand control back to the engine, which advances the
// virtual clock to the next scheduled wakeup.
//
// Virtual time is an int64 nanosecond count starting at zero. There is no
// wall clock anywhere in the engine, so a simulation run is a pure function
// of its inputs: the same program produces the same event order and the
// same timestamps on every run.
package simtime

import (
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Us returns a Duration of us microseconds. Fractional microseconds are
// preserved to nanosecond resolution.
func Us(us float64) Duration { return Duration(us * 1000) }

// Ms returns a Duration of ms milliseconds.
func Ms(ms float64) Duration { return Duration(ms * 1e6) }

// Seconds returns the duration expressed in (floating-point) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration expressed in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration expressed in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Millis())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled engine action: either waking a process or running an
// inline callback.
//
// Events come in two flavors. Pooled events are owned by the engine: they
// are drawn from a free list in schedule and recycled when they fire, so
// steady-state scheduling allocates nothing. Intrusive events are embedded
// in a long-lived owner (a Proc's wake event, a Queue's delivery event, a
// Timer) and carry a reusable fn, making their whole schedule→fire cycle
// allocation-free.
type event struct {
	at     Time
	seq    uint64 // tie-break so equal-time events run in schedule order
	xkey   uint64 // cross-shard ordering key; 0 for ordinary local events
	fn     func() // runs inline in the engine loop; must not block
	pooled bool   // engine-owned: recycle onto the free list after firing
	inHeap bool   // double-schedule guard for intrusive events
}

// eventQueue is a 4-ary min-heap over (at, xkey, seq). Because seq is
// unique, the ordering is a strict total order and the minimum is always
// unique, so the pop sequence — and therefore the simulation — is
// independent of heap shape and arity. The 4-ary layout halves the tree
// depth of a binary heap and the hand-rolled sift loops (hole-based, no
// interface dispatch, no swaps) take heap maintenance off the hot-path
// profile.
//
// xkey exists for the sharded engine. Local events carry xkey 0 and tie-
// break on seq, the insertion order. Exchange deliveries carry a key built
// from (exchange ID, per-exchange send sequence), which (a) runs every
// cross-shard delivery at an instant after the instant's local events, and
// (b) orders simultaneous deliveries by wiring order rather than by the
// window that happened to carry them. Both rules depend only on values
// that are invariant across shard counts, which is what lets an N-shard
// run replay the 1-shard oracle byte for byte.
type eventQueue []*event

// before reports whether a orders strictly before b.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.xkey != b.xkey {
		return a.xkey < b.xkey
	}
	return a.seq < b.seq
}

func (e *Engine) pushEvent(ev *event) {
	q := append(e.pq, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !eventBefore(ev, p) {
			break
		}
		q[i] = p
		i = parent
	}
	q[i] = ev
	e.pq = q
}

func (e *Engine) popEvent() *event {
	q := e.pq
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	e.pq = q
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m, mc := c, q[c]
			for j := c + 1; j < end; j++ {
				if eventBefore(q[j], mc) {
					m, mc = j, q[j]
				}
			}
			if !eventBefore(mc, last) {
				break
			}
			q[i] = mc
			i = m
		}
		q[i] = last
	}
	return top
}

// Engine owns the virtual clock and the set of managed processes.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventQueue
	free    []*event // recycled pooled events
	nevents uint64   // events dispatched (perf accounting)
	procs   map[*Proc]struct{}
	current *Proc
	turn    chan struct{}
	stopped bool
	shard   int // index within a ShardedEngine; 0 for a standalone engine
}

// NewEngine returns an engine with the clock at zero and no processes.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		turn:  make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ShardID returns the engine's index within its ShardedEngine, or 0 for a
// standalone engine. Cross-shard plumbing (simnet exchanges, the sharded
// trace recorder) uses it to pick the right per-shard lane.
func (e *Engine) ShardID() int { return e.shard }

// Events returns the number of events the engine has dispatched so far.
// It is the denominator of the events-per-second wall-clock figure the
// benchmark harness tracks across revisions.
func (e *Engine) Events() uint64 { return e.nevents }

// schedule enqueues fn to run at time at (>= now) on a pooled event.
func (e *Engine) schedule(at Time, fn func()) {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{pooled: true}
	}
	ev.fn = fn
	e.scheduleEvent(ev, at)
}

// scheduleEvent enqueues ev (whose fn is already set) to fire at time at
// (>= now). For intrusive events this is the allocation-free scheduling
// path; an event may only be in the heap once, so rescheduling before the
// previous firing is a bug the guard below turns into a panic.
func (e *Engine) scheduleEvent(ev *event, at Time) {
	if ev.inHeap {
		panic("simtime: event scheduled twice")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at, ev.seq, ev.xkey = at, e.seq, 0
	ev.inHeap = true
	e.pushEvent(ev)
}

// scheduleEx enqueues an exchange delivery with its shard-count-invariant
// ordering key: exchange exID's send number exSeq, firing at time at. The
// key packs (exID+1, exSeq) into 64 bits — exID+1 so every delivery sorts
// after the instant's local events (xkey 0), with 40 bits of sequence per
// exchange (≈10^12 sends, far beyond any simulated run).
func (e *Engine) scheduleEx(at Time, exID int, exSeq uint64, fn func()) {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{pooled: true}
	}
	ev.fn = fn
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at, ev.seq = at, e.seq
	ev.xkey = uint64(exID+1)<<40 | exSeq
	ev.inHeap = true
	e.pushEvent(ev)
}

// At schedules fn to run inline at virtual time at. fn must not block; to
// run blocking logic, spawn a process from inside fn.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run inline d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Proc is a managed simulation process. All blocking calls take the Proc so
// that the engine knows which goroutine is yielding.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	// wakeEv is the proc's intrusive wake event. A parked proc has exactly
	// one pending wakeup, so a single pre-allocated event (with a reusable
	// resume closure) makes Sleep and every queue/event/resource wakeup
	// allocation-free in steady state.
	wakeEv event
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process running fn, started at the current virtual time
// (after already-scheduled events for this instant).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	p.wakeEv.fn = func() { e.runProc(p) }
	e.procs[p] = struct{}{}
	e.schedule(e.now, func() {
		go func() {
			<-p.resume // wait for the engine to hand us the baton
			fn(p)
			p.done = true
			delete(e.procs, p)
			e.yieldToEngine(p)
		}()
		e.runProc(p)
	})
	return p
}

// runProc transfers control to p and blocks the engine loop until p yields.
func (e *Engine) runProc(p *Proc) {
	e.current = p
	p.resume <- struct{}{}
	<-e.turn
	e.current = nil
}

// yieldToEngine returns control from process p to the engine loop.
func (e *Engine) yieldToEngine(p *Proc) {
	e.turn <- struct{}{}
}

// block parks the calling process until something calls wake on it.
// It must only be called from within p's goroutine while p is current.
func (p *Proc) block() {
	p.eng.yieldToEngine(p)
	<-p.resume
}

// wake schedules p to resume at time at, reusing the proc's intrusive wake
// event — no allocation.
func (e *Engine) wake(p *Proc, at Time) {
	e.scheduleEvent(&p.wakeEv, at)
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Still yield so that equal-time events interleave fairly.
		p.eng.wake(p, p.eng.now)
		p.block()
		return
	}
	p.eng.wake(p, p.eng.now.Add(d))
	p.block()
}

// Yield cedes the processor to other events scheduled at the current
// instant and then continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes scheduled events in time order until the queue drains or
// Stop is called. It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= deadline and then stops,
// leaving later events queued. It returns the virtual time when it stopped.
//
// Entering RunUntil (or Run) clears a previous Stop: Stop halts the
// current run, and the next Run/RunUntil call resumes from the queued
// events. Use Stopped between runs to observe whether the last run was
// halted.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.pq) > 0 {
		ev := e.pq[0]
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		e.dispatch(ev)
	}
	return e.now
}

// runWindow executes events with timestamps strictly below horizon,
// leaving the clock at the last executed event. It is the per-shard inner
// loop of ShardedEngine: unlike RunUntil it neither clears a pending Stop
// nor advances the clock to the horizon, so a shard's Now never outruns
// its own event stream between barriers.
func (e *Engine) runWindow(horizon Time) {
	for !e.stopped && len(e.pq) > 0 {
		ev := e.pq[0]
		if ev.at >= horizon {
			return
		}
		e.dispatch(ev)
	}
}

// dispatch pops and executes the head event ev (== e.pq[0]).
func (e *Engine) dispatch(ev *event) {
	e.popEvent()
	ev.inHeap = false
	fn := ev.fn
	// Recycle pooled events (and clear intrusive ones) before running
	// fn, so the callback may immediately reschedule.
	if ev.pooled {
		ev.fn = nil
		e.free = append(e.free, ev)
	}
	if fn == nil {
		return // cancelled
	}
	e.now = ev.at
	e.nevents++
	fn()
}

// Stop makes Run return after the current event finishes. It is safe to
// call from inside event callbacks or processes. A stopped engine is not
// dead: the next Run/RunUntil call clears the flag and resumes from the
// still-queued events.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last time a run
// started.
func (e *Engine) Stopped() bool { return e.stopped }

// Timer is a re-armable one-shot callback with a pre-allocated event, the
// allocation-free alternative to Engine.After for components that arm the
// same deadline logic over and over (retransmission timers, periodic
// service). The zero value is not usable; call NewTimer. A Timer may only
// have one pending firing: re-arming while Pending panics, so owners keep
// their own state machine honest.
type Timer struct {
	eng *Engine
	ev  event
}

// NewTimer returns a timer that runs fn inline in the engine loop each time
// it fires. fn must not block.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e}
	t.ev.fn = fn
	return t
}

// ScheduleAt arms the timer to fire at virtual time at (>= now).
func (t *Timer) ScheduleAt(at Time) { t.eng.scheduleEvent(&t.ev, at) }

// ScheduleAfter arms the timer to fire d after the current time.
func (t *Timer) ScheduleAfter(d Duration) { t.ScheduleAt(t.eng.now.Add(d)) }

// Pending reports whether the timer is armed and has not fired yet.
func (t *Timer) Pending() bool { return t.ev.inHeap }

// PendingProcs returns the names of processes that have been spawned but
// have not finished, sorted. Useful in tests for deadlock diagnosis.
func (e *Engine) PendingProcs() []string {
	var names []string
	for p := range e.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
