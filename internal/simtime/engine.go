// Package simtime implements a deterministic discrete-event simulation
// engine in the style of SimPy: simulated components run as cooperative
// processes (goroutines managed by the engine), exactly one of which
// executes at a time. Blocking primitives — Sleep, Wait, Queue.Get,
// Resource.Acquire — hand control back to the engine, which advances the
// virtual clock to the next scheduled wakeup.
//
// Virtual time is an int64 nanosecond count starting at zero. There is no
// wall clock anywhere in the engine, so a simulation run is a pure function
// of its inputs: the same program produces the same event order and the
// same timestamps on every run.
package simtime

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Us returns a Duration of us microseconds. Fractional microseconds are
// preserved to nanosecond resolution.
func Us(us float64) Duration { return Duration(us * 1000) }

// Ms returns a Duration of ms milliseconds.
func Ms(ms float64) Duration { return Duration(ms * 1e6) }

// Seconds returns the duration expressed in (floating-point) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration expressed in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration expressed in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Millis())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled engine action: either waking a process or running an
// inline callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func() // runs inline in the engine loop; must not block
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the set of managed processes.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventQueue
	procs   map[*Proc]struct{}
	current *Proc
	turn    chan struct{}
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no processes.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		turn:  make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues fn to run at time at (>= now).
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// At schedules fn to run inline at virtual time at. fn must not block; to
// run blocking logic, spawn a process from inside fn.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run inline d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Proc is a managed simulation process. All blocking calls take the Proc so
// that the engine knows which goroutine is yielding.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process running fn, started at the current virtual time
// (after already-scheduled events for this instant).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.schedule(e.now, func() {
		go func() {
			<-p.resume // wait for the engine to hand us the baton
			fn(p)
			p.done = true
			delete(e.procs, p)
			e.yieldToEngine(p)
		}()
		e.runProc(p)
	})
	return p
}

// runProc transfers control to p and blocks the engine loop until p yields.
func (e *Engine) runProc(p *Proc) {
	e.current = p
	p.resume <- struct{}{}
	<-e.turn
	e.current = nil
}

// yieldToEngine returns control from process p to the engine loop.
func (e *Engine) yieldToEngine(p *Proc) {
	e.turn <- struct{}{}
}

// block parks the calling process until something calls wake on it.
// It must only be called from within p's goroutine while p is current.
func (p *Proc) block() {
	p.eng.yieldToEngine(p)
	<-p.resume
}

// wake schedules p to resume at time at.
func (e *Engine) wake(p *Proc, at Time) {
	e.schedule(at, func() { e.runProc(p) })
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Still yield so that equal-time events interleave fairly.
		p.eng.wake(p, p.eng.now)
		p.block()
		return
	}
	p.eng.wake(p, p.eng.now.Add(d))
	p.block()
}

// Yield cedes the processor to other events scheduled at the current
// instant and then continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes scheduled events in time order until the queue drains or
// Stop is called. It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= deadline and then stops,
// leaving later events queued. It returns the virtual time when it stopped.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped && e.pq.Len() > 0 {
		ev := e.pq[0]
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.pq)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Stop makes Run return after the current event finishes. It is safe to
// call from inside event callbacks or processes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// PendingProcs returns the names of processes that have been spawned but
// have not finished, sorted. Useful in tests for deadlock diagnosis.
func (e *Engine) PendingProcs() []string {
	var names []string
	for p := range e.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
