package simtime

import "testing"

// BenchmarkSleepWake measures one Sleep/wake round trip of a single proc:
// the engine schedules the proc's intrusive wake event, hands the baton to
// the goroutine, and takes it back. Steady state must be 0 allocs/op — the
// wake event is pre-allocated in the Proc and the heap slot is recycled.
func BenchmarkSleepWake(b *testing.B) {
	eng := NewEngine()
	n := b.N
	eng.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkTimer measures a self-rescheduling Timer callback: the pure
// engine-loop path with no goroutine handoff at all. 0 allocs/op.
func BenchmarkTimer(b *testing.B) {
	eng := NewEngine()
	n := b.N
	var t *Timer
	t = eng.NewTimer(func() {
		if n--; n > 0 {
			t.ScheduleAfter(1)
		}
	})
	t.ScheduleAfter(1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkAfter measures closure-scheduled events through the engine's
// event free list: the event object is pooled, the closure is the only
// allocation (1 alloc/op).
func BenchmarkAfter(b *testing.B) {
	eng := NewEngine()
	n := b.N
	var step func()
	step = func() {
		if n--; n > 0 {
			eng.After(1, step)
		}
	}
	eng.After(1, step)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkQueueCallback measures the OnNext fast path: a producer timer
// puts an item, the armed callback consumes it inline and re-arms. This is
// the pattern the RNIC pipelines run per packet. 0 allocs/op.
func BenchmarkQueueCallback(b *testing.B) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	n := b.N
	var tick *Timer
	var onItem func(int)
	onItem = func(int) {
		if n--; n > 0 {
			q.OnNext(onItem)
			tick.ScheduleAfter(1)
		}
	}
	tick = eng.NewTimer(func() { q.Put(1) })
	q.OnNext(onItem)
	tick.ScheduleAfter(1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkQueueProcPingPong measures the blocking path: a producer proc
// and a consumer proc alternating Put/Get, so every Get parks the consumer
// and every Put wakes it through the pooled waiter records. 0 allocs/op in
// steady state.
func BenchmarkQueueProcPingPong(b *testing.B) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	n := b.N
	eng.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Put(i)
			p.Sleep(1)
		}
	})
	eng.Spawn("consumer", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Get(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkResource measures Acquire/Release handoff between two procs
// contending for a capacity-1 resource (the firmware-serialization
// pattern). Waiter records are pooled; 0 allocs/op in steady state.
func BenchmarkResource(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	n := b.N
	worker := func(p *Proc) {
		for i := 0; i < n/2; i++ {
			r.Acquire(p)
			p.Sleep(1)
			r.Release()
		}
	}
	eng.Spawn("w1", worker)
	eng.Spawn("w2", worker)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkEventHeap measures raw push/pop through the 4-ary event heap
// with a K-deep backlog, the core O(log n) cost of every event.
func BenchmarkEventHeap(b *testing.B) {
	eng := NewEngine()
	const depth = 1024
	n := b.N
	fn := func() {}
	// Seed a standing backlog so push/pop exercise real heap depth.
	for i := 0; i < depth; i++ {
		eng.After(Duration(1+(i*7919)%4096), fn)
	}
	var t *Timer
	t = eng.NewTimer(func() {
		if n--; n > 0 {
			t.ScheduleAfter(Duration(1 + (n*7919)%4096))
		}
	})
	t.ScheduleAfter(1)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}
