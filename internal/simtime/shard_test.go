package simtime

import (
	"fmt"
	"strings"
	"testing"
)

// ringLogs runs the reference sharded workload — hosts on a bidirectional
// ring exchanging tokens every period, plus a local tick per host — and
// returns one log per host. The wiring order, send order, and log format
// are independent of the shard count, so logs must be byte-identical for
// any shards value; TestShardedDeterminismAB pins that.
func ringLogs(shards, hosts int, until Time) []string {
	const (
		lat    = Duration(2000) // cross-shard link latency = lookahead
		period = Duration(700)
		tick   = Duration(300)
	)
	se := NewSharded(shards)
	logs := make([]*strings.Builder, hosts)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}
	// Wire right- then left-neighbor exchanges per host, in host order, so
	// exchange IDs do not depend on the shard count.
	exR := make([]*Exchange, hosts)
	exL := make([]*Exchange, hosts)
	shardOf := func(host int) int { return host % shards }
	for i := 0; i < hosts; i++ {
		exR[i] = se.NewExchange(shardOf(i), shardOf((i+1)%hosts), lat)
		exL[i] = se.NewExchange(shardOf(i), shardOf((i+hosts-1)%hosts), lat)
	}
	for i := 0; i < hosts; i++ {
		i := i
		eng := se.Shard(shardOf(i))
		right, left := (i+1)%hosts, (i+hosts-1)%hosts
		eng.Spawn(fmt.Sprintf("sender-%d", i), func(p *Proc) {
			for k := 0; ; k++ {
				p.Sleep(period)
				at := p.Now().Add(lat)
				k := k
				exR[i].Send(at, func() {
					fmt.Fprintf(logs[right], "%d recv host=%d from=%d dir=R k=%d\n",
						se.Shard(shardOf(right)).Now(), right, i, k)
				})
				exL[i].Send(at, func() {
					fmt.Fprintf(logs[left], "%d recv host=%d from=%d dir=L k=%d\n",
						se.Shard(shardOf(left)).Now(), left, i, k)
				})
			}
		})
		eng.Spawn(fmt.Sprintf("ticker-%d", i), func(p *Proc) {
			for n := 0; ; n++ {
				p.Sleep(tick)
				fmt.Fprintf(logs[i], "%d tick host=%d n=%d\n", p.Now(), i, n)
			}
		})
	}
	se.RunUntil(until)
	out := make([]string, hosts)
	for i, b := range logs {
		out[i] = b.String()
	}
	return out
}

// TestShardedDeterminismAB is the core guarantee of the refactor: the
// same workload on 1 (oracle), 2, 3, and 4 shards yields byte-identical
// per-host logs. Every host's neighbors tick at the same instants, so
// same-time deliveries from distinct exchanges collide constantly and the
// (time, exchange, seq) ordering key is exercised hard.
func TestShardedDeterminismAB(t *testing.T) {
	const hosts = 8
	oracle := ringLogs(1, hosts, 100_000)
	for _, shards := range []int{2, 3, 4} {
		got := ringLogs(shards, hosts, 100_000)
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("host %d log diverges between 1 and %d shards:\noracle:\n%s\ngot:\n%s",
					i, shards, oracle[i], got[i])
			}
		}
	}
	if oracle[0] == "" {
		t.Fatal("workload produced no log output; test is vacuous")
	}
}

// TestShardedMatchesSingleEngineTotals: a sharded run dispatches the same
// event count and ends at the same virtual time regardless of shard count.
func TestShardedMatchesSingleEngineTotals(t *testing.T) {
	run := func(shards int) (Time, uint64) {
		se := NewSharded(shards)
		x01 := se.NewExchange(0, shards/2, 1000)
		x10 := se.NewExchange(shards/2, 0, 1000)
		var ping func()
		var pong func()
		n := 0
		ping = func() {
			if n++; n > 50 {
				return
			}
			x01.Send(se.Shard(0).Now().Add(1000), pong)
		}
		pong = func() {
			x10.Send(se.Shard(shards/2).Now().Add(1500), ping)
		}
		se.Shard(0).At(0, ping)
		end := se.Run()
		return end, se.Events()
	}
	t1, n1 := run(1)
	t4, n4 := run(4)
	if t1 != t4 || n1 != n4 {
		t.Fatalf("1-shard run (end=%v events=%d) != 4-shard run (end=%v events=%d)", t1, n1, t4, n4)
	}
	if n1 == 0 {
		t.Fatal("no events dispatched")
	}
}

// TestExchangeOrderingKey: same-instant messages are applied in exchange-
// ID order, then per-exchange send order — regardless of the order the
// Sends were issued in.
func TestExchangeOrderingKey(t *testing.T) {
	se := NewSharded(1)
	exA := se.NewExchange(0, 0, 1000)
	exB := se.NewExchange(0, 0, 1000)
	var got []string
	log := func(s string) func() { return func() { got = append(got, s) } }
	// Issue sends in an order scrambled relative to the ordering key.
	exB.Send(5000, log("B1"))
	exA.Send(5000, log("A1"))
	exB.Send(5000, log("B2"))
	exA.Send(5000, log("A2"))
	se.Run()
	want := "A1,A2,B1,B2"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("same-instant cross-shard order = %s, want %s", s, want)
	}
}

// TestExchangePreRunSendsSurvive: messages staged before RunUntil (during
// topology setup) are collected and delivered even when no shard heap has
// any event yet.
func TestExchangePreRunSendsSurvive(t *testing.T) {
	se := NewSharded(2)
	x := se.NewExchange(0, 1, 500)
	fired := false
	x.Send(500, func() { fired = true })
	end := se.Run()
	if !fired {
		t.Fatal("pre-run staged message never delivered")
	}
	if end != 500 {
		t.Fatalf("end = %v, want 500", end)
	}
}

// TestExchangeLookaheadViolationPanics: a send closer than the global
// lookahead is a causality bug and must panic, not silently reorder.
func TestExchangeLookaheadViolationPanics(t *testing.T) {
	se := NewSharded(1)
	x := se.NewExchange(0, 0, 1000)
	se.Shard(0).At(500, func() {
		x.Send(1400, func() {}) // 1400 < 500+1000
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead-violating Send did not panic")
		}
	}()
	se.Run()
}

// TestExchangeLatencyValidation: zero/negative latency and out-of-range
// shard indices are rejected at wiring time.
func TestExchangeLatencyValidation(t *testing.T) {
	se := NewSharded(2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero latency", func() { se.NewExchange(0, 1, 0) })
	mustPanic("negative latency", func() { se.NewExchange(0, 1, -5) })
	mustPanic("src out of range", func() { se.NewExchange(2, 0, 10) })
	mustPanic("dst out of range", func() { se.NewExchange(0, -1, 10) })
}

// TestRunAfterStopResumes is the regression test for the Run-after-Stop
// bug: RunUntil never cleared `stopped`, so a stopped engine could never
// run again. The contract is now: Stop halts the current run; the next
// Run/RunUntil clears the flag and resumes from the still-queued events.
func TestRunAfterStopResumes(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() { fired = append(fired, 10); e.Stop() })
	e.At(20, func() { fired = append(fired, 20) })
	if end := e.RunUntil(100); end != 10 {
		t.Fatalf("first run ended at %v, want 10 (Stop)", end)
	}
	if !e.Stopped() {
		t.Fatal("engine not stopped after Stop")
	}
	if end := e.RunUntil(100); end != 20 {
		t.Fatalf("resumed run ended at %v, want 20 (queue drained)", end)
	}
	if e.Stopped() {
		t.Fatal("resumed run left the engine stopped")
	}
	if len(fired) != 2 || fired[1] != 20 {
		t.Fatalf("events fired = %v, want [10 20]", fired)
	}
}

// TestShardedRunAfterStopResumes: same resume contract for the sharded
// engine — a shard-local Stop ends the run at the barrier, and the next
// RunUntil picks up the remaining events and staged messages.
func TestShardedRunAfterStopResumes(t *testing.T) {
	se := NewSharded(2)
	x := se.NewExchange(0, 1, 1000)
	var fired []string
	se.Shard(0).At(10, func() {
		x.Send(1010, func() { fired = append(fired, "cross") })
		se.Shard(0).Stop()
	})
	se.Shard(1).At(2000, func() { fired = append(fired, "late") })
	se.RunUntil(10_000)
	if !se.Stopped() {
		t.Fatal("sharded engine not stopped")
	}
	if len(fired) != 0 {
		t.Fatalf("events fired during stopped run: %v", fired)
	}
	end := se.RunUntil(10_000)
	if end != 2000 {
		t.Fatalf("resumed run ended at %v, want 2000 (queue drained)", end)
	}
	if want := []string{"cross", "late"}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("events fired = %v, want %v", fired, want)
	}
}

// TestTimerRearmWhilePendingPanics pins the double-schedule contract:
// arming a Timer that is already Pending panics (the intrusive event is
// single-slot; silent re-arm would drop one of the two deadlines).
func TestTimerRearmWhilePendingPanics(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.ScheduleAt(100)
	if !tm.Pending() {
		t.Fatal("timer not pending after ScheduleAt")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-arming a pending timer did not panic")
		}
	}()
	tm.ScheduleAt(200)
}

// TestTimerScheduleAtPastClampsToNow: arming a timer in the virtual past
// fires it at the current instant rather than rewinding the clock.
func TestTimerScheduleAtPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var firedAt Time
	var tm *Timer
	tm = e.NewTimer(func() { firedAt = e.Now() })
	e.At(500, func() { tm.ScheduleAt(100) })
	e.Run()
	if firedAt != 500 {
		t.Fatalf("past-scheduled timer fired at %v, want clamp to 500", firedAt)
	}
	if e.Now() != 500 {
		t.Fatalf("clock at %v after run, want 500", e.Now())
	}
}

// TestPendingProcsAcrossShards: the sharded engine reports unfinished
// processes from every shard, sorted, for deadlock diagnosis.
func TestPendingProcsAcrossShards(t *testing.T) {
	se := NewSharded(3)
	se.NewExchange(0, 1, 1000) // give the run a finite lookahead
	for i, name := range []string{"zeta", "alpha", "mid"} {
		q := NewQueue[int](se.Shard(i))
		se.Shard(i).Spawn(name, func(p *Proc) {
			q.Get(p) // blocks forever
		})
	}
	se.RunUntil(5000)
	got := se.PendingProcs()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("PendingProcs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PendingProcs = %v, want %v (sorted across shards)", got, want)
		}
	}
}

// TestShardedDeadlineSettlesClocks: cutting a run at the deadline leaves
// every shard clock on the deadline, mirroring Engine.RunUntil.
func TestShardedDeadlineSettlesClocks(t *testing.T) {
	se := NewSharded(2)
	se.NewExchange(0, 1, 1000)
	se.Shard(0).At(100, func() {})
	se.Shard(1).At(9000, func() {}) // beyond the deadline
	if end := se.RunUntil(5000); end != 5000 {
		t.Fatalf("RunUntil = %v, want 5000", end)
	}
	for i := 0; i < 2; i++ {
		if now := se.Shard(i).Now(); now != 5000 {
			t.Fatalf("shard %d clock = %v after deadline cut, want 5000", i, now)
		}
	}
	// The event beyond the deadline survives for the next run.
	if end := se.Run(); end != 9000 {
		t.Fatalf("follow-up Run = %v, want 9000", end)
	}
}
