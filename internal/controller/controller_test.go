package controller

import (
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

func mapping(ip packet.IP) Mapping {
	return Mapping{PGID: packet.GIDFromIP(ip), PIP: ip, PMAC: packet.MAC{2, 0, 0, 0, 0, ip[3]}}
}

func TestRegisterAndQuery(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(192, 168, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	var m Mapping
	var ok bool
	var elapsed simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		start := p.Now()
		m, ok = c.Query(p, k)
		elapsed = p.Now().Sub(start)
	})
	eng.Run()
	if !ok || m.PIP != packet.NewIP(172, 16, 0, 1) {
		t.Fatalf("query = %+v, %v", m, ok)
	}
	if elapsed != simtime.Us(100) {
		t.Fatalf("query RTT = %v, want 100µs", elapsed)
	}
}

func TestQueryMiss(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	var ok bool
	eng.Spawn("q", func(p *simtime.Proc) {
		_, ok = c.Query(p, Key{VNI: 1})
	})
	eng.Run()
	if ok {
		t.Fatal("miss reported as hit")
	}
	if c.Stats.Queries != 1 || c.Stats.Hits != 0 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestOverlappingVIPsDistinctByVNI(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	vgid := packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))
	c.Register(Key{VNI: 100, VGID: vgid}, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(Key{VNI: 200, VGID: vgid}, mapping(packet.NewIP(172, 16, 0, 2)))
	var m1, m2 Mapping
	eng.Spawn("q", func(p *simtime.Proc) {
		m1, _ = c.Query(p, Key{VNI: 100, VGID: vgid})
		m2, _ = c.Query(p, Key{VNI: 200, VGID: vgid})
	})
	eng.Run()
	if m1.PIP == m2.PIP {
		t.Fatal("tenants with identical vGIDs must resolve independently")
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestUnregisterRemoves(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Unregister(k)
	var ok bool
	eng.Spawn("q", func(p *simtime.Proc) { _, ok = c.Query(p, k) })
	eng.Run()
	if ok {
		t.Fatal("unregistered mapping still resolves")
	}
}

func TestSubscribersSeeUpdatesAndRemovals(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	var adds, removes int
	c.Subscribe(func(n Notify) {
		if n.Removed {
			removes++
		} else {
			adds++
		}
	})
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(1, 1, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 2))) // update
	c.Unregister(k)
	eng.Run() // delivery is asynchronous: drain the notification queues
	if adds != 2 || removes != 1 {
		t.Fatalf("adds=%d removes=%d", adds, removes)
	}
	if c.Stats.NotifySent != 3 || c.Stats.NotifyDelivered != 3 || c.Stats.NotifyDropped != 0 {
		t.Fatalf("notify stats = %+v", c.Stats)
	}
}

// TestNotifyDelayDefersDelivery: with a configured push latency, a
// subscriber sees nothing until NotifyDelay has elapsed on the sim clock,
// and deliveries stay in FIFO order.
func TestNotifyDelayDefersDelivery(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.NotifyDelay = simtime.Us(300)
	c := New(eng, p)
	type seen struct {
		at      simtime.Time
		removed bool
	}
	var log []seen
	c.Subscribe(func(n Notify) {
		log = append(log, seen{at: eng.Now(), removed: n.Removed})
	})
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(1, 1, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Unregister(k)
	eng.Run()
	if len(log) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(log))
	}
	if log[0].removed || !log[1].removed {
		t.Fatal("deliveries out of order")
	}
	// The queue is drained serially: one delay per queued notification.
	if log[0].at != simtime.Time(simtime.Us(300)) || log[1].at != simtime.Time(simtime.Us(600)) {
		t.Fatalf("delivery times = %v, %v", log[0].at, log[1].at)
	}
}

// TestNotifyDropLosesNotifications: with drop probability 1 every push is
// lost, and the loss is visible in the stats; the mapping table itself is
// unaffected.
func TestNotifyDropLosesNotifications(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.NotifyDropProb = 1.0
	c := New(eng, p)
	delivered := 0
	c.Subscribe(func(Notify) { delivered++ })
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(1, 1, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Unregister(k)
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
	if c.Stats.NotifyDropped != 2 || c.Stats.NotifySent != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// TestNotifyDropDeterministic: the loss pattern is a pure function of the
// seed — two controllers fed the same registrations drop the same subset.
func TestNotifyDropDeterministic(t *testing.T) {
	run := func() []bool {
		eng := simtime.NewEngine()
		p := DefaultParams()
		p.NotifyDropProb = 0.5
		p.Seed = 42
		c := New(eng, p)
		got := make(map[byte]bool)
		c.Subscribe(func(n Notify) { got[n.Mapping.PIP[3]] = true })
		for i := byte(1); i <= 16; i++ {
			c.Register(Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, i))}, mapping(packet.NewIP(172, 16, 0, i)))
		}
		eng.Run()
		pattern := make([]bool, 16)
		for i := byte(1); i <= 16; i++ {
			pattern[i-1] = got[i]
		}
		if c.Stats.NotifyDropped == 0 || c.Stats.NotifyDropped == 16 {
			t.Fatalf("want a mixed drop pattern, got %d/16 dropped", c.Stats.NotifyDropped)
		}
		return pattern
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop pattern differs at %d: seed-for-seed reproducibility broken", i)
		}
	}
}

// TestLookupTimesOutInsideUnavailabilityWindow: queries sent during a
// fault window cost the full QueryTimeout and return ErrUnavailable;
// queries after the window succeed normally.
func TestLookupTimesOutInsideUnavailabilityWindow(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.SetFaultPlan(FaultPlan{Unavailable: []Window{{Start: 0, End: simtime.Time(simtime.Ms(2))}}})
	var errIn, errOut error
	var okOut bool
	var waited simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		s := p.Now()
		_, _, errIn = c.Lookup(p, k)
		waited = p.Now().Sub(s)
		p.Sleep(simtime.Ms(3)) // past the window
		_, okOut, errOut = c.Lookup(p, k)
	})
	eng.Run()
	if errIn != ErrUnavailable {
		t.Fatalf("in-window err = %v, want ErrUnavailable", errIn)
	}
	if waited != simtime.Ms(1) {
		t.Fatalf("in-window wait = %v, want the 1ms QueryTimeout", waited)
	}
	if errOut != nil || !okOut {
		t.Fatalf("post-window lookup = %v, %v", okOut, errOut)
	}
	if c.Stats.Timeouts != 1 {
		t.Fatalf("timeouts = %d", c.Stats.Timeouts)
	}
}

// TestLookupDropReplies: the next N replies vanish; the N+1st attempt
// succeeds.
func TestLookupDropReplies(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.SetFaultPlan(FaultPlan{DropReplies: 2})
	var errs []error
	eng.Spawn("q", func(p *simtime.Proc) {
		for i := 0; i < 3; i++ {
			_, _, err := c.Lookup(p, k)
			errs = append(errs, err)
		}
	})
	eng.Run()
	if errs[0] != ErrUnavailable || errs[1] != ErrUnavailable || errs[2] != nil {
		t.Fatalf("errs = %v", errs)
	}
	if c.Stats.DroppedReplies != 2 {
		t.Fatalf("dropped replies = %d", c.Stats.DroppedReplies)
	}
}

func TestDumpFiltersByVNI(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	for i := byte(1); i <= 5; i++ {
		c.Register(Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, i))}, mapping(packet.NewIP(172, 16, 0, i)))
	}
	c.Register(Key{VNI: 200, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}, mapping(packet.NewIP(172, 16, 0, 9)))
	d := c.Dump(100)
	if len(d) != 5 {
		t.Fatalf("dump(100) = %d entries, want 5", len(d))
	}
}

// TestLookupTimesOutOnMidRTTWindow is the fault-window regression test:
// the old implementation sampled the plan only at the send and reply
// instants, so a window strictly inside (send, send+QueryRTT) was invisible
// and the lookup "succeeded" through a dead controller. The RPC must be
// lost if any part of its flight overlaps a window, while the boundary
// semantics stay as before: a window that ends exactly at the send instant
// does not hurt, one that opens exactly at the reply instant eats the reply.
func TestLookupTimesOutOnMidRTTWindow(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams()) // QueryRTT 100µs, QueryTimeout 1ms
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.SetFaultPlan(FaultPlan{Unavailable: []Window{
		{Start: simtime.Time(simtime.Us(30)), End: simtime.Time(simtime.Us(60))},     // strictly mid-RTT of lookup 0
		{Start: simtime.Time(simtime.Us(1000)), End: simtime.Time(simtime.Us(1100))}, // ends exactly at lookup 1's send
		{Start: simtime.Time(simtime.Us(1400)), End: simtime.Time(simtime.Us(1500))}, // opens exactly at lookup 2's reply
	}})
	var errs []error
	var waits []simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		lookup := func() {
			s := p.Now()
			_, _, err := c.Lookup(p, k)
			errs = append(errs, err)
			waits = append(waits, p.Now().Sub(s))
		}
		lookup() // send 0, flight [0, 100]: window 0 sits strictly inside → lost, 1ms timeout
		p.Sleep(simtime.Us(100))
		lookup() // send 1100, flight [1100, 1200]: window 1 ended at the send instant → ok
		p.Sleep(simtime.Us(100))
		lookup() // send 1300, flight [1300, 1400]: window 2 opens at the reply instant → lost
		p.Sleep(simtime.Us(200))
		lookup() // send 2500: clear air → ok
	})
	eng.Run()
	want := []bool{false, true, false, true} // ok?
	for i, w := range want {
		if (errs[i] == nil) != w {
			t.Fatalf("lookup %d err = %v, want ok=%v", i, errs[i], w)
		}
	}
	if waits[0] != simtime.Ms(1) || waits[1] != simtime.Us(100) ||
		waits[2] != simtime.Ms(1) || waits[3] != simtime.Us(100) {
		t.Fatalf("waits = %v", waits)
	}
	if c.Stats.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2", c.Stats.Timeouts)
	}
}

// TestBatchLookupResolvesManyKeysInOneRTT: a batch of N keys pays one
// QueryRTT plus per-record serialization, not N round trips, and returns
// the results in request order.
func TestBatchLookupResolvesManyKeysInOneRTT(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, byte(i+1)))}
		c.Register(keys[i], mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	miss := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 99))}
	var res []BatchResult
	var elapsed simtime.Duration
	eng.Spawn("b", func(p *simtime.Proc) {
		s := p.Now()
		var err error
		res, _, err = c.BatchLookup(p, append(keys, miss), nil)
		if err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(s)
	})
	eng.Run()
	// 5 keys: QueryRTT + 4 extra records × DumpEntryCost (1µs).
	if want := simtime.Us(104); elapsed != want {
		t.Fatalf("batch of 5 took %v, want %v", elapsed, want)
	}
	for i := range keys {
		if !res[i].OK || res[i].M.PIP != packet.NewIP(172, 16, 0, byte(i+1)) {
			t.Fatalf("result %d = %+v", i, res[i])
		}
	}
	if res[4].OK {
		t.Fatal("unregistered key resolved")
	}
	if c.Stats.BatchQueries != 1 || c.Stats.BatchedKeys != 5 || c.Stats.Queries != 1 || c.Stats.Hits != 4 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// TestBatchLookupPiggybacksRenewals: renewals carried in the batch request
// are applied before the keys are resolved — a lease that would have
// expired mid-flight is refreshed by its own batch.
func TestBatchLookupPiggybacksRenewals(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.LeaseTTL = simtime.Ms(1)
	c := New(eng, p)
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	m := mapping(packet.NewIP(172, 16, 0, 1))
	c.Register(k, m)
	var res []BatchResult
	eng.Spawn("b", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Ms(5)) // the lease is long dead
		var err error
		res, _, err = c.BatchLookup(pr, []Key{k}, []RenewReq{{K: k, M: m}})
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !res[0].OK || res[0].M != m {
		t.Fatalf("renewed key did not resolve: %+v", res[0])
	}
	if c.Stats.BatchRenewals != 1 || c.Stats.Renewals != 1 {
		t.Fatalf("renewal stats = %+v", c.Stats)
	}
}

// TestBatchLookupTimesOutAsOneRPC: under a fault the whole batch costs one
// QueryTimeout, not one per key.
func TestBatchLookupTimesOutAsOneRPC(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	c.SetFaultPlan(FaultPlan{Unavailable: []Window{{Start: 0, End: simtime.Time(simtime.Ms(2))}}})
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, byte(i+1)))}
	}
	var err error
	var elapsed simtime.Duration
	eng.Spawn("b", func(p *simtime.Proc) {
		s := p.Now()
		_, _, err = c.BatchLookup(p, keys, nil)
		elapsed = p.Now().Sub(s)
	})
	eng.Run()
	if err != ErrUnavailable {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if elapsed != simtime.Ms(1) {
		t.Fatalf("batch timeout took %v, want one 1ms QueryTimeout", elapsed)
	}
}
