package controller

import (
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

func mapping(ip packet.IP) Mapping {
	return Mapping{PGID: packet.GIDFromIP(ip), PIP: ip, PMAC: packet.MAC{2, 0, 0, 0, 0, ip[3]}}
}

func TestRegisterAndQuery(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(192, 168, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	var m Mapping
	var ok bool
	var elapsed simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		start := p.Now()
		m, ok = c.Query(p, k)
		elapsed = p.Now().Sub(start)
	})
	eng.Run()
	if !ok || m.PIP != packet.NewIP(172, 16, 0, 1) {
		t.Fatalf("query = %+v, %v", m, ok)
	}
	if elapsed != simtime.Us(100) {
		t.Fatalf("query RTT = %v, want 100µs", elapsed)
	}
}

func TestQueryMiss(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	var ok bool
	eng.Spawn("q", func(p *simtime.Proc) {
		_, ok = c.Query(p, Key{VNI: 1})
	})
	eng.Run()
	if ok {
		t.Fatal("miss reported as hit")
	}
	if c.Stats.Queries != 1 || c.Stats.Hits != 0 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestOverlappingVIPsDistinctByVNI(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	vgid := packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))
	c.Register(Key{VNI: 100, VGID: vgid}, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(Key{VNI: 200, VGID: vgid}, mapping(packet.NewIP(172, 16, 0, 2)))
	var m1, m2 Mapping
	eng.Spawn("q", func(p *simtime.Proc) {
		m1, _ = c.Query(p, Key{VNI: 100, VGID: vgid})
		m2, _ = c.Query(p, Key{VNI: 200, VGID: vgid})
	})
	eng.Run()
	if m1.PIP == m2.PIP {
		t.Fatal("tenants with identical vGIDs must resolve independently")
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestUnregisterRemoves(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	k := Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Unregister(k)
	var ok bool
	eng.Spawn("q", func(p *simtime.Proc) { _, ok = c.Query(p, k) })
	eng.Run()
	if ok {
		t.Fatal("unregistered mapping still resolves")
	}
}

func TestSubscribersSeeUpdatesAndRemovals(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	var adds, removes int
	c.Subscribe(func(k Key, m Mapping, removed bool) {
		if removed {
			removes++
		} else {
			adds++
		}
	})
	k := Key{VNI: 1, VGID: packet.GIDFromIP(packet.NewIP(1, 1, 1, 1))}
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(k, mapping(packet.NewIP(172, 16, 0, 2))) // update
	c.Unregister(k)
	if adds != 2 || removes != 1 {
		t.Fatalf("adds=%d removes=%d", adds, removes)
	}
}

func TestDumpFiltersByVNI(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	for i := byte(1); i <= 5; i++ {
		c.Register(Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, i))}, mapping(packet.NewIP(172, 16, 0, i)))
	}
	c.Register(Key{VNI: 200, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, 1))}, mapping(packet.NewIP(172, 16, 0, 9)))
	d := c.Dump(100)
	if len(d) != 5 {
		t.Fatalf("dump(100) = %d entries, want 5", len(d))
	}
}
