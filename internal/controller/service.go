package controller

import (
	"masq/internal/simtime"
)

// Service is the control-plane surface backends program against, abstract
// over how many controller shards stand behind it. A bare *Controller is a
// one-shard Service (the historical deployment); *Sharded partitions the
// keyspace across N primaries with standby replicas; *Remote proxies either
// across DES engine shards.
//
// Shard-indexed calls (BatchLookupShard, FetchShardDump) let the caller
// keep failure isolation: a batch is per owning shard, so one dark shard
// cannot fail another shard's keys, and the retry policy stays at the edge.
// Every RPC that reaches a shard returns that shard's epoch as of the reply
// instant — callers must never read epochs out-of-band, which would race
// across engine shards under Remote.
type Service interface {
	// NumShards returns the number of keyspace shards (1 for a bare
	// Controller).
	NumShards() int
	// Owner maps a key to its owning shard index — pure and immutable, so
	// callers may group work by shard without an RPC.
	Owner(k Key) int
	// RPCParams returns the control-RPC cost model (timeouts, RTT) the
	// edge uses to plan retries.
	RPCParams() Params

	// Register/Unregister are vBond's fire-and-forget table updates.
	Register(k Key, m Mapping)
	Unregister(k Key)

	// Resolve is one remote lookup attempt against the owning shard. On
	// success it returns the shard's epoch at the reply instant.
	Resolve(p *simtime.Proc, k Key) (Mapping, bool, uint64, error)
	// Renew re-asserts a lease with the owning shard and returns its epoch.
	Renew(p *simtime.Proc, k Key, m Mapping) (uint64, error)
	// BatchLookupShard resolves many keys owned by one shard in one RPC,
	// applying the piggybacked renewals (which must be owned by the same
	// shard) first.
	BatchLookupShard(p *simtime.Proc, shard int, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error)
	// FetchShardDump returns the owning shard's live mappings for one
	// tenant — a shard-scoped resync snapshot.
	FetchShardDump(p *simtime.Proc, shard int, vni uint32) (map[Key]Mapping, uint64, error)

	// Suspend/Move are the live-migration freeze and commit RPCs, routed
	// to the key's owning shard.
	Suspend(p *simtime.Proc, k Key) error
	Move(p *simtime.Proc, k Key, m Mapping, qpnMap map[uint32]uint32) error

	// SubscribeShards hooks one push-notification callback per shard
	// (invoked with the shard index) and returns per-shard channel views
	// in shard order.
	SubscribeShards(fn func(shard int, n Notify)) []SubView
}

// SubView is the read side of one shard's push-notification channel: the
// fencing metadata a subscriber audits (see Subscription for the concrete
// single-engine implementation).
type SubView interface {
	// Seq returns the highest notification sequence number addressed to
	// this subscriber.
	Seq() uint64
	// Pending returns the current delivery-queue depth.
	Pending() int
	// HighWater returns the deepest the delivery queue has ever been.
	HighWater() int
}

// ─── Service adapter: a bare Controller is a one-shard Service ───────────

// NumShards returns 1: a bare controller is one shard.
func (c *Controller) NumShards() int { return 1 }

// Owner returns 0 for every key.
func (c *Controller) Owner(Key) int { return 0 }

// RPCParams returns the controller's cost model.
func (c *Controller) RPCParams() Params { return c.P }

// Resolve performs one Lookup and stamps the reply with the epoch at the
// reply instant (the same value Epoch() would return there).
func (c *Controller) Resolve(p *simtime.Proc, k Key) (Mapping, bool, uint64, error) {
	m, ok, err := c.Lookup(p, k)
	return m, ok, c.epoch, err
}

// BatchLookupShard delegates to BatchLookup; shard must be 0.
func (c *Controller) BatchLookupShard(p *simtime.Proc, shard int, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error) {
	return c.BatchLookup(p, keys, renew)
}

// FetchShardDump delegates to FetchDump; shard must be 0.
func (c *Controller) FetchShardDump(p *simtime.Proc, shard int, vni uint32) (map[Key]Mapping, uint64, error) {
	return c.FetchDump(p, vni)
}

// SubscribeShards subscribes the callback as shard 0.
func (c *Controller) SubscribeShards(fn func(shard int, n Notify)) []SubView {
	sub := c.Subscribe(func(n Notify) { fn(0, n) })
	return []SubView{sub}
}
