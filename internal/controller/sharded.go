package controller

import (
	"errors"

	"masq/internal/simtime"
	"masq/internal/trace"
)

// ErrFenced is returned by a write RPC that raced a shard failover: the
// shard promoted its standby while the request was in flight, so the
// caller cannot know which incarnation holds its write. Fencing turns the
// ambiguity into an explicit failure — the caller retries against the new
// primary (renewals and moves are idempotent), and a deposed primary can
// never silently confirm a write the promoted table does not hold.
var ErrFenced = errors.New("controller: write fenced by shard failover")

// Sharded partitions the mapping table across N controller shards by
// consistent hash of (VNI, vGID). Each shard is a full Controller — its
// own epoch, lease table, fault plan, and push queues — so a crash, a
// partition, or a failover touches one slice of the keyspace while
// connections owned by other shards never notice. With Params.Replicate
// set, every shard also runs a standby Replica fed by a push-replicated
// mutation log; a primary unreachable for FailoverDetect is promoted
// automatically: the replicated prefix becomes the new table under a
// bumped epoch, and the un-replicated tail is fenced.
//
// Concurrency contract: a Sharded whose shards live on different DES
// engine shards must be reached through per-host Remote proxies (the
// front-door methods touch shard state directly). On a single engine the
// front door is safe to call from any proc.
type Sharded struct {
	p      Params
	sm     *ShardMap
	shards []*Shard
}

// Shard is one keyspace slice: the serving primary, its optional standby,
// and the front door's per-shard bookkeeping (service queue, fencing
// generation, failover accounting).
type Shard struct {
	pri *Controller
	rep *Replica
	eng *simtime.Engine

	// gen is the promotion generation — the fencing token. Write RPCs
	// capture it at send and fail with ErrFenced when it moved by reply.
	gen uint64

	// Analytic service queue: the shard's serialization slot is busy until
	// busyUntil; arrivals wait for it (see enter) and batch/dump
	// serialization occupies it (see occupy). Uncontended traffic never
	// waits, which keeps a one-shard Sharded byte-identical to a bare
	// Controller.
	busyUntil simtime.Time
	waiting   int
	queueHWM  int

	genFenced  uint64 // write RPCs rejected by the gen fence
	failovers  uint64 // standby promotions
	partitions uint64 // partition events begun
}

// ShardStats is one shard's observability snapshot (masqctl's per-shard
// counter table).
type ShardStats struct {
	Epoch        uint64 // current incarnation
	Leases       int    // live table entries
	Down         bool   // primary currently unreachable
	QueueHWM     int    // deepest the service queue has been
	ReplLag      int    // replication-log records not yet applied on the standby
	FencedWrites uint64 // gen-fenced RPCs + truncated log records
	Failovers    uint64 // standby promotions
	Partitions   uint64 // partitions injected
}

// NewSharded builds an N-shard controller. engines supplies the DES engine
// for each shard — shard s runs on engines[s % len(engines)], which is how
// the cluster gives controller shards their own engine-shard affinity. All
// shards share the same Params; per-shard notification-loss PRNGs are
// decorrelated by offsetting the seed with the shard index (shard 0 keeps
// the configured seed, so a one-shard Sharded matches a bare Controller
// byte-for-byte).
func NewSharded(engines []*simtime.Engine, p Params, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	if len(engines) == 0 {
		panic("controller: NewSharded needs at least one engine")
	}
	s := &Sharded{p: p, sm: NewShardMap(n), shards: make([]*Shard, n)}
	for i := 0; i < n; i++ {
		eng := engines[i%len(engines)]
		sp := p
		sp.Seed = p.Seed + int64(i)
		sh := &Shard{pri: New(eng, sp), eng: eng}
		sh.pri.occupy = sh.occupy
		if p.Replicate {
			sh.rep = newReplica(eng, p.ReplDelay)
			sh.pri.mutated = sh.rep.append
		}
		s.shards[i] = sh
	}
	return s
}

// SetRecorder attaches a trace recorder to every shard primary.
func (s *Sharded) SetRecorder(r *trace.Recorder) {
	for _, sh := range s.shards {
		sh.pri.SetRecorder(r)
	}
}

// SetFaultPlan arms the same fault plan on every shard primary.
func (s *Sharded) SetFaultPlan(fp FaultPlan) {
	for _, sh := range s.shards {
		sh.pri.SetFaultPlan(fp)
	}
}

// Primary returns shard i's serving controller (tests, fault injection,
// per-shard stats).
func (s *Sharded) Primary(i int) *Controller { return s.shards[i].pri }

// StandbyLag returns shard i's replication backlog (0 without replication).
func (s *Sharded) StandbyLag(i int) int {
	if rep := s.shards[i].rep; rep != nil {
		return rep.Lag()
	}
	return 0
}

// SetLagWindow injects replication lag on shard i until the given instant
// (chaos replica-lag event). No-op without replication.
func (s *Sharded) SetLagWindow(i int, until simtime.Time, extra simtime.Duration) {
	if rep := s.shards[i].rep; rep != nil {
		rep.SetLagWindow(until, extra)
	}
}

// ShardStats snapshots shard i's counters.
func (s *Sharded) ShardStats(i int) ShardStats {
	sh := s.shards[i]
	st := ShardStats{
		Epoch:      sh.pri.epoch,
		Down:       sh.pri.down,
		QueueHWM:   sh.queueHWM,
		Failovers:  sh.failovers,
		Partitions: sh.partitions,
	}
	now := sh.eng.Now()
	for _, e := range sh.pri.table {
		if e.live(now) {
			st.Leases++
		}
	}
	st.FencedWrites = sh.genFenced
	if sh.rep != nil {
		st.ReplLag = sh.rep.Lag()
		st.FencedWrites += sh.rep.Fenced()
	}
	return st
}

// Dump unions every shard's live mappings for a tenant — the omniscient
// test/ops oracle (see Controller.Dump).
func (s *Sharded) Dump(vni uint32) map[Key]Mapping {
	out := make(map[Key]Mapping)
	for _, sh := range s.shards {
		for k, m := range sh.pri.Dump(vni) {
			out[k] = m
		}
	}
	return out
}

// Size returns the total raw table size across shards.
func (s *Sharded) Size() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.pri.Size()
	}
	return n
}

// MaxEpoch returns the highest shard epoch (coarse convergence oracle).
func (s *Sharded) MaxEpoch() uint64 {
	var ep uint64
	for _, sh := range s.shards {
		if sh.pri.epoch > ep {
			ep = sh.pri.epoch
		}
	}
	return ep
}

// ─── Shard service queue ─────────────────────────────────────────────────

// enter waits for the shard's serialization slot to free. Uncontended
// callers pass straight through (no events); contended callers sleep until
// busyUntil, re-checking because a batch that slipped in ahead may have
// extended it. The waiter count's high-water mark is the shard's queue HWM.
func (sh *Shard) enter(p *simtime.Proc) {
	for {
		wait := sh.busyUntil.Sub(p.Now())
		if wait <= 0 {
			return
		}
		sh.waiting++
		if sh.waiting > sh.queueHWM {
			sh.queueHWM = sh.waiting
		}
		p.Sleep(wait)
		sh.waiting--
	}
}

// occupy is the Controller serialization hook: hold the shard's slot for
// cost. When the slot is free this is exactly one Sleep(cost) — the bare
// controller's serialization — so the queue model costs nothing until
// there is actual contention.
func (sh *Shard) occupy(p *simtime.Proc, cost simtime.Duration) {
	sh.enter(p)
	sh.busyUntil = p.Now().Add(cost)
	p.Sleep(cost)
}

// ─── Service implementation ──────────────────────────────────────────────

// NumShards returns the keyspace shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Owner returns the shard owning k (pure consistent-hash routing).
func (s *Sharded) Owner(k Key) int { return s.sm.Owner(k) }

// RPCParams returns the shared control-RPC cost model.
func (s *Sharded) RPCParams() Params { return s.p }

// Register routes a fire-and-forget registration to the owning shard.
func (s *Sharded) Register(k Key, m Mapping) {
	s.shards[s.sm.Owner(k)].pri.Register(k, m)
}

// Unregister routes a fire-and-forget removal to the owning shard.
func (s *Sharded) Unregister(k Key) {
	s.shards[s.sm.Owner(k)].pri.Unregister(k)
}

// Resolve looks k up on its owning shard.
func (s *Sharded) Resolve(p *simtime.Proc, k Key) (Mapping, bool, uint64, error) {
	return s.resolveOn(p, s.sm.Owner(k), k)
}

func (s *Sharded) resolveOn(p *simtime.Proc, shard int, k Key) (Mapping, bool, uint64, error) {
	sh := s.shards[shard]
	sh.enter(p)
	m, ok, err := sh.pri.Lookup(p, k)
	return m, ok, sh.pri.epoch, err
}

// Renew re-asserts a lease on the owning shard, fenced against failover.
func (s *Sharded) Renew(p *simtime.Proc, k Key, m Mapping) (uint64, error) {
	return s.renewOn(p, s.sm.Owner(k), k, m)
}

func (s *Sharded) renewOn(p *simtime.Proc, shard int, k Key, m Mapping) (uint64, error) {
	sh := s.shards[shard]
	sh.enter(p)
	gen := sh.gen
	ep, err := sh.pri.Renew(p, k, m)
	if err == nil && sh.gen != gen {
		sh.genFenced++
		return 0, ErrFenced
	}
	return ep, err
}

// BatchLookupShard resolves one shard's keys (and applies its renewals) in
// one RPC, fenced against failover because the batch writes.
func (s *Sharded) BatchLookupShard(p *simtime.Proc, shard int, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error) {
	return s.batchOn(p, shard, keys, renew)
}

func (s *Sharded) batchOn(p *simtime.Proc, shard int, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error) {
	sh := s.shards[shard]
	sh.enter(p)
	gen := sh.gen
	res, ep, err := sh.pri.BatchLookup(p, keys, renew)
	if err == nil && len(renew) > 0 && sh.gen != gen {
		sh.genFenced++
		return nil, 0, ErrFenced
	}
	return res, ep, err
}

// FetchShardDump returns one shard's live mappings for a tenant.
func (s *Sharded) FetchShardDump(p *simtime.Proc, shard int, vni uint32) (map[Key]Mapping, uint64, error) {
	return s.dumpOn(p, shard, vni)
}

func (s *Sharded) dumpOn(p *simtime.Proc, shard int, vni uint32) (map[Key]Mapping, uint64, error) {
	sh := s.shards[shard]
	sh.enter(p)
	return sh.pri.FetchDump(p, vni)
}

// Suspend routes the migration freeze announcement to the owning shard.
func (s *Sharded) Suspend(p *simtime.Proc, k Key) error {
	return s.suspendOn(p, s.sm.Owner(k), k)
}

func (s *Sharded) suspendOn(p *simtime.Proc, shard int, k Key) error {
	sh := s.shards[shard]
	sh.enter(p)
	return sh.pri.Suspend(p, k)
}

// Move routes the migration commit to the owning shard, fenced against
// failover.
func (s *Sharded) Move(p *simtime.Proc, k Key, m Mapping, qpnMap map[uint32]uint32) error {
	return s.moveOn(p, s.sm.Owner(k), k, m, qpnMap)
}

func (s *Sharded) moveOn(p *simtime.Proc, shard int, k Key, m Mapping, qpnMap map[uint32]uint32) error {
	sh := s.shards[shard]
	sh.enter(p)
	gen := sh.gen
	err := sh.pri.Move(p, k, m, qpnMap)
	if err == nil && sh.gen != gen {
		sh.genFenced++
		return ErrFenced
	}
	return err
}

// SubscribeShards subscribes fn to every shard's push channel.
func (s *Sharded) SubscribeShards(fn func(shard int, n Notify)) []SubView {
	out := make([]SubView, len(s.shards))
	for i, sh := range s.shards {
		i := i
		out[i] = sh.pri.Subscribe(func(n Notify) { fn(i, n) })
	}
	return out
}

// subscribeOn subscribes to one shard (the Remote relay's entry point).
func (s *Sharded) subscribeOn(shard int, fn func(Notify)) *Subscription {
	return s.shards[shard].pri.Subscribe(fn)
}

// ─── Failover, fencing, partition ────────────────────────────────────────

// CrashShard kills shard i's primary: its slice of the table and its
// queued pushes are gone, and RPCs to it time out. With replication the
// standby is promoted after FailoverDetect; without, the shard stays dark
// until RestartShard.
func (s *Sharded) CrashShard(i int) {
	sh := s.shards[i]
	if sh.pri.down {
		return
	}
	sh.pri.Crash()
	s.scheduleFailover(i)
}

// RestartShard brings a crashed shard primary back empty under a bumped
// epoch (the no-replication recovery path — leases rebuild the slice). A
// standby, if any, is re-imaged from the restarted (empty) table.
func (s *Sharded) RestartShard(i int) {
	sh := s.shards[i]
	if !sh.pri.down {
		return
	}
	sh.pri.Restart()
	sh.gen++
	if sh.rep != nil {
		sh.rep.reset(sh.pri.table)
	}
}

// PartitionShard makes shard i's primary unreachable for heal. Unlike a
// crash nothing is lost on the primary — its table and queued pushes
// survive — but clients cannot tell the difference. Healing before
// FailoverDetect is a blip: the primary resumes in place. Healing after
// it finds the standby already promoted; the deposed primary rejoins as a
// fresh standby (its un-replicated writes were fenced at promotion).
func (s *Sharded) PartitionShard(i int, heal simtime.Duration) {
	sh := s.shards[i]
	if sh.pri.down {
		return
	}
	sh.pri.down = true
	sh.partitions++
	s.scheduleFailover(i)
	sh.eng.After(heal, func() { s.healPartition(i) })
}

func (s *Sharded) healPartition(i int) {
	sh := s.shards[i]
	if sh.pri.down {
		// Healed before the failover detector fired: no promotion happened,
		// the primary picks up where it left off.
		sh.pri.down = false
		return
	}
	// The standby was promoted while we were dark: the deposed primary's
	// state is obsolete. It rejoins as a fresh standby imaged from the
	// promoted table.
	if sh.rep != nil {
		sh.rep.reset(sh.pri.table)
	}
}

// scheduleFailover arms the promotion timer for a down shard (replication
// only — without a standby there is nothing to promote).
func (s *Sharded) scheduleFailover(i int) {
	if !s.p.Replicate {
		return
	}
	sh := s.shards[i]
	sh.eng.After(s.p.failoverDetect(), func() { s.promote(i) })
}

// promote installs shard i's standby as the new primary: the replicated
// prefix becomes the serving table under a bumped epoch, the un-applied
// log tail is truncated (fenced writes), and the fencing generation moves
// so in-flight writes spanning the promotion fail explicitly. The lag
// tail's mappings are repaired the same way a crash is: lease renewals
// re-assert them against the new incarnation.
func (s *Sharded) promote(i int) {
	sh := s.shards[i]
	c := sh.pri
	if !c.down {
		return // healed or manually restarted before the detector fired
	}
	c.down = false
	c.Stats.Restarts++
	c.epoch++
	sh.rep.truncate()
	c.table = sh.rep.snapshot()
	sh.gen++
	sh.failovers++
}

// CrashAll crashes every shard primary (total control-plane outage — the
// chaos CtrlOutage event on a sharded deployment).
func (s *Sharded) CrashAll() {
	for i := range s.shards {
		s.CrashShard(i)
	}
}

// RestartAll restarts every crashed shard primary.
func (s *Sharded) RestartAll() {
	for i := range s.shards {
		s.RestartShard(i)
	}
}
