package controller

import (
	"errors"
	"fmt"
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

// keyN derives a distinct (VNI, vGID) key from an index.
func keyN(vni uint32, i int) Key {
	return Key{VNI: vni, VGID: packet.GIDFromIP(packet.NewIP(10, byte(i>>16), byte(i>>8), byte(i)))}
}

func TestShardMapDeterministicAndBalanced(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		sm := NewShardMap(n)
		sm2 := NewShardMap(n)
		counts := make([]int, n)
		const keys = 4096
		for i := 0; i < keys; i++ {
			k := keyN(uint32(1+i%5), i)
			o := sm.Owner(k)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: owner %d out of range", n, o)
			}
			if o2 := sm2.Owner(k); o2 != o {
				t.Fatalf("n=%d: owner not deterministic (%d vs %d)", n, o, o2)
			}
			counts[o]++
		}
		// Consistent hashing with 64 vnodes/shard should stay within a
		// loose factor of even; a collapsed ring would fail this wildly.
		want := keys / n
		for s, c := range counts {
			if c < want/3 || c > want*3 {
				t.Fatalf("n=%d: shard %d owns %d of %d keys (expected ~%d)", n, s, c, keys, want)
			}
		}
	}
}

// TestOneShardMatchesBareController is the Shards=1 oracle: the same
// operation sequence against a bare Controller and a one-shard Sharded must
// produce identical reply instants and identical stats — the sharding
// layer's serialization queue must cost nothing when the caller stream is
// uncontended (concurrent callers DO queue; that contention model is what
// the HWM test below exercises).
func TestOneShardMatchesBareController(t *testing.T) {
	type runResult struct {
		times []simtime.Duration
		stats string
	}
	drive := func(reg func(Key, Mapping), resolve func(p *simtime.Proc, k Key) error,
		dump func(p *simtime.Proc) error, eng *simtime.Engine) runResult {
		var res runResult
		for i := 0; i < 8; i++ {
			reg(keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1))))
		}
		eng.Spawn("driver", func(p *simtime.Proc) {
			for i := 0; i < 12; i++ {
				start := p.Now()
				if err := resolve(p, keyN(7, i%8)); err != nil {
					t.Errorf("resolve: %v", err)
				}
				res.times = append(res.times, p.Now().Sub(start))
			}
			if err := dump(p); err != nil {
				t.Errorf("dump: %v", err)
			}
			res.times = append(res.times, p.Now().Sub(simtime.Time(0)))
		})
		eng.Run()
		return res
	}

	engA := simtime.NewEngine()
	bare := New(engA, DefaultParams())
	a := drive(bare.Register,
		func(p *simtime.Proc, k Key) error { _, _, err := bare.Lookup(p, k); return err },
		func(p *simtime.Proc) error { _, _, err := bare.FetchDump(p, 7); return err },
		engA)
	a.stats = fmt.Sprintf("%+v", bare.Stats)

	engB := simtime.NewEngine()
	sh := NewSharded([]*simtime.Engine{engB}, DefaultParams(), 1)
	b := drive(sh.Register,
		func(p *simtime.Proc, k Key) error { _, _, _, err := sh.Resolve(p, k); return err },
		func(p *simtime.Proc) error { _, _, err := sh.FetchShardDump(p, 0, 7); return err },
		engB)
	b.stats = fmt.Sprintf("%+v", sh.Primary(0).Stats)

	if len(a.times) != len(b.times) {
		t.Fatalf("op counts differ: %d vs %d", len(a.times), len(b.times))
	}
	for i := range a.times {
		if a.times[i] != b.times[i] {
			t.Fatalf("op %d: bare %v vs one-shard %v", i, a.times[i], b.times[i])
		}
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverge:\nbare:  %s\nshard: %s", a.stats, b.stats)
	}
}

// TestShardCrashIsolation: crashing one shard's primary fails only RPCs for
// keys it owns; the other shards keep serving.
func TestShardCrashIsolation(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewSharded([]*simtime.Engine{eng}, DefaultParams(), 4)
	const n = 64
	for i := 0; i < n; i++ {
		s.Register(keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	victim := s.Owner(keyN(7, 0))
	eng.Spawn("crash", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(1))
		s.CrashShard(victim)
		for i := 0; i < n; i++ {
			k := keyN(7, i)
			_, ok, _, err := s.Resolve(p, k)
			if s.Owner(k) == victim {
				if err == nil {
					t.Errorf("key %d on crashed shard resolved", i)
				}
			} else if err != nil || !ok {
				t.Errorf("key %d on healthy shard %d failed: ok=%v err=%v", i, s.Owner(k), ok, err)
			}
		}
	})
	eng.Run()
	for i := 0; i < 4; i++ {
		st := s.ShardStats(i)
		if i == victim {
			if !st.Down || st.Leases != 0 {
				t.Fatalf("victim shard %d: %+v", i, st)
			}
		} else if st.Down || st.Leases == 0 || st.Epoch != 1 {
			t.Fatalf("healthy shard %d disturbed: %+v", i, st)
		}
	}
}

// TestFailoverPromotesStandby: with replication, a crashed primary's
// standby is promoted after the detect window with the replicated table and
// a bumped epoch — on that shard only.
func TestFailoverPromotesStandby(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.Replicate = true
	p.ReplDelay = simtime.Us(10)
	s := NewSharded([]*simtime.Engine{eng}, p, 2)
	const n = 32
	for i := 0; i < n; i++ {
		s.Register(keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	victim := s.Owner(keyN(7, 0))
	eng.Spawn("driver", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Ms(5)) // let the replication log drain
		if lag := s.StandbyLag(victim); lag != 0 {
			t.Errorf("standby lag %d before crash", lag)
		}
		s.CrashShard(victim)
		pr.Sleep(p.failoverDetect() + simtime.Ms(1))
		for i := 0; i < n; i++ {
			k := keyN(7, i)
			_, ok, ep, err := s.Resolve(pr, k)
			if err != nil || !ok {
				t.Errorf("key %d lost after failover (shard %d): ok=%v err=%v", i, s.Owner(k), ok, err)
				continue
			}
			wantEp := uint64(1)
			if s.Owner(k) == victim {
				wantEp = 2
			}
			if ep != wantEp {
				t.Errorf("key %d: epoch %d, want %d", i, ep, wantEp)
			}
		}
	})
	eng.Run()
	st := s.ShardStats(victim)
	if st.Epoch != 2 || st.Failovers != 1 || st.Down {
		t.Fatalf("victim shard after failover: %+v", st)
	}
	other := 1 - victim
	if st := s.ShardStats(other); st.Epoch != 1 || st.Failovers != 0 {
		t.Fatalf("other shard disturbed by failover: %+v", st)
	}
}

// TestFencedWriteAcrossPromotion: a write RPC in flight across a promotion
// must fail with ErrFenced — the deposed incarnation cannot silently
// confirm it.
func TestFencedWriteAcrossPromotion(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.Replicate = true
	p.FailoverDetect = simtime.Us(30) // promotion lands inside the 100µs RPC flight
	s := NewSharded([]*simtime.Engine{eng}, p, 1)
	k := keyN(7, 1)
	s.Register(k, mapping(packet.NewIP(172, 16, 0, 1)))
	var renewErr error
	eng.Spawn("renew", func(pr *simtime.Proc) {
		_, renewErr = s.Renew(pr, k, mapping(packet.NewIP(172, 16, 0, 1)))
	})
	eng.Spawn("crash", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Us(10)) // after the renew's send check, before its reply
		s.CrashShard(0)
	})
	eng.Run()
	if !errors.Is(renewErr, ErrFenced) {
		t.Fatalf("renew across promotion returned %v, want ErrFenced", renewErr)
	}
	if st := s.ShardStats(0); st.FencedWrites == 0 || st.Failovers != 1 {
		t.Fatalf("shard stats after fenced write: %+v", st)
	}
}

// TestPartitionBlipResumesInPlace: a partition healed before the failover
// detector fires resumes the primary in place — no promotion, no epoch
// bump, nothing lost.
func TestPartitionBlipResumesInPlace(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.Replicate = true
	p.FailoverDetect = simtime.Ms(10)
	s := NewSharded([]*simtime.Engine{eng}, p, 2)
	const n = 16
	for i := 0; i < n; i++ {
		s.Register(keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	victim := s.Owner(keyN(7, 0))
	eng.Spawn("driver", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Ms(1))
		s.PartitionShard(victim, simtime.Ms(2)) // heals well before detect
		pr.Sleep(simtime.Ms(1))
		if _, _, _, err := s.Resolve(pr, keyN(7, 0)); err == nil {
			t.Error("resolve succeeded into a partitioned shard")
		}
		pr.Sleep(simtime.Ms(20))
		_, ok, ep, err := s.Resolve(pr, keyN(7, 0))
		if err != nil || !ok || ep != 1 {
			t.Errorf("after blip heal: ok=%v ep=%d err=%v (want hit at epoch 1)", ok, ep, err)
		}
	})
	eng.Run()
	if st := s.ShardStats(victim); st.Failovers != 0 || st.Partitions != 1 || st.Epoch != 1 {
		t.Fatalf("blip partition stats: %+v", st)
	}
}

// TestPartitionFailoverFencesDeposedPrimary: a partition outliving the
// failover detector promotes the standby; the deposed primary's
// un-replicated writes are fenced and it rejoins as a fresh standby.
func TestPartitionFailoverFencesDeposedPrimary(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.Replicate = true
	p.ReplDelay = simtime.Us(10)
	p.FailoverDetect = simtime.Ms(1)
	s := NewSharded([]*simtime.Engine{eng}, p, 1)
	const n = 8
	for i := 0; i < n; i++ {
		s.Register(keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	eng.Spawn("driver", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Ms(5)) // replica catches up
		s.PartitionShard(0, simtime.Ms(10))
		pr.Sleep(simtime.Ms(20)) // promotion at +1ms, heal at +10ms
		for i := 0; i < n; i++ {
			_, ok, ep, err := s.Resolve(pr, keyN(7, i))
			if err != nil || !ok || ep != 2 {
				t.Errorf("key %d after partition failover: ok=%v ep=%d err=%v", i, ok, ep, err)
			}
		}
	})
	eng.Run()
	st := s.ShardStats(0)
	if st.Failovers != 1 || st.Partitions != 1 || st.Epoch != 2 || st.Down {
		t.Fatalf("partition-failover stats: %+v", st)
	}
	if lag := s.StandbyLag(0); lag != 0 {
		t.Fatalf("rejoined standby lag = %d, want 0", lag)
	}
}

// TestRenewalRacesPromotionNotLost is the lease-renewal-vs-failover race:
// renewals landing while the old primary is dark (or fenced mid-promotion)
// must not lose the registration — the edge retries, and the promoted
// incarnation ends up holding exactly the live set.
func TestRenewalRacesPromotionNotLost(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.Replicate = true
	p.ReplDelay = simtime.Us(10)
	p.FailoverDetect = simtime.Ms(1)
	p.LeaseTTL = simtime.Ms(50)
	s := NewSharded([]*simtime.Engine{eng}, p, 2)
	const n = 24
	live := make(map[Key]Mapping)
	for i := 0; i < n; i++ {
		k, m := keyN(7, i), mapping(packet.NewIP(172, 16, 0, byte(i+1)))
		s.Register(k, m)
		live[k] = m
	}
	victim := s.Owner(keyN(7, 0))
	// One renewal proc per key, renewing every 2ms like a backend would,
	// retrying on error (ErrUnavailable during the dark window, ErrFenced
	// across the promotion instant).
	for i := 0; i < n; i++ {
		k, m := keyN(7, i), live[keyN(7, i)]
		eng.Spawn(fmt.Sprintf("renew%d", i), func(pr *simtime.Proc) {
			for round := 0; round < 10; round++ {
				pr.Sleep(simtime.Ms(2))
				if _, err := s.Renew(pr, k, m); err != nil {
					pr.Sleep(simtime.Us(500))
					_, _ = s.Renew(pr, k, m) // one retry per round is enough here
				}
			}
		})
	}
	eng.Spawn("chaos", func(pr *simtime.Proc) {
		pr.Sleep(simtime.Ms(5))
		s.CrashShard(victim) // mid renewal storm
	})
	eng.Run()
	// The promoted incarnation must hold exactly the live set for its
	// slice, and the union across shards exactly the registrations.
	got := s.Dump(7)
	if len(got) != n {
		t.Fatalf("post-failover table holds %d of %d live keys", len(got), n)
	}
	for k, m := range live {
		gm, ok := got[k]
		if !ok || gm != m {
			t.Fatalf("key %v lost or changed across failover: %+v ok=%v", k, gm, ok)
		}
	}
	if st := s.ShardStats(victim); st.Failovers != 1 || st.Epoch != 2 {
		t.Fatalf("victim shard: %+v", st)
	}
}

// TestPagedDumpAvoidsHeadOfLineBlocking: with DumpPageSize set, a lookup
// arriving mid-dump waits for at most one page of serialization instead of
// the whole table.
func TestPagedDumpAvoidsHeadOfLineBlocking(t *testing.T) {
	const entries = 1000
	run := func(pageSize int) simtime.Duration {
		eng := simtime.NewEngine()
		p := DefaultParams()
		p.DumpPageSize = pageSize
		s := NewSharded([]*simtime.Engine{eng}, p, 1)
		for i := 0; i < entries; i++ {
			s.Register(keyN(7, i), mapping(packet.NewIP(172, 16, byte(i>>8), byte(i+1))))
		}
		var lookupLat simtime.Duration
		eng.Spawn("dump", func(pr *simtime.Proc) {
			if _, _, err := s.FetchShardDump(pr, 0, 7); err != nil {
				t.Errorf("dump: %v", err)
			}
		})
		eng.Spawn("lookup", func(pr *simtime.Proc) {
			pr.Sleep(simtime.Us(150)) // dump is past its RTT, serializing entries
			start := pr.Now()
			if _, _, _, err := s.Resolve(pr, keyN(7, 3)); err != nil {
				t.Errorf("lookup: %v", err)
			}
			lookupLat = pr.Now().Sub(start)
		})
		eng.Run()
		return lookupLat
	}
	unpaged := run(0)
	paged := run(50)
	if paged >= unpaged {
		t.Fatalf("paged dump did not cut lookup latency: paged %v vs unpaged %v", paged, unpaged)
	}
	// 1000 entries × 1µs ≈ 1ms of serialization; a 50-entry page bounds
	// the wait near 50µs + RTT.
	if paged > simtime.Us(300) {
		t.Fatalf("mid-dump lookup latency %v with 50-entry pages, want well under the full-dump stall", paged)
	}
}

// TestQueueHWMTracksContention: concurrent batch serialization on one shard
// drives the waiting high-water mark.
func TestQueueHWMTracksContention(t *testing.T) {
	eng := simtime.NewEngine()
	s := NewSharded([]*simtime.Engine{eng}, DefaultParams(), 1)
	const n = 40
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = keyN(7, i)
		s.Register(keys[i], mapping(packet.NewIP(172, 16, 0, byte(i+1))))
	}
	for w := 0; w < 6; w++ {
		eng.Spawn(fmt.Sprintf("batch%d", w), func(pr *simtime.Proc) {
			if _, _, err := s.BatchLookupShard(pr, 0, keys, nil); err != nil {
				t.Errorf("batch: %v", err)
			}
		})
	}
	eng.Run()
	if hwm := s.ShardStats(0).QueueHWM; hwm == 0 {
		t.Fatal("six concurrent batches left queue HWM at 0")
	}
}
