package controller

import (
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

func key(b byte) Key {
	return Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(10, 0, 0, b))}
}

func TestCrashWipesTableAndQueues(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.NotifyDelay = simtime.Us(300)
	c := New(eng, p)
	delivered := 0
	c.Subscribe(func(Notify) { delivered++ })
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(key(2), mapping(packet.NewIP(172, 16, 0, 2)))
	// Both notifications still sit in the delivery queue; the crash
	// destroys them along with the table.
	c.Crash()
	var err error
	var waited simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		s := p.Now()
		_, _, err = c.Lookup(p, key(1))
		waited = p.Now().Sub(s)
	})
	eng.Run()
	if len(c.Dump(100)) != 0 || c.Size() != 0 {
		t.Fatal("crash left table entries behind")
	}
	if c.Stats.NotifyWiped == 0 {
		t.Fatalf("wiped = %d, want the queued notifications destroyed", c.Stats.NotifyWiped)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d after crash", delivered)
	}
	if err != ErrUnavailable || waited != simtime.Ms(1) {
		t.Fatalf("lookup while down: err=%v waited=%v, want full-timeout ErrUnavailable", err, waited)
	}
	if !c.Down() || c.Stats.Crashes != 1 {
		t.Fatalf("down=%v crashes=%d", c.Down(), c.Stats.Crashes)
	}
}

func TestRestartBumpsEpochAndServesAgain(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	if c.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", c.Epoch())
	}
	c.Crash()
	c.Restart()
	if c.Epoch() != 2 || c.Down() || c.Stats.Restarts != 1 {
		t.Fatalf("after restart: epoch=%d down=%v restarts=%d", c.Epoch(), c.Down(), c.Stats.Restarts)
	}
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	var ok bool
	eng.Spawn("q", func(p *simtime.Proc) { _, ok = c.Query(p, key(1)) })
	eng.Run()
	if !ok {
		t.Fatal("restarted controller does not serve")
	}
	// Restart without a preceding crash is a no-op.
	c.Restart()
	if c.Epoch() != 2 {
		t.Fatalf("spurious restart bumped the epoch to %d", c.Epoch())
	}
}

func TestRegisterWhileDownIsLost(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	c.Crash()
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	c.Unregister(key(1))
	c.Restart()
	if len(c.Dump(100)) != 0 {
		t.Fatal("update made while down survived the crash")
	}
	if c.Stats.LostUpdates != 2 {
		t.Fatalf("lost updates = %d, want 2", c.Stats.LostUpdates)
	}
}

// TestCrashMidFlightEatsReply: a query already in flight when the
// controller dies never gets its answer — the caller waits out the full
// timeout, not just the RTT.
func TestCrashMidFlightEatsReply(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	eng.At(simtime.Time(simtime.Us(50)), c.Crash) // mid-RTT
	var err error
	var waited simtime.Duration
	eng.Spawn("q", func(p *simtime.Proc) {
		s := p.Now()
		_, _, err = c.Lookup(p, key(1))
		waited = p.Now().Sub(s)
	})
	eng.Run()
	if err != ErrUnavailable {
		t.Fatalf("err = %v, want ErrUnavailable (reply lost to the crash)", err)
	}
	if waited != simtime.Ms(1) {
		t.Fatalf("waited %v, want the full 1ms QueryTimeout", waited)
	}
}

// TestLookupChecksReplyInstant: an unavailability window that opens after
// the query is sent but before the reply would arrive still eats the
// reply — reachability is required at both instants.
func TestLookupChecksReplyInstant(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	c.SetFaultPlan(FaultPlan{Unavailable: []Window{
		{Start: simtime.Time(simtime.Us(50)), End: simtime.Time(simtime.Us(200))},
	}})
	var err error
	var waited simtime.Duration
	var okAfter bool
	eng.Spawn("q", func(p *simtime.Proc) {
		// Send at t=0 (outside the window); the reply instant t=100µs is
		// inside it.
		s := p.Now()
		_, _, err = c.Lookup(p, key(1))
		waited = p.Now().Sub(s)
		// Now both instants are clear of the window.
		_, okAfter, _ = c.Lookup(p, key(1))
	})
	eng.Run()
	if err != ErrUnavailable || waited != simtime.Ms(1) {
		t.Fatalf("mid-RTT window: err=%v waited=%v, want full-timeout ErrUnavailable", err, waited)
	}
	if !okAfter {
		t.Fatal("post-window lookup failed")
	}
	if c.Stats.Timeouts != 1 {
		t.Fatalf("timeouts = %d", c.Stats.Timeouts)
	}
}

func TestLeaseExpiresLazily(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.LeaseTTL = simtime.Ms(1)
	c := New(eng, p)
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	var okEarly, okLate bool
	eng.Spawn("q", func(p *simtime.Proc) {
		_, okEarly = c.Query(p, key(1)) // well inside the TTL
		p.Sleep(simtime.Ms(2))
		_, okLate = c.Query(p, key(1)) // lease lapsed
	})
	eng.Run()
	if !okEarly {
		t.Fatal("fresh lease did not resolve")
	}
	if okLate {
		t.Fatal("expired lease still resolves")
	}
	if c.Stats.LeaseExpired != 1 {
		t.Fatalf("lease expirations = %d", c.Stats.LeaseExpired)
	}
	if len(c.Dump(100)) != 0 {
		t.Fatal("oracle dump shows an expired lease as live")
	}
}

func TestRenewExtendsAndReinstates(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.LeaseTTL = simtime.Ms(1)
	c := New(eng, p)
	m := mapping(packet.NewIP(172, 16, 0, 1))
	c.Register(key(1), m)
	notifies := 0
	c.Subscribe(func(Notify) { notifies++ })
	var okExtended bool
	var epBefore, epAfter uint64
	var renewErr error
	eng.Spawn("q", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(500))
		epBefore, renewErr = c.Renew(p, key(1), m) // extends the lease
		if renewErr != nil {
			return
		}
		p.Sleep(simtime.Us(800)) // past the original deadline, inside the renewed one
		_, okExtended = c.Query(p, key(1))
		// Crash + restart wipe the entry; the next renewal reinstates it
		// under the new epoch and notifies subscribers.
		c.Crash()
		c.Restart()
		epAfter, renewErr = c.Renew(p, key(1), m)
	})
	eng.Run()
	if renewErr != nil {
		t.Fatal(renewErr)
	}
	if !okExtended {
		t.Fatal("renewed lease expired at the original deadline")
	}
	if epBefore != 1 || epAfter != 2 {
		t.Fatalf("epochs = %d, %d, want 1 then 2", epBefore, epAfter)
	}
	if len(c.Dump(100)) != 1 {
		t.Fatal("renewal after restart did not reinstate the mapping")
	}
	// The extension renewal is silent; the reinstatement notifies.
	if notifies != 1 {
		t.Fatalf("notifications = %d, want 1 (reinstatement only)", notifies)
	}
	if c.Stats.Renewals != 2 {
		t.Fatalf("renewals = %d", c.Stats.Renewals)
	}
}

// TestFetchDumpChargedAndFaultAware: the seeding RPC pays RTT plus a
// per-entry serialization cost and fails under the fault plan — unlike the
// free, omniscient Dump oracle.
func TestFetchDumpChargedAndFaultAware(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	for i := byte(1); i <= 5; i++ {
		c.Register(key(i), mapping(packet.NewIP(172, 16, 0, i)))
	}
	var got map[Key]Mapping
	var ep uint64
	var cost simtime.Duration
	var errIn error
	eng.Spawn("q", func(p *simtime.Proc) {
		s := p.Now()
		var err error
		got, ep, err = c.FetchDump(p, 100)
		if err != nil {
			t.Error(err)
		}
		cost = p.Now().Sub(s)
		c.SetFaultPlan(FaultPlan{Unavailable: []Window{{Start: p.Now(), End: p.Now().Add(simtime.Ms(10))}}})
		_, _, errIn = c.FetchDump(p, 100)
	})
	eng.Run()
	if len(got) != 5 || ep != 1 {
		t.Fatalf("dump = %d entries, epoch %d", len(got), ep)
	}
	want := simtime.Us(100) + 5*simtime.Us(1)
	if cost != want {
		t.Fatalf("dump cost = %v, want %v (RTT + 5 entries)", cost, want)
	}
	if errIn != ErrUnavailable {
		t.Fatalf("in-window FetchDump err = %v, want ErrUnavailable", errIn)
	}
	if len(c.Dump(100)) != 5 {
		t.Fatal("free oracle Dump must not be affected by the fault plan")
	}
}

// TestSubscriberQueueHighWaterMarks: a burst of registrations against a
// slow delivery channel builds a visible backlog.
func TestSubscriberQueueHighWaterMarks(t *testing.T) {
	eng := simtime.NewEngine()
	p := DefaultParams()
	p.NotifyDelay = simtime.Us(100)
	c := New(eng, p)
	sub := c.Subscribe(func(Notify) {})
	for i := byte(1); i <= 4; i++ {
		c.Register(key(i), mapping(packet.NewIP(172, 16, 0, i)))
	}
	if sub.Pending() != 4 {
		t.Fatalf("pending = %d before the drain", sub.Pending())
	}
	eng.Run()
	if sub.Pending() != 0 {
		t.Fatalf("pending = %d after the drain", sub.Pending())
	}
	if sub.HighWater() != 4 || c.Stats.NotifyQueueHWM != 4 {
		t.Fatalf("hwm = %d / %d, want 4", sub.HighWater(), c.Stats.NotifyQueueHWM)
	}
	if hwms := c.QueueHWMs(); len(hwms) != 1 || hwms[0] != 4 {
		t.Fatalf("QueueHWMs = %v", hwms)
	}
	if sub.Seq() != 4 {
		t.Fatalf("seq = %d", sub.Seq())
	}
}

// TestNotifyCarriesEpochAndSeq: notifications are stamped with the
// producing epoch and a gap-detectable per-subscriber sequence that stays
// monotonic across crash/restart.
func TestNotifyCarriesEpochAndSeq(t *testing.T) {
	eng := simtime.NewEngine()
	c := New(eng, DefaultParams())
	var got []Notify
	c.Subscribe(func(n Notify) { got = append(got, n) })
	c.Register(key(1), mapping(packet.NewIP(172, 16, 0, 1)))
	c.Register(key(2), mapping(packet.NewIP(172, 16, 0, 2)))
	eng.Run()
	c.Crash()
	c.Restart()
	c.Register(key(3), mapping(packet.NewIP(172, 16, 0, 3)))
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Epoch != 1 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("pre-crash notifies = %+v", got[:2])
	}
	if got[2].Epoch != 2 || got[2].Seq != 3 {
		t.Fatalf("post-restart notify = %+v", got[2])
	}
}
