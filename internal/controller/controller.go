// Package controller implements the logically centralized SDN controller
// of Sec. 3.3.1: it maintains the mapping table from (tenant VNI, virtual
// GID) to the physical GID (and underlay addressing) of the host currently
// running that endpoint. vBond registers and updates entries as virtual
// IPs change; RConnrename queries it — normally through its local cache —
// while establishing connections, and can ask for a push-down of a whole
// tenant's mappings to avoid even the first-query miss.
//
// Unlike the perfect RPC fabric of an early prototype, the controller here
// behaves like a real SDN service: push notifications to backends travel a
// per-subscriber delivery queue with configurable latency and loss (cache
// coherence is eventually consistent), and queries can time out under an
// injected fault plan (unavailability windows, dropped replies) so callers
// must retry.
package controller

import (
	"errors"
	"math/rand"

	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// ErrUnavailable is returned by Lookup when a query times out: the
// controller was inside an unavailability window or the reply was lost.
// The caller saw no answer within QueryTimeout and should back off and
// retry.
var ErrUnavailable = errors.New("controller: query timed out")

// Params model controller access costs and notification-channel behaviour.
type Params struct {
	QueryRTT   simtime.Duration // remote query round trip (paper: ~100 µs)
	UpdateCost simtime.Duration // applying a registration

	// QueryTimeout is how long a querier waits for a reply before
	// declaring the query lost (and, in the backend, backing off).
	QueryTimeout simtime.Duration

	// NotifyDelay is the controller→backend push latency: every
	// invalidation or push-down entry spends this long in the
	// subscriber's delivery queue before the backend applies it.
	NotifyDelay simtime.Duration

	// NotifyDropProb is the i.i.d. probability that a push notification
	// to one subscriber is lost in flight (never delivered). Losses are
	// drawn from a PRNG seeded with Seed, so runs are reproducible.
	NotifyDropProb float64

	// Seed seeds the notification-loss PRNG.
	Seed int64
}

// DefaultParams returns the paper's stated costs with a reliable,
// same-instant notification channel (the historical behaviour).
func DefaultParams() Params {
	return Params{
		QueryRTT:     simtime.Us(100),
		UpdateCost:   simtime.Us(5),
		QueryTimeout: simtime.Ms(1),
		Seed:         1,
	}
}

// queryTimeout returns the configured timeout, defaulting to 10× the RTT
// so a zero-valued Params still terminates.
func (p Params) queryTimeout() simtime.Duration {
	if p.QueryTimeout > 0 {
		return p.QueryTimeout
	}
	return 10 * p.QueryRTT
}

// Window is a half-open interval [Start, End) of virtual time during which
// the controller does not answer queries.
type Window struct {
	Start, End simtime.Time
}

// contains reports whether t falls inside the window.
func (w Window) contains(t simtime.Time) bool { return t >= w.Start && t < w.End }

// FaultPlan injects control-plane faults, driven entirely by the sim
// clock so every run is reproducible.
type FaultPlan struct {
	// Unavailable lists windows during which every query times out (the
	// controller is partitioned, overloaded, or failing over).
	Unavailable []Window

	// DropReplies makes the next N query replies vanish in flight: the
	// query reaches the controller, but the caller times out anyway.
	DropReplies int
}

// Mapping is the physical view of a virtual endpoint: the record
// RConnrename swaps into the QPC. A record is ~35 bytes on the wire
// (vGID 16 B + VNI 3 B + pGID 16 B), which is how the paper sizes the
// local cache.
type Mapping struct {
	PGID packet.GID
	PIP  packet.IP
	PMAC packet.MAC
}

// Key identifies a virtual endpoint. Different tenants may use identical
// virtual IPs, hence the VNI (Sec. 3.3.1).
type Key struct {
	VNI  uint32
	VGID packet.GID
}

// Stats counts controller traffic.
type Stats struct {
	Queries, Hits, Updates, Removals uint64

	// Timeouts counts queries that got no reply (window + dropped).
	Timeouts uint64
	// DroppedReplies counts replies lost via FaultPlan.DropReplies.
	DroppedReplies uint64

	// Notification-channel accounting.
	NotifySent      uint64 // notifications enqueued toward subscribers
	NotifyDropped   uint64 // lost in flight (NotifyDropProb)
	NotifyDelivered uint64 // applied by a subscriber callback
}

// notification is one queued push toward a subscriber.
type notification struct {
	k       Key
	m       Mapping
	removed bool
}

// subscriber is one backend's delivery channel: a FIFO queue drained by a
// dedicated DES process, so pushes arrive in order but asynchronously.
type subscriber struct {
	fn func(Key, Mapping, bool)
	q  *simtime.Queue[notification]
}

// Controller is the mapping service.
type Controller struct {
	P     Params
	Stats Stats

	eng   *simtime.Engine
	table map[Key]Mapping
	subs  []*subscriber
	fault FaultPlan
	rng   *rand.Rand
	rec   *trace.Recorder
}

// SetRecorder attaches a trace recorder; query and notification work is
// then recorded as controller-layer spans. A nil recorder is valid.
func (c *Controller) SetRecorder(r *trace.Recorder) { c.rec = r }

// New returns an empty controller.
func New(eng *simtime.Engine, p Params) *Controller {
	return &Controller{
		P:     p,
		eng:   eng,
		table: make(map[Key]Mapping),
		rng:   rand.New(rand.NewSource(p.Seed)),
	}
}

// SetFaultPlan arms (or replaces) the fault-injection plan.
func (c *Controller) SetFaultPlan(fp FaultPlan) { c.fault = fp }

// Register inserts or updates a mapping (vBond's notification on vGID
// creation or change) and queues push notifications to subscribers.
func (c *Controller) Register(k Key, m Mapping) {
	c.Stats.Updates++
	c.table[k] = m
	c.notify(notification{k: k, m: m})
}

// Unregister removes a mapping (VM shutdown / IP released) and queues
// invalidations to subscribers.
func (c *Controller) Unregister(k Key) {
	c.Stats.Removals++
	delete(c.table, k)
	c.notify(notification{k: k, removed: true})
}

// notify fans one event out to every subscriber's delivery queue, applying
// the loss model per subscriber.
func (c *Controller) notify(n notification) {
	for _, s := range c.subs {
		c.Stats.NotifySent++
		if c.P.NotifyDropProb > 0 && c.rng.Float64() < c.P.NotifyDropProb {
			c.Stats.NotifyDropped++
			continue
		}
		s.q.Put(n)
	}
}

// Subscribe registers a push-notification callback: local caches use it to
// invalidate or pre-populate ("the controller can be configured to push
// down the mappings in advance"). Delivery is asynchronous: each
// subscriber owns a FIFO queue drained by a DES process that sleeps
// NotifyDelay per notification, so a backend's cache view lags the
// controller's table — eventually consistent, like a real SDN.
func (c *Controller) Subscribe(fn func(k Key, m Mapping, removed bool)) {
	s := &subscriber{fn: fn, q: simtime.NewQueue[notification](c.eng)}
	c.subs = append(c.subs, s)
	c.eng.Spawn("controller.notify", func(p *simtime.Proc) {
		for {
			n := s.q.Get(p)
			sp := c.rec.Begin(p, trace.LayerController, "notify")
			if d := c.P.NotifyDelay; d > 0 {
				p.Sleep(d)
			}
			s.fn(n.k, n.m, n.removed)
			sp.End(p)
			c.Stats.NotifyDelivered++
		}
	})
}

// Query performs a remote lookup, paying the query round trip. It is the
// fault-oblivious legacy interface: a timeout surfaces as a miss. Callers
// that must distinguish "no mapping" from "no answer" use Lookup.
func (c *Controller) Query(p *simtime.Proc, k Key) (Mapping, bool) {
	m, ok, _ := c.Lookup(p, k)
	return m, ok
}

// Lookup performs one remote lookup attempt, modelling the RPC. On
// success the caller pays QueryRTT and gets the table's answer. Under an
// active fault — the send instant falls in an unavailability window, or
// the fault plan eats the reply — the caller waits the full QueryTimeout
// and gets ErrUnavailable; retrying is the caller's job.
func (c *Controller) Lookup(p *simtime.Proc, k Key) (Mapping, bool, error) {
	sp := c.rec.Begin(p, trace.LayerController, "lookup")
	defer sp.End(p)
	c.Stats.Queries++
	for _, w := range c.fault.Unavailable {
		if w.contains(p.Now()) {
			c.Stats.Timeouts++
			p.Sleep(c.P.queryTimeout())
			return Mapping{}, false, ErrUnavailable
		}
	}
	if c.fault.DropReplies > 0 {
		c.fault.DropReplies--
		c.Stats.Timeouts++
		c.Stats.DroppedReplies++
		p.Sleep(c.P.queryTimeout())
		return Mapping{}, false, ErrUnavailable
	}
	p.Sleep(c.P.QueryRTT)
	m, ok := c.table[k]
	if ok {
		c.Stats.Hits++
	}
	return m, ok, nil
}

// Dump returns every mapping of a tenant. Backends use it to seed their
// cache when push-down is enabled (avoiding even the first-query miss for
// endpoints registered before the backend existed).
func (c *Controller) Dump(vni uint32) map[Key]Mapping {
	out := make(map[Key]Mapping)
	for k, m := range c.table {
		if k.VNI == vni {
			out[k] = m
		}
	}
	return out
}

// Size returns the table size (scalability accounting).
func (c *Controller) Size() int { return len(c.table) }
