// Package controller implements the logically centralized SDN controller
// of Sec. 3.3.1: it maintains the mapping table from (tenant VNI, virtual
// GID) to the physical GID (and underlay addressing) of the host currently
// running that endpoint. vBond registers and updates entries as virtual
// IPs change; RConnrename queries it — normally through its local cache —
// while establishing connections, and can ask for a push-down of a whole
// tenant's mappings to avoid even the first-query miss.
//
// Unlike the perfect RPC fabric of an early prototype, the controller here
// behaves like a real SDN service: push notifications to backends travel a
// per-subscriber delivery queue with configurable latency and loss (cache
// coherence is eventually consistent), and queries can time out under an
// injected fault plan (unavailability windows, dropped replies) so callers
// must retry.
//
// The controller is also mortal. Crash wipes the mapping table and every
// pending notification and marks the service down; Restart brings it back
// empty under a new epoch. Nothing is persisted: recovery is edge-driven —
// each host re-registers its live endpoints when lease renewal reveals the
// new epoch (see internal/masq). Registrations are held as leases when
// LeaseTTL is set: entries not renewed within the TTL expire lazily, at
// RPC read time, so a host that died silently stops being routable without
// any background sweeper.
package controller

import (
	"errors"
	"math/rand"

	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// ErrUnavailable is returned by Lookup when a query times out: the
// controller was inside an unavailability window, crashed, or the reply
// was lost. The caller saw no answer within QueryTimeout and should back
// off and retry.
var ErrUnavailable = errors.New("controller: query timed out")

// Params model controller access costs and notification-channel behaviour.
type Params struct {
	QueryRTT   simtime.Duration // remote query round trip (paper: ~100 µs)
	UpdateCost simtime.Duration // applying a registration

	// QueryTimeout is how long a querier waits for a reply before
	// declaring the query lost (and, in the backend, backing off).
	QueryTimeout simtime.Duration

	// NotifyDelay is the controller→backend push latency: every
	// invalidation or push-down entry spends this long in the
	// subscriber's delivery queue before the backend applies it.
	NotifyDelay simtime.Duration

	// NotifyDropProb is the i.i.d. probability that a push notification
	// to one subscriber is lost in flight (never delivered). Losses are
	// drawn from a PRNG seeded with Seed, so runs are reproducible.
	NotifyDropProb float64

	// LeaseTTL turns registrations into leases: an entry not re-asserted
	// (Register/Renew) within the TTL expires and stops resolving. Zero
	// keeps the historical immortal-registration behaviour.
	LeaseTTL simtime.Duration

	// DumpEntryCost is the per-entry serialization cost of FetchDump, the
	// charged push-down seeding RPC: a whole-tenant dump costs
	// QueryRTT + entries × DumpEntryCost.
	DumpEntryCost simtime.Duration

	// DumpPageSize pages FetchDump serialization: instead of occupying the
	// controller for the whole entries × DumpEntryCost stretch, the dump is
	// serialized in chunks of this many entries, letting queued lookups
	// interleave between pages on a busy shard. Zero keeps the historical
	// single-stretch serialization.
	DumpPageSize int

	// Replicate gives every shard of a Sharded controller a standby
	// replica fed by a push-replicated mutation log; a crashed or
	// partitioned primary is then promoted automatically after
	// FailoverDetect. Ignored by a bare Controller.
	Replicate bool

	// ReplDelay is the per-record apply latency of the replication log:
	// a mutation is visible on the standby this long after the primary
	// accepted it. The window between accept and apply is exactly what a
	// failover can lose (fenced writes).
	ReplDelay simtime.Duration

	// FailoverDetect is how long a shard primary must be unreachable
	// before its standby is promoted. Zero defaults to 2 × QueryTimeout.
	FailoverDetect simtime.Duration

	// Seed seeds the notification-loss PRNG.
	Seed int64
}

// DefaultParams returns the paper's stated costs with a reliable,
// same-instant notification channel (the historical behaviour).
func DefaultParams() Params {
	return Params{
		QueryRTT:      simtime.Us(100),
		UpdateCost:    simtime.Us(5),
		QueryTimeout:  simtime.Ms(1),
		DumpEntryCost: simtime.Us(1),
		Seed:          1,
	}
}

// queryTimeout returns the configured timeout, defaulting to 10× the RTT
// so a zero-valued Params still terminates.
func (p Params) queryTimeout() simtime.Duration {
	if p.QueryTimeout > 0 {
		return p.QueryTimeout
	}
	return 10 * p.QueryRTT
}

// failoverDetect returns the configured promotion delay, defaulting to two
// query timeouts — long enough that a renewal round has visibly failed.
func (p Params) failoverDetect() simtime.Duration {
	if p.FailoverDetect > 0 {
		return p.FailoverDetect
	}
	return 2 * p.queryTimeout()
}

// Window is a half-open interval [Start, End) of virtual time during which
// the controller does not answer queries.
type Window struct {
	Start, End simtime.Time
}

// contains reports whether t falls inside the window.
func (w Window) contains(t simtime.Time) bool { return t >= w.Start && t < w.End }

// FaultPlan injects control-plane faults, driven entirely by the sim
// clock so every run is reproducible.
type FaultPlan struct {
	// Unavailable lists windows during which every query times out (the
	// controller is partitioned, overloaded, or failing over).
	Unavailable []Window

	// DropReplies makes the next N query replies vanish in flight: the
	// query reaches the controller, but the caller times out anyway.
	DropReplies int
}

// Mapping is the physical view of a virtual endpoint: the record
// RConnrename swaps into the QPC. A record is ~35 bytes on the wire
// (vGID 16 B + VNI 3 B + pGID 16 B), which is how the paper sizes the
// local cache.
type Mapping struct {
	PGID packet.GID
	PIP  packet.IP
	PMAC packet.MAC
}

// Key identifies a virtual endpoint. Different tenants may use identical
// virtual IPs, hence the VNI (Sec. 3.3.1).
type Key struct {
	VNI  uint32
	VGID packet.GID
}

// Stats counts controller traffic.
type Stats struct {
	Queries, Hits, Updates, Removals uint64

	// Timeouts counts queries that got no reply (window + dropped + down).
	Timeouts uint64
	// DroppedReplies counts replies lost via FaultPlan.DropReplies.
	DroppedReplies uint64

	// Notification-channel accounting.
	NotifySent      uint64 // notifications enqueued toward subscribers
	NotifyDropped   uint64 // lost in flight (NotifyDropProb)
	NotifyDelivered uint64 // applied by a subscriber callback
	NotifyWiped     uint64 // queued notifications destroyed by Crash

	// NotifyQueueHWM is the deepest any subscriber's delivery queue has
	// ever been — the visible notification backlog during outages and
	// push-down storms (per-subscriber marks via QueueHWMs).
	NotifyQueueHWM int

	// Crash/recovery accounting.
	Crashes      uint64 // Crash invocations
	Restarts     uint64 // Restart invocations (each bumps the epoch)
	Renewals     uint64 // successful Renew RPCs
	LeaseExpired uint64 // entries lazily purged after their lease lapsed
	LostUpdates  uint64 // Register/Unregister attempts while down

	// Batch-RPC accounting.
	BatchQueries  uint64 // successful BatchLookup RPCs
	BatchedKeys   uint64 // keys resolved through BatchLookup
	BatchRenewals uint64 // renewals piggybacked on BatchLookup

	// Migration accounting.
	Suspends uint64 // Suspend RPCs (migration freeze announcements)
	Moves    uint64 // Move RPCs (migration commits and rollback resumes)
}

// Notify is one push notification as a subscriber sees it: the table
// change plus the fencing metadata. Epoch is the controller incarnation
// that produced it — backends drop notifications from an epoch older than
// one they have already observed. Seq is the per-subscriber sequence
// number, counting every notification addressed to that subscriber
// (including ones lost in flight), so receivers can detect gaps.
type Notify struct {
	Key     Key
	Mapping Mapping
	Removed bool
	Epoch   uint64
	Seq     uint64

	// Suspend marks a migration freeze announcement: the endpoint behind
	// Key is about to black out, so subscribers quiesce their requester
	// side toward it (no TX, no retransmission timer) instead of burning
	// through the transport retry budget.
	Suspend bool
	// Moved marks a migration commit — Mapping is the endpoint's new
	// physical identity and QPNMap translates its old QP numbers to the
	// ones minted on the destination device, so peers rewrite address
	// vectors in place and replay their in-flight PSN windows. A rollback
	// resume is a Moved push carrying the *original* mapping and no QPNMap.
	Moved  bool
	QPNMap map[uint32]uint32
}

// Subscription is one backend's delivery channel: a FIFO queue drained by
// a dedicated DES process, so pushes arrive in order but asynchronously.
// Its accessors let the subscriber audit the channel: Seq is the highest
// sequence number addressed to it, Pending the queue depth, HighWater the
// deepest backlog ever observed.
type Subscription struct {
	fn  func(Notify)
	q   *simtime.Queue[Notify]
	seq uint64
	hwm int
}

// Seq returns the highest sequence number addressed to this subscriber
// (delivered, queued, or lost in flight).
func (s *Subscription) Seq() uint64 { return s.seq }

// Pending returns the current delivery-queue depth.
func (s *Subscription) Pending() int { return s.q.Len() }

// HighWater returns the deepest the delivery queue has ever been.
func (s *Subscription) HighWater() int { return s.hwm }

// Controller is the mapping service.
type Controller struct {
	P     Params
	Stats Stats

	eng   *simtime.Engine
	table map[Key]entry
	subs  []*Subscription
	fault FaultPlan
	rng   *rand.Rand
	rec   *trace.Recorder

	epoch uint64
	down  bool

	// occupy, when set, replaces serialization sleeps with the owning
	// shard's service-queue model (wait for the slot, then hold it for the
	// cost). Nil — the bare-controller default — is a plain Sleep, which is
	// byte-identical to the historical behaviour.
	occupy func(p *simtime.Proc, cost simtime.Duration)
	// mutated, when set, appends every accepted table write to the owning
	// shard's replication log. Nil (the default) replicates nothing.
	mutated func(k Key, e entry, removed bool)
}

// entry is one table row: the mapping, the epoch it was written under, and
// its lease deadline (zero when leases are disabled).
type entry struct {
	m       Mapping
	epoch   uint64
	expires simtime.Time
}

// SetRecorder attaches a trace recorder; query and notification work is
// then recorded as controller-layer spans. A nil recorder is valid.
func (c *Controller) SetRecorder(r *trace.Recorder) { c.rec = r }

// New returns an empty controller in epoch 1.
func New(eng *simtime.Engine, p Params) *Controller {
	return &Controller{
		P:     p,
		eng:   eng,
		table: make(map[Key]entry),
		rng:   rand.New(rand.NewSource(p.Seed)),
		epoch: 1,
	}
}

// SetFaultPlan arms (or replaces) the fault-injection plan.
func (c *Controller) SetFaultPlan(fp FaultPlan) { c.fault = fp }

// Epoch returns the current controller incarnation. It bumps on every
// Restart; mappings, notifications, and RPC replies all carry it.
func (c *Controller) Epoch() uint64 { return c.epoch }

// Down reports whether the controller is crashed (test/ops oracle).
func (c *Controller) Down() bool { return c.down }

// Crash kills the controller: the in-memory mapping table and every queued
// (undelivered) notification are destroyed, and all RPCs time out until
// Restart. Nothing is persisted — recovery relies entirely on the edge
// re-registering (see Renew).
func (c *Controller) Crash() {
	if c.down {
		return
	}
	c.down = true
	c.Stats.Crashes++
	c.table = make(map[Key]entry)
	for _, s := range c.subs {
		for {
			if _, ok := s.q.TryGet(); !ok {
				break
			}
			c.Stats.NotifyWiped++
		}
	}
}

// Restart brings a crashed controller back with an empty table and a new
// epoch. Backends discover the bump via lease renewal (or a fenced-epoch
// notification) and reconverge the table by re-registering.
func (c *Controller) Restart() {
	if !c.down {
		return
	}
	c.down = false
	c.Stats.Restarts++
	c.epoch++
}

// leaseExpiry returns the deadline for an entry written now.
func (c *Controller) leaseExpiry(now simtime.Time) simtime.Time {
	if c.P.LeaseTTL <= 0 {
		return 0
	}
	return now.Add(c.P.LeaseTTL)
}

// live reports whether an entry's lease still holds at now.
func (e entry) live(now simtime.Time) bool {
	return e.expires == 0 || now < e.expires
}

// Register inserts or updates a mapping (vBond's notification on vGID
// creation or change) and queues push notifications to subscribers. While
// the controller is down the update is simply lost — the edge's lease
// renewal repairs it after Restart.
func (c *Controller) Register(k Key, m Mapping) {
	if c.down {
		c.Stats.LostUpdates++
		return
	}
	c.Stats.Updates++
	e := entry{m: m, epoch: c.epoch, expires: c.leaseExpiry(c.eng.Now())}
	c.table[k] = e
	c.logMutation(k, e, false)
	c.notify(Notify{Key: k, Mapping: m})
}

// Unregister removes a mapping (VM shutdown / IP released) and queues
// invalidations to subscribers. Lost while the controller is down (the
// lease, if any, eventually expires instead).
func (c *Controller) Unregister(k Key) {
	if c.down {
		c.Stats.LostUpdates++
		return
	}
	c.Stats.Removals++
	delete(c.table, k)
	c.logMutation(k, entry{}, true)
	c.notify(Notify{Key: k, Removed: true})
}

// notify fans one event out to every subscriber's delivery queue, applying
// the loss model per subscriber and stamping epoch + per-subscriber seq.
func (c *Controller) notify(n Notify) {
	n.Epoch = c.epoch
	for _, s := range c.subs {
		c.Stats.NotifySent++
		s.seq++
		n.Seq = s.seq
		if c.P.NotifyDropProb > 0 && c.rng.Float64() < c.P.NotifyDropProb {
			c.Stats.NotifyDropped++
			continue
		}
		s.q.Put(n)
		if d := s.q.Len(); d > s.hwm {
			s.hwm = d
			if d > c.Stats.NotifyQueueHWM {
				c.Stats.NotifyQueueHWM = d
			}
		}
	}
}

// Subscribe registers a push-notification callback: local caches use it to
// invalidate or pre-populate ("the controller can be configured to push
// down the mappings in advance"). Delivery is asynchronous: each
// subscriber owns a FIFO queue drained by a DES process that sleeps
// NotifyDelay per notification, so a backend's cache view lags the
// controller's table — eventually consistent, like a real SDN. The
// returned Subscription exposes the channel's fencing metadata (Seq,
// Pending, HighWater) for the subscriber's reconciliation logic.
func (c *Controller) Subscribe(fn func(Notify)) *Subscription {
	s := &Subscription{fn: fn, q: simtime.NewQueue[Notify](c.eng)}
	c.subs = append(c.subs, s)
	c.eng.Spawn("controller.notify", func(p *simtime.Proc) {
		for {
			n := s.q.Get(p)
			sp := c.rec.Begin(p, trace.LayerController, "notify")
			if d := c.P.NotifyDelay; d > 0 {
				p.Sleep(d)
			}
			s.fn(n)
			sp.End(p)
			c.Stats.NotifyDelivered++
		}
	})
	return s
}

// QueueHWMs returns each subscriber's delivery-queue high-water mark, in
// subscription order (observability: notification backlog per backend).
func (c *Controller) QueueHWMs() []int {
	out := make([]int, len(c.subs))
	for i, s := range c.subs {
		out[i] = s.hwm
	}
	return out
}

// inWindow reports whether t falls inside any unavailability window.
func (c *Controller) inWindow(t simtime.Time) bool {
	for _, w := range c.fault.Unavailable {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// windowOverlaps reports whether any unavailability window intersects the
// closed RPC interval [from, to]: the request is lost if the controller is
// unreachable at any instant while it is in flight — including a window
// strictly contained inside the interval, which the old send/reply point
// checks missed.
func (c *Controller) windowOverlaps(from, to simtime.Time) bool {
	for _, w := range c.fault.Unavailable {
		if w.Start <= to && from < w.End {
			return true
		}
	}
	return false
}

// serialize charges a serialization cost: through the shard service-queue
// model when the controller belongs to a Sharded front door, otherwise a
// plain sleep (identical virtual time when uncontended).
func (c *Controller) serialize(p *simtime.Proc, cost simtime.Duration) {
	if cost <= 0 {
		return
	}
	if c.occupy != nil {
		c.occupy(p, cost)
		return
	}
	p.Sleep(cost)
}

// logMutation appends one accepted table write to the replication log, if
// any is attached.
func (c *Controller) logMutation(k Key, e entry, removed bool) {
	if c.mutated != nil {
		c.mutated(k, e, removed)
	}
}

// rpc models one control RPC round trip under the fault plan. The
// controller must be reachable for the whole [send, send+QueryRTT]
// interval — a window opening (or a crash landing) anywhere mid-RTT eats
// the reply, and the caller waits out the full QueryTimeout exactly like
// any lost answer. On success the caller has paid QueryRTT.
func (c *Controller) rpc(p *simtime.Proc) error {
	send := p.Now()
	if c.down || c.windowOverlaps(send, send.Add(c.P.QueryRTT)) {
		c.Stats.Timeouts++
		p.Sleep(c.P.queryTimeout())
		return ErrUnavailable
	}
	if c.fault.DropReplies > 0 {
		c.fault.DropReplies--
		c.Stats.Timeouts++
		c.Stats.DroppedReplies++
		p.Sleep(c.P.queryTimeout())
		return ErrUnavailable
	}
	p.Sleep(c.P.QueryRTT)
	if c.down {
		// Crashed while the request was in flight: the reply never comes.
		c.Stats.Timeouts++
		if rest := c.P.queryTimeout() - c.P.QueryRTT; rest > 0 {
			p.Sleep(rest)
		}
		return ErrUnavailable
	}
	return nil
}

// Query performs a remote lookup, paying the query round trip. It is the
// fault-oblivious legacy interface: a timeout surfaces as a miss. Callers
// that must distinguish "no mapping" from "no answer" use Lookup.
func (c *Controller) Query(p *simtime.Proc, k Key) (Mapping, bool) {
	m, ok, _ := c.Lookup(p, k)
	return m, ok
}

// Lookup performs one remote lookup attempt, modelling the RPC. On
// success the caller pays QueryRTT and gets the table's answer (expired
// leases are purged here, lazily). Under an active fault the caller waits
// the full QueryTimeout and gets ErrUnavailable; retrying is the caller's
// job. The reply is from epoch Epoch() — read it at the same instant.
func (c *Controller) Lookup(p *simtime.Proc, k Key) (Mapping, bool, error) {
	sp := c.rec.Begin(p, trace.LayerController, "lookup")
	defer sp.End(p)
	c.Stats.Queries++
	if err := c.rpc(p); err != nil {
		return Mapping{}, false, err
	}
	e, ok := c.table[k]
	if ok && !e.live(p.Now()) {
		delete(c.table, k)
		c.Stats.LeaseExpired++
		ok = false
	}
	if ok {
		c.Stats.Hits++
		return e.m, true, nil
	}
	return Mapping{}, false, nil
}

// Renew is the lease-renewal RPC: the edge re-asserts that (k → m) is
// live, extending the lease and re-creating the entry if the controller
// lost it (crash, expiry). It returns the controller's current epoch so
// callers discover restarts. A renewal that changes the table's view of k
// (reinstatement or address change) notifies subscribers like a Register;
// a pure extension is silent.
func (c *Controller) Renew(p *simtime.Proc, k Key, m Mapping) (uint64, error) {
	sp := c.rec.Begin(p, trace.LayerController, "renew")
	defer sp.End(p)
	if err := c.rpc(p); err != nil {
		return 0, err
	}
	now := p.Now()
	old, had := c.table[k]
	if had && !old.live(now) {
		c.Stats.LeaseExpired++
		had = false
	}
	c.Stats.Renewals++
	e := entry{m: m, epoch: c.epoch, expires: c.leaseExpiry(now)}
	c.table[k] = e
	c.logMutation(k, e, false)
	if !had || old.m != m {
		c.notify(Notify{Key: k, Mapping: m})
	}
	return c.epoch, nil
}

// Suspend is the migration freeze announcement RPC: it pushes a Suspend
// notification for k to every subscriber so peers quiesce their QPs toward
// the endpoint before its blackout starts. The table is untouched — the
// mapping keeps resolving (grace for late setups) until Move replaces it.
// A failure means the freeze was never announced; the migration must abort
// before touching anything.
func (c *Controller) Suspend(p *simtime.Proc, k Key) error {
	sp := c.rec.Begin(p, trace.LayerController, "suspend")
	defer sp.End(p)
	if err := c.rpc(p); err != nil {
		return err
	}
	c.Stats.Suspends++
	c.notify(Notify{Key: k, Suspend: true})
	return nil
}

// Move is the migration commit RPC: in one atomic step the table's mapping
// for k is replaced by m (fresh lease, current epoch) and a Moved push
// carrying the old→new QPN translation fans out, so peers rename their
// caches and address vectors in place and resume. A rollback re-commits
// the original mapping with a nil qpnMap — peers resume toward the source
// with nothing rewritten.
func (c *Controller) Move(p *simtime.Proc, k Key, m Mapping, qpnMap map[uint32]uint32) error {
	sp := c.rec.Begin(p, trace.LayerController, "move")
	defer sp.End(p)
	if err := c.rpc(p); err != nil {
		return err
	}
	c.Stats.Moves++
	c.Stats.Updates++
	e := entry{m: m, epoch: c.epoch, expires: c.leaseExpiry(p.Now())}
	c.table[k] = e
	c.logMutation(k, e, false)
	c.notify(Notify{Key: k, Mapping: m, Moved: true, QPNMap: qpnMap})
	return nil
}

// RenewReq is one piggybacked lease renewal inside a BatchLookup request:
// the edge re-asserts (K → M) while it is querying anyway, saving the
// separate Renew round trip.
type RenewReq struct {
	K Key
	M Mapping
}

// BatchResult is one key's answer in a BatchLookup reply.
type BatchResult struct {
	M  Mapping
	OK bool
}

// BatchLookup resolves many keys in ONE query round trip and applies the
// piggybacked renewals in the same request — the connection-setup fast
// path's amortization of the per-RPC QueryRTT. The wire shape is a single
// request frame carrying all keys and renewal records; serialization is
// charged at DumpEntryCost per record beyond the first (the first rides the
// QueryRTT like a plain Lookup). The reply carries one BatchResult per key,
// in request order, plus the controller epoch. Under a fault the whole
// batch times out as one RPC: the caller waits one QueryTimeout, not one
// per key.
func (c *Controller) BatchLookup(p *simtime.Proc, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error) {
	sp := c.rec.Begin(p, trace.LayerController, "batch_lookup")
	defer sp.End(p)
	c.Stats.Queries++
	if err := c.rpc(p); err != nil {
		return nil, 0, err
	}
	if d := c.P.DumpEntryCost; d > 0 {
		if extra := len(keys) + len(renew) - 1; extra > 0 {
			c.serialize(p, simtime.Duration(extra)*d)
		}
	}
	now := p.Now()
	for _, r := range renew {
		old, had := c.table[r.K]
		if had && !old.live(now) {
			c.Stats.LeaseExpired++
			had = false
		}
		c.Stats.Renewals++
		c.Stats.BatchRenewals++
		e := entry{m: r.M, epoch: c.epoch, expires: c.leaseExpiry(now)}
		c.table[r.K] = e
		c.logMutation(r.K, e, false)
		if !had || old.m != r.M {
			c.notify(Notify{Key: r.K, Mapping: r.M})
		}
	}
	out := make([]BatchResult, len(keys))
	for i, k := range keys {
		e, ok := c.table[k]
		if ok && !e.live(now) {
			delete(c.table, k)
			c.Stats.LeaseExpired++
			ok = false
		}
		if ok {
			c.Stats.Hits++
			out[i] = BatchResult{M: e.m, OK: true}
		}
	}
	c.Stats.BatchQueries++
	c.Stats.BatchedKeys += uint64(len(keys))
	return out, c.epoch, nil
}

// FetchDump is the charged, fault-aware whole-tenant dump RPC backends use
// for push-down seeding and post-outage resync: it pays the query round
// trip plus a size-proportional serialization cost, times out under the
// fault plan like any other RPC, and returns the epoch of the snapshot.
// (The serialization cost is charged before the snapshot is taken, so the
// mappings the caller receives are current as of the RPC's return instant.)
func (c *Controller) FetchDump(p *simtime.Proc, vni uint32) (map[Key]Mapping, uint64, error) {
	sp := c.rec.Begin(p, trace.LayerController, "dump")
	defer sp.End(p)
	c.Stats.Queries++
	if err := c.rpc(p); err != nil {
		return nil, 0, err
	}
	if d := c.P.DumpEntryCost; d > 0 {
		n := 0
		for k, e := range c.table {
			if k.VNI == vni && e.live(p.Now()) {
				n++
			}
		}
		// Paged serialization (DumpPageSize > 0) releases the shard's
		// serialization slot between chunks so queued lookups interleave
		// with a big resync instead of waiting out the whole dump. The
		// unpaged default is one stretch — byte-identical to the
		// historical single sleep.
		if page := c.P.DumpPageSize; page > 0 {
			for rem := n; rem > 0; rem -= page {
				chunk := rem
				if chunk > page {
					chunk = page
				}
				c.serialize(p, simtime.Duration(chunk)*d)
			}
		} else if n > 0 {
			c.serialize(p, simtime.Duration(n)*d)
		}
	}
	now := p.Now()
	out := make(map[Key]Mapping)
	for k, e := range c.table {
		if k.VNI != vni {
			continue
		}
		if !e.live(now) {
			delete(c.table, k)
			c.Stats.LeaseExpired++
			continue
		}
		out[k] = e.m
	}
	return out, c.epoch, nil
}

// Dump returns every live mapping of a tenant, instantly and regardless of
// faults: it is the omniscient test/ops oracle, NOT an RPC the data plane
// may use — backends seed and resync through FetchDump.
func (c *Controller) Dump(vni uint32) map[Key]Mapping {
	now := c.eng.Now()
	out := make(map[Key]Mapping)
	for k, e := range c.table {
		if k.VNI == vni && e.live(now) {
			out[k] = e.m
		}
	}
	return out
}

// Size returns the raw table size, expired leases included (scalability
// accounting; lazy expiry only runs on the RPC paths).
func (c *Controller) Size() int { return len(c.table) }
