// Package controller implements the logically centralized SDN controller
// of Sec. 3.3.1: it maintains the mapping table from (tenant VNI, virtual
// GID) to the physical GID (and underlay addressing) of the host currently
// running that endpoint. vBond registers and updates entries as virtual
// IPs change; RConnrename queries it — normally through its local cache —
// while establishing connections, and can ask for a push-down of a whole
// tenant's mappings to avoid even the first-query miss.
package controller

import (
	"masq/internal/packet"
	"masq/internal/simtime"
)

// Params model controller access costs.
type Params struct {
	QueryRTT   simtime.Duration // remote query round trip (paper: ~100 µs)
	UpdateCost simtime.Duration // applying a registration
}

// DefaultParams returns the paper's stated costs.
func DefaultParams() Params {
	return Params{QueryRTT: simtime.Us(100), UpdateCost: simtime.Us(5)}
}

// Mapping is the physical view of a virtual endpoint: the record
// RConnrename swaps into the QPC. A record is ~35 bytes on the wire
// (vGID 16 B + VNI 3 B + pGID 16 B), which is how the paper sizes the
// local cache.
type Mapping struct {
	PGID packet.GID
	PIP  packet.IP
	PMAC packet.MAC
}

// Key identifies a virtual endpoint. Different tenants may use identical
// virtual IPs, hence the VNI (Sec. 3.3.1).
type Key struct {
	VNI  uint32
	VGID packet.GID
}

// Stats counts controller traffic.
type Stats struct {
	Queries, Hits, Updates, Removals uint64
}

// Controller is the mapping service.
type Controller struct {
	P     Params
	Stats Stats

	eng   *simtime.Engine
	table map[Key]Mapping
	subs  []func(Key, Mapping, bool) // (key, mapping, removed)
}

// New returns an empty controller.
func New(eng *simtime.Engine, p Params) *Controller {
	return &Controller{P: p, eng: eng, table: make(map[Key]Mapping)}
}

// Register inserts or updates a mapping (vBond's notification on vGID
// creation or change) and notifies subscribers.
func (c *Controller) Register(k Key, m Mapping) {
	c.Stats.Updates++
	c.table[k] = m
	for _, fn := range c.subs {
		fn(k, m, false)
	}
}

// Unregister removes a mapping (VM shutdown / IP released).
func (c *Controller) Unregister(k Key) {
	c.Stats.Removals++
	delete(c.table, k)
	for _, fn := range c.subs {
		fn(k, Mapping{}, true)
	}
}

// Subscribe registers a push-notification callback: local caches use it to
// invalidate or pre-populate ("the controller can be configured to push
// down the mappings in advance").
func (c *Controller) Subscribe(fn func(k Key, m Mapping, removed bool)) {
	c.subs = append(c.subs, fn)
}

// Query performs a remote lookup, paying the query round trip.
func (c *Controller) Query(p *simtime.Proc, k Key) (Mapping, bool) {
	c.Stats.Queries++
	p.Sleep(c.P.QueryRTT)
	m, ok := c.table[k]
	if ok {
		c.Stats.Hits++
	}
	return m, ok
}

// Dump returns every mapping of a tenant (push-down support).
func (c *Controller) Dump(vni uint32) map[Key]Mapping {
	out := make(map[Key]Mapping)
	for k, m := range c.table {
		if k.VNI == vni {
			out[k] = m
		}
	}
	return out
}

// Size returns the table size (scalability accounting).
func (c *Controller) Size() int { return len(c.table) }
