package controller

import (
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

func replEntry(i int) (Key, entry) {
	return keyN(9, i), entry{m: mapping(packet.NewIP(172, 16, 0, byte(i+1))), epoch: 1}
}

// TestReplicaAppliesWithDelay: records fold into the shadow table one
// ReplDelay apart, and Lag drains to zero.
func TestReplicaAppliesWithDelay(t *testing.T) {
	eng := simtime.NewEngine()
	r := newReplica(eng, simtime.Us(10))
	const n = 5
	for i := 0; i < n; i++ {
		k, e := replEntry(i)
		r.append(k, e, false)
	}
	if lag := r.Lag(); lag != n {
		t.Fatalf("lag before apply = %d, want %d", lag, n)
	}
	eng.Spawn("watch", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(10*n - 5)) // one record still on the channel
		if lag := r.Lag(); lag != 1 {
			t.Errorf("lag mid-drain = %d, want 1", lag)
		}
		p.Sleep(simtime.Us(10))
		if lag := r.Lag(); lag != 0 {
			t.Errorf("lag after drain = %d, want 0", lag)
		}
	})
	eng.Run()
	snap := r.snapshot()
	if len(snap) != n {
		t.Fatalf("shadow table holds %d entries, want %d", len(snap), n)
	}
	for i := 0; i < n; i++ {
		k, e := replEntry(i)
		if got, ok := snap[k]; !ok || got.m != e.m {
			t.Fatalf("entry %d missing or wrong in snapshot", i)
		}
	}
}

// TestReplicaRemoveRecords: a removed=true record deletes from the shadow
// table.
func TestReplicaRemoveRecords(t *testing.T) {
	eng := simtime.NewEngine()
	r := newReplica(eng, simtime.Us(10))
	k, e := replEntry(0)
	r.append(k, e, false)
	r.append(k, entry{}, true)
	eng.Run()
	if snap := r.snapshot(); len(snap) != 0 {
		t.Fatalf("shadow table holds %d entries after remove, want 0", len(snap))
	}
	if lag := r.Lag(); lag != 0 {
		t.Fatalf("lag = %d after drain", lag)
	}
}

// TestReplicaTruncateFencesQueuedAndInFlight: truncation at the promotion
// instant drops both the queued records and the one already on the channel;
// none of them contaminate the promoted table.
func TestReplicaTruncateFencesQueuedAndInFlight(t *testing.T) {
	eng := simtime.NewEngine()
	r := newReplica(eng, simtime.Us(10))
	k0, e0 := replEntry(0)
	r.append(k0, e0, false)
	eng.Spawn("promote", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(15)) // record 0 applied at +10
		for i := 1; i < 4; i++ {
			k, e := replEntry(i)
			r.append(k, e, false)
		}
		p.Sleep(simtime.Us(5)) // record 1 is now on the channel, 2..3 queued
		queued := r.truncate()
		if queued != 2 {
			t.Errorf("truncate drained %d queued records, want 2", queued)
		}
		p.Sleep(simtime.Us(20)) // let the in-flight record's sleep expire
		if got := r.Fenced(); got != 3 {
			t.Errorf("fenced = %d, want 3 (2 queued + 1 in flight)", got)
		}
		snap := r.snapshot()
		if len(snap) != 1 {
			t.Errorf("promoted table holds %d entries, want only the applied one", len(snap))
		}
		if _, ok := snap[k0]; !ok {
			t.Error("applied record missing from promoted table")
		}
		if lag := r.Lag(); lag != 0 {
			t.Errorf("lag = %d after truncate, want 0", lag)
		}
	})
	eng.Run()
}

// TestReplicaLagWindow: records applied inside a chaos lag window pay the
// extra delay; after the window the base delay resumes.
func TestReplicaLagWindow(t *testing.T) {
	eng := simtime.NewEngine()
	r := newReplica(eng, simtime.Us(10))
	r.SetLagWindow(simtime.Time(0).Add(simtime.Us(100)), simtime.Us(90))
	k0, e0 := replEntry(0)
	r.append(k0, e0, false)
	eng.Spawn("watch", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(50)) // base delay alone would have applied at +10
		if lag := r.Lag(); lag != 1 {
			t.Errorf("lagged record applied early (lag=%d)", lag)
		}
		p.Sleep(simtime.Us(60)) // 100µs lagged apply has landed by +110
		if lag := r.Lag(); lag != 0 {
			t.Errorf("lagged record never applied (lag=%d)", lag)
		}
		// Past the window: back to the base delay.
		k1, e1 := replEntry(1)
		r.append(k1, e1, false)
		p.Sleep(simtime.Us(15))
		if lag := r.Lag(); lag != 0 {
			t.Errorf("post-window record still pending (lag=%d)", lag)
		}
	})
	eng.Run()
}

// TestReplicaReset: a rejoining standby re-images from the authoritative
// table and discards its stale log.
func TestReplicaReset(t *testing.T) {
	eng := simtime.NewEngine()
	r := newReplica(eng, simtime.Us(10))
	kOld, eOld := replEntry(0)
	r.append(kOld, eOld, false) // never applied: reset fences it
	kNew, eNew := replEntry(1)
	r.reset(map[Key]entry{kNew: eNew})
	eng.Run()
	snap := r.snapshot()
	if len(snap) != 1 {
		t.Fatalf("reset table holds %d entries, want 1", len(snap))
	}
	if got, ok := snap[kNew]; !ok || got.m != eNew.m {
		t.Fatal("authoritative entry missing after reset")
	}
	if _, ok := snap[kOld]; ok {
		t.Fatal("stale log record survived reset")
	}
	if r.Fenced() == 0 {
		t.Fatal("reset did not count the discarded record as fenced")
	}
}
