package controller

import (
	"masq/internal/simtime"
)

// Remote is a per-host Service proxy for DES-sharded clusters: the host's
// procs live on one engine shard, the controller shards on theirs, and
// engine shards may only interact through Exchanges. Every RPC ships the
// request over the host→controller exchange, executes in a spawned proc on
// the controller shard's engine, and ships the reply back; notifications
// relay the other way. Requests always ride the exchanges — even when the
// host and the controller shard happen to share an engine shard — so the
// cross-shard event order (time, exchange, seq) is independent of the
// engine-shard count and a one-engine-shard run stays byte-identical to an
// N-shard run.
//
// This is the shard-aware controller placement piece: MasQ-mode nodes call
// the controller through their own Remote instead of reaching into shard
// 0's state, so controller shards can live on any engine shard.
type Remote struct {
	s       *Sharded
	hostEng *simtime.Engine
	la      simtime.Duration // exchange latency (== the cluster lookahead)
	chans   []remoteChan     // one pair per controller shard, in shard order
}

// remoteChan is the exchange pair to one controller shard.
type remoteChan struct {
	to, from *simtime.Exchange
	eng      *simtime.Engine // that shard's engine
}

// NewRemote wires one host's proxy: hostShard is the engine shard the
// host's procs run on, engineShardOf maps a controller shard to its engine
// shard, and lat is the exchange latency (at least the cluster's
// lookahead). Exchanges are created in controller-shard order, so as long
// as hosts are wired in a deterministic order the cross-shard message
// order is too.
func NewRemote(se *simtime.ShardedEngine, s *Sharded, hostShard int, engineShardOf func(ctrlShard int) int, lat simtime.Duration) *Remote {
	r := &Remote{
		s:       s,
		hostEng: se.Shard(hostShard),
		la:      lat,
		chans:   make([]remoteChan, s.NumShards()),
	}
	for cs := range r.chans {
		es := engineShardOf(cs)
		r.chans[cs] = remoteChan{
			to:   se.NewExchange(hostShard, es, lat),
			from: se.NewExchange(es, hostShard, lat),
			eng:  se.Shard(es),
		}
	}
	return r
}

// call ships op to the controller shard, runs it in a proc there, and
// returns its boxed result to the waiting host proc.
func (r *Remote) call(p *simtime.Proc, cs int, name string, op func(q *simtime.Proc) any) any {
	ch := r.chans[cs]
	ev := simtime.NewEvent[any](r.hostEng)
	ch.to.Send(p.Now().Add(r.la), func() {
		ch.eng.Spawn(name, func(q *simtime.Proc) {
			res := op(q)
			ch.from.Send(q.Now().Add(r.la), func() { ev.Trigger(res) })
		})
	})
	return ev.Wait(p)
}

// NumShards returns the keyspace shard count.
func (r *Remote) NumShards() int { return r.s.NumShards() }

// Owner routes locally — the shard map is immutable and engine-safe.
func (r *Remote) Owner(k Key) int { return r.s.Owner(k) }

// RPCParams returns the shared cost model (a copy; engine-safe).
func (r *Remote) RPCParams() Params { return r.s.RPCParams() }

// Register ships a fire-and-forget registration to the owning shard.
func (r *Remote) Register(k Key, m Mapping) {
	cs := r.s.Owner(k)
	ch := r.chans[cs]
	ch.to.Send(r.hostEng.Now().Add(r.la), func() { r.s.shards[cs].pri.Register(k, m) })
}

// Unregister ships a fire-and-forget removal to the owning shard.
func (r *Remote) Unregister(k Key) {
	cs := r.s.Owner(k)
	ch := r.chans[cs]
	ch.to.Send(r.hostEng.Now().Add(r.la), func() { r.s.shards[cs].pri.Unregister(k) })
}

type remoteResolve struct {
	m   Mapping
	ok  bool
	ep  uint64
	err error
}

// Resolve proxies one lookup to the owning shard's engine.
func (r *Remote) Resolve(p *simtime.Proc, k Key) (Mapping, bool, uint64, error) {
	cs := r.s.Owner(k)
	res := r.call(p, cs, "controller.remote.resolve", func(q *simtime.Proc) any {
		m, ok, ep, err := r.s.resolveOn(q, cs, k)
		return remoteResolve{m: m, ok: ok, ep: ep, err: err}
	}).(remoteResolve)
	return res.m, res.ok, res.ep, res.err
}

type remoteRenew struct {
	ep  uint64
	err error
}

// Renew proxies a lease renewal to the owning shard's engine.
func (r *Remote) Renew(p *simtime.Proc, k Key, m Mapping) (uint64, error) {
	cs := r.s.Owner(k)
	res := r.call(p, cs, "controller.remote.renew", func(q *simtime.Proc) any {
		ep, err := r.s.renewOn(q, cs, k, m)
		return remoteRenew{ep: ep, err: err}
	}).(remoteRenew)
	return res.ep, res.err
}

type remoteBatch struct {
	res []BatchResult
	ep  uint64
	err error
}

// BatchLookupShard proxies one shard's batch to its engine.
func (r *Remote) BatchLookupShard(p *simtime.Proc, shard int, keys []Key, renew []RenewReq) ([]BatchResult, uint64, error) {
	res := r.call(p, shard, "controller.remote.batch", func(q *simtime.Proc) any {
		out, ep, err := r.s.batchOn(q, shard, keys, renew)
		return remoteBatch{res: out, ep: ep, err: err}
	}).(remoteBatch)
	return res.res, res.ep, res.err
}

type remoteDump struct {
	dump map[Key]Mapping
	ep   uint64
	err  error
}

// FetchShardDump proxies one shard's tenant dump to its engine.
func (r *Remote) FetchShardDump(p *simtime.Proc, shard int, vni uint32) (map[Key]Mapping, uint64, error) {
	res := r.call(p, shard, "controller.remote.dump", func(q *simtime.Proc) any {
		dump, ep, err := r.s.dumpOn(q, shard, vni)
		return remoteDump{dump: dump, ep: ep, err: err}
	}).(remoteDump)
	return res.dump, res.ep, res.err
}

// Suspend proxies the migration freeze announcement.
func (r *Remote) Suspend(p *simtime.Proc, k Key) error {
	cs := r.s.Owner(k)
	res := r.call(p, cs, "controller.remote.suspend", func(q *simtime.Proc) any {
		return remoteRenew{err: r.s.suspendOn(q, cs, k)}
	}).(remoteRenew)
	return res.err
}

// Move proxies the migration commit.
func (r *Remote) Move(p *simtime.Proc, k Key, m Mapping, qpnMap map[uint32]uint32) error {
	cs := r.s.Owner(k)
	res := r.call(p, cs, "controller.remote.move", func(q *simtime.Proc) any {
		return remoteRenew{err: r.s.moveOn(q, cs, k, m, qpnMap)}
	}).(remoteRenew)
	return res.err
}

// mirrorSub is the host-side view of one shard's push channel under
// Remote. Seq advances as notifications are relayed onto the host shard,
// so it equals the last sequence the subscriber has seen and Pending is
// always zero: the lease-round dropped-push audit (which compares the
// controller-side seq against deliveries) degrades to a no-op — gap
// detection still works through Notify.Seq, and the shard-scoped resync
// repairs anything it finds.
type mirrorSub struct {
	seq uint64
	hwm int
}

func (m *mirrorSub) Seq() uint64    { return m.seq }
func (m *mirrorSub) Pending() int   { return 0 }
func (m *mirrorSub) HighWater() int { return m.hwm }

// SubscribeShards subscribes fn to every shard, relaying each notification
// over that shard's exchange onto the host's engine.
func (r *Remote) SubscribeShards(fn func(shard int, n Notify)) []SubView {
	out := make([]SubView, len(r.chans))
	for cs := range r.chans {
		cs := cs
		ch := r.chans[cs]
		ms := &mirrorSub{}
		out[cs] = ms
		ch.to.Send(r.hostEng.Now().Add(r.la), func() {
			r.s.subscribeOn(cs, func(n Notify) {
				ch.from.Send(ch.eng.Now().Add(r.la), func() {
					if n.Seq > ms.seq {
						ms.seq = n.Seq
					}
					fn(cs, n)
				})
			})
		})
	}
	return out
}
