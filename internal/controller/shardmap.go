package controller

import "sort"

// ShardMap assigns every (VNI, vGID) key to one of N controller shards by
// consistent hashing: each shard owns vnodesPerShard points on a 64-bit
// ring, and a key belongs to the shard owning the first point at or after
// the key's hash (wrapping). Consistent hashing keeps the assignment
// deterministic, spreads tenants across shards regardless of VNI locality,
// and — should a deployment ever resize — moves only ~1/N of the keyspace.
//
// The map is immutable after construction, so Owner is safe to call from
// any DES engine shard without synchronization.
type ShardMap struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// vnodesPerShard is the virtual-node count per shard: enough points that
// the keyspace split is within a few percent of even at 8 shards.
const vnodesPerShard = 64

// NewShardMap builds the ring for n shards (n >= 1).
func NewShardMap(n int) *ShardMap {
	if n < 1 {
		n = 1
	}
	sm := &ShardMap{n: n, points: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			// Hash the (shard, vnode) pair the same way keys are hashed so
			// points spread uniformly over the ring.
			h := mix64(fnv1a(fnvOffset, byte(s), byte(s>>8), byte(v), byte(v>>8), 0x9d))
			sm.points = append(sm.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(sm.points, func(i, j int) bool {
		a, b := sm.points[i], sm.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard
	})
	return sm
}

// N returns the shard count.
func (sm *ShardMap) N() int { return sm.n }

// Owner returns the shard owning k.
func (sm *ShardMap) Owner(k Key) int {
	if sm.n == 1 {
		return 0
	}
	h := hashKey(k)
	// First ring point at or after h, wrapping past the top.
	i := sort.Search(len(sm.points), func(i int) bool { return sm.points[i].hash >= h })
	if i == len(sm.points) {
		i = 0
	}
	return sm.points[i].shard
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnv1a(h uint64, bytes ...byte) uint64 {
	for _, b := range bytes {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// mix64 is the murmur3 finalizer. FNV-1a's avalanche is weak in the high
// bits when only trailing input bytes differ — and a tenant's GIDs differ
// exactly there (the IP tail), so raw FNV hashes of one subnet cluster in a
// narrow arc of the ring and pile onto a single shard. The finalizer
// spreads every input bit across the full 64-bit output.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashKey hashes a (VNI, vGID) key onto the ring: FNV-1a over the VNI's
// little-endian bytes followed by the GID, then finalized.
func hashKey(k Key) uint64 {
	h := fnv1a(fnvOffset, byte(k.VNI), byte(k.VNI>>8), byte(k.VNI>>16), byte(k.VNI>>24))
	return mix64(fnv1a(h, k.VGID[:]...))
}
