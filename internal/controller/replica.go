package controller

import (
	"masq/internal/simtime"
)

// replRec is one replication-log record: a table write the primary
// accepted, shipped to the standby in accept order.
type replRec struct {
	seq     uint64
	k       Key
	e       entry
	removed bool
}

// Replica is one shard's standby: a shadow mapping table fed by a
// push-replicated log of the primary's accepted writes. Each record spends
// ReplDelay on the replication channel (plus any chaos-injected lag
// window), so the standby trails the primary by the channel's backlog —
// exactly the writes a failover can lose. Lease expiry is NOT replicated:
// records carry the lease deadline and the replica's table expires lazily,
// like the primary's.
type Replica struct {
	eng   *simtime.Engine
	delay simtime.Duration

	q       *simtime.Queue[replRec]
	table   map[Key]entry
	logSeq  uint64 // records accepted by the primary
	applied uint64 // records folded into the shadow table
	gen     uint64 // truncation generation: fences the in-flight record
	fenced  uint64 // records dropped by truncation (lost writes)

	// Chaos replica-lag window: every record applied before lagUntil pays
	// lagExtra on top of the base delay.
	lagExtra simtime.Duration
	lagUntil simtime.Time
}

// newReplica builds a standby and starts its apply pump on the shard's
// engine.
func newReplica(eng *simtime.Engine, delay simtime.Duration) *Replica {
	r := &Replica{
		eng:   eng,
		delay: delay,
		q:     simtime.NewQueue[replRec](eng),
		table: make(map[Key]entry),
	}
	eng.Spawn("controller.replica", func(p *simtime.Proc) {
		for {
			rec := r.q.Get(p)
			gen := r.gen
			d := r.delay
			if p.Now() < r.lagUntil {
				d += r.lagExtra
			}
			if d > 0 {
				p.Sleep(d)
			}
			if r.gen != gen {
				// A promotion truncated the log while this record was on
				// the channel: it belongs to the deposed primary's epoch
				// and must not contaminate the promoted table.
				r.fenced++
				continue
			}
			if rec.removed {
				delete(r.table, rec.k)
			} else {
				r.table[rec.k] = rec.e
			}
			r.applied = rec.seq
		}
	})
	return r
}

// append logs one accepted primary write (the Controller mutation hook).
func (r *Replica) append(k Key, e entry, removed bool) {
	r.logSeq++
	r.q.Put(replRec{seq: r.logSeq, k: k, e: e, removed: removed})
}

// Lag returns the replication backlog: records accepted by the primary but
// not yet applied on the standby.
func (r *Replica) Lag() int { return int(r.logSeq - r.applied) }

// Fenced returns the number of log records dropped by truncations — writes
// the deposed primary accepted that never survived a failover.
func (r *Replica) Fenced() uint64 { return r.fenced }

// truncate drops every un-applied log record (queued or on the channel)
// and returns how many were queued. It runs at promotion: the replicated
// prefix becomes the new primary's table and the un-applied tail is fenced.
func (r *Replica) truncate() int {
	n := 0
	for {
		if _, ok := r.q.TryGet(); !ok {
			break
		}
		n++
	}
	r.fenced += uint64(n)
	r.gen++ // fences the record (if any) already on the channel
	r.applied = r.logSeq
	return n
}

// snapshot copies the shadow table — the state a promotion adopts.
func (r *Replica) snapshot() map[Key]entry {
	out := make(map[Key]entry, len(r.table))
	for k, e := range r.table {
		out[k] = e
	}
	return out
}

// reset re-images the standby from an authoritative table (a fresh standby
// synced from a just-promoted or just-restarted primary) and discards any
// un-applied log.
func (r *Replica) reset(table map[Key]entry) {
	r.truncate()
	r.table = make(map[Key]entry, len(table))
	for k, e := range table {
		r.table[k] = e
	}
}

// SetLagWindow injects replication lag: until the given instant every
// applied record pays extra on top of the base delay (chaos replica-lag).
func (r *Replica) SetLagWindow(until simtime.Time, extra simtime.Duration) {
	r.lagUntil = until
	r.lagExtra = extra
}
