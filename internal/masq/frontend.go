package masq

import (
	"fmt"

	"masq/internal/mem"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
	"masq/internal/verbs"
	"masq/internal/virtio"
)

// Frontend is MasQ's paravirtual driver inside a VM. It implements
// verbs.Provider: control-path verbs travel the virtio ring to the
// backend; data-path verbs touch the memory-mapped queues directly.
type Frontend struct {
	b    *Backend
	sess *session
	ring *virtio.Ring
}

// Name implements verbs.Provider.
func (f *Frontend) Name() string { return f.b.Mode.String() }

// VBond exposes the device bond (inspection and tests).
func (f *Frontend) VBond() *VBond { return f.sess.vbond }

// call forwards one command and unwraps the response.
func (f *Frontend) call(p *simtime.Proc, cmd any) (any, error) {
	sp := f.b.Rec.Begin(p, trace.LayerMasqFrontend, "forward")
	r := f.ring.Call(p, cmd).(resp)
	sp.End(p)
	return r.v, r.err
}

// Open implements verbs.Provider: both discovery verbs are forwarded
// (Table 1 rows 1–2).
func (f *Frontend) Open(p *simtime.Proc) (verbs.Device, error) {
	if _, err := f.call(p, cmdGetDevList{}); err != nil {
		return nil, err
	}
	if _, err := f.call(p, cmdOpenDev{}); err != nil {
		return nil, err
	}
	return &fdevice{f: f}, nil
}

type fdevice struct {
	f *Frontend
}

type fpd struct{ pd *rnic.PD }

func (x fpd) Handle() uint32 { return x.pd.Num }

// AllocPD mints the host-side PD object. The paper's Table 1 marks
// alloc_pd as pure software ("-"); this implementation does forward it so
// the backend owns a real PD, adding one virtio round trip to a verb the
// application calls once per lifetime.
func (d *fdevice) AllocPD(p *simtime.Proc) (verbs.PD, error) {
	v, err := d.f.call(p, cmdAllocPD{})
	if err != nil {
		return nil, err
	}
	return fpd{v.(*rnic.PD)}, nil
}

type fmr struct {
	d   *fdevice
	mr  *rnic.MR
	va  uint64
	ln  int
	gpa []mem.Extent
}

func (m fmr) LKey() uint32 { return m.mr.LKey }
func (m fmr) RKey() uint32 { return m.mr.RKey }
func (m fmr) Addr() uint64 { return m.va }
func (m fmr) Len() int     { return m.ln }

func (m fmr) Dereg(p *simtime.Proc) error {
	if _, err := m.d.f.call(p, cmdDeregMR{sess: m.d.f.sess, mr: m.mr, gpaExt: m.gpa}); err != nil {
		return err
	}
	return m.d.f.sess.vm.GVA.Unpin(m.va, m.ln)
}

// RegMR pins GVA→GPA in the guest and forwards the command with the
// address mapping; the backend completes the walk to HPA (Fig. 4 step 1).
func (d *fdevice) RegMR(p *simtime.Proc, vpd verbs.PD, va uint64, length int, access verbs.Access) (verbs.MR, error) {
	rpd, ok := vpd.(fpd)
	if !ok {
		return nil, fmt.Errorf("masq: foreign PD handle")
	}
	gpa, err := d.f.sess.vm.GVA.Pin(va, length)
	if err != nil {
		return nil, err
	}
	v, err := d.f.call(p, cmdRegMR{
		sess: d.f.sess, pd: rpd.pd, va: va, length: length, gpaExt: gpa, access: access,
	})
	if err != nil {
		return nil, err
	}
	return fmr{d: d, mr: v.(*rnic.MR), va: va, ln: length, gpa: gpa}, nil
}

type fcq struct {
	d  *fdevice
	cq *rnic.CQ
}

// The CQ ring is memory-mapped into the guest: polling is direct.
func (c fcq) TryPoll(p *simtime.Proc) (verbs.WC, bool) { return c.cq.TryPoll(p) }
func (c fcq) Wait(p *simtime.Proc) verbs.WC            { return c.cq.Wait(p) }
func (c fcq) WaitTimeout(p *simtime.Proc, t simtime.Duration) (verbs.WC, bool) {
	return c.cq.WaitTimeout(p, t)
}
func (c fcq) Destroy(p *simtime.Proc) error {
	_, err := c.d.f.call(p, cmdDestroyCQ{cq: c.cq})
	return err
}

// The mapped CQ ring also supports the callback-style capability
// (verbs.AsyncCQ) without touching the control path.
func (c fcq) OnComplete(fn func(verbs.WC)) { c.cq.OnComplete(fn) }
func (c fcq) TryGet() (verbs.WC, bool)     { return c.cq.TryGet() }
func (c fcq) PollCost() simtime.Duration   { return c.cq.PollCost() }

func (d *fdevice) CreateCQ(p *simtime.Proc, cqe int) (verbs.CQ, error) {
	v, err := d.f.call(p, cmdCreateCQ{sess: d.f.sess, cqe: cqe})
	if err != nil {
		return nil, err
	}
	return fcq{d: d, cq: v.(*rnic.CQ)}, nil
}

type fqp struct {
	d  *fdevice
	qp *rnic.QP
}

func (q fqp) Num() uint32        { return q.qp.Num }
func (q fqp) State() verbs.State { return q.qp.State() }

// Modify forwards through the backend, where RConnrename rewrites the
// destination addressing and RConntrack enforces security rules.
func (q fqp) Modify(p *simtime.Proc, a verbs.Attr) error {
	_, err := q.d.f.call(p, cmdModifyQP{sess: q.d.f.sess, qp: q.qp, attr: a})
	return err
}

// PostSend is the data path: zero-copy, directly to the mapped queues.
// The exception is a UD work request that names a (virtual) destination —
// those are routed through the control path so RConnrename can rewrite
// the address (Sec. 3.3.4).
func (q fqp) PostSend(p *simtime.Proc, wr verbs.SendWR) error {
	if q.qp.Type == rnic.UD && wr.Remote != nil {
		dgid, dqpn := wr.Remote.DGID, wr.Remote.DQPN
		wr.Remote = nil
		_, err := q.d.f.call(p, cmdPostUD{sess: q.d.f.sess, qp: q.qp, wr: wr, dgid: dgid, dqpn: dqpn})
		return err
	}
	return q.qp.PostSend(p, wr)
}

// PostRecv is pure data path.
func (q fqp) PostRecv(p *simtime.Proc, wr verbs.RecvWR) error {
	return q.qp.PostRecv(p, wr)
}

// Callback-style posting (verbs.AsyncQP) covers the zero-copy data path
// only; a UD WR that names a virtual destination must go through the
// control path, which needs a process context.
func (q fqp) PostSendCost() simtime.Duration { return q.qp.PostSendCost() }
func (q fqp) PostSendAsync(wr verbs.SendWR) error {
	if q.qp.Type == rnic.UD && wr.Remote != nil {
		return fmt.Errorf("masq: async post_send cannot route a UD WR through RConnrename")
	}
	return q.qp.PostSendAsync(wr)
}

func (q fqp) Destroy(p *simtime.Proc) error {
	_, err := q.d.f.call(p, cmdDestroyQP{sess: q.d.f.sess, qp: q.qp})
	return err
}

func (d *fdevice) CreateQP(p *simtime.Proc, vpd verbs.PD, send, recv verbs.CQ, typ verbs.QPType, caps verbs.QPCaps) (verbs.QP, error) {
	rpd, ok := vpd.(fpd)
	if !ok {
		return nil, fmt.Errorf("masq: foreign PD handle")
	}
	scq, ok1 := send.(fcq)
	rcq, ok2 := recv.(fcq)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("masq: foreign CQ handle")
	}
	v, err := d.f.call(p, cmdCreateQP{
		sess: d.f.sess, pd: rpd.pd, scq: scq.cq, rcq: rcq.cq, typ: typ, caps: caps,
	})
	if err != nil {
		return nil, err
	}
	return fqp{d: d, qp: v.(*rnic.QP)}, nil
}

type fsrq struct {
	d *fdevice
	s *rnic.SRQ
}

// SRQ posts are pure data path (the queue is memory-mapped like the RQ).
func (x fsrq) PostRecv(p *simtime.Proc, wr verbs.RecvWR) error { return x.s.PostRecv(p, wr) }
func (x fsrq) Len() int                                        { return x.s.Len() }
func (x fsrq) Raw() *rnic.SRQ                                  { return x.s }
func (x fsrq) Destroy(p *simtime.Proc) error {
	_, err := x.d.f.call(p, cmdDestroySRQ{srq: x.s})
	return err
}

// CreateSRQ is a control-path verb: forwarded to the backend.
func (d *fdevice) CreateSRQ(p *simtime.Proc, maxWR int) (verbs.SRQ, error) {
	v, err := d.f.call(p, cmdCreateSRQ{sess: d.f.sess, maxWR: maxWR})
	if err != nil {
		return nil, err
	}
	return fsrq{d: d, s: v.(*rnic.SRQ)}, nil
}

// Async events (verbs.AsyncDevice): the backend injects device events into
// the session's event queue after the interrupt latency; reading them is a
// local dequeue, like ibv_get_async_event on the mapped event channel.
func (d *fdevice) GetAsyncEvent(p *simtime.Proc) verbs.AsyncEvent {
	return d.f.sess.events.Get(p)
}

func (d *fdevice) GetAsyncEventTimeout(p *simtime.Proc, t simtime.Duration) (verbs.AsyncEvent, bool) {
	return d.f.sess.events.GetTimeout(p, t)
}

func (d *fdevice) TryAsyncEvent() (verbs.AsyncEvent, bool) {
	return d.f.sess.events.TryGet()
}

// QueryGID is answered locally by vBond (pure software, not forwarded);
// the host-verb cost still applies in the guest library.
func (d *fdevice) QueryGID(p *simtime.Proc) (packet.GID, error) {
	p.Sleep(d.f.b.Host.Dev.VerbCost(rnic.VerbQueryGID))
	g := d.f.sess.vbond.GID()
	if g.IsZero() {
		return g, fmt.Errorf("masq: virtual interface has no IP; GID not initialized")
	}
	return g, nil
}

func (d *fdevice) Close(p *simtime.Proc) error {
	_, err := d.f.call(p, cmdCloseDev{})
	return err
}
