package masq

import (
	"fmt"
	"sort"

	"masq/internal/rnic"
	"masq/internal/simtime"
)

// Warm QP pools (setup fast path, part b): the expensive half of connection
// setup is the firmware verb chain — create_cq, create_qp, modify_qp(INIT)
// — all serialized through the device's single firmware resource and paying
// the VF control multiplier. The pool pre-creates those resources per
// tenant VNI while the host is idle, so a connection-storm setup shrinks to
// a pooled-handle rebind (host memory) plus the RTR/RTS transitions that
// genuinely depend on the peer. Refill runs as a background DES process
// gated on pool idleness, keeping the firmware free for foreground verbs
// mid-storm; pooled resources are flushed on VM crash and controller-epoch
// bump (pool.go stages state ahead of demand, so staged state must die with
// the world it was staged for).

// poolCQCap is the capacity of pooled CQs; take requests above it fall back
// to a real create_cq.
const poolCQCap = 256

// qpPool holds the warm resources of one tenant VNI.
type qpPool struct {
	vni    uint32
	fn     *rnic.Func
	target int

	pd   *rnic.PD // pool-owned PD the staged QPs are created under
	hold *rnic.CQ // parking CQ pooled QPs point at until rebound

	freeQP []*rnic.QP
	freeCQ []*rnic.CQ

	kick     *simtime.Queue[struct{}] // take/flush notifications to the refiller
	lastTake simtime.Time
	tookAny  bool
}

// takeCQ pops a pooled CQ if one fits the requested capacity.
func (pool *qpPool) takeCQ(cqe int) *rnic.CQ {
	if cqe > poolCQCap || len(pool.freeCQ) == 0 {
		return nil
	}
	n := len(pool.freeCQ) - 1
	cq := pool.freeCQ[n]
	pool.freeCQ[n] = nil
	pool.freeCQ = pool.freeCQ[:n]
	return cq
}

// takeQP pops a pooled QP (already in INIT on the tenant's function).
func (pool *qpPool) takeQP() *rnic.QP {
	if len(pool.freeQP) == 0 {
		return nil
	}
	n := len(pool.freeQP) - 1
	qp := pool.freeQP[n]
	pool.freeQP[n] = nil
	pool.freeQP = pool.freeQP[:n]
	return qp
}

// noteTake stamps a pooled take (arming the refiller's idle gate) and wakes
// the refiller.
func (pool *qpPool) noteTake(now simtime.Time) {
	pool.lastTake = now
	pool.tookAny = true
	pool.kick.Put(struct{}{})
}

// ensurePool creates (once) the warm pool for a VNI and starts its refill
// process.
func (b *Backend) ensurePool(vni uint32, fn *rnic.Func) *qpPool {
	if pool, ok := b.pools[vni]; ok {
		return pool
	}
	pool := &qpPool{
		vni:    vni,
		fn:     fn,
		target: b.P.QPPoolSize,
		kick:   simtime.NewQueue[struct{}](b.Host.Eng),
	}
	b.pools[vni] = pool
	b.Host.Eng.Spawn(fmt.Sprintf("masq.pool-refill:%d", vni), func(p *simtime.Proc) {
		b.refillPool(p, pool)
	})
	return pool
}

// refillPool is the pool's background process: top up staged CQs and QPs to
// the target, park while full, and hold off while takes are landing so the
// firmware stays free for the foreground storm.
func (b *Backend) refillPool(p *simtime.Proc, pool *qpPool) {
	dev := b.Host.Dev
	pool.pd = dev.AllocPD(p, pool.fn)
	pool.hold = dev.CreateCQ(p, pool.fn, poolCQCap)
	for {
		for {
			if _, ok := pool.kick.TryGet(); !ok {
				break
			}
		}
		needCQ := pool.target - len(pool.freeCQ)
		needQP := pool.target - len(pool.freeQP)
		if needCQ <= 0 && needQP <= 0 {
			pool.kick.Get(p) // full: park until a take or flush
			continue
		}
		if pool.tookAny {
			if idle := p.Now().Sub(pool.lastTake); idle < b.P.PoolRefillIdle {
				// A take landed recently — the host is mid-storm. Creating
				// now would serialize the storm's RTR/RTS verbs behind our
				// create_qp on the firmware; back off until the pool has
				// been quiet for the idle window.
				p.Sleep(b.P.PoolRefillIdle - idle)
				continue
			}
		}
		if needCQ >= needQP {
			cq := dev.CreateCQ(p, pool.fn, poolCQCap)
			pool.freeCQ = append(pool.freeCQ, cq)
		} else {
			qp := dev.CreateQP(p, pool.fn, pool.pd, pool.hold, pool.hold, rnic.RC, rnic.DefaultCaps())
			if err := dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateInit}); err != nil {
				dev.DestroyQP(p, qp)
				return
			}
			pool.freeQP = append(pool.freeQP, qp)
		}
		b.Stats.PoolRefills++
	}
}

// flushPool destroys every staged resource in the pool and wakes the
// refiller to rebuild. Handed-out resources are untouched — they belong to
// their sessions now.
func (b *Backend) flushPool(p *simtime.Proc, pool *qpPool) {
	dev := b.Host.Dev
	n := len(pool.freeQP) + len(pool.freeCQ)
	if n == 0 {
		return
	}
	for _, qp := range pool.freeQP {
		dev.DestroyQP(p, qp)
	}
	pool.freeQP = nil
	for _, cq := range pool.freeCQ {
		dev.DestroyCQ(p, pool.fn, cq)
	}
	pool.freeCQ = nil
	b.Stats.PoolFlushes += uint64(n)
	pool.kick.Put(struct{}{})
}

// spawnPoolFlush flushes every pool from a fresh process (epoch bumps are
// observed outside proc context), in VNI order for determinism.
func (b *Backend) spawnPoolFlush() {
	if len(b.pools) == 0 {
		return
	}
	vnis := make([]uint32, 0, len(b.pools))
	for vni := range b.pools {
		vnis = append(vnis, vni)
	}
	sort.Slice(vnis, func(i, j int) bool { return vnis[i] < vnis[j] })
	b.Host.Eng.Spawn("masq.pool-flush", func(p *simtime.Proc) {
		for _, vni := range vnis {
			b.flushPool(p, b.pools[vni])
		}
	})
}
