package masq

import (
	"bytes"
	"fmt"
	"sort"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// ConnID is an RCT table key: (vni, src_vip, dst_vip, qpn), exactly the
// tuple of Fig. 3.
type ConnID struct {
	VNI    uint32
	SrcVIP packet.IP
	DstVIP packet.IP
	QPN    uint32
}

func (id ConnID) String() string {
	return fmt.Sprintf("<VNI %d: %v -> %v, QP %d>", id.VNI, id.SrcVIP, id.DstVIP, id.QPN)
}

// trackedConn is one RCT table entry.
type trackedConn struct {
	id ConnID
	qp *rnic.QP
}

// vipPair is the (SrcVIP, DstVIP) endpoint pair of an RCT entry — the key
// of the per-VNI footprint index incremental enforcement scans.
type vipPair struct {
	src, dst packet.IP
}

// verdict is one cached policy decision, valid while the tenant's combined
// rule version is unchanged.
type verdict struct {
	version uint64
	allow   bool
}

// enforceJob is one queued rule-change enforcement: the tenant whose
// policy changed and the change's footprint.
type enforceJob struct {
	t  *overlay.Tenant
	ch overlay.RuleChange
}

// RConntrack performs connection tracking for RDMA flows (Sec. 3.3.2).
// One instance runs per backend (per host). It enforces three properties:
// a connection cannot be established unless a rule allows it; every data
// packet belongs to an established connection (guaranteed by the RNIC's
// RC semantics once establishment is gated); and when rules change,
// connections that are no longer allowed are disconnected by moving their
// QPs to ERROR.
//
// Two structures keep that sub-linear in table and rule count: a verdict
// cache (ConnID → decision at a rule version) short-circuits repeat
// valid_conn calls on an unchanged policy, and a per-VNI (SrcVIP, DstVIP)
// index lets enforcement scan only the entries inside a changed rule's
// CIDR footprint instead of the whole table.
type RConntrack struct {
	Stats struct {
		Validated, Denied, Inserted, Deleted, Resets uint64

		// Rule-engine observability (masqctl's stats table).
		VerdictHits   uint64 // valid_conn answered from the verdict cache
		VerdictMisses uint64 // valid_conn that evaluated the rule chains
		IncrScans     uint64 // enforcements scanning only the change footprint
		FullScans     uint64 // enforcements scanning the whole VNI (bulk/linear)
		SkippedScans  uint64 // enforcements skipped: change cannot revoke
		Revalidated   uint64 // RCT entries re-evaluated by enforcement
	}

	p        Params
	dev      *rnic.Device
	rec      *trace.Recorder
	table    map[ConnID]*trackedConn
	byQPN    map[uint32]map[ConnID]struct{}                 // QPN → table keys (O(1) delete_conn)
	byPair   map[uint32]map[vipPair]map[ConnID]*trackedConn // VNI → endpoints → entries
	verdicts map[ConnID]verdict
	tenant   map[uint32]*overlay.Tenant // tenants this host has seen

	// enforceQ serializes rule-change enforcement: every policy update is
	// queued here and drained by one process, so a later change can never
	// race an earlier scan.
	enforceQ *simtime.Queue[enforceJob]
}

// NewRConntrack returns an empty tracker bound to the host's device.
func NewRConntrack(p Params, dev *rnic.Device) *RConntrack {
	return &RConntrack{
		p:        p,
		dev:      dev,
		table:    make(map[ConnID]*trackedConn),
		byQPN:    make(map[uint32]map[ConnID]struct{}),
		byPair:   make(map[uint32]map[vipPair]map[ConnID]*trackedConn),
		verdicts: make(map[ConnID]verdict),
		tenant:   make(map[uint32]*overlay.Tenant),
	}
}

// Watch subscribes the tracker to a tenant's security stack (security
// group and, if present, FWaaS) so rule updates trigger re-validation of
// established connections.
func (ct *RConntrack) Watch(t *overlay.Tenant) {
	if ct.tenant[t.VNI] != nil {
		return
	}
	ct.tenant[t.VNI] = t
	t.SubscribeRules(func(ch overlay.RuleChange) { ct.rulesChanged(t, ch) })
}

// Validate is valid_conn(): called while handling modify_qp(RTR), it
// checks the request against the tenant's security rules. Denied requests
// never reach RConnrename, so the QPC is never configured.
//
// The cost charged scales with the rule-evaluation work actually done:
// ValidConnCost covers the call plus the first rule evaluation; each
// further unit (chain entries scanned, or index buckets probed) adds
// RuleEvalCost. A verdict-cache hit — same connection, unchanged policy —
// pays only VerdictCacheCost.
func (ct *RConntrack) Validate(p *simtime.Proc, id ConnID) error {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "valid_conn")
	defer sp.End(p)
	ct.Stats.Validated++
	t := ct.tenant[id.VNI]
	if t == nil {
		p.Sleep(ct.p.ValidConnCost)
		ct.Stats.Denied++
		return fmt.Errorf("masq: connection %v denied by security rules", id)
	}
	ver := t.RuleVersion()
	if v, ok := ct.verdicts[id]; ok && v.version == ver {
		ct.Stats.VerdictHits++
		p.Sleep(ct.p.VerdictCacheCost)
		if !v.allow {
			ct.Stats.Denied++
			return fmt.Errorf("masq: connection %v denied by security rules", id)
		}
		return nil
	}
	ct.Stats.VerdictMisses++
	allow, units := t.AllowsCost(overlay.ProtoRDMA, id.SrcVIP, id.DstVIP)
	p.Sleep(ct.p.ValidConnCost + simtime.Duration(extraUnits(units))*ct.p.RuleEvalCost)
	ct.verdicts[id] = verdict{version: ver, allow: allow}
	if !allow {
		ct.Stats.Denied++
		return fmt.Errorf("masq: connection %v denied by security rules", id)
	}
	return nil
}

// extraUnits converts a rule-evaluation unit count into billable extra
// units: the first unit is included in the base operation cost, so the
// canonical single-allow-all chain costs exactly what it always has.
func extraUnits(units int) int {
	if units <= 1 {
		return 0
	}
	return units - 1
}

// Insert is insert_conn(): record an established connection in the RCT
// table.
func (ct *RConntrack) Insert(p *simtime.Proc, id ConnID, qp *rnic.QP) {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "insert_conn")
	defer sp.End(p)
	p.Sleep(ct.p.InsertConnCost)
	ct.Stats.Inserted++
	c := &trackedConn{id: id, qp: qp}
	ct.table[id] = c
	set := ct.byQPN[id.QPN]
	if set == nil {
		set = make(map[ConnID]struct{})
		ct.byQPN[id.QPN] = set
	}
	set[id] = struct{}{}
	pairs := ct.byPair[id.VNI]
	if pairs == nil {
		pairs = make(map[vipPair]map[ConnID]*trackedConn)
		ct.byPair[id.VNI] = pairs
	}
	pp := vipPair{id.SrcVIP, id.DstVIP}
	entries := pairs[pp]
	if entries == nil {
		entries = make(map[ConnID]*trackedConn)
		pairs[pp] = entries
	}
	entries[id] = c
}

// remove drops one entry from the table and every index.
func (ct *RConntrack) remove(id ConnID) {
	if _, ok := ct.table[id]; !ok {
		return
	}
	delete(ct.table, id)
	delete(ct.verdicts, id)
	ct.Stats.Deleted++
	if set := ct.byQPN[id.QPN]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ct.byQPN, id.QPN)
		}
	}
	if pairs := ct.byPair[id.VNI]; pairs != nil {
		pp := vipPair{id.SrcVIP, id.DstVIP}
		if entries := pairs[pp]; entries != nil {
			delete(entries, id)
			if len(entries) == 0 {
				delete(pairs, pp)
			}
		}
		if len(pairs) == 0 {
			delete(ct.byPair, id.VNI)
		}
	}
}

// Delete is delete_conn(): called from destroy_qp. The QPN index makes it
// O(entries for this QPN), and every entry the QPN owns is removed — a QP
// reconnected to several peers over its lifetime leaves no residue.
func (ct *RConntrack) Delete(p *simtime.Proc, qpn uint32) {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "delete_conn")
	defer sp.End(p)
	p.Sleep(ct.p.DeleteConnCost)
	for id := range ct.byQPN[qpn] {
		ct.remove(id)
	}
}

// Conns returns a snapshot of the RCT table (masqctl inspection).
func (ct *RConntrack) Conns() []ConnID {
	out := make([]ConnID, 0, len(ct.table))
	for id := range ct.table {
		out = append(out, id)
	}
	return out
}

// Has reports whether id is currently tracked.
func (ct *RConntrack) Has(id ConnID) bool {
	_, ok := ct.table[id]
	return ok
}

// ResetConn forcibly disconnects one tracked connection: its QP is moved
// to ERROR and the entry removed. It reports whether an entry existed.
// RConnrename uses it to kill grace-mode connections whose mapping turns
// out to have changed once the controller returns.
func (ct *RConntrack) ResetConn(p *simtime.Proc, id ConnID) bool {
	c, ok := ct.table[id]
	if !ok {
		return false
	}
	if c.qp.State() != rnic.StateError {
		sp := ct.rec.Begin(p, trace.LayerRConntrack, "reset_conn")
		if err := ct.dev.ModifyQP(p, c.qp, rnic.Attr{ToState: rnic.StateError}); err == nil {
			ct.Stats.Resets++
		}
		sp.End(p)
	}
	ct.remove(id)
	return true
}

// rulesChanged runs on every policy update. Enforcement is serialized
// through one per-tracker queue drained by a single process: concurrent
// updates used to each spawn their own enforcement process, whose
// snapshots and resets could interleave; now updates are applied strictly
// in arrival order, and each scan sees the policy as it stands when the
// chain update lands — a later rule change can never race an earlier scan.
func (ct *RConntrack) rulesChanged(t *overlay.Tenant, ch overlay.RuleChange) {
	if ct.enforceQ == nil {
		ct.enforceQ = simtime.NewQueue[enforceJob](ct.dev.Engine())
		ct.dev.Engine().Spawn("rconntrack.enforce", func(p *simtime.Proc) {
			for {
				ct.enforce(p, ct.enforceQ.Get(p))
			}
		})
	}
	ct.enforceQ.Put(enforceJob{t: t, ch: ch})
}

// revocable reports whether a rule change can possibly flip an
// established (allowed) connection to denied. First-match chains are
// monotone here: adding an Allow rule or removing a Deny rule can only
// widen what is allowed, and a TCP-only rule never matches an RDMA
// connection — such changes need no RCT scan at all.
func revocable(ch overlay.RuleChange) bool {
	if ch.Full {
		return true
	}
	if ch.Rule.Proto == overlay.ProtoTCP {
		return false
	}
	if ch.Added {
		return ch.Rule.Action == overlay.Deny
	}
	return ch.Rule.Action == overlay.Allow
}

// enforce applies one queued rule-chain update: pay the maintenance cost,
// then re-validate the RCT entries the change can affect against the
// policy's CURRENT state and reset every connection it no longer allows.
// Scanning at enforcement time (not at notification time) means a revoke
// that was re-allowed before its update reached the chain resets nothing.
//
// The scan is incremental by default: a change that cannot revoke is
// skipped outright, and otherwise only entries whose (SrcVIP, DstVIP)
// fall inside the changed rule's CIDR footprint are re-validated, found
// through the byPair index. A bulk change (no single-rule footprint) or
// Params.LinearEnforce falls back to the legacy whole-VNI scan. Cost is
// charged per entry actually re-validated, scaling with the policy
// engine's work units — walking the pair index itself is free at this
// granularity.
func (ct *RConntrack) enforce(p *simtime.Proc, job enforceJob) {
	p.Sleep(ct.p.InsertRuleCost) // insert_rule(): update the local chain
	t, ch := job.t, job.ch

	var cands []*trackedConn
	switch {
	case ct.p.LinearEnforce || ch.Full:
		ct.Stats.FullScans++
		for _, c := range ct.table {
			if c.id.VNI == t.VNI {
				cands = append(cands, c)
			}
		}
	case !revocable(ch):
		ct.Stats.SkippedScans++
		return
	default:
		ct.Stats.IncrScans++
		for pair, entries := range ct.byPair[t.VNI] {
			if ch.Rule.Src.Contains(pair.src) && ch.Rule.Dst.Contains(pair.dst) {
				for _, c := range entries {
					cands = append(cands, c)
				}
			}
		}
	}
	// Map iteration order must not leak into the simulation: re-validate in
	// a deterministic order.
	sort.Slice(cands, func(a, b int) bool { return connLess(cands[a].id, cands[b].id) })
	for _, c := range cands {
		// Re-check table membership: the QP may have been destroyed (and
		// its entry deleted) while earlier work was paying its cost, in
		// which case the stale *rnic.QP must not be touched.
		if cur, ok := ct.table[c.id]; !ok || cur != c {
			continue
		}
		allow, units := t.AllowsCost(overlay.ProtoRDMA, c.id.SrcVIP, c.id.DstVIP)
		p.Sleep(ct.p.EnforceScanCost + simtime.Duration(extraUnits(units))*ct.p.RuleEvalCost)
		ct.Stats.Revalidated++
		if allow {
			continue
		}
		if c.qp.State() == rnic.StateError {
			ct.remove(c.id)
			continue
		}
		// reset_conn(): the dominant cost is the RNIC's modify_qp(ERR)
		// (Fig. 18); it flushes outstanding work and stops the flow.
		sp := ct.rec.Begin(p, trace.LayerRConntrack, "reset_conn")
		if err := ct.dev.ModifyQP(p, c.qp, rnic.Attr{ToState: rnic.StateError}); err == nil {
			ct.Stats.Resets++
		}
		sp.End(p)
		ct.remove(c.id)
	}
}

// connLess is a total order over ConnIDs (deterministic victim scans).
// Addresses compare as raw bytes — no per-comparison String allocations.
func connLess(a, b ConnID) bool {
	if a.VNI != b.VNI {
		return a.VNI < b.VNI
	}
	if a.QPN != b.QPN {
		return a.QPN < b.QPN
	}
	if c := bytes.Compare(a.SrcVIP[:], b.SrcVIP[:]); c != 0 {
		return c < 0
	}
	return bytes.Compare(a.DstVIP[:], b.DstVIP[:]) < 0
}
