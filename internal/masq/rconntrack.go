package masq

import (
	"fmt"
	"sort"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// ConnID is an RCT table key: (vni, src_vip, dst_vip, qpn), exactly the
// tuple of Fig. 3.
type ConnID struct {
	VNI    uint32
	SrcVIP packet.IP
	DstVIP packet.IP
	QPN    uint32
}

func (id ConnID) String() string {
	return fmt.Sprintf("<VNI %d: %v -> %v, QP %d>", id.VNI, id.SrcVIP, id.DstVIP, id.QPN)
}

// trackedConn is one RCT table entry.
type trackedConn struct {
	id ConnID
	qp *rnic.QP
}

// RConntrack performs connection tracking for RDMA flows (Sec. 3.3.2).
// One instance runs per backend (per host). It enforces three properties:
// a connection cannot be established unless a rule allows it; every data
// packet belongs to an established connection (guaranteed by the RNIC's
// RC semantics once establishment is gated); and when rules change,
// connections that are no longer allowed are disconnected by moving their
// QPs to ERROR.
type RConntrack struct {
	Stats struct {
		Validated, Denied, Inserted, Deleted, Resets uint64
	}

	p      Params
	dev    *rnic.Device
	rec    *trace.Recorder
	table  map[ConnID]*trackedConn
	byQPN  map[uint32]map[ConnID]struct{} // QPN → table keys (O(1) delete_conn)
	tenant map[uint32]*overlay.Tenant     // tenants this host has seen

	// enforceQ serializes rule-change enforcement: every policy update is
	// queued here and drained by one process, so a later change can never
	// race an earlier scan.
	enforceQ *simtime.Queue[*overlay.Tenant]
}

// NewRConntrack returns an empty tracker bound to the host's device.
func NewRConntrack(p Params, dev *rnic.Device) *RConntrack {
	return &RConntrack{
		p:      p,
		dev:    dev,
		table:  make(map[ConnID]*trackedConn),
		byQPN:  make(map[uint32]map[ConnID]struct{}),
		tenant: make(map[uint32]*overlay.Tenant),
	}
}

// Watch subscribes the tracker to a tenant's security stack (security
// group and, if present, FWaaS) so rule updates trigger re-validation of
// established connections.
func (ct *RConntrack) Watch(t *overlay.Tenant) {
	if ct.tenant[t.VNI] != nil {
		return
	}
	ct.tenant[t.VNI] = t
	t.Subscribe(func() { ct.rulesChanged(t) })
}

// Validate is valid_conn(): called while handling modify_qp(RTR), it
// checks the request against the tenant's security rules. Denied requests
// never reach RConnrename, so the QPC is never configured.
func (ct *RConntrack) Validate(p *simtime.Proc, id ConnID) error {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "valid_conn")
	defer sp.End(p)
	p.Sleep(ct.p.ValidConnCost)
	ct.Stats.Validated++
	t := ct.tenant[id.VNI]
	if t == nil || !t.Allows(overlay.ProtoRDMA, id.SrcVIP, id.DstVIP) {
		ct.Stats.Denied++
		return fmt.Errorf("masq: connection %v denied by security rules", id)
	}
	return nil
}

// Insert is insert_conn(): record an established connection in the RCT
// table.
func (ct *RConntrack) Insert(p *simtime.Proc, id ConnID, qp *rnic.QP) {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "insert_conn")
	defer sp.End(p)
	p.Sleep(ct.p.InsertConnCost)
	ct.Stats.Inserted++
	ct.table[id] = &trackedConn{id: id, qp: qp}
	set := ct.byQPN[id.QPN]
	if set == nil {
		set = make(map[ConnID]struct{})
		ct.byQPN[id.QPN] = set
	}
	set[id] = struct{}{}
}

// remove drops one entry from the table and the QPN index.
func (ct *RConntrack) remove(id ConnID) {
	if _, ok := ct.table[id]; !ok {
		return
	}
	delete(ct.table, id)
	ct.Stats.Deleted++
	if set := ct.byQPN[id.QPN]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ct.byQPN, id.QPN)
		}
	}
}

// Delete is delete_conn(): called from destroy_qp. The QPN index makes it
// O(entries for this QPN), and every entry the QPN owns is removed — a QP
// reconnected to several peers over its lifetime leaves no residue.
func (ct *RConntrack) Delete(p *simtime.Proc, qpn uint32) {
	sp := ct.rec.Begin(p, trace.LayerRConntrack, "delete_conn")
	defer sp.End(p)
	p.Sleep(ct.p.DeleteConnCost)
	for id := range ct.byQPN[qpn] {
		ct.remove(id)
	}
}

// Conns returns a snapshot of the RCT table (masqctl inspection).
func (ct *RConntrack) Conns() []ConnID {
	out := make([]ConnID, 0, len(ct.table))
	for id := range ct.table {
		out = append(out, id)
	}
	return out
}

// Has reports whether id is currently tracked.
func (ct *RConntrack) Has(id ConnID) bool {
	_, ok := ct.table[id]
	return ok
}

// ResetConn forcibly disconnects one tracked connection: its QP is moved
// to ERROR and the entry removed. It reports whether an entry existed.
// RConnrename uses it to kill grace-mode connections whose mapping turns
// out to have changed once the controller returns.
func (ct *RConntrack) ResetConn(p *simtime.Proc, id ConnID) bool {
	c, ok := ct.table[id]
	if !ok {
		return false
	}
	if c.qp.State() != rnic.StateError {
		sp := ct.rec.Begin(p, trace.LayerRConntrack, "reset_conn")
		if err := ct.dev.ModifyQP(p, c.qp, rnic.Attr{ToState: rnic.StateError}); err == nil {
			ct.Stats.Resets++
		}
		sp.End(p)
	}
	ct.remove(id)
	return true
}

// rulesChanged runs on every policy update. Enforcement is serialized
// through one per-tracker queue drained by a single process: concurrent
// updates used to each spawn their own enforcement process, whose
// snapshots and resets could interleave; now updates are applied strictly
// in arrival order, and each scan sees the policy as it stands when the
// chain update lands — a later rule change can never race an earlier scan.
func (ct *RConntrack) rulesChanged(t *overlay.Tenant) {
	if ct.enforceQ == nil {
		ct.enforceQ = simtime.NewQueue[*overlay.Tenant](ct.dev.Engine())
		ct.dev.Engine().Spawn("rconntrack.enforce", func(p *simtime.Proc) {
			for {
				ct.enforce(p, ct.enforceQ.Get(p))
			}
		})
	}
	ct.enforceQ.Put(t)
}

// enforce applies one queued rule-chain update: pay the maintenance cost,
// then scan the RCT table against the policy's CURRENT state and reset
// every connection it no longer allows. Scanning at enforcement time (not
// at notification time) means a revoke that was re-allowed before its
// update reached the chain resets nothing.
func (ct *RConntrack) enforce(p *simtime.Proc, t *overlay.Tenant) {
	p.Sleep(ct.p.InsertRuleCost) // insert_rule(): update the local chain
	var victims []*trackedConn
	for _, c := range ct.table {
		if c.id.VNI != t.VNI {
			continue
		}
		if !t.Allows(overlay.ProtoRDMA, c.id.SrcVIP, c.id.DstVIP) {
			victims = append(victims, c)
		}
	}
	// Map iteration order must not leak into the simulation: reset in a
	// deterministic order.
	sort.Slice(victims, func(a, b int) bool { return connLess(victims[a].id, victims[b].id) })
	for _, c := range victims {
		// Re-check table membership: the QP may have been destroyed (and
		// its entry deleted) while earlier resets were paying their cost,
		// in which case the stale *rnic.QP must not be touched.
		if cur, ok := ct.table[c.id]; !ok || cur != c {
			continue
		}
		if c.qp.State() == rnic.StateError {
			ct.remove(c.id)
			continue
		}
		// reset_conn(): the dominant cost is the RNIC's modify_qp(ERR)
		// (Fig. 18); it flushes outstanding work and stops the flow.
		sp := ct.rec.Begin(p, trace.LayerRConntrack, "reset_conn")
		if err := ct.dev.ModifyQP(p, c.qp, rnic.Attr{ToState: rnic.StateError}); err == nil {
			ct.Stats.Resets++
		}
		sp.End(p)
		ct.remove(c.id)
	}
}

// connLess is a total order over ConnIDs (deterministic victim scans).
func connLess(a, b ConnID) bool {
	if a.VNI != b.VNI {
		return a.VNI < b.VNI
	}
	if a.QPN != b.QPN {
		return a.QPN < b.QPN
	}
	if a.SrcVIP != b.SrcVIP {
		return a.SrcVIP.String() < b.SrcVIP.String()
	}
	return a.DstVIP.String() < b.DstVIP.String()
}
