package masq

import (
	"testing"

	"masq/internal/rnic"
	"masq/internal/simtime"
)

// TestWireInfoLifecycle covers the Sec. 5 wire-diagnosis mapping: a live
// QP's number resolves to its tenant (VNI, virtual IP); an unknown QPN
// misses; and destroy_qp evicts the entry.
func TestWireInfoLifecycle(t *testing.T) {
	b, fe := frontendBed(t)
	var qpn uint32
	destroyed := simtime.NewEvent[struct{}](b.eng)
	b.eng.Spawn("wireinfo", func(p *simtime.Proc) {
		dev, err := fe.Open(p)
		if err != nil {
			t.Error(err)
			return
		}
		pd, err := dev.AllocPD(p)
		if err != nil {
			t.Error(err)
			return
		}
		cq, err := dev.CreateCQ(p, 32)
		if err != nil {
			t.Error(err)
			return
		}
		qp, err := dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 8, MaxRecvWR: 8})
		if err != nil {
			t.Error(err)
			return
		}
		qpn = qp.Num()

		// Hit: the live QP maps back to its overlay identity.
		vni, vip, ok := b.be.WireInfo(qpn)
		if !ok {
			t.Errorf("WireInfo(%d) missed for a live QP", qpn)
		}
		if vni != 100 {
			t.Errorf("WireInfo vni = %d, want 100", vni)
		}
		if vip != fe.sess.vbond.VIP() {
			t.Errorf("WireInfo vip = %v, want %v", vip, fe.sess.vbond.VIP())
		}

		// Miss: a QPN this host never issued.
		if _, _, ok := b.be.WireInfo(qpn + 1000); ok {
			t.Errorf("WireInfo(%d) hit for an unknown QPN", qpn+1000)
		}

		if err := qp.Destroy(p); err != nil {
			t.Error(err)
			return
		}
		destroyed.Trigger(struct{}{})
	})
	b.eng.Run()
	if !destroyed.Triggered() {
		t.Fatal("lifecycle did not finish")
	}
	// Eviction: after destroy_qp the diagnosis table forgets the QPN.
	if _, _, ok := b.be.WireInfo(qpn); ok {
		t.Errorf("WireInfo(%d) still resolves after destroy_qp", qpn)
	}
}
