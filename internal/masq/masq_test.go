package masq

import (
	"errors"
	"strings"
	"testing"

	"masq/internal/controller"
	"masq/internal/hyper"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// bed is a single-host fixture exercising the backend machinery directly.
type bed struct {
	eng  *simtime.Engine
	fab  *overlay.Fabric
	ctrl *controller.Controller
	host *hyper.Host
	be   *Backend
}

func newBed(t *testing.T, mode Mode) *bed {
	t.Helper()
	eng := simtime.NewEngine()
	fab := overlay.NewFabric(eng, overlay.DefaultParams())
	fab.AddTenant(100, "acme")
	ctrl := controller.New(eng, controller.DefaultParams())
	host := hyper.NewHost(eng, hyper.HostConfig{
		Name: "h0", IP: packet.NewIP(172, 16, 0, 1), MAC: packet.MAC{2, 0, 0, 0, 0, 1},
		MemBytes: 32 << 30, RNIC: rnic.DefaultParams(), Hyper: hyper.DefaultParams(),
		Fabric:      fab,
		ResolveHost: func(packet.IP) (packet.MAC, bool) { return packet.MAC{}, false },
	})
	return &bed{eng: eng, fab: fab, ctrl: ctrl, host: host, be: NewBackend(host, ctrl, fab, DefaultParams(), mode)}
}

func (b *bed) allowAll(t *testing.T, vni uint32) {
	t.Helper()
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	b.fab.Tenant(vni).Policy.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
}

func TestVBondRegistersOnCreation(t *testing.T) {
	b := newBed(t, ModeVF)
	vm, err := b.host.NewVM("vm0", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	vb := NewVBond(100, vm.VNIC, b.ctrl, b.be.physIdentity())
	if ip, _ := vb.GID().IP(); ip != packet.NewIP(192, 168, 1, 1) {
		t.Fatalf("vGID embeds %v", ip)
	}
	var m controller.Mapping
	var ok bool
	b.eng.Spawn("q", func(p *simtime.Proc) {
		m, ok = b.ctrl.Query(p, controller.Key{VNI: 100, VGID: vb.GID()})
	})
	b.eng.Run()
	if !ok || m.PIP != b.host.IP {
		t.Fatalf("controller mapping = %+v, %v", m, ok)
	}
}

func TestVBondTracksIPChange(t *testing.T) {
	b := newBed(t, ModeVF)
	vm, _ := b.host.NewVM("vm0", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	vb := NewVBond(100, vm.VNIC, b.ctrl, b.be.physIdentity())
	oldGID := vb.GID()
	if err := vm.VNIC.SetIP(packet.NewIP(192, 168, 1, 42)); err != nil {
		t.Fatal(err)
	}
	if vb.GID() == oldGID {
		t.Fatal("vGID did not follow the IP change")
	}
	var oldOK, newOK bool
	b.eng.Spawn("q", func(p *simtime.Proc) {
		_, oldOK = b.ctrl.Query(p, controller.Key{VNI: 100, VGID: oldGID})
		_, newOK = b.ctrl.Query(p, controller.Key{VNI: 100, VGID: vb.GID()})
	})
	b.eng.Run()
	if oldOK {
		t.Error("stale vGID mapping lingers in the controller")
	}
	if !newOK {
		t.Error("new vGID not registered")
	}
}

func TestResolveGIDCachesAfterFirstQuery(t *testing.T) {
	b := newBed(t, ModeVF)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	b.ctrl.Register(controller.Key{VNI: 100, VGID: vgid}, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	var first, second simtime.Duration
	b.eng.Spawn("r", func(p *simtime.Proc) {
		s := p.Now()
		if _, _, err := b.be.resolveGID(p, 100, vgid); err != nil {
			t.Error(err)
		}
		first = p.Now().Sub(s)
		s = p.Now()
		if _, _, err := b.be.resolveGID(p, 100, vgid); err != nil {
			t.Error(err)
		}
		second = p.Now().Sub(s)
	})
	b.eng.Run()
	// Miss pays cache lookup + controller RTT; hit only the lookup.
	if first != simtime.Us(102) {
		t.Errorf("first resolve = %v, want 102µs", first)
	}
	if second != simtime.Us(2) {
		t.Errorf("cached resolve = %v, want 2µs", second)
	}
	if b.be.Stats.CacheMisses != 1 || b.be.Stats.CacheHits != 1 {
		t.Errorf("stats = %+v", b.be.Stats)
	}
}

func TestPushDownAvoidsFirstMiss(t *testing.T) {
	b := newBed(t, ModeVF)
	b.be.P.PushDown = true
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	// Registration AFTER backend creation: push-down delivers it.
	b.ctrl.Register(controller.Key{VNI: 100, VGID: vgid}, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	var dur simtime.Duration
	b.eng.Spawn("r", func(p *simtime.Proc) {
		s := p.Now()
		if _, _, err := b.be.resolveGID(p, 100, vgid); err != nil {
			t.Error(err)
		}
		dur = p.Now().Sub(s)
	})
	b.eng.Run()
	if dur != simtime.Us(2) {
		t.Fatalf("push-down resolve = %v, want 2µs (no controller round trip)", dur)
	}
	if b.be.Stats.CacheMisses != 0 {
		t.Fatalf("misses = %d", b.be.Stats.CacheMisses)
	}
}

func TestCacheInvalidatedOnUnregister(t *testing.T) {
	b := newBed(t, ModeVF)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	k := controller.Key{VNI: 100, VGID: vgid}
	b.ctrl.Register(k, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	var err2 error
	b.eng.Spawn("r", func(p *simtime.Proc) {
		if _, _, err := b.be.resolveGID(p, 100, vgid); err != nil {
			t.Error(err)
			return
		}
		b.ctrl.Unregister(k) // e.g. VM destroyed
		_, _, err2 = b.be.resolveGID(p, 100, vgid)
	})
	b.eng.Run()
	if err2 == nil {
		t.Fatal("stale cache entry served after unregister")
	}
}

func TestCacheRefreshedOnRemap(t *testing.T) {
	b := newBed(t, ModeVF)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	k := controller.Key{VNI: 100, VGID: vgid}
	b.ctrl.Register(k, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	var m controller.Mapping
	b.eng.Spawn("r", func(p *simtime.Proc) {
		b.be.resolveGID(p, 100, vgid) // populate cache
		// Endpoint migrates to another host; controller pushes the update.
		b.ctrl.Register(k, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 9)})
		m, _, _ = b.be.resolveGID(p, 100, vgid)
	})
	b.eng.Run()
	if m.PIP != packet.NewIP(172, 16, 0, 9) {
		t.Fatalf("cached mapping not refreshed: %+v", m)
	}
}

// TestPushDownSeedsPreexistingMappings: a backend created AFTER tenants
// registered their endpoints must still start with a full cache in
// push-down mode — the subscription only covers future registrations, so
// the cache is seeded from Controller.Dump at frontend creation.
func TestPushDownSeedsPreexistingMappings(t *testing.T) {
	b := newBed(t, ModeVF)
	b.allowAll(t, 100)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	k := controller.Key{VNI: 100, VGID: vgid}
	// Endpoint registered long before this host's backend exists.
	b.ctrl.Register(k, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	b.eng.Run() // drain notifications owed to the fixture backend

	p := DefaultParams()
	p.PushDown = true
	be2 := NewBackend(b.host, b.ctrl, b.fab, p, ModeVF)
	vm, err := b.host.NewVM("late-vm", 1<<30, 100, packet.NewIP(192, 168, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be2.NewFrontend(vm, 100); err != nil {
		t.Fatal(err)
	}
	b.eng.Run() // push-down seeding is an async FetchDump now: let it land
	queriesBefore := b.ctrl.Stats.Queries
	var m controller.Mapping
	var rerr error
	b.eng.Spawn("r", func(p *simtime.Proc) {
		m, _, rerr = be2.resolveGID(p, 100, vgid)
	})
	b.eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if m.PIP != packet.NewIP(172, 16, 0, 2) {
		t.Fatalf("seeded mapping = %+v", m)
	}
	if be2.Stats.CacheMisses != 0 {
		t.Fatalf("cache misses = %d, want 0 (push-down must pre-populate)", be2.Stats.CacheMisses)
	}
	if b.ctrl.Stats.Queries != queriesBefore {
		t.Fatalf("resolution queried the controller (%d → %d queries)", queriesBefore, b.ctrl.Stats.Queries)
	}
}

// TestModifyQPRejectsMalformedRTR: an RC QP moved to RTR with a missing
// DQPN or a zero DGID must fail loudly instead of being programmed with no
// address vector.
func TestModifyQPRejectsMalformedRTR(t *testing.T) {
	b, fe := frontendBed(t)
	done := simtime.NewEvent[error](b.eng)
	var errNoQPN, errNoGID error
	b.eng.Spawn("rtr", func(p *simtime.Proc) {
		dev, _ := fe.Open(p)
		pd, _ := dev.AllocPD(p)
		cq, _ := dev.CreateCQ(p, 8)
		qp, _ := dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
		qp.Modify(p, verbs.Attr{ToState: rnic.StateInit})
		errNoQPN = qp.Modify(p, verbs.Attr{
			ToState: rnic.StateRTR,
			DGID:    packet.GIDFromIP(packet.NewIP(192, 168, 1, 2)),
			// DQPN omitted
		})
		errNoGID = qp.Modify(p, verbs.Attr{ToState: rnic.StateRTR, DQPN: 7 /* DGID omitted */})
		if qp.State() != rnic.StateInit {
			done.Trigger(errDesc("QP left INIT despite malformed RTR"))
			return
		}
		done.Trigger(nil)
	})
	b.eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if errNoQPN == nil || !strings.Contains(errNoQPN.Error(), "malformed") {
		t.Errorf("RTR without DQPN: err = %v, want malformed-address-vector error", errNoQPN)
	}
	if errNoGID == nil || !strings.Contains(errNoGID.Error(), "malformed") {
		t.Errorf("RTR without DGID: err = %v, want malformed-address-vector error", errNoGID)
	}
}

// TestUDRTRWithoutRemoteStillAllowed pins the UD semantics: datagram QPs
// name their destination per WQE, so RTR needs no address vector.
func TestUDRTRWithoutRemoteStillAllowed(t *testing.T) {
	b, fe := frontendBed(t)
	done := simtime.NewEvent[error](b.eng)
	b.eng.Spawn("ud", func(p *simtime.Proc) {
		dev, _ := fe.Open(p)
		pd, _ := dev.AllocPD(p)
		cq, _ := dev.CreateCQ(p, 8)
		qp, _ := dev.CreateQP(p, pd, cq, cq, rnic.UD, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
		qp.Modify(p, verbs.Attr{ToState: rnic.StateInit})
		done.Trigger(qp.Modify(p, verbs.Attr{ToState: rnic.StateRTR, QKey: 0x1234}))
	})
	b.eng.Run()
	if err := done.Value(); err != nil {
		t.Fatalf("UD RTR without remote rejected: %v", err)
	}
}

// TestResolveGIDRetriesThroughOutage: with the controller unavailable,
// resolveGID backs off and retries; once the window ends the lookup
// succeeds, so the caller never sees the outage.
func TestResolveGIDRetriesThroughOutage(t *testing.T) {
	b := newBed(t, ModeVF)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	k := controller.Key{VNI: 100, VGID: vgid}
	b.ctrl.Register(k, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	b.eng.Run()
	b.ctrl.SetFaultPlan(controller.FaultPlan{
		Unavailable: []controller.Window{{Start: 0, End: simtime.Time(simtime.Ms(1))}},
	})
	var m controller.Mapping
	var err error
	b.eng.Spawn("r", func(p *simtime.Proc) {
		m, _, err = b.be.resolveGID(p, 100, vgid)
	})
	b.eng.Run()
	if err != nil {
		t.Fatalf("resolve through outage failed: %v", err)
	}
	if m.PIP != packet.NewIP(172, 16, 0, 2) {
		t.Fatalf("mapping = %+v", m)
	}
	if b.be.Stats.QueryRetries == 0 {
		t.Fatal("no retries recorded — the outage was never hit")
	}
	if b.ctrl.Stats.Timeouts == 0 {
		t.Fatal("controller saw no timeouts")
	}
}

// TestResolveGIDFailsAfterRetryBudget: a controller that never answers
// exhausts the retry budget and surfaces ErrUnavailable.
func TestResolveGIDFailsAfterRetryBudget(t *testing.T) {
	b := newBed(t, ModeVF)
	vgid := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))
	b.ctrl.Register(controller.Key{VNI: 100, VGID: vgid}, controller.Mapping{PIP: packet.NewIP(172, 16, 0, 2)})
	b.eng.Run()
	b.ctrl.SetFaultPlan(controller.FaultPlan{
		Unavailable: []controller.Window{{Start: 0, End: simtime.Time(simtime.Second)}},
	})
	var err error
	b.eng.Spawn("r", func(p *simtime.Proc) {
		_, _, err = b.be.resolveGID(p, 100, vgid)
	})
	b.eng.Run()
	if !errors.Is(err, controller.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable after retry budget", err)
	}
	if b.be.Stats.QueryFailures != 1 {
		t.Fatalf("failures = %d", b.be.Stats.QueryFailures)
	}
	if b.be.Stats.QueryRetries != uint64(DefaultParams().QueryRetries-1) {
		t.Fatalf("retries = %d, want %d", b.be.Stats.QueryRetries, DefaultParams().QueryRetries-1)
	}
}

func TestRConntrackValidateDeny(t *testing.T) {
	b := newBed(t, ModeVF)
	// Tenant policy: only 10.0.1.0/24 → 10.0.2.0/24 RDMA allowed.
	src, _ := packet.ParseCIDR("10.0.1.0/24")
	dst, _ := packet.ParseCIDR("10.0.2.0/24")
	tenant := b.fab.Tenant(100)
	tenant.Policy.AddRule(overlay.Rule{Priority: 10, Proto: overlay.ProtoRDMA, Src: src, Dst: dst, Action: overlay.Allow})
	ct := b.be.CT
	ct.Watch(tenant)
	var okErr, denyErr error
	b.eng.Spawn("v", func(p *simtime.Proc) {
		okErr = ct.Validate(p, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 1, 5), DstVIP: packet.NewIP(10, 0, 2, 5), QPN: 1})
		denyErr = ct.Validate(p, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 3, 5), DstVIP: packet.NewIP(10, 0, 2, 5), QPN: 2})
	})
	b.eng.Run()
	if okErr != nil {
		t.Errorf("allowed flow denied: %v", okErr)
	}
	if denyErr == nil || !strings.Contains(denyErr.Error(), "denied") {
		t.Errorf("deny err = %v", denyErr)
	}
	if ct.Stats.Denied != 1 {
		t.Errorf("denied = %d", ct.Stats.Denied)
	}
}

func TestRConntrackRuleUpdateResetsViolatingQPs(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	pol := tenant.Policy
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	rule := pol.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
	ct := b.be.CT
	ct.Watch(tenant)

	dev := b.host.Dev
	var qp *rnic.QP
	b.eng.Spawn("setup", func(p *simtime.Proc) {
		fn := dev.PF()
		pd := dev.AllocPD(p, fn)
		cq := dev.CreateCQ(p, fn, 16)
		qp = dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateInit})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTR})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTS})
		id := ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 2), QPN: qp.Num}
		ct.Insert(p, id, qp)
		// Revoke: the enforcement process must reset the QP.
		pol.RemoveRule(rule)
	})
	b.eng.Run()
	if qp.State() != rnic.StateError {
		t.Fatalf("QP state = %v, want ERROR after rule revocation", qp.State())
	}
	if ct.Stats.Resets != 1 {
		t.Fatalf("resets = %d", ct.Stats.Resets)
	}
	if len(ct.Conns()) != 0 {
		t.Fatalf("RCT table still holds %v", ct.Conns())
	}
}

func TestRConntrackRuleUpdateSparesAllowedConns(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	pol := tenant.Policy
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	pol.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
	ct := b.be.CT
	ct.Watch(tenant)
	dev := b.host.Dev
	var qp *rnic.QP
	b.eng.Spawn("setup", func(p *simtime.Proc) {
		fn := dev.PF()
		pd := dev.AllocPD(p, fn)
		cq := dev.CreateCQ(p, fn, 16)
		qp = dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateInit})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTR})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTS})
		ct.Insert(p, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 2), QPN: qp.Num}, qp)
		// Add an unrelated deny rule for a different subnet.
		sub, _ := packet.ParseCIDR("10.9.0.0/16")
		pol.AddRule(overlay.Rule{Priority: 50, Proto: overlay.ProtoRDMA, Src: sub, Dst: sub, Action: overlay.Deny})
	})
	b.eng.Run()
	if qp.State() != rnic.StateRTS {
		t.Fatalf("allowed connection was reset (state %v)", qp.State())
	}
	if ct.Stats.Resets != 0 {
		t.Fatalf("resets = %d, want 0", ct.Stats.Resets)
	}
}

// TestRuleEnforcementSkipsDestroyedQP: rulesChanged snapshots its victims
// synchronously but enforces in a spawned process; a QP destroyed (and its
// RCT entry deleted) in between must not be reset through the stale
// pointer.
func TestRuleEnforcementSkipsDestroyedQP(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	rule := tenant.Policy.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
	params := DefaultParams()
	params.InsertRuleCost = simtime.Us(50) // enforcement acts well after the destroy
	ct := NewRConntrack(params, b.host.Dev)
	ct.Watch(tenant)

	dev := b.host.Dev
	var qp *rnic.QP
	b.eng.Spawn("race", func(p *simtime.Proc) {
		fn := dev.PF()
		pd := dev.AllocPD(p, fn)
		cq := dev.CreateCQ(p, fn, 16)
		qp = dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateInit})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTR})
		dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTS})
		id := ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 2), QPN: qp.Num}
		ct.Insert(p, id, qp)
		// Revoke the rule (snapshot taken now, enforcement in 50µs)...
		tenant.Policy.RemoveRule(rule)
		// ...then destroy the QP before enforcement fires.
		ct.Delete(p, qp.Num)
		dev.DestroyQP(p, qp)
	})
	b.eng.Run()
	if qp.State() == rnic.StateError {
		t.Fatal("enforcement reset a destroyed QP through a stale pointer")
	}
	if ct.Stats.Resets != 0 {
		t.Fatalf("resets = %d, want 0", ct.Stats.Resets)
	}
}

// TestDeleteRemovesAllEntriesForQPN: destroy_qp must clear every RCT entry
// the QPN owns, not just the first match found.
func TestDeleteRemovesAllEntriesForQPN(t *testing.T) {
	b := newBed(t, ModeVF)
	ct := b.be.CT
	dev := b.host.Dev
	b.eng.Spawn("fill", func(p *simtime.Proc) {
		fn := dev.PF()
		pd := dev.AllocPD(p, fn)
		cq := dev.CreateCQ(p, fn, 16)
		qp := dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
		other := dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
		src := packet.NewIP(10, 0, 0, 1)
		// The same QP was connected to two peers over its lifetime (RESET
		// → RTR cycles), leaving two RCT entries; a third entry belongs to
		// a different QP and must survive.
		ct.Insert(p, ConnID{VNI: 100, SrcVIP: src, DstVIP: packet.NewIP(10, 0, 0, 2), QPN: qp.Num}, qp)
		ct.Insert(p, ConnID{VNI: 100, SrcVIP: src, DstVIP: packet.NewIP(10, 0, 0, 3), QPN: qp.Num}, qp)
		ct.Insert(p, ConnID{VNI: 100, SrcVIP: src, DstVIP: packet.NewIP(10, 0, 0, 4), QPN: other.Num}, other)
		ct.Delete(p, qp.Num)
	})
	b.eng.Run()
	conns := ct.Conns()
	if len(conns) != 1 {
		t.Fatalf("RCT table = %v, want only the other QP's entry", conns)
	}
	if conns[0].DstVIP != packet.NewIP(10, 0, 0, 4) {
		t.Fatalf("survivor = %v", conns[0])
	}
	if ct.Stats.Deleted != 2 {
		t.Fatalf("deleted = %d, want 2", ct.Stats.Deleted)
	}
}

func TestQoSGroupingTenantToVF(t *testing.T) {
	b := newBed(t, ModeVF)
	fn1, err := b.be.fnFor(100)
	if err != nil {
		t.Fatal(err)
	}
	fn1b, _ := b.be.fnFor(100)
	if fn1 != fn1b {
		t.Fatal("same tenant must map to the same VF (QP grouping)")
	}
	b.fab.AddTenant(200, "globex")
	fn2, err := b.be.fnFor(200)
	if err != nil {
		t.Fatal(err)
	}
	if fn2 == fn1 {
		t.Fatal("distinct tenants must get distinct VFs")
	}
	if !fn1.IsVF() || fn1.IOMMU {
		t.Fatal("MasQ VFs must not use the IOMMU")
	}
	if fn1.IP != b.host.IP {
		t.Fatal("MasQ VFs keep the host's physical addressing")
	}
	if err := b.be.SetTenantRateLimit(100, 10e9); err != nil {
		t.Fatal(err)
	}
	if fn1.RateLimit() != 10e9 {
		t.Fatalf("rate limit = %v", fn1.RateLimit())
	}
}

func TestPFModeUsesPhysicalFunction(t *testing.T) {
	b := newBed(t, ModePF)
	fn, err := b.be.fnFor(100)
	if err != nil {
		t.Fatal(err)
	}
	if fn.IsVF() {
		t.Fatal("PF mode must place queues on the physical function")
	}
}

func TestModeString(t *testing.T) {
	if ModeVF.String() != "masq-vf" || ModePF.String() != "masq-pf" {
		t.Fatal("Mode.String")
	}
}

func TestTable4Costs(t *testing.T) {
	p := DefaultParams()
	if p.ValidConnCost != simtime.Us(2.5) || p.InsertConnCost != simtime.Us(1.5) ||
		p.DeleteConnCost != simtime.Us(1.5) || p.InsertRuleCost != simtime.Us(1.5) {
		t.Fatal("Table 4 basic-op costs drifted from the paper")
	}
}

// frontendBed boots a VM with a MasQ frontend on the single-host fixture.
func frontendBed(t *testing.T) (*bed, *Frontend) {
	t.Helper()
	b := newBed(t, ModeVF)
	b.allowAll(t, 100)
	vm, err := b.host.NewVM("vm0", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := b.be.NewFrontend(vm, 100)
	if err != nil {
		t.Fatal(err)
	}
	return b, fe
}

func TestFrontendResourceLifecycle(t *testing.T) {
	b, fe := frontendBed(t)
	done := simtime.NewEvent[error](b.eng)
	b.eng.Spawn("lifecycle", func(p *simtime.Proc) {
		fail := func(err error) { done.Trigger(err) }
		dev, err := fe.Open(p)
		if err != nil {
			fail(err)
			return
		}
		pd, err := dev.AllocPD(p)
		if err != nil {
			fail(err)
			return
		}
		vm := fe.sess.vm
		va, _ := vm.GVA.Alloc(8192)
		mr, err := dev.RegMR(p, pd, va, 8192, rnic.AccessLocalWrite)
		if err != nil {
			fail(err)
			return
		}
		cq, err := dev.CreateCQ(p, 32)
		if err != nil {
			fail(err)
			return
		}
		qp, err := dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 8, MaxRecvWR: 8})
		if err != nil {
			fail(err)
			return
		}
		// Guest memory is pinned while the MR lives.
		if !vm.GVA.Pinned() {
			fail(errDesc("MR registration did not pin guest memory"))
			return
		}
		// Tear everything down through the paravirtual path.
		if err := qp.Destroy(p); err != nil {
			fail(err)
			return
		}
		if err := mr.Dereg(p); err != nil {
			fail(err)
			return
		}
		if vm.GVA.Pinned() || vm.GPA.Pinned() {
			fail(errDesc("dereg left guest pages pinned"))
			return
		}
		if err := cq.Destroy(p); err != nil {
			fail(err)
			return
		}
		if err := dev.Close(p); err != nil {
			fail(err)
			return
		}
		done.Trigger(nil)
	})
	b.eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
}

type errDesc string

func (e errDesc) Error() string { return string(e) }

func TestFrontendRTRFailsWithoutMapping(t *testing.T) {
	b, fe := frontendBed(t)
	done := simtime.NewEvent[error](b.eng)
	b.eng.Spawn("rtr", func(p *simtime.Proc) {
		dev, _ := fe.Open(p)
		pd, _ := dev.AllocPD(p)
		cq, _ := dev.CreateCQ(p, 8)
		qp, _ := dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
		qp.Modify(p, verbs.Attr{ToState: rnic.StateInit})
		// Peer vGID that no vBond ever registered.
		err := qp.Modify(p, verbs.Attr{
			ToState: rnic.StateRTR,
			DGID:    packet.GIDFromIP(packet.NewIP(203, 0, 113, 9)),
			DQPN:    42,
		})
		done.Trigger(err)
	})
	b.eng.Run()
	if done.Value() == nil {
		t.Fatal("RTR to an unknown vGID succeeded")
	}
}

func TestFrontendNameAndVBond(t *testing.T) {
	_, fe := frontendBed(t)
	if fe.Name() != "masq-vf" {
		t.Fatalf("name = %q", fe.Name())
	}
	if fe.VBond() == nil || fe.VBond().VNI() != 100 {
		t.Fatal("VBond accessor")
	}
	if fe.VBond().MAC().IsZero() {
		t.Fatal("vBond must know the virtual MAC")
	}
}

func TestFrontendRequiresVNIC(t *testing.T) {
	b := newBed(t, ModeVF)
	vm := &hyper.VM{Name: "no-nic"}
	if _, err := b.be.NewFrontend(vm, 100); err == nil {
		t.Fatal("frontend without a vNIC accepted (nothing to bond)")
	}
}

func TestFrontendUnknownTenantRejected(t *testing.T) {
	b := newBed(t, ModeVF)
	vm, _ := b.host.NewVM("vm0", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if _, err := b.be.NewFrontend(vm, 999); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}
