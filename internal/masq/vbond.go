package masq

import (
	"masq/internal/controller"
	"masq/internal/overlay"
	"masq/internal/packet"
)

// VBond binds a VM's virtual Ethernet interface and virtual RDMA interface
// into one virtual RoCE device (Sec. 3.3.1). It owns the virtual GID:
// derived from the Ethernet interface's IP at initialization, re-derived
// whenever the IP changes (via the inetaddr notification chain), and
// registered with the SDN controller under (VNI, vGID) so RConnrename on
// other hosts can resolve it.
type VBond struct {
	vni     uint32
	vnic    *overlay.VMPort
	ctrl    controller.Service
	phys    controller.Mapping // this host's physical identity
	vgid    packet.GID
	stopped bool
}

// NewVBond creates the bond and performs the initial registration: the
// virtual Ethernet interface already has a valid IP, so the GID is
// initialized immediately, and a callback is hooked onto the notification
// chain for future changes.
func NewVBond(vni uint32, vnic *overlay.VMPort, ctrl controller.Service, phys controller.Mapping) *VBond {
	b := &VBond{vni: vni, vnic: vnic, ctrl: ctrl, phys: phys}
	if ip := vnic.EP.VIP; !ip.IsZero() {
		b.vgid = packet.GIDFromIP(ip)
		ctrl.Register(controller.Key{VNI: vni, VGID: b.vgid}, phys)
	}
	vnic.OnIPChange(b.ipChanged)
	return b
}

// NewVBondDeferred creates a bond that does NOT register with the
// controller and starts stopped: the live-migration destination builds its
// successor bond this way, so the (VNI, vGID) → destination mapping is
// published atomically by the controller Move RPC — the commit point —
// rather than by construction. activate() arms it once the move commits;
// a rolled-back migration simply abandons the stopped bond.
func NewVBondDeferred(vni uint32, vnic *overlay.VMPort, ctrl controller.Service, phys controller.Mapping) *VBond {
	b := &VBond{vni: vni, vnic: vnic, ctrl: ctrl, phys: phys, stopped: true}
	if ip := vnic.EP.VIP; !ip.IsZero() {
		b.vgid = packet.GIDFromIP(ip)
	}
	vnic.OnIPChange(b.ipChanged)
	return b
}

// activate arms a deferred bond after the migration commit: from here on
// it owns the lease and reacts to IP changes like any live bond.
func (b *VBond) activate() { b.stopped = false }

// GID returns the current virtual GID — what the application sees from
// ibv_query_gid (the frontend answers locally from here; the verb is pure
// software and never forwarded).
func (b *VBond) GID() packet.GID { return b.vgid }

// VNI returns the tenant network identifier.
func (b *VBond) VNI() uint32 { return b.vni }

// VIP returns the bound interface's current virtual IP.
func (b *VBond) VIP() packet.IP { return b.vnic.EP.VIP }

// MAC returns the virtual Ethernet interface's MAC (tenants may not
// change it; vBond obtained it from the backend at initialization).
func (b *VBond) MAC() packet.MAC { return b.vnic.EP.VMAC }

// Registration returns the bond's current controller registration — what
// the backend's lease-renewal process re-asserts every period. ok is false
// when the bond is stopped or holds no IP: such bonds own no lease.
func (b *VBond) Registration() (controller.Key, controller.Mapping, bool) {
	if b.stopped || b.vgid.IsZero() {
		return controller.Key{}, controller.Mapping{}, false
	}
	return controller.Key{VNI: b.vni, VGID: b.vgid}, b.phys, true
}

// Stop deactivates the bond: its notification-chain callback becomes a
// no-op. Used when the VM migrates and a new bond (with the destination
// host's physical identity) takes over; the mapping itself is NOT
// unregistered — the successor overwrites it.
func (b *VBond) Stop() { b.stopped = true }

// Shutdown deactivates the bond AND withdraws its controller mapping.
// This is the VM-death path: unlike migration, no successor will overwrite
// the entry, and a (VNI, vGID) mapping must never outlive its endpoint.
func (b *VBond) Shutdown() {
	if b.stopped {
		return
	}
	b.stopped = true
	if !b.vgid.IsZero() {
		b.ctrl.Unregister(controller.Key{VNI: b.vni, VGID: b.vgid})
	}
}

// ipChanged is the inetaddr-notification callback: update the GID and the
// controller's mapping table immediately.
func (b *VBond) ipChanged(old, new packet.IP) {
	if b.stopped {
		return
	}
	if !b.vgid.IsZero() {
		b.ctrl.Unregister(controller.Key{VNI: b.vni, VGID: b.vgid})
	}
	if new.IsZero() {
		b.vgid = packet.GID{}
		return
	}
	b.vgid = packet.GIDFromIP(new)
	b.ctrl.Register(controller.Key{VNI: b.vni, VGID: b.vgid}, b.phys)
}
