// Package masq implements MasQ ("queue masquerade"), the paper's software-
// defined RDMA virtualization for virtual private clouds. Software defines
// the communication rules on the control path; hardware executes the
// communication operations on the data path.
//
// The pieces map one-to-one onto Sec. 3 of the paper:
//
//   - Frontend: the paravirtual driver inside the VM. Control-path verbs
//     are forwarded to the backend over a virtio ring; data-path verbs
//     (post_send, post_recv, poll_cq) go straight to the memory-mapped
//     hardware queues, so the data path has zero virtualization overhead.
//   - Backend: the host driver. It owns resource creation on the RNIC's
//     functions, performs the GVA→GPA→HVA→HPA pinning walk for memory
//     registration, and hosts RConnrename and RConntrack.
//   - vBond: binds the VM's virtual Ethernet interface and virtual RDMA
//     interface into one virtual RoCE device; derives the virtual GID from
//     the interface's IP, keeps it synchronized via the inetaddr
//     notification chain, and registers it with the SDN controller.
//   - RConnrename: per-connection address virtualization. At
//     modify_qp(RTR) the peer's virtual GID in the QP context is replaced
//     by its physical GID, resolved through the controller (with a local
//     cache), so the RNIC encapsulates every subsequent packet with
//     physical addresses at zero per-packet cost.
//   - RConntrack: RDMA connection tracking. Connection requests are
//     checked against the tenant's security policy, established
//     connections are recorded in the RCT table, and when rules change,
//     connections that are no longer allowed are torn down by forcing
//     their QPs into the ERROR state.
//   - QoS: QPs are grouped (by tenant, by default) onto SR-IOV VFs, whose
//     hardware token-bucket rate limiters enforce per-group bandwidth.
package masq

import (
	"masq/internal/simtime"
)

// Params hold MasQ's control-path cost constants (Table 4) and cache
// behaviour.
type Params struct {
	// RConntrack basic operation costs (Table 4).
	ValidConnCost  simtime.Duration // valid_conn(): policy check at RTR
	InsertConnCost simtime.Duration // insert_conn(): RCT table insert
	DeleteConnCost simtime.Duration // delete_conn(): RCT table remove
	InsertRuleCost simtime.Duration // insert_rule(): rule-chain update

	// CacheLookupCost is a local mapping-cache hit ("completed within a
	// few microseconds").
	CacheLookupCost simtime.Duration

	// PushDown pre-populates each backend's cache from the controller and
	// keeps it updated, avoiding even first-query misses (Sec. 3.3.1).
	PushDown bool

	// QueryRetries bounds how many controller lookup attempts RConnrename
	// makes while resolving a mapping before failing the verb (>= 1).
	// Lookups only fail when the controller is unavailable or replies are
	// lost, so retries pace recovery from control-plane faults.
	QueryRetries int

	// RetryBackoff is the wait before the second lookup attempt; it
	// doubles on every further attempt (exponential backoff).
	RetryBackoff simtime.Duration

	// StaleDetectCost is the time to discover that connection
	// establishment toward a stale mapping failed (the probe/retransmit
	// timeout before the backend invalidates the entry and re-queries).
	StaleDetectCost simtime.Duration

	// GraceTTL lets RConnrename keep serving renames while the controller
	// is unreachable: a cache entry last confirmed within the TTL is
	// grace-served (counted in Stats.GraceRenames) instead of failing the
	// verb, and the resulting connection is re-validated once the
	// controller returns. Zero disables grace mode — an outage fails every
	// cache miss and expired entry (the historical behaviour).
	GraceTTL simtime.Duration

	// LeaseRenewEvery is the period of the backend's lease-renewal process
	// (Backend.StartLeaseRenewal): each round every live vBond re-asserts
	// its registration, which doubles as the failure detector — renewals
	// reveal controller outages, restarts (epoch bumps), and dropped push
	// notifications.
	LeaseRenewEvery simtime.Duration
}

// DefaultParams returns the paper's measured costs.
func DefaultParams() Params {
	return Params{
		ValidConnCost:   simtime.Us(2.5),
		InsertConnCost:  simtime.Us(1.5),
		DeleteConnCost:  simtime.Us(1.5),
		InsertRuleCost:  simtime.Us(1.5),
		CacheLookupCost: simtime.Us(2),
		PushDown:        false,
		QueryRetries:    4,
		RetryBackoff:    simtime.Us(200),
		StaleDetectCost: simtime.Ms(1),
		LeaseRenewEvery: simtime.Ms(1),
	}
}

// Mode selects which RNIC function MasQ places a VM's queues on.
type Mode int

// Placement modes.
const (
	// ModeVF groups each tenant's QPs onto a dedicated SR-IOV VF whose
	// rate limiter provides tenant-level QoS (the default policy).
	ModeVF Mode = iota
	// ModePF places queues on the physical function: best-effort service
	// with the lowest latency (Fig. 9).
	ModePF
)

func (m Mode) String() string {
	if m == ModePF {
		return "masq-pf"
	}
	return "masq-vf"
}
