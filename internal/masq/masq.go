// Package masq implements MasQ ("queue masquerade"), the paper's software-
// defined RDMA virtualization for virtual private clouds. Software defines
// the communication rules on the control path; hardware executes the
// communication operations on the data path.
//
// The pieces map one-to-one onto Sec. 3 of the paper:
//
//   - Frontend: the paravirtual driver inside the VM. Control-path verbs
//     are forwarded to the backend over a virtio ring; data-path verbs
//     (post_send, post_recv, poll_cq) go straight to the memory-mapped
//     hardware queues, so the data path has zero virtualization overhead.
//   - Backend: the host driver. It owns resource creation on the RNIC's
//     functions, performs the GVA→GPA→HVA→HPA pinning walk for memory
//     registration, and hosts RConnrename and RConntrack.
//   - vBond: binds the VM's virtual Ethernet interface and virtual RDMA
//     interface into one virtual RoCE device; derives the virtual GID from
//     the interface's IP, keeps it synchronized via the inetaddr
//     notification chain, and registers it with the SDN controller.
//   - RConnrename: per-connection address virtualization. At
//     modify_qp(RTR) the peer's virtual GID in the QP context is replaced
//     by its physical GID, resolved through the controller (with a local
//     cache), so the RNIC encapsulates every subsequent packet with
//     physical addresses at zero per-packet cost.
//   - RConntrack: RDMA connection tracking. Connection requests are
//     checked against the tenant's security policy, established
//     connections are recorded in the RCT table, and when rules change,
//     connections that are no longer allowed are torn down by forcing
//     their QPs into the ERROR state.
//   - QoS: QPs are grouped (by tenant, by default) onto SR-IOV VFs, whose
//     hardware token-bucket rate limiters enforce per-group bandwidth.
package masq

import (
	"masq/internal/simtime"
)

// Params hold MasQ's control-path cost constants (Table 4) and cache
// behaviour.
type Params struct {
	// RConntrack basic operation costs (Table 4).
	ValidConnCost  simtime.Duration // valid_conn(): policy check at RTR
	InsertConnCost simtime.Duration // insert_conn(): RCT table insert
	DeleteConnCost simtime.Duration // delete_conn(): RCT table remove
	InsertRuleCost simtime.Duration // insert_rule(): rule-chain update

	// RuleEvalCost is charged per rule-evaluation work unit beyond the
	// first during valid_conn and enforcement re-validation: chain entries
	// scanned by the linear oracle, or index buckets probed by the
	// decision index. The first unit is folded into ValidConnCost /
	// EnforceScanCost, so the canonical single-allow-all policy costs
	// exactly its Table 4 value.
	RuleEvalCost simtime.Duration

	// EnforceScanCost is the base cost of re-validating one RCT entry
	// during rule-change enforcement (entry fetch + verdict application);
	// the policy evaluation on top scales via RuleEvalCost.
	EnforceScanCost simtime.Duration

	// VerdictCacheCost is a valid_conn verdict-cache hit: the same
	// connection re-validated while the tenant's rule version is
	// unchanged skips the policy walk entirely.
	VerdictCacheCost simtime.Duration

	// LinearEnforce makes rule-change enforcement scan the whole VNI's
	// RCT entries on every change (the legacy behaviour, kept as the
	// reference oracle) instead of only the changed rule's CIDR
	// footprint. Verdicts and resets are identical; only the number of
	// entries re-validated — and hence the virtual time charged — grows.
	LinearEnforce bool

	// CacheLookupCost is a local mapping-cache hit ("completed within a
	// few microseconds").
	CacheLookupCost simtime.Duration

	// PushDown pre-populates each backend's cache from the controller and
	// keeps it updated, avoiding even first-query misses (Sec. 3.3.1).
	PushDown bool

	// QueryRetries bounds how many controller lookup attempts RConnrename
	// makes while resolving a mapping before failing the verb (>= 1).
	// Lookups only fail when the controller is unavailable or replies are
	// lost, so retries pace recovery from control-plane faults.
	QueryRetries int

	// RetryBackoff is the wait before the second lookup attempt; it
	// doubles on every further attempt (exponential backoff). Zero is
	// floored at one controller query timeout — an immediate re-query
	// into a dead controller would only repeat the same timeout.
	RetryBackoff simtime.Duration

	// RetryBackoffMax caps the exponential backoff: doubling stops here,
	// so arbitrarily large QueryRetries cannot overflow the duration.
	// Zero means ten query timeouts.
	RetryBackoffMax simtime.Duration

	// BatchLookups enables the connection-setup fast path's batched
	// controller queries: concurrent cache misses coalesce into one
	// BatchLookup RPC resolving every pending key in a single QueryRTT
	// (and piggybacking the host's lease renewals). Off by default —
	// each miss pays its own Lookup RPC, the historical behaviour.
	BatchLookups bool

	// BatchWindow is how long the batch leader waits for stragglers
	// before issuing the coalesced RPC. Floored at 20 µs when batching
	// is enabled.
	BatchWindow simtime.Duration

	// QPPoolSize, when positive, arms the warm QP pool: the backend
	// pre-creates up to this many RC QPs (already in INIT) and CQs per
	// tenant VNI, so a new connection is a pooled-handle rename plus an
	// RTR rewrite instead of the full create/modify firmware chain.
	// Zero disables pooling.
	QPPoolSize int

	// PoolReuseCost is the host-software cost of handing out one pooled
	// resource (table lookup + handle rebind) in place of the firmware
	// verb it replaces.
	PoolReuseCost simtime.Duration

	// PoolRefillIdle is how long the pool refiller waits after the last
	// pooled take before creating replacements, keeping the RNIC
	// firmware free for foreground verbs during a setup storm.
	PoolRefillIdle simtime.Duration

	// SharedAttachCost is the host-software cost of attaching one guest
	// flow to an already-established shared host connection
	// (ModeVFShared): allocate a flow tag, rewrite the QP context in
	// host memory — no firmware verb.
	SharedAttachCost simtime.Duration

	// StaleDetectCost is the time to discover that connection
	// establishment toward a stale mapping failed (the probe/retransmit
	// timeout before the backend invalidates the entry and re-queries).
	StaleDetectCost simtime.Duration

	// GraceTTL lets RConnrename keep serving renames while the controller
	// is unreachable: a cache entry last confirmed within the TTL is
	// grace-served (counted in Stats.GraceRenames) instead of failing the
	// verb, and the resulting connection is re-validated once the
	// controller returns. Zero disables grace mode — an outage fails every
	// cache miss and expired entry (the historical behaviour).
	GraceTTL simtime.Duration

	// LeaseRenewEvery is the period of the backend's lease-renewal process
	// (Backend.StartLeaseRenewal): each round every live vBond re-asserts
	// its registration, which doubles as the failure detector — renewals
	// reveal controller outages, restarts (epoch bumps), and dropped push
	// notifications.
	LeaseRenewEvery simtime.Duration

	// MigrSuspendTTL bounds how long a peer QP stays quiesced after a
	// migration Suspend push: if neither the Moved (commit) nor the
	// rollback-resume push arrives within the TTL — both were lost, or
	// the controller died mid-migration — the QP auto-resumes toward
	// whatever address it has programmed and lives or dies by the normal
	// transport retry budget. Zero means 50 ms.
	MigrSuspendTTL simtime.Duration

	// MigrRenameCost is the host-software cost of renaming one peer
	// connection in place when a Moved push lands: rewrite the QP
	// context's address vector (new physical GID/IP/MAC, translated
	// destination QPN) in host memory.
	MigrRenameCost simtime.Duration

	// MigrQPCost is the per-QP host cost of capturing or restoring
	// transport state during a live migration's freeze/restore (detach or
	// adopt plus the conntrack rewrite bookkeeping).
	MigrQPCost simtime.Duration

	// MigrMRCost is the per-MR host cost of moving a registration across
	// hosts beyond the page-table work itself: MTT capture on the source,
	// adoption under preserved keys on the destination.
	MigrMRCost simtime.Duration
}

// DefaultParams returns the paper's measured costs.
func DefaultParams() Params {
	return Params{
		ValidConnCost:    simtime.Us(2.5),
		InsertConnCost:   simtime.Us(1.5),
		DeleteConnCost:   simtime.Us(1.5),
		InsertRuleCost:   simtime.Us(1.5),
		RuleEvalCost:     simtime.Us(0.3),
		EnforceScanCost:  simtime.Us(0.5),
		VerdictCacheCost: simtime.Us(0.5),
		CacheLookupCost:  simtime.Us(2),
		PushDown:         false,
		QueryRetries:     4,
		RetryBackoff:     simtime.Us(200),
		RetryBackoffMax:  simtime.Ms(10),
		StaleDetectCost:  simtime.Ms(1),
		LeaseRenewEvery:  simtime.Ms(1),

		MigrSuspendTTL: simtime.Ms(50),
		MigrRenameCost: simtime.Us(1),
		MigrQPCost:     simtime.Us(3),
		MigrMRCost:     simtime.Us(2),

		BatchWindow:      simtime.Us(20),
		PoolReuseCost:    simtime.Us(2),
		PoolRefillIdle:   simtime.Ms(1),
		SharedAttachCost: simtime.Us(5),
	}
}

// Mode selects which RNIC function MasQ places a VM's queues on.
type Mode int

// Placement modes.
const (
	// ModeVF groups each tenant's QPs onto a dedicated SR-IOV VF whose
	// rate limiter provides tenant-level QoS (the default policy).
	ModeVF Mode = iota
	// ModePF places queues on the physical function: best-effort service
	// with the lowest latency (Fig. 9).
	ModePF
	// ModeVFShared is ModeVF with shared host connections (the
	// RDMAvisor/DCT idea): guest RC flows toward the same (VNI, peer
	// host) multiplex one host RC connection, demuxed by a flow tag in
	// the overlay header, so only the first flow to a peer pays the
	// firmware connect.
	ModeVFShared
)

func (m Mode) String() string {
	switch m {
	case ModePF:
		return "masq-pf"
	case ModeVFShared:
		return "masq-vf-shared"
	}
	return "masq-vf"
}
