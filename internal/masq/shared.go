package masq

import (
	"masq/internal/controller"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
)

// Shared connections (setup fast path, part c, RDMAvisor/DCT-style): under
// ModeVFShared, guest flows of one tenant that target the same peer host
// multiplex a single host-level connection. The first flow to a (VNI, peer
// host) pair is the carrier — it pays the full firmware RTR/RTS chain and
// establishes the host connection; subsequent flows attach to it, flipping
// their QPC in host memory at SharedAttachCost instead of taking the
// firmware path. Each flow keeps its own QP and BTH DestQP (so data-path
// routing is untouched); the carrier relationship is visible on the wire as
// a flow tag in a VXLAN shim (port 4790), letting the peer demux which of
// the multiplexed flows a packet belongs to.

// sharedKey identifies a host-level shared connection: one per tenant VNI
// per peer physical host.
type sharedKey struct {
	vni uint32
	pip packet.IP
}

// sharedConn is the host-side record of one shared connection.
type sharedConn struct {
	carrierQPN uint32 // the flow that paid the firmware setup
	refs       int    // live flows multiplexed on this connection
	nextTag    uint16 // next flow tag to hand out (carrier holds tag 1)
}

// sharedFlow records a QP's membership in a shared connection.
type sharedFlow struct {
	key      sharedKey
	attached bool // false for the carrier, true for soft-attached flows
}

// sharedRTR programs a renamed RTR under ModeVFShared: the first flow to a
// peer host becomes the carrier (firmware path), later flows attach in host
// memory.
func (b *Backend) sharedRTR(p *simtime.Proc, qp *rnic.QP, vni uint32, m controller.Mapping, attr rnic.Attr) error {
	key := sharedKey{vni: vni, pip: m.PIP}
	attr.FlowVNI = vni
	if sc, ok := b.shared[key]; ok {
		attr.FlowTag = sc.nextTag
		if err := b.Host.Dev.SoftModify(p, qp, attr, b.P.SharedAttachCost); err != nil {
			return err
		}
		sc.nextTag++
		sc.refs++
		b.sharedFlows[qp.Num] = sharedFlow{key: key, attached: true}
		b.Stats.SharedAttaches++
		return nil
	}
	// Register the carrier before its firmware call: flows renaming toward
	// the same peer while the carrier's RTR is still inside the firmware
	// must attach to it, not race into carriers of their own.
	attr.FlowTag = 1
	sc := &sharedConn{carrierQPN: qp.Num, refs: 1, nextTag: 2}
	b.shared[key] = sc
	b.sharedFlows[qp.Num] = sharedFlow{key: key, attached: false}
	if err := b.Host.Dev.ModifyQP(p, qp, attr); err != nil {
		delete(b.sharedFlows, qp.Num)
		if b.shared[key] == sc {
			delete(b.shared, key)
		}
		return err
	}
	b.Stats.SharedCarriers++
	return nil
}

// sharedDetach drops a QP's membership when it is destroyed. When the
// carrier dies (or the last flow leaves) the shared connection is retired:
// surviving attached flows keep their established QPCs, but the next new
// flow to that peer establishes a fresh carrier rather than attaching to a
// connection whose owner is gone.
func (b *Backend) sharedDetach(qpn uint32) {
	fl, ok := b.sharedFlows[qpn]
	if !ok {
		return
	}
	delete(b.sharedFlows, qpn)
	sc := b.shared[fl.key]
	if sc == nil {
		return
	}
	sc.refs--
	if sc.refs <= 0 || sc.carrierQPN == qpn {
		delete(b.shared, fl.key)
	}
}

// flushSharedConns drops the whole multiplexing table (controller-epoch
// bump: the new controller never vouched for these carrier relationships).
// Established QPCs keep working; only future attach decisions are reset.
func (b *Backend) flushSharedConns() {
	if len(b.shared) == 0 && len(b.sharedFlows) == 0 {
		return
	}
	b.shared = make(map[sharedKey]*sharedConn)
	b.sharedFlows = make(map[uint32]sharedFlow)
	b.Stats.SharedFlushes++
}
