package masq

import (
	"fmt"

	"masq/internal/controller"
	"masq/internal/simtime"
)

// Batched controller queries (setup fast path, part a): during a connection
// storm, every concurrent rename miss pays its own Lookup RPC — N misses,
// N QueryRTTs, serialized through the same controller. With BatchLookups
// enabled the first miss becomes a batch leader; misses arriving within the
// batch window join its queue (and misses for a key already in flight just
// wait on that key's event — single-flight), so the whole storm resolves in
// one BatchLookup RPC. The batch RPC also piggybacks the host's lease
// renewals, folding the renewal keep-alive into traffic the host is sending
// anyway.

// lookupOutcome is the result a batch leader hands to every coalesced
// waiter of one key.
type lookupOutcome struct {
	m   controller.Mapping
	err error
}

// batchResolve is resolveGID's miss path under BatchLookups: join the key's
// in-flight resolution if one exists, otherwise enqueue the key and make
// sure a batch leader is running, then wait for the coalesced answer.
func (b *Backend) batchResolve(p *simtime.Proc, k controller.Key) (controller.Mapping, error) {
	if ev, ok := b.inflight[k]; ok {
		out := ev.Wait(p)
		return out.m, out.err
	}
	ev := simtime.NewEvent[lookupOutcome](b.Host.Eng)
	b.inflight[k] = ev
	b.batchQ = append(b.batchQ, k)
	if !b.batching {
		b.batching = true
		b.Host.Eng.Spawn("masq.batch-lookup", b.batchLeader)
	}
	out := ev.Wait(p)
	return out.m, out.err
}

// batchLeader drains the pending-miss queue: sleep one batch window to let
// stragglers pile in, resolve everything queued with one RPC, and repeat
// until no new misses arrived while the RPC was in flight.
func (b *Backend) batchLeader(p *simtime.Proc) {
	window := b.P.BatchWindow
	if window < simtime.Us(20) {
		window = simtime.Us(20)
	}
	for {
		p.Sleep(window)
		keys := b.batchQ
		b.batchQ = nil
		if len(keys) == 0 {
			b.batching = false
			return
		}
		b.runBatch(p, keys)
		if len(b.batchQ) == 0 {
			b.batching = false
			return
		}
	}
}

// runBatch resolves one batch of keys (plus piggybacked lease renewals) and
// triggers every waiter with its key's outcome. Keys and renewals are
// grouped by owning controller shard — one batch RPC per shard that has
// queued misses, in shard order — so a storm's resolution load spreads
// across shards and one dead shard fails only its own keys' waiters.
func (b *Backend) runBatch(p *simtime.Proc, keys []controller.Key) {
	n := b.Ctrl.NumShards()
	shardKeys := make([][]controller.Key, n)
	for _, k := range keys {
		s := b.Ctrl.Owner(k)
		shardKeys[s] = append(shardKeys[s], k)
	}
	shardRenew := make([][]controller.RenewReq, n)
	for _, vb := range b.bonds {
		if k, m, ok := vb.Registration(); ok {
			s := b.Ctrl.Owner(k)
			shardRenew[s] = append(shardRenew[s], controller.RenewReq{K: k, M: m})
		}
	}
	for shard, ks := range shardKeys {
		if len(ks) == 0 {
			continue // renewals ride only on batches the host sends anyway
		}
		results, err := b.batchLookupWithRetry(p, shard, ks, shardRenew[shard])
		b.Stats.BatchRPCs++
		b.Stats.BatchedLookups += uint64(len(ks))
		if n := uint64(len(ks)); n > b.Stats.BatchMax {
			b.Stats.BatchMax = n
		}
		for i, k := range ks {
			ev := b.inflight[k]
			delete(b.inflight, k)
			var out lookupOutcome
			switch {
			case err != nil:
				out.err = fmt.Errorf("masq: batched resolve of vGID %v in VNI %d: %w", k.VGID, k.VNI, err)
			case !results[i].OK:
				out.err = fmt.Errorf("masq: no mapping for vGID %v in VNI %d", k.VGID, k.VNI)
			default:
				out.m = results[i].M
				b.cacheStore(k, out.m)
			}
			ev.Trigger(out)
		}
	}
}

// batchLookupWithRetry is lookupWithRetry's shape applied to one shard's
// batch RPC: same attempt budget, same clamped exponential backoff.
func (b *Backend) batchLookupWithRetry(p *simtime.Proc, shard int, keys []controller.Key, renew []controller.RenewReq) ([]controller.BatchResult, error) {
	attempts := b.P.QueryRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff, limit := b.retryPlan()
	for i := 1; ; i++ {
		results, ep, err := b.Ctrl.BatchLookupShard(p, shard, keys, renew)
		if err == nil {
			b.ctrlOK(shard, ep)
			b.Stats.LeaseRenewals += uint64(len(renew))
			return results, nil
		}
		b.ctrlFail(shard)
		if i >= attempts {
			b.Stats.QueryFailures++
			return nil, fmt.Errorf("masq: batch lookup of %d keys (%d attempts): %w", len(keys), i, err)
		}
		b.Stats.QueryRetries++
		b.Rec.Add("controller.query_retries", 1)
		p.Sleep(backoff)
		backoff = nextBackoff(backoff, limit)
	}
}
