package masq

// Connection-setup fast-path tests: the retry-backoff clamp regression,
// batched/coalesced controller lookups, warm QP pools (including their
// flush-on-crash and flush-on-epoch-bump lifecycle), and shared-connection
// bookkeeping. The cluster package covers the on-wire flow-tag side.

import (
	"fmt"
	"testing"

	"masq/internal/controller"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// darkController makes every controller RPC time out for the whole run.
func darkController(b *bed) {
	b.ctrl.SetFaultPlan(controller.FaultPlan{
		Unavailable: []controller.Window{{Start: 0, End: simtime.Time(10 * simtime.Second)}},
	})
}

// lookupElapsed runs one lookupWithRetry against a dark controller and
// returns the total elapsed virtual time (and requires it to fail).
func lookupElapsed(t *testing.T, b *bed) simtime.Duration {
	t.Helper()
	k := controller.Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(192, 168, 1, 9))}
	var elapsed simtime.Duration
	b.eng.Spawn("retry", func(p *simtime.Proc) {
		s := p.Now()
		_, err := b.be.lookupWithRetry(p, k)
		elapsed = p.Now().Sub(s)
		if err == nil {
			t.Error("lookup against a dark controller succeeded")
		}
	})
	b.eng.Run()
	return elapsed
}

// TestRetryBackoffClampedSequence pins the retry schedule: backoffs double
// from RetryBackoff but stop at RetryBackoffMax. With 6 attempts, 200µs
// initial backoff and a 1.6ms cap the sleeps are 200, 400, 800, 1600,
// 1600 µs between six 1ms timeouts: 10.6ms total.
func TestRetryBackoffClampedSequence(t *testing.T) {
	b := newBed(t, ModeVF)
	darkController(b)
	b.be.P.QueryRetries = 6
	b.be.P.RetryBackoff = simtime.Us(200)
	b.be.P.RetryBackoffMax = simtime.Us(1600)
	if got, want := lookupElapsed(t, b), simtime.Us(10600); got != want {
		t.Fatalf("elapsed = %v, want %v (6 timeouts + 200/400/800/1600/1600µs backoffs)", got, want)
	}
	if b.be.Stats.QueryRetries != 5 || b.be.Stats.QueryFailures != 1 {
		t.Fatalf("retries/failures = %d/%d, want 5/1", b.be.Stats.QueryRetries, b.be.Stats.QueryFailures)
	}
}

// TestRetryBackoffZeroFloored is the second half of the bug: a zero
// configured backoff used to stay zero forever (every retry fired the
// instant the previous timeout expired). It is now floored at one query
// timeout, so three attempts sleep 1ms and 2ms between 1ms timeouts.
func TestRetryBackoffZeroFloored(t *testing.T) {
	b := newBed(t, ModeVF)
	darkController(b)
	b.be.P.QueryRetries = 3
	b.be.P.RetryBackoff = 0
	if got, want := lookupElapsed(t, b), simtime.Ms(6); got != want {
		t.Fatalf("elapsed = %v, want %v (3 timeouts + 1ms/2ms floored backoffs)", got, want)
	}
}

// TestRetryBackoffNoOverflowAtHighRetries would overflow before the clamp:
// 63 unclamped doublings of any backoff wrap simtime.Duration negative and
// crash (or return instantly). With the cap the schedule is exact:
// 1, 2, 4 µs then sixty sleeps at the 8µs cap.
func TestRetryBackoffNoOverflowAtHighRetries(t *testing.T) {
	b := newBed(t, ModeVF)
	darkController(b)
	b.be.P.QueryRetries = 64
	b.be.P.RetryBackoff = simtime.Us(1)
	b.be.P.RetryBackoffMax = simtime.Us(8)
	want := 64*simtime.Ms(1) + simtime.Us(1+2+4) + 60*simtime.Us(8)
	if got := lookupElapsed(t, b); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

// batchBed is a bed with batched lookups on and three peer mappings
// registered directly with the controller.
func batchBed(t *testing.T) (*bed, []controller.Key) {
	t.Helper()
	b := newBed(t, ModeVF)
	b.be.P.BatchLookups = true
	keys := make([]controller.Key, 3)
	for i := range keys {
		vip := packet.NewIP(192, 168, 1, byte(20+i))
		keys[i] = controller.Key{VNI: 100, VGID: packet.GIDFromIP(vip)}
		b.ctrl.Register(keys[i], controller.Mapping{PIP: packet.NewIP(172, 16, 0, byte(20+i))})
	}
	return b, keys
}

// TestBatchResolveCoalescesConcurrentMisses: three simultaneous misses for
// three different keys resolve through ONE controller RPC.
func TestBatchResolveCoalescesConcurrentMisses(t *testing.T) {
	b, keys := batchBed(t)
	for i, k := range keys {
		i, k := i, k
		b.eng.Spawn("miss", func(p *simtime.Proc) {
			m, _, err := b.be.resolveGID(p, 100, k.VGID)
			if err != nil {
				t.Errorf("resolve %d: %v", i, err)
			}
			if want := packet.NewIP(172, 16, 0, byte(20+i)); m.PIP != want {
				t.Errorf("resolve %d = %v, want %v", i, m.PIP, want)
			}
		})
	}
	b.eng.Run()
	if b.ctrl.Stats.Queries != 1 {
		t.Fatalf("controller RPCs = %d, want 1 (batch)", b.ctrl.Stats.Queries)
	}
	if b.be.Stats.BatchRPCs != 1 || b.be.Stats.BatchedLookups != 3 || b.be.Stats.BatchMax != 3 {
		t.Fatalf("batch stats = %d RPCs / %d lookups / max %d, want 1/3/3",
			b.be.Stats.BatchRPCs, b.be.Stats.BatchedLookups, b.be.Stats.BatchMax)
	}
	if got := len(b.be.CacheSnapshot()); got != 3 {
		t.Fatalf("cached entries = %d, want 3", got)
	}
}

// TestBatchResolveSingleFlightSameKey: concurrent misses for the SAME key
// join the in-flight resolution instead of queueing the key twice.
func TestBatchResolveSingleFlightSameKey(t *testing.T) {
	b, keys := batchBed(t)
	for i := 0; i < 2; i++ {
		b.eng.Spawn("miss", func(p *simtime.Proc) {
			if _, _, err := b.be.resolveGID(p, 100, keys[0].VGID); err != nil {
				t.Error(err)
			}
		})
	}
	b.eng.Run()
	if b.ctrl.Stats.Queries != 1 || b.be.Stats.BatchedLookups != 1 {
		t.Fatalf("RPCs/batched = %d/%d, want 1/1",
			b.ctrl.Stats.Queries, b.be.Stats.BatchedLookups)
	}
}

// TestBatchResolveDeterministic: the coalesced schedule is a pure function
// of the scenario — two identical runs finish at identical virtual times
// with identical stats.
func TestBatchResolveDeterministic(t *testing.T) {
	run := func() string {
		b, keys := batchBed(t)
		for _, k := range keys {
			k := k
			b.eng.Spawn("miss", func(p *simtime.Proc) {
				if _, _, err := b.be.resolveGID(p, 100, k.VGID); err != nil {
					t.Error(err)
				}
			})
		}
		b.eng.Run()
		return fmt.Sprintf("end=%v stats=%+v ctrl=%+v", b.eng.Now(), b.be.Stats, b.ctrl.Stats)
	}
	a, c := run(), run()
	if a != c {
		t.Fatalf("runs diverged:\n%s\n%s", a, c)
	}
}

// poolBed builds a VF bed with a warm pool of the given size and one
// frontend, run to quiescence so the pool is full.
func poolBed(t *testing.T, size int) (*bed, *Frontend) {
	t.Helper()
	b := newBed(t, ModeVF)
	b.allowAll(t, 100)
	b.be.P.QPPoolSize = size
	vm, err := b.host.NewVM("vm1", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := b.be.NewFrontend(vm, 100)
	if err != nil {
		t.Fatal(err)
	}
	b.eng.Run()
	return b, fe
}

// guestSetup runs the guest's CQ/QP/INIT sequence and returns its elapsed
// virtual time.
func guestSetup(t *testing.T, b *bed, fe *Frontend) (simtime.Duration, verbs.QP) {
	t.Helper()
	var elapsed simtime.Duration
	var qp verbs.QP
	b.eng.Spawn("guest-setup", func(p *simtime.Proc) {
		dev, err := fe.Open(p)
		if err != nil {
			t.Error(err)
			return
		}
		pd, _ := dev.AllocPD(p)
		s := p.Now()
		cq, _ := dev.CreateCQ(p, 8)
		var errQP error
		qp, errQP = dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
		if errQP != nil {
			t.Error(errQP)
			return
		}
		if err := qp.Modify(p, verbs.Attr{ToState: rnic.StateInit}); err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now().Sub(s)
	})
	b.eng.Run()
	return elapsed, qp
}

// TestWarmPoolServesSetupFromHostMemory: with a warm pool, create_cq,
// create_qp and INIT are all satisfied without firmware — much faster than
// the cold path, with the hits visible in the stats and the QP genuinely
// usable (INIT, pool-refilled).
func TestWarmPoolServesSetupFromHostMemory(t *testing.T) {
	cold, feCold := poolBed(t, 0)
	coldDur, _ := guestSetup(t, cold, feCold)

	warm, feWarm := poolBed(t, 2)
	if warm.be.Stats.PoolRefills != 4 {
		t.Fatalf("pre-warm refills = %d, want 4 (2 CQs + 2 QPs)", warm.be.Stats.PoolRefills)
	}
	warmDur, qp := guestSetup(t, warm, feWarm)

	if warm.be.Stats.PoolHits != 2 || warm.be.Stats.PoolMisses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 2/0", warm.be.Stats.PoolHits, warm.be.Stats.PoolMisses)
	}
	if qp.State() != rnic.StateInit {
		t.Fatalf("pooled QP state = %v, want INIT", qp.State())
	}
	// The cold path pays create_cq + create_qp + INIT in VF firmware time
	// (~1.3ms); the warm path only ring round trips and reuse costs.
	if warmDur*3 >= coldDur {
		t.Fatalf("warm setup %v is not <3x faster than cold %v", warmDur, coldDur)
	}
}

// TestPoolFlushOnVMCrash: a VM crash destroys the tenant's staged
// resources (nothing pre-created for a dead tenant may linger), and the
// refiller rebuilds the pool afterwards.
func TestPoolFlushOnVMCrash(t *testing.T) {
	b, fe := poolBed(t, 2)
	b.eng.Spawn("crash", func(p *simtime.Proc) { b.be.Crash(p, fe) })
	b.eng.Run()
	if b.be.Stats.PoolFlushes != 4 {
		t.Fatalf("flushed = %d staged resources, want 4", b.be.Stats.PoolFlushes)
	}
	if b.be.Stats.PoolRefills != 8 {
		t.Fatalf("refills = %d, want 8 (4 pre-warm + 4 rebuild)", b.be.Stats.PoolRefills)
	}
}

// TestPoolFlushOnEpochBump: a controller restart (epoch bump, detected via
// lease renewal) flushes the warm pool — the staged QPs were created under
// the old controller's view of the world.
func TestPoolFlushOnEpochBump(t *testing.T) {
	b, _ := poolBed(t, 2)
	b.be.P.LeaseRenewEvery = simtime.Us(500)
	b.be.StartLeaseRenewal(b.eng.Now().Add(simtime.Ms(10)))
	b.eng.At(b.eng.Now().Add(simtime.Ms(1)), b.ctrl.Crash)
	b.eng.At(b.eng.Now().Add(simtime.Ms(2)), b.ctrl.Restart)
	b.eng.Run()
	if b.be.Stats.EpochBumps != 1 {
		t.Fatalf("epoch bumps = %d, want 1", b.be.Stats.EpochBumps)
	}
	if b.be.Stats.PoolFlushes != 4 {
		t.Fatalf("flushed = %d staged resources, want 4", b.be.Stats.PoolFlushes)
	}
}

// TestSharedModeCarrierAndAttach pins the multiplexing bookkeeping: the
// first flow to a peer host pays the firmware rename (carrier), later
// flows soft-attach, and destroying the carrier retires the shared
// connection so the next flow starts a fresh one.
func TestSharedModeCarrierAndAttach(t *testing.T) {
	b := newBed(t, ModeVFShared)
	b.allowAll(t, 100)
	vm1, err := b.host.NewVM("vm1", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fe1, err := b.be.NewFrontend(vm1, 100)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := b.host.NewVM("vm2", 1<<30, 100, packet.NewIP(192, 168, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.be.NewFrontend(vm2, 100); err != nil {
		t.Fatal(err)
	}
	peerGID := packet.GIDFromIP(packet.NewIP(192, 168, 1, 2))

	var carrierRTR, attachRTR simtime.Duration
	b.eng.Spawn("flows", func(p *simtime.Proc) {
		dev, err := fe1.Open(p)
		if err != nil {
			t.Error(err)
			return
		}
		pd, _ := dev.AllocPD(p)
		cq, _ := dev.CreateCQ(p, 8)
		connect := func(dqpn uint32) (verbs.QP, simtime.Duration) {
			qp, err := dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
			if err != nil {
				t.Fatalf("create qp: %v", err)
			}
			if err := qp.Modify(p, verbs.Attr{ToState: rnic.StateInit}); err != nil {
				t.Fatalf("INIT: %v", err)
			}
			s := p.Now()
			if err := qp.Modify(p, verbs.Attr{ToState: rnic.StateRTR, DGID: peerGID, DQPN: dqpn}); err != nil {
				t.Fatalf("RTR: %v", err)
			}
			rtr := p.Now().Sub(s)
			if err := qp.Modify(p, verbs.Attr{ToState: rnic.StateRTS}); err != nil {
				t.Fatalf("RTS: %v", err)
			}
			return qp, rtr
		}
		carrier, d1 := connect(9)
		_, d2 := connect(10)
		carrierRTR, attachRTR = d1, d2
		// Killing the carrier retires the shared connection: the next
		// flow must establish a fresh carrier, not attach to a ghost.
		if err := carrier.Destroy(p); err != nil {
			t.Errorf("destroy carrier: %v", err)
		}
		connect(11)
	})
	b.eng.Run()
	if b.be.Stats.SharedCarriers != 2 || b.be.Stats.SharedAttaches != 1 {
		t.Fatalf("carriers/attaches = %d/%d, want 2/1",
			b.be.Stats.SharedCarriers, b.be.Stats.SharedAttaches)
	}
	// The attach skips the firmware rename entirely.
	if attachRTR*3 >= carrierRTR {
		t.Fatalf("attach RTR %v is not <3x cheaper than carrier RTR %v", attachRTR, carrierRTR)
	}
}
