package masq

import (
	"fmt"
	"sort"

	"masq/internal/controller"
	"masq/internal/hyper"
	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
	"masq/internal/verbs"
	"masq/internal/virtio"
)

// Backend is MasQ's host-side driver: one per host. It executes forwarded
// control-path commands on the RNIC, applies RConnrename and RConntrack,
// and implements the QoS grouping policy that maps tenants onto VFs.
type Backend struct {
	P    Params
	Mode Mode

	Host *hyper.Host
	Ctrl controller.Service
	Fab  *overlay.Fabric
	CT   *RConntrack

	VIO virtio.Params

	// Rec, when set, records backend command handling, RConnrename and
	// RConntrack work as trace spans. Nil is valid and free.
	Rec *trace.Recorder

	cache   map[controller.Key]cacheEntry
	tenants map[uint32]*rnic.Func // QoS grouping: tenant → VF
	qpOwner map[uint32]*session   // QPN → owning frontend (wire diagnosis)

	// Controller-survival state. The backend tracks each controller
	// shard's reachability and epoch independently — a crashed shard arms
	// grace mode and reconciliation for its slice of the keyspace only —
	// and funnels all recovery through one serialized reconcile process.
	bonds   []*VBond        // every vBond this backend created (lease holders)
	shards  []*ctrlShard    // per controller shard survival state (len = Ctrl.NumShards())
	seeded  map[uint32]bool // VNIs whose cache is push-down seeded
	leasing bool            // lease-renewal process running

	// Reconciliation state, drained by the single reconcile process.
	reconciling bool
	graceConns  []graceConn         // grace-established connections awaiting re-validation
	graceSeen   map[ConnID]struct{} // dedup for graceConns

	// Setup fast-path state (see batch.go / pool.go / shared.go).
	inflight map[controller.Key]*simtime.Event[lookupOutcome] // single-flight per key
	batchQ   []controller.Key                                 // keys awaiting the next batch RPC
	batching bool                                             // batch-leader process running

	pools      map[uint32]*qpPool // warm QP/CQ pools, one per tenant VNI
	pooledInit map[uint32]bool    // pooled QPs handed out already in INIT

	shared      map[sharedKey]*sharedConn // shared host connections by (VNI, peer host)
	sharedFlows map[uint32]sharedFlow     // QPN → its shared-connection membership

	// migrSusp tracks the peer QPs this backend quiesced per migration
	// Suspend push, so the matching Moved (or rollback-resume) push — or
	// the suspend TTL — wakes exactly those (see migrate.go).
	migrSusp map[controller.Key]*suspendSet

	Stats struct {
		CacheHits, CacheMisses uint64
		Renames                uint64

		// Control-plane robustness accounting.
		QueryRetries  uint64 // controller lookups repeated after a timeout
		QueryFailures uint64 // resolutions abandoned after the retry budget
		StaleRenames  uint64 // establishments that hit a stale cached mapping
		Invalidations uint64 // cache entries dropped (push or stale detection)

		// Failure-chain accounting.
		FatalEvents   uint64 // QP-fatal async events on QPs this backend owns
		AsyncCleanups uint64 // RConntrack erasures triggered by fatal events
		Crashes       uint64 // VMs torn down by Crash

		// Controller crash/outage accounting.
		GraceRenames       uint64 // renames served from a within-TTL cache entry during an outage
		GraceExpired       uint64 // grace candidates rejected: entry older than GraceTTL
		GraceRevalidated   uint64 // grace connections confirmed after the controller returned
		GraceResets        uint64 // grace connections reset: the authoritative mapping had changed
		FencedNotifies     uint64 // pushes dropped (stale epoch or superseded by a resync)
		NotifyGaps         uint64 // lost-push detections (seq gap or lease-round audit)
		Resyncs            uint64 // full FetchDump reconciliations performed
		LeaseRenewals      uint64 // successful per-bond Renew RPCs
		LeaseRenewFailures uint64 // Renew RPCs that timed out
		EpochBumps         uint64 // controller restarts observed (epoch changes)

		// Setup fast-path accounting.
		BatchRPCs      uint64 // coalesced BatchLookup RPCs issued
		BatchedLookups uint64 // cache misses resolved through a batch
		BatchMax       uint64 // largest key count coalesced into one batch
		PoolHits       uint64 // CQ/QP creations served from the warm pool
		PoolMisses     uint64 // pool enabled but empty (or unsuitable) at take
		PoolRefills    uint64 // pooled resources created by the refill process
		PoolFlushes    uint64 // pooled resources destroyed (crash, epoch bump)
		SharedCarriers uint64 // host connections established (first flow to a peer)
		SharedAttaches uint64 // flows attached to an existing host connection
		SharedFlushes  uint64 // shared-connection table clears (epoch bump)

		// Live-migration accounting (see migrate.go).
		MigrOut            uint64 // sessions frozen and captured off this backend
		MigrIn             uint64 // sessions restored onto this backend
		MigrRollbacks      uint64 // captures re-adopted at the source after a failed commit
		MigrSuspends       uint64 // Suspend pushes that quiesced at least one peer QP
		MigrSuspendedQPs   uint64 // peer QPs quiesced by Suspend pushes
		MigrRenames        uint64 // peer connections renamed in place by Moved pushes
		MigrResumes        uint64 // peer QPs resumed by Moved pushes
		MigrSuspendExpiry  uint64 // suspend TTLs fired (commit and rollback push both lost)
		MigrValidateResets uint64 // migrated connections denied by the destination's policy
	}
}

// cacheEntry is one rename-cache row: the mapping plus the instant the
// controller last confirmed it (registration push, query reply, or dump).
// The freshness timestamp is what grace mode trusts during outages.
type cacheEntry struct {
	m     controller.Mapping
	fresh simtime.Time
}

// graceConn remembers a connection established from a grace-served cache
// entry: the RCT identity plus the mapping the QPC was programmed with,
// so re-validation can tell "still correct" from "moved while the
// controller was dark".
type graceConn struct {
	id ConnID
	k  controller.Key
	m  controller.Mapping
}

// ctrlShard is the backend's survival state for one controller shard.
// Reachability, epoch, and push-stream bookkeeping are per shard, so one
// shard's crash arms grace mode and reconciliation for its slice of the
// keyspace while the other shards' leases and caches stay undisturbed.
type ctrlShard struct {
	sub          controller.SubView
	resyncBase   map[uint32]uint64 // per-VNI seq superseded by the last resync snapshot
	epoch        uint64            // highest epoch observed from this shard
	notifSeen    uint64            // highest notification seq observed (gap detection)
	down         bool              // last RPC to this shard timed out, none succeeded since
	needReassert bool              // re-register this shard's vBonds (epoch bump seen)
	needResync   bool              // replay this shard's table slice over the cache
}

// NewBackend creates the host driver and hooks it to the controller (a
// single *controller.Controller or a sharded/remote Service front).
func NewBackend(host *hyper.Host, ctrl controller.Service, fab *overlay.Fabric, p Params, mode Mode) *Backend {
	b := &Backend{
		P:         p,
		Mode:      mode,
		Host:      host,
		Ctrl:      ctrl,
		Fab:       fab,
		CT:        NewRConntrack(p, host.Dev),
		VIO:       virtio.DefaultParams(),
		cache:     make(map[controller.Key]cacheEntry),
		tenants:   make(map[uint32]*rnic.Func),
		qpOwner:   make(map[uint32]*session),
		seeded:    make(map[uint32]bool),
		graceSeen: make(map[ConnID]struct{}),

		inflight:    make(map[controller.Key]*simtime.Event[lookupOutcome]),
		pools:       make(map[uint32]*qpPool),
		pooledInit:  make(map[uint32]bool),
		shared:      make(map[sharedKey]*sharedConn),
		sharedFlows: make(map[uint32]sharedFlow),
		migrSusp:    make(map[controller.Key]*suspendSet),
	}
	// The failure-reaction chain, backend half: when the RNIC moves an
	// owned QP to ERROR on its own (retry exhaustion — typically a dead or
	// partitioned peer), the connection no longer exists, so its
	// RConntrack state is erased without waiting for the guest to destroy
	// the QP. The erase runs as a proc to pay the delete cost; it is
	// idempotent against the guest's own destroy_qp racing it.
	host.Dev.SubscribeAsync(func(ev rnic.AsyncEvent) {
		if ev.Type != rnic.EventQPFatal {
			return
		}
		if _, ok := b.qpOwner[ev.QPN]; !ok {
			return
		}
		b.Stats.FatalEvents++
		qpn := ev.QPN
		host.Eng.Spawn("masq.fatal-cleanup", func(p *simtime.Proc) {
			b.Stats.AsyncCleanups++
			b.CT.Delete(p, qpn)
		})
	})
	for i := 0; i < ctrl.NumShards(); i++ {
		b.shards = append(b.shards, &ctrlShard{resyncBase: make(map[uint32]uint64)})
	}
	for i, sub := range ctrl.SubscribeShards(b.onNotify) {
		b.shards[i].sub = sub
	}
	return b
}

// onNotify applies one controller push. Before touching the cache it runs
// the fencing protocol:
//
//   - epoch fence: a notification stamped with an epoch older than one we
//     have already observed is from a dead controller incarnation and is
//     dropped — a stale-epoch mapping must never be applied;
//   - gap detection: the per-subscriber seq counts every notification
//     addressed to us, so a jump reveals pushes lost in flight and
//     schedules a resync;
//   - supersede fence: a notification older than the last resync snapshot
//     for its VNI is already folded into the cache (applying it would
//     regress the entry), so it is dropped.
//
// All fencing state is per controller shard: epochs, sequence numbers, and
// resync fences from different shards are independent counters.
func (b *Backend) onNotify(shard int, n controller.Notify) {
	cs := b.shards[shard]
	if n.Epoch < cs.epoch {
		b.Stats.FencedNotifies++
		return
	}
	if n.Epoch > cs.epoch {
		b.observeEpoch(shard, n.Epoch)
	}
	if n.Seq > cs.notifSeen {
		if n.Seq != cs.notifSeen+1 {
			b.Stats.NotifyGaps++
			cs.needResync = true
			b.kickReconcile()
		}
		cs.notifSeen = n.Seq
	}
	if n.Seq <= cs.resyncBase[n.Key.VNI] {
		b.Stats.FencedNotifies++
		return
	}
	k := n.Key
	if n.Suspend {
		// A peer endpoint is freezing for live migration: quiesce every
		// established connection toward it so the transport does not burn
		// its retry budget into the blackout (see migrate.go).
		b.migrSuspend(k)
		return
	}
	if n.Moved {
		// The migration committed (mapping + QPN translations) or rolled
		// back (original mapping, no translations): rename the quiesced
		// connections in place and wake them (see migrate.go).
		b.migrMoved(n)
		return
	}
	if n.Removed {
		if _, ok := b.cache[k]; ok {
			b.Stats.Invalidations++
		}
		delete(b.cache, k)
		return
	}
	if b.P.PushDown {
		b.cacheStore(k, n.Mapping) // controller pushes mappings down in advance
	} else if _, ok := b.cache[k]; ok {
		b.cacheStore(k, n.Mapping) // keep cached entries fresh
	}
}

// cacheStore writes a controller-confirmed mapping, stamping it fresh now.
func (b *Backend) cacheStore(k controller.Key, m controller.Mapping) {
	b.cache[k] = cacheEntry{m: m, fresh: b.Host.Eng.Now()}
}

// SetRecorder attaches a trace recorder to the backend and its conntrack.
// It must be called before NewFrontend so the virtio ring picks it up.
func (b *Backend) SetRecorder(r *trace.Recorder) {
	b.Rec = r
	b.CT.rec = r
}

// physIdentity is the mapping vBond registers for endpoints on this host:
// the RNIC's physical addressing (footnote 2 of the paper: source
// addresses are always the physical ones).
func (b *Backend) physIdentity() controller.Mapping {
	return controller.Mapping{
		PGID: packet.GIDFromIP(b.Host.IP),
		PIP:  b.Host.IP,
		PMAC: b.Host.MAC,
	}
}

// fnFor applies the QP-grouping policy: in VF mode each tenant gets a
// dedicated VF (and thereby a hardware rate limiter); PF mode is
// best-effort on the physical function.
func (b *Backend) fnFor(vni uint32) (*rnic.Func, error) {
	if b.Mode == ModePF {
		return b.Host.Dev.PF(), nil
	}
	if fn, ok := b.tenants[vni]; ok {
		return fn, nil
	}
	fn, err := b.Host.Dev.AddVF()
	if err != nil {
		return nil, fmt.Errorf("masq: no VF for tenant %d: %w", vni, err)
	}
	// MasQ VFs are not passed through: they keep the host's network
	// identity and need no IOMMU (the backend programs HPAs directly).
	fn.SetAddr(b.Host.IP, b.Host.MAC)
	fn.IOMMU = false
	b.tenants[vni] = fn
	return fn, nil
}

// SetTenantRateLimit installs a QoS policy on the tenant's QP group.
func (b *Backend) SetTenantRateLimit(vni uint32, bps float64) error {
	fn, err := b.fnFor(vni)
	if err != nil {
		return err
	}
	fn.SetRateLimit(bps)
	return nil
}

// WireInfo is the Sec. 5 diagnosis feature: underlay packets carry only
// physical addresses, but operators sometimes need the overlay identity
// behind a flow. Given the destination QPN observed in a packet addressed
// to this host, WireInfo returns the tenant and virtual IP it belongs to
// ("maintaining a mapping table between the (physical IP, QPN) and the
// virtual IP" — no extra headers needed, so no MTU tax).
func (b *Backend) WireInfo(qpn uint32) (vni uint32, vip packet.IP, ok bool) {
	sess, ok := b.qpOwner[qpn]
	if !ok {
		return 0, packet.IP{}, false
	}
	return sess.vni, sess.vbond.VIP(), true
}

// resolveGID is RConnrename's mapping lookup: local cache first, then the
// controller (with retry/backoff under control-plane faults). The graced
// result is true when the mapping was served under grace mode — the
// controller is unreachable but the entry was confirmed within GraceTTL —
// in which case the caller must register the connection for re-validation
// once the controller returns.
func (b *Backend) resolveGID(p *simtime.Proc, vni uint32, vgid packet.GID) (controller.Mapping, bool, error) {
	k := controller.Key{VNI: vni, VGID: vgid}
	sp := b.Rec.Begin(p, trace.LayerRConnrename, "cache_lookup")
	p.Sleep(b.P.CacheLookupCost)
	e, ok := b.cache[k]
	sp.End(p)
	if ok {
		if !b.shards[b.Ctrl.Owner(k)].down || b.P.GraceTTL <= 0 {
			b.Stats.CacheHits++
			b.Rec.Add("rconnrename.cache_hits", 1)
			return e.m, false, nil
		}
		// The controller is unreachable: trust the cache only within the
		// grace TTL. Anything older falls through to the (most likely
		// failing) lookup — better to refuse a connection than to rename
		// onto an address nobody has vouched for recently.
		if p.Now().Sub(e.fresh) <= b.P.GraceTTL {
			b.Stats.GraceRenames++
			b.Rec.Add("rconnrename.grace", 1)
			return e.m, true, nil
		}
		b.Stats.GraceExpired++
	}
	b.Stats.CacheMisses++
	b.Rec.Add("rconnrename.cache_misses", 1)
	if b.P.BatchLookups {
		m, err := b.batchResolve(p, k)
		return m, false, err
	}
	m, err := b.lookupWithRetry(p, k)
	return m, false, err
}

// retryPlan computes the first backoff and the doubling cap for controller
// lookup retries. A zero configured backoff is floored at one controller
// query timeout — re-querying a dead controller immediately only repeats
// the same timeout — and doubling is clamped at RetryBackoffMax so a large
// QueryRetries cannot overflow simtime.Duration.
func (b *Backend) retryPlan() (backoff, limit simtime.Duration) {
	cp := b.Ctrl.RPCParams()
	timeout := cp.QueryTimeout
	if timeout <= 0 {
		timeout = 10 * cp.QueryRTT
	}
	backoff = b.P.RetryBackoff
	if backoff <= 0 {
		backoff = timeout
	}
	limit = b.P.RetryBackoffMax
	if limit <= 0 {
		limit = 10 * timeout
	}
	if backoff > limit {
		backoff = limit
	}
	return backoff, limit
}

// nextBackoff doubles a retry backoff under the clamp, without overflow.
func nextBackoff(backoff, limit simtime.Duration) simtime.Duration {
	if backoff <= limit/2 {
		return backoff * 2
	}
	return limit
}

// lookupWithRetry queries the controller directly (no cache read), backing
// off exponentially while queries time out, and caches the answer.
func (b *Backend) lookupWithRetry(p *simtime.Proc, k controller.Key) (controller.Mapping, error) {
	attempts := b.P.QueryRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff, limit := b.retryPlan()
	shard := b.Ctrl.Owner(k)
	for i := 1; ; i++ {
		m, ok, ep, err := b.Ctrl.Resolve(p, k)
		if err == nil {
			b.ctrlOK(shard, ep)
			if !ok {
				return controller.Mapping{}, fmt.Errorf("masq: no mapping for vGID %v in VNI %d", k.VGID, k.VNI)
			}
			b.cacheStore(k, m)
			return m, nil
		}
		b.ctrlFail(shard)
		if i >= attempts {
			b.Stats.QueryFailures++
			return controller.Mapping{}, fmt.Errorf("masq: resolving vGID %v in VNI %d (%d attempts): %w", k.VGID, k.VNI, i, err)
		}
		b.Stats.QueryRetries++
		b.Rec.Add("controller.query_retries", 1)
		p.Sleep(backoff)
		backoff = nextBackoff(backoff, limit)
	}
}

// invalidate drops a cache entry (stale-mapping detection).
func (b *Backend) invalidate(k controller.Key) {
	if _, ok := b.cache[k]; ok {
		b.Stats.Invalidations++
		delete(b.cache, k)
	}
}

// mappingLive reports whether the overlay still hosts (vni, vip) at the
// physical address the mapping names. It is the DES stand-in for the
// connection-establishment handshake actually reaching a live peer: a
// mapping pointing at a host the endpoint has left (migration) or a vGID
// that was retired (vBond IP churn) fails here, exactly where a real
// connect would time out.
func (b *Backend) mappingLive(vni uint32, vip packet.IP, m controller.Mapping) bool {
	ep := b.Fab.Lookup(vni, vip)
	return ep != nil && ep.HostIP == m.PIP
}

// ─── Controller-crash survival: epochs, leases, reconciliation ───────────
//
// The controller keeps no persistent state; after a crash its table is
// rebuilt from the edge. Each backend (1) holds its vBonds' registrations
// as leases renewed by StartLeaseRenewal, (2) fences push notifications by
// epoch and sequence number, and (3) funnels all recovery work — lease
// re-assertion after an epoch bump, cache resync after lost pushes, grace
// connection re-validation after an outage — through one reconcile
// process, so recovery actions never interleave.

// Epoch returns the highest controller epoch this backend has observed on
// any shard (zero before first contact).
func (b *Backend) Epoch() uint64 {
	var max uint64
	for _, cs := range b.shards {
		if cs.epoch > max {
			max = cs.epoch
		}
	}
	return max
}

// ShardEpoch returns the highest epoch observed from one controller shard.
func (b *Backend) ShardEpoch(shard int) uint64 { return b.shards[shard].epoch }

// CtrlDown reports the backend's current view of controller liveness: true
// while any controller shard is between a timed-out RPC and its next
// successful contact.
func (b *Backend) CtrlDown() bool {
	for _, cs := range b.shards {
		if cs.down {
			return true
		}
	}
	return false
}

// ShardDown reports one controller shard's liveness view.
func (b *Backend) ShardDown(shard int) bool { return b.shards[shard].down }

// CacheSnapshot copies the mapping cache — masqctl inspection and test
// assertions that cached state agrees with the controller's table.
func (b *Backend) CacheSnapshot() map[controller.Key]controller.Mapping {
	out := make(map[controller.Key]controller.Mapping, len(b.cache))
	for k, e := range b.cache {
		out[k] = e.m
	}
	return out
}

// observeEpoch folds a controller shard's epoch, stamped on an RPC reply or
// push notification, into the backend's view. The first contact just
// records the epoch; any later bump is that shard restarting (or failing
// over): every mapping it knew is gone, so the backend must re-assert the
// registrations it owns and (in push-down mode) resynchronize its slice of
// the cache. Other shards' state is untouched.
func (b *Backend) observeEpoch(shard int, ep uint64) {
	cs := b.shards[shard]
	if ep <= cs.epoch {
		return
	}
	first := cs.epoch == 0
	cs.epoch = ep
	if first {
		return
	}
	b.Stats.EpochBumps++
	cs.needReassert = true
	if b.P.PushDown {
		cs.needResync = true
	}
	// A restarted shard may re-key its slice of the world: warm QPs were
	// pre-staged against the old epoch's view, and shared connections
	// multiplex flows the new incarnation has never vouched for. Drop both
	// (coarse — pools and shared carriers are not keyed by shard).
	b.flushSharedConns()
	b.spawnPoolFlush()
	b.kickReconcile()
}

// ctrlOK records a successful contact with one controller shard: its
// outage (if any) is over, the reply's epoch may reveal a restart, and
// pending recovery work against it can proceed.
func (b *Backend) ctrlOK(shard int, ep uint64) {
	b.shards[shard].down = false
	b.observeEpoch(shard, ep)
	b.kickReconcile()
}

// ctrlFail records a timed-out RPC against one controller shard. While the
// shard is down, grace mode serves its keys from fresh cache entries and
// the reconcile process skips its work (retrying into a dead shard only
// burns time). Other shards keep operating normally.
func (b *Backend) ctrlFail(shard int) { b.shards[shard].down = true }

// pendingReconcile reports whether recovery work is actionable now: any
// reachable shard with reassert/resync work, or any grace connection whose
// owning shard is reachable again.
func (b *Backend) pendingReconcile() bool {
	for _, cs := range b.shards {
		if cs.down {
			continue
		}
		if cs.needReassert || cs.needResync {
			return true
		}
	}
	for _, g := range b.graceConns {
		if !b.shards[b.Ctrl.Owner(g.k)].down {
			return true
		}
	}
	return false
}

// kickReconcile starts the reconciliation process unless it is already
// running or there is nothing actionable. A single process serializes all
// recovery so concurrent triggers — an epoch bump racing a notification
// gap racing a returning outage — cannot interleave their table walks.
func (b *Backend) kickReconcile() {
	if b.reconciling || !b.pendingReconcile() {
		return
	}
	b.reconciling = true
	b.Host.Eng.Spawn("masq.reconcile", func(p *simtime.Proc) {
		defer func() { b.reconciling = false }()
		for b.pendingReconcile() {
			progressed := false
			for shard, cs := range b.shards {
				if cs.down {
					continue
				}
				switch {
				case cs.needReassert:
					cs.needReassert = false
					b.reassert(p, shard)
					progressed = true
				case cs.needResync:
					cs.needResync = false
					b.resync(p, shard)
					progressed = true
				}
			}
			if !progressed {
				b.revalidateGrace(p)
			}
		}
		// If work remains it is because a shard went down again; the next
		// successful contact re-kicks us.
	})
}

// renewBond re-asserts one registration via the lease-renewal RPC to the
// key's owning shard.
func (b *Backend) renewBond(p *simtime.Proc, k controller.Key, m controller.Mapping) bool {
	shard := b.Ctrl.Owner(k)
	ep, err := b.Ctrl.Renew(p, k, m)
	if err != nil {
		b.Stats.LeaseRenewFailures++
		b.ctrlFail(shard)
		return false
	}
	b.Stats.LeaseRenewals++
	b.ctrlOK(shard, ep)
	return true
}

// reassert re-registers every live vBond owned by one (restarted)
// controller shard — the edge-driven half of reconvergence: the union of
// these renewals across all hosts rebuilds that shard's table.
func (b *Backend) reassert(p *simtime.Proc, shard int) {
	for _, vb := range b.bonds {
		k, m, ok := vb.Registration()
		if !ok || b.Ctrl.Owner(k) != shard {
			continue
		}
		if !b.renewBond(p, k, m) {
			// Down again: keep the flag so the next contact retries the
			// whole pass (renewals are idempotent).
			b.shards[shard].needReassert = true
			return
		}
	}
}

// resyncVNIs lists every VNI whose cache content this backend owes a
// resync: push-down-seeded tenants plus anything currently cached.
func (b *Backend) resyncVNIs() []uint32 {
	set := make(map[uint32]bool)
	for vni := range b.seeded {
		set[vni] = true
	}
	for k := range b.cache {
		set[k.VNI] = true
	}
	out := make([]uint32, 0, len(set))
	for vni := range set {
		out = append(out, vni)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resync replays one controller shard's table slice over the cache, one
// charged dump per tenant: entries the shard no longer has are dropped,
// the rest are folded in fresh. Only cache keys the shard owns are
// touched, so a resync against a failed-over shard cannot disturb
// mappings vouched for by healthy shards. It runs after a notification
// gap (lost pushes), after an epoch bump in push-down mode, and as the
// initial push-down seeding.
func (b *Backend) resync(p *simtime.Proc, shard int) {
	cs := b.shards[shard]
	for _, vni := range b.resyncVNIs() {
		dump, ep, err := b.Ctrl.FetchShardDump(p, shard, vni)
		if err != nil {
			cs.needResync = true
			b.ctrlFail(shard)
			return
		}
		// The snapshot supersedes every notification addressed before this
		// instant: record the fence so late deliveries for this VNI cannot
		// regress the cache (see onNotify), and close any seq gap opened
		// by wiped or dropped pushes.
		cs.resyncBase[vni] = cs.sub.Seq()
		if cs.sub.Seq() > cs.notifSeen {
			cs.notifSeen = cs.sub.Seq()
		}
		b.ctrlOK(shard, ep)
		for k := range b.cache {
			if k.VNI != vni || b.Ctrl.Owner(k) != shard {
				continue
			}
			if _, ok := dump[k]; !ok {
				b.invalidate(k)
			}
		}
		for k, m := range dump {
			if b.P.PushDown {
				b.cacheStore(k, m)
			} else if _, ok := b.cache[k]; ok {
				b.cacheStore(k, m)
			}
		}
	}
	b.Stats.Resyncs++
}

// recordGraceConn remembers a connection established on a grace-served
// mapping, for re-validation once the controller returns.
func (b *Backend) recordGraceConn(id ConnID, k controller.Key, m controller.Mapping) {
	if _, ok := b.graceSeen[id]; ok {
		return
	}
	b.graceSeen[id] = struct{}{}
	b.graceConns = append(b.graceConns, graceConn{id: id, k: k, m: m})
}

// revalidateGrace re-checks every grace-established connection against the
// returned controller: if the authoritative mapping still equals the one
// the QPC was programmed with (and the endpoint is live there), the
// connection survives; otherwise RConntrack resets it — the peer moved
// while the controller was dark, so the programmed address is wrong.
func (b *Backend) revalidateGrace(p *simtime.Proc) {
	pending := b.graceConns
	b.graceConns = nil
	for i, g := range pending {
		if !b.CT.Has(g.id) {
			delete(b.graceSeen, g.id)
			continue // already torn down through another path
		}
		shard := b.Ctrl.Owner(g.k)
		if b.shards[shard].down {
			// This connection's owning shard is still dark: keep it queued
			// for the shard's return without blocking the others.
			b.graceConns = append(b.graceConns, g)
			continue
		}
		m, ok, ep, err := b.Ctrl.Resolve(p, g.k)
		if err != nil {
			b.ctrlFail(shard)
			// Down again mid-pass: requeue the unprocessed tail.
			b.graceConns = append(pending[i:], b.graceConns...)
			return
		}
		b.ctrlOK(shard, ep)
		delete(b.graceSeen, g.id)
		if ok && m == g.m && b.mappingLive(g.id.VNI, g.id.DstVIP, m) {
			b.Stats.GraceRevalidated++
			b.cacheStore(g.k, m)
			continue
		}
		b.Stats.GraceResets++
		b.invalidate(g.k)
		b.CT.ResetConn(p, g.id)
	}
}

// StartLeaseRenewal runs the per-host lease-renewal process until the
// given horizon: every LeaseRenewEvery, each live vBond re-asserts its
// registration via Renew against its owning controller shard. Renewal
// waves fan out per shard — bonds are grouped by owner, and a timed-out
// renewal stops hammering only that shard (arming grace mode for its
// keys) while the other shards' renewals proceed. Renewal doubles as the
// backend's failure detector: the first success after an outage reveals
// epoch bumps, and a round whose reply seq is ahead of everything
// received with an empty delivery queue means pushes were lost in
// flight, scheduling a shard-scoped resync. The process is bounded by
// the horizon so Engine.Run still quiesces.
func (b *Backend) StartLeaseRenewal(until simtime.Time) {
	if b.leasing {
		return
	}
	b.leasing = true
	period := b.P.LeaseRenewEvery
	if period <= 0 {
		period = simtime.Ms(1)
	}
	b.Host.Eng.Spawn("masq.lease-renew", func(p *simtime.Proc) {
		for {
			if p.Now().Add(period) > until {
				b.leasing = false
				return
			}
			p.Sleep(period)
			for shard, cs := range b.shards {
				contacted := false
				for _, vb := range b.bonds {
					k, m, ok := vb.Registration()
					if !ok || b.Ctrl.Owner(k) != shard {
						continue
					}
					if !b.renewBond(p, k, m) {
						break // shard down: stop hammering it, try next round
					}
					contacted = true
				}
				if contacted && cs.sub.Seq() > cs.notifSeen && cs.sub.Pending() == 0 {
					// Everything addressed to us should be delivered or
					// still queued; an advanced seq over an empty queue
					// means pushes were dropped in flight. Lease-driven
					// repair: resync this shard's slice.
					b.Stats.NotifyGaps++
					cs.needResync = true
					b.kickReconcile()
				}
			}
		}
	})
}

// Command types crossing the virtio ring (frontend → backend).
type (
	cmdGetDevList struct{}
	cmdOpenDev    struct{}
	cmdCloseDev   struct{}
	cmdAllocPD    struct{}
	cmdDeallocPD  struct{ pd *rnic.PD }
	cmdRegMR      struct {
		sess   *session
		pd     *rnic.PD
		va     uint64
		length int
		gpaExt []mem.Extent
		access rnic.Access
	}
	cmdDeregMR struct {
		sess   *session
		mr     *rnic.MR
		gpaExt []mem.Extent
	}
	cmdCreateCQ struct {
		sess *session
		cqe  int
	}
	cmdDestroyCQ struct{ cq *rnic.CQ }
	cmdCreateSRQ struct {
		sess  *session
		maxWR int
	}
	cmdDestroySRQ struct{ srq *rnic.SRQ }
	cmdCreateQP   struct {
		sess     *session
		pd       *rnic.PD
		scq, rcq *rnic.CQ
		typ      rnic.QPType
		caps     rnic.QPCaps
	}
	cmdDestroyQP struct {
		sess *session
		qp   *rnic.QP
	}
	cmdModifyQP struct {
		sess *session
		qp   *rnic.QP
		attr verbs.Attr
	}
	cmdPostUD struct {
		sess *session
		qp   *rnic.QP
		wr   rnic.SendWR
		dgid packet.GID
		dqpn uint32
	}
)

type resp struct {
	v   any
	err error
}

// session is the backend's per-frontend state.
type session struct {
	vm    *hyper.VM
	vni   uint32
	vbond *VBond
	fn    *rnic.Func

	// owner is the backend currently hosting the session; it changes when
	// the VM live-migrates. Async-event subscriptions on every host the
	// session ever lived on check it so only the current host delivers.
	owner *Backend
	// subs records which backends have hooked this session's async-event
	// delivery, so re-migration onto a previous host does not subscribe a
	// duplicate (which would double-deliver events).
	subs map[*Backend]bool

	// events is the guest-visible async event channel (ibv_get_async_event
	// via the frontend); the backend injects events after the interrupt
	// latency.
	events *simtime.Queue[rnic.AsyncEvent]
	dead   bool

	// Live resources, tracked so Crash can tear the session down without
	// guest cooperation. Slices (not maps) keep teardown order — and thus
	// the simulation — deterministic.
	qps []*rnic.QP
	mrs []sessMR
}

// sessMR remembers what it takes to undo one registration.
type sessMR struct {
	mr  *rnic.MR
	gpa []mem.Extent
}

// NewFrontend plugs a MasQ virtual RoCE device into a VM: it creates the
// virtio ring, the vBond over the VM's vNIC, starts the backend service
// loop, and subscribes RConntrack to the tenant's policy.
func (b *Backend) NewFrontend(vm *hyper.VM, vni uint32) (*Frontend, error) {
	if vm.VNIC == nil {
		return nil, fmt.Errorf("masq: VM %s has no virtual Ethernet interface to bond", vm.Name)
	}
	fn, err := b.fnFor(vni)
	if err != nil {
		return nil, err
	}
	if b.P.QPPoolSize > 0 {
		b.ensurePool(vni, fn)
	}
	tenant := b.Fab.Tenant(vni)
	if tenant == nil {
		return nil, fmt.Errorf("masq: unknown tenant VNI %d", vni)
	}
	b.CT.Watch(tenant)
	if b.P.PushDown && !b.seeded[vni] {
		// Seed the cache with the tenant's pre-existing mappings: the
		// subscription only covers registrations made after the backend
		// was created, so a late-created backend would otherwise miss
		// every earlier endpoint until its first query. Seeding is just
		// the first resync: it pays the charged FetchDump RPC (round trip
		// + per-entry serialization) and fails like any RPC if the
		// controller is unreachable — a later reconciliation retries.
		b.seeded[vni] = true
		for _, cs := range b.shards {
			cs.needResync = true
		}
		b.kickReconcile()
	}

	vbond := NewVBond(vni, vm.VNIC, b.Ctrl, b.physIdentity())
	b.bonds = append(b.bonds, vbond)
	sess := &session{vm: vm, vni: vni, vbond: vbond, fn: fn, owner: b,
		subs:   make(map[*Backend]bool),
		events: simtime.NewQueue[rnic.AsyncEvent](b.Host.Eng)}
	b.subscribeSession(sess)
	ring := b.serveRing(vm.Name)
	return &Frontend{b: b, sess: sess, ring: ring}, nil
}

// subscribeSession hooks a session's guest-visible async-event delivery to
// this backend's device (once per backend, surviving re-migration). QP
// fatals are steered to the owning session only, port state changes fan out
// to every guest on the device, each delivery pays the injection latency —
// and nothing is delivered from hosts the session has migrated away from.
func (b *Backend) subscribeSession(sess *session) {
	if sess.subs[b] {
		return
	}
	sess.subs[b] = true
	b.Host.Dev.SubscribeAsync(func(ev rnic.AsyncEvent) {
		if sess.dead || sess.owner != b {
			return
		}
		if ev.Type == rnic.EventQPFatal && b.qpOwner[ev.QPN] != sess {
			return
		}
		b.Host.Eng.After(b.VIO.IRQCost, func() { sess.events.Put(ev) })
	})
}

// serveRing builds the frontend↔backend virtio ring and starts its service
// loop on this backend.
func (b *Backend) serveRing(vmName string) *virtio.Ring {
	ring := virtio.NewRing(b.Host.Eng, b.VIO)
	ring.Rec = b.Rec
	ring.Serve("masq-backend:"+vmName, func(p *simtime.Proc, cmd any) any {
		return b.handle(p, cmd)
	})
	return ring
}

// cmdName labels a forwarded command for tracing.
func cmdName(cmd any) string {
	switch cmd.(type) {
	case cmdGetDevList:
		return "get_device_list"
	case cmdOpenDev:
		return "open_device"
	case cmdCloseDev:
		return "close_device"
	case cmdAllocPD:
		return "alloc_pd"
	case cmdDeallocPD:
		return "dealloc_pd"
	case cmdRegMR:
		return "reg_mr"
	case cmdDeregMR:
		return "dereg_mr"
	case cmdCreateCQ:
		return "create_cq"
	case cmdDestroyCQ:
		return "destroy_cq"
	case cmdCreateSRQ:
		return "create_srq"
	case cmdDestroySRQ:
		return "destroy_srq"
	case cmdCreateQP:
		return "create_qp"
	case cmdDestroyQP:
		return "destroy_qp"
	case cmdModifyQP:
		return "modify_qp"
	case cmdPostUD:
		return "post_ud"
	}
	return "unknown"
}

// handle executes one forwarded command on the host.
func (b *Backend) handle(p *simtime.Proc, cmd any) any {
	sp := b.Rec.Begin(p, trace.LayerMasqBackend, cmdName(cmd))
	defer sp.End(p)
	dev := b.Host.Dev
	switch c := cmd.(type) {
	case cmdGetDevList:
		dev.GetDeviceList(p)
		return resp{}
	case cmdOpenDev:
		dev.Open(p)
		return resp{}
	case cmdCloseDev:
		dev.Close(p)
		return resp{}
	case cmdAllocPD:
		return resp{v: dev.AllocPD(p, nil)}
	case cmdDeallocPD:
		dev.DeallocPD(p, c.pd)
		return resp{}
	case cmdRegMR:
		// Finish the pinning walk: the frontend pinned GVA→GPA; the
		// backend pins GPA→HVA→HPA and programs the MTT (Appendix B).
		var hpa []mem.Extent
		for _, e := range c.gpaExt {
			sub, err := c.sess.vm.GPA.PinToPhys(e.Addr, e.Len)
			if err != nil {
				return resp{err: err}
			}
			hpa = append(hpa, sub...)
		}
		mr := dev.RegMR(p, c.sess.fn, c.pd, c.va, c.length, hpa, c.access)
		c.sess.mrs = append(c.sess.mrs, sessMR{mr: mr, gpa: c.gpaExt})
		return resp{v: mr}
	case cmdDeregMR:
		dev.DeregMR(p, nil, c.mr)
		for i, r := range c.sess.mrs {
			if r.mr == c.mr {
				c.sess.mrs = append(c.sess.mrs[:i], c.sess.mrs[i+1:]...)
				break
			}
		}
		for _, e := range c.gpaExt {
			if err := c.sess.vm.GPA.UnpinToPhys(e.Addr, e.Len); err != nil {
				return resp{err: err}
			}
		}
		return resp{}
	case cmdCreateCQ:
		if pool := b.pools[c.sess.vni]; pool != nil {
			if cq := pool.takeCQ(c.cqe); cq != nil {
				p.Sleep(b.P.PoolReuseCost)
				b.Stats.PoolHits++
				pool.noteTake(p.Now())
				return resp{v: cq}
			}
			b.Stats.PoolMisses++
		}
		return resp{v: dev.CreateCQ(p, c.sess.fn, c.cqe)}
	case cmdDestroyCQ:
		dev.DestroyCQ(p, nil, c.cq)
		return resp{}
	case cmdCreateSRQ:
		return resp{v: dev.CreateSRQ(p, c.sess.fn, c.maxWR)}
	case cmdDestroySRQ:
		dev.DestroySRQ(p, nil, c.srq)
		return resp{}
	case cmdCreateQP:
		if pool := b.pools[c.sess.vni]; pool != nil && c.typ == rnic.RC {
			if qp := pool.takeQP(); qp != nil {
				p.Sleep(b.P.PoolReuseCost)
				if err := qp.Rebind(c.pd, c.scq, c.rcq, c.caps); err != nil {
					return resp{err: err}
				}
				b.Stats.PoolHits++
				// The pooled QP is already in INIT with its source
				// addressing latched; modifyQP skips the guest's INIT verb.
				b.pooledInit[qp.Num] = true
				b.qpOwner[qp.Num] = c.sess
				c.sess.qps = append(c.sess.qps, qp)
				pool.noteTake(p.Now())
				return resp{v: qp}
			}
			b.Stats.PoolMisses++
		}
		qp := dev.CreateQP(p, c.sess.fn, c.pd, c.scq, c.rcq, c.typ, c.caps)
		b.qpOwner[qp.Num] = c.sess
		c.sess.qps = append(c.sess.qps, qp)
		return resp{v: qp}
	case cmdDestroyQP:
		b.CT.Delete(p, c.qp.Num)
		delete(b.qpOwner, c.qp.Num)
		delete(b.pooledInit, c.qp.Num)
		b.sharedDetach(c.qp.Num)
		for i, qp := range c.sess.qps {
			if qp == c.qp {
				c.sess.qps = append(c.sess.qps[:i], c.sess.qps[i+1:]...)
				break
			}
		}
		dev.DestroyQP(p, c.qp)
		return resp{}
	case cmdModifyQP:
		return resp{err: b.modifyQP(p, c)}
	case cmdPostUD:
		return resp{err: b.postUD(p, c)}
	}
	return resp{err: fmt.Errorf("masq: unknown backend command %T", cmd)}
}

// modifyQP is where RConnrename and RConntrack intercept the control path.
func (b *Backend) modifyQP(p *simtime.Proc, c cmdModifyQP) error {
	a := c.attr
	attr := rnic.Attr{ToState: a.ToState, QKey: a.QKey}
	if a.ToState == rnic.StateRTR && c.qp.Type == rnic.RC && (a.DQPN == 0 || a.DGID.IsZero()) {
		// A connected QP cannot reach RTR without a complete remote
		// address; programming it half-configured would only fail later
		// on the wire.
		return fmt.Errorf("masq: modify_qp(RTR) on RC QP %d: malformed address vector (DGID %v, DQPN %d)",
			c.qp.Num, a.DGID, a.DQPN)
	}
	if a.ToState == rnic.StateRTR && a.DQPN != 0 && !a.DGID.IsZero() {
		dstIP, _ := a.DGID.IP()
		id := ConnID{VNI: c.sess.vni, SrcVIP: c.sess.vbond.VIP(), DstVIP: dstIP, QPN: c.qp.Num}
		if err := b.CT.Validate(p, id); err != nil {
			return err
		}
		sp := b.Rec.Begin(p, trace.LayerRConnrename, "rename")
		err := b.renameRTR(p, c, a, attr, id, dstIP)
		sp.End(p)
		return err
	}
	if a.ToState == rnic.StateInit && b.pooledInit[c.qp.Num] {
		// Pooled QP: the refiller pre-applied INIT on the same function, so
		// the guest's verb is satisfied by bookkeeping instead of firmware.
		delete(b.pooledInit, c.qp.Num)
		p.Sleep(b.P.PoolReuseCost)
		return nil
	}
	if a.ToState == rnic.StateRTS {
		if fl, ok := b.sharedFlows[c.qp.Num]; ok && fl.attached {
			// Attached flow of a shared connection: the carrier already paid
			// the firmware RTS; this flow's QPC flips in host memory.
			return b.Host.Dev.SoftModify(p, c.qp, attr, b.P.SharedAttachCost)
		}
	}
	return b.Host.Dev.ModifyQP(p, c.qp, attr)
}

// renameRTR resolves the virtual destination, handles stale mappings, and
// programs the QPC with physical addressing — the RConnrename core.
func (b *Backend) renameRTR(p *simtime.Proc, c cmdModifyQP, a verbs.Attr, attr rnic.Attr, id ConnID, dstIP packet.IP) error {
	k := controller.Key{VNI: c.sess.vni, VGID: a.DGID}
	m, graced, err := b.resolveGID(p, c.sess.vni, a.DGID)
	if err != nil {
		return err
	}
	if !b.mappingLive(c.sess.vni, dstIP, m) {
		// Establishment toward the resolved address fails: the peer
		// moved (migration) or retired its vGID before our
		// invalidation arrived. Pay the detection timeout, drop the
		// stale entry, re-query the controller, and retry the rename
		// once — this is what makes live migration + reconnect
		// correct under delayed invalidation.
		b.Stats.StaleRenames++
		b.Rec.Add("rconnrename.stale", 1)
		p.Sleep(b.P.StaleDetectCost)
		b.invalidate(k)
		if m, err = b.lookupWithRetry(p, k); err != nil {
			return err
		}
		if !b.mappingLive(c.sess.vni, dstIP, m) {
			b.invalidate(k)
			return fmt.Errorf("masq: mapping for vGID %v in VNI %d is stale even after re-query", a.DGID, c.sess.vni)
		}
	}
	// The rename: the application's QPC view keeps the virtual GID;
	// the hardware sees only physical addresses.
	b.Stats.Renames++
	b.Rec.Add("rconnrename.renames", 1)
	attr.AV = rnic.AddressVector{DGID: m.PGID, DIP: m.PIP, DMAC: m.PMAC, DQPN: a.DQPN}
	if b.Mode == ModeVFShared {
		if err := b.sharedRTR(p, c.qp, c.sess.vni, m, attr); err != nil {
			return err
		}
	} else if err := b.Host.Dev.ModifyQP(p, c.qp, attr); err != nil {
		return err
	}
	b.CT.Insert(p, id, c.qp)
	if graced {
		// Established on the controller's old word: once it is reachable
		// again, the reconcile process re-validates this connection and
		// resets it if the mapping changed during the outage.
		b.recordGraceConn(id, k, m)
	}
	return nil
}

// Crash models abrupt VM death for one frontend: no guest cooperation, no
// application-assisted teardown. The host driver erases the RConntrack
// state of every QP the session owns, destroys the QPs, deregisters and
// unpins the session's MRs, and withdraws the vBond's (VNI, vGID) mapping
// from the controller — nothing of the tenant's connection state may
// outlive the VM. Surviving peers are not told: they discover the death
// through retry exhaustion and the resulting fatal async event.
func (b *Backend) Crash(p *simtime.Proc, f *Frontend) {
	sess := f.sess
	if sess.dead {
		return
	}
	sess.dead = true
	b.Stats.Crashes++
	dev := b.Host.Dev
	for _, qp := range sess.qps {
		b.CT.Delete(p, qp.Num)
		delete(b.qpOwner, qp.Num)
		delete(b.pooledInit, qp.Num)
		b.sharedDetach(qp.Num)
		dev.DestroyQP(p, qp)
	}
	sess.qps = nil
	for _, r := range sess.mrs {
		dev.DeregMR(p, nil, r.mr)
		for _, e := range r.gpa {
			// Best effort: the VM's address space dies with it anyway.
			_ = sess.vm.GPA.UnpinToPhys(e.Addr, e.Len)
		}
	}
	sess.mrs = nil
	// Warm QPs pre-created for the dead VM's tenant must not survive it:
	// flush the VNI's pool (the refiller rebuilds for surviving frontends).
	if pool := b.pools[sess.vni]; pool != nil {
		b.flushPool(p, pool)
	}
	sess.vbond.Shutdown()
}

// postUD renames and posts a datagram WQE that the frontend routed through
// the control path (Sec. 3.3.4).
func (b *Backend) postUD(p *simtime.Proc, c cmdPostUD) error {
	dstIP, _ := c.dgid.IP()
	id := ConnID{VNI: c.sess.vni, SrcVIP: c.sess.vbond.VIP(), DstVIP: dstIP, QPN: c.qp.Num}
	if err := b.CT.Validate(p, id); err != nil {
		return err
	}
	m, _, err := b.resolveGID(p, c.sess.vni, c.dgid)
	if err != nil {
		return err
	}
	wr := c.wr
	wr.Remote = &rnic.AddressVector{DGID: m.PGID, DIP: m.PIP, DMAC: m.PMAC, DQPN: c.dqpn}
	return c.qp.PostSend(p, wr)
}
