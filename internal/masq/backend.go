package masq

import (
	"fmt"

	"masq/internal/controller"
	"masq/internal/hyper"
	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
	"masq/internal/verbs"
	"masq/internal/virtio"
)

// Backend is MasQ's host-side driver: one per host. It executes forwarded
// control-path commands on the RNIC, applies RConnrename and RConntrack,
// and implements the QoS grouping policy that maps tenants onto VFs.
type Backend struct {
	P    Params
	Mode Mode

	Host *hyper.Host
	Ctrl *controller.Controller
	Fab  *overlay.Fabric
	CT   *RConntrack

	VIO virtio.Params

	// Rec, when set, records backend command handling, RConnrename and
	// RConntrack work as trace spans. Nil is valid and free.
	Rec *trace.Recorder

	cache   map[controller.Key]controller.Mapping
	tenants map[uint32]*rnic.Func // QoS grouping: tenant → VF
	qpOwner map[uint32]*session   // QPN → owning frontend (wire diagnosis)
	Stats   struct {
		CacheHits, CacheMisses uint64
		Renames                uint64

		// Control-plane robustness accounting.
		QueryRetries  uint64 // controller lookups repeated after a timeout
		QueryFailures uint64 // resolutions abandoned after the retry budget
		StaleRenames  uint64 // establishments that hit a stale cached mapping
		Invalidations uint64 // cache entries dropped (push or stale detection)

		// Failure-chain accounting.
		FatalEvents   uint64 // QP-fatal async events on QPs this backend owns
		AsyncCleanups uint64 // RConntrack erasures triggered by fatal events
		Crashes       uint64 // VMs torn down by Crash
	}
}

// NewBackend creates the host driver and hooks it to the controller.
func NewBackend(host *hyper.Host, ctrl *controller.Controller, fab *overlay.Fabric, p Params, mode Mode) *Backend {
	b := &Backend{
		P:       p,
		Mode:    mode,
		Host:    host,
		Ctrl:    ctrl,
		Fab:     fab,
		CT:      NewRConntrack(p, host.Dev),
		VIO:     virtio.DefaultParams(),
		cache:   make(map[controller.Key]controller.Mapping),
		tenants: make(map[uint32]*rnic.Func),
		qpOwner: make(map[uint32]*session),
	}
	// The failure-reaction chain, backend half: when the RNIC moves an
	// owned QP to ERROR on its own (retry exhaustion — typically a dead or
	// partitioned peer), the connection no longer exists, so its
	// RConntrack state is erased without waiting for the guest to destroy
	// the QP. The erase runs as a proc to pay the delete cost; it is
	// idempotent against the guest's own destroy_qp racing it.
	host.Dev.SubscribeAsync(func(ev rnic.AsyncEvent) {
		if ev.Type != rnic.EventQPFatal {
			return
		}
		if _, ok := b.qpOwner[ev.QPN]; !ok {
			return
		}
		b.Stats.FatalEvents++
		qpn := ev.QPN
		host.Eng.Spawn("masq.fatal-cleanup", func(p *simtime.Proc) {
			b.Stats.AsyncCleanups++
			b.CT.Delete(p, qpn)
		})
	})
	ctrl.Subscribe(func(k controller.Key, m controller.Mapping, removed bool) {
		if removed {
			if _, ok := b.cache[k]; ok {
				b.Stats.Invalidations++
			}
			delete(b.cache, k)
			return
		}
		if b.P.PushDown {
			b.cache[k] = m // controller pushes mappings down in advance
		} else if _, ok := b.cache[k]; ok {
			b.cache[k] = m // keep cached entries fresh
		}
	})
	return b
}

// SetRecorder attaches a trace recorder to the backend and its conntrack.
// It must be called before NewFrontend so the virtio ring picks it up.
func (b *Backend) SetRecorder(r *trace.Recorder) {
	b.Rec = r
	b.CT.rec = r
}

// physIdentity is the mapping vBond registers for endpoints on this host:
// the RNIC's physical addressing (footnote 2 of the paper: source
// addresses are always the physical ones).
func (b *Backend) physIdentity() controller.Mapping {
	return controller.Mapping{
		PGID: packet.GIDFromIP(b.Host.IP),
		PIP:  b.Host.IP,
		PMAC: b.Host.MAC,
	}
}

// fnFor applies the QP-grouping policy: in VF mode each tenant gets a
// dedicated VF (and thereby a hardware rate limiter); PF mode is
// best-effort on the physical function.
func (b *Backend) fnFor(vni uint32) (*rnic.Func, error) {
	if b.Mode == ModePF {
		return b.Host.Dev.PF(), nil
	}
	if fn, ok := b.tenants[vni]; ok {
		return fn, nil
	}
	fn, err := b.Host.Dev.AddVF()
	if err != nil {
		return nil, fmt.Errorf("masq: no VF for tenant %d: %w", vni, err)
	}
	// MasQ VFs are not passed through: they keep the host's network
	// identity and need no IOMMU (the backend programs HPAs directly).
	fn.SetAddr(b.Host.IP, b.Host.MAC)
	fn.IOMMU = false
	b.tenants[vni] = fn
	return fn, nil
}

// SetTenantRateLimit installs a QoS policy on the tenant's QP group.
func (b *Backend) SetTenantRateLimit(vni uint32, bps float64) error {
	fn, err := b.fnFor(vni)
	if err != nil {
		return err
	}
	fn.SetRateLimit(bps)
	return nil
}

// WireInfo is the Sec. 5 diagnosis feature: underlay packets carry only
// physical addresses, but operators sometimes need the overlay identity
// behind a flow. Given the destination QPN observed in a packet addressed
// to this host, WireInfo returns the tenant and virtual IP it belongs to
// ("maintaining a mapping table between the (physical IP, QPN) and the
// virtual IP" — no extra headers needed, so no MTU tax).
func (b *Backend) WireInfo(qpn uint32) (vni uint32, vip packet.IP, ok bool) {
	sess, ok := b.qpOwner[qpn]
	if !ok {
		return 0, packet.IP{}, false
	}
	return sess.vni, sess.vbond.VIP(), true
}

// resolveGID is RConnrename's mapping lookup: local cache first, then the
// controller (with retry/backoff under control-plane faults).
func (b *Backend) resolveGID(p *simtime.Proc, vni uint32, vgid packet.GID) (controller.Mapping, error) {
	k := controller.Key{VNI: vni, VGID: vgid}
	sp := b.Rec.Begin(p, trace.LayerRConnrename, "cache_lookup")
	p.Sleep(b.P.CacheLookupCost)
	m, ok := b.cache[k]
	sp.End(p)
	if ok {
		b.Stats.CacheHits++
		b.Rec.Add("rconnrename.cache_hits", 1)
		return m, nil
	}
	b.Stats.CacheMisses++
	b.Rec.Add("rconnrename.cache_misses", 1)
	return b.lookupWithRetry(p, k)
}

// lookupWithRetry queries the controller directly (no cache read), backing
// off exponentially while queries time out, and caches the answer.
func (b *Backend) lookupWithRetry(p *simtime.Proc, k controller.Key) (controller.Mapping, error) {
	attempts := b.P.QueryRetries
	if attempts < 1 {
		attempts = 1
	}
	backoff := b.P.RetryBackoff
	for i := 1; ; i++ {
		m, ok, err := b.Ctrl.Lookup(p, k)
		if err == nil {
			if !ok {
				return controller.Mapping{}, fmt.Errorf("masq: no mapping for vGID %v in VNI %d", k.VGID, k.VNI)
			}
			b.cache[k] = m
			return m, nil
		}
		if i >= attempts {
			b.Stats.QueryFailures++
			return controller.Mapping{}, fmt.Errorf("masq: resolving vGID %v in VNI %d (%d attempts): %w", k.VGID, k.VNI, i, err)
		}
		b.Stats.QueryRetries++
		b.Rec.Add("controller.query_retries", 1)
		p.Sleep(backoff)
		backoff *= 2
	}
}

// invalidate drops a cache entry (stale-mapping detection).
func (b *Backend) invalidate(k controller.Key) {
	if _, ok := b.cache[k]; ok {
		b.Stats.Invalidations++
		delete(b.cache, k)
	}
}

// mappingLive reports whether the overlay still hosts (vni, vip) at the
// physical address the mapping names. It is the DES stand-in for the
// connection-establishment handshake actually reaching a live peer: a
// mapping pointing at a host the endpoint has left (migration) or a vGID
// that was retired (vBond IP churn) fails here, exactly where a real
// connect would time out.
func (b *Backend) mappingLive(vni uint32, vip packet.IP, m controller.Mapping) bool {
	ep := b.Fab.Lookup(vni, vip)
	return ep != nil && ep.HostIP == m.PIP
}

// Command types crossing the virtio ring (frontend → backend).
type (
	cmdGetDevList struct{}
	cmdOpenDev    struct{}
	cmdCloseDev   struct{}
	cmdAllocPD    struct{}
	cmdDeallocPD  struct{ pd *rnic.PD }
	cmdRegMR      struct {
		sess   *session
		pd     *rnic.PD
		va     uint64
		length int
		gpaExt []mem.Extent
		access rnic.Access
	}
	cmdDeregMR struct {
		sess   *session
		mr     *rnic.MR
		gpaExt []mem.Extent
	}
	cmdCreateCQ struct {
		sess *session
		cqe  int
	}
	cmdDestroyCQ struct{ cq *rnic.CQ }
	cmdCreateSRQ struct {
		sess  *session
		maxWR int
	}
	cmdDestroySRQ struct{ srq *rnic.SRQ }
	cmdCreateQP   struct {
		sess     *session
		pd       *rnic.PD
		scq, rcq *rnic.CQ
		typ      rnic.QPType
		caps     rnic.QPCaps
	}
	cmdDestroyQP struct {
		sess *session
		qp   *rnic.QP
	}
	cmdModifyQP struct {
		sess *session
		qp   *rnic.QP
		attr verbs.Attr
	}
	cmdPostUD struct {
		sess *session
		qp   *rnic.QP
		wr   rnic.SendWR
		dgid packet.GID
		dqpn uint32
	}
)

type resp struct {
	v   any
	err error
}

// session is the backend's per-frontend state.
type session struct {
	vm    *hyper.VM
	vni   uint32
	vbond *VBond
	fn    *rnic.Func

	// events is the guest-visible async event channel (ibv_get_async_event
	// via the frontend); the backend injects events after the interrupt
	// latency.
	events *simtime.Queue[rnic.AsyncEvent]
	dead   bool

	// Live resources, tracked so Crash can tear the session down without
	// guest cooperation. Slices (not maps) keep teardown order — and thus
	// the simulation — deterministic.
	qps []*rnic.QP
	mrs []sessMR
}

// sessMR remembers what it takes to undo one registration.
type sessMR struct {
	mr  *rnic.MR
	gpa []mem.Extent
}

// NewFrontend plugs a MasQ virtual RoCE device into a VM: it creates the
// virtio ring, the vBond over the VM's vNIC, starts the backend service
// loop, and subscribes RConntrack to the tenant's policy.
func (b *Backend) NewFrontend(vm *hyper.VM, vni uint32) (*Frontend, error) {
	if vm.VNIC == nil {
		return nil, fmt.Errorf("masq: VM %s has no virtual Ethernet interface to bond", vm.Name)
	}
	fn, err := b.fnFor(vni)
	if err != nil {
		return nil, err
	}
	tenant := b.Fab.Tenant(vni)
	if tenant == nil {
		return nil, fmt.Errorf("masq: unknown tenant VNI %d", vni)
	}
	b.CT.Watch(tenant)
	if b.P.PushDown {
		// Seed the cache with the tenant's pre-existing mappings: the
		// subscription only covers registrations made after the backend
		// was created, so a late-created backend would otherwise miss
		// every earlier endpoint until its first query.
		for k, m := range b.Ctrl.Dump(vni) {
			b.cache[k] = m
		}
	}

	vbond := NewVBond(vni, vm.VNIC, b.Ctrl, b.physIdentity())
	sess := &session{vm: vm, vni: vni, vbond: vbond, fn: fn,
		events: simtime.NewQueue[rnic.AsyncEvent](b.Host.Eng)}
	// Async events reach the guest like any other device interrupt: QP
	// fatals are steered to the owning session only, port state changes
	// fan out to every guest on the device, and each delivery pays the
	// injection latency.
	b.Host.Dev.SubscribeAsync(func(ev rnic.AsyncEvent) {
		if sess.dead {
			return
		}
		if ev.Type == rnic.EventQPFatal && b.qpOwner[ev.QPN] != sess {
			return
		}
		b.Host.Eng.After(b.VIO.IRQCost, func() { sess.events.Put(ev) })
	})
	ring := virtio.NewRing(b.Host.Eng, b.VIO)
	ring.Rec = b.Rec
	ring.Serve("masq-backend:"+vm.Name, func(p *simtime.Proc, cmd any) any {
		return b.handle(p, cmd)
	})
	return &Frontend{b: b, sess: sess, ring: ring}, nil
}

// cmdName labels a forwarded command for tracing.
func cmdName(cmd any) string {
	switch cmd.(type) {
	case cmdGetDevList:
		return "get_device_list"
	case cmdOpenDev:
		return "open_device"
	case cmdCloseDev:
		return "close_device"
	case cmdAllocPD:
		return "alloc_pd"
	case cmdDeallocPD:
		return "dealloc_pd"
	case cmdRegMR:
		return "reg_mr"
	case cmdDeregMR:
		return "dereg_mr"
	case cmdCreateCQ:
		return "create_cq"
	case cmdDestroyCQ:
		return "destroy_cq"
	case cmdCreateSRQ:
		return "create_srq"
	case cmdDestroySRQ:
		return "destroy_srq"
	case cmdCreateQP:
		return "create_qp"
	case cmdDestroyQP:
		return "destroy_qp"
	case cmdModifyQP:
		return "modify_qp"
	case cmdPostUD:
		return "post_ud"
	}
	return "unknown"
}

// handle executes one forwarded command on the host.
func (b *Backend) handle(p *simtime.Proc, cmd any) any {
	sp := b.Rec.Begin(p, trace.LayerMasqBackend, cmdName(cmd))
	defer sp.End(p)
	dev := b.Host.Dev
	switch c := cmd.(type) {
	case cmdGetDevList:
		dev.GetDeviceList(p)
		return resp{}
	case cmdOpenDev:
		dev.Open(p)
		return resp{}
	case cmdCloseDev:
		dev.Close(p)
		return resp{}
	case cmdAllocPD:
		return resp{v: dev.AllocPD(p, nil)}
	case cmdDeallocPD:
		dev.DeallocPD(p, c.pd)
		return resp{}
	case cmdRegMR:
		// Finish the pinning walk: the frontend pinned GVA→GPA; the
		// backend pins GPA→HVA→HPA and programs the MTT (Appendix B).
		var hpa []mem.Extent
		for _, e := range c.gpaExt {
			sub, err := c.sess.vm.GPA.PinToPhys(e.Addr, e.Len)
			if err != nil {
				return resp{err: err}
			}
			hpa = append(hpa, sub...)
		}
		mr := dev.RegMR(p, c.sess.fn, c.pd, c.va, c.length, hpa, c.access)
		c.sess.mrs = append(c.sess.mrs, sessMR{mr: mr, gpa: c.gpaExt})
		return resp{v: mr}
	case cmdDeregMR:
		dev.DeregMR(p, nil, c.mr)
		for i, r := range c.sess.mrs {
			if r.mr == c.mr {
				c.sess.mrs = append(c.sess.mrs[:i], c.sess.mrs[i+1:]...)
				break
			}
		}
		for _, e := range c.gpaExt {
			if err := c.sess.vm.GPA.UnpinToPhys(e.Addr, e.Len); err != nil {
				return resp{err: err}
			}
		}
		return resp{}
	case cmdCreateCQ:
		return resp{v: dev.CreateCQ(p, c.sess.fn, c.cqe)}
	case cmdDestroyCQ:
		dev.DestroyCQ(p, nil, c.cq)
		return resp{}
	case cmdCreateSRQ:
		return resp{v: dev.CreateSRQ(p, c.sess.fn, c.maxWR)}
	case cmdDestroySRQ:
		dev.DestroySRQ(p, nil, c.srq)
		return resp{}
	case cmdCreateQP:
		qp := dev.CreateQP(p, c.sess.fn, c.pd, c.scq, c.rcq, c.typ, c.caps)
		b.qpOwner[qp.Num] = c.sess
		c.sess.qps = append(c.sess.qps, qp)
		return resp{v: qp}
	case cmdDestroyQP:
		b.CT.Delete(p, c.qp.Num)
		delete(b.qpOwner, c.qp.Num)
		for i, qp := range c.sess.qps {
			if qp == c.qp {
				c.sess.qps = append(c.sess.qps[:i], c.sess.qps[i+1:]...)
				break
			}
		}
		dev.DestroyQP(p, c.qp)
		return resp{}
	case cmdModifyQP:
		return resp{err: b.modifyQP(p, c)}
	case cmdPostUD:
		return resp{err: b.postUD(p, c)}
	}
	return resp{err: fmt.Errorf("masq: unknown backend command %T", cmd)}
}

// modifyQP is where RConnrename and RConntrack intercept the control path.
func (b *Backend) modifyQP(p *simtime.Proc, c cmdModifyQP) error {
	a := c.attr
	attr := rnic.Attr{ToState: a.ToState, QKey: a.QKey}
	if a.ToState == rnic.StateRTR && c.qp.Type == rnic.RC && (a.DQPN == 0 || a.DGID.IsZero()) {
		// A connected QP cannot reach RTR without a complete remote
		// address; programming it half-configured would only fail later
		// on the wire.
		return fmt.Errorf("masq: modify_qp(RTR) on RC QP %d: malformed address vector (DGID %v, DQPN %d)",
			c.qp.Num, a.DGID, a.DQPN)
	}
	if a.ToState == rnic.StateRTR && a.DQPN != 0 && !a.DGID.IsZero() {
		dstIP, _ := a.DGID.IP()
		id := ConnID{VNI: c.sess.vni, SrcVIP: c.sess.vbond.VIP(), DstVIP: dstIP, QPN: c.qp.Num}
		if err := b.CT.Validate(p, id); err != nil {
			return err
		}
		sp := b.Rec.Begin(p, trace.LayerRConnrename, "rename")
		err := b.renameRTR(p, c, a, attr, id, dstIP)
		sp.End(p)
		return err
	}
	return b.Host.Dev.ModifyQP(p, c.qp, attr)
}

// renameRTR resolves the virtual destination, handles stale mappings, and
// programs the QPC with physical addressing — the RConnrename core.
func (b *Backend) renameRTR(p *simtime.Proc, c cmdModifyQP, a verbs.Attr, attr rnic.Attr, id ConnID, dstIP packet.IP) error {
	k := controller.Key{VNI: c.sess.vni, VGID: a.DGID}
	m, err := b.resolveGID(p, c.sess.vni, a.DGID)
	if err != nil {
		return err
	}
	if !b.mappingLive(c.sess.vni, dstIP, m) {
		// Establishment toward the resolved address fails: the peer
		// moved (migration) or retired its vGID before our
		// invalidation arrived. Pay the detection timeout, drop the
		// stale entry, re-query the controller, and retry the rename
		// once — this is what makes live migration + reconnect
		// correct under delayed invalidation.
		b.Stats.StaleRenames++
		b.Rec.Add("rconnrename.stale", 1)
		p.Sleep(b.P.StaleDetectCost)
		b.invalidate(k)
		if m, err = b.lookupWithRetry(p, k); err != nil {
			return err
		}
		if !b.mappingLive(c.sess.vni, dstIP, m) {
			b.invalidate(k)
			return fmt.Errorf("masq: mapping for vGID %v in VNI %d is stale even after re-query", a.DGID, c.sess.vni)
		}
	}
	// The rename: the application's QPC view keeps the virtual GID;
	// the hardware sees only physical addresses.
	b.Stats.Renames++
	b.Rec.Add("rconnrename.renames", 1)
	attr.AV = rnic.AddressVector{DGID: m.PGID, DIP: m.PIP, DMAC: m.PMAC, DQPN: a.DQPN}
	if err := b.Host.Dev.ModifyQP(p, c.qp, attr); err != nil {
		return err
	}
	b.CT.Insert(p, id, c.qp)
	return nil
}

// Crash models abrupt VM death for one frontend: no guest cooperation, no
// application-assisted teardown. The host driver erases the RConntrack
// state of every QP the session owns, destroys the QPs, deregisters and
// unpins the session's MRs, and withdraws the vBond's (VNI, vGID) mapping
// from the controller — nothing of the tenant's connection state may
// outlive the VM. Surviving peers are not told: they discover the death
// through retry exhaustion and the resulting fatal async event.
func (b *Backend) Crash(p *simtime.Proc, f *Frontend) {
	sess := f.sess
	if sess.dead {
		return
	}
	sess.dead = true
	b.Stats.Crashes++
	dev := b.Host.Dev
	for _, qp := range sess.qps {
		b.CT.Delete(p, qp.Num)
		delete(b.qpOwner, qp.Num)
		dev.DestroyQP(p, qp)
	}
	sess.qps = nil
	for _, r := range sess.mrs {
		dev.DeregMR(p, nil, r.mr)
		for _, e := range r.gpa {
			// Best effort: the VM's address space dies with it anyway.
			_ = sess.vm.GPA.UnpinToPhys(e.Addr, e.Len)
		}
	}
	sess.mrs = nil
	sess.vbond.Shutdown()
}

// postUD renames and posts a datagram WQE that the frontend routed through
// the control path (Sec. 3.3.4).
func (b *Backend) postUD(p *simtime.Proc, c cmdPostUD) error {
	dstIP, _ := c.dgid.IP()
	id := ConnID{VNI: c.sess.vni, SrcVIP: c.sess.vbond.VIP(), DstVIP: dstIP, QPN: c.qp.Num}
	if err := b.CT.Validate(p, id); err != nil {
		return err
	}
	m, err := b.resolveGID(p, c.sess.vni, c.dgid)
	if err != nil {
		return err
	}
	wr := c.wr
	wr.Remote = &rnic.AddressVector{DGID: m.PGID, DIP: m.PIP, DMAC: m.PMAC, DQPN: c.dqpn}
	return c.qp.PostSend(p, wr)
}
