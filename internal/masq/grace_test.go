package masq

// Controller-outage survival at the backend level: grace-mode renames,
// post-outage re-validation, and the lease-renewal audit that repairs
// dropped push notifications. The cluster-level TestCtrlCrashSoak runs the
// same machinery under live traffic; these tests pin the exact state
// transitions.

import (
	"testing"

	"masq/internal/controller"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// TestGraceConnSurvivesOutageAndStaysWatched establishes a connection
// while the controller is dark — served from the grace cache — and checks
// the full aftermath: once the controller restarts, the reconcile process
// re-validates the connection (mapping unchanged → it lives), and the
// RConntrack Watch subscription is still in force, so a later rule
// revocation resets the very same connection.
func TestGraceConnSurvivesOutageAndStaysWatched(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	rule := tenant.Policy.AddRule(overlay.Rule{
		Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow,
	})
	b.be.P.PushDown = true
	b.be.P.GraceTTL = simtime.Ms(10)
	b.be.P.LeaseRenewEvery = simtime.Us(200)

	vm1, err := b.host.NewVM("vm1", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fe1, err := b.be.NewFrontend(vm1, 100)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := b.host.NewVM("vm2", 1<<30, 100, packet.NewIP(192, 168, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.be.NewFrontend(vm2, 100); err != nil {
		t.Fatal(err)
	}
	b.be.StartLeaseRenewal(simtime.Time(simtime.Ms(20)))

	// Outage window [1ms, 6ms): the failed lease renewal inside it is what
	// marks the controller down and arms grace mode.
	b.eng.At(simtime.Time(simtime.Ms(1)), b.ctrl.Crash)
	b.eng.At(simtime.Time(simtime.Ms(6)), b.ctrl.Restart)

	done := simtime.NewEvent[error](b.eng)
	var qp verbs.QP
	b.eng.Spawn("connect-in-the-dark", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(3)) // mid-outage, after a renewal has timed out
		if !b.be.CtrlDown() {
			t.Error("backend has not detected the outage")
		}
		dev, err := fe1.Open(p)
		if err != nil {
			done.Trigger(err)
			return
		}
		pd, _ := dev.AllocPD(p)
		cq, _ := dev.CreateCQ(p, 8)
		qp, _ = dev.CreateQP(p, pd, cq, cq, rnic.RC, rnic.QPCaps{MaxSendWR: 4, MaxRecvWR: 4})
		if err := qp.Modify(p, verbs.Attr{ToState: rnic.StateInit}); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(qp.Modify(p, verbs.Attr{
			ToState: rnic.StateRTR,
			DGID:    packet.GIDFromIP(packet.NewIP(192, 168, 1, 2)),
			DQPN:    9,
		}))
	})
	b.eng.Run()
	if err := done.Value(); err != nil {
		t.Fatalf("RTR during the outage failed despite a fresh cache entry: %v", err)
	}
	if b.be.Stats.GraceRenames == 0 {
		t.Fatal("the rename was not served from the grace cache")
	}
	if b.be.Stats.GraceRevalidated != 1 || b.be.Stats.GraceResets != 0 {
		t.Fatalf("revalidated/resets = %d/%d, want 1/0",
			b.be.Stats.GraceRevalidated, b.be.Stats.GraceResets)
	}
	if b.be.Stats.EpochBumps != 1 || b.be.Epoch() != 2 {
		t.Fatalf("epoch bumps/epoch = %d/%d, want 1/2", b.be.Stats.EpochBumps, b.be.Epoch())
	}
	if got := qp.State(); got != rnic.StateRTR {
		t.Fatalf("re-validated connection is in state %v, want RTR", got)
	}
	if len(b.be.CT.Conns()) != 1 {
		t.Fatalf("RCT holds %d entries, want 1", len(b.be.CT.Conns()))
	}

	// The connection was established during the outage and re-validated
	// after it — but it must still be subject to the security policy: the
	// Watch subscription survives the whole episode.
	tenant.Policy.RemoveRule(rule)
	b.eng.Run()
	if got := qp.State(); got != rnic.StateError {
		t.Fatalf("rule revocation left the grace connection in state %v, want ERROR", got)
	}
	if b.be.CT.Stats.Resets != 1 || len(b.be.CT.Conns()) != 0 {
		t.Fatalf("resets=%d conns=%d, want 1/0", b.be.CT.Stats.Resets, len(b.be.CT.Conns()))
	}
}

// TestLeaseAuditRepairsDroppedNotification drops a push notification in
// flight and checks that the lease-renewal audit notices — the
// subscription's send sequence is ahead of everything delivered while the
// queue is empty — and schedules a resync that lands the lost mapping in
// the cache anyway.
func TestLeaseAuditRepairsDroppedNotification(t *testing.T) {
	b := newBed(t, ModeVF)
	b.allowAll(t, 100)
	b.be.P.PushDown = true
	b.be.P.LeaseRenewEvery = simtime.Us(500)

	vm1, err := b.host.NewVM("vm1", 1<<30, 100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.be.NewFrontend(vm1, 100); err != nil {
		t.Fatal(err)
	}
	b.be.StartLeaseRenewal(simtime.Time(simtime.Ms(10)))

	// A remote endpoint registers at 2ms, but the push announcing it is
	// lost in flight. Without the audit the backend would never hear of it.
	peer := controller.Key{VNI: 100, VGID: packet.GIDFromIP(packet.NewIP(192, 168, 1, 7))}
	mapping := controller.Mapping{PIP: packet.NewIP(172, 16, 0, 9), PMAC: packet.MAC{2, 0, 0, 0, 0, 9}}
	b.eng.At(simtime.Time(simtime.Ms(2)), func() {
		b.ctrl.P.NotifyDropProb = 1
		b.ctrl.Register(peer, mapping)
		b.ctrl.P.NotifyDropProb = 0
	})
	b.eng.Run()

	if b.ctrl.Stats.NotifyDropped != 1 {
		t.Fatalf("dropped notifications = %d, want 1", b.ctrl.Stats.NotifyDropped)
	}
	if b.be.Stats.NotifyGaps == 0 {
		t.Fatal("the lease audit never detected the lost push")
	}
	// One resync seeds the cache at frontend creation; the repair adds at
	// least one more.
	if b.be.Stats.Resyncs < 2 {
		t.Fatalf("resyncs = %d, want >= 2 (seed + repair)", b.be.Stats.Resyncs)
	}
	if got, ok := b.be.CacheSnapshot()[peer]; !ok || got != mapping {
		t.Fatalf("repaired cache entry = %+v, %v; want %+v", got, ok, mapping)
	}
}
