package masq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
)

// newTrackedQP creates a QP, walks it to RTS, and records the connection
// in the tracker.
func newTrackedQP(p *simtime.Proc, dev *rnic.Device, ct *RConntrack, id ConnID) *rnic.QP {
	fn := dev.PF()
	pd := dev.AllocPD(p, fn)
	cq := dev.CreateCQ(p, fn, 16)
	qp := dev.CreateQP(p, fn, pd, cq, cq, rnic.RC, rnic.DefaultCaps())
	dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateInit})
	dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTR})
	dev.ModifyQP(p, qp, rnic.Attr{ToState: rnic.StateRTS})
	id.QPN = qp.Num
	ct.Insert(p, id, qp)
	return qp
}

// TestIncrementalEnforcementScansOnlyFootprint: revoking a rule must
// re-validate only the RCT entries inside the rule's CIDR footprint, and
// reset exactly those no rule still allows.
func TestIncrementalEnforcementScansOnlyFootprint(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	subA, _ := packet.ParseCIDR("10.1.0.0/16")
	subB, _ := packet.ParseCIDR("10.2.0.0/16")
	ruleA := tenant.Policy.AddRule(overlay.Rule{Priority: 10, Proto: overlay.ProtoRDMA, Src: subA, Dst: subA, Action: overlay.Allow})
	tenant.Policy.AddRule(overlay.Rule{Priority: 10, Proto: overlay.ProtoRDMA, Src: subB, Dst: subB, Action: overlay.Allow})
	ct := b.be.CT
	ct.Watch(tenant)

	dev := b.host.Dev
	var inA, inB []*rnic.QP
	b.eng.Spawn("setup", func(p *simtime.Proc) {
		for i := 0; i < 3; i++ {
			inA = append(inA, newTrackedQP(p, dev, ct, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 1, 0, byte(1+i)), DstVIP: packet.NewIP(10, 1, 1, 1)}))
		}
		for i := 0; i < 2; i++ {
			inB = append(inB, newTrackedQP(p, dev, ct, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 2, 0, byte(1+i)), DstVIP: packet.NewIP(10, 2, 1, 1)}))
		}
		tenant.Policy.RemoveRule(ruleA)
	})
	b.eng.Run()

	for i, qp := range inA {
		if qp.State() != rnic.StateError {
			t.Errorf("footprint conn %d not reset (state %v)", i, qp.State())
		}
	}
	for i, qp := range inB {
		if qp.State() != rnic.StateRTS {
			t.Errorf("out-of-footprint conn %d was touched (state %v)", i, qp.State())
		}
	}
	if ct.Stats.Resets != 3 {
		t.Errorf("resets = %d, want 3", ct.Stats.Resets)
	}
	if ct.Stats.IncrScans != 1 || ct.Stats.FullScans != 0 {
		t.Errorf("scans: incr=%d full=%d, want exactly one incremental", ct.Stats.IncrScans, ct.Stats.FullScans)
	}
	if ct.Stats.Revalidated != 3 {
		t.Errorf("revalidated = %d, want only the 3 footprint entries", ct.Stats.Revalidated)
	}
}

// TestEnforcementSkipsNonRevokingChanges: changes that cannot flip an
// allowed connection to denied — adding an Allow, removing a Deny, or any
// TCP-only rule — must skip the RCT scan entirely.
func TestEnforcementSkipsNonRevokingChanges(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	b.allowAll(t, 100)
	ct := b.be.CT
	ct.Watch(tenant)
	dev := b.host.Dev
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	sub, _ := packet.ParseCIDR("10.9.0.0/16")
	var qp *rnic.QP
	var tcpDeny int
	b.eng.Spawn("setup", func(p *simtime.Proc) {
		qp = newTrackedQP(p, dev, ct, ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 2)})
		tenant.Policy.AddRule(overlay.Rule{Priority: 20, Proto: overlay.ProtoRDMA, Src: all, Dst: all, Action: overlay.Allow})
		tcpDeny = tenant.Policy.AddRule(overlay.Rule{Priority: 30, Proto: overlay.ProtoTCP, Src: sub, Dst: sub, Action: overlay.Deny})
		tenant.Policy.RemoveRule(tcpDeny)
	})
	b.eng.Run()
	if qp.State() != rnic.StateRTS {
		t.Fatalf("connection disturbed by non-revoking changes (state %v)", qp.State())
	}
	if ct.Stats.SkippedScans != 3 {
		t.Errorf("skipped = %d, want 3 (allow add, TCP deny add, deny remove)", ct.Stats.SkippedScans)
	}
	if ct.Stats.Revalidated != 0 || ct.Stats.IncrScans != 0 || ct.Stats.FullScans != 0 {
		t.Errorf("scans happened: incr=%d full=%d revalidated=%d",
			ct.Stats.IncrScans, ct.Stats.FullScans, ct.Stats.Revalidated)
	}
}

// TestVerdictCacheHitsAndInvalidation: repeat valid_conn on an unchanged
// policy must hit the verdict cache (and pay only VerdictCacheCost); any
// rule change invalidates via the version key.
func TestVerdictCacheHitsAndInvalidation(t *testing.T) {
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	b.allowAll(t, 100)
	ct := b.be.CT
	ct.Watch(tenant)
	id := ConnID{VNI: 100, SrcVIP: packet.NewIP(10, 0, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 2), QPN: 7}
	sub, _ := packet.ParseCIDR("10.9.0.0/16")
	var missCost, hitCost simtime.Duration
	b.eng.Spawn("v", func(p *simtime.Proc) {
		t0 := p.Now()
		ct.Validate(p, id)
		t1 := p.Now()
		ct.Validate(p, id)
		t2 := p.Now()
		missCost, hitCost = t1.Sub(t0), t2.Sub(t1)
		// A rule change bumps the tenant version: next validate re-evaluates.
		tenant.Policy.AddRule(overlay.Rule{Priority: 50, Proto: overlay.ProtoRDMA, Src: sub, Dst: sub, Action: overlay.Deny})
		ct.Validate(p, id)
	})
	b.eng.Run()
	if ct.Stats.VerdictMisses != 2 || ct.Stats.VerdictHits != 1 {
		t.Fatalf("misses=%d hits=%d, want 2/1", ct.Stats.VerdictMisses, ct.Stats.VerdictHits)
	}
	p := DefaultParams()
	if missCost != p.ValidConnCost {
		t.Errorf("miss cost = %v, want %v", missCost, p.ValidConnCost)
	}
	if hitCost != p.VerdictCacheCost {
		t.Errorf("hit cost = %v, want %v", hitCost, p.VerdictCacheCost)
	}
}

// enforceScenario drives an identical seeded churn of connections and rule
// changes through a tracker in either enforcement mode and fingerprints
// the outcome: which connections survive, which QPs died, reset count.
func enforceScenario(t *testing.T, linear bool) string {
	t.Helper()
	b := newBed(t, ModeVF)
	tenant := b.fab.Tenant(100)
	tenant.SetLinear(linear)
	params := DefaultParams()
	params.LinearEnforce = linear
	ct := NewRConntrack(params, b.host.Dev)
	ct.Watch(tenant)

	rng := rand.New(rand.NewSource(99))
	pol := tenant.Policy
	var ruleIDs []int
	subnet := func(i int) packet.CIDR {
		return packet.CIDR{IP: packet.NewIP(10, byte(i), 0, 0), Bits: 16}
	}
	for i := 0; i < 4; i++ {
		ruleIDs = append(ruleIDs, pol.AddRule(overlay.Rule{
			Priority: 10, Proto: overlay.ProtoRDMA, Src: subnet(i), Dst: subnet(i), Action: overlay.Allow,
		}))
	}

	dev := b.host.Dev
	var qps []*rnic.QP
	b.eng.Spawn("churn", func(p *simtime.Proc) {
		for i := 0; i < 12; i++ {
			s := i % 4
			qps = append(qps, newTrackedQP(p, dev, ct, ConnID{
				VNI: 100, SrcVIP: packet.NewIP(10, byte(s), 1, byte(1+i)), DstVIP: packet.NewIP(10, byte(s), 2, 1),
			}))
		}
		for op := 0; op < 10; op++ {
			switch rng.Intn(3) {
			case 0: // revoke a surviving allow rule
				if len(ruleIDs) > 0 {
					i := rng.Intn(len(ruleIDs))
					pol.RemoveRule(ruleIDs[i])
					ruleIDs = append(ruleIDs[:i], ruleIDs[i+1:]...)
				}
			case 1: // deny one subnet outright
				s := subnet(rng.Intn(4))
				pol.AddRule(overlay.Rule{Priority: 90, Proto: overlay.ProtoRDMA, Src: s, Dst: s, Action: overlay.Deny})
			case 2: // re-allow a subnet (cannot revoke; skipped incrementally)
				s := subnet(rng.Intn(4))
				pol.AddRule(overlay.Rule{Priority: 5, Proto: overlay.ProtoRDMA, Src: s, Dst: s, Action: overlay.Allow})
			}
			p.Sleep(simtime.Us(rng.Float64() * 20))
		}
	})
	b.eng.Run()

	conns := ct.Conns()
	sort.Slice(conns, func(a, b int) bool { return connLess(conns[a], conns[b]) })
	out := fmt.Sprintf("resets=%d survivors=%v states=", ct.Stats.Resets, conns)
	for _, qp := range qps {
		out += fmt.Sprintf("%d", qp.State())
	}
	return out
}

// TestIncrementalMatchesFullEnforcement: under a seeded storm of inserts,
// revokes, denies, and re-allows, footprint-scoped enforcement must
// converge to exactly the same surviving connections, QP states, and
// reset count as the legacy full-table scan.
func TestIncrementalMatchesFullEnforcement(t *testing.T) {
	incr := enforceScenario(t, false)
	full := enforceScenario(t, true)
	if incr != full {
		t.Fatalf("enforcement outcomes diverge:\nincremental: %s\nfull:        %s", incr, full)
	}
}

// TestConnLessByteOrder: ConnIDs must order by raw address bytes, not by
// the lexicographic order of their dotted-quad strings, and comparison
// must not allocate (it runs inside every enforcement sort).
func TestConnLessByteOrder(t *testing.T) {
	a := ConnID{VNI: 1, QPN: 1, SrcVIP: packet.NewIP(10, 9, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 1)}
	b := ConnID{VNI: 1, QPN: 1, SrcVIP: packet.NewIP(10, 10, 0, 1), DstVIP: packet.NewIP(10, 0, 0, 1)}
	// As strings "10.10..." < "10.9...", which is exactly the trap.
	if !connLess(a, b) || connLess(b, a) {
		t.Fatal("connLess must order by numeric octets")
	}
	if n := testing.AllocsPerRun(100, func() { connLess(a, b) }); n != 0 {
		t.Fatalf("connLess allocates %.1f objects per comparison", n)
	}
}
