package masq

import (
	"fmt"
	"sort"

	"masq/internal/controller"
	"masq/internal/mem"
	"masq/internal/rnic"
	"masq/internal/simtime"
)

// Transparent live migration (the MigrOS model, contrasted with the
// paper's Sec. 5 application-assisted teardown/reconnect): a VM with live
// RDMA connections moves hosts without the application noticing. The
// backend half lives here, split in two roles:
//
//   - The migration engine (MigrateOut / MigrateIn / Commit / rollback):
//     freezes the session on the source — quiescing its QPs, detaching
//     QPs/CQs/PDs from the device and unpinning MR pages while keeping
//     every verbs object alive — and restores it on the destination with
//     renumbered QPNs, preserved MR keys (Params.KeyBase makes them
//     collision-free), re-pinned pages, and RConntrack rows re-validated
//     against the destination's policy. The controller Move RPC is the
//     commit point: until it succeeds everything can be re-adopted at the
//     source, and nothing (mapping, RCT rows, QPN translations) leaks.
//
//   - The peer side (migrSuspend / migrMoved): controller pushes drive
//     every other host. Suspend quiesces established connections toward
//     the freezing endpoint so the transport does not burn its retry
//     budget (MaxRetry × RetransTimeout) into the blackout; Moved renames
//     them in place — new physical GID/IP/MAC, translated destination QPN
//     — and resumes them with a PSN rewind to the last acknowledged
//     sequence number, so packets lost in the blackout are retransmitted
//     and nothing is completed twice (duplicates are absorbed by the
//     responder's expected-PSN window). A rollback resume is the same
//     push carrying the original mapping and no translations. If both
//     pushes are lost, MigrSuspendTTL wakes the QPs anyway and the normal
//     retry budget decides their fate.

// suspendSet tracks the peer QPs quiesced by one Suspend push. The
// generation counter invalidates a stale TTL callback when a second
// migration of the same key starts before the first set's TTL fires.
type suspendSet struct {
	gen int
	qps []*rnic.QP
}

// connsToward lists the QPs of every tracked connection this host has
// toward the endpoint (VNI, vGID), deduplicated and in QPN order.
func (b *Backend) connsToward(k controller.Key) []*rnic.QP {
	ip, _ := k.VGID.IP()
	if ip.IsZero() {
		return nil
	}
	byQPN := make(map[uint32]*rnic.QP)
	for id, c := range b.CT.table {
		if id.VNI == k.VNI && id.DstVIP == ip {
			byQPN[c.qp.Num] = c.qp
		}
	}
	out := make([]*rnic.QP, 0, len(byQPN))
	for _, qp := range byQPN {
		out = append(out, qp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// migrSuspend handles a Suspend push: quiesce every connection toward the
// freezing endpoint and arm the TTL fallback.
func (b *Backend) migrSuspend(k controller.Key) {
	qps := b.connsToward(k)
	if len(qps) == 0 {
		return
	}
	set := b.migrSusp[k]
	if set == nil {
		set = &suspendSet{}
		b.migrSusp[k] = set
	}
	set.gen++
	set.qps = qps
	gen := set.gen
	for _, qp := range qps {
		qp.Suspend()
	}
	b.Stats.MigrSuspends++
	b.Stats.MigrSuspendedQPs += uint64(len(qps))
	ttl := b.P.MigrSuspendTTL
	if ttl <= 0 {
		ttl = simtime.Ms(50)
	}
	b.Host.Eng.After(ttl, func() {
		cur := b.migrSusp[k]
		if cur == nil || cur.gen != gen {
			return // a Moved push or a newer Suspend superseded this set
		}
		delete(b.migrSusp, k)
		b.Stats.MigrSuspendExpiry++
		for _, qp := range cur.qps {
			if qp.Suspended() {
				qp.Resume(true)
			}
		}
	})
}

// migrMoved handles a Moved push: refresh the cache, rename the quiesced
// connections in place (commit) or leave their addressing alone
// (rollback: no QPN translations), and resume them with PSN replay.
func (b *Backend) migrMoved(n controller.Notify) {
	k := n.Key
	if b.P.PushDown {
		b.cacheStore(k, n.Mapping)
	} else if _, ok := b.cache[k]; ok {
		b.cacheStore(k, n.Mapping)
	}
	var suspended []*rnic.QP
	if set := b.migrSusp[k]; set != nil {
		suspended = set.qps
		delete(b.migrSusp, k) // disarms the TTL (generation check fails)
	}
	// Union with a fresh walk: the Suspend push may have been lost, or a
	// connection established in the gap between the two pushes.
	qps := b.connsToward(k)
	have := make(map[uint32]bool, len(qps))
	for _, qp := range qps {
		have[qp.Num] = true
	}
	for _, qp := range suspended {
		if !have[qp.Num] {
			qps = append(qps, qp)
		}
	}
	sort.Slice(qps, func(i, j int) bool { return qps[i].Num < qps[j].Num })
	if len(qps) == 0 {
		return
	}
	m, qpnMap := n.Mapping, n.QPNMap
	b.Host.Eng.Spawn("masq.migr-rename", func(p *simtime.Proc) {
		for _, qp := range qps {
			if newQPN, ok := qpnMap[qp.AV.DQPN]; ok {
				// The in-place rename: rewrite the QP context's address
				// vector in host memory — the RConnrename idea applied to
				// an established connection.
				p.Sleep(b.P.MigrRenameCost)
				qp.AV = rnic.AddressVector{DGID: m.PGID, DIP: m.PIP, DMAC: m.PMAC, DQPN: newQPN}
				b.Stats.MigrRenames++
			}
			if qp.Suspended() {
				qp.Resume(true)
				b.Stats.MigrResumes++
			}
		}
	})
}

// ─── The migration engine: capture, restore, commit, rollback ────────────

// MigrCapture is a frozen session in flight between two hosts: every
// verbs object the guest holds pointers to, the identifiers they had on
// the source, and the RCT rows to re-validate at the destination.
type MigrCapture struct {
	// Key is the migrating endpoint's controller identity; OldMapping the
	// source host's physical identity — what a rollback resume republishes.
	Key        controller.Key
	OldMapping controller.Mapping
	// QPNMap (set by MigrateIn) translates source QPNs to destination
	// QPNs; the controller pushes it to peers at commit.
	QPNMap map[uint32]uint32

	f       *Frontend
	src     *Backend
	dst     *Backend
	oldBond *VBond
	newBond *VBond
	newFn   *rnic.Func

	qps   []capQP
	cqs   []*rnic.CQ
	pds   []*rnic.PD
	mrs   []sessMR
	conns []capConn
}

// capQP is one captured QP with its source-host number.
type capQP struct {
	qp     *rnic.QP
	oldQPN uint32
	pooled bool // was handed out of the warm pool already in INIT
}

// capConn is one RCT row of the migrating session, keyed by the QPN it
// had on the source.
type capConn struct {
	id ConnID
	qp *rnic.QP
}

// Counts reports the capture's size (migration reports and tests).
func (cap *MigrCapture) Counts() (qps, mrs, conns int) {
	return len(cap.qps), len(cap.mrs), len(cap.conns)
}

// MigrateOut freezes a frontend's session on this backend and captures it
// for restoration elsewhere: quiesce and detach every QP (arriving
// packets now drop — the blackout), erase the session's RCT rows, flush
// the tenant's warm pool (staged state must not outlive the VM on this
// host), detach CQs/PDs/MRs, and unpin the guest's pages from this host's
// memory. The vBond is stopped first so a racing lease renewal cannot
// re-assert the source mapping after the move commits; the controller
// mapping itself stays registered — the commit overwrites it, a rollback
// reclaims it.
func (b *Backend) MigrateOut(p *simtime.Proc, f *Frontend) (*MigrCapture, error) {
	sess := f.sess
	switch {
	case f.b != b:
		return nil, fmt.Errorf("masq: frontend %s is not served by this backend", sess.vm.Name)
	case sess.dead:
		return nil, fmt.Errorf("masq: cannot migrate dead session %s", sess.vm.Name)
	case b.Mode == ModeVFShared:
		return nil, fmt.Errorf("masq: %s: shared-connection mode multiplexes guest flows onto host-level carriers; transparent migration is not supported", sess.vm.Name)
	}
	cap := &MigrCapture{
		Key:        controller.Key{VNI: sess.vni, VGID: sess.vbond.GID()},
		OldMapping: b.physIdentity(),
		f:          f,
		src:        b,
		oldBond:    sess.vbond,
	}
	sess.vbond.Stop()
	dev := b.Host.Dev
	for _, qp := range sess.qps {
		qp.Suspend()
	}
	for _, qp := range sess.qps {
		p.Sleep(b.P.MigrQPCost)
		cap.qps = append(cap.qps, capQP{qp: qp, oldQPN: qp.Num, pooled: b.pooledInit[qp.Num]})
		ids := make([]ConnID, 0, len(b.CT.byQPN[qp.Num]))
		for id := range b.CT.byQPN[qp.Num] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return connLess(ids[i], ids[j]) })
		for _, id := range ids {
			cap.conns = append(cap.conns, capConn{id: id, qp: qp})
		}
		b.CT.Delete(p, qp.Num)
		delete(b.qpOwner, qp.Num)
		delete(b.pooledInit, qp.Num)
		dev.DetachQP(qp)
	}
	cap.cqs, cap.pds = sessionCQsPDs(sess)
	for _, cq := range cap.cqs {
		dev.DetachCQ(cq)
	}
	for _, pd := range cap.pds {
		dev.DetachPD(pd)
	}
	cap.mrs = append(cap.mrs, sess.mrs...)
	for _, r := range cap.mrs {
		p.Sleep(b.P.MigrMRCost)
		dev.DetachMR(r.mr)
		for _, e := range r.gpa {
			if err := sess.vm.GPA.UnpinToPhys(e.Addr, e.Len); err != nil {
				return nil, fmt.Errorf("masq: migrate %s: %w", sess.vm.Name, err)
			}
		}
	}
	if pool := b.pools[sess.vni]; pool != nil {
		b.flushPool(p, pool)
	}
	b.Stats.MigrOut++
	return cap, nil
}

// sessionCQsPDs collects the session's CQs and PDs in deterministic
// first-reference order (via the QP and MR slices, which preserve
// creation order).
func sessionCQsPDs(sess *session) ([]*rnic.CQ, []*rnic.PD) {
	var cqs []*rnic.CQ
	var pds []*rnic.PD
	seenCQ := make(map[*rnic.CQ]bool)
	seenPD := make(map[*rnic.PD]bool)
	addCQ := func(cq *rnic.CQ) {
		if cq != nil && !seenCQ[cq] {
			seenCQ[cq] = true
			cqs = append(cqs, cq)
		}
	}
	addPD := func(pd *rnic.PD) {
		if pd != nil && !seenPD[pd] {
			seenPD[pd] = true
			pds = append(pds, pd)
		}
	}
	for _, qp := range sess.qps {
		addCQ(qp.SendCQ)
		addCQ(qp.RecvCQ)
		addPD(qp.PD)
	}
	for _, r := range sess.mrs {
		addPD(r.mr.PD)
	}
	return cqs, pds
}

// MigrateIn restores a capture onto this backend: adopt PDs and CQs
// (renumbered — host-local handles), re-pin the guest's pages on this
// host and adopt the MRs under their original keys, adopt the QPs (fresh
// QPNs, recorded in cap.QPNMap; rollback re-adopts under the original
// numbers instead), and re-validate every captured connection against
// this host's policy before re-inserting it — a connection the
// destination denies is reset, not half-admitted. The QPs stay quiesced:
// Commit (or FinishRollback) resumes them once the controller has
// published the move.
func (b *Backend) MigrateIn(p *simtime.Proc, cap *MigrCapture, rollback bool) error {
	sess := cap.f.sess
	fn, err := b.fnFor(sess.vni)
	if err != nil {
		return err
	}
	tenant := b.Fab.Tenant(sess.vni)
	if tenant == nil {
		return fmt.Errorf("masq: unknown tenant VNI %d", sess.vni)
	}
	b.CT.Watch(tenant)
	if b.P.QPPoolSize > 0 {
		b.ensurePool(sess.vni, fn)
	}
	cap.dst = b
	cap.newFn = fn
	dev := b.Host.Dev
	for _, pd := range cap.pds {
		dev.AdoptPD(pd)
	}
	for _, cq := range cap.cqs {
		dev.AdoptCQ(cq)
	}
	for _, r := range cap.mrs {
		p.Sleep(b.P.MigrMRCost)
		var hpa []mem.Extent
		for _, e := range r.gpa {
			sub, err := sess.vm.GPA.PinToPhys(e.Addr, e.Len)
			if err != nil {
				return fmt.Errorf("masq: migrate %s: %w", sess.vm.Name, err)
			}
			hpa = append(hpa, sub...)
		}
		dev.AdoptMR(r.mr, hpa)
	}
	qpnMap := make(map[uint32]uint32, len(cap.qps))
	for _, c := range cap.qps {
		p.Sleep(b.P.MigrQPCost)
		if rollback {
			if err := dev.AdoptQPAt(c.qp, fn, c.oldQPN); err != nil {
				return fmt.Errorf("masq: migrate %s: %w", sess.vm.Name, err)
			}
		} else {
			dev.AdoptQP(c.qp, fn)
		}
		qpnMap[c.oldQPN] = c.qp.Num
		b.qpOwner[c.qp.Num] = sess
		if c.pooled {
			b.pooledInit[c.qp.Num] = true
		}
	}
	for _, c := range cap.conns {
		id := c.id
		id.QPN = qpnMap[c.id.QPN]
		if err := b.CT.Validate(p, id); err != nil {
			// Destination policy denies this connection: it does not come
			// back up on this host.
			b.Stats.MigrValidateResets++
			_ = dev.ModifyQP(p, c.qp, rnic.Attr{ToState: rnic.StateError})
			continue
		}
		b.CT.Insert(p, id, c.qp)
	}
	if rollback {
		cap.QPNMap = nil
	} else {
		cap.QPNMap = qpnMap
		// The successor bond is built deferred: the controller Move RPC
		// publishes (VNI, vGID) → this host atomically with the QPN
		// translations, so construction must not register anything.
		cap.newBond = NewVBondDeferred(sess.vni, sess.vm.VNIC, b.Ctrl, b.physIdentity())
	}
	b.subscribeSession(sess)
	b.Stats.MigrIn++
	return nil
}

// Evict undoes MigrateIn on the destination after a failed commit: detach
// the QPs/CQs/PDs/MRs again, erase the freshly inserted RCT rows, and
// unpin the pages from this host so the capture can be re-adopted at the
// source. Detaches are identity-checked and unpins best-effort, so Evict
// is safe even against a partially restored capture. The deferred bond is
// abandoned stopped — it never registered anything.
func (b *Backend) Evict(p *simtime.Proc, cap *MigrCapture) {
	sess := cap.f.sess
	dev := b.Host.Dev
	for _, c := range cap.qps {
		p.Sleep(b.P.MigrQPCost)
		b.CT.Delete(p, c.qp.Num)
		delete(b.qpOwner, c.qp.Num)
		delete(b.pooledInit, c.qp.Num)
		dev.DetachQP(c.qp)
	}
	for _, r := range cap.mrs {
		p.Sleep(b.P.MigrMRCost)
		dev.DetachMR(r.mr)
		for _, e := range r.gpa {
			_ = sess.vm.GPA.UnpinToPhys(e.Addr, e.Len)
		}
	}
	for _, cq := range cap.cqs {
		dev.DetachCQ(cq)
	}
	for _, pd := range cap.pds {
		dev.DetachPD(pd)
	}
	cap.QPNMap = nil
	cap.dst = nil
	cap.newBond = nil
	cap.newFn = nil
}

// Commit finalizes a successful migration after the controller Move RPC:
// hand the session to the destination backend (function, bond, lease
// membership, a fresh virtio ring served by the destination), and wake
// the session's own QPs with a PSN rewind so anything lost in the
// blackout is retransmitted.
func (cap *MigrCapture) Commit(p *simtime.Proc) {
	dst, sess := cap.dst, cap.f.sess
	sess.fn = cap.newFn
	sess.vbond = cap.newBond
	sess.owner = dst
	cap.newBond.activate()
	dst.bonds = append(dst.bonds, cap.newBond)
	for i, vb := range cap.src.bonds {
		if vb == cap.oldBond {
			cap.src.bonds = append(cap.src.bonds[:i], cap.src.bonds[i+1:]...)
			break
		}
	}
	if dst != cap.src {
		cap.f.ring = dst.serveRing(sess.vm.Name)
		cap.f.b = dst
	}
	cap.resume()
}

// FinishRollback finalizes a rolled-back migration after the capture was
// re-adopted at the source: the original bond takes its lease back and
// the session's QPs wake where they always were.
func (cap *MigrCapture) FinishRollback(p *simtime.Proc) {
	sess := cap.f.sess
	sess.fn = cap.src.tenantFn(sess.vni)
	sess.owner = cap.src
	cap.oldBond.activate()
	sess.vbond = cap.oldBond
	cap.src.Stats.MigrRollbacks++
	cap.resume()
}

// resume wakes the session's QPs in capture order, replaying each send
// queue from the last acknowledged PSN.
func (cap *MigrCapture) resume() {
	for _, c := range cap.qps {
		c.qp.Resume(true)
	}
}

// tenantFn returns the function already assigned to a tenant on this
// backend (nil if none) — rollback must not mint a new VF.
func (b *Backend) tenantFn(vni uint32) *rnic.Func {
	if b.Mode == ModePF {
		return b.Host.Dev.PF()
	}
	return b.tenants[vni]
}

// HostMapping is this backend's physical identity — what its vBonds
// register and what a migration rollback republishes to resume suspended
// peers.
func (b *Backend) HostMapping() controller.Mapping { return b.physIdentity() }

// RetireFrontend ends a frontend's tenancy on this backend after an
// application-assisted migration (Testbed.MigrateNode): the session goes
// dead, the destroyed QPs' shared-connection memberships are dropped, the
// tenant's warm pool is flushed — staged fast-path state must not outlive
// the VM on this host — and the stopped vBond leaves the lease set, so
// renewal follows the successor bond on the destination host.
func (b *Backend) RetireFrontend(f *Frontend) {
	sess := f.sess
	if sess.dead {
		return
	}
	sess.dead = true
	for _, qp := range sess.qps {
		b.sharedDetach(qp.Num)
	}
	for i, vb := range b.bonds {
		if vb == sess.vbond {
			b.bonds = append(b.bonds[:i], b.bonds[i+1:]...)
			break
		}
	}
	if pool := b.pools[sess.vni]; pool != nil {
		b.Host.Eng.Spawn("masq.migrate-retire", func(p *simtime.Proc) {
			b.flushPool(p, pool)
		})
	}
}
