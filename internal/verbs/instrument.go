package verbs

import (
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// Instrument wraps a Device so every control-path verb opens a trace
// invocation named after the rnic verb ("create_qp", "modify_qp_RTR", ...).
// Spans recorded anywhere down the stack — virtio transport, backend
// handlers, controller queries, RNIC firmware — roll up under that
// invocation for per-layer attribution. Data-path calls (post_send,
// post_recv, poll_cq) pass through untouched: they are the fast path and
// the paper's Fig. 16 only attributes control verbs.
//
// With a nil recorder the device is returned as is.
func Instrument(d Device, r *trace.Recorder, actor string) Device {
	if r == nil {
		return d
	}
	return &idev{d: d, r: r, actor: actor}
}

type idev struct {
	d     Device
	r     *trace.Recorder
	actor string
}

func (i *idev) AllocPD(p *simtime.Proc) (PD, error) {
	vc := i.r.BeginVerb(p, rnic.VerbAllocPD.String(), i.actor)
	pd, err := i.d.AllocPD(p)
	vc.End(p)
	return pd, err
}

func (i *idev) RegMR(p *simtime.Proc, pd PD, va uint64, length int, access Access) (MR, error) {
	vc := i.r.BeginVerb(p, rnic.VerbRegMR.String(), i.actor)
	mr, err := i.d.RegMR(p, pd, va, length, access)
	vc.End(p)
	if mr != nil {
		mr = &imr{MR: mr, i: i}
	}
	return mr, err
}

func (i *idev) CreateCQ(p *simtime.Proc, cqe int) (CQ, error) {
	vc := i.r.BeginVerb(p, rnic.VerbCreateCQ.String(), i.actor)
	cq, err := i.d.CreateCQ(p, cqe)
	vc.End(p)
	if cq != nil {
		cq = &icq{CQ: cq, i: i}
	}
	return cq, err
}

func (i *idev) CreateQP(p *simtime.Proc, pd PD, send, recv CQ, typ QPType, caps QPCaps) (QP, error) {
	// Providers type-assert the CQ handles they issued, so unwrap ours
	// before forwarding.
	if c, ok := send.(*icq); ok {
		send = c.CQ
	}
	if c, ok := recv.(*icq); ok {
		recv = c.CQ
	}
	vc := i.r.BeginVerb(p, rnic.VerbCreateQP.String(), i.actor)
	qp, err := i.d.CreateQP(p, pd, send, recv, typ, caps)
	vc.End(p)
	if qp != nil {
		qp = &iqp{QP: qp, i: i}
	}
	return qp, err
}

func (i *idev) CreateSRQ(p *simtime.Proc, maxWR int) (SRQ, error) {
	vc := i.r.BeginVerb(p, rnic.VerbCreateSRQ.String(), i.actor)
	srq, err := i.d.CreateSRQ(p, maxWR)
	vc.End(p)
	if srq != nil {
		srq = &isrq{SRQ: srq, i: i}
	}
	return srq, err
}

func (i *idev) QueryGID(p *simtime.Proc) (packet.GID, error) {
	vc := i.r.BeginVerb(p, rnic.VerbQueryGID.String(), i.actor)
	gid, err := i.d.QueryGID(p)
	vc.End(p)
	return gid, err
}

// Unwrap exposes the wrapped device so capability probes (AsAsync) can
// look through the instrumentation.
func (i *idev) Unwrap() Device { return i.d }

func (i *idev) Close(p *simtime.Proc) error {
	vc := i.r.BeginVerb(p, rnic.VerbCloseDevice.String(), i.actor)
	err := i.d.Close(p)
	vc.End(p)
	return err
}

type imr struct {
	MR
	i *idev
}

func (m *imr) Dereg(p *simtime.Proc) error {
	vc := m.i.r.BeginVerb(p, rnic.VerbDeregMR.String(), m.i.actor)
	err := m.MR.Dereg(p)
	vc.End(p)
	return err
}

type icq struct {
	CQ
	i *idev
}

func (c *icq) Destroy(p *simtime.Proc) error {
	vc := c.i.r.BeginVerb(p, rnic.VerbDestroyCQ.String(), c.i.actor)
	err := c.CQ.Destroy(p)
	vc.End(p)
	return err
}

type isrq struct {
	SRQ
	i *idev
}

func (s *isrq) Destroy(p *simtime.Proc) error {
	vc := s.i.r.BeginVerb(p, rnic.VerbDestroySRQ.String(), s.i.actor)
	err := s.SRQ.Destroy(p)
	vc.End(p)
	return err
}

type iqp struct {
	QP
	i *idev
}

func modifyVerbName(s State) string {
	switch s {
	case StateInit:
		return rnic.VerbModifyQPInit.String()
	case StateRTR:
		return rnic.VerbModifyQPRTR.String()
	case StateRTS:
		return rnic.VerbModifyQPRTS.String()
	case StateError:
		return rnic.VerbModifyQPErr.String()
	default:
		return "modify_qp"
	}
}

func (q *iqp) Modify(p *simtime.Proc, a Attr) error {
	vc := q.i.r.BeginVerb(p, modifyVerbName(a.ToState), q.i.actor)
	err := q.QP.Modify(p, a)
	vc.End(p)
	return err
}

func (q *iqp) Destroy(p *simtime.Proc) error {
	vc := q.i.r.BeginVerb(p, rnic.VerbDestroyQP.String(), q.i.actor)
	err := q.QP.Destroy(p)
	vc.End(p)
	return err
}
