package verbs_test

import (
	"testing"

	"masq/internal/baselines/freeflow"
	"masq/internal/baselines/hostrdma"
	masqcore "masq/internal/masq"
	"masq/internal/verbs"
)

// Compile-time checks: every virtualization system implements the verbs
// provider contract.
var (
	_ verbs.Provider = (*hostrdma.Provider)(nil)
	_ verbs.Provider = (*freeflow.Provider)(nil)
	_ verbs.Provider = (*masqcore.Frontend)(nil)
)

func TestStateAndOpReexports(t *testing.T) {
	// The aliases must be the device-model types, not copies: a WC from
	// the hardware layer is directly assignable at the API layer.
	var wc verbs.WC
	wc.Status = verbs.WCSuccess
	if wc.Status.String() != "SUCCESS" {
		t.Fatalf("status = %v", wc.Status)
	}
	if verbs.StateRTS.String() != "RTS" || verbs.StateError.String() != "ERROR" {
		t.Fatal("state alias broken")
	}
	if verbs.RC.String() != "RC" || verbs.UD.String() != "UD" {
		t.Fatal("qptype alias broken")
	}
}

func TestAttrZeroValueIsReset(t *testing.T) {
	var a verbs.Attr
	if a.ToState != verbs.StateReset {
		t.Fatal("zero Attr must target RESET")
	}
}

func TestConnInfoFields(t *testing.T) {
	ci := verbs.ConnInfo{QPN: 7, RKey: 9, Addr: 0x1000}
	if ci.QPN != 7 || ci.RKey != 9 || ci.Addr != 0x1000 {
		t.Fatal("ConnInfo fields")
	}
}
