// Package verbs defines the user-facing RDMA verbs API of the simulation —
// the ibv_* call surface applications program against — and the Provider
// interface each virtualization system implements behind it:
//
//   - Host-RDMA (internal/baselines/hostrdma): direct driver on the PF
//   - SR-IOV (internal/baselines/sriov): passthrough driver on a VF
//   - MasQ (internal/masq): paravirtualized control path, direct data path
//   - FreeFlow (internal/baselines/freeflow): all verbs relayed via the FFR
//
// The concrete work-request, completion and state types are shared with
// the device model (package rnic) by aliasing: they describe hardware
// semantics that are identical no matter which driver carries the call.
package verbs

import (
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
)

// Re-exported hardware-semantics types.
type (
	// WC is a work completion.
	WC = rnic.WC
	// SendWR is a send work request.
	SendWR = rnic.SendWR
	// RecvWR is a receive work request.
	RecvWR = rnic.RecvWR
	// QPCaps sizes the work queues.
	QPCaps = rnic.QPCaps
	// Access holds MR permission flags.
	Access = rnic.Access
	// QPType selects RC or UD.
	QPType = rnic.QPType
	// State is a QP state.
	State = rnic.State
	// WCStatus is a completion status.
	WCStatus = rnic.WCStatus
	// AddressVector names a remote endpoint.
	AddressVector = rnic.AddressVector
	// AsyncEvent is a device-level asynchronous event (ibv_async_event).
	AsyncEvent = rnic.AsyncEvent
	// AsyncEventType discriminates async events.
	AsyncEventType = rnic.AsyncEventType
)

// Re-exported constants.
const (
	RC = rnic.RC
	UD = rnic.UD

	AccessLocalWrite   = rnic.AccessLocalWrite
	AccessRemoteWrite  = rnic.AccessRemoteWrite
	AccessRemoteRead   = rnic.AccessRemoteRead
	AccessRemoteAtomic = rnic.AccessRemoteAtomic

	WRSend        = rnic.WRSend
	WRSendImm     = rnic.WRSendImm
	WRWrite       = rnic.WRWrite
	WRWriteImm    = rnic.WRWriteImm
	WRRead        = rnic.WRRead
	WRAtomicFAdd  = rnic.WRAtomicFAdd
	WRAtomicCSwap = rnic.WRAtomicCSwap

	WCSuccess  = rnic.WCSuccess
	WCFlushErr = rnic.WCFlushErr

	StateReset = rnic.StateReset
	StateInit  = rnic.StateInit
	StateRTR   = rnic.StateRTR
	StateRTS   = rnic.StateRTS
	StateError = rnic.StateError

	EventQPFatal  = rnic.EventQPFatal
	EventPortDown = rnic.EventPortDown
	EventPortUp   = rnic.EventPortUp
)

// Attr carries modify_qp arguments at the API level. Applications name the
// peer by GID and QP number — exactly the information exchanged over the
// out-of-band channel in Fig. 1; the provider resolves the rest (and MasQ's
// RConnrename may rewrite it).
type Attr struct {
	ToState State
	DGID    packet.GID
	DQPN    uint32
	QKey    uint32
}

// ConnInfo is the connection information two peers exchange out of band
// before connecting their QPs (step 3 in Fig. 4).
type ConnInfo struct {
	GID  packet.GID
	QPN  uint32
	RKey uint32
	Addr uint64
}

// Provider opens device contexts for one application environment.
type Provider interface {
	// Name identifies the virtualization system ("host-rdma", "masq", ...).
	Name() string
	// Open models ibv_get_device_list + ibv_open_device.
	Open(p *simtime.Proc) (Device, error)
}

// Device is an open device context.
type Device interface {
	// AllocPD models ibv_alloc_pd.
	AllocPD(p *simtime.Proc) (PD, error)
	// RegMR models ibv_reg_mr over [va, va+len) of the application's own
	// address space. The provider pins and translates.
	RegMR(p *simtime.Proc, pd PD, va uint64, length int, access Access) (MR, error)
	// CreateCQ models ibv_create_cq.
	CreateCQ(p *simtime.Proc, cqe int) (CQ, error)
	// CreateQP models ibv_create_qp. To share a receive queue, set
	// caps.SRQ = srq.Raw() for an SRQ created on the same device.
	CreateQP(p *simtime.Proc, pd PD, send, recv CQ, typ QPType, caps QPCaps) (QP, error)
	// CreateSRQ models ibv_create_srq: a receive-WQE pool shared by many
	// QPs, bounding the buffer footprint of high-connection-count servers.
	CreateSRQ(p *simtime.Proc, maxWR int) (SRQ, error)
	// QueryGID models ibv_query_gid. For virtualized providers this is the
	// *virtual* GID (vBond's view).
	QueryGID(p *simtime.Proc) (packet.GID, error)
	// Close models ibv_close_device.
	Close(p *simtime.Proc) error
}

// SRQ is a shared receive queue handle.
type SRQ interface {
	// PostRecv models ibv_post_srq_recv (data path).
	PostRecv(p *simtime.Proc, wr RecvWR) error
	// Len returns the number of posted shared WQEs.
	Len() int
	// Destroy models ibv_destroy_srq.
	Destroy(p *simtime.Proc) error
	// Raw exposes the device object for QPCaps.SRQ.
	Raw() *rnic.SRQ
}

// PD is a protection domain handle.
type PD interface {
	Handle() uint32
}

// MR is a registered memory region handle.
type MR interface {
	LKey() uint32
	RKey() uint32
	Addr() uint64
	Len() int
	// Dereg models ibv_dereg_mr.
	Dereg(p *simtime.Proc) error
}

// CQ is a completion queue handle.
type CQ interface {
	// TryPoll models a single non-blocking ibv_poll_cq.
	TryPoll(p *simtime.Proc) (WC, bool)
	// Wait blocks until a completion arrives (an application busy-polling
	// loop, without simulating each empty poll).
	Wait(p *simtime.Proc) WC
	// WaitTimeout is Wait with a deadline.
	WaitTimeout(p *simtime.Proc, d simtime.Duration) (WC, bool)
	// Destroy models ibv_destroy_cq.
	Destroy(p *simtime.Proc) error
}

// AsyncCQ is an optional CQ capability: providers whose completion path is
// a direct mapping of the RNIC's CQ ring (no per-poll relay through another
// process) expose the completion stream for callback-style consumption.
// The contract mirrors Wait exactly — TryGet is Wait's inline dequeue,
// OnComplete is Wait's park (the delivery fires at the same instant a
// completion would wake the parked process), and the consumer charges
// PollCost itself where Wait would Sleep it — so an application loop
// converted to this interface replays the identical event sequence.
type AsyncCQ interface {
	CQ
	// OnComplete arms fn as a one-shot callback for the next completion.
	OnComplete(fn func(WC))
	// TryGet pops a completion without blocking and without verb cost.
	TryGet() (WC, bool)
	// PollCost is the poll_cq cost the consumer must charge per completion.
	PollCost() simtime.Duration
}

// AsyncDevice is an optional Device capability mirroring
// ibv_get_async_event: fatal QP errors the hardware decides on its own
// (retry exhaustion, RNR exhaustion, fatal remote NAK) and port state
// changes arrive as events instead of dying silently in the device. The
// provider delivers only events that concern this device context — a
// virtualized provider filters QP-fatal events to the guest that owns the
// QP and models its interrupt-injection latency. Use AsAsync to discover
// the capability through the Instrument wrapper.
type AsyncDevice interface {
	Device
	// GetAsyncEvent blocks until the next async event.
	GetAsyncEvent(p *simtime.Proc) AsyncEvent
	// GetAsyncEventTimeout is GetAsyncEvent with a deadline.
	GetAsyncEventTimeout(p *simtime.Proc, d simtime.Duration) (AsyncEvent, bool)
	// TryAsyncEvent pops a pending event without blocking.
	TryAsyncEvent() (AsyncEvent, bool)
}

// AsAsync reports d's async-event capability, unwrapping instrumentation.
func AsAsync(d Device) (AsyncDevice, bool) {
	for {
		if a, ok := d.(AsyncDevice); ok {
			return a, true
		}
		u, ok := d.(interface{ Unwrap() Device })
		if !ok {
			return nil, false
		}
		d = u.Unwrap()
	}
}

// AsyncQP is the matching QP capability for callback-style posting on the
// data path: the caller charges PostSendCost with a timer and then calls
// PostSendAsync, replacing PostSend's leading Sleep with an equivalent
// scheduled charge. Providers that relay post_send through another process
// (e.g. the FreeFlow router) must not implement it.
type AsyncQP interface {
	QP
	// PostSendCost is the post_send verb cost to charge before posting.
	PostSendCost() simtime.Duration
	// PostSendAsync posts wr after the caller has charged PostSendCost.
	PostSendAsync(wr SendWR) error
}

// QP is a queue-pair handle.
type QP interface {
	// Num returns the QP number (exchanged out of band).
	Num() uint32
	// Modify models ibv_modify_qp.
	Modify(p *simtime.Proc, a Attr) error
	// PostSend models ibv_post_send.
	PostSend(p *simtime.Proc, wr SendWR) error
	// PostRecv models ibv_post_recv.
	PostRecv(p *simtime.Proc, wr RecvWR) error
	// State reports the current state (ibv_query_qp).
	State() State
	// Destroy models ibv_destroy_qp.
	Destroy(p *simtime.Proc) error
}
