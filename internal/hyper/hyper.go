// Package hyper models the compute side of the testbed: hosts with
// physical memory and an RNIC, QEMU/KVM virtual machines with layered
// guest address spaces and memory-capacity accounting (the Table 5
// experiment), lightweight containers (FreeFlow's environment), and the
// host-side frame demultiplexer that steers RoCEv2 traffic to the RNIC and
// VXLAN traffic to the virtual switch.
package hyper

import (
	"fmt"

	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// Params hold hypervisor-level constants.
type Params struct {
	// VMMemOverhead is the per-VM hypervisor memory tax (QEMU, page
	// tables, virtio rings). Calibrated so a 96 GB host fits ~160 VMs of
	// 512 MB each, matching Table 5.
	VMMemOverhead uint64
	// VMComputeFactor scales CPU-bound work inside a VM (>1 = slower).
	// Containers run at native speed. Drives the Fig. 23 FlatMap gap.
	VMComputeFactor float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		VMMemOverhead:   100 << 20, // 100 MiB
		VMComputeFactor: 1.17,
	}
}

// Host is one physical server.
type Host struct {
	Name string
	IP   packet.IP
	MAC  packet.MAC
	P    Params

	Eng     *simtime.Engine
	Phys    *mem.Phys
	HVA     *mem.AddrSpace // host userspace (QEMU's, and host apps')
	Dev     *rnic.Device
	Port    *simnet.Port
	VSwitch *overlay.VSwitch

	demuxCb func(simnet.Frame) // cached RX callback
	vms     []*VM
}

// HostConfig configures a new host.
type HostConfig struct {
	Name     string
	IP       packet.IP
	MAC      packet.MAC
	MemBytes uint64
	RNIC     rnic.Params
	Hyper    Params
	// Fabric, when non-nil, gives the host a vswitch/VTEP.
	Fabric *overlay.Fabric
	// ResolveHost maps peer host IPs to MACs (underlay neighbor table).
	ResolveHost func(packet.IP) (packet.MAC, bool)
}

// NewHost builds the host: physical memory, RNIC on the PF, physical port,
// vswitch, and the RX demultiplexer.
func NewHost(eng *simtime.Engine, cfg HostConfig) *Host {
	phys := mem.NewPhys(cfg.MemBytes)
	hva := mem.NewAddrSpace(cfg.Name+".hva", phys, phys.AllocPages)
	dev := rnic.NewDevice(eng, cfg.Name+".rnic", cfg.RNIC, phys)
	dev.PF().SetAddr(cfg.IP, cfg.MAC)
	port := simnet.NewPort(eng, cfg.Name+".port")
	dev.AttachPort(port)

	h := &Host{
		Name: cfg.Name, IP: cfg.IP, MAC: cfg.MAC, P: cfg.Hyper,
		Eng: eng, Phys: phys, HVA: hva, Dev: dev, Port: port,
	}
	if cfg.Fabric != nil {
		h.VSwitch = cfg.Fabric.NewVSwitchOn(eng, cfg.IP, cfg.MAC, port, cfg.ResolveHost)
	}
	h.demuxCb = h.demux
	port.RX.OnNext(h.demuxCb)
	return h
}

// demux steers arriving frames — RoCEv2 → RNIC, VXLAN → vswitch — running
// inline in the engine loop: steering costs no virtual time, so it needs no
// process of its own.
func (h *Host) demux(f simnet.Frame) {
	for {
		// Frames decode from the RNIC's arena pool: RoCE packets are
		// released by the RX pipeline after handling; vswitch-bound ones
		// are retained by the overlay and left to the garbage collector.
		if pkt, err := h.Dev.RxDecode(f); err == nil {
			dispatched := false
			if u := pkt.UDP(); u != nil {
				switch u.DstPort {
				case packet.PortRoCEv2, packet.PortRoCEShared:
					h.Dev.Ingress.Put(pkt)
					dispatched = true
				case packet.PortVXLAN:
					if h.VSwitch != nil {
						h.VSwitch.Ingress.Put(pkt)
						dispatched = true
					}
				}
			}
			if !dispatched {
				pkt.Release()
			}
		}
		var ok bool
		f, ok = h.Port.RX.TryGet()
		if !ok {
			h.Port.RX.OnNext(h.demuxCb)
			return
		}
	}
}

// VM is a QEMU/KVM guest with one application address space and one vNIC.
type VM struct {
	Name string
	Host *Host
	Mem  uint64

	GPA  *mem.AddrSpace // guest-physical, carved from QEMU's HVA
	GVA  *mem.AddrSpace // the guest application's address space
	VNIC *overlay.VMPort

	factor float64
}

// NewVM boots a VM with the given RAM on tenant vni at virtual IP vip,
// reserving RAM + hypervisor overhead from host memory. It fails with
// mem.ErrOutOfMemory when the host is full — the Table 5 limiting factor.
func (h *Host) NewVM(name string, memBytes uint64, vni uint32, vip packet.IP) (*VM, error) {
	if err := h.Phys.Reserve(memBytes + h.P.VMMemOverhead); err != nil {
		return nil, fmt.Errorf("hyper: boot %s: %w", name, err)
	}
	gpa := mem.NewAddrSpace(name+".gpa", h.HVA, h.HVA.AllocBacking)
	gva := mem.NewAddrSpace(name+".gva", gpa, gpa.AllocBacking)
	vm := &VM{Name: name, Host: h, Mem: memBytes, GPA: gpa, GVA: gva, factor: h.P.VMComputeFactor}
	if h.VSwitch != nil {
		vp, err := h.VSwitch.AttachVM(vni, vip)
		if err != nil {
			h.Phys.Release(memBytes + h.P.VMMemOverhead)
			return nil, err
		}
		vm.VNIC = vp
	}
	h.vms = append(h.vms, vm)
	return vm, nil
}

// MigrateTo moves the VM's memory image to another host: capacity is
// reserved on the destination, every guest page is copied into fresh
// backing there (virtual addresses preserved), and the source reservation
// is released. It refuses while any guest page is pinned — DMA-registered
// memory cannot move, which is exactly why RDMA live migration needs the
// application-assisted scheme of Sec. 5 (tear down QPs and MRs first).
// The caller re-homes the vNIC and re-plugs the paravirtual device.
func (vm *VM) MigrateTo(dst *Host) error {
	if vm.Host == dst {
		return nil
	}
	if vm.GVA.Pinned() || vm.GPA.Pinned() {
		return fmt.Errorf("hyper: %s has pinned (RDMA-registered) memory; deregister MRs before migrating", vm.Name)
	}
	if err := dst.Phys.Reserve(vm.Mem + dst.P.VMMemOverhead); err != nil {
		return fmt.Errorf("hyper: migrate %s: %w", vm.Name, err)
	}
	gpa := mem.NewAddrSpace(vm.Name+".gpa", dst.HVA, dst.HVA.AllocBacking)
	gva := mem.NewAddrSpace(vm.Name+".gva", gpa, gpa.AllocBacking)
	if err := vm.GVA.MigrateTo(gva); err != nil {
		dst.Phys.Release(vm.Mem + dst.P.VMMemOverhead)
		return err
	}
	src := vm.Host
	src.Phys.Release(vm.Mem + src.P.VMMemOverhead)
	for i, v := range src.vms {
		if v == vm {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	vm.Host = dst
	vm.GPA, vm.GVA = gpa, gva
	vm.factor = dst.P.VMComputeFactor
	dst.vms = append(dst.vms, vm)
	return nil
}

// LiveMigrateTo re-homes the VM onto dst *in place*: capacity is reserved
// on the destination, the guest-physical space is rehomed into dst's
// userspace (mem.AddrSpace.Rehome — same GPA/GVA objects, same virtual
// addresses, fresh backing), and the source reservation is released. The
// GPA must be unpinned (the migration engine deregisters MRs around the
// stop-copy); pins held at the GVA level survive untouched, which is what
// lets applications keep their buffers across a transparent migration.
// On error nothing has moved. The caller re-homes the vNIC, re-plugs the
// paravirtual device, and re-registers MRs on the destination.
func (vm *VM) LiveMigrateTo(dst *Host) error {
	if vm.Host == dst {
		return nil
	}
	if vm.GPA.Pinned() {
		return fmt.Errorf("hyper: %s has pinned (DMA-visible) guest memory; unpin MRs before the stop-copy", vm.Name)
	}
	if err := dst.Phys.Reserve(vm.Mem + dst.P.VMMemOverhead); err != nil {
		return fmt.Errorf("hyper: migrate %s: %w", vm.Name, err)
	}
	if err := vm.GPA.Rehome(dst.HVA); err != nil {
		dst.Phys.Release(vm.Mem + dst.P.VMMemOverhead)
		return err
	}
	src := vm.Host
	src.Phys.Release(vm.Mem + src.P.VMMemOverhead)
	for i, v := range src.vms {
		if v == vm {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	vm.Host = dst
	vm.factor = dst.P.VMComputeFactor
	dst.vms = append(dst.vms, vm)
	return nil
}

// Shutdown releases the VM's memory reservation.
func (vm *VM) Shutdown() {
	vm.Host.Phys.Release(vm.Mem + vm.Host.P.VMMemOverhead)
	for i, v := range vm.Host.vms {
		if v == vm {
			vm.Host.vms = append(vm.Host.vms[:i], vm.Host.vms[i+1:]...)
			break
		}
	}
}

// VMs returns the number of VMs currently booted.
func (h *Host) VMs() int { return len(h.vms) }

// Compute burns d of CPU time scaled by the VM's virtualization overhead.
func (vm *VM) Compute(p *simtime.Proc, d simtime.Duration) {
	p.Sleep(simtime.Duration(float64(d) * vm.factor))
}

// Container is a lightweight environment (FreeFlow's deployment target):
// no memory reservation tax, native compute speed, a vNIC on the overlay,
// and buffers directly in host userspace.
type Container struct {
	Name string
	Host *Host
	GVA  *mem.AddrSpace // container processes live in host userspace
	VNIC *overlay.VMPort
}

// NewContainer starts a container on tenant vni at vip.
func (h *Host) NewContainer(name string, vni uint32, vip packet.IP) (*Container, error) {
	c := &Container{Name: name, Host: h, GVA: h.HVA}
	if h.VSwitch != nil {
		vp, err := h.VSwitch.AttachVM(vni, vip)
		if err != nil {
			return nil, err
		}
		c.VNIC = vp
	}
	return c, nil
}

// Compute burns d of CPU time at native speed.
func (c *Container) Compute(p *simtime.Proc, d simtime.Duration) { p.Sleep(d) }
