package hyper

import (
	"bytes"
	"errors"
	"testing"

	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
)

func newHost(t *testing.T, eng *simtime.Engine, memBytes uint64) *Host {
	t.Helper()
	fab := overlay.NewFabric(eng, overlay.DefaultParams())
	fab.AddTenant(100, "t")
	h := NewHost(eng, HostConfig{
		Name: "h0", IP: packet.NewIP(172, 16, 0, 1), MAC: packet.MAC{2, 0, 0, 0, 0, 1},
		MemBytes: memBytes, RNIC: rnic.DefaultParams(), Hyper: DefaultParams(),
		Fabric:      fab,
		ResolveHost: func(packet.IP) (packet.MAC, bool) { return packet.MAC{}, false },
	})
	return h
}

func TestVMMemoryAccounting(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 2<<30)
	vm, err := h.NewVM("vm0", 1<<30, 100, packet.NewIP(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1<<30) + DefaultParams().VMMemOverhead
	if h.Phys.Reserved() != want {
		t.Fatalf("reserved = %d, want %d", h.Phys.Reserved(), want)
	}
	if h.VMs() != 1 {
		t.Fatalf("VMs = %d", h.VMs())
	}
	vm.Shutdown()
	if h.Phys.Reserved() != 0 || h.VMs() != 0 {
		t.Fatalf("shutdown did not release: reserved=%d vms=%d", h.Phys.Reserved(), h.VMs())
	}
}

func TestVMBootFailsWhenHostFull(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 1<<30)
	if _, err := h.NewVM("big", 2<<30, 100, packet.NewIP(10, 0, 0, 1)); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want out of memory", err)
	}
}

func TestTable5Capacity(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 96<<30)
	n := 0
	for {
		_, err := h.NewVM("vm", 512<<20, 100, packet.NewIP(10, byte(n>>8), byte(n), 1))
		if err != nil {
			break
		}
		n++
	}
	if n < 150 || n > 170 {
		t.Fatalf("max 512MB VMs on a 96GB host = %d, want ≈160 (Table 5)", n)
	}
}

func TestGuestMemoryIsolatedAndLayered(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 8<<30)
	vm1, err := h.NewVM("vm1", 1<<30, 100, packet.NewIP(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := h.NewVM("vm2", 1<<30, 100, packet.NewIP(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	va1, _ := vm1.GVA.Alloc(4096)
	va2, _ := vm2.GVA.Alloc(4096)
	vm1.GVA.Write(va1, []byte("vm1 data"))
	vm2.GVA.Write(va2, []byte("vm2 data"))
	b := make([]byte, 8)
	vm1.GVA.Read(va1, b)
	if !bytes.Equal(b, []byte("vm1 data")) {
		t.Fatalf("vm1 read %q", b)
	}
	// The same GVA in vm2 must hold vm2's bytes (separate page tables).
	vm2.GVA.Read(va2, b)
	if !bytes.Equal(b, []byte("vm2 data")) {
		t.Fatalf("vm2 read %q", b)
	}
	// The pinning walk reaches distinct physical pages.
	e1, err := vm1.GVA.PinToPhys(va1, 8)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := vm2.GVA.PinToPhys(va2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e1[0].Addr == e2[0].Addr {
		t.Fatal("two VMs share a physical page")
	}
	got := make([]byte, 8)
	h.Phys.Read(e1[0].Addr, got)
	if !bytes.Equal(got, []byte("vm1 data")) {
		t.Fatalf("phys read %q", got)
	}
}

func TestVMComputeSlowdown(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 8<<30)
	vm, _ := h.NewVM("vm", 1<<30, 100, packet.NewIP(10, 0, 0, 1))
	c, err := h.NewContainer("ctr", 100, packet.NewIP(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	var vmT, ctrT simtime.Duration
	eng.Spawn("vm", func(p *simtime.Proc) {
		s := p.Now()
		vm.Compute(p, simtime.Ms(100))
		vmT = p.Now().Sub(s)
	})
	eng.Spawn("ctr", func(p *simtime.Proc) {
		s := p.Now()
		c.Compute(p, simtime.Ms(100))
		ctrT = p.Now().Sub(s)
	})
	eng.Run()
	if ctrT != simtime.Ms(100) {
		t.Fatalf("container compute = %v", ctrT)
	}
	if vmT <= ctrT {
		t.Fatalf("VM compute (%v) must be slower than container (%v)", vmT, ctrT)
	}
}

func TestContainerUsesHostAddressSpace(t *testing.T) {
	eng := simtime.NewEngine()
	h := newHost(t, eng, 8<<30)
	c, err := h.NewContainer("ctr", 100, packet.NewIP(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.GVA != h.HVA {
		t.Fatal("container memory must be host userspace (no nested translation)")
	}
	if before := h.Phys.Reserved(); before != 0 {
		t.Fatalf("container reserved %d bytes", before)
	}
}
