package rnic

import (
	"testing"

	"masq/internal/simnet"
	"masq/internal/simtime"
)

// TestRetryExhaustRaisesExactlyOneFatalAsyncEvent: several WRs are in
// flight when a burst-loss window blacks the link out; the transport
// exhausts its retries, the QP enters ERROR once, and exactly one QP-fatal
// async event fans out — the later flushed WRs must not re-raise it.
func TestRetryExhaustRaisesExactlyOneFatalAsyncEvent(t *testing.T) {
	params := DefaultParams()
	params.MaxRetry = 2
	params.RetransTimeout = simtime.Us(100)
	e := newEnvParams(t, params)

	var events []AsyncEvent
	e.a.dev.SubscribeAsync(func(ev AsyncEvent) { events = append(events, ev) })

	var firstWC WC
	var qpn uint32
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		qpn = c.qp.Num
		sva, smr := e.a.buffer(t, p, c.pd, 4096, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 4096, AccessLocalWrite|AccessRemoteWrite)
		// Black out everything from now on: a burst-loss window with
		// certain drops, long enough to outlast every retry.
		e.link.SetLoss(simnet.NewLossModel(1, 1.0, 4, p.Now(), p.Now().Add(simtime.Ms(100))))
		for i := 0; i < 4; i++ {
			c.qp.PostSend(p, SendWR{
				WRID: uint64(i), Op: WRWrite, LocalAddr: sva, LKey: smr.LKey,
				Len: 1024, RemoteAddr: rva, RKey: rmr.RKey,
			})
		}
		firstWC = c.scq.Wait(p)
		p.Sleep(simtime.Ms(50)) // let every flush and stray timer land
	})
	e.eng.Run()

	if firstWC.Status != WCRetryExceeded {
		t.Fatalf("first completion = %v, want RETRY_EXC_ERR", firstWC.Status)
	}
	fatal := 0
	for _, ev := range events {
		if ev.Type == EventQPFatal {
			fatal++
			if ev.QPN != qpn || ev.Status != WCRetryExceeded {
				t.Fatalf("fatal event = %+v, want qpn=%d status=RETRY_EXC_ERR", ev, qpn)
			}
		}
	}
	if fatal != 1 {
		t.Fatalf("got %d QP-fatal events, want exactly 1 (events: %v)", fatal, events)
	}
	if e.a.dev.Stats.AsyncEvents != 1 {
		t.Fatalf("device async event counter = %d, want 1", e.a.dev.Stats.AsyncEvents)
	}
}

// TestEmptySQErrorStillDeliversCompletion: a QP that dies with nothing on
// its send queue must still surface a completion — otherwise an idle
// process waiting on the CQ never learns its QP is gone (the silent-death
// bug). The synthesized WC carries the fatal status and the QPN.
func TestEmptySQErrorStillDeliversCompletion(t *testing.T) {
	e := newEnv(t)
	var wc WC
	var ok bool
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		c.qp.enterError(WCRetryExceeded) // hardware-initiated death, SQ empty
		wc, ok = c.scq.WaitTimeout(p, simtime.Ms(10))
	})
	e.eng.Run()
	if !ok {
		t.Fatal("no completion delivered for an empty-SQ fatal")
	}
	if wc.Status != WCRetryExceeded || wc.QPN == 0 {
		t.Fatalf("synthesized WC = %+v, want RETRY_EXC_ERR with QPN set", wc)
	}
}

// TestEnterErrorIsIdempotent: the single choke point must not double-fire
// events or completions when a second error path lands on a dead QP.
func TestEnterErrorIsIdempotent(t *testing.T) {
	e := newEnv(t)
	fatals := 0
	e.a.dev.SubscribeAsync(func(ev AsyncEvent) {
		if ev.Type == EventQPFatal {
			fatals++
		}
	})
	completions := 0
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		c.qp.enterError(WCRetryExceeded)
		c.qp.enterError(WCRNRRetryExceeded)
		p.Sleep(simtime.Ms(1))
		for {
			if _, ok := c.scq.TryPoll(p); !ok {
				break
			}
			completions++
		}
	})
	e.eng.Run()
	if fatals != 1 {
		t.Fatalf("QP-fatal events = %d, want 1", fatals)
	}
	if completions != 1 {
		t.Fatalf("completions = %d, want 1", completions)
	}
}

// TestPortStateEventsAreEdgeDetected: cable pulls surface as PORT_DOWN /
// PORT_UP async events, once per transition regardless of repeated sets.
func TestPortStateEventsAreEdgeDetected(t *testing.T) {
	e := newEnv(t)
	var evs []AsyncEventType
	e.a.dev.SubscribeAsync(func(ev AsyncEvent) { evs = append(evs, ev.Type) })
	if !e.a.dev.PortUp() {
		t.Fatal("port should start up")
	}
	e.a.dev.SetPortState(false)
	e.a.dev.SetPortState(false) // not an edge
	e.a.dev.SetPortState(true)
	e.a.dev.SetPortState(true) // not an edge
	if len(evs) != 2 || evs[0] != EventPortDown || evs[1] != EventPortUp {
		t.Fatalf("events = %v, want [PORT_DOWN PORT_UP]", evs)
	}
	if e.a.dev.Stats.AsyncEvents != 2 {
		t.Fatalf("async event counter = %d, want 2", e.a.dev.Stats.AsyncEvents)
	}
}
