package rnic

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// TestReliabilityUnderRandomLoss is the transport's core property test:
// under seeded random loss in both directions, every message is delivered
// exactly once, in order, with intact payloads.
func TestReliabilityUnderRandomLoss(t *testing.T) {
	for _, lossPct := range []int{1, 5, 20} {
		lossPct := lossPct
		t.Run(fmt.Sprintf("loss%d%%", lossPct), func(t *testing.T) {
			pr := DefaultParams()
			pr.RetransTimeout = simtime.Us(300)
			pr.MaxRetry = 1000 // survive heavy loss
			e := newEnvParams(t, pr)
			rng := rand.New(rand.NewSource(int64(lossPct)))
			e.link.Drop = func(simnet.Frame) bool { return rng.Intn(100) < lossPct }

			const msgs = 60
			var got [][]byte
			e.eng.Spawn("test", func(p *simtime.Proc) {
				c := makeEndpoint(t, p, e.a, RC)
				s := makeEndpoint(t, p, e.b, RC)
				connect(t, p, c, s)
				sva, smr := e.a.buffer(t, p, c.pd, 8192, AccessLocalWrite)
				rva, rmr := e.b.buffer(t, p, s.pd, 64*msgs, AccessLocalWrite)

				e.eng.Spawn("receiver", func(p *simtime.Proc) {
					for i := 0; i < msgs; i++ {
						s.qp.PostRecv(p, RecvWR{WRID: uint64(i), Addr: rva + uint64(i*64), LKey: rmr.LKey, Len: 64})
					}
					for i := 0; i < msgs; i++ {
						wc := s.rcq.Wait(p)
						if wc.Status != WCSuccess {
							t.Errorf("recv %d: %v", i, wc.Status)
							return
						}
						buf := make([]byte, wc.ByteLen)
						e.b.hva.Read(rva+wc.WRID*64, buf)
						got = append(got, buf)
					}
				})
				e.eng.Spawn("sender", func(p *simtime.Proc) {
					for i := 0; i < msgs; i++ {
						msg := []byte(fmt.Sprintf("message-%03d", i))
						e.a.hva.Write(sva, msg)
						c.qp.PostSend(p, SendWR{WRID: uint64(i), Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: len(msg)})
						if wc := c.scq.Wait(p); wc.Status != WCSuccess {
							t.Errorf("send %d: %v", i, wc.Status)
							return
						}
					}
				})
			})
			e.eng.Run()
			if len(got) != msgs {
				t.Fatalf("delivered %d/%d messages", len(got), msgs)
			}
			for i, g := range got {
				want := fmt.Sprintf("message-%03d", i)
				if string(g) != want {
					t.Fatalf("msg %d = %q, want %q (ordering or duplication broken)", i, g, want)
				}
			}
			if e.a.dev.Stats.Retransmits == 0 {
				t.Error("no retransmissions despite loss — drop hook inert?")
			}
		})
	}
}

// TestWriteIntegrityUnderLoss streams multi-packet RDMA WRITEs through a
// lossy link and checks the remote buffer bit-for-bit.
func TestWriteIntegrityUnderLoss(t *testing.T) {
	pr := DefaultParams()
	pr.RetransTimeout = simtime.Us(300)
	pr.MaxRetry = 1000
	e := newEnvParams(t, pr)
	rng := rand.New(rand.NewSource(99))
	e.link.Drop = func(simnet.Frame) bool { return rng.Intn(100) < 10 }

	const size = 48 * 1024 // 12 packets
	src := make([]byte, size)
	rng.Read(src)
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, size, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, size, AccessLocalWrite|AccessRemoteWrite)
		e.a.hva.Write(sva, src)
		c.qp.PostSend(p, SendWR{
			WRID: 1, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: size,
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		if wc := c.scq.Wait(p); wc.Status != WCSuccess {
			t.Errorf("write: %v", wc.Status)
			return
		}
		got = make([]byte, size)
		e.b.hva.Read(rva, got)
	})
	e.eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatal("written data corrupted by retransmission path")
	}
}

// TestInterleavedSendAndWrite mixes operation types on one QP and checks
// completions arrive in posting order (RC ordering guarantee).
func TestInterleavedSendAndWrite(t *testing.T) {
	e := newEnv(t)
	var order []uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64*1024, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64*1024, AccessLocalWrite|AccessRemoteWrite)
		for i := 0; i < 8; i++ {
			s.qp.PostRecv(p, RecvWR{WRID: uint64(i), Addr: rva, LKey: rmr.LKey, Len: 4096})
		}
		for i := 0; i < 16; i++ {
			wr := SendWR{WRID: uint64(i), LocalAddr: sva, LKey: smr.LKey, Len: 1000 + i*128}
			if i%2 == 0 {
				wr.Op = WRSend
			} else {
				wr.Op = WRWrite
				wr.RemoteAddr = rva + 8192
				wr.RKey = rmr.RKey
			}
			if err := c.qp.PostSend(p, wr); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 16; i++ {
			wc := c.scq.Wait(p)
			if wc.Status != WCSuccess {
				t.Errorf("wc %d: %v", i, wc.Status)
				return
			}
			order = append(order, wc.WRID)
		}
	})
	e.eng.Run()
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("completion order %v violates RC ordering", order)
		}
	}
}

// TestManyQPsManyMessages is a soak: 24 QP pairs exchange messages
// concurrently over one link; every payload must land at its own peer.
func TestManyQPsManyMessages(t *testing.T) {
	e := newEnv(t)
	const pairs = 24
	const msgsPer = 10
	delivered := make([]int, pairs)
	e.eng.Spawn("setup", func(p *simtime.Proc) {
		for i := 0; i < pairs; i++ {
			i := i
			c := makeEndpoint(t, p, e.a, RC)
			s := makeEndpoint(t, p, e.b, RC)
			connect(t, p, c, s)
			sva, smr := e.a.buffer(t, p, c.pd, 4096, AccessLocalWrite)
			rva, rmr := e.b.buffer(t, p, s.pd, 4096, AccessLocalWrite)
			e.eng.Spawn(fmt.Sprintf("rx%d", i), func(p *simtime.Proc) {
				for m := 0; m < msgsPer; m++ {
					s.qp.PostRecv(p, RecvWR{WRID: uint64(m), Addr: rva, LKey: rmr.LKey, Len: 64})
					wc := s.rcq.Wait(p)
					if wc.Status != WCSuccess {
						t.Errorf("pair %d recv: %v", i, wc.Status)
						return
					}
					buf := make([]byte, wc.ByteLen)
					e.b.hva.Read(rva, buf)
					want := fmt.Sprintf("p%02d-m%02d", i, m)
					if string(buf) != want {
						t.Errorf("pair %d got %q want %q (cross-QP leak?)", i, buf, want)
						return
					}
					delivered[i]++
				}
			})
			e.eng.Spawn(fmt.Sprintf("tx%d", i), func(p *simtime.Proc) {
				for m := 0; m < msgsPer; m++ {
					msg := []byte(fmt.Sprintf("p%02d-m%02d", i, m))
					e.a.hva.Write(sva, msg)
					c.qp.PostSend(p, SendWR{WRID: uint64(m), Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: len(msg)})
					if wc := c.scq.Wait(p); wc.Status != WCSuccess {
						t.Errorf("pair %d send: %v", i, wc.Status)
						return
					}
				}
			})
		}
	})
	e.eng.Run()
	for i, n := range delivered {
		if n != msgsPer {
			t.Fatalf("pair %d delivered %d/%d", i, n, msgsPer)
		}
	}
}

// TestTokenBucketQuick: the bucket never admits more than burst + rate·t
// bits over any horizon.
func TestTokenBucketQuick(t *testing.T) {
	f := func(rateMbps uint16, events []uint16) bool {
		rate := float64(rateMbps%1000+1) * 1e6
		burst := 32768.0
		tb := newTokenBucket(rate, burst)
		now := simtime.Time(0)
		admitted := 0.0
		for _, ev := range events {
			now = now.Add(simtime.Duration(ev) * simtime.Microsecond)
			bits := float64(ev%2048) + 1
			if ok, _ := tb.tryTake(now, bits); ok {
				admitted += bits
			}
		}
		limit := burst + rate*float64(now)/1e9 + 1
		return admitted <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLRUCacheQuick: after any operation sequence the cache holds at most
// cap entries, and a just-touched key is always present.
func TestLRUCacheQuick(t *testing.T) {
	f := func(keys []uint16) bool {
		c := newLRU(8)
		for _, k := range keys {
			c.touch(uint32(k % 64))
			if c.n > 8 {
				return false
			}
			if !c.touch(uint32(k % 64)) { // immediate re-touch must hit
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(3)
	c.touch(1)
	c.touch(2)
	c.touch(3)
	c.touch(1)      // order (LRU→MRU): 2,3,1
	c.touch(4)      // evicts 2 → 3,1,4
	if c.touch(2) { // miss; inserting 2 evicts 3 → 1,4,2
		t.Fatal("2 should have been evicted")
	}
	if c.touch(3) {
		t.Fatal("3 should have been evicted by 2's insert")
	}
	// 3's insert evicted 1 → present: 4,2,3.
	if !c.touch(4) || !c.touch(2) || !c.touch(3) {
		t.Fatal("recently used entries evicted")
	}
}

// TestSQDStopsNewTransmissions: moving to SQD drains but does not emit
// new packets; returning to RTS resumes.
func TestSQDDrainAndResume(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		for i := 0; i < 2; i++ {
			s.qp.PostRecv(p, RecvWR{WRID: uint64(i), Addr: rva, LKey: rmr.LKey, Len: 64})
		}
		// Drain the send queue.
		if err := e.a.dev.ModifyQP(p, c.qp, Attr{ToState: StateSQD}); err != nil {
			t.Error(err)
			return
		}
		if err := c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4}); err != nil {
			t.Errorf("post in SQD should queue: %v", err)
			return
		}
		p.Sleep(simtime.Ms(2))
		if e.a.dev.Stats.TxMsgs != 0 {
			t.Error("SQD emitted a message")
		}
		// Resume.
		if err := e.a.dev.ModifyQP(p, c.qp, Attr{ToState: StateRTS}); err != nil {
			t.Error(err)
			return
		}
		wc := s.rcq.Wait(p)
		if wc.Status != WCSuccess {
			t.Errorf("post-resume recv: %v", wc.Status)
		}
	})
	e.eng.Run()
}

// TestRNRRetryExhaustionErrorsOut: a receiver that never posts a buffer
// eventually fails the sender with RNR_RETRY_EXC_ERR.
func TestRNRRetryExhaustionErrorsOut(t *testing.T) {
	pr := DefaultParams()
	pr.MaxRetry = 3
	pr.RNRTimer = simtime.Us(50)
	e := newEnvParams(t, pr)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		wc = c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCRNRRetryExceeded {
		t.Fatalf("WC = %+v, want RNR_RETRY_EXC_ERR", wc)
	}
}

// TestUnsignaledSendsSuppressSuccessCQEs: only the periodic signaled WR
// completes; flushes still surface errors for unsignaled ones.
func TestUnsignaledSendsSuppressSuccessCQEs(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		for i := 0; i < 8; i++ {
			s.qp.PostRecv(p, RecvWR{WRID: uint64(i), Addr: rva, LKey: rmr.LKey, Len: 64})
		}
		for i := 0; i < 8; i++ {
			wr := SendWR{WRID: uint64(i), Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4, Unsignaled: i != 7}
			if err := c.qp.PostSend(p, wr); err != nil {
				t.Error(err)
				return
			}
		}
		wc := c.scq.Wait(p)
		if wc.WRID != 7 || wc.Status != WCSuccess {
			t.Errorf("signaled WC = %+v", wc)
		}
		p.Sleep(simtime.Ms(1))
		if c.scq.Len() != 0 {
			t.Errorf("unsignaled sends produced %d extra CQEs", c.scq.Len())
		}
		// All eight messages arrived regardless.
		if got := s.rcq.Len(); got != 8 {
			t.Errorf("receiver completed %d, want 8", got)
		}
	})
	e.eng.Run()
}

// TestUnsignaledFlushStillErrors: a flush must surface even suppressed WRs
// (the application needs to learn about the failure).
func TestUnsignaledFlushStillErrors(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		// No receive posted: the send stays queued behind RNR retries.
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4, Unsignaled: true})
		e.a.dev.ModifyQP(p, c.qp, Attr{ToState: StateError})
		wc, ok := c.scq.WaitTimeout(p, simtime.Ms(1))
		if !ok || wc.Status != WCFlushErr {
			t.Errorf("flush WC = %+v ok=%v", wc, ok)
		}
		_ = s
	})
	e.eng.Run()
}

// TestInlineSendNeedsNoMR: inline payloads travel without any memory
// registration and the post-time copy protects against buffer reuse.
func TestInlineSendNeedsNoMR(t *testing.T) {
	e := newEnv(t)
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 1, Addr: rva, LKey: rmr.LKey, Len: 64})
		buf := []byte("inline payload!")
		if err := c.qp.PostSend(p, SendWR{WRID: 2, Op: WRSend, InlineData: buf}); err != nil {
			t.Error(err)
			return
		}
		// Clobber the app buffer immediately: the NIC must have copied.
		for i := range buf {
			buf[i] = 'X'
		}
		wc := s.rcq.Wait(p)
		if wc.Status != WCSuccess || wc.ByteLen != 15 {
			t.Errorf("recv WC = %+v", wc)
			return
		}
		got = make([]byte, wc.ByteLen)
		e.b.hva.Read(rva, got)
		c.scq.Wait(p)
	})
	e.eng.Run()
	if string(got) != "inline payload!" {
		t.Fatalf("got %q (inline copy missing?)", got)
	}
}

// TestInlineLimits: oversize inline and inline READ are rejected at post.
func TestInlineLimits(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		if err := c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, InlineData: make([]byte, 4096)}); err == nil {
			t.Error("oversize inline accepted")
		}
		if err := c.qp.PostSend(p, SendWR{WRID: 2, Op: WRRead, InlineData: []byte("x")}); err == nil {
			t.Error("inline READ accepted")
		}
	})
	e.eng.Run()
}

// TestInlineWrite: inline also works for RDMA WRITE (common for doorbells
// and small notifications).
func TestInlineWrite(t *testing.T) {
	e := newEnv(t)
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteWrite)
		if err := c.qp.PostSend(p, SendWR{
			WRID: 1, Op: WRWrite, InlineData: []byte("poke"),
			RemoteAddr: rva, RKey: rmr.RKey,
		}); err != nil {
			t.Error(err)
			return
		}
		wc := c.scq.Wait(p)
		if wc.Status != WCSuccess {
			t.Errorf("WC = %+v", wc)
		}
		got = make([]byte, 4)
		e.b.hva.Read(rva, got)
	})
	e.eng.Run()
	if string(got) != "poke" {
		t.Fatalf("remote memory = %q", got)
	}
}

// TestAtomicFetchAdd: the canonical distributed counter — every increment
// returns the pre-image, all distinct, memory ends at the sum.
func TestAtomicFetchAdd(t *testing.T) {
	e := newEnv(t)
	var origs []uint64
	var final uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		lva, lmr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteAtomic)
		for i := 0; i < 10; i++ {
			if err := c.qp.PostSend(p, SendWR{
				WRID: uint64(i), Op: WRAtomicFAdd,
				LocalAddr: lva, LKey: lmr.LKey,
				RemoteAddr: rva, RKey: rmr.RKey, SwapAdd: 7,
			}); err != nil {
				t.Error(err)
				return
			}
			wc := c.scq.Wait(p)
			if wc.Status != WCSuccess || wc.ByteLen != 8 {
				t.Errorf("atomic WC = %+v", wc)
				return
			}
			var buf [8]byte
			e.a.hva.Read(lva, buf[:])
			origs = append(origs, binaryBE(buf))
		}
		var fb [8]byte
		e.b.hva.Read(rva, fb[:])
		final = binaryBE(fb)
	})
	e.eng.Run()
	if len(origs) != 10 {
		t.Fatalf("completed %d atomics", len(origs))
	}
	for i, o := range origs {
		if o != uint64(i*7) {
			t.Fatalf("origs = %v; fetch-add not serialized", origs)
		}
	}
	if final != 70 {
		t.Fatalf("remote value = %d, want 70", final)
	}
}

func binaryBE(b [8]byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// TestAtomicCompareSwap: succeeds only when the comparator matches.
func TestAtomicCompareSwap(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		lva, lmr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteAtomic)
		cas := func(compare, swap uint64) uint64 {
			c.qp.PostSend(p, SendWR{
				WRID: 1, Op: WRAtomicCSwap, LocalAddr: lva, LKey: lmr.LKey,
				RemoteAddr: rva, RKey: rmr.RKey, Compare: compare, SwapAdd: swap,
			})
			if wc := c.scq.Wait(p); wc.Status != WCSuccess {
				t.Fatalf("cas WC = %+v", wc)
			}
			var buf [8]byte
			e.a.hva.Read(lva, buf[:])
			return binaryBE(buf)
		}
		if got := cas(0, 42); got != 0 { // 0 -> 42 succeeds
			t.Errorf("cas1 orig = %d", got)
		}
		if got := cas(0, 99); got != 42 { // comparator stale: fails
			t.Errorf("cas2 orig = %d", got)
		}
		var fb [8]byte
		e.b.hva.Read(rva, fb[:])
		if binaryBE(fb) != 42 { // failed CAS left memory unchanged
			t.Errorf("remote = %d, want 42", binaryBE(fb))
		}
		if got := cas(42, 7); got != 42 { // correct comparator: swaps
			t.Errorf("cas3 orig = %d", got)
		}
	})
	e.eng.Run()
}

// TestAtomicRequiresPermissionAndAlignment.
func TestAtomicRequiresPermissionAndAlignment(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		lva, lmr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		// No AccessRemoteAtomic on the target.
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteWrite)
		c.qp.PostSend(p, SendWR{
			WRID: 1, Op: WRAtomicFAdd, LocalAddr: lva, LKey: lmr.LKey,
			RemoteAddr: rva, RKey: rmr.RKey, SwapAdd: 1,
		})
		if wc := c.scq.Wait(p); wc.Status != WCRemoteAccessErr {
			t.Errorf("permission WC = %+v", wc)
		}
	})
	e.eng.Run()
	// Misaligned target on a permitted MR.
	e2 := newEnv(t)
	e2.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e2.a, RC)
		s := makeEndpoint(t, p, e2.b, RC)
		connect(t, p, c, s)
		lva, lmr := e2.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e2.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteAtomic)
		c.qp.PostSend(p, SendWR{
			WRID: 1, Op: WRAtomicFAdd, LocalAddr: lva, LKey: lmr.LKey,
			RemoteAddr: rva + 3, RKey: rmr.RKey, SwapAdd: 1,
		})
		if wc := c.scq.Wait(p); wc.Status != WCRemoteAccessErr {
			t.Errorf("alignment WC = %+v", wc)
		}
	})
	e2.eng.Run()
}

// TestAtomicDuplicateNotReexecuted: a retransmitted fetch-add must be
// answered from the responder's history, not applied twice.
func TestAtomicDuplicateNotReexecuted(t *testing.T) {
	pr := DefaultParams()
	pr.RetransTimeout = simtime.Us(200)
	pr.MaxRetry = 100
	e := newEnvParams(t, pr)
	dropped := false
	e.link.Drop = func(f simnet.Frame) bool {
		// Drop the FIRST atomic ack (B→A) so A retransmits the request.
		if dropped || f.SrcMAC() != (packet.MAC{2, 0, 0, 0, 0, 2}) {
			return false
		}
		pkt, err := packet.Decode(f)
		if err != nil || pkt.BTH() == nil || pkt.BTH().OpCode != packet.OpAtomicAcknowledge {
			return false
		}
		dropped = true
		return true
	}
	var orig, final uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		lva, lmr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteAtomic)
		c.qp.PostSend(p, SendWR{
			WRID: 1, Op: WRAtomicFAdd, LocalAddr: lva, LKey: lmr.LKey,
			RemoteAddr: rva, RKey: rmr.RKey, SwapAdd: 5,
		})
		if wc := c.scq.Wait(p); wc.Status != WCSuccess {
			t.Errorf("WC = %+v", wc)
			return
		}
		var b [8]byte
		e.a.hva.Read(lva, b[:])
		orig = binaryBE(b)
		e.b.hva.Read(rva, b[:])
		final = binaryBE(b)
	})
	e.eng.Run()
	if !dropped {
		t.Fatal("ack drop never fired")
	}
	if orig != 0 {
		t.Fatalf("orig = %d, want 0", orig)
	}
	if final != 5 {
		t.Fatalf("remote = %d, want 5 (duplicate was re-executed?)", final)
	}
}

// TestSRQSharedAcrossQPs: two senders feed one receiver whose QPs share a
// single SRQ pool; every message consumes exactly one shared WQE.
func TestSRQSharedAcrossQPs(t *testing.T) {
	e := newEnv(t)
	var got []string
	e.eng.Spawn("test", func(p *simtime.Proc) {
		// Receiver: one SRQ, one CQ, two QPs drawing from the pool.
		fn := e.b.dev.PF()
		pd := e.b.dev.AllocPD(p, fn)
		cq := e.b.dev.CreateCQ(p, fn, 64)
		srq := e.b.dev.CreateSRQ(p, fn, 32)
		rva, rmr := e.b.buffer(t, p, pd, 16*64, AccessLocalWrite)
		for i := 0; i < 16; i++ {
			if err := srq.PostRecv(p, RecvWR{WRID: uint64(i), Addr: rva + uint64(i*64), LKey: rmr.LKey, Len: 64}); err != nil {
				t.Error(err)
				return
			}
		}
		caps := DefaultCaps()
		caps.SRQ = srq
		mkSrv := func() *endpoint {
			qp := e.b.dev.CreateQP(p, fn, pd, cq, cq, RC, caps)
			return &endpoint{n: e.b, fn: fn, pd: pd, scq: cq, rcq: cq, qp: qp}
		}
		s1, s2 := mkSrv(), mkSrv()
		c1 := makeEndpoint(t, p, e.a, RC)
		c2 := makeEndpoint(t, p, e.a, RC)
		connect(t, p, c1, s1)
		connect(t, p, c2, s2)

		sva1, smr1 := e.a.buffer(t, p, c1.pd, 4096, AccessLocalWrite)
		sva2, smr2 := e.a.buffer(t, p, c2.pd, 4096, AccessLocalWrite)
		send := func(c *endpoint, va uint64, mr *MR, msg string) {
			e.a.hva.Write(va, []byte(msg))
			c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: va, LKey: mr.LKey, Len: len(msg)})
			if wc := c.scq.Wait(p); wc.Status != WCSuccess {
				t.Errorf("send %q: %v", msg, wc.Status)
			}
		}
		send(c1, sva1, smr1, "from-qp1-a")
		send(c2, sva2, smr2, "from-qp2-a")
		send(c1, sva1, smr1, "from-qp1-b")
		for i := 0; i < 3; i++ {
			wc := cq.Wait(p)
			if wc.Status != WCSuccess || !wc.Recv {
				t.Errorf("recv wc = %+v", wc)
				return
			}
			buf := make([]byte, wc.ByteLen)
			e.b.hva.Read(rva+wc.WRID*64, buf)
			got = append(got, string(buf))
		}
		if srq.Len() != 13 {
			t.Errorf("SRQ holds %d WQEs, want 13 (3 consumed)", srq.Len())
		}
		// QPs on an SRQ must refuse private posts.
		if err := s1.qp.PostRecv(p, RecvWR{WRID: 99, Addr: rva, LKey: rmr.LKey, Len: 64}); err == nil {
			t.Error("private post_recv on an SRQ-attached QP accepted")
		}
	})
	e.eng.Run()
	want := map[string]bool{"from-qp1-a": true, "from-qp2-a": true, "from-qp1-b": true}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected payload %q in %v", g, got)
		}
	}
}

// TestSRQEmptyTriggersRNR: draining the shared pool RNR-NAKs exactly like
// an empty private RQ, and refilling resumes delivery.
func TestSRQEmptyTriggersRNR(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		fn := e.b.dev.PF()
		pd := e.b.dev.AllocPD(p, fn)
		cq := e.b.dev.CreateCQ(p, fn, 64)
		srq := e.b.dev.CreateSRQ(p, fn, 32)
		rva, rmr := e.b.buffer(t, p, pd, 4096, AccessLocalWrite)
		caps := DefaultCaps()
		caps.SRQ = srq
		qp := e.b.dev.CreateQP(p, fn, pd, cq, cq, RC, caps)
		s := &endpoint{n: e.b, fn: fn, pd: pd, scq: cq, rcq: cq, qp: qp}
		c := makeEndpoint(t, p, e.a, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		// No SRQ WQEs yet: the send must spin on RNR.
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		p.Sleep(simtime.Us(250))
		if e.b.dev.Stats.RNRsSent == 0 {
			t.Error("no RNR NAK for an empty SRQ")
		}
		srq.PostRecv(p, RecvWR{WRID: 7, Addr: rva, LKey: rmr.LKey, Len: 64})
		wc := cq.Wait(p)
		if wc.Status != WCSuccess || wc.WRID != 7 {
			t.Errorf("recv wc = %+v", wc)
		}
	})
	e.eng.Run()
}
