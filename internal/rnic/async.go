package rnic

// Async events are the device's out-of-band error channel, modeled on
// ibv_get_async_event: conditions the data path cannot report through a
// completion queue alone — a QP forced to ERROR by the transport engine
// (retry exhaustion, RNR exhaustion, fatal remote NAK) or a port state
// change — are raised here so the owner of the device can react instead of
// discovering the death by timeout.

// AsyncEventType discriminates async events.
type AsyncEventType int

const (
	// EventQPFatal reports a QP the hardware moved to ERROR. Exactly one
	// fatal event is raised per QP per visit to ERROR; Status carries the
	// cause (WCRetryExceeded, WCRNRRetryExceeded, WCRemoteOpErr...).
	EventQPFatal AsyncEventType = iota
	// EventPortDown / EventPortUp report physical port state edges.
	EventPortDown
	EventPortUp
)

func (t AsyncEventType) String() string {
	switch t {
	case EventQPFatal:
		return "qp-fatal"
	case EventPortDown:
		return "port-down"
	case EventPortUp:
		return "port-up"
	}
	return "unknown"
}

// AsyncEvent is one device-level asynchronous event.
type AsyncEvent struct {
	Type   AsyncEventType
	QPN    uint32   // the affected QP for EventQPFatal; 0 for port events
	Status WCStatus // cause for EventQPFatal
}

// SubscribeAsync registers fn to receive every async event the device
// raises. Delivery is synchronous at the instant the hardware would raise
// the interrupt; subscribers that model interrupt latency (e.g. the virtio
// backend) add their own delay. Subscriptions cannot be removed — the set
// is fixed at wiring time, like MSI-X vectors.
func (d *Device) SubscribeAsync(fn func(AsyncEvent)) {
	d.asyncSubs = append(d.asyncSubs, fn)
}

// raiseAsync counts and fans an event out to every subscriber.
func (d *Device) raiseAsync(ev AsyncEvent) {
	d.Stats.AsyncEvents++
	for _, fn := range d.asyncSubs {
		fn(ev)
	}
}

// SetPortState records a physical port state change and raises the
// matching async event on an edge. The chaos wiring calls this when the
// host's uplink goes down or comes back; the link itself models the actual
// frame loss, this is only the NIC's view of carrier.
func (d *Device) SetPortState(up bool) {
	if d.portDown == !up {
		return
	}
	d.portDown = !up
	if up {
		d.raiseAsync(AsyncEvent{Type: EventPortUp})
	} else {
		d.raiseAsync(AsyncEvent{Type: EventPortDown})
	}
}

// PortUp reports the NIC's view of carrier (true until told otherwise).
func (d *Device) PortUp() bool { return !d.portDown }
