package rnic

import (
	"errors"
	"fmt"

	"masq/internal/mem"
	"masq/internal/packet"
	"masq/internal/simtime"
)

// Common errors.
var (
	ErrBadState      = errors.New("rnic: invalid QP state for operation")
	ErrBadTransition = errors.New("rnic: invalid QP state transition")
	ErrNoResources   = errors.New("rnic: out of device resources")
	ErrBadKey        = errors.New("rnic: unknown or mismatched key")
	ErrBadAccess     = errors.New("rnic: access violates MR permissions or bounds")
	ErrQueueFull     = errors.New("rnic: work queue full")
)

// QPType selects the transport service.
type QPType int

// Supported transports.
const (
	RC QPType = iota // reliable connection
	UD               // unreliable datagram
)

func (t QPType) String() string {
	if t == RC {
		return "RC"
	}
	return "UD"
}

// State is a QP state (Fig. 5).
type State int

// QP states.
const (
	StateReset State = iota
	StateInit
	StateRTR
	StateRTS
	StateSQD
	StateSQE
	StateError
)

var stateNames = [...]string{"RESET", "INIT", "RTR", "RTS", "SQD", "SQE", "ERROR"}

func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// validTransitions encodes Fig. 5. Any state may move to ERROR, and ERROR
// (or anything else) may be torn down through RESET.
var validTransitions = map[State][]State{
	StateReset: {StateInit},
	StateInit:  {StateRTR},
	StateRTR:   {StateRTS},
	StateRTS:   {StateSQD},
	StateSQD:   {StateRTS, StateSQE},
	StateSQE:   {StateRTS},
}

func transitionAllowed(from, to State) bool {
	if to == StateError || to == StateReset {
		return true
	}
	for _, s := range validTransitions[from] {
		if s == to {
			return true
		}
	}
	return false
}

// CanPostSend reports whether send WRs may be posted in this state
// (Table 2: posting is allowed even in ERROR; the WR flushes).
func (s State) CanPostSend() bool {
	return s == StateRTS || s == StateSQE || s == StateSQD || s == StateError
}

// CanPostRecv reports whether receive WRs may be posted in this state.
func (s State) CanPostRecv() bool {
	return s != StateReset
}

// canTransmit reports whether the hardware may emit packets for the QP.
func (s State) canTransmit() bool { return s == StateRTS }

// canReceive reports whether incoming packets are processed.
func (s State) canReceive() bool {
	return s == StateRTR || s == StateRTS || s == StateSQD || s == StateSQE
}

// Access flags for memory regions.
type Access int

// MR access permissions.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteWrite
	AccessRemoteRead
	AccessRemoteAtomic
)

// WROp is the operation of a send work request.
type WROp int

// Send WR operations.
const (
	WRSend WROp = iota
	WRSendImm
	WRWrite
	WRWriteImm
	WRRead
	WRAtomicFAdd  // 8-byte remote fetch-and-add
	WRAtomicCSwap // 8-byte remote compare-and-swap
)

var wrOpNames = [...]string{"SEND", "SEND_IMM", "WRITE", "WRITE_IMM", "READ", "ATOMIC_FADD", "ATOMIC_CSWAP"}

func (op WROp) String() string {
	if op >= 0 && int(op) < len(wrOpNames) {
		return wrOpNames[op]
	}
	return fmt.Sprintf("WROp(%d)", int(op))
}

// WCStatus is a completion status.
type WCStatus int

// Completion statuses.
const (
	WCSuccess          WCStatus = iota
	WCFlushErr                  // QP entered ERROR; outstanding WRs flushed (Table 2)
	WCRemoteAccessErr           // responder NAKed an rkey/bounds/PD violation
	WCRetryExceeded             // transport retries exhausted
	WCRNRRetryExceeded          // receiver never posted a buffer
	WCRemoteOpErr
)

var wcStatusNames = [...]string{
	"SUCCESS", "WR_FLUSH_ERR", "REM_ACCESS_ERR", "RETRY_EXC_ERR",
	"RNR_RETRY_EXC_ERR", "REM_OP_ERR",
}

func (s WCStatus) String() string {
	if s >= 0 && int(s) < len(wcStatusNames) {
		return wcStatusNames[s]
	}
	return fmt.Sprintf("WCStatus(%d)", int(s))
}

// WC is a work completion (CQE).
type WC struct {
	WRID    uint64
	Status  WCStatus
	Op      WROp
	QPN     uint32
	ByteLen int
	Imm     uint32
	HasImm  bool
	SrcQP   uint32 // UD receive completions
	Recv    bool   // true for receive completions
}

// AddressVector names the remote endpoint of a connection (part of the QPC
// written by modify_qp(RTR)). It is exactly the state RConnrename rewrites.
type AddressVector struct {
	DGID packet.GID
	DIP  packet.IP
	DMAC packet.MAC
	DQPN uint32
}

// SendWR is a send-queue work request.
type SendWR struct {
	WRID       uint64
	Op         WROp
	LocalAddr  uint64 // VA within an MR registered with LKey
	LKey       uint32
	Len        int
	RemoteAddr uint64 // WRITE/READ target
	RKey       uint32
	Imm        uint32
	// Remote, when set on a UD QP, overrides the QP's address vector
	// (datagrams carry their destination per WQE — Sec. 3.3.4).
	Remote *AddressVector
	QKey   uint32 // UD only

	// Unsignaled suppresses the success completion (IBV_SEND_SIGNALED
	// absent): the WR still completes with an error CQE on failure or
	// flush. Used by high-rate RPC servers to reduce polling load.
	Unsignaled bool
	// InlineData, when non-nil, is copied into the WQE at post time
	// (IBV_SEND_INLINE): no MR or LKey is needed, the buffer may be
	// reused immediately, and Len is taken from the slice. Limited to
	// Params.MaxInline bytes. SEND and WRITE only.
	InlineData []byte

	// Atomic operands: the addend (FETCH_ADD) or swap value (CMP_SWAP)
	// and, for CMP_SWAP, the expected value. The original 8-byte remote
	// value is scattered to LocalAddr/LKey on completion.
	SwapAdd uint64
	Compare uint64
}

// RecvWR is a receive-queue work request.
type RecvWR struct {
	WRID uint64
	Addr uint64
	LKey uint32
	Len  int
}

// PD is a protection domain.
type PD struct {
	Num uint32
	dev *Device
}

// MR is a registered memory region. VA is the address the application uses
// (its own virtual address space); ext are the host-physical extents the
// device DMAs through — the MTT entry.
type MR struct {
	LKey, RKey uint32
	VA         uint64
	Len        int
	Access     Access
	PD         *PD
	ext        []mem.Extent
}

// contains reports whether [va, va+n) lies within the region.
func (mr *MR) contains(va uint64, n int) bool {
	return va >= mr.VA && va+uint64(n) <= mr.VA+uint64(mr.Len)
}

// dma copies between host physical memory and buf at region offset
// va-mr.VA. dir=true writes into memory.
func (mr *MR) dma(m mem.Memory, va uint64, buf []byte, write bool) error {
	if !mr.contains(va, len(buf)) {
		return fmt.Errorf("%w: [%#x,+%d) outside MR [%#x,+%d)", ErrBadAccess, va, len(buf), mr.VA, mr.Len)
	}
	off := int(va - mr.VA)
	for _, e := range mr.ext {
		if off >= e.Len {
			off -= e.Len
			continue
		}
		n := e.Len - off
		if n > len(buf) {
			n = len(buf)
		}
		var err error
		if write {
			err = m.Write(e.Addr+uint64(off), buf[:n])
		} else {
			err = m.Read(e.Addr+uint64(off), buf[:n])
		}
		if err != nil {
			return err
		}
		buf = buf[n:]
		off = 0
		if len(buf) == 0 {
			return nil
		}
	}
	if len(buf) > 0 {
		return fmt.Errorf("%w: MR extents exhausted", ErrBadAccess)
	}
	return nil
}

// CQ is a completion queue. Completions arrive on an internal queue so
// consumers can either poll (TryPoll) or block (Wait).
type CQ struct {
	Num     uint32
	Cap     int
	dev     *Device
	items   *simtime.Queue[WC]
	dropped int
}

// TryPoll returns one completion without blocking; ok is false if empty.
// The caller is charged the poll_cq verb cost.
func (cq *CQ) TryPoll(p *simtime.Proc) (WC, bool) {
	p.Sleep(cq.dev.pollCost())
	return cq.items.TryGet()
}

// Wait blocks until a completion is available and returns it, charging the
// poll_cq cost once. It models an application spinning on poll_cq without
// simulating each empty poll.
func (cq *CQ) Wait(p *simtime.Proc) WC {
	wc := cq.items.Get(p)
	p.Sleep(cq.dev.pollCost())
	return wc
}

// WaitTimeout is Wait with a deadline.
func (cq *CQ) WaitTimeout(p *simtime.Proc, d simtime.Duration) (WC, bool) {
	wc, ok := cq.items.GetTimeout(p, d)
	if ok {
		p.Sleep(cq.dev.pollCost())
	}
	return wc, ok
}

// Len returns the number of pending completions.
func (cq *CQ) Len() int { return cq.items.Len() }

// OnComplete arms fn to receive the next completion inline in the engine
// loop — the callback-style alternative to Wait. The delivery event fires at
// the same instant a Put would wake a parked Wait, so switching a consumer
// between the two styles does not change the event sequence. The caller is
// responsible for charging PollCost (Wait's trailing Sleep) itself.
func (cq *CQ) OnComplete(fn func(WC)) { cq.items.OnNext(fn) }

// TryGet pops a completion without blocking and without charging any verb
// cost; callback-style consumers pair it with OnComplete exactly as Wait
// pairs its inline dequeue with parking.
func (cq *CQ) TryGet() (WC, bool) { return cq.items.TryGet() }

// PollCost returns the poll_cq verb cost, for callback-style consumers that
// charge it with a timer instead of a process sleep.
func (cq *CQ) PollCost() simtime.Duration { return cq.dev.pollCost() }

// post delivers a completion, dropping it if the CQ is full (a CQ overflow
// is a programming error on real hardware too).
func (cq *CQ) post(wc WC) {
	if cq.items.Len() >= cq.Cap {
		cq.dropped++
		return
	}
	cq.items.Put(wc)
}
