package rnic

import (
	"fmt"

	"masq/internal/packet"
	"masq/internal/simtime"
)

// QP is a queue pair. Send-side transport state (PSNs, window, retries)
// lives here; the device's shared TX/RX pipelines operate on it.
type QP struct {
	Num    uint32
	Type   QPType
	Caps   QPCaps
	PD     *PD
	SendCQ *CQ
	RecvCQ *CQ

	// Source addressing, latched from the function at modify_qp(INIT).
	SGID   packet.GID
	SrcIP  packet.IP
	SrcMAC packet.MAC

	// AV is the remote endpoint, written at modify_qp(RTR). This is the
	// part of the QPC that MasQ's RConnrename rewrites from virtual to
	// physical addresses.
	AV   AddressVector
	QKey uint32

	// FlowTag marks the QP as one flow of a shared host connection
	// (written at RTR, zero otherwise): outbound packets carry the tag in
	// an overlay header on the shared-RoCE port, demuxing flows that
	// multiplex one host connection. LastRxFlowTag records the tag of the
	// most recent tagged arrival (demux observability).
	FlowTag       uint16
	FlowVNI       uint32
	LastRxFlowTag uint16

	dev   *Device
	fn    *Func
	srq   *SRQ // shared receive queue (nil = private RQ)
	state State

	// Requester (send) side.
	sq             []*sendWQE
	txIdx          int    // sq index currently being packetized
	txOff          int    // byte offset within sq[txIdx]
	sndNxt, sndUna uint32 // 24-bit PSNs
	retries        int
	rnrRetries     int
	scheduled      bool
	suspended      bool // migration quiesce: no TX, no retransmit timer
	timerPending   bool
	deadline       simtime.Time
	pausedUntil    simtime.Time
	currentDIP     packet.IP // destination of the frame being built

	// Responder (receive) side.
	rq       []RecvWR
	expPSN   uint32
	msn      uint32
	nakSent  bool
	curRecv  *recvCtx
	curWrite *writeCtx
	// rctx/wctx back curRecv/curWrite: one in-progress message of each kind
	// exists per QP at a time, so the contexts live inline and starting a
	// new message allocates nothing.
	rctx recvCtx
	wctx writeCtx
	// atomicHist caches recent atomic results keyed by PSN so a
	// retransmitted (duplicate) atomic request is answered from history
	// instead of being re-executed — atomics are not idempotent.
	atomicHist map[uint32]uint64
	atomicFIFO []uint32

	// wqeFree pools retired send WQEs. READ WQEs are exempt: a read
	// completes through a deferred callback that compares WQE pointer
	// identity against the queue head, and a recycled record could alias a
	// newly posted one.
	wqeFree []*sendWQE
}

type sendWQE struct {
	wr                SendWR
	assigned          bool
	firstPSN, lastPSN uint32
	npkts             int
	readRecv          int // READ: response bytes scattered so far
}

type recvCtx struct {
	wr  RecvWR
	off int
}

type writeCtx struct {
	mr  *MR
	va  uint64
	off int
}

// State returns the current QP state.
func (qp *QP) State() State { return qp.state }

// Func returns the PCI function the QP was created on.
func (qp *QP) Func() *Func { return qp.fn }

// SQLen returns the number of outstanding (unretired) send WRs.
func (qp *QP) SQLen() int { return len(qp.sq) }

// RQLen returns the number of posted receive WRs.
func (qp *QP) RQLen() int { return len(qp.rq) }

// Rebind repoints a pooled QP at a new consumer's PD, CQs and caps (MasQ's
// warm QP pool): a host-memory QPC rewrite with no firmware verb, legal
// only while the QP is idle in RESET or INIT with empty work queues.
func (qp *QP) Rebind(pd *PD, scq, rcq *CQ, caps QPCaps) error {
	if qp.state != StateReset && qp.state != StateInit {
		return fmt.Errorf("%w: rebind in %v", ErrBadState, qp.state)
	}
	if len(qp.sq) != 0 || len(qp.rq) != 0 {
		return fmt.Errorf("rnic: rebind of QP %d with queued work", qp.Num)
	}
	qp.PD = pd
	qp.SendCQ = scq
	qp.RecvCQ = rcq
	qp.Caps = caps
	qp.srq = caps.SRQ
	return nil
}

// psnDiff compares 24-bit PSNs: positive when a is ahead of b.
func psnDiff(a, b uint32) int32 {
	d := (a - b) & 0xffffff
	if d >= 1<<23 {
		return int32(d) - 1<<24
	}
	return int32(d)
}

// PostSend models ibv_post_send. Table 2 semantics: posting is allowed in
// ERROR but the WR completes immediately with a flush error.
func (qp *QP) PostSend(p *simtime.Proc, wr SendWR) error {
	p.Sleep(qp.dev.P.VerbCost[VerbPostSend])
	return qp.postSendNow(wr)
}

// PostSendCost returns the post_send verb cost, for callback-style callers
// that charge it with a timer instead of a process sleep.
func (qp *QP) PostSendCost() simtime.Duration { return qp.dev.P.VerbCost[VerbPostSend] }

// PostSendAsync applies a post_send whose verb cost the caller has already
// charged (Timer.ScheduleAfter(PostSendCost()) standing in for PostSend's
// leading Sleep). The queue-state checks and WQE admission are identical to
// PostSend's.
func (qp *QP) PostSendAsync(wr SendWR) error { return qp.postSendNow(wr) }

// postSendNow is PostSend after its verb-cost charge.
func (qp *QP) postSendNow(wr SendWR) error {
	if !qp.state.CanPostSend() {
		return fmt.Errorf("%w: post_send in %v", ErrBadState, qp.state)
	}
	if qp.state == StateError {
		qp.SendCQ.post(WC{WRID: wr.WRID, Status: WCFlushErr, Op: wr.Op, QPN: qp.Num})
		return nil
	}
	if len(qp.sq) >= qp.Caps.MaxSendWR {
		return ErrQueueFull
	}
	if wr.Op == WRAtomicFAdd || wr.Op == WRAtomicCSwap {
		wr.Len = 8 // atomics are always 8 bytes
	}
	if wr.InlineData != nil {
		if len(wr.InlineData) > qp.dev.P.MaxInline {
			return fmt.Errorf("rnic: inline payload of %d bytes exceeds MaxInline %d", len(wr.InlineData), qp.dev.P.MaxInline)
		}
		if wr.Op == WRRead {
			return fmt.Errorf("rnic: RDMA READ cannot be inline")
		}
		wr.Len = len(wr.InlineData)
		// The driver copies at post time; the caller may reuse its buffer.
		wr.InlineData = append([]byte(nil), wr.InlineData...)
	}
	if qp.Type == UD && wr.Len > qp.dev.P.MTU {
		return fmt.Errorf("rnic: UD message of %d bytes exceeds MTU %d", wr.Len, qp.dev.P.MTU)
	}
	var w *sendWQE
	if n := len(qp.wqeFree); n > 0 {
		w = qp.wqeFree[n-1]
		qp.wqeFree[n-1] = nil
		qp.wqeFree = qp.wqeFree[:n-1]
		*w = sendWQE{wr: wr}
	} else {
		w = &sendWQE{wr: wr}
	}
	qp.sq = append(qp.sq, w)
	qp.kick()
	return nil
}

// PostRecv models ibv_post_recv (allowed in every state but RESET;
// flushes immediately in ERROR — Table 2). QPs attached to an SRQ have no
// private receive queue.
func (qp *QP) PostRecv(p *simtime.Proc, wr RecvWR) error {
	p.Sleep(qp.dev.P.VerbCost[VerbPostRecv])
	if qp.srq != nil {
		return fmt.Errorf("rnic: QP %d uses an SRQ; post to the SRQ instead", qp.Num)
	}
	if !qp.state.CanPostRecv() {
		return fmt.Errorf("%w: post_recv in %v", ErrBadState, qp.state)
	}
	if qp.state == StateError {
		qp.RecvCQ.post(WC{WRID: wr.WRID, Status: WCFlushErr, QPN: qp.Num, Recv: true})
		return nil
	}
	if len(qp.rq) >= qp.Caps.MaxRecvWR {
		return ErrQueueFull
	}
	qp.rq = append(qp.rq, wr)
	return nil
}

// takeRecvWQE pops the next receive WQE from the private RQ or the SRQ.
func (qp *QP) takeRecvWQE() (RecvWR, bool) {
	if qp.srq != nil {
		if len(qp.srq.rq) == 0 {
			return RecvWR{}, false
		}
		wr := qp.srq.rq[0]
		qp.srq.rq = qp.srq.rq[1:]
		return wr, true
	}
	if len(qp.rq) == 0 {
		return RecvWR{}, false
	}
	wr := qp.rq[0]
	qp.rq = qp.rq[1:]
	return wr, true
}

// hasRecvWQE reports whether a receive WQE is available.
func (qp *QP) hasRecvWQE() bool {
	if qp.srq != nil {
		return len(qp.srq.rq) > 0
	}
	return len(qp.rq) > 0
}

// hasWork reports whether the send side has packets it may emit now.
func (qp *QP) hasWork() bool {
	if qp.txIdx >= len(qp.sq) {
		return false
	}
	return psnDiff(qp.sndNxt, qp.sndUna) < int32(qp.dev.P.MaxInflight)
}

// busy reports whether the QP has unfinished send-side work (used by the
// Fig. 18 reset-cost model).
func (qp *QP) busy() bool {
	return len(qp.sq) > 0 || psnDiff(qp.sndNxt, qp.sndUna) > 0
}

// Suspend quiesces the QP's requester side: no packets are emitted and
// the retransmission timer is disarmed until Resume. The responder side
// keeps working. A controller Suspend push sets this on every peer QP of
// a migrating VM so a blackout longer than MaxRetry×RetransTimeout does
// not kill the connection through retry exhaustion.
func (qp *QP) Suspend() { qp.suspended = true }

// Suspended reports whether the QP is migration-quiesced.
func (qp *QP) Suspended() bool { return qp.suspended }

// Resume lifts a suspension. With replay set, transmission restarts from
// the first unacknowledged PSN — the go-back-N replay of the in-flight
// window — without charging a transport retry: those packets were lost to
// a planned blackout, not the network.
func (qp *QP) Resume(replay bool) {
	qp.suspended = false
	if replay && psnDiff(qp.sndNxt, qp.sndUna) > 0 {
		qp.seekTo(qp.sndUna)
		qp.retries = 0
	}
	qp.armTimer()
	qp.kick()
}

// kick schedules the QP on the device TX pipeline if it has work.
func (qp *QP) kick() {
	if qp.scheduled || qp.suspended || !qp.state.canTransmit() || !qp.hasWork() {
		return
	}
	qp.scheduled = true
	qp.dev.txActive.Put(qp)
}

// kickAt re-arms the QP at a future instant (RNR backoff, rate limiting).
func (qp *QP) kickAt(t simtime.Time) {
	qp.dev.eng.At(t, func() { qp.kick() })
}

// clear drops all transport state (modify to RESET).
func (qp *QP) clear() {
	qp.sq = nil
	qp.rq = nil
	qp.txIdx, qp.txOff = 0, 0
	qp.sndNxt, qp.sndUna = 0, 0
	qp.expPSN, qp.msn = 0, 0
	qp.retries, qp.rnrRetries = 0, 0
	qp.curRecv, qp.curWrite = nil, nil
	qp.atomicHist, qp.atomicFIFO = nil, nil
	qp.nakSent = false
	qp.deadline = 0
}

// flush completes all outstanding work requests with WR_FLUSH_ERR
// (Table 2: "flushed with error").
func (qp *QP) flush() {
	for _, w := range qp.sq {
		qp.SendCQ.post(WC{WRID: w.wr.WRID, Status: WCFlushErr, Op: w.wr.Op, QPN: qp.Num})
	}
	qp.sq = nil
	qp.txIdx, qp.txOff = 0, 0
	if qp.curRecv != nil {
		qp.RecvCQ.post(WC{WRID: qp.curRecv.wr.WRID, Status: WCFlushErr, QPN: qp.Num, Recv: true})
		qp.curRecv = nil
	}
	for _, w := range qp.rq {
		qp.RecvCQ.post(WC{WRID: w.WRID, Status: WCFlushErr, QPN: qp.Num, Recv: true})
	}
	qp.rq = nil
	qp.deadline = 0
}

// enterError moves the QP to ERROR from within the transport engine (e.g.
// retry exhaustion), completing the head WQE with status and flushing the
// rest. This is the hardware-initiated path of Fig. 5's dashed arrows.
// A completion carrying the cause is delivered even when the SQ is empty
// (an app polling the CQ must never wait forever on a dead QP), and
// exactly one EventQPFatal is raised per visit to ERROR.
func (qp *QP) enterError(status WCStatus) {
	if qp.state == StateError {
		return
	}
	if len(qp.sq) > 0 {
		head := qp.sq[0]
		qp.SendCQ.post(WC{WRID: head.wr.WRID, Status: status, Op: head.wr.Op, QPN: qp.Num})
		qp.popHeadSQ()
	} else {
		// No WQE to blame: synthesize a completion (WRID 0) so the error
		// is still observable on the send CQ.
		qp.SendCQ.post(WC{Status: status, QPN: qp.Num})
	}
	qp.state = StateError
	qp.flush()
	qp.dev.raiseAsync(AsyncEvent{Type: EventQPFatal, QPN: qp.Num, Status: status})
}

// rememberAtomic records an executed atomic's result for duplicate
// replay, bounded like a real HCA's responder resources.
func (qp *QP) rememberAtomic(psn uint32, orig uint64) {
	const depth = 16
	if qp.atomicHist == nil {
		qp.atomicHist = make(map[uint32]uint64, depth)
	}
	qp.atomicHist[psn] = orig
	qp.atomicFIFO = append(qp.atomicFIFO, psn)
	if len(qp.atomicFIFO) > depth {
		delete(qp.atomicHist, qp.atomicFIFO[0])
		qp.atomicFIFO = qp.atomicFIFO[1:]
	}
}

// retire completes acknowledged WQEs up to cumulative PSN ack.
func (qp *QP) retire(ack uint32) {
	progress := false
	for len(qp.sq) > 0 {
		w := qp.sq[0]
		if !w.assigned || psnDiff(w.lastPSN, ack) > 0 {
			break
		}
		if w.wr.Op == WRRead && w.readRecv < w.wr.Len {
			break // reads complete via response data, not acks
		}
		qp.completeHead(w)
		progress = true
	}
	if psnDiff(ack+1, qp.sndUna) > 0 {
		qp.sndUna = (ack + 1) & 0xffffff
		progress = true
	}
	if progress {
		qp.retries = 0
		qp.rnrRetries = 0
		qp.armTimer()
		qp.kick()
	}
}

// popHeadSQ removes the head WQE by sliding the tail down one slot. Unlike
// reslicing (sq = sq[1:]), this keeps the backing array anchored, so
// postSendNow's append reuses the same capacity forever instead of
// reallocating every time the window's worth of dead front fills up.
func (qp *QP) popHeadSQ() {
	n := len(qp.sq) - 1
	copy(qp.sq, qp.sq[1:])
	qp.sq[n] = nil
	qp.sq = qp.sq[:n]
}

func (qp *QP) completeHead(w *sendWQE) {
	if !w.wr.Unsignaled {
		qp.SendCQ.post(WC{WRID: w.wr.WRID, Status: WCSuccess, Op: w.wr.Op, QPN: qp.Num, ByteLen: w.wr.Len})
	}
	qp.popHeadSQ()
	if qp.txIdx > 0 {
		qp.txIdx--
	} else {
		qp.txOff = 0 // head was still being packetized; it is gone now
	}
	if w.wr.Op != WRRead {
		// Nothing holds a retired non-READ WQE (read completion callbacks
		// are the one pointer-identity consumer), so recycle it.
		*w = sendWQE{}
		qp.wqeFree = append(qp.wqeFree, w)
	}
}

// rewind restarts transmission from PSN from (go-back-N).
func (qp *QP) rewind(from uint32) {
	qp.dev.Stats.Retransmits++
	qp.retries++
	if qp.retries > qp.dev.P.MaxRetry {
		qp.enterError(WCRetryExceeded)
		return
	}
	if qp.seekTo(from) {
		qp.armTimer()
		qp.kick()
	}
}

// seekTo repositions the send engine to resume at PSN from, reporting
// whether there was anything to resend (false when the ack point raced
// ahead, in which case the engine resets to the tail).
func (qp *QP) seekTo(from uint32) bool {
	for i, w := range qp.sq {
		if !w.assigned {
			break
		}
		if psnDiff(w.lastPSN, from) >= 0 {
			qp.txIdx = i
			if w.wr.Op == WRRead {
				qp.txOff = 0 // re-issue the read request
				from = w.firstPSN
			} else {
				qp.txOff = int(psnDiff(from, w.firstPSN)) * qp.dev.P.MTU
			}
			qp.sndNxt = from
			return true
		}
	}
	// Nothing to resend.
	qp.sndNxt = qp.sndUna
	return false
}

// armTimer pushes the retransmission deadline out. A single callback chain
// per QP tracks the moving deadline, so arming per packet is cheap.
func (qp *QP) armTimer() {
	if psnDiff(qp.sndNxt, qp.sndUna) <= 0 {
		qp.deadline = 0
		return
	}
	qp.deadline = qp.dev.eng.Now().Add(qp.dev.P.RetransTimeout)
	if !qp.timerPending {
		qp.timerPending = true
		qp.dev.eng.After(qp.dev.P.RetransTimeout, qp.timerFired)
	}
}

func (qp *QP) timerFired() {
	qp.timerPending = false
	if qp.suspended || qp.state != StateRTS || qp.deadline == 0 || psnDiff(qp.sndNxt, qp.sndUna) <= 0 {
		return
	}
	now := qp.dev.eng.Now()
	if now < qp.deadline {
		qp.timerPending = true
		qp.dev.eng.At(qp.deadline, qp.timerFired)
		return
	}
	qp.rewind(qp.sndUna)
}
