package rnic

import (
	"fmt"

	"masq/internal/mem"
	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
	"masq/internal/trace"
)

// Stats counts device activity.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	TxMsgs, RxMsgs       uint64
	Retransmits          uint64
	NAKsSent             uint64
	RNRsSent             uint64
	Dropped              uint64 // packets discarded (bad QP, ERROR state, UD without WQE...)
	AsyncEvents          uint64 // async events raised (QP fatal, port up/down)
	TaggedRx             uint64 // flow-tagged packets received (shared-connection mode)
}

// Device is one RoCEv2 RNIC: a physical function, up to MaxVFs virtual
// functions, and the shared transport pipelines behind them.
type Device struct {
	Name string
	P    Params

	// Ingress receives the RoCEv2 packets demultiplexed from the host's
	// physical port (the host steers UDP/4791 here).
	Ingress *simtime.Queue[*packet.Packet]

	Stats Stats

	eng     *simtime.Engine
	hostMem mem.Memory
	port    *simnet.Port

	funcs []*Func
	// qps is indexed by QP number — QPNs are dense (assigned sequentially
	// from 1), so a slice beats a map on the per-packet lookup path.
	qps  []*QP
	nqps int
	mrs  map[uint32]*MR
	cqs  map[uint32]*CQ
	pds  map[uint32]*PD

	nextQPN, nextKey, nextCQ, nextPD uint32

	firmware *simtime.Resource
	txActive *simtime.Queue[*QP]
	ctxCache *lruCache
	rec      *trace.Recorder

	// Async event channel (see async.go).
	asyncSubs []func(AsyncEvent)
	portDown  bool

	// Callback-pipeline state. The TX and RX pipelines each process one
	// packet at a time inline in the engine loop; these fields carry the
	// in-flight packet across the occupancy delay, and the cached callbacks
	// avoid a method-value allocation per re-arm.
	txServe   func(*QP)
	txPktDone *simtime.Timer
	txQP      *QP
	txFrame   simnet.Frame
	txOcc     simtime.Duration

	rxServe   func(*packet.Packet)
	rxPktDone *simtime.Timer
	rxPkt     *packet.Packet
	rxQP      *QP

	// enc is scratch for assembling outbound frames. Serialize copies every
	// header into the wire buffer before returning, so the header structs
	// and layer slice are dead the moment a frame is built and one reusable
	// set per device serves every packet — the engine runs one event at a
	// time, and no assembly spans an event boundary.
	enc frameScratch

	// Pools for the delayed-action records of the data path (post-pipeline
	// frame emission, deferred ACK retirement). Each record owns an
	// intrusive timer, so steady state allocates neither closures nor
	// events.
	emitFree   []*emitJob
	retireFree []*retireJob

	// pktPool recycles decode arenas for arriving frames. The RX pipeline
	// releases a packet once its handler has copied everything out;
	// packets steered elsewhere (e.g. the overlay vswitch) are simply
	// never released and fall back to the garbage collector.
	pktPool packet.Pool
}

// RxDecode decodes an arriving frame from the device's arena pool. The
// caller must treat the packet as dead once the RX pipeline has handled
// (and released) it.
func (d *Device) RxDecode(f simnet.Frame) (*packet.Packet, error) {
	return d.pktPool.Decode(f)
}

// frameScratch holds one reusable set of header layers for Serialize.
type frameScratch struct {
	layers  [8]packet.Layer
	eth     packet.Ethernet
	ip      packet.IPv4
	udp     packet.UDP
	vx      packet.VXLAN
	bth     packet.BTH
	deth    packet.DETH
	reth    packet.RETH
	ae      packet.AtomicETH
	aeth    packet.AETH
	aaeth   packet.AtomicAckETH
	imm     packet.ImmDt
	pay     packet.Payload
	payload []byte
}

// payloadBuf returns an n-byte scratch buffer for gathering DMA payload
// that is consumed (copied) by Serialize within the same call.
func (s *frameScratch) payloadBuf(n int) []byte {
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	return s.payload[:n]
}

// emitJob carries one frame across its post-pipeline latency to emit.
type emitJob struct {
	d       *Device
	dip     packet.IP
	f       simnet.Frame
	countTx bool
	t       *simtime.Timer
}

// emitAfter emits the frame toward dip after delay, counting it against
// the TX stats if countTx (data-path packets are counted at emission; ACKs
// and responses are not, matching the process-based implementation).
func (d *Device) emitAfter(delay simtime.Duration, dip packet.IP, f simnet.Frame, countTx bool) {
	var j *emitJob
	if n := len(d.emitFree); n > 0 {
		j = d.emitFree[n-1]
		d.emitFree[n-1] = nil
		d.emitFree = d.emitFree[:n-1]
	} else {
		j = &emitJob{d: d}
		j.t = d.eng.NewTimer(j.fire)
	}
	j.dip, j.f, j.countTx = dip, f, countTx
	j.t.ScheduleAfter(delay)
}

func (j *emitJob) fire() {
	d, dip, f, count := j.d, j.dip, j.f, j.countTx
	j.f = nil
	d.emitFree = append(d.emitFree, j)
	if count {
		d.Stats.TxPackets++
		d.Stats.TxBytes += uint64(len(f))
	}
	d.emit(dip, f)
}

// retireJob defers a cumulative-ACK retirement by the ACK processing cost.
type retireJob struct {
	d   *Device
	qp  *QP
	psn uint32
	t   *simtime.Timer
}

// retireAfter retires qp's WQEs up to psn once the ACK processing delay
// elapses.
func (d *Device) retireAfter(delay simtime.Duration, qp *QP, psn uint32) {
	var j *retireJob
	if n := len(d.retireFree); n > 0 {
		j = d.retireFree[n-1]
		d.retireFree[n-1] = nil
		d.retireFree = d.retireFree[:n-1]
	} else {
		j = &retireJob{d: d}
		j.t = d.eng.NewTimer(j.fire)
	}
	j.qp, j.psn = qp, psn
	j.t.ScheduleAfter(delay)
}

func (j *retireJob) fire() {
	qp, psn := j.qp, j.psn
	j.qp = nil
	j.d.retireFree = append(j.d.retireFree, j)
	qp.retire(psn)
}

// SetRecorder attaches a trace recorder; every firmware verb execution is
// then recorded as an rnic-layer span. A nil recorder is valid and free.
func (d *Device) SetRecorder(r *trace.Recorder) { d.rec = r }

// Func is a PCI function of the device: index 0 is the physical function,
// higher indices are SR-IOV virtual functions.
type Func struct {
	Index int
	IP    packet.IP
	MAC   packet.MAC

	dev     *Device
	gids    []packet.GID
	limiter *tokenBucket
	IOMMU   bool // traffic DMA-remapped (SR-IOV passthrough)
}

// NewDevice creates a device whose DMA engine reads and writes hostMem.
// The physical function exists immediately; call AttachPort before use.
func NewDevice(eng *simtime.Engine, name string, p Params, hostMem mem.Memory) *Device {
	d := &Device{
		Name:     name,
		P:        p,
		Ingress:  simtime.NewQueue[*packet.Packet](eng),
		eng:      eng,
		hostMem:  hostMem,
		mrs:      make(map[uint32]*MR),
		cqs:      make(map[uint32]*CQ),
		pds:      make(map[uint32]*PD),
		nextQPN:  1,
		nextKey:  p.KeyBase + 1,
		nextCQ:   1,
		nextPD:   1,
		firmware: simtime.NewResource(eng, 1),
		txActive: simtime.NewQueue[*QP](eng),
	}
	if p.CtxCacheSize > 0 {
		d.ctxCache = newLRU(p.CtxCacheSize)
	}
	d.funcs = []*Func{{Index: 0, dev: d, gids: make([]packet.GID, 1)}}
	return d
}

// AttachPort wires the device's wire side and starts the TX/RX pipelines.
// Both pipelines run as engine callbacks — no goroutine per device.
func (d *Device) AttachPort(port *simnet.Port) {
	d.port = port
	d.txServe = d.txService
	d.txPktDone = d.eng.NewTimer(d.txDone)
	d.txActive.OnNext(d.txServe)
	d.rxServe = d.rxService
	d.rxPktDone = d.eng.NewTimer(d.rxDone)
	d.Ingress.OnNext(d.rxServe)
}

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *simtime.Engine { return d.eng }

// ServePort attaches the port and pumps every RoCEv2 frame arriving on it
// into the device. Hosts that share the port with an overlay network run
// their own demultiplexer and feed Ingress themselves; this helper is for
// RDMA-only wiring (and tests).
func (d *Device) ServePort(port *simnet.Port) {
	d.AttachPort(port)
	var serve func(simnet.Frame)
	serve = func(f simnet.Frame) {
		for {
			pkt, err := d.pktPool.Decode(f)
			if err != nil {
				d.Stats.Dropped++
			} else if u := pkt.UDP(); u != nil && (u.DstPort == packet.PortRoCEv2 || u.DstPort == packet.PortRoCEShared) {
				d.Ingress.Put(pkt)
			} else {
				pkt.Release()
			}
			var ok bool
			f, ok = port.RX.TryGet()
			if !ok {
				port.RX.OnNext(serve)
				return
			}
		}
	}
	port.RX.OnNext(serve)
}

// PF returns the physical function.
func (d *Device) PF() *Func { return d.funcs[0] }

// Funcs returns all functions, PF first.
func (d *Device) Funcs() []*Func { return d.funcs }

// AddVF creates a new virtual function. The device exposes at most
// Params.MaxVFs of them (Table 5: 8 on non-ARI PCIe).
func (d *Device) AddVF() (*Func, error) {
	if len(d.funcs)-1 >= d.P.MaxVFs {
		return nil, fmt.Errorf("%w: device %s supports %d VFs", ErrNoResources, d.Name, d.P.MaxVFs)
	}
	f := &Func{Index: len(d.funcs), dev: d, gids: make([]packet.GID, 1)}
	d.funcs = append(d.funcs, f)
	return f, nil
}

// SetAddr assigns the function's network identity. For the PF this is the
// host's underlay address; for a passthrough VF it is the VM's address.
func (f *Func) SetAddr(ip packet.IP, mac packet.MAC) {
	f.IP = ip
	f.MAC = mac
	f.gids[0] = packet.GIDFromIP(ip)
}

// GID returns GID table entry i (zero GID if unset).
func (f *Func) GID(i int) packet.GID {
	if i < len(f.gids) {
		return f.gids[i]
	}
	return packet.GID{}
}

// SetGID writes GID table entry i, growing the table as needed.
func (f *Func) SetGID(i int, g packet.GID) {
	for len(f.gids) <= i {
		f.gids = append(f.gids, packet.GID{})
	}
	f.gids[i] = g
}

// IsVF reports whether the function is a virtual function.
func (f *Func) IsVF() bool { return f.Index > 0 }

// SetRateLimit installs (or replaces) a token-bucket rate limiter on the
// function, in bits per second. A rate of 0 removes the limit.
func (f *Func) SetRateLimit(bps float64) {
	if bps <= 0 {
		f.limiter = nil
		return
	}
	f.limiter = newTokenBucket(bps, float64(2*f.dev.P.MTU*8))
}

// RateLimit returns the configured limit in bits per second (0 = none).
func (f *Func) RateLimit() float64 {
	if f.limiter == nil {
		return 0
	}
	return f.limiter.rate
}

func (d *Device) pollCost() simtime.Duration { return d.P.VerbCost[VerbPollCQ] }

// exec charges a control verb: firmware is serialized, VFs pay the control
// multiplier, and extra (e.g. per-page pinning) is added on top.
func (d *Device) exec(p *simtime.Proc, v Verb, f *Func, extra simtime.Duration) {
	sp := d.rec.Begin(p, trace.LayerRNIC, v.String())
	d.firmware.Acquire(p)
	cost := d.P.VerbCost[v]
	if f != nil && f.IsVF() {
		cost = simtime.Duration(float64(cost) * d.P.VFControlFactor)
	}
	p.Sleep(cost + extra)
	d.firmware.Release()
	sp.End(p)
}

// VerbCost exposes the PF-side cost of a verb (for harness reporting).
func (d *Device) VerbCost(v Verb) simtime.Duration { return d.P.VerbCost[v] }

// GetDeviceList models ibv_get_device_list.
func (d *Device) GetDeviceList(p *simtime.Proc) { d.exec(p, VerbGetDeviceList, nil, 0) }

// Open models ibv_open_device.
func (d *Device) Open(p *simtime.Proc) { d.exec(p, VerbOpenDevice, nil, 0) }

// Close models ibv_close_device.
func (d *Device) Close(p *simtime.Proc) { d.exec(p, VerbCloseDevice, nil, 0) }

// AllocPD models ibv_alloc_pd.
func (d *Device) AllocPD(p *simtime.Proc, f *Func) *PD {
	d.exec(p, VerbAllocPD, f, 0)
	pd := &PD{Num: d.nextPD, dev: d}
	d.nextPD++
	d.pds[pd.Num] = pd
	return pd
}

// DeallocPD models ibv_dealloc_pd.
func (d *Device) DeallocPD(p *simtime.Proc, pd *PD) {
	d.exec(p, VerbDeallocPD, nil, 0)
	delete(d.pds, pd.Num)
}

// RegMR models ibv_reg_mr: the caller (a driver) has already pinned the
// buffer and translated it to host-physical extents; the device records
// them in its MTT and mints the keys. va is the address the *application*
// will use in work requests.
func (d *Device) RegMR(p *simtime.Proc, f *Func, pd *PD, va uint64, length int, ext []mem.Extent, access Access) *MR {
	pages := simtime.Duration(0)
	if length > mem.PageSize {
		pages = simtime.Duration(length/mem.PageSize) * d.P.RegMRPerPage
	}
	d.exec(p, VerbRegMR, f, pages)
	mr := &MR{LKey: d.nextKey, RKey: d.nextKey, VA: va, Len: length, Access: access, PD: pd, ext: ext}
	d.nextKey++
	d.mrs[mr.LKey] = mr
	return mr
}

// DeregMR models ibv_dereg_mr.
func (d *Device) DeregMR(p *simtime.Proc, f *Func, mr *MR) {
	d.exec(p, VerbDeregMR, f, 0)
	delete(d.mrs, mr.LKey)
}

// LookupMR finds a region by rkey/lkey.
func (d *Device) LookupMR(key uint32) *MR { return d.mrs[key] }

// CreateCQ models ibv_create_cq.
func (d *Device) CreateCQ(p *simtime.Proc, f *Func, capacity int) *CQ {
	d.exec(p, VerbCreateCQ, f, 0)
	cq := &CQ{Num: d.nextCQ, Cap: capacity, dev: d, items: simtime.NewQueue[WC](d.eng)}
	d.nextCQ++
	d.cqs[cq.Num] = cq
	return cq
}

// DestroyCQ models ibv_destroy_cq.
func (d *Device) DestroyCQ(p *simtime.Proc, f *Func, cq *CQ) {
	d.exec(p, VerbDestroyCQ, f, 0)
	delete(d.cqs, cq.Num)
}

// QueryGID models ibv_query_gid on the function's GID table.
func (d *Device) QueryGID(p *simtime.Proc, f *Func, idx int) packet.GID {
	d.exec(p, VerbQueryGID, f, 0)
	return f.GID(idx)
}

// QPCaps sizes a queue pair's work queues. When SRQ is set the QP has no
// private receive queue: SEND arrivals consume WQEs from the shared queue.
type QPCaps struct {
	MaxSendWR, MaxRecvWR int
	SRQ                  *SRQ
}

// DefaultCaps mirrors the paper's create_qp parameters.
func DefaultCaps() QPCaps { return QPCaps{MaxSendWR: 100, MaxRecvWR: 100} }

// CreateQP models ibv_create_qp. The QP starts in RESET.
func (d *Device) CreateQP(p *simtime.Proc, f *Func, pd *PD, scq, rcq *CQ, typ QPType, caps QPCaps) *QP {
	d.exec(p, VerbCreateQP, f, 0)
	qp := &QP{
		Num:    d.nextQPN,
		Type:   typ,
		PD:     pd,
		SendCQ: scq,
		RecvCQ: rcq,
		Caps:   caps,
		srq:    caps.SRQ,
		fn:     f,
		dev:    d,
	}
	d.nextQPN++
	for int(qp.Num) >= len(d.qps) {
		d.qps = append(d.qps, nil)
	}
	d.qps[qp.Num] = qp
	d.nqps++
	return qp
}

// SRQ is a shared receive queue: many QPs draw receive WQEs from one pool,
// which is how RC servers with thousands of connections bound their
// receive-buffer footprint (the scalability concern of Sec. 3.3.4's
// references). Completions still arrive on each QP's receive CQ.
type SRQ struct {
	Num   uint32
	MaxWR int

	dev *Device
	rq  []RecvWR
}

// CreateSRQ models ibv_create_srq.
func (d *Device) CreateSRQ(p *simtime.Proc, f *Func, maxWR int) *SRQ {
	d.exec(p, VerbCreateSRQ, f, 0)
	s := &SRQ{Num: d.nextCQ, MaxWR: maxWR, dev: d}
	d.nextCQ++
	return s
}

// DestroySRQ models ibv_destroy_srq.
func (d *Device) DestroySRQ(p *simtime.Proc, f *Func, s *SRQ) {
	d.exec(p, VerbDestroySRQ, f, 0)
	s.rq = nil
}

// PostRecv models ibv_post_srq_recv.
func (s *SRQ) PostRecv(p *simtime.Proc, wr RecvWR) error {
	p.Sleep(s.dev.P.VerbCost[VerbPostRecv])
	if len(s.rq) >= s.MaxWR {
		return ErrQueueFull
	}
	s.rq = append(s.rq, wr)
	return nil
}

// Len returns the number of posted shared WQEs.
func (s *SRQ) Len() int { return len(s.rq) }

// QP returns the queue pair with the given number, or nil.
func (d *Device) QP(qpn uint32) *QP { return d.qpLookup(qpn) }

func (d *Device) qpLookup(qpn uint32) *QP {
	if int(qpn) < len(d.qps) {
		return d.qps[qpn]
	}
	return nil
}

// QPs returns the live QP count (diagnostics).
func (d *Device) QPs() int { return d.nqps }

// DestroyQP models ibv_destroy_qp.
func (d *Device) DestroyQP(p *simtime.Proc, qp *QP) {
	d.exec(p, VerbDestroyQP, qp.fn, 0)
	qp.flush()
	if int(qp.Num) < len(d.qps) && d.qps[qp.Num] != nil {
		d.qps[qp.Num] = nil
		d.nqps--
	}
}

// Attr carries modify_qp arguments. Only fields relevant to the target
// state are read.
type Attr struct {
	ToState State
	AV      AddressVector // RTR: remote endpoint (post-RConnrename view)
	QKey    uint32        // UD
	// FlowTag and FlowVNI, when the tag is nonzero, mark the QP as a flow
	// of a shared host connection (RTR only): outbound packets carry the
	// tag in an overlay header on the shared-RoCE UDP port.
	FlowTag uint16
	FlowVNI uint32
}

// ModifyQP models ibv_modify_qp, enforcing the Fig. 5 state machine.
// Moving to ERROR applies the Fig. 18 reset-cost model and flushes
// outstanding work (Table 2).
func (d *Device) ModifyQP(p *simtime.Proc, qp *QP, a Attr) error {
	if !transitionAllowed(qp.state, a.ToState) {
		return fmt.Errorf("%w: %v → %v", ErrBadTransition, qp.state, a.ToState)
	}
	switch a.ToState {
	case StateInit:
		d.exec(p, VerbModifyQPInit, qp.fn, 0)
		qp.SGID = qp.fn.GID(0)
		qp.SrcIP = qp.fn.IP
		qp.SrcMAC = qp.fn.MAC
	case StateRTR:
		d.exec(p, VerbModifyQPRTR, qp.fn, 0)
		qp.AV = a.AV
		qp.QKey = a.QKey
		qp.FlowTag = a.FlowTag
		qp.FlowVNI = a.FlowVNI
	case StateRTS:
		d.exec(p, VerbModifyQPRTS, qp.fn, 0)
	case StateError:
		d.exec(p, VerbModifyQPErr, qp.fn, d.resetCost(qp))
	case StateReset:
		qp.clear()
	case StateSQD, StateSQE:
		// Administrative transitions; charge the generic RTS cost.
		d.exec(p, VerbModifyQPRTS, qp.fn, 0)
	}
	qp.state = a.ToState
	if a.ToState == StateError {
		qp.flush()
	}
	if a.ToState == StateRTS {
		qp.kick()
	}
	return nil
}

// SoftModify applies a modify_qp whose QPC rewrite happens in host memory
// instead of device firmware (MasQ's shared-connection attach): the state
// machine and side effects match ModifyQP, but the caller's cost is charged
// as plain host time, so concurrent attaches never serialize behind the
// firmware resource. Transitions with device-side work (ERROR flush cost)
// are refused — they must go through ModifyQP.
func (d *Device) SoftModify(p *simtime.Proc, qp *QP, a Attr, cost simtime.Duration) error {
	if a.ToState == StateError {
		return fmt.Errorf("rnic: soft modify to %v requires firmware; use ModifyQP", a.ToState)
	}
	if !transitionAllowed(qp.state, a.ToState) {
		return fmt.Errorf("%w: %v → %v", ErrBadTransition, qp.state, a.ToState)
	}
	if cost > 0 {
		p.Sleep(cost)
	}
	switch a.ToState {
	case StateInit:
		qp.SGID = qp.fn.GID(0)
		qp.SrcIP = qp.fn.IP
		qp.SrcMAC = qp.fn.MAC
	case StateRTR:
		qp.AV = a.AV
		qp.QKey = a.QKey
		qp.FlowTag = a.FlowTag
		qp.FlowVNI = a.FlowVNI
	case StateReset:
		qp.clear()
	}
	qp.state = a.ToState
	if a.ToState == StateRTS {
		qp.kick()
	}
	return nil
}

// resetCost models Fig. 18: a kernel-routine share plus an RNIC share that
// is larger on a VF and grows under traffic load.
func (d *Device) resetCost(qp *QP) simtime.Duration {
	rnicShare := d.P.ResetRNICPF
	if qp.fn.IsVF() {
		rnicShare = d.P.ResetRNICVF
	}
	if qp.busy() {
		rnicShare += d.P.ResetTrafficExtra
	}
	// The verb table has no entry for modify_qp(ERR); the whole cost is
	// kernel + RNIC shares.
	return d.P.ResetKernel + rnicShare
}

// ResetCostBreakdown reports the kernel and RNIC shares that a reset of qp
// would be charged right now (harness support for Fig. 18).
func (d *Device) ResetCostBreakdown(qp *QP) (kernel, rnicShare simtime.Duration) {
	total := d.resetCost(qp)
	return d.P.ResetKernel, total - d.P.ResetKernel
}

// ctxLookup models the on-chip QP-context cache: a miss costs extra
// pipeline occupancy. Returns 0 when the model is disabled.
func (d *Device) ctxLookup(qpn uint32) simtime.Duration {
	if d.ctxCache == nil {
		return 0
	}
	if d.ctxCache.touch(qpn) {
		return 0
	}
	return d.P.CtxMissPenalty
}

// lruCache is a small LRU set of QP numbers: a QPN-indexed slice (QPNs are
// dense) over an intrusive doubly-linked recency list, so touch is O(1)
// with no hashing even under the all-miss thrash the NIC-cache ablation
// drives it with. Evicted nodes are recycled on a free list, so a
// warmed-up cache never allocates.
type lruCache struct {
	cap   int
	slots []*lruNode // indexed by QPN
	n     int        // live entries
	head  *lruNode   // most recently used
	tail  *lruNode   // least recently used
	free  *lruNode
}

type lruNode struct {
	qpn        uint32
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity}
}

// touch marks qpn used and reports whether it was already cached,
// evicting the least recently used entry on insert.
func (c *lruCache) touch(qpn uint32) bool {
	if int(qpn) < len(c.slots) {
		if n := c.slots[qpn]; n != nil {
			c.moveToFront(n)
			return true
		}
	}
	if c.n >= c.cap {
		old := c.tail
		c.unlink(old)
		c.slots[old.qpn] = nil
		c.n--
		old.next = c.free
		c.free = old
	}
	n := c.free
	if n != nil {
		c.free = n.next
		n.next = nil
	} else {
		n = &lruNode{}
	}
	n.qpn = qpn
	c.pushFront(n)
	for int(qpn) >= len(c.slots) {
		c.slots = append(c.slots, nil)
	}
	c.slots[qpn] = n
	c.n++
	return false
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
