package rnic

import (
	"bytes"
	"errors"
	"testing"

	"masq/internal/mem"
	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// node bundles one simulated host: memory, device, port.
type node struct {
	phys *mem.Phys
	hva  *mem.AddrSpace
	dev  *Device
	port *simnet.Port
}

// env is a two-host testbed with a direct 40 Gbps link.
type env struct {
	eng  *simtime.Engine
	a, b *node
	link *simnet.Link
}

func newNode(eng *simtime.Engine, name string, ip packet.IP, mac packet.MAC, p Params) *node {
	phys := mem.NewPhys(16 << 30)
	hva := mem.NewAddrSpace(name+".hva", phys, phys.AllocPages)
	dev := NewDevice(eng, name, p, phys)
	dev.PF().SetAddr(ip, mac)
	port := simnet.NewPort(eng, name+".port")
	dev.ServePort(port)
	return &node{phys: phys, hva: hva, dev: dev, port: port}
}

func newEnv(t *testing.T) *env {
	t.Helper()
	return newEnvParams(t, DefaultParams())
}

func newEnvParams(t *testing.T, p Params) *env {
	t.Helper()
	eng := simtime.NewEngine()
	a := newNode(eng, "devA", packet.NewIP(10, 0, 0, 1), packet.MAC{2, 0, 0, 0, 0, 1}, p)
	b := newNode(eng, "devB", packet.NewIP(10, 0, 0, 2), packet.MAC{2, 0, 0, 0, 0, 2}, p)
	link := simnet.Connect(eng, a.port, b.port, p.LineRate, simtime.Us(0.1))
	return &env{eng: eng, a: a, b: b, link: link}
}

// buffer allocates and registers a buffer on node n.
func (n *node) buffer(t *testing.T, p *simtime.Proc, pd *PD, size int, access Access) (uint64, *MR) {
	t.Helper()
	va, err := n.hva.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := n.hva.Pin(va, size)
	if err != nil {
		t.Fatal(err)
	}
	mr := n.dev.RegMR(p, n.dev.PF(), pd, va, size, ext, access)
	return va, mr
}

// endpoint is one side of an RC connection in tests.
type endpoint struct {
	n        *node
	fn       *Func
	pd       *PD
	scq, rcq *CQ
	qp       *QP
}

func makeEndpoint(t *testing.T, p *simtime.Proc, n *node, typ QPType) *endpoint {
	t.Helper()
	fn := n.dev.PF()
	pd := n.dev.AllocPD(p, fn)
	scq := n.dev.CreateCQ(p, fn, 200)
	rcq := n.dev.CreateCQ(p, fn, 200)
	qp := n.dev.CreateQP(p, fn, pd, scq, rcq, typ, DefaultCaps())
	return &endpoint{n: n, fn: fn, pd: pd, scq: scq, rcq: rcq, qp: qp}
}

func av(peer *endpoint) AddressVector {
	return AddressVector{
		DGID: peer.fn.GID(0),
		DIP:  peer.fn.IP,
		DMAC: peer.fn.MAC,
		DQPN: peer.qp.Num,
	}
}

// connect brings both QPs to RTS pointing at each other (Fig. 1 setup).
func connect(t *testing.T, p *simtime.Proc, x, y *endpoint) {
	t.Helper()
	for _, pair := range []struct{ self, peer *endpoint }{{x, y}, {y, x}} {
		dev := pair.self.n.dev
		if err := dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateInit}); err != nil {
			t.Fatal(err)
		}
		if err := dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTR, AV: av(pair.peer)}); err != nil {
			t.Fatal(err)
		}
		if err := dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTS}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRCSendRecvSmall(t *testing.T) {
	e := newEnv(t)
	msg := []byte("hi")
	var recvWC, sendWC WC
	var recvBuf []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		client := makeEndpoint(t, p, e.a, RC)
		server := makeEndpoint(t, p, e.b, RC)
		connect(t, p, client, server)

		sva, smr := e.a.buffer(t, p, client.pd, 4096, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, server.pd, 4096, AccessLocalWrite)
		e.a.hva.Write(sva, msg)

		server.qp.PostRecv(p, RecvWR{WRID: 7, Addr: rva, LKey: rmr.LKey, Len: 4096})
		client.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: len(msg)})

		recvWC = server.rcq.Wait(p)
		sendWC = client.scq.Wait(p)
		recvBuf = make([]byte, len(msg))
		e.b.hva.Read(rva, recvBuf)
	})
	e.eng.Run()
	if recvWC.Status != WCSuccess || recvWC.WRID != 7 || recvWC.ByteLen != len(msg) {
		t.Fatalf("recv WC = %+v", recvWC)
	}
	if sendWC.Status != WCSuccess || sendWC.WRID != 1 {
		t.Fatalf("send WC = %+v", sendWC)
	}
	if !bytes.Equal(recvBuf, msg) {
		t.Fatalf("payload = %q", recvBuf)
	}
}

func TestRCSendMultiPacket(t *testing.T) {
	e := newEnv(t)
	const size = 10000 // 3 packets at MTU 4096
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var got []byte
	var txPkts uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, size, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, size, AccessLocalWrite)
		e.a.hva.Write(sva, src)
		s.qp.PostRecv(p, RecvWR{WRID: 1, Addr: rva, LKey: rmr.LKey, Len: size})
		c.qp.PostSend(p, SendWR{WRID: 2, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: size})
		wc := s.rcq.Wait(p)
		if wc.ByteLen != size {
			t.Errorf("ByteLen = %d", wc.ByteLen)
		}
		c.scq.Wait(p)
		got = make([]byte, size)
		e.b.hva.Read(rva, got)
		txPkts = e.a.dev.Stats.TxPackets
	})
	e.eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatal("multi-packet payload corrupted")
	}
	if txPkts != 3 {
		t.Fatalf("TxPackets = %d, want 3", txPkts)
	}
}

func TestRDMAWrite(t *testing.T) {
	e := newEnv(t)
	msg := []byte("one-sided write payload")
	var got []byte
	var rcqLen int
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 4096, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 4096, AccessLocalWrite|AccessRemoteWrite)
		e.a.hva.Write(sva, msg)
		c.qp.PostSend(p, SendWR{
			WRID: 3, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: len(msg),
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		wc := c.scq.Wait(p)
		if wc.Status != WCSuccess {
			t.Errorf("write WC = %+v", wc)
		}
		got = make([]byte, len(msg))
		e.b.hva.Read(rva, got)
		rcqLen = s.rcq.Len()
	})
	e.eng.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("remote memory = %q", got)
	}
	if rcqLen != 0 {
		t.Fatal("one-sided write must not generate a receive completion")
	}
}

func TestRDMAWriteImmConsumesRecvWQE(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 11, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{
			WRID: 4, Op: WRWriteImm, LocalAddr: sva, LKey: smr.LKey, Len: 8,
			RemoteAddr: rva, RKey: rmr.RKey, Imm: 0xfeed,
		})
		wc = s.rcq.Wait(p)
		c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.WRID != 11 || !wc.HasImm || wc.Imm != 0xfeed {
		t.Fatalf("write-imm recv WC = %+v", wc)
	}
}

func TestRDMARead(t *testing.T) {
	e := newEnv(t)
	const size = 9000
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i ^ 0x5a)
	}
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		lva, lmr := e.a.buffer(t, p, c.pd, size, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, size, AccessLocalWrite|AccessRemoteRead)
		e.b.hva.Write(rva, src)
		c.qp.PostSend(p, SendWR{
			WRID: 5, Op: WRRead, LocalAddr: lva, LKey: lmr.LKey, Len: size,
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		wc := c.scq.Wait(p)
		if wc.Status != WCSuccess || wc.WRID != 5 {
			t.Errorf("read WC = %+v", wc)
		}
		got = make([]byte, size)
		e.a.hva.Read(lva, got)
	})
	e.eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatal("read payload corrupted")
	}
}

func TestWriteBadRKeyErrorsQP(t *testing.T) {
	e := newEnv(t)
	var wc WC
	var state State
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, _ := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteWrite)
		c.qp.PostSend(p, SendWR{
			WRID: 6, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: 8,
			RemoteAddr: rva, RKey: 0xdead, // bogus
		})
		wc = c.scq.Wait(p)
		state = c.qp.State()
	})
	e.eng.Run()
	if wc.Status != WCRemoteAccessErr {
		t.Fatalf("WC = %+v, want REM_ACCESS_ERR", wc)
	}
	if state != StateError {
		t.Fatalf("QP state = %v, want ERROR", state)
	}
}

func TestWriteOutOfBoundsRejected(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 4096, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite|AccessRemoteWrite)
		c.qp.PostSend(p, SendWR{
			WRID: 7, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: 128, // > 64
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		wc = c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCRemoteAccessErr {
		t.Fatalf("WC = %+v, want REM_ACCESS_ERR (bounds)", wc)
	}
}

func TestWriteWithoutPermissionRejected(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite) // no RemoteWrite
		c.qp.PostSend(p, SendWR{
			WRID: 8, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: 8,
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		wc = c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCRemoteAccessErr {
		t.Fatalf("WC = %+v, want REM_ACCESS_ERR (permission)", wc)
	}
}

func TestWritePDMismatchRejected(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		// Register the target MR under a DIFFERENT PD on the server.
		otherPD := e.b.dev.AllocPD(p, e.b.dev.PF())
		rva, rmr := e.b.buffer(t, p, otherPD, 64, AccessLocalWrite|AccessRemoteWrite)
		c.qp.PostSend(p, SendWR{
			WRID: 9, Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: 8,
			RemoteAddr: rva, RKey: rmr.RKey,
		})
		wc = c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCRemoteAccessErr {
		t.Fatalf("WC = %+v, want REM_ACCESS_ERR (PD mismatch)", wc)
	}
}

func TestRNRRetrySucceedsAfterPostRecv(t *testing.T) {
	e := newEnv(t)
	var recvWC WC
	var rnrs uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		e.a.hva.Write(sva, []byte("late"))
		// Send with NO receive buffer posted.
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		p.Sleep(simtime.Us(200)) // a couple of RNR cycles
		s.qp.PostRecv(p, RecvWR{WRID: 2, Addr: rva, LKey: rmr.LKey, Len: 64})
		recvWC = s.rcq.Wait(p)
		rnrs = e.b.dev.Stats.RNRsSent
	})
	e.eng.Run()
	if recvWC.Status != WCSuccess {
		t.Fatalf("recv WC = %+v", recvWC)
	}
	if rnrs == 0 {
		t.Fatal("expected at least one RNR NAK")
	}
}

func TestRetransmitAfterDataLoss(t *testing.T) {
	e := newEnv(t)
	dropped := false
	e.link.Drop = func(f simnet.Frame) bool {
		// Drop the first RoCE data frame A→B once.
		if dropped || f.SrcMAC() != (packet.MAC{2, 0, 0, 0, 0, 1}) {
			return false
		}
		pkt, err := packet.Decode(f)
		if err != nil || pkt.BTH() == nil || pkt.BTH().OpCode == packet.OpAcknowledge {
			return false
		}
		dropped = true
		return true
	}
	var recvWC WC
	var retrans uint64
	var recvCount int
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		e.a.hva.Write(sva, []byte("lost then found"))
		s.qp.PostRecv(p, RecvWR{WRID: 2, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 15})
		recvWC = s.rcq.Wait(p)
		p.Sleep(simtime.Ms(20)) // past any stray timers
		retrans = e.a.dev.Stats.Retransmits
		recvCount = 1 + s.rcq.Len()
	})
	e.eng.Run()
	if !dropped {
		t.Fatal("drop hook never fired")
	}
	if recvWC.Status != WCSuccess || recvWC.ByteLen != 15 {
		t.Fatalf("recv WC = %+v", recvWC)
	}
	if retrans == 0 {
		t.Fatal("no retransmission recorded")
	}
	if recvCount != 1 {
		t.Fatalf("message delivered %d times", recvCount)
	}
}

func TestDuplicateAfterAckLossNotRedelivered(t *testing.T) {
	e := newEnv(t)
	dropped := false
	e.link.Drop = func(f simnet.Frame) bool {
		if dropped || f.SrcMAC() != (packet.MAC{2, 0, 0, 0, 0, 2}) {
			return false
		}
		pkt, err := packet.Decode(f)
		if err != nil || pkt.BTH() == nil || pkt.BTH().OpCode != packet.OpAcknowledge {
			return false
		}
		dropped = true
		return true
	}
	var sendWC WC
	var recvTotal int
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 2, Addr: rva, LKey: rmr.LKey, Len: 64})
		s.qp.PostRecv(p, RecvWR{WRID: 3, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 8})
		sendWC = c.scq.Wait(p) // completes after the retransmitted packet is re-acked
		p.Sleep(simtime.Ms(20))
		recvTotal = s.rcq.Len()
	})
	e.eng.Run()
	if !dropped {
		t.Fatal("ack drop hook never fired")
	}
	if sendWC.Status != WCSuccess {
		t.Fatalf("send WC = %+v", sendWC)
	}
	if recvTotal != 1 {
		t.Fatalf("receiver completed %d WQEs, want 1 (duplicate must be ignored)", recvTotal)
	}
}

func TestQPStateMachine(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		x := makeEndpoint(t, p, e.a, RC)
		dev := e.a.dev
		// RESET → RTR is illegal.
		if err := dev.ModifyQP(p, x.qp, Attr{ToState: StateRTR}); !errors.Is(err, ErrBadTransition) {
			t.Errorf("RESET→RTR err = %v", err)
		}
		// RESET → RTS is illegal.
		if err := dev.ModifyQP(p, x.qp, Attr{ToState: StateRTS}); !errors.Is(err, ErrBadTransition) {
			t.Errorf("RESET→RTS err = %v", err)
		}
		must := func(s State) {
			if err := dev.ModifyQP(p, x.qp, Attr{ToState: s}); err != nil {
				t.Fatalf("→%v: %v", s, err)
			}
		}
		must(StateInit)
		must(StateRTR)
		must(StateRTS)
		must(StateSQD)
		must(StateRTS)
		// Any state → ERROR (dashed arrows in Fig. 5).
		must(StateError)
		// ERROR → RESET recovers.
		must(StateReset)
		must(StateInit)
	})
	e.eng.Run()
}

// TestTable2ErrorStateBehavior verifies every row of the paper's Table 2.
func TestTable2ErrorStateBehavior(t *testing.T) {
	e := newEnv(t)
	var flushed []WC
	var postSendErr, postRecvErr error
	var delivered int
	var txAfterError uint64
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)

		// Outstanding work on the RECEIVER, then force it to ERROR.
		s.qp.PostRecv(p, RecvWR{WRID: 100, Addr: rva, LKey: rmr.LKey, Len: 64})
		if err := e.b.dev.ModifyQP(p, s.qp, Attr{ToState: StateError}); err != nil {
			t.Fatal(err)
		}
		// Row: poll completion queue → allowed but error CQE (flush).
		wc, ok := s.rcq.WaitTimeout(p, simtime.Ms(1))
		if ok {
			flushed = append(flushed, wc)
		}
		// Rows: post send / post receive → allowed (flush immediately).
		postRecvErr = s.qp.PostRecv(p, RecvWR{WRID: 101, Addr: rva, LKey: rmr.LKey, Len: 64})
		postSendErr = s.qp.PostSend(p, SendWR{WRID: 102, Op: WRSend, LocalAddr: rva, LKey: rmr.LKey, Len: 4})
		for i := 0; i < 2; i++ {
			if wc, ok := s.rcq.WaitTimeout(p, simtime.Ms(1)); ok {
				flushed = append(flushed, wc)
			} else if wc, ok := s.scq.WaitTimeout(p, simtime.Ms(1)); ok {
				flushed = append(flushed, wc)
			}
		}
		// Row: incoming packets → dropped. Send into the dead QP.
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		p.Sleep(simtime.Ms(50))
		delivered = s.rcq.Len()
		// Row: outgoing packets → none.
		txAfterError = e.b.dev.Stats.TxMsgs
	})
	e.eng.Run()
	if len(flushed) != 3 {
		t.Fatalf("flushed %d WCs, want 3: %+v", len(flushed), flushed)
	}
	for _, wc := range flushed {
		if wc.Status != WCFlushErr {
			t.Errorf("WC %d status = %v, want WR_FLUSH_ERR", wc.WRID, wc.Status)
		}
	}
	if postSendErr != nil || postRecvErr != nil {
		t.Errorf("posting in ERROR must be allowed: send=%v recv=%v", postSendErr, postRecvErr)
	}
	if delivered != 0 {
		t.Error("incoming packet was processed in ERROR state")
	}
	if txAfterError != 0 {
		t.Error("QP in ERROR emitted messages")
	}
}

func TestSendToErroredPeerRetriesOut(t *testing.T) {
	pr := DefaultParams()
	pr.RetransTimeout = simtime.Us(200)
	pr.MaxRetry = 2
	e := newEnvParams(t, pr)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		e.b.dev.ModifyQP(p, s.qp, Attr{ToState: StateError})
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		wc = c.scq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCRetryExceeded {
		t.Fatalf("WC = %+v, want RETRY_EXC_ERR", wc)
	}
}

func TestUDSendRecv(t *testing.T) {
	e := newEnv(t)
	var wc WC
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, UD)
		s := makeEndpoint(t, p, e.b, UD)
		for _, pair := range []struct{ self, peer *endpoint }{{c, s}, {s, c}} {
			dev := pair.self.n.dev
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateInit})
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTR, AV: av(pair.peer), QKey: 0x1234})
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTS})
		}
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		e.a.hva.Write(sva, []byte("dgram!"))
		s.qp.PostRecv(p, RecvWR{WRID: 9, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 6, QKey: 0x1234})
		wc = s.rcq.Wait(p)
		got = make([]byte, 6)
		e.b.hva.Read(rva, got)
	})
	e.eng.Run()
	if wc.Status != WCSuccess || wc.SrcQP == 0 {
		t.Fatalf("UD recv WC = %+v", wc)
	}
	if string(got) != "dgram!" {
		t.Fatalf("payload = %q", got)
	}
}

func TestUDQKeyMismatchDropped(t *testing.T) {
	e := newEnv(t)
	var dropped uint64
	var rcqLen int
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, UD)
		s := makeEndpoint(t, p, e.b, UD)
		for _, pair := range []struct{ self, peer *endpoint }{{c, s}, {s, c}} {
			dev := pair.self.n.dev
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateInit})
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTR, AV: av(pair.peer), QKey: 0x1234})
			dev.ModifyQP(p, pair.self.qp, Attr{ToState: StateRTS})
		}
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 9, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 1, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4, QKey: 0xbad})
		p.Sleep(simtime.Ms(5))
		dropped = e.b.dev.Stats.Dropped
		rcqLen = s.rcq.Len()
	})
	e.eng.Run()
	if dropped == 0 || rcqLen != 0 {
		t.Fatalf("dropped=%d rcq=%d; datagram with wrong QKey must be discarded", dropped, rcqLen)
	}
}

func TestRateLimiterBoundsThroughput(t *testing.T) {
	e := newEnv(t)
	const limit = 5e9 // 5 Gbps
	const size = 1 << 20
	var elapsed simtime.Duration
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		c.fn.SetRateLimit(limit)
		sva, smr := e.a.buffer(t, p, c.pd, size, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, size, AccessLocalWrite|AccessRemoteWrite)
		start := p.Now()
		for i := 0; i < 8; i++ {
			c.qp.PostSend(p, SendWR{
				WRID: uint64(i), Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: size,
				RemoteAddr: rva, RKey: rmr.RKey,
			})
		}
		for i := 0; i < 8; i++ {
			c.scq.Wait(p)
		}
		elapsed = p.Now().Sub(start)
	})
	e.eng.Run()
	gbps := float64(8*size*8) / elapsed.Seconds() / 1e9
	if gbps > 5.5 || gbps < 4.0 {
		t.Fatalf("limited throughput = %.2f Gbps, want ≈5", gbps)
	}
}

func TestUnlimitedThroughputNearLineRate(t *testing.T) {
	e := newEnv(t)
	const size = 1 << 20
	var elapsed simtime.Duration
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, size, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, size, AccessLocalWrite|AccessRemoteWrite)
		start := p.Now()
		for i := 0; i < 16; i++ {
			c.qp.PostSend(p, SendWR{
				WRID: uint64(i), Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: size,
				RemoteAddr: rva, RKey: rmr.RKey,
			})
		}
		for i := 0; i < 16; i++ {
			c.scq.Wait(p)
		}
		elapsed = p.Now().Sub(start)
	})
	e.eng.Run()
	gbps := float64(16*size*8) / elapsed.Seconds() / 1e9
	if gbps < 35 || gbps > 40 {
		t.Fatalf("throughput = %.2f Gbps, want 35–40", gbps)
	}
}

func TestTwoQPsShareBandwidthFairly(t *testing.T) {
	e := newEnv(t)
	const size = 1 << 20
	var t1, t2 simtime.Duration
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c1 := makeEndpoint(t, p, e.a, RC)
		s1 := makeEndpoint(t, p, e.b, RC)
		c2 := makeEndpoint(t, p, e.a, RC)
		s2 := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c1, s1)
		connect(t, p, c2, s2)
		run := func(c *endpoint, sNode *node, s *endpoint, done *simtime.Duration) {
			e.eng.Spawn("flow", func(p *simtime.Proc) {
				sva, smr := c.n.buffer(t, p, c.pd, size, AccessLocalWrite)
				rva, rmr := sNode.buffer(t, p, s.pd, size, AccessLocalWrite|AccessRemoteWrite)
				start := p.Now()
				for i := 0; i < 8; i++ {
					c.qp.PostSend(p, SendWR{
						WRID: uint64(i), Op: WRWrite, LocalAddr: sva, LKey: smr.LKey, Len: size,
						RemoteAddr: rva, RKey: rmr.RKey,
					})
				}
				for i := 0; i < 8; i++ {
					c.scq.Wait(p)
				}
				*done = p.Now().Sub(start)
			})
		}
		run(c1, e.b, s1, &t1)
		run(c2, e.b, s2, &t2)
	})
	e.eng.Run()
	if t1 == 0 || t2 == 0 {
		t.Fatal("flows did not finish")
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair sharing: %v vs %v", t1, t2)
	}
}

func TestConnectionSetupCostPFvsVF(t *testing.T) {
	e := newEnv(t)
	var pfTime, vfTime simtime.Duration
	e.eng.Spawn("test", func(p *simtime.Proc) {
		setup := func(fn *Func) simtime.Duration {
			dev := e.a.dev
			start := p.Now()
			pd := dev.AllocPD(p, fn)
			va, err := e.a.hva.Alloc(1024)
			if err != nil {
				t.Fatal(err)
			}
			ext, _ := e.a.hva.Pin(va, 1024)
			mr := dev.RegMR(p, fn, pd, va, 1024, ext, AccessLocalWrite)
			cq := dev.CreateCQ(p, fn, 200)
			qp := dev.CreateQP(p, fn, pd, cq, cq, RC, DefaultCaps())
			dev.QueryGID(p, fn, 0)
			dev.ModifyQP(p, qp, Attr{ToState: StateInit})
			dev.ModifyQP(p, qp, Attr{ToState: StateRTR})
			dev.ModifyQP(p, qp, Attr{ToState: StateRTS})
			_ = mr
			return p.Now().Sub(start)
		}
		pfTime = setup(e.a.dev.PF())
		vf, err := e.a.dev.AddVF()
		if err != nil {
			t.Fatal(err)
		}
		vf.SetAddr(packet.NewIP(10, 0, 0, 1), packet.MAC{2, 0, 0, 0, 9, 1})
		vfTime = setup(vf)
	})
	e.eng.Run()
	// Paper Fig. 15a: ≈0.8 ms on the host, ≈1.9 ms via a VF.
	if pfTime < simtime.Ms(0.7) || pfTime > simtime.Ms(0.95) {
		t.Errorf("PF setup = %v, want ≈0.81 ms", pfTime)
	}
	if vfTime < simtime.Ms(1.7) || vfTime > simtime.Ms(2.1) {
		t.Errorf("VF setup = %v, want ≈1.9 ms", vfTime)
	}
}

func TestMaxVFsEnforced(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 8; i++ {
		if _, err := e.a.dev.AddVF(); err != nil {
			t.Fatalf("VF %d: %v", i, err)
		}
	}
	if _, err := e.a.dev.AddVF(); !errors.Is(err, ErrNoResources) {
		t.Fatalf("9th VF err = %v, want ErrNoResources", err)
	}
}

func TestSendWithImmediate(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 1, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 2, Op: WRSendImm, LocalAddr: sva, LKey: smr.LKey, Len: 4, Imm: 42})
		wc = s.rcq.Wait(p)
	})
	e.eng.Run()
	if !wc.HasImm || wc.Imm != 42 {
		t.Fatalf("WC = %+v, want Imm 42", wc)
	}
}

func TestZeroLengthSend(t *testing.T) {
	e := newEnv(t)
	var wc WC
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		rva, rmr := e.b.buffer(t, p, s.pd, 64, AccessLocalWrite)
		s.qp.PostRecv(p, RecvWR{WRID: 1, Addr: rva, LKey: rmr.LKey, Len: 64})
		c.qp.PostSend(p, SendWR{WRID: 2, Op: WRSend, Len: 0})
		wc = s.rcq.Wait(p)
	})
	e.eng.Run()
	if wc.Status != WCSuccess || wc.ByteLen != 0 {
		t.Fatalf("WC = %+v", wc)
	}
}

func TestSendQueueCapacityEnforced(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		c := makeEndpoint(t, p, e.a, RC)
		// Not connected: WQEs pile up in the SQ (state INIT can't post; go to RTS via loopback AV).
		s := makeEndpoint(t, p, e.b, RC)
		connect(t, p, c, s)
		sva, smr := e.a.buffer(t, p, c.pd, 64, AccessLocalWrite)
		var fullErr error
		for i := 0; i < 200; i++ {
			err := c.qp.PostSend(p, SendWR{WRID: uint64(i), Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
			if err != nil {
				fullErr = err
				break
			}
		}
		if !errors.Is(fullErr, ErrQueueFull) {
			t.Errorf("expected ErrQueueFull, got %v", fullErr)
		}
	})
	e.eng.Run()
}

func TestCQOverflowDropsCompletions(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		fn := e.a.dev.PF()
		pd := e.a.dev.AllocPD(p, fn)
		cq := e.a.dev.CreateCQ(p, fn, 2)
		qp := e.a.dev.CreateQP(p, fn, pd, cq, cq, RC, DefaultCaps())
		e.a.dev.ModifyQP(p, qp, Attr{ToState: StateInit})
		for i := 0; i < 5; i++ {
			cq.post(WC{WRID: uint64(i)})
		}
		if cq.Len() != 2 {
			t.Errorf("CQ len = %d, want 2 (capacity)", cq.Len())
		}
		if cq.dropped != 3 {
			t.Errorf("dropped = %d, want 3", cq.dropped)
		}
	})
	e.eng.Run()
}

func TestTokenBucket(t *testing.T) {
	tb := newTokenBucket(1e9, 8000) // 1 Gbps, 1000-byte burst
	ok, _ := tb.tryTake(0, 8000)
	if !ok {
		t.Fatal("burst should be available immediately")
	}
	ok, wait := tb.tryTake(0, 8000)
	if ok {
		t.Fatal("bucket should be empty")
	}
	if wait < simtime.Us(7.9) || wait > simtime.Us(8.2) {
		t.Fatalf("wait = %v, want ≈8µs", wait)
	}
	// After the wait, tokens are back.
	ok, _ = tb.tryTake(simtime.Time(wait), 8000)
	if !ok {
		t.Fatal("tokens should have refilled")
	}
}

func TestPsnDiffWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int32
	}{
		{5, 3, 2},
		{3, 5, -2},
		{0, 0xffffff, 1},  // wrap forward
		{0xffffff, 0, -1}, // wrap back
		{1 << 22, 0, 1 << 22},
	}
	for _, c := range cases {
		if got := psnDiff(c.a, c.b); got != c.want {
			t.Errorf("psnDiff(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestResetCostBreakdown(t *testing.T) {
	e := newEnv(t)
	e.eng.Spawn("test", func(p *simtime.Proc) {
		x := makeEndpoint(t, p, e.a, RC)
		kernel, rnicShare := e.a.dev.ResetCostBreakdown(x.qp)
		if kernel != simtime.Us(100) {
			t.Errorf("kernel share = %v", kernel)
		}
		if rnicShare != simtime.Us(153) { // PF, idle
			t.Errorf("PF idle RNIC share = %v, want 153µs", rnicShare)
		}
		vf, _ := e.a.dev.AddVF()
		vf.SetAddr(packet.NewIP(10, 0, 0, 1), packet.MAC{2, 0, 0, 0, 9, 9})
		pd := e.a.dev.AllocPD(p, vf)
		cq := e.a.dev.CreateCQ(p, vf, 16)
		qv := e.a.dev.CreateQP(p, vf, pd, cq, cq, RC, DefaultCaps())
		_, rnicShare = e.a.dev.ResetCostBreakdown(qv)
		if rnicShare != simtime.Us(418) {
			t.Errorf("VF idle RNIC share = %v, want 418µs", rnicShare)
		}
	})
	e.eng.Run()
}

func TestVerbStringAndClass(t *testing.T) {
	if VerbPostSend.String() != "post_send" || VerbPostSend.IsControlPath() {
		t.Error("post_send classification")
	}
	if !VerbCreateQP.IsControlPath() {
		t.Error("create_qp must be control path")
	}
	if StateRTS.String() != "RTS" || RC.String() != "RC" || WRWrite.String() != "WRITE" {
		t.Error("String methods")
	}
	if WCFlushErr.String() != "WR_FLUSH_ERR" {
		t.Error("WCStatus.String")
	}
}

// TestLoopbackSameDevice connects two QPs on one device: the NIC must
// hairpin the traffic internally rather than pushing it onto the wire.
func TestLoopbackSameDevice(t *testing.T) {
	e := newEnv(t)
	var got []byte
	e.eng.Spawn("test", func(p *simtime.Proc) {
		x := makeEndpoint(t, p, e.a, RC)
		y := makeEndpoint(t, p, e.a, RC) // same node
		connect(t, p, x, y)
		sva, smr := e.a.buffer(t, p, x.pd, 64, AccessLocalWrite)
		rva, rmr := e.a.buffer(t, p, y.pd, 64, AccessLocalWrite)
		e.a.hva.Write(sva, []byte("loop"))
		y.qp.PostRecv(p, RecvWR{WRID: 1, Addr: rva, LKey: rmr.LKey, Len: 64})
		x.qp.PostSend(p, SendWR{WRID: 2, Op: WRSend, LocalAddr: sva, LKey: smr.LKey, Len: 4})
		wc := y.rcq.Wait(p)
		if wc.Status != WCSuccess {
			t.Errorf("WC = %+v", wc)
		}
		x.scq.Wait(p)
		got = make([]byte, 4)
		e.a.hva.Read(rva, got)
	})
	e.eng.Run()
	if string(got) != "loop" {
		t.Fatalf("got %q", got)
	}
	// Nothing must have crossed the physical port.
	if e := newEnv(t); e != nil {
		_ = e
	}
}
