package rnic

import (
	"fmt"

	"masq/internal/mem"
)

// Migration support: detach resources from a source device and adopt them
// on a destination device *as the same Go objects*, so every pointer the
// guest's verbs layer holds (QPs, CQs, MRs, PDs) stays valid across a
// transparent live migration (the MigrOS model). Detach/Adopt are pure
// host-memory table operations — the migration engine charges their time
// explicitly — and are only meaningful within one simulation engine (the
// cluster layer already restricts MasQ nodes to a single shard).
//
// Identifier rules:
//   - QPNs are renumbered: each device allocates QPNs densely from 1, so a
//     migrated QP takes a fresh number at the destination and the
//     controller pushes the old→new translation to peers.
//   - MR keys are preserved: peers hold rkeys in application state that a
//     migration must not invalidate. Params.KeyBase gives every host a
//     disjoint key range, making preserved keys collision-free.
//   - CQ and PD numbers are renumbered: they are host-local handles no
//     remote peer ever sees.

// DetachQP removes the QP from the device's lookup tables without
// destroying it: arriving packets for it drop (exactly the blackout a
// frozen VM presents), queued work and transport state survive intact.
func (d *Device) DetachQP(qp *QP) {
	if int(qp.Num) < len(d.qps) && d.qps[qp.Num] == qp {
		d.qps[qp.Num] = nil
		d.nqps--
	}
}

// AdoptQP installs a detached QP under a freshly minted QPN on this
// device, re-pointing it at the destination function and re-latching the
// source addressing that modify_qp(INIT) had frozen from the old host.
// Transport state (PSNs, send queue, responder context, atomic history)
// is untouched — that is the point. Returns the new QPN.
func (d *Device) AdoptQP(qp *QP, fn *Func) uint32 {
	qp.Num = d.nextQPN
	d.nextQPN++
	for int(qp.Num) >= len(d.qps) {
		d.qps = append(d.qps, nil)
	}
	d.qps[qp.Num] = qp
	d.nqps++
	qp.dev = d
	qp.fn = fn
	qp.SGID = fn.GID(0)
	qp.SrcIP = fn.IP
	qp.SrcMAC = fn.MAC
	// A stale source-pipeline entry no longer clears the flag (txStep skips
	// foreign QPs without touching it), so reset it here.
	qp.scheduled = false
	return qp.Num
}

// AdoptQPAt reinstalls a detached QP under a specific QPN — the rollback
// path of a failed migration re-adopting at the source, where the QP's
// original number is still vacant (DetachQP nils the slot and fresh QPNs
// are never reused). It fails if the slot is occupied.
func (d *Device) AdoptQPAt(qp *QP, fn *Func, qpn uint32) error {
	for int(qpn) >= len(d.qps) {
		d.qps = append(d.qps, nil)
	}
	if d.qps[qpn] != nil {
		return fmt.Errorf("rnic: QPN %d already in use, cannot re-adopt", qpn)
	}
	qp.Num = qpn
	d.qps[qpn] = qp
	d.nqps++
	qp.dev = d
	qp.fn = fn
	qp.SGID = fn.GID(0)
	qp.SrcIP = fn.IP
	qp.SrcMAC = fn.MAC
	qp.scheduled = false
	return nil
}

// DetachMR removes the region from the device's MTT without deregistering
// it; the keys and the MR object survive for adoption elsewhere.
func (d *Device) DetachMR(mr *MR) {
	if d.mrs[mr.LKey] == mr {
		delete(d.mrs, mr.LKey)
	}
}

// AdoptMR installs a detached MR under its *original* keys, with fresh
// host-physical extents (the pages were re-pinned on the destination).
func (d *Device) AdoptMR(mr *MR, ext []mem.Extent) {
	mr.ext = ext
	d.mrs[mr.LKey] = mr
}

// DetachCQ removes the CQ from the device without destroying it; queued
// completions survive.
func (d *Device) DetachCQ(cq *CQ) {
	if d.cqs[cq.Num] == cq {
		delete(d.cqs, cq.Num)
	}
}

// AdoptCQ renumbers a detached CQ into this device's table. Pending
// completions ride along untouched.
func (d *Device) AdoptCQ(cq *CQ) {
	cq.Num = d.nextCQ
	d.nextCQ++
	cq.dev = d
	d.cqs[cq.Num] = cq
}

// DetachPD removes the PD from the device without deallocating it.
func (d *Device) DetachPD(pd *PD) {
	if d.pds[pd.Num] == pd {
		delete(d.pds, pd.Num)
	}
}

// AdoptPD renumbers a detached PD into this device's table. MRs and QPs
// referencing the PD keep working — the checks compare object identity,
// not numbers.
func (d *Device) AdoptPD(pd *PD) {
	pd.Num = d.nextPD
	d.nextPD++
	pd.dev = d
	d.pds[pd.Num] = pd
}
