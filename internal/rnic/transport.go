package rnic

import (
	"encoding/binary"

	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// tokenBucket is a byte-rate limiter (bits internally).
type tokenBucket struct {
	rate   float64 // bits per second
	burst  float64 // bits
	tokens float64
	last   simtime.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// tryTake consumes bits if available; otherwise it reports how long until
// they will be.
func (tb *tokenBucket) tryTake(now simtime.Time, bits float64) (bool, simtime.Duration) {
	elapsed := float64(now-tb.last) / 1e9
	tb.tokens += elapsed * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	if tb.tokens >= bits {
		tb.tokens -= bits
		return true, 0
	}
	wait := (bits - tb.tokens) / tb.rate * 1e9
	return false, simtime.Duration(wait) + 1
}

// wireTime is the serialization time of n bytes at line rate.
func (d *Device) wireTime(n int) simtime.Duration {
	return simtime.Duration(float64(n*8) / d.P.LineRate * 1e9)
}

// emit puts a frame on the wire — or hairpins it back into the device's
// own ingress when the destination is local (RDMA loopback between QPs on
// the same host, which modern RNICs switch internally).
func (d *Device) emit(dip packet.IP, frame simnet.Frame) {
	for _, f := range d.funcs {
		if f.IP == dip {
			pkt, err := d.pktPool.Decode(frame)
			if err != nil {
				d.Stats.Dropped++
				return
			}
			d.Ingress.Put(pkt)
			return
		}
	}
	d.port.Send(frame)
}

// txService is the device's send pipeline: it round-robins across QPs with
// pending work, emitting one packet per turn. The per-packet pipeline
// occupancy (or the wire time, whichever is larger) bounds both the
// message rate and the emitted bandwidth; QP-fair round-robin yields the
// equal sharing seen in Fig. 11.
//
// The pipeline is a callback state machine running inline in the engine
// loop: txService claims the pipeline for one packet's occupancy, and
// txPktDone emits the packet and takes the next scheduled QP. Skipped QPs
// (no work, paused, rate-limited) are drained without leaving the current
// event.
func (d *Device) txService(qp *QP) {
	for {
		if d.txStep(qp) {
			return // pipeline busy; txPktDone continues
		}
		var ok bool
		qp, ok = d.txActive.TryGet()
		if !ok {
			d.txActive.OnNext(d.txServe)
			return
		}
	}
}

// txStep tries to start transmitting qp's next packet. It reports whether
// the pipeline went busy (a continuation is scheduled).
func (d *Device) txStep(qp *QP) bool {
	if qp.dev != d {
		return false // stale entry: the QP migrated to another device
	}
	qp.scheduled = false
	if qp.suspended || !qp.state.canTransmit() || !qp.hasWork() {
		return false
	}
	now := d.eng.Now()
	if qp.pausedUntil > now {
		qp.kickAt(qp.pausedUntil)
		return false
	}
	if lim := qp.fn.limiter; lim != nil {
		est := qp.peekNextPacketSize()
		if allowed, wait := lim.tryTake(now, float64(est*8)); !allowed {
			qp.kickAt(now.Add(wait))
			return false
		}
	}
	frame, bytes, ok := qp.buildNextPacket()
	if !ok {
		return false
	}
	occ := d.P.TxOccupancy + d.ctxLookup(qp.Num)
	if qp.fn.IOMMU {
		occ += d.P.IOMMUOccupancy
	}
	if wt := d.wireTime(bytes); wt > occ {
		occ = wt
	}
	d.txQP, d.txFrame, d.txOcc = qp, frame, occ
	d.txPktDone.ScheduleAfter(occ)
	return true
}

// txDone runs when the in-flight packet's pipeline occupancy elapses: the
// frame leaves toward the wire after the remaining latency, the QP re-arms,
// and the pipeline moves to the next scheduled QP.
func (d *Device) txDone() {
	qp, frame, occ := d.txQP, d.txFrame, d.txOcc
	d.txQP, d.txFrame = nil, nil

	lat := d.P.TxLatency
	if qp.fn.IsVF() {
		lat += d.P.VFDataPenalty
	}
	rem := lat - occ
	if rem < 0 {
		rem = 0
	}
	d.emitAfter(rem, qp.currentDIP, frame, true)
	qp.armTimer()
	qp.kick()

	if next, ok := d.txActive.TryGet(); ok {
		d.txService(next)
		return
	}
	d.txActive.OnNext(d.txServe)
}

// buildNextPacket assembles the next wire frame for the QP's head WQE,
// gathering payload bytes from host memory through the MR. It returns the
// frame and its length, or ok=false if the WQE faulted (the QP has been
// moved to ERROR).
func (qp *QP) buildNextPacket() (simnet.Frame, int, bool) {
	d := qp.dev
	w := qp.sq[qp.txIdx]
	if !w.assigned {
		w.firstPSN = qp.sndNxt
		w.npkts = (w.wr.Len + d.P.MTU - 1) / d.P.MTU
		if w.npkts == 0 {
			w.npkts = 1
		}
		w.lastPSN = (w.firstPSN + uint32(w.npkts) - 1) & 0xffffff
		w.assigned = true
	}

	psn := qp.sndNxt
	var chunkLen int

	// Assemble into the device's scratch encoder: slots 0-2 hold the
	// Ethernet/IPv4/UDP headers (filled once the address vector is known),
	// transport layers follow. Serialize copies everything out before the
	// scratch is reused. A flow-tagged QP (shared-connection mode) reserves
	// slot 3 for the overlay header carrying the tag.
	enc := &d.enc
	hdrSlots := 3
	if qp.FlowTag != 0 {
		hdrSlots = 4
	}
	layers := enc.layers[:hdrSlots]

	switch w.wr.Op {
	case WRRead:
		// One request packet; the PSN range covers the expected responses.
		enc.bth = packet.BTH{OpCode: packet.OpReadRequest, DestQP: qp.AV.DQPN, PSN: psn, AckReq: true}
		enc.reth = packet.RETH{VA: w.wr.RemoteAddr, RKey: w.wr.RKey, DMALen: uint32(w.wr.Len)}
		layers = append(layers, &enc.bth, &enc.reth)
		qp.txOff = w.wr.Len // request fully issued
		qp.sndNxt = (w.firstPSN + uint32(w.npkts)) & 0xffffff
	case WRAtomicFAdd, WRAtomicCSwap:
		op := packet.OpFetchAdd
		if w.wr.Op == WRAtomicCSwap {
			op = packet.OpCompareSwap
		}
		enc.bth = packet.BTH{OpCode: op, DestQP: qp.AV.DQPN, PSN: psn, AckReq: true}
		enc.ae = packet.AtomicETH{VA: w.wr.RemoteAddr, RKey: w.wr.RKey, SwapAdd: w.wr.SwapAdd, Compare: w.wr.Compare}
		layers = append(layers, &enc.bth, &enc.ae)
		qp.txOff = w.wr.Len
		qp.sndNxt = (qp.sndNxt + 1) & 0xffffff
	default:
		chunkLen = w.wr.Len - qp.txOff
		if chunkLen > d.P.MTU {
			chunkLen = d.P.MTU
		}
		var payload []byte
		if chunkLen > 0 {
			if w.wr.InlineData != nil {
				payload = w.wr.InlineData[qp.txOff : qp.txOff+chunkLen]
			} else {
				payload = enc.payloadBuf(chunkLen)
				mr := d.mrs[w.wr.LKey]
				if mr == nil || mr.PD != qp.PD || mr.dma(d.hostMem, w.wr.LocalAddr+uint64(qp.txOff), payload, false) != nil {
					qp.enterError(WCRemoteOpErr)
					return nil, 0, false
				}
			}
		}
		first := qp.txOff == 0
		last := qp.txOff+chunkLen >= w.wr.Len
		op := rcOpcode(w.wr, qp.Type, first, last)
		// Request an ACK on the final packet and periodically inside long
		// messages so the inflight window keeps draining.
		ackReq := qp.Type == RC && (last || (qp.txOff/d.P.MTU)%ackEvery == ackEvery-1)
		enc.bth = packet.BTH{OpCode: op, DestQP: qp.AV.DQPN, PSN: psn, AckReq: ackReq}
		layers = append(layers, &enc.bth)
		if qp.Type == UD {
			enc.deth = packet.DETH{QKey: w.wr.QKey, SrcQP: qp.Num}
			layers = append(layers, &enc.deth)
		}
		if (w.wr.Op == WRWrite || w.wr.Op == WRWriteImm) && first {
			enc.reth = packet.RETH{VA: w.wr.RemoteAddr, RKey: w.wr.RKey, DMALen: uint32(w.wr.Len)}
			layers = append(layers, &enc.reth)
		}
		if op.HasImmediate() {
			enc.imm = packet.ImmDt{Value: w.wr.Imm}
			layers = append(layers, &enc.imm)
		}
		if chunkLen > 0 {
			// *Payload avoids boxing the slice header per packet; Payload's
			// value-receiver methods promote to the pointer.
			enc.pay = packet.Payload(payload)
			layers = append(layers, &enc.pay)
		}
		qp.txOff += chunkLen
		qp.sndNxt = (qp.sndNxt + 1) & 0xffffff
		if qp.Type == UD {
			// Unacknowledged service: complete at emission.
			wrID, op2, l := w.wr.WRID, w.wr.Op, w.wr.Len
			d.eng.After(d.P.TxLatency, func() {
				qp.SendCQ.post(WC{WRID: wrID, Status: WCSuccess, Op: op2, QPN: qp.Num, ByteLen: l})
			})
		}
	}

	av := qp.AV
	if qp.Type == UD && w.wr.Remote != nil {
		av = *w.wr.Remote
	}
	if qp.txOff >= w.wr.Len {
		qp.txIdx++
		qp.txOff = 0
		if qp.Type == UD {
			qp.sq = append(qp.sq[:qp.txIdx-1], qp.sq[qp.txIdx:]...)
			qp.txIdx--
			qp.sndUna = qp.sndNxt
		}
		d.Stats.TxMsgs++
	}

	qp.currentDIP = av.DIP
	enc.eth = packet.Ethernet{Dst: av.DMAC, Src: qp.SrcMAC, EtherType: packet.EtherTypeIPv4}
	enc.ip = packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: qp.SrcIP, Dst: av.DIP}
	enc.udp = packet.UDP{SrcPort: 49152 + uint16(qp.Num&0x3fff), DstPort: packet.PortRoCEv2}
	layers[0], layers[1], layers[2] = &enc.eth, &enc.ip, &enc.udp
	if qp.FlowTag != 0 {
		enc.udp.DstPort = packet.PortRoCEShared
		enc.vx = packet.VXLAN{VNI: qp.FlowVNI, FlowTag: qp.FlowTag}
		layers[3] = &enc.vx
	}
	frame := packet.Serialize(layers...)
	return simnet.Frame(frame), len(frame), true
}

// ackEvery is the mid-message ACK request period, in packets.
const ackEvery = 16

// roceOverhead is the fixed wire overhead of a RoCEv2 data packet:
// Ethernet(14) + IPv4(20) + UDP(8) + BTH(12) + ICRC(4), plus slack for
// RETH/DETH/ImmDt. Used only for rate-limiter estimation.
const roceOverhead = 74

// peekNextPacketSize estimates the wire size of the packet buildNextPacket
// would emit, without side effects.
func (qp *QP) peekNextPacketSize() int {
	w := qp.sq[qp.txIdx]
	if w.wr.Op == WRRead {
		return roceOverhead
	}
	chunk := w.wr.Len - qp.txOff
	if chunk > qp.dev.P.MTU {
		chunk = qp.dev.P.MTU
	}
	return chunk + roceOverhead
}

func (qp *QP) findWQE(psn uint32) *sendWQE {
	for _, w := range qp.sq {
		if !w.assigned {
			return nil
		}
		if psnDiff(psn, w.firstPSN) >= 0 && psnDiff(w.lastPSN, psn) >= 0 {
			return w
		}
	}
	return nil
}

// rcOpcode selects the BTH opcode for a chunk.
func rcOpcode(wr SendWR, typ QPType, first, last bool) packet.OpCode {
	if typ == UD {
		if wr.Op == WRSendImm {
			return packet.OpUDSendOnlyImm
		}
		return packet.OpUDSendOnly
	}
	switch wr.Op {
	case WRSend, WRSendImm:
		switch {
		case first && last:
			if wr.Op == WRSendImm {
				return packet.OpSendOnlyImm
			}
			return packet.OpSendOnly
		case first:
			return packet.OpSendFirst
		case last:
			if wr.Op == WRSendImm {
				return packet.OpSendLastImm
			}
			return packet.OpSendLast
		default:
			return packet.OpSendMiddle
		}
	case WRWrite, WRWriteImm:
		switch {
		case first && last:
			if wr.Op == WRWriteImm {
				return packet.OpWriteOnlyImm
			}
			return packet.OpWriteOnly
		case first:
			return packet.OpWriteFirst
		case last:
			if wr.Op == WRWriteImm {
				return packet.OpWriteLastImm
			}
			return packet.OpWriteLast
		default:
			return packet.OpWriteMiddle
		}
	}
	return packet.OpSendOnly
}

// rxService is the device's receive pipeline, a callback state machine:
// each packet occupies the pipeline for its processing occupancy, then
// rxPktDone dispatches it to the transport handlers and takes the next
// queued arrival. Malformed or unroutable packets are dropped inline
// without occupying the pipeline, exactly as the process version did.
func (d *Device) rxService(pkt *packet.Packet) {
	for {
		if d.rxStep(pkt) {
			return // pipeline busy; rxPktDone continues
		}
		var ok bool
		pkt, ok = d.Ingress.TryGet()
		if !ok {
			d.Ingress.OnNext(d.rxServe)
			return
		}
	}
}

// rxStep starts processing pkt, reporting whether the pipeline went busy.
func (d *Device) rxStep(pkt *packet.Packet) bool {
	bth := pkt.BTH()
	if bth == nil {
		d.Stats.Dropped++
		pkt.Release()
		return false
	}
	qp := d.qpLookup(bth.DestQP)
	if qp == nil {
		d.Stats.Dropped++
		pkt.Release()
		return false
	}
	var occ simtime.Duration
	if bth.OpCode == packet.OpAcknowledge {
		occ = d.P.AckOccupancy // no DMA, no context fetch beyond the QPC
	} else {
		occ = d.P.RxOccupancy + d.ctxLookup(qp.Num)
		if qp.fn.IOMMU {
			occ += d.P.IOMMUOccupancy
		}
	}
	d.rxPkt, d.rxQP = pkt, qp
	d.rxPktDone.ScheduleAfter(occ)
	return true
}

// rxDone dispatches the packet whose pipeline occupancy just elapsed.
func (d *Device) rxDone() {
	pkt, qp := d.rxPkt, d.rxQP
	d.rxPkt, d.rxQP = nil, nil
	d.Stats.RxPackets++
	d.Stats.RxBytes += uint64(len(pkt.Payload))
	if u := pkt.UDP(); u != nil && u.DstPort == packet.PortRoCEShared {
		if vx := pkt.VXLAN(); vx != nil && vx.FlowTag != 0 {
			d.Stats.TaggedRx++
			qp.LastRxFlowTag = vx.FlowTag
		}
	}

	op := pkt.BTH().OpCode
	switch {
	case op == packet.OpAcknowledge:
		d.handleAck(qp, pkt)
	case op == packet.OpAtomicAcknowledge:
		d.handleAtomicAck(qp, pkt)
	case op.IsReadResponse():
		d.handleReadResponse(qp, pkt)
	default:
		d.handleRequest(qp, pkt)
	}
	// Every handler copies what it keeps (payloads via DMA, header fields
	// by value), so the packet's arena can be recycled here.
	pkt.Release()

	if next, ok := d.Ingress.TryGet(); ok {
		d.rxService(next)
		return
	}
	d.Ingress.OnNext(d.rxServe)
}

// rxLatency is the wire→memory latency for this QP's function.
func (d *Device) rxLatency(qp *QP) simtime.Duration {
	lat := d.P.RxLatency
	if qp.fn.IsVF() {
		lat += d.P.VFDataPenalty
	}
	return lat
}

// postWCAfter delivers a completion after the RX latency + CQE delay.
func (d *Device) postWCAfter(qp *QP, cq *CQ, wc WC) {
	d.eng.After(d.rxLatency(qp)+d.P.RxCQE, func() { cq.post(wc) })
}

// sendAck emits an ACK/NAK from responder qp back to its requester.
func (d *Device) sendAck(qp *QP, syndrome byte, psn uint32) {
	if syndrome != packet.AckSyndromeACK {
		if syndrome&0xe0 == packet.AckSyndromeRNRNAK {
			d.Stats.RNRsSent++
		} else {
			d.Stats.NAKsSent++
		}
	}
	enc := &d.enc
	enc.eth = packet.Ethernet{Dst: qp.AV.DMAC, Src: qp.SrcMAC, EtherType: packet.EtherTypeIPv4}
	enc.ip = packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: qp.SrcIP, Dst: qp.AV.DIP}
	enc.udp = packet.UDP{SrcPort: 49152 + uint16(qp.Num&0x3fff), DstPort: packet.PortRoCEv2}
	enc.bth = packet.BTH{OpCode: packet.OpAcknowledge, DestQP: qp.AV.DQPN, PSN: psn}
	enc.aeth = packet.AETH{Syndrome: syndrome, MSN: qp.msn}
	frame := packet.Serialize(&enc.eth, &enc.ip, &enc.udp, &enc.bth, &enc.aeth)
	d.emitAfter(d.rxLatency(qp), qp.AV.DIP, simnet.Frame(frame), false)
}

// handleRequest is the responder path for SEND/WRITE/READ requests.
func (d *Device) handleRequest(qp *QP, pkt *packet.Packet) {
	if !qp.state.canReceive() {
		d.Stats.Dropped++ // Table 2: incoming packets dropped in ERROR
		return
	}
	bth := pkt.BTH()
	if qp.Type == UD {
		d.handleUD(qp, pkt)
		return
	}

	diff := psnDiff(bth.PSN, qp.expPSN)
	switch {
	case diff < 0:
		// Duplicate from a go-back-N rewind. Atomic duplicates are
		// answered from the response history — re-executing would
		// double-apply them; everything else is simply re-acked.
		if bth.OpCode.IsAtomic() {
			if orig, ok := qp.atomicHist[bth.PSN]; ok {
				d.sendAtomicAck(qp, bth.PSN, orig)
			}
			return
		}
		if bth.AckReq || bth.OpCode.IsLast() {
			d.sendAck(qp, packet.AckSyndromeACK, (qp.expPSN-1)&0xffffff)
		}
		return
	case diff > 0:
		if !qp.nakSent {
			qp.nakSent = true
			d.sendAck(qp, packet.AckSyndromeNAK|packet.NakPSNSequenceError, (qp.expPSN-1)&0xffffff)
		}
		return
	}
	qp.nakSent = false

	op := bth.OpCode
	switch {
	case op.IsSend():
		d.handleSendChunk(qp, pkt)
	case op.IsWrite():
		d.handleWriteChunk(qp, pkt)
	case op == packet.OpReadRequest:
		d.handleReadRequest(qp, pkt)
	case op.IsAtomic():
		d.handleAtomic(qp, pkt)
	default:
		d.Stats.Dropped++
	}
}

// handleAtomic executes a FETCH_ADD or COMPARE_SWAP at the responder: an
// aligned 8-byte read-modify-write through the MR, with the original value
// returned and remembered for duplicate requests.
func (d *Device) handleAtomic(qp *QP, pkt *packet.Packet) {
	bth, ae := pkt.BTH(), pkt.AtomicETH()
	if ae == nil {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakInvalidRequest, (qp.expPSN-1)&0xffffff)
		return
	}
	mr := d.mrs[ae.RKey]
	if mr == nil || mr.PD != qp.PD || mr.Access&AccessRemoteAtomic == 0 ||
		!mr.contains(ae.VA, 8) || ae.VA%8 != 0 {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteAccessError, (qp.expPSN-1)&0xffffff)
		return
	}
	var buf [8]byte
	if mr.dma(d.hostMem, ae.VA, buf[:], false) != nil {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteOperationErr, (qp.expPSN-1)&0xffffff)
		return
	}
	orig := binary.BigEndian.Uint64(buf[:])
	var updated uint64
	if bth.OpCode == packet.OpFetchAdd {
		updated = orig + ae.SwapAdd
	} else if orig == ae.Compare {
		updated = ae.SwapAdd
	} else {
		updated = orig // failed compare leaves memory untouched
	}
	binary.BigEndian.PutUint64(buf[:], updated)
	if mr.dma(d.hostMem, ae.VA, buf[:], true) != nil {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteOperationErr, (qp.expPSN-1)&0xffffff)
		return
	}
	qp.expPSN = (qp.expPSN + 1) & 0xffffff
	qp.msn = (qp.msn + 1) & 0xffffff
	d.Stats.RxMsgs++
	qp.rememberAtomic(bth.PSN, orig)
	d.sendAtomicAck(qp, bth.PSN, orig)
}

// sendAtomicAck emits the atomic response carrying the original value.
func (d *Device) sendAtomicAck(qp *QP, psn uint32, orig uint64) {
	enc := &d.enc
	enc.eth = packet.Ethernet{Dst: qp.AV.DMAC, Src: qp.SrcMAC, EtherType: packet.EtherTypeIPv4}
	enc.ip = packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: qp.SrcIP, Dst: qp.AV.DIP}
	enc.udp = packet.UDP{SrcPort: 49152 + uint16(qp.Num&0x3fff), DstPort: packet.PortRoCEv2}
	enc.bth = packet.BTH{OpCode: packet.OpAtomicAcknowledge, DestQP: qp.AV.DQPN, PSN: psn}
	enc.aeth = packet.AETH{Syndrome: packet.AckSyndromeACK, MSN: qp.msn}
	enc.aaeth = packet.AtomicAckETH{Orig: orig}
	frame := packet.Serialize(&enc.eth, &enc.ip, &enc.udp, &enc.bth, &enc.aeth, &enc.aaeth)
	d.emitAfter(d.rxLatency(qp), qp.AV.DIP, simnet.Frame(frame), false)
}

// handleAtomicAck completes the requester's atomic WQE: the original value
// lands in the WR's local buffer, then the WQE retires like an acked send.
func (d *Device) handleAtomicAck(qp *QP, pkt *packet.Packet) {
	aa := pkt.AtomicAckETH()
	if aa == nil || qp.state == StateError || qp.state == StateReset {
		return
	}
	bth := pkt.BTH()
	w := qp.findWQE(bth.PSN)
	if w != nil && (w.wr.Op == WRAtomicFAdd || w.wr.Op == WRAtomicCSwap) {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], aa.Orig)
		mr := d.mrs[w.wr.LKey]
		if mr == nil || mr.PD != qp.PD || mr.dma(d.hostMem, w.wr.LocalAddr, buf[:], true) != nil {
			qp.enterError(WCRemoteOpErr)
			return
		}
	}
	d.retireAfter(d.P.AckProc, qp, bth.PSN)
}

func (d *Device) handleSendChunk(qp *QP, pkt *packet.Packet) {
	bth := pkt.BTH()
	if qp.curRecv == nil {
		wr, ok := qp.takeRecvWQE()
		if !ok {
			d.sendAck(qp, packet.AckSyndromeRNRNAK|1, (qp.expPSN-1)&0xffffff)
			return
		}
		qp.rctx = recvCtx{wr: wr}
		qp.curRecv = &qp.rctx
	}
	ctx := qp.curRecv
	if len(pkt.Payload) > 0 {
		mr := d.mrs[ctx.wr.LKey]
		if mr == nil || mr.PD != qp.PD ||
			ctx.off+len(pkt.Payload) > ctx.wr.Len ||
			mr.dma(d.hostMem, ctx.wr.Addr+uint64(ctx.off), pkt.Payload, true) != nil {
			d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteOperationErr, (qp.expPSN-1)&0xffffff)
			qp.curRecv = nil
			return
		}
		ctx.off += len(pkt.Payload)
	}
	qp.expPSN = (qp.expPSN + 1) & 0xffffff
	if !bth.OpCode.IsLast() {
		if bth.AckReq {
			d.sendAck(qp, packet.AckSyndromeACK, bth.PSN)
		}
		return
	}
	{
		qp.msn = (qp.msn + 1) & 0xffffff
		d.Stats.RxMsgs++
		wc := WC{WRID: ctx.wr.WRID, Status: WCSuccess, QPN: qp.Num, ByteLen: ctx.off, Recv: true}
		if imm := pkt.ImmDt(); imm != nil {
			wc.Imm, wc.HasImm = imm.Value, true
		}
		d.postWCAfter(qp, qp.RecvCQ, wc)
		qp.curRecv = nil
		d.sendAck(qp, packet.AckSyndromeACK, bth.PSN)
	}
}

func (d *Device) handleWriteChunk(qp *QP, pkt *packet.Packet) {
	bth := pkt.BTH()
	if bth.OpCode.HasImmediate() && !qp.hasRecvWQE() {
		// WRITE_IMM needs a receive WQE for the immediate; refuse the last
		// packet before touching memory so the requester retries.
		d.sendAck(qp, packet.AckSyndromeRNRNAK|1, (qp.expPSN-1)&0xffffff)
		return
	}
	if reth := pkt.RETH(); reth != nil { // FIRST or ONLY
		mr := d.mrs[reth.RKey]
		if mr == nil || mr.PD != qp.PD || mr.Access&AccessRemoteWrite == 0 ||
			!mr.contains(reth.VA, int(reth.DMALen)) {
			d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteAccessError, (qp.expPSN-1)&0xffffff)
			return
		}
		qp.wctx = writeCtx{mr: mr, va: reth.VA}
		qp.curWrite = &qp.wctx
	}
	ctx := qp.curWrite
	if ctx == nil {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakInvalidRequest, (qp.expPSN-1)&0xffffff)
		return
	}
	if len(pkt.Payload) > 0 {
		if ctx.mr.dma(d.hostMem, ctx.va+uint64(ctx.off), pkt.Payload, true) != nil {
			d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteAccessError, (qp.expPSN-1)&0xffffff)
			qp.curWrite = nil
			return
		}
		ctx.off += len(pkt.Payload)
	}
	qp.expPSN = (qp.expPSN + 1) & 0xffffff
	if !bth.OpCode.IsLast() {
		if bth.AckReq {
			d.sendAck(qp, packet.AckSyndromeACK, bth.PSN)
		}
		return
	}
	{
		qp.msn = (qp.msn + 1) & 0xffffff
		d.Stats.RxMsgs++
		if imm := pkt.ImmDt(); imm != nil {
			// WRITE_IMM consumes a receive WQE to deliver the immediate
			// (availability was checked before the DMA above).
			wr, _ := qp.takeRecvWQE()
			d.postWCAfter(qp, qp.RecvCQ, WC{
				WRID: wr.WRID, Status: WCSuccess, QPN: qp.Num,
				ByteLen: ctx.off, Imm: imm.Value, HasImm: true, Recv: true,
			})
		}
		qp.curWrite = nil
		d.sendAck(qp, packet.AckSyndromeACK, bth.PSN)
	}
}

func (d *Device) handleReadRequest(qp *QP, pkt *packet.Packet) {
	bth, reth := pkt.BTH(), pkt.RETH()
	if reth == nil {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakInvalidRequest, (qp.expPSN-1)&0xffffff)
		return
	}
	mr := d.mrs[reth.RKey]
	if mr == nil || mr.PD != qp.PD || mr.Access&AccessRemoteRead == 0 ||
		!mr.contains(reth.VA, int(reth.DMALen)) {
		d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteAccessError, (qp.expPSN-1)&0xffffff)
		return
	}
	total := int(reth.DMALen)
	npkts := (total + d.P.MTU - 1) / d.P.MTU
	if npkts == 0 {
		npkts = 1
	}
	qp.expPSN = (qp.expPSN + uint32(npkts)) & 0xffffff
	qp.msn = (qp.msn + 1) & 0xffffff
	d.Stats.RxMsgs++

	// Stream the responses. They bypass the TX scheduler (as a dedicated
	// responder pipeline would) but are paced at wire speed.
	delay := d.rxLatency(qp)
	for i := 0; i < npkts; i++ {
		off := i * d.P.MTU
		n := total - off
		if n > d.P.MTU {
			n = d.P.MTU
		}
		buf := make([]byte, n)
		if err := mr.dma(d.hostMem, reth.VA+uint64(off), buf, false); err != nil {
			d.sendAck(qp, packet.AckSyndromeNAK|packet.NakRemoteAccessError, (qp.expPSN-1)&0xffffff)
			return
		}
		var op packet.OpCode
		switch {
		case npkts == 1:
			op = packet.OpReadResponseOnly
		case i == 0:
			op = packet.OpReadResponseFirst
		case i == npkts-1:
			op = packet.OpReadResponseLast
		default:
			op = packet.OpReadResponseMiddle
		}
		layers := []packet.Layer{
			&packet.Ethernet{Dst: qp.AV.DMAC, Src: qp.SrcMAC, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: qp.SrcIP, Dst: qp.AV.DIP},
			&packet.UDP{SrcPort: 49152 + uint16(qp.Num&0x3fff), DstPort: packet.PortRoCEv2},
			&packet.BTH{OpCode: op, DestQP: qp.AV.DQPN, PSN: (bth.PSN + uint32(i)) & 0xffffff},
		}
		if op == packet.OpReadResponseFirst || op == packet.OpReadResponseLast || op == packet.OpReadResponseOnly {
			layers = append(layers, &packet.AETH{Syndrome: packet.AckSyndromeACK, MSN: qp.msn})
		}
		layers = append(layers, packet.Payload(buf))
		frame := packet.Serialize(layers...)
		d.eng.After(delay+d.wireTime(len(frame))*simtime.Duration(i+1), func() {
			d.emit(qp.AV.DIP, simnet.Frame(frame))
		})
	}
}

// handleReadResponse scatters response data into the requester's read WQE.
func (d *Device) handleReadResponse(qp *QP, pkt *packet.Packet) {
	bth := pkt.BTH()
	w := qp.findWQE(bth.PSN)
	if w == nil || w.wr.Op != WRRead {
		return // stale response after a rewind
	}
	off := int(psnDiff(bth.PSN, w.firstPSN)) * d.P.MTU
	mr := d.mrs[w.wr.LKey]
	if mr == nil || mr.PD != qp.PD ||
		mr.dma(d.hostMem, w.wr.LocalAddr+uint64(off), pkt.Payload, true) != nil {
		qp.enterError(WCRemoteOpErr)
		return
	}
	w.readRecv += len(pkt.Payload)
	if w.readRecv >= w.wr.Len && w == qp.sq[0] {
		d.eng.After(d.P.RxCQE, func() {
			if len(qp.sq) > 0 && qp.sq[0] == w {
				qp.completeHead(w)
				qp.retire(w.lastPSN)
			}
		})
	}
	// Responses advance the cumulative ack point.
	if psnDiff(bth.PSN+1, qp.sndUna) > 0 {
		qp.sndUna = (bth.PSN + 1) & 0xffffff
		qp.retries = 0
		qp.armTimer()
		qp.kick()
	}
}

// handleUD delivers a datagram: QKey check, then scatter into the next
// receive WQE; silently dropped otherwise (unreliable service).
func (d *Device) handleUD(qp *QP, pkt *packet.Packet) {
	deth := pkt.DETH()
	if deth == nil || deth.QKey != qp.QKey {
		d.Stats.Dropped++
		return
	}
	wr, ok := qp.takeRecvWQE()
	if !ok {
		d.Stats.Dropped++
		return
	}
	n := len(pkt.Payload)
	if n > 0 {
		mr := d.mrs[wr.LKey]
		if mr == nil || mr.PD != qp.PD || n > wr.Len ||
			mr.dma(d.hostMem, wr.Addr, pkt.Payload, true) != nil {
			d.Stats.Dropped++
			return
		}
	}
	d.Stats.RxMsgs++
	wc := WC{WRID: wr.WRID, Status: WCSuccess, QPN: qp.Num, ByteLen: n, SrcQP: deth.SrcQP, Recv: true}
	if imm := pkt.ImmDt(); imm != nil {
		wc.Imm, wc.HasImm = imm.Value, true
	}
	d.postWCAfter(qp, qp.RecvCQ, wc)
}

// handleAck is the requester path for ACK/NAK packets.
func (d *Device) handleAck(qp *QP, pkt *packet.Packet) {
	aeth := pkt.AETH()
	if aeth == nil || qp.state == StateError || qp.state == StateReset {
		return
	}
	bth := pkt.BTH()
	if code, nak := aeth.IsNAK(); nak {
		switch code {
		case packet.NakPSNSequenceError:
			qp.rewind((bth.PSN + 1) & 0xffffff)
		case packet.NakRemoteAccessError:
			qp.enterError(WCRemoteAccessErr)
		default:
			qp.enterError(WCRemoteOpErr)
		}
		return
	}
	if aeth.IsRNR() {
		qp.rnrRetries++
		if qp.rnrRetries > d.P.MaxRetry {
			qp.enterError(WCRNRRetryExceeded)
			return
		}
		qp.pausedUntil = d.eng.Now().Add(d.P.RNRTimer)
		qp.sndNxt = qp.sndUna
		w := qp.findWQE(qp.sndUna)
		if w != nil {
			for i, sw := range qp.sq {
				if sw == w {
					qp.txIdx = i
					break
				}
			}
			qp.txOff = int(psnDiff(qp.sndUna, w.firstPSN)) * d.P.MTU
		}
		qp.kickAt(qp.pausedUntil)
		return
	}
	d.retireAfter(d.P.AckProc, qp, bth.PSN)
}
