// Package rnic models a RoCEv2 RDMA NIC at packet level: protection
// domains, memory regions with an MTT, completion queues, queue pairs with
// the full QP state machine (Fig. 5 of the MasQ paper), a reliable-
// connection transport engine with PSN sequencing, ACK/NAK processing and
// go-back-N retransmission, an unreliable-datagram engine, SR-IOV physical
// and virtual functions, and per-function token-bucket rate limiters.
//
// Data really moves: a SEND gathers bytes from host physical memory through
// the MR's extents, crosses the simulated wire as RoCEv2 frames, and is
// scattered into the receiver's posted buffer by DMA. Control-path verbs
// are charged the per-verb costs of the paper's Table 1 through the
// device's firmware command processor.
package rnic

import (
	"masq/internal/simtime"
)

// Verb identifies a control- or data-path verb for cost accounting.
type Verb int

// Verbs, in the order of the paper's Table 1.
const (
	VerbGetDeviceList Verb = iota
	VerbOpenDevice
	VerbAllocPD
	VerbRegMR
	VerbCreateCQ
	VerbCreateQP
	VerbQueryGID
	VerbModifyQPInit
	VerbModifyQPRTR
	VerbModifyQPRTS
	VerbPostSend
	VerbPostRecv
	VerbPollCQ
	VerbCreateSRQ
	VerbDestroySRQ
	VerbDestroyQP
	VerbDestroyCQ
	VerbDeregMR
	VerbDeallocPD
	VerbCloseDevice
	VerbModifyQPErr // connection reset; costed per Fig. 18, not Table 1
	numVerbs
)

var verbNames = [numVerbs]string{
	"get_device_list", "open_device", "alloc_pd", "reg_mr", "create_cq",
	"create_qp", "query_gid", "modify_qp_INIT", "modify_qp_RTR",
	"modify_qp_RTS", "post_send", "post_recv", "poll_cq", "create_srq",
	"destroy_srq", "destroy_qp", "destroy_cq", "dereg_mr", "dealloc_pd",
	"close_device", "modify_qp_ERR",
}

func (v Verb) String() string {
	if v >= 0 && int(v) < len(verbNames) {
		return verbNames[v]
	}
	return "verb(?)"
}

// IsControlPath reports whether the verb manipulates resources/QPC (the
// paper's control-path class) rather than exchanging data.
func (v Verb) IsControlPath() bool {
	switch v {
	case VerbPostSend, VerbPostRecv, VerbPollCQ:
		return false
	}
	return true
}

// Params holds every latency and capacity constant of the device model.
// The defaults are calibrated against the paper's testbed (Mellanox CX-3
// Pro 40 Gbps): Table 1 verb costs, ~0.8 µs host 2 B send latency (Fig. 8a),
// ~9.7 Mops message rate (Fig. 21) and the Fig. 18 reset costs.
type Params struct {
	MTU      int     // RoCE path MTU in bytes
	LineRate float64 // port speed, bits per second

	// Data-path latencies (per packet, one side).
	TxLatency simtime.Duration // doorbell→wire: WQE fetch, gather DMA
	RxLatency simtime.Duration // wire→memory: validate, scatter DMA
	RxCQE     simtime.Duration // extra to deliver a CQE after scatter
	AckProc   simtime.Duration // processing an incoming ACK/NAK

	// Data-path pipeline occupancies (message-rate limits).
	TxOccupancy  simtime.Duration // TX pipeline hold per packet
	RxOccupancy  simtime.Duration // RX pipeline hold per packet
	AckOccupancy simtime.Duration // RX pipeline hold for a pure ACK/NAK

	// Penalties applied when the QP lives on a virtual function.
	VFDataPenalty simtime.Duration // added to TxLatency and RxLatency

	// IOMMU cost per packet on both pipelines when the function's traffic
	// passes a DMA-remapping unit (SR-IOV passthrough; MasQ avoids it).
	IOMMUOccupancy simtime.Duration

	// Control path.
	VerbCost          [numVerbs]simtime.Duration // host (PF) cost per verb
	VFControlFactor   float64                    // multiplier for control verbs on a VF
	RegMRPerPage      simtime.Duration           // pinning cost per 4 KiB page past the first
	ResetKernel       simtime.Duration           // Fig. 18: kernel routine share of modify_qp(ERR)
	ResetRNICPF       simtime.Duration           // Fig. 18: RNIC share on PF, idle
	ResetRNICVF       simtime.Duration           // Fig. 18: RNIC share on VF, idle
	ResetTrafficExtra simtime.Duration           // Fig. 18: additional RNIC share under heavy traffic

	// MaxInline bounds IBV_SEND_INLINE payloads (CX-3: ~912 bytes).
	MaxInline int

	// RC transport.
	MaxInflight    int              // per-QP window, packets
	RetransTimeout simtime.Duration // go-back-N timeout
	MaxRetry       int              // transport retries before the QP errors out
	RNRTimer       simtime.Duration // wait after an RNR NAK

	// Resource limits.
	MaxVFs int // non-ARI PCIe exposes 8 VFs (Table 5)

	// KeyBase offsets MR key minting: the device assigns lkeys/rkeys
	// sequentially from KeyBase+1. Hosts in a cluster use disjoint bases so
	// a migrated MR keeps keys that cannot collide with regions already
	// registered on the destination device — peers hold rkeys in
	// application state, so keys must survive a live migration unchanged.
	KeyBase uint32

	// On-chip context cache model (Sec. 1's hardware-solution scalability
	// discussion): per-packet QP-context lookups that miss the cache pay
	// CtxMissPenalty of extra pipeline occupancy. A zero CtxCacheSize
	// disables the model (infinite cache).
	CtxCacheSize   int
	CtxMissPenalty simtime.Duration
}

// DefaultParams returns the CX-3-calibrated parameter set.
func DefaultParams() Params {
	p := Params{
		MTU:      4096,
		LineRate: 40e9,

		TxLatency: simtime.Us(0.25),
		RxLatency: simtime.Us(0.08),
		RxCQE:     simtime.Us(0.02),
		AckProc:   simtime.Us(0.05),

		TxOccupancy:  simtime.Us(0.090), // ≈9.7 M messages/s small-message ceiling
		RxOccupancy:  simtime.Us(0.085),
		AckOccupancy: simtime.Us(0.018), // ACKs are handled in a fast hardware path

		VFDataPenalty:  simtime.Us(0.15),
		IOMMUOccupancy: simtime.Us(0.012),

		VFControlFactor:   2.35, // 0.8 ms → 1.9 ms connection setup (Fig. 15a)
		RegMRPerPage:      simtime.Us(0.4),
		ResetKernel:       simtime.Us(100),
		ResetRNICPF:       simtime.Us(153),
		ResetRNICVF:       simtime.Us(418),
		ResetTrafficExtra: simtime.Us(320),

		MaxInline:      912,
		MaxInflight:    128,
		RetransTimeout: simtime.Ms(4),
		MaxRetry:       7,
		RNRTimer:       simtime.Us(100),

		MaxVFs: 8,
	}
	us := func(v float64) simtime.Duration { return simtime.Us(v) }
	p.VerbCost = [numVerbs]simtime.Duration{
		VerbGetDeviceList: us(396),
		VerbOpenDevice:    us(1115),
		VerbAllocPD:       us(3),
		VerbRegMR:         us(78),
		VerbCreateCQ:      us(266),
		VerbCreateQP:      us(76),
		VerbQueryGID:      us(22),
		VerbModifyQPInit:  us(231),
		VerbModifyQPRTR:   us(62),
		VerbModifyQPRTS:   us(73),
		VerbPostSend:      us(0.2),
		VerbPostRecv:      us(0.2),
		VerbPollCQ:        us(0.03),
		VerbCreateSRQ:     us(85), // not in Table 1; sized like create_qp
		VerbDestroySRQ:    us(90),
		VerbDestroyQP:     us(170),
		VerbDestroyCQ:     us(79),
		VerbDeregMR:       us(35),
		VerbDeallocPD:     us(2),
		VerbCloseDevice:   us(16),
	}
	return p
}
