// Package oob implements the out-of-band connection channel applications
// use to exchange QP information before RDMA communication starts (the
// "pre-established TCP connection" of Fig. 1, step 3 of Fig. 4). It is a
// tiny message-oriented, connection-oriented transport over the tenant's
// virtual Ethernet network, so it traverses the vswitch and is subject to
// security groups — which is precisely how MasQ's first two security
// subproblems are solved: deny the rule and the QP exchange never happens.
package oob

import (
	"encoding/binary"
	"errors"
	"fmt"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// Errors returned by the stack.
var (
	ErrTimeout = errors.New("oob: connection timed out (blocked by security rules?)")
	ErrClosed  = errors.New("oob: connection closed")
	ErrNoRoute = errors.New("oob: cannot resolve destination")
	ErrInUse   = errors.New("oob: port in use")
)

// header flags.
const (
	flagSYN byte = 1 << iota
	flagSYNACK
	flagDATA
	flagFIN
	flagACK // acknowledges the DATA segment carrying the same seq
)

// segment layout: srcPort(2) dstPort(2) flags(1) seq(1) pad(2), then
// payload. seq numbers DATA segments (mod 256) for ack/retransmit/dedup;
// it is zero on SYN/SYNACK/FIN.
const hdrLen = 8

// Params tunes the retransmission layer. The overlay may lose frames
// (chaos loss windows, link cuts), so both the handshake and data segments
// are retransmitted with exponential backoff up to a retry budget — a
// transient loss window delays a connection instead of failing it.
type Params struct {
	SynRetries  int              // SYN transmissions per Dial (min 1)
	DataRetries int              // DATA transmissions per message (min 1)
	RetxTimeout simtime.Duration // initial retransmit timeout; doubles per retry
}

// DefaultParams returns the stack defaults.
func DefaultParams() Params {
	return Params{SynRetries: 6, DataRetries: 6, RetxTimeout: simtime.Ms(2)}
}

// Stats counts retransmission-layer activity.
type Stats struct {
	SynRetx  uint64 // SYN segments re-sent by Dial
	DataRetx uint64 // DATA segments re-sent after an ack timeout
	DupData  uint64 // duplicate DATA segments discarded at the receiver
	Resets   uint64 // connections aborted after DATA retry exhaustion
}

// Resolver maps a destination virtual IP to its virtual MAC (ARP within
// the tenant network).
type Resolver func(dst packet.IP) (packet.MAC, bool)

type connKey struct {
	remoteIP   packet.IP
	localPort  uint16
	remotePort uint16
}

// Stack is a VM's out-of-band transport endpoint over its overlay port.
type Stack struct {
	// P may be tuned before the first Dial/Send.
	P     Params
	Stats Stats

	eng       *simtime.Engine
	port      *overlay.VMPort
	resolve   Resolver
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	dials     map[connKey]*simtime.Event[*Conn]
	nextPort  uint16
}

// NewStack creates the endpoint and starts its demultiplexer.
func NewStack(eng *simtime.Engine, port *overlay.VMPort, resolve Resolver) *Stack {
	s := &Stack{
		P:         DefaultParams(),
		eng:       eng,
		port:      port,
		resolve:   resolve,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		dials:     make(map[connKey]*simtime.Event[*Conn]),
		nextPort:  20000,
	}
	eng.Spawn(fmt.Sprintf("oob:%v", port.EP.VIP), s.rxLoop)
	return s
}

// IP returns the stack's current virtual IP.
func (s *Stack) IP() packet.IP { return s.port.EP.VIP }

// Listener accepts inbound connections on a port.
type Listener struct {
	Port    uint16
	backlog *simtime.Queue[*Conn]
}

// Accept blocks until a peer connects.
func (l *Listener) Accept(p *simtime.Proc) *Conn { return l.backlog.Get(p) }

// AcceptTimeout is Accept with a deadline.
func (l *Listener) AcceptTimeout(p *simtime.Proc, d simtime.Duration) (*Conn, bool) {
	return l.backlog.GetTimeout(p, d)
}

// Listen binds a port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if s.listeners[port] != nil {
		return nil, ErrInUse
	}
	l := &Listener{Port: port, backlog: simtime.NewQueue[*Conn](s.eng)}
	s.listeners[port] = l
	return l, nil
}

// Conn is an established bidirectional message channel. Messages are
// delivered reliably and in order: each DATA segment carries a sequence
// number, is acknowledged by the receiver, and is retransmitted with
// backoff until acked or the retry budget runs out (which resets the
// connection).
type Conn struct {
	stack     *Stack
	key       connKey
	remoteMAC packet.MAC
	inbox     *simtime.Queue[[]byte]
	closed    bool

	txSeq   byte               // next sequence number to assign
	rxNext  byte               // next sequence number to deliver
	pend    map[byte]*retxJob  // unacked outbound segments
	reorder map[byte][]byte    // out-of-order inbound segments
}

// retxJob retransmits one unacked DATA segment until acked or exhausted.
type retxJob struct {
	c       *Conn
	seq     byte
	data    []byte
	tries   int
	backoff simtime.Duration
}

// RemoteIP returns the peer's virtual IP.
func (c *Conn) RemoteIP() packet.IP { return c.key.remoteIP }

// Dial connects to (ip, port), performing a SYN/SYNACK handshake through
// the overlay. The SYN is retransmitted with exponential backoff within
// the timeout budget, so transient loss delays the handshake rather than
// failing it; ErrTimeout after the full budget means the path is down or
// the handshake is filtered by security rules.
func (s *Stack) Dial(p *simtime.Proc, ip packet.IP, port uint16, timeout simtime.Duration) (*Conn, error) {
	mac, ok := s.resolve(ip)
	if !ok {
		return nil, ErrNoRoute
	}
	s.nextPort++
	key := connKey{remoteIP: ip, localPort: s.nextPort, remotePort: port}
	ev := simtime.NewEvent[*Conn](s.eng)
	s.dials[key] = ev
	defer delete(s.dials, key)
	deadline := p.Now().Add(timeout)
	backoff := s.P.RetxTimeout
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			s.Stats.SynRetx++
		}
		s.send(mac, ip, key.localPort, port, flagSYN, 0, nil)
		wait := backoff
		if attempt >= s.P.SynRetries {
			wait = deadline.Sub(p.Now()) // last attempt: wait out the budget
		}
		if rem := deadline.Sub(p.Now()); wait > rem {
			wait = rem
		}
		if wait <= 0 {
			return nil, ErrTimeout
		}
		if conn, ok := ev.WaitTimeout(p, wait); ok {
			return conn, nil
		}
		if p.Now() >= deadline {
			return nil, ErrTimeout
		}
		backoff *= 2
	}
}

// Send transmits one message on the connection. It returns once the
// segment is on the wire; acknowledgment and retransmission run in the
// background (lost segments are re-sent with backoff; exhausting the
// budget resets the connection, surfacing ErrClosed to readers).
func (c *Conn) Send(p *simtime.Proc, msg []byte) error {
	if c.closed {
		return ErrClosed
	}
	seq := c.txSeq
	c.txSeq++
	if c.pend == nil {
		c.pend = make(map[byte]*retxJob)
	}
	j := &retxJob{c: c, seq: seq, data: append([]byte(nil), msg...), tries: 1, backoff: c.stack.P.RetxTimeout}
	c.pend[seq] = j
	c.stack.send(c.remoteMAC, c.key.remoteIP, c.key.localPort, c.key.remotePort, flagDATA, seq, msg)
	c.stack.eng.After(j.backoff, j.fire)
	return nil
}

// fire is the ack-timeout path of one outbound segment.
func (j *retxJob) fire() {
	c := j.c
	if c.closed || c.pend[j.seq] != j {
		return // acked (or conn torn down) before the timeout
	}
	if j.tries >= max(c.stack.P.DataRetries, 1) {
		// The peer is gone (dead VM, partition outlasting the budget):
		// reset the connection so readers unblock with ErrClosed.
		c.stack.Stats.Resets++
		delete(c.pend, j.seq)
		c.closed = true
		c.inbox.Put(nil)
		delete(c.stack.conns, c.key)
		return
	}
	j.tries++
	j.backoff *= 2
	c.stack.Stats.DataRetx++
	c.stack.send(c.remoteMAC, c.key.remoteIP, c.key.localPort, c.key.remotePort, flagDATA, j.seq, j.data)
	c.stack.eng.After(j.backoff, j.fire)
}

// Recv blocks for the next message.
func (c *Conn) Recv(p *simtime.Proc) ([]byte, error) {
	msg := c.inbox.Get(p)
	if msg == nil {
		return nil, ErrClosed
	}
	return msg, nil
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(p *simtime.Proc, d simtime.Duration) ([]byte, error) {
	msg, ok := c.inbox.GetTimeout(p, d)
	if !ok {
		return nil, ErrTimeout
	}
	if msg == nil {
		return nil, ErrClosed
	}
	return msg, nil
}

// Close tears the connection down on both sides.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.pend = nil // an orderly close abandons unacked segments
	c.stack.send(c.remoteMAC, c.key.remoteIP, c.key.localPort, c.key.remotePort, flagFIN, 0, nil)
	delete(c.stack.conns, c.key)
}

func (s *Stack) send(dstMAC packet.MAC, dstIP packet.IP, srcPort, dstPort uint16, flags, seq byte, data []byte) {
	seg := make([]byte, hdrLen+len(data))
	binary.BigEndian.PutUint16(seg[0:2], srcPort)
	binary.BigEndian.PutUint16(seg[2:4], dstPort)
	seg[4] = flags
	seg[5] = seq
	copy(seg[hdrLen:], data)
	frame := packet.Serialize(
		&packet.Ethernet{Dst: dstMAC, Src: s.port.EP.VMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: s.port.EP.VIP, Dst: dstIP},
		packet.Payload(seg),
	)
	s.port.Send(simnet.Frame(frame))
}

func (s *Stack) rxLoop(p *simtime.Proc) {
	for {
		f := s.port.RX.Get(p)
		pkt, err := packet.Decode(f)
		if err != nil || pkt.IPv4() == nil || pkt.IPv4().Protocol != packet.ProtoTCP {
			continue
		}
		seg := []byte(pkt.Payload)
		if len(seg) < hdrLen {
			continue
		}
		srcPort := binary.BigEndian.Uint16(seg[0:2])
		dstPort := binary.BigEndian.Uint16(seg[2:4])
		flags := seg[4]
		seq := seg[5]
		srcIP := pkt.IPv4().Src
		srcMAC := pkt.Ethernet().Src

		switch {
		case flags&flagSYN != 0:
			l := s.listeners[dstPort]
			if l == nil {
				continue
			}
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if s.conns[key] != nil {
				// Retransmitted SYN for a connection we already accepted:
				// our SYNACK was lost. Re-answer, don't re-accept.
				s.send(srcMAC, srcIP, dstPort, srcPort, flagSYNACK, 0, nil)
				continue
			}
			conn := &Conn{stack: s, key: key, remoteMAC: srcMAC, inbox: simtime.NewQueue[[]byte](s.eng)}
			s.conns[key] = conn
			s.send(srcMAC, srcIP, dstPort, srcPort, flagSYNACK, 0, nil)
			l.backlog.Put(conn)
		case flags&flagSYNACK != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if ev := s.dials[key]; ev != nil && !ev.Triggered() {
				conn := &Conn{stack: s, key: key, remoteMAC: srcMAC, inbox: simtime.NewQueue[[]byte](s.eng)}
				s.conns[key] = conn
				ev.Trigger(conn)
			}
		case flags&flagACK != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if conn := s.conns[key]; conn != nil {
				delete(conn.pend, seq)
			}
		case flags&flagDATA != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			conn := s.conns[key]
			if conn == nil {
				continue
			}
			// Always ack — a duplicate means our previous ack was lost.
			s.send(srcMAC, srcIP, dstPort, srcPort, flagACK, seq, nil)
			switch {
			case seq == conn.rxNext:
				data := make([]byte, len(seg)-hdrLen)
				copy(data, seg[hdrLen:])
				conn.inbox.Put(data)
				conn.rxNext++
				// Drain anything the loss reordered behind this segment.
				for {
					d, ok := conn.reorder[conn.rxNext]
					if !ok {
						break
					}
					delete(conn.reorder, conn.rxNext)
					conn.inbox.Put(d)
					conn.rxNext++
				}
			case byte(seq-conn.rxNext) < 128:
				// Ahead of the delivery cursor: an earlier segment is
				// still in flight (lost, being retransmitted). Buffer.
				if conn.reorder == nil {
					conn.reorder = make(map[byte][]byte)
				}
				if _, dup := conn.reorder[seq]; !dup {
					data := make([]byte, len(seg)-hdrLen)
					copy(data, seg[hdrLen:])
					conn.reorder[seq] = data
				}
			default:
				s.Stats.DupData++ // behind the cursor: already delivered
			}
		case flags&flagFIN != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if conn := s.conns[key]; conn != nil {
				conn.closed = true
				conn.pend = nil
				conn.inbox.Put(nil)
				delete(s.conns, key)
			}
		}
	}
}
