// Package oob implements the out-of-band connection channel applications
// use to exchange QP information before RDMA communication starts (the
// "pre-established TCP connection" of Fig. 1, step 3 of Fig. 4). It is a
// tiny message-oriented, connection-oriented transport over the tenant's
// virtual Ethernet network, so it traverses the vswitch and is subject to
// security groups — which is precisely how MasQ's first two security
// subproblems are solved: deny the rule and the QP exchange never happens.
package oob

import (
	"encoding/binary"
	"errors"
	"fmt"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// Errors returned by the stack.
var (
	ErrTimeout = errors.New("oob: connection timed out (blocked by security rules?)")
	ErrClosed  = errors.New("oob: connection closed")
	ErrNoRoute = errors.New("oob: cannot resolve destination")
	ErrInUse   = errors.New("oob: port in use")
)

// header flags.
const (
	flagSYN byte = 1 << iota
	flagSYNACK
	flagDATA
	flagFIN
)

// segment layout: srcPort(2) dstPort(2) flags(1) pad(3), then payload.
const hdrLen = 8

// Resolver maps a destination virtual IP to its virtual MAC (ARP within
// the tenant network).
type Resolver func(dst packet.IP) (packet.MAC, bool)

type connKey struct {
	remoteIP   packet.IP
	localPort  uint16
	remotePort uint16
}

// Stack is a VM's out-of-band transport endpoint over its overlay port.
type Stack struct {
	eng       *simtime.Engine
	port      *overlay.VMPort
	resolve   Resolver
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	dials     map[connKey]*simtime.Event[*Conn]
	nextPort  uint16
}

// NewStack creates the endpoint and starts its demultiplexer.
func NewStack(eng *simtime.Engine, port *overlay.VMPort, resolve Resolver) *Stack {
	s := &Stack{
		eng:       eng,
		port:      port,
		resolve:   resolve,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		dials:     make(map[connKey]*simtime.Event[*Conn]),
		nextPort:  20000,
	}
	eng.Spawn(fmt.Sprintf("oob:%v", port.EP.VIP), s.rxLoop)
	return s
}

// IP returns the stack's current virtual IP.
func (s *Stack) IP() packet.IP { return s.port.EP.VIP }

// Listener accepts inbound connections on a port.
type Listener struct {
	Port    uint16
	backlog *simtime.Queue[*Conn]
}

// Accept blocks until a peer connects.
func (l *Listener) Accept(p *simtime.Proc) *Conn { return l.backlog.Get(p) }

// AcceptTimeout is Accept with a deadline.
func (l *Listener) AcceptTimeout(p *simtime.Proc, d simtime.Duration) (*Conn, bool) {
	return l.backlog.GetTimeout(p, d)
}

// Listen binds a port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if s.listeners[port] != nil {
		return nil, ErrInUse
	}
	l := &Listener{Port: port, backlog: simtime.NewQueue[*Conn](s.eng)}
	s.listeners[port] = l
	return l, nil
}

// Conn is an established bidirectional message channel.
type Conn struct {
	stack     *Stack
	key       connKey
	remoteMAC packet.MAC
	inbox     *simtime.Queue[[]byte]
	closed    bool
}

// RemoteIP returns the peer's virtual IP.
func (c *Conn) RemoteIP() packet.IP { return c.key.remoteIP }

// Dial connects to (ip, port), performing a SYN/SYNACK handshake through
// the overlay. It fails with ErrTimeout when the handshake is filtered.
func (s *Stack) Dial(p *simtime.Proc, ip packet.IP, port uint16, timeout simtime.Duration) (*Conn, error) {
	mac, ok := s.resolve(ip)
	if !ok {
		return nil, ErrNoRoute
	}
	s.nextPort++
	key := connKey{remoteIP: ip, localPort: s.nextPort, remotePort: port}
	ev := simtime.NewEvent[*Conn](s.eng)
	s.dials[key] = ev
	s.send(mac, ip, key.localPort, port, flagSYN, nil)
	conn, ok := ev.WaitTimeout(p, timeout)
	delete(s.dials, key)
	if !ok {
		return nil, ErrTimeout
	}
	return conn, nil
}

// Send transmits one message on the connection.
func (c *Conn) Send(p *simtime.Proc, msg []byte) error {
	if c.closed {
		return ErrClosed
	}
	c.stack.send(c.remoteMAC, c.key.remoteIP, c.key.localPort, c.key.remotePort, flagDATA, msg)
	return nil
}

// Recv blocks for the next message.
func (c *Conn) Recv(p *simtime.Proc) ([]byte, error) {
	msg := c.inbox.Get(p)
	if msg == nil {
		return nil, ErrClosed
	}
	return msg, nil
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(p *simtime.Proc, d simtime.Duration) ([]byte, error) {
	msg, ok := c.inbox.GetTimeout(p, d)
	if !ok {
		return nil, ErrTimeout
	}
	if msg == nil {
		return nil, ErrClosed
	}
	return msg, nil
}

// Close tears the connection down on both sides.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.stack.send(c.remoteMAC, c.key.remoteIP, c.key.localPort, c.key.remotePort, flagFIN, nil)
	delete(c.stack.conns, c.key)
}

func (s *Stack) send(dstMAC packet.MAC, dstIP packet.IP, srcPort, dstPort uint16, flags byte, data []byte) {
	seg := make([]byte, hdrLen+len(data))
	binary.BigEndian.PutUint16(seg[0:2], srcPort)
	binary.BigEndian.PutUint16(seg[2:4], dstPort)
	seg[4] = flags
	copy(seg[hdrLen:], data)
	frame := packet.Serialize(
		&packet.Ethernet{Dst: dstMAC, Src: s.port.EP.VMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: s.port.EP.VIP, Dst: dstIP},
		packet.Payload(seg),
	)
	s.port.Send(simnet.Frame(frame))
}

func (s *Stack) rxLoop(p *simtime.Proc) {
	for {
		f := s.port.RX.Get(p)
		pkt, err := packet.Decode(f)
		if err != nil || pkt.IPv4() == nil || pkt.IPv4().Protocol != packet.ProtoTCP {
			continue
		}
		seg := []byte(pkt.Payload)
		if len(seg) < hdrLen {
			continue
		}
		srcPort := binary.BigEndian.Uint16(seg[0:2])
		dstPort := binary.BigEndian.Uint16(seg[2:4])
		flags := seg[4]
		srcIP := pkt.IPv4().Src
		srcMAC := pkt.Ethernet().Src

		switch {
		case flags&flagSYN != 0:
			l := s.listeners[dstPort]
			if l == nil {
				continue
			}
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			conn := &Conn{stack: s, key: key, remoteMAC: srcMAC, inbox: simtime.NewQueue[[]byte](s.eng)}
			s.conns[key] = conn
			s.send(srcMAC, srcIP, dstPort, srcPort, flagSYNACK, nil)
			l.backlog.Put(conn)
		case flags&flagSYNACK != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if ev := s.dials[key]; ev != nil {
				conn := &Conn{stack: s, key: key, remoteMAC: srcMAC, inbox: simtime.NewQueue[[]byte](s.eng)}
				s.conns[key] = conn
				ev.Trigger(conn)
			}
		case flags&flagDATA != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if conn := s.conns[key]; conn != nil {
				data := make([]byte, len(seg)-hdrLen)
				copy(data, seg[hdrLen:])
				conn.inbox.Put(data)
			}
		case flags&flagFIN != 0:
			key := connKey{remoteIP: srcIP, localPort: dstPort, remotePort: srcPort}
			if conn := s.conns[key]; conn != nil {
				conn.closed = true
				conn.inbox.Put(nil)
				delete(s.conns, key)
			}
		}
	}
}
