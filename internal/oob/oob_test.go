package oob_test

import (
	"errors"
	"testing"

	"masq/internal/oob"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/simnet"
	"masq/internal/simtime"
)

// testbed wires two hosts with vswitches over a direct underlay link and
// runs each host's demultiplexer (VXLAN frames → vswitch ingress).
type testbed struct {
	eng *simtime.Engine
	fab *overlay.Fabric
	swA *overlay.VSwitch
	swB *overlay.VSwitch
}

var (
	hostAIP  = packet.NewIP(172, 16, 0, 1)
	hostBIP  = packet.NewIP(172, 16, 0, 2)
	hostAMAC = packet.MAC{2, 0, 0, 0, 0, 0xa}
	hostBMAC = packet.MAC{2, 0, 0, 0, 0, 0xb}
)

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	eng := simtime.NewEngine()
	fab := overlay.NewFabric(eng, overlay.DefaultParams())
	portA := simnet.NewPort(eng, "hostA")
	portB := simnet.NewPort(eng, "hostB")
	simnet.Connect(eng, portA, portB, simnet.Gbps(40), simtime.Us(0.1))
	resolve := func(ip packet.IP) (packet.MAC, bool) {
		switch ip {
		case hostAIP:
			return hostAMAC, true
		case hostBIP:
			return hostBMAC, true
		}
		return packet.MAC{}, false
	}
	swA := fab.NewVSwitch(hostAIP, hostAMAC, portA, resolve)
	swB := fab.NewVSwitch(hostBIP, hostBMAC, portB, resolve)
	demux := func(name string, port *simnet.Port, sw *overlay.VSwitch) {
		eng.Spawn(name, func(p *simtime.Proc) {
			for {
				f := port.RX.Get(p)
				pkt, err := packet.Decode(f)
				if err != nil {
					continue
				}
				if u := pkt.UDP(); u != nil && u.DstPort == packet.PortVXLAN {
					sw.Ingress.Put(pkt)
				}
			}
		})
	}
	demux("demuxA", portA, swA)
	demux("demuxB", portB, swB)
	return &testbed{eng: eng, fab: fab, swA: swA, swB: swB}
}

func (tb *testbed) stack(t *testing.T, sw *overlay.VSwitch, vni uint32, vip packet.IP) *oob.Stack {
	t.Helper()
	vp, err := sw.AttachVM(vni, vip)
	if err != nil {
		t.Fatal(err)
	}
	return oob.NewStack(tb.eng, vp, func(dst packet.IP) (packet.MAC, bool) {
		ep := tb.fab.Lookup(vni, dst)
		if ep == nil {
			return packet.MAC{}, false
		}
		return ep.VMAC, true
	})
}

func allowAll(t *testing.T, pl *overlay.Policy) {
	t.Helper()
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	pl.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
}

func TestDialSendRecvAcrossHosts(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	allowAll(t, tenant.Policy)
	client := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	server := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))

	var got []byte
	var reply []byte
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, err := server.Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		conn := l.Accept(p)
		msg, err := conn.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		got = msg
		conn.Send(p, []byte("pong"))
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		conn, err := client.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("ping"))
		msg, err := conn.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		reply = msg
	})
	tb.eng.Run()
	if string(got) != "ping" || string(reply) != "pong" {
		t.Fatalf("got=%q reply=%q", got, reply)
	}
}

func TestDefaultDenyBlocksDial(t *testing.T) {
	tb := newTestbed(t)
	tb.fab.AddTenant(100, "acme") // no rules at all
	client := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	server := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))
	var dialErr error
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := server.Listen(7000)
		l.AcceptTimeout(p, simtime.Ms(50))
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		_, dialErr = client.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(10))
	})
	tb.eng.Run()
	if !errors.Is(dialErr, oob.ErrTimeout) {
		t.Fatalf("dial err = %v, want timeout (default deny)", dialErr)
	}
}

func TestRuleRemovalBlocksNewConnections(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	id := tenant.Policy.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow})
	client := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	server := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))
	var first, second error
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := server.Listen(7000)
		for {
			if _, ok := l.AcceptTimeout(p, simtime.Ms(200)); !ok {
				return
			}
		}
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		_, first = client.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(10))
		tenant.Policy.RemoveRule(id)
		_, second = client.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(10))
	})
	tb.eng.Run()
	if first != nil {
		t.Fatalf("first dial: %v", first)
	}
	if !errors.Is(second, oob.ErrTimeout) {
		t.Fatalf("second dial err = %v, want timeout after rule removal", second)
	}
}

// TestTenantIsolationWithOverlappingIPs: two tenants use the same virtual
// subnet; traffic must never cross VNIs even with allow-all policies.
func TestTenantIsolationWithOverlappingIPs(t *testing.T) {
	tb := newTestbed(t)
	t1 := tb.fab.AddTenant(100, "acme")
	t2 := tb.fab.AddTenant(200, "globex")
	allowAll(t, t1.Policy)
	allowAll(t, t2.Policy)
	// Same IPs, different tenants.
	a1 := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	b1 := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))
	a2 := tb.stack(t, tb.swA, 200, packet.NewIP(192, 168, 1, 1))
	b2 := tb.stack(t, tb.swB, 200, packet.NewIP(192, 168, 1, 2))

	var got1, got2 string
	serve := func(s *oob.Stack, out *string) {
		tb.eng.Spawn("srv", func(p *simtime.Proc) {
			l, _ := s.Listen(7000)
			conn, ok := l.AcceptTimeout(p, simtime.Ms(500))
			if !ok {
				return
			}
			msg, err := conn.Recv(p)
			if err == nil {
				*out = string(msg)
			}
		})
	}
	serve(b1, &got1)
	serve(b2, &got2)
	tb.eng.Spawn("c1", func(p *simtime.Proc) {
		conn, err := a1.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("tenant-acme"))
	})
	tb.eng.Spawn("c2", func(p *simtime.Proc) {
		conn, err := a2.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("tenant-globex"))
	})
	tb.eng.Run()
	if got1 != "tenant-acme" || got2 != "tenant-globex" {
		t.Fatalf("cross-tenant leakage: got1=%q got2=%q", got1, got2)
	}
}

func TestSameHostDelivery(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	allowAll(t, tenant.Policy)
	c := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	s := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 2)) // same host
	var got string
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := s.Listen(9)
		conn := l.Accept(p)
		msg, _ := conn.Recv(p)
		got = string(msg)
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		conn, err := c.Dial(p, packet.NewIP(192, 168, 1, 2), 9, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("local"))
	})
	tb.eng.Run()
	if got != "local" {
		t.Fatalf("got %q", got)
	}
}

func TestSetIPFiresNotificationAndRegistry(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	allowAll(t, tenant.Policy)
	vp, err := tb.swA.AttachVM(100, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	var oldIP, newIP packet.IP
	vp.OnIPChange(func(o, n packet.IP) { oldIP, newIP = o, n })
	if err := vp.SetIP(packet.NewIP(192, 168, 1, 99)); err != nil {
		t.Fatal(err)
	}
	if oldIP != packet.NewIP(192, 168, 1, 1) || newIP != packet.NewIP(192, 168, 1, 99) {
		t.Fatalf("notification: %v → %v", oldIP, newIP)
	}
	if tb.fab.Lookup(100, packet.NewIP(192, 168, 1, 1)) != nil {
		t.Fatal("old registry entry lingers")
	}
	if ep := tb.fab.Lookup(100, packet.NewIP(192, 168, 1, 99)); ep == nil || ep.HostIP != hostAIP {
		t.Fatal("new registry entry missing")
	}
}

func TestDialUnknownDestination(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	allowAll(t, tenant.Policy)
	c := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	var err error
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		_, err = c.Dial(p, packet.NewIP(192, 168, 9, 9), 7, simtime.Ms(5))
	})
	tb.eng.Run()
	if !errors.Is(err, oob.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestConnClose(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	allowAll(t, tenant.Policy)
	c := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	s := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))
	var recvErr error
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := s.Listen(7000)
		conn := l.Accept(p)
		_, recvErr = conn.Recv(p)
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		conn, err := c.Dial(p, packet.NewIP(192, 168, 1, 2), 7000, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(simtime.Ms(1))
		conn.Close()
		if sendErr := conn.Send(p, []byte("x")); !errors.Is(sendErr, oob.ErrClosed) {
			t.Errorf("send after close err = %v", sendErr)
		}
	})
	tb.eng.Run()
	if !errors.Is(recvErr, oob.ErrClosed) {
		t.Fatalf("recv err = %v, want ErrClosed", recvErr)
	}
}

// TestUnderlayFramesAreVXLANEncapsulated sniffs the physical link and
// verifies that tenant traffic crosses the wire inside VXLAN with the
// tenant's VNI and the hosts' underlay addresses.
func TestUnderlayFramesAreVXLANEncapsulated(t *testing.T) {
	eng := simtime.NewEngine()
	fab := overlay.NewFabric(eng, overlay.DefaultParams())
	portA := simnet.NewPort(eng, "hostA")
	portB := simnet.NewPort(eng, "hostB")
	link := simnet.Connect(eng, portA, portB, simnet.Gbps(40), simtime.Us(0.1))
	resolve := func(ip packet.IP) (packet.MAC, bool) {
		switch ip {
		case hostAIP:
			return hostAMAC, true
		case hostBIP:
			return hostBMAC, true
		}
		return packet.MAC{}, false
	}
	swA := fab.NewVSwitch(hostAIP, hostAMAC, portA, resolve)
	swB := fab.NewVSwitch(hostBIP, hostBMAC, portB, resolve)
	for _, d := range []struct {
		port *simnet.Port
		sw   *overlay.VSwitch
	}{{portA, swA}, {portB, swB}} {
		d := d
		eng.Spawn("demux", func(p *simtime.Proc) {
			for {
				f := d.port.RX.Get(p)
				if pkt, err := packet.Decode(f); err == nil && pkt.VXLAN() != nil {
					d.sw.Ingress.Put(pkt)
				}
			}
		})
	}
	tenant := fab.AddTenant(77, "acme")
	allowAll(t, tenant.Policy)

	var sniffed []*packet.Packet
	link.Drop = func(f simnet.Frame) bool {
		if pkt, err := packet.Decode(f); err == nil {
			sniffed = append(sniffed, pkt)
		}
		return false
	}

	tb := &testbed{eng: eng, fab: fab, swA: swA, swB: swB}
	client := tb.stack(t, swA, 77, packet.NewIP(192, 168, 9, 1))
	server := tb.stack(t, swB, 77, packet.NewIP(192, 168, 9, 2))
	eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := server.Listen(5)
		conn := l.Accept(p)
		conn.Recv(p)
	})
	eng.Spawn("client", func(p *simtime.Proc) {
		conn, err := client.Dial(p, packet.NewIP(192, 168, 9, 2), 5, simtime.Ms(100))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(p, []byte("tunnel me"))
	})
	eng.Run()

	if len(sniffed) == 0 {
		t.Fatal("nothing sniffed on the wire")
	}
	for i, pkt := range sniffed {
		vx := pkt.VXLAN()
		if vx == nil {
			t.Fatalf("frame %d not VXLAN: %v", i, pkt)
		}
		if vx.VNI != 77 {
			t.Fatalf("frame %d VNI = %d, want 77", i, vx.VNI)
		}
		outer := pkt.IPv4()
		if outer.Src != hostAIP && outer.Src != hostBIP {
			t.Fatalf("frame %d outer src %v is not an underlay address", i, outer.Src)
		}
		inner := pkt.Inner.IPv4()
		if inner.Src[0] != 192 {
			t.Fatalf("frame %d inner src %v is not the tenant address", i, inner.Src)
		}
	}
}

// TestConntrackSkipsRuleScanOnEstablishedFlows: with a long rule chain,
// the first frame of a flow pays the scan and subsequent frames ride the
// conntrack cache (measurably faster).
func TestConntrackSkipsRuleScanOnEstablishedFlows(t *testing.T) {
	tb := newTestbed(t)
	tenant := tb.fab.AddTenant(100, "acme")
	// A tall chain: 400 filler rules below one allow-all.
	sub, _ := packet.ParseCIDR("203.0.113.0/24")
	for i := 0; i < 400; i++ {
		tenant.Policy.AddRule(overlay.Rule{Priority: 500 + i, Proto: overlay.ProtoTCP, Src: sub, Dst: sub, Action: overlay.Deny})
	}
	allowAll(t, tenant.Policy)

	client := tb.stack(t, tb.swA, 100, packet.NewIP(192, 168, 1, 1))
	server := tb.stack(t, tb.swB, 100, packet.NewIP(192, 168, 1, 2))
	var first, second simtime.Duration
	tb.eng.Spawn("server", func(p *simtime.Proc) {
		l, _ := server.Listen(5)
		conn := l.Accept(p)
		for i := 0; i < 2; i++ {
			conn.Recv(p)
			conn.Send(p, []byte("ack"))
		}
	})
	tb.eng.Spawn("client", func(p *simtime.Proc) {
		conn, err := client.Dial(p, packet.NewIP(192, 168, 1, 2), 5, simtime.Ms(500))
		if err != nil {
			t.Error(err)
			return
		}
		// The dial already warmed conntrack; measure two request/response
		// rounds — they must be equal (both cached) and fast.
		s := p.Now()
		conn.Send(p, []byte("one"))
		conn.Recv(p)
		first = p.Now().Sub(s)
		s = p.Now()
		conn.Send(p, []byte("two"))
		conn.Recv(p)
		second = p.Now().Sub(s)
	})
	tb.eng.Run()
	if first == 0 || second == 0 {
		t.Fatal("rounds did not complete")
	}
	// The rounds may differ by a frame's worth of ack traffic sharing the
	// egress queues, but nothing close to a rule scan.
	if diff := first - second; diff < -simtime.Us(30) || diff > simtime.Us(30) {
		t.Fatalf("cached rounds differ: %v vs %v", first, second)
	}
	// A 401-rule scan at 0.3µs/rule would add ~120µs per hop; the cached
	// path must be far below one scan's worth over the whole round trip.
	if first > simtime.Us(200) || second > simtime.Us(200) {
		t.Fatalf("round trips %v/%v suggest per-packet rule scans", first, second)
	}
}
