package simnet

import (
	"fmt"
	"strings"
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

// pingLog runs two hosts exchanging frames across a ConnectVia link on a
// ShardedEngine with the given shard count (host 0 on shard 0, host 1 on
// shard min(1, shards-1)) and returns each side's arrival log.
func pingLog(shards int) [2]string {
	se := simtime.NewSharded(shards)
	s0, s1 := 0, 0
	if shards > 1 {
		s1 = 1
	}
	a := NewPort(se.Shard(s0), "a")
	b := NewPort(se.Shard(s1), "b")
	ConnectVia(se, a, b, Gbps(40), simtime.Us(2))

	var logs [2]strings.Builder
	se.Shard(s0).Spawn("host-a", func(p *simtime.Proc) {
		for i := 0; i < 20; i++ {
			a.Send(frameTo(macB, macA, 100+i))
			p.Sleep(simtime.Us(1))
		}
	})
	se.Shard(s1).Spawn("host-b", func(p *simtime.Proc) {
		for i := 0; i < 20; i++ {
			b.Send(frameTo(macA, macB, 200+i))
			p.Sleep(simtime.Us(1))
		}
	})
	se.Shard(s0).Spawn("rx-a", func(p *simtime.Proc) {
		for {
			f := a.RX.Get(p)
			fmt.Fprintf(&logs[0], "%d a<-%d\n", p.Now(), len(f))
		}
	})
	se.Shard(s1).Spawn("rx-b", func(p *simtime.Proc) {
		for {
			f := b.RX.Get(p)
			fmt.Fprintf(&logs[1], "%d b<-%d\n", p.Now(), len(f))
		}
	})
	se.RunUntil(simtime.Time(simtime.Ms(1)))
	return [2]string{logs[0].String(), logs[1].String()}
}

// TestConnectViaCrossShardMatchesOracle: the same two-host frame exchange
// over a ConnectVia link yields byte-identical arrival logs whether both
// hosts share one shard (the oracle) or sit on separate shards.
func TestConnectViaCrossShardMatchesOracle(t *testing.T) {
	oracle := pingLog(1)
	got := pingLog(2)
	if oracle[0] == "" || oracle[1] == "" {
		t.Fatal("no frames delivered; test is vacuous")
	}
	if got != oracle {
		t.Fatalf("cross-shard run diverges from oracle:\noracle a:\n%sgot a:\n%s\noracle b:\n%sgot b:\n%s",
			oracle[0], got[0], oracle[1], got[1])
	}
}

// TestConnectViaMatchesConnectTiming: on one shard, a ConnectVia link
// delivers frames at exactly the same virtual instants as a plain Connect
// link with the same bandwidth and propagation delay — the exchange hop
// reorders nothing and adds no virtual latency.
func TestConnectViaMatchesConnectTiming(t *testing.T) {
	run := func(via bool) string {
		var log strings.Builder
		var eng *simtime.Engine
		var a, b *Port
		if via {
			se := simtime.NewSharded(1)
			eng = se.Shard(0)
			a, b = NewPort(eng, "a"), NewPort(eng, "b")
			ConnectVia(se, a, b, Gbps(40), simtime.Us(2))
			send(eng, a, b, &log)
			se.Run()
		} else {
			eng = simtime.NewEngine()
			a, b = NewPort(eng, "a"), NewPort(eng, "b")
			Connect(eng, a, b, Gbps(40), simtime.Us(2))
			send(eng, a, b, &log)
			eng.Run()
		}
		return log.String()
	}
	plain, via := run(false), run(true)
	if plain == "" {
		t.Fatal("no arrivals logged")
	}
	if plain != via {
		t.Fatalf("ConnectVia timing diverges from Connect:\nplain:\n%svia:\n%s", plain, via)
	}
}

func send(eng *simtime.Engine, a, b *Port, log *strings.Builder) {
	eng.Spawn("tx", func(p *simtime.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(frameTo(macB, macA, 1000))
		}
	})
	eng.Spawn("rx", func(p *simtime.Proc) {
		for {
			f := b.RX.Get(p)
			fmt.Fprintf(log, "%d len=%d\n", p.Now(), len(f))
		}
	})
}

// TestLinkMinLatencyAndCrossShard: accessors used by the cluster layer to
// derive the lookahead and gate unsupported features.
func TestLinkMinLatencyAndCrossShard(t *testing.T) {
	se := simtime.NewSharded(2)
	a := NewPort(se.Shard(0), "a")
	b := NewPort(se.Shard(1), "b")
	l := ConnectVia(se, a, b, Gbps(40), simtime.Us(3))
	if l.MinLatency() != simtime.Us(3) {
		t.Fatalf("MinLatency = %v, want 3µs", l.MinLatency())
	}
	if !l.CrossShard() {
		t.Fatal("link spanning shards 0 and 1 not marked cross-shard")
	}
	if se.Lookahead() != simtime.Us(3) {
		t.Fatalf("lookahead = %v, want 3µs", se.Lookahead())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AttachTap on a cross-shard link did not panic")
		}
	}()
	l.AttachTap()
}

// TestSwitchAttachPortVia: a ToR switch on shard 0 with uplinks to hosts
// on distinct shards forwards frames between them, byte-identically to
// the single-shard oracle.
func TestSwitchAttachPortVia(t *testing.T) {
	run := func(shards int) string {
		se := simtime.NewSharded(shards)
		sw := NewSwitch(se.Shard(0), "tor", simtime.Us(0.3))
		shardOf := func(i int) int { return i % shards }
		ports := make([]*Port, 3)
		for i := range ports {
			ports[i] = NewPort(se.Shard(shardOf(i)), "h"+itoa(i))
			sw.AttachPortVia(se, ports[i], Gbps(40), simtime.Us(1))
		}
		var logs [3]strings.Builder
		for i := range ports {
			i := i
			p := ports[i]
			se.Shard(shardOf(i)).Spawn("rx", func(pr *simtime.Proc) {
				for {
					f := p.RX.Get(pr)
					fmt.Fprintf(&logs[i], "%d h%d<-%v\n", pr.Now(), i, f.SrcMAC())
				}
			})
		}
		mac := func(i int) packet.MAC { return packet.MAC{2, 0, 0, 0, 0, byte(i)} }
		for i := range ports {
			i := i
			p := ports[i]
			se.Shard(shardOf(i)).Spawn("tx", func(pr *simtime.Proc) {
				for k := 0; k < 10; k++ {
					dst := (i + 1 + k%2) % 3
					p.Send(frameTo(mac(dst), mac(i), 64))
					pr.Sleep(simtime.Us(2))
				}
			})
		}
		se.RunUntil(simtime.Time(simtime.Ms(1)))
		return logs[0].String() + logs[1].String() + logs[2].String()
	}
	oracle := run(1)
	if oracle == "" {
		t.Fatal("no frames forwarded")
	}
	for _, n := range []int{2, 3} {
		if got := run(n); got != oracle {
			t.Fatalf("%d-shard switch run diverges from oracle:\n%s\nvs\n%s", n, oracle, got)
		}
	}
}
