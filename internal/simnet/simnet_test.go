package simnet

import (
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
)

func frameTo(dst, src packet.MAC, payload int) Frame {
	return Frame(packet.Serialize(
		&packet.Ethernet{Dst: dst, Src: src, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.NewIP(1, 1, 1, 1), Dst: packet.NewIP(2, 2, 2, 2)},
		&packet.UDP{SrcPort: 1, DstPort: 9999},
		packet.Payload(make([]byte, payload)),
	))
}

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	macC = packet.MAC{2, 0, 0, 0, 0, 0xc}
)

func TestLinkDeliversFrame(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	Connect(eng, a, b, Gbps(40), simtime.Us(0.1))
	var got Frame
	var at simtime.Time
	eng.Spawn("rx", func(p *simtime.Proc) {
		got = b.RX.Get(p)
		at = p.Now()
	})
	f := frameTo(macB, macA, 100)
	eng.Spawn("tx", func(p *simtime.Proc) { a.Send(f) })
	eng.Run()
	if got == nil {
		t.Fatal("no frame delivered")
	}
	// serialization: len*8/40e9 s; prop: 100ns.
	wantTx := simtime.Duration(float64(len(f)*8) / 40e9 * 1e9)
	want := simtime.Time(wantTx + simtime.Us(0.1))
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestLinkSerializationIsFIFO(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	Connect(eng, a, b, Gbps(1), 0) // slow link: 1 Gbps
	var arrivals []simtime.Time
	eng.Spawn("rx", func(p *simtime.Proc) {
		for i := 0; i < 2; i++ {
			b.RX.Get(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	f := frameTo(macB, macA, 1000-42) // 1000 bytes on the wire
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(f)
		a.Send(f)
	})
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	per := simtime.Duration(float64(len(f)*8) / 1e9 * 1e9) // = len(f)*8 ns
	if arrivals[0] != simtime.Time(per) || arrivals[1] != simtime.Time(2*per) {
		t.Fatalf("arrivals = %v, want %v and %v", arrivals, per, 2*per)
	}
}

func TestLinkIsFullDuplex(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	Connect(eng, a, b, Gbps(1), 0)
	var aAt, bAt simtime.Time
	eng.Spawn("rxA", func(p *simtime.Proc) { a.RX.Get(p); aAt = p.Now() })
	eng.Spawn("rxB", func(p *simtime.Proc) { b.RX.Get(p); bAt = p.Now() })
	f := frameTo(macB, macA, 1000-42)
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(f)
		b.Send(f)
	})
	eng.Run()
	if aAt != bAt || aAt == 0 {
		t.Fatalf("duplex directions interfered: a=%v b=%v", aAt, bAt)
	}
}

func TestLinkDropInjection(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	l := Connect(eng, a, b, Gbps(40), 0)
	n := 0
	l.Drop = func(Frame) bool { n++; return n == 1 } // drop the first frame only
	var got int
	eng.Spawn("rx", func(p *simtime.Proc) {
		for {
			b.RX.Get(p)
			got++
			if got == 2 {
				return
			}
		}
	})
	eng.Spawn("tx", func(p *simtime.Proc) {
		for i := 0; i < 3; i++ {
			a.Send(frameTo(macB, macA, 10))
		}
	})
	eng.Run()
	if got != 2 {
		t.Fatalf("received %d frames, want 2 (one dropped)", got)
	}
	if b.RxFrames != 2 || a.TxFrames != 3 {
		t.Fatalf("counters: tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
}

func TestPortCounters(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	Connect(eng, a, b, Gbps(40), 0)
	f := frameTo(macB, macA, 100)
	eng.Spawn("tx", func(p *simtime.Proc) { a.Send(f) })
	eng.Spawn("rx", func(p *simtime.Proc) { b.RX.Get(p) })
	eng.Run()
	if a.TxBytes != uint64(len(f)) || b.RxBytes != uint64(len(f)) {
		t.Fatalf("tx=%d rx=%d want %d", a.TxBytes, b.RxBytes, len(f))
	}
}

func TestSendOnUnattachedPortPanics(t *testing.T) {
	eng := simtime.NewEngine()
	p := NewPort(eng, "orphan")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Send(Frame{1, 2, 3})
}

// threeHostSwitch wires three host ports to a switch and returns them.
func threeHostSwitch(eng *simtime.Engine) (*Port, *Port, *Port) {
	sw := NewSwitch(eng, "tor", simtime.Us(0.3))
	a := NewPort(eng, "hostA")
	b := NewPort(eng, "hostB")
	c := NewPort(eng, "hostC")
	for _, p := range []*Port{a, b, c} {
		sw.AttachPort(p, Gbps(40), simtime.Us(0.1))
	}
	return a, b, c
}

func TestSwitchFloodsUnknownThenLearns(t *testing.T) {
	eng := simtime.NewEngine()
	a, b, c := threeHostSwitch(eng)
	var bGot, cGot int
	eng.Spawn("rxB", func(p *simtime.Proc) {
		for {
			b.RX.Get(p)
			bGot++
		}
	})
	eng.Spawn("rxC", func(p *simtime.Proc) {
		for {
			c.RX.Get(p)
			cGot++
		}
	})
	eng.Spawn("tx", func(p *simtime.Proc) {
		// Unknown destination: flood reaches both B and C.
		a.Send(frameTo(macB, macA, 10))
		p.Sleep(simtime.Ms(1))
		// B replies; switch learns B's port.
		b.Send(frameTo(macA, macB, 10))
		p.Sleep(simtime.Ms(1))
		// Now A→B must be unicast: C sees nothing new.
		a.Send(frameTo(macB, macA, 10))
	})
	eng.RunUntil(simtime.Time(simtime.Ms(10)))
	if bGot != 2 {
		t.Errorf("B received %d frames, want 2", bGot)
	}
	if cGot != 1 {
		t.Errorf("C received %d frames, want 1 (flood only)", cGot)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	eng := simtime.NewEngine()
	a, b, c := threeHostSwitch(eng)
	var bGot, cGot, aGot int
	eng.Spawn("rxA", func(p *simtime.Proc) {
		for {
			a.RX.Get(p)
			aGot++
		}
	})
	eng.Spawn("rxB", func(p *simtime.Proc) {
		for {
			b.RX.Get(p)
			bGot++
		}
	})
	eng.Spawn("rxC", func(p *simtime.Proc) {
		for {
			c.RX.Get(p)
			cGot++
		}
	})
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(frameTo(packet.BroadcastMAC, macA, 10))
	})
	eng.RunUntil(simtime.Time(simtime.Ms(5)))
	if aGot != 0 || bGot != 1 || cGot != 1 {
		t.Fatalf("a=%d b=%d c=%d, want 0/1/1", aGot, bGot, cGot)
	}
}

func TestSwitchDoesNotReflectToIngress(t *testing.T) {
	eng := simtime.NewEngine()
	a, b, _ := threeHostSwitch(eng)
	var aGot int
	eng.Spawn("rxA", func(p *simtime.Proc) {
		for {
			a.RX.Get(p)
			aGot++
		}
	})
	eng.Spawn("rxB", func(p *simtime.Proc) {
		for {
			b.RX.Get(p)
		}
	})
	eng.Spawn("tx", func(p *simtime.Proc) {
		// Teach the switch that macA is on port a, then send a→a.
		a.Send(frameTo(macB, macA, 10))
		p.Sleep(simtime.Ms(1))
		b.Send(frameTo(macA, macB, 10)) // unicast back, learned
		p.Sleep(simtime.Ms(1))
		a.Send(frameTo(macA, macA, 10)) // destination on the ingress port
	})
	eng.RunUntil(simtime.Time(simtime.Ms(5)))
	if aGot != 1 {
		t.Fatalf("a received %d frames, want 1 (no reflection)", aGot)
	}
}

func TestGbps(t *testing.T) {
	if Gbps(40) != 40e9 {
		t.Fatalf("Gbps(40) = %v", Gbps(40))
	}
}

func TestLinkTapCaptures(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	l := Connect(eng, a, b, Gbps(40), simtime.Us(0.1))
	tap := l.AttachTap()
	eng.Spawn("rx", func(p *simtime.Proc) {
		for {
			b.RX.Get(p)
		}
	})
	f := frameTo(macB, macA, 64)
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(f)
		b.Send(f) // reverse direction captured too
	})
	eng.Spawn("rxA", func(p *simtime.Proc) { a.RX.Get(p) })
	eng.RunUntil(simtime.Time(simtime.Ms(1)))
	frames := tap.Frames()
	if len(frames) != 2 {
		t.Fatalf("captured %d frames, want 2", len(frames))
	}
	if frames[0].TimeNanos <= 0 {
		t.Fatal("capture timestamp missing")
	}
	if pkt, err := packet.Decode(frames[0].Data); err != nil || pkt.IPv4() == nil {
		t.Fatalf("captured frame corrupt: %v", err)
	}
	// The tap copies: mutating the original frame must not change the capture.
	f[20] ^= 0xff
	if pkt, err := packet.Decode(frames[0].Data); err != nil || pkt.IPv4() == nil {
		t.Fatalf("capture aliased the live buffer: %v", err)
	}
}
