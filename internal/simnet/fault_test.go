package simnet

import (
	"testing"

	"masq/internal/simtime"
)

// rxCount drains b.RX forever, counting arrivals.
func rxCount(eng *simtime.Engine, port *Port, got *int) {
	eng.Spawn("rx", func(p *simtime.Proc) {
		for {
			port.RX.Get(p)
			*got++
		}
	})
}

func TestLinkDownDropsWithCause(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	l := Connect(eng, a, b, Gbps(40), 0)
	got := 0
	rxCount(eng, b, &got)
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(frameTo(macB, macA, 100))
		p.Sleep(simtime.Us(10))
		l.SetDown(true)
		a.Send(frameTo(macB, macA, 100))
		a.Send(frameTo(macB, macA, 100))
		p.Sleep(simtime.Us(10))
		l.SetDown(false)
		a.Send(frameTo(macB, macA, 100))
	})
	eng.Run()
	if got != 2 {
		t.Fatalf("delivered %d frames, want 2", got)
	}
	st := l.Stats()
	if st.Delivered != 2 || st.Dropped != 2 || st.DroppedDown != 2 {
		t.Fatalf("stats = %+v, want 2 delivered, 2 dropped (down)", st)
	}
}

func TestLossModelWindowIsDeterministic(t *testing.T) {
	run := func() (int, LinkStats) {
		eng := simtime.NewEngine()
		a := NewPort(eng, "a")
		b := NewPort(eng, "b")
		l := Connect(eng, a, b, Gbps(40), 0)
		l.SetLoss(NewLossModel(7, 0.5, 1, simtime.Time(0), simtime.Time(simtime.Us(50))))
		got := 0
		rxCount(eng, b, &got)
		eng.Spawn("tx", func(p *simtime.Proc) {
			for i := 0; i < 100; i++ {
				a.Send(frameTo(macB, macA, 100))
				p.Sleep(simtime.Us(1))
			}
		})
		eng.Run()
		return got, l.Stats()
	}
	got1, st1 := run()
	got2, st2 := run()
	if st1.DroppedLoss == 0 {
		t.Fatal("loss model dropped nothing at p=0.5")
	}
	// Frames past the window's end (t >= 50µs) must all deliver.
	if st1.DroppedLoss > 50 {
		t.Fatalf("dropped %d frames; window only covers the first ~50", st1.DroppedLoss)
	}
	if got1+int(st1.DroppedLoss) != 100 || st1.Dropped != st1.DroppedLoss {
		t.Fatalf("accounting: delivered=%d stats=%+v", got1, st1)
	}
	if got1 != got2 || st1 != st2 {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", got1, st1, got2, st2)
	}
}

func TestLossModelBurstDrainsConsecutively(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	l := Connect(eng, a, b, Gbps(40), 0)
	// Prob 1 with burst 3: every decision drops, and each decision covers
	// itself plus the next two frames — everything in-window drops.
	l.SetLoss(NewLossModel(1, 1.0, 3, simtime.Time(0), simtime.Time(simtime.Us(10))))
	got := 0
	rxCount(eng, b, &got)
	eng.Spawn("tx", func(p *simtime.Proc) {
		for i := 0; i < 6; i++ {
			a.Send(frameTo(macB, macA, 100))
		}
		p.Sleep(simtime.Us(20)) // window over
		a.Send(frameTo(macB, macA, 100))
	})
	eng.Run()
	if got != 1 || l.Stats().DroppedLoss != 6 {
		t.Fatalf("delivered=%d droppedLoss=%d, want 1 and 6", got, l.Stats().DroppedLoss)
	}
}

func TestLegacyDropHookCountsAsHook(t *testing.T) {
	eng := simtime.NewEngine()
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	l := Connect(eng, a, b, Gbps(40), 0)
	n := 0
	l.Drop = func(Frame) bool { n++; return n == 1 }
	got := 0
	rxCount(eng, b, &got)
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(frameTo(macB, macA, 10))
		a.Send(frameTo(macB, macA, 10))
	})
	eng.Run()
	if got != 1 || l.Stats().DroppedHook != 1 {
		t.Fatalf("delivered=%d droppedHook=%d, want 1 and 1", got, l.Stats().DroppedHook)
	}
}

func TestSwitchDownDropsEverything(t *testing.T) {
	eng := simtime.NewEngine()
	sw := NewSwitch(eng, "tor", simtime.Us(0.3))
	a := NewPort(eng, "a")
	b := NewPort(eng, "b")
	la := sw.AttachPort(a, Gbps(40), 0)
	lb := sw.AttachPort(b, Gbps(40), 0)
	if len(sw.Links()) != 2 || la == nil || lb == nil {
		t.Fatalf("AttachPort must record and return uplinks: %v", sw.Links())
	}
	got := 0
	rxCount(eng, b, &got)
	eng.Spawn("tx", func(p *simtime.Proc) {
		a.Send(frameTo(macB, macA, 100))
		p.Sleep(simtime.Us(10))
		sw.SetDown(true)
		a.Send(frameTo(macB, macA, 100))
		p.Sleep(simtime.Us(10))
		sw.SetDown(false)
		a.Send(frameTo(macB, macA, 100))
	})
	eng.Run()
	if got != 2 {
		t.Fatalf("delivered %d frames, want 2", got)
	}
	if sw.Dropped != 1 {
		t.Fatalf("switch dropped %d, want 1", sw.Dropped)
	}
}
