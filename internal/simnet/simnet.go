// Package simnet models the physical (underlay) network of the testbed:
// NIC ports, full-duplex links with bandwidth serialization and propagation
// delay, and a store-and-forward learning L2 switch. Links are lossless by
// default, matching the paper's PFC-enabled RoCEv2 fabric; tests can inject
// drops to exercise retransmission.
package simnet

import (
	"masq/internal/packet"
	"masq/internal/simtime"
)

// Frame is a serialized Ethernet frame on the wire.
type Frame []byte

// DstMAC peeks at the destination MAC without a full decode.
func (f Frame) DstMAC() packet.MAC {
	var m packet.MAC
	copy(m[:], f[:6])
	return m
}

// SrcMAC peeks at the source MAC without a full decode.
func (f Frame) SrcMAC() packet.MAC {
	var m packet.MAC
	copy(m[:], f[6:12])
	return m
}

// Gbps expresses a link speed in bits per second.
func Gbps(g float64) float64 { return g * 1e9 }

// Port is a network attachment point. A device reads arriving frames from
// RX and transmits with Send once the port is attached to a link or switch.
type Port struct {
	Name string
	RX   *simtime.Queue[Frame]

	tx func(Frame)

	// Counters, maintained by the link layer.
	TxBytes, RxBytes   uint64
	TxFrames, RxFrames uint64
}

// NewPort returns an unattached port.
func NewPort(eng *simtime.Engine, name string) *Port {
	return &Port{Name: name, RX: simtime.NewQueue[Frame](eng)}
}

// Attached reports whether the port has been wired to a link.
func (p *Port) Attached() bool { return p.tx != nil }

// Send transmits a frame. It never blocks: the frame queues at the link and
// is serialized at link rate. Sending on an unattached port panics — it is
// a wiring bug, not a runtime condition.
func (p *Port) Send(f Frame) {
	if p.tx == nil {
		panic("simnet: send on unattached port " + p.Name)
	}
	p.TxBytes += uint64(len(f))
	p.TxFrames++
	p.tx(f)
}

func (p *Port) deliver(f Frame) {
	p.RxBytes += uint64(len(f))
	p.RxFrames++
	p.RX.Put(f)
}

// Link is a full-duplex point-to-point link. Each direction serializes
// frames FIFO at the link bandwidth and then delivers them after the
// propagation delay (propagation is pipelined behind serialization).
type Link struct {
	A, B      *Port
	Bandwidth float64 // bits per second
	PropDelay simtime.Duration

	// Drop, when non-nil, is consulted per frame (after serialization);
	// returning true discards the frame. Used to inject loss in tests.
	Drop func(Frame) bool

	tap *Tap
}

// Tap is a passive capture point on a link: every frame (both directions)
// is recorded with its virtual transmission-complete time, ready for
// packet.WritePcap.
type Tap struct {
	frames []TappedFrame
}

// TappedFrame is one captured frame.
type TappedFrame struct {
	TimeNanos int64
	Data      []byte
}

// Frames returns the capture so far.
func (t *Tap) Frames() []TappedFrame { return t.frames }

// AttachTap starts capturing on the link and returns the tap. Frames are
// copied, so later buffer reuse cannot corrupt the capture.
func (l *Link) AttachTap() *Tap {
	if l.tap == nil {
		l.tap = &Tap{}
	}
	return l.tap
}

// Connect wires ports a and b with a link of the given bandwidth and
// propagation delay and starts its pump processes.
func Connect(eng *simtime.Engine, a, b *Port, bandwidth float64, prop simtime.Duration) *Link {
	l := &Link{A: a, B: b, Bandwidth: bandwidth, PropDelay: prop}
	l.pump(eng, a, b)
	l.pump(eng, b, a)
	return l
}

func (l *Link) pump(eng *simtime.Engine, from, to *Port) {
	q := simtime.NewQueue[Frame](eng)
	from.tx = q.Put
	eng.Spawn("link:"+from.Name+"->"+to.Name, func(p *simtime.Proc) {
		for {
			f := q.Get(p)
			p.Sleep(l.txTime(len(f)))
			if l.tap != nil {
				l.tap.frames = append(l.tap.frames, TappedFrame{
					TimeNanos: int64(p.Now()),
					Data:      append([]byte(nil), f...),
				})
			}
			if l.Drop != nil && l.Drop(f) {
				continue
			}
			frame := f
			eng.After(l.PropDelay, func() { to.deliver(frame) })
		}
	})
}

func (l *Link) txTime(bytes int) simtime.Duration {
	return simtime.Duration(float64(bytes*8) / l.Bandwidth * 1e9)
}

// Switch is a store-and-forward learning L2 switch. Each switch port is
// connected to a peer port with a Link, so egress serialization and
// propagation are modelled by the links themselves; the switch adds a fixed
// per-frame forwarding latency.
type Switch struct {
	Name         string
	ForwardDelay simtime.Duration

	eng   *simtime.Engine
	ports []*Port
	fdb   map[packet.MAC]int // MAC → port index
}

// NewSwitch returns a switch with no ports.
func NewSwitch(eng *simtime.Engine, name string, forwardDelay simtime.Duration) *Switch {
	return &Switch{Name: name, ForwardDelay: forwardDelay, eng: eng, fdb: make(map[packet.MAC]int)}
}

// AttachPort creates a new switch port, connects it to peer with a link of
// the given speed, and starts forwarding for it.
func (s *Switch) AttachPort(peer *Port, bandwidth float64, prop simtime.Duration) {
	idx := len(s.ports)
	sp := NewPort(s.eng, s.Name+".p"+itoa(idx))
	s.ports = append(s.ports, sp)
	Connect(s.eng, sp, peer, bandwidth, prop)
	s.eng.Spawn("switch:"+sp.Name, func(p *simtime.Proc) {
		for {
			f := sp.RX.Get(p)
			p.Sleep(s.ForwardDelay)
			s.forward(idx, f)
		}
	})
}

func (s *Switch) forward(in int, f Frame) {
	if len(f) < 14 {
		return // runt frame
	}
	s.fdb[f.SrcMAC()] = in
	dst := f.DstMAC()
	if dst != packet.BroadcastMAC {
		if out, ok := s.fdb[dst]; ok {
			if out != in {
				s.ports[out].Send(f)
			}
			return
		}
	}
	for i, p := range s.ports { // flood
		if i != in {
			p.Send(f)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
