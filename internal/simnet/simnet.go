// Package simnet models the physical (underlay) network of the testbed:
// NIC ports, full-duplex links with bandwidth serialization and propagation
// delay, and a store-and-forward learning L2 switch. Links are lossless by
// default, matching the paper's PFC-enabled RoCEv2 fabric; structured
// faults — administrative link down, windowed probabilistic loss (uniform
// or bursty), switch failure — can be installed per link/switch, and every
// discarded frame is counted and attributed to its cause. The chaos
// package schedules these faults deterministically in virtual time.
package simnet

import (
	"math/rand"

	"masq/internal/packet"
	"masq/internal/simtime"
)

// Frame is a serialized Ethernet frame on the wire.
type Frame []byte

// DstMAC peeks at the destination MAC without a full decode.
func (f Frame) DstMAC() packet.MAC {
	var m packet.MAC
	copy(m[:], f[:6])
	return m
}

// SrcMAC peeks at the source MAC without a full decode.
func (f Frame) SrcMAC() packet.MAC {
	var m packet.MAC
	copy(m[:], f[6:12])
	return m
}

// Gbps expresses a link speed in bits per second.
func Gbps(g float64) float64 { return g * 1e9 }

// Port is a network attachment point. A device reads arriving frames from
// RX and transmits with Send once the port is attached to a link or switch.
type Port struct {
	Name string
	RX   *simtime.Queue[Frame]

	eng *simtime.Engine
	tx  func(Frame)

	// Counters, maintained by the link layer.
	TxBytes, RxBytes   uint64
	TxFrames, RxFrames uint64
}

// NewPort returns an unattached port. The engine is the port's home shard:
// frames are delivered into RX on it, and ConnectVia uses it to decide
// whether a link crosses shards.
func NewPort(eng *simtime.Engine, name string) *Port {
	return &Port{Name: name, RX: simtime.NewQueue[Frame](eng), eng: eng}
}

// Engine returns the engine the port was created on.
func (p *Port) Engine() *simtime.Engine { return p.eng }

// Attached reports whether the port has been wired to a link.
func (p *Port) Attached() bool { return p.tx != nil }

// Send transmits a frame. It never blocks: the frame queues at the link and
// is serialized at link rate. Sending on an unattached port panics — it is
// a wiring bug, not a runtime condition.
func (p *Port) Send(f Frame) {
	if p.tx == nil {
		panic("simnet: send on unattached port " + p.Name)
	}
	p.TxBytes += uint64(len(f))
	p.TxFrames++
	p.tx(f)
}

func (p *Port) deliver(f Frame) {
	p.RxBytes += uint64(len(f))
	p.RxFrames++
	p.RX.Put(f)
}

// LinkStats counts, across both directions, what happened to frames that
// finished serializing on a link. Every discarded frame is attributed to
// exactly one cause, so Dropped == DroppedDown+DroppedLoss+DroppedHook and
// no injected fault is ever invisible.
type LinkStats struct {
	Delivered   uint64 // frames that entered propagation
	Dropped     uint64 // frames discarded, any cause
	DroppedDown uint64 // discarded because the link was administratively down
	DroppedLoss uint64 // discarded by the probabilistic LossModel
	DroppedHook uint64 // discarded by the legacy Drop hook
}

// LossModel drops frames probabilistically inside a virtual-time window.
// Burst > 1 models correlated loss: each drop decision discards a run of
// consecutive frames. The model owns a private seeded PRNG so two runs with
// the same seed make identical drop decisions.
type LossModel struct {
	Start simtime.Time // window start (inclusive)
	End   simtime.Time // window end (exclusive); 0 means no end
	Prob  float64      // per-decision drop probability
	Burst int          // frames lost per drop decision (min 1)

	rng       *rand.Rand
	burstLeft int
}

// NewLossModel returns a loss model active on [start, end) with its own
// PRNG seeded from seed.
func NewLossModel(seed int64, prob float64, burst int, start, end simtime.Time) *LossModel {
	if burst < 1 {
		burst = 1
	}
	return &LossModel{Start: start, End: end, Prob: prob, Burst: burst,
		rng: rand.New(rand.NewSource(seed))}
}

// drop decides the fate of one frame finishing serialization at now.
func (m *LossModel) drop(now simtime.Time) bool {
	if now < m.Start || (m.End != 0 && now >= m.End) {
		return false
	}
	if m.burstLeft > 0 {
		m.burstLeft--
		return true
	}
	if m.rng.Float64() < m.Prob {
		m.burstLeft = m.Burst - 1
		return true
	}
	return false
}

// Link is a full-duplex point-to-point link. Each direction serializes
// frames FIFO at the link bandwidth and then delivers them after the
// propagation delay (propagation is pipelined behind serialization).
// Links are lossless unless a fault is installed: an administrative down
// state (SetDown), a probabilistic LossModel (SetLoss), or the legacy Drop
// hook. All discards are counted in Stats.
type Link struct {
	A, B      *Port
	Bandwidth float64 // bits per second
	PropDelay simtime.Duration

	// Drop, when non-nil, is consulted per frame (after serialization);
	// returning true discards the frame. Retained as a shim for tests that
	// predate the structured fault layer — new code should use SetDown or
	// SetLoss, whose drops are attributed in Stats.
	Drop func(Frame) bool

	dirs  [2]*linkDir
	cross bool // endpoints live on different shards (ConnectVia)
	down  bool
	loss  *LossModel
	tap   *Tap
}

// Stats sums both directions' frame accounting. Counters live per
// direction so that the two halves of a cross-shard link never write the
// same memory; read Stats only while the simulation is quiesced.
func (l *Link) Stats() LinkStats {
	var st LinkStats
	for _, d := range l.dirs {
		if d == nil {
			continue
		}
		st.Delivered += d.stats.Delivered
		st.Dropped += d.stats.Dropped
		st.DroppedDown += d.stats.DroppedDown
		st.DroppedLoss += d.stats.DroppedLoss
		st.DroppedHook += d.stats.DroppedHook
	}
	return st
}

// SetDown raises or clears the link's administrative down state. While
// down, every frame that finishes serializing (either direction) is
// discarded and counted in Stats.DroppedDown; frames already propagating
// are delivered (they left the wire before the cut). Fault injection is
// not supported on cross-shard links: the flag is read by both shards.
func (l *Link) SetDown(down bool) { l.down = down }

// IsDown reports the administrative state.
func (l *Link) IsDown() bool { return l.down }

// SetLoss installs (or, with nil, removes) a probabilistic loss model.
func (l *Link) SetLoss(m *LossModel) { l.loss = m }

// Loss returns the currently installed loss model, if any.
func (l *Link) Loss() *LossModel { return l.loss }

// Name labels the link by its endpoint ports, for traces and diagnostics.
func (l *Link) Name() string { return l.A.Name + "<->" + l.B.Name }

// Tap is a passive capture point on a link: every frame (both directions)
// is recorded with its virtual transmission-complete time, ready for
// packet.WritePcap.
type Tap struct {
	frames []TappedFrame
}

// TappedFrame is one captured frame.
type TappedFrame struct {
	TimeNanos int64
	Data      []byte
}

// Frames returns the capture so far.
func (t *Tap) Frames() []TappedFrame { return t.frames }

// AttachTap starts capturing on the link and returns the tap. Frames are
// copied, so later buffer reuse cannot corrupt the capture. Taps record
// both directions into one buffer, so they are not available on links
// whose endpoints live on different shards.
func (l *Link) AttachTap() *Tap {
	if l.cross {
		panic("simnet: tap on cross-shard link " + l.Name())
	}
	if l.tap == nil {
		l.tap = &Tap{}
	}
	return l.tap
}

// MinLatency returns the link's guaranteed minimum delivery latency: its
// propagation delay. The sharded topology's conservative lookahead is the
// minimum MinLatency over all cross-shard links.
func (l *Link) MinLatency() simtime.Duration { return l.PropDelay }

// CrossShard reports whether the link was wired across shards. Fault
// injection (SetDown, SetLoss, Drop) and taps touch state shared by both
// directions and are not supported on cross-shard links.
func (l *Link) CrossShard() bool { return l.cross }

// Connect wires ports a and b with a link of the given bandwidth and
// propagation delay and starts its pump processes.
func Connect(eng *simtime.Engine, a, b *Port, bandwidth float64, prop simtime.Duration) *Link {
	l := &Link{A: a, B: b, Bandwidth: bandwidth, PropDelay: prop}
	l.dirs[0] = l.pump(eng, a, b)
	l.dirs[1] = l.pump(eng, b, a)
	return l
}

// ConnectVia wires ports a and b like Connect, but routes each direction's
// propagation through a ShardedEngine exchange so the endpoints may live
// on different shards (each port's home engine decides its shard). The
// propagation delay doubles as the link's declared minimum latency, which
// bounds the topology's conservative lookahead — so it must be positive.
// An exchange is created even when both ports share a shard: the oracle
// property (a 1-shard run byte-identical to an N-shard run) depends on
// every ConnectVia link taking the staged, window-ordered delivery path
// regardless of shard placement.
func ConnectVia(se *simtime.ShardedEngine, a, b *Port, bandwidth float64, prop simtime.Duration) *Link {
	l := &Link{A: a, B: b, Bandwidth: bandwidth, PropDelay: prop}
	sa, sb := a.eng.ShardID(), b.eng.ShardID()
	l.cross = sa != sb
	l.dirs[0] = l.pump(a.eng, a, b)
	l.dirs[0].xchg = se.NewExchange(sa, sb, prop)
	l.dirs[1] = l.pump(b.eng, b, a)
	l.dirs[1].xchg = se.NewExchange(sb, sa, prop)
	return l
}

// pump starts one direction of the link as a callback-driven pipeline: a
// frame serializes for txTime at link rate, then propagates for PropDelay.
// The serialization stage runs inline in the engine loop (no goroutine per
// direction), and its state machine — one frame in serialization at a time,
// the rest queued — matches the FIFO the process version modeled.
func (l *Link) pump(eng *simtime.Engine, from, to *Port) *linkDir {
	d := &linkDir{l: l, eng: eng, to: to, q: simtime.NewQueue[Frame](eng)}
	from.tx = d.q.Put
	d.serve = d.start
	d.done = eng.NewTimer(d.txDone)
	d.q.OnNext(d.serve)
	return d
}

// linkDir is one direction of a link's serialization pipeline. Everything
// it owns — queue, timers, pools, counters — lives on the sender's shard;
// only the final delivery hop crosses to the receiver, via xchg when the
// link was wired with ConnectVia.
type linkDir struct {
	l       *Link
	eng     *simtime.Engine
	to      *Port
	q       *simtime.Queue[Frame]
	xchg    *simtime.Exchange // cross-shard delivery lane (nil for Connect links)
	stats   LinkStats
	serve   func(Frame)    // cached OnNext callback (avoids method-value allocs)
	done    *simtime.Timer // fires when the in-flight frame finishes serializing
	pending Frame
	// propFree pools the in-flight propagation records (several frames can
	// be on the wire at once; each record owns an intrusive timer).
	propFree []*propJob
}

// propJob carries one frame across the link's propagation delay.
type propJob struct {
	d *linkDir
	f Frame
	t *simtime.Timer
}

func (d *linkDir) propagate(f Frame) {
	if d.xchg != nil {
		// ConnectVia link: deliver through the exchange. The arrival time is
		// now + PropDelay >= now + lookahead (the lookahead is the minimum
		// PropDelay over all exchanges), so the conservative bound holds by
		// construction. The receiving shard applies deliveries in (time,
		// exchange, seq) order at its next window boundary.
		to := d.to
		d.xchg.Send(d.eng.Now().Add(d.l.PropDelay), func() { to.deliver(f) })
		return
	}
	var j *propJob
	if n := len(d.propFree); n > 0 {
		j = d.propFree[n-1]
		d.propFree[n-1] = nil
		d.propFree = d.propFree[:n-1]
	} else {
		j = &propJob{d: d}
		j.t = d.eng.NewTimer(j.fire)
	}
	j.f = f
	j.t.ScheduleAfter(d.l.PropDelay)
}

func (j *propJob) fire() {
	f := j.f
	j.f = nil
	j.d.propFree = append(j.d.propFree, j)
	j.d.to.deliver(f)
}

// start begins serializing f; txDone takes over when the wire time elapses.
func (d *linkDir) start(f Frame) {
	d.pending = f
	d.done.ScheduleAfter(d.l.txTime(len(f)))
}

func (d *linkDir) txDone() {
	f := d.pending
	d.pending = nil
	l := d.l
	if l.tap != nil {
		l.tap.frames = append(l.tap.frames, TappedFrame{
			TimeNanos: int64(d.eng.Now()),
			Data:      append([]byte(nil), f...),
		})
	}
	switch {
	case l.down:
		d.stats.Dropped++
		d.stats.DroppedDown++
	case l.loss != nil && l.loss.drop(d.eng.Now()):
		d.stats.Dropped++
		d.stats.DroppedLoss++
	case l.Drop != nil && l.Drop(f):
		d.stats.Dropped++
		d.stats.DroppedHook++
	default:
		d.stats.Delivered++
		d.propagate(f)
	}
	if next, ok := d.q.TryGet(); ok {
		d.start(next)
		return
	}
	d.q.OnNext(d.serve)
}

func (l *Link) txTime(bytes int) simtime.Duration {
	return simtime.Duration(float64(bytes*8) / l.Bandwidth * 1e9)
}

// Switch is a store-and-forward learning L2 switch. Each switch port is
// connected to a peer port with a Link, so egress serialization and
// propagation are modelled by the links themselves; the switch adds a fixed
// per-frame forwarding latency.
type Switch struct {
	Name         string
	ForwardDelay simtime.Duration

	// Dropped counts frames discarded because the switch was down.
	Dropped uint64

	eng   *simtime.Engine
	ports []*Port
	links []*Link
	fdb   map[packet.MAC]int // MAC → port index
	down  bool
}

// SetDown fails or restores the whole switch. While down, every frame that
// reaches the forwarding stage is discarded and counted in Dropped; the
// attached links themselves stay up (hosts see total loss, not link down).
func (s *Switch) SetDown(down bool) { s.down = down }

// IsDown reports whether the switch is failed.
func (s *Switch) IsDown() bool { return s.down }

// Links returns the links created by AttachPort, in attach order.
func (s *Switch) Links() []*Link { return s.links }

// NewSwitch returns a switch with no ports.
func NewSwitch(eng *simtime.Engine, name string, forwardDelay simtime.Duration) *Switch {
	return &Switch{Name: name, ForwardDelay: forwardDelay, eng: eng, fdb: make(map[packet.MAC]int)}
}

// AttachPort creates a new switch port, connects it to peer with a link of
// the given speed, and starts forwarding for it. The created link is
// returned (and retained in Links) so faults can target it.
func (s *Switch) AttachPort(peer *Port, bandwidth float64, prop simtime.Duration) *Link {
	sp := s.newPort()
	l := Connect(s.eng, sp, peer, bandwidth, prop)
	s.links = append(s.links, l)
	return l
}

// AttachPortVia is AttachPort for sharded topologies: the uplink is wired
// with ConnectVia, so the peer may live on a different shard than the
// switch. The switch itself (its forwarding state and FDB) stays on the
// shard of the engine it was created with.
func (s *Switch) AttachPortVia(se *simtime.ShardedEngine, peer *Port, bandwidth float64, prop simtime.Duration) *Link {
	sp := s.newPort()
	l := ConnectVia(se, sp, peer, bandwidth, prop)
	s.links = append(s.links, l)
	return l
}

// newPort adds a switch port and starts its forwarding pipeline: hold
// each frame for the fixed lookup delay, then forward; arrivals during
// the delay queue on the port.
func (s *Switch) newPort() *Port {
	idx := len(s.ports)
	sp := NewPort(s.eng, s.Name+".p"+itoa(idx))
	s.ports = append(s.ports, sp)
	fw := &switchPort{s: s, in: idx, rx: sp.RX}
	fw.serve = fw.start
	fw.done = s.eng.NewTimer(fw.fwdDone)
	sp.RX.OnNext(fw.serve)
	return sp
}

// switchPort is one switch port's store-and-forward state machine.
type switchPort struct {
	s       *Switch
	in      int
	rx      *simtime.Queue[Frame]
	serve   func(Frame)
	done    *simtime.Timer
	pending Frame
}

func (f *switchPort) start(fr Frame) {
	f.pending = fr
	f.done.ScheduleAfter(f.s.ForwardDelay)
}

func (f *switchPort) fwdDone() {
	fr := f.pending
	f.pending = nil
	f.s.forward(f.in, fr)
	if next, ok := f.rx.TryGet(); ok {
		f.start(next)
		return
	}
	f.rx.OnNext(f.serve)
}

func (s *Switch) forward(in int, f Frame) {
	if s.down {
		s.Dropped++
		return
	}
	if len(f) < 14 {
		return // runt frame
	}
	s.fdb[f.SrcMAC()] = in
	dst := f.DstMAC()
	if dst != packet.BroadcastMAC {
		if out, ok := s.fdb[dst]; ok {
			if out != in {
				s.ports[out].Send(f)
			}
			return
		}
	}
	for i, p := range s.ports { // flood
		if i != in {
			p.Send(f)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
