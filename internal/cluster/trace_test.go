package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeEv mirrors the subset of the trace-event format the export test
// inspects.
type chromeEv struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Layer string `json:"layer"`
		Verb  string `json:"verb"`
		Actor string `json:"actor"`
	} `json:"args"`
}

// TestChromeTraceCoversConnectionSetup is the export acceptance test: a
// traced connection setup must produce valid Chrome trace JSON in which a
// forwarded verb's span temporally nests the virtio transport, the MasQ
// backend handler, and the RNIC execution underneath it.
func TestChromeTraceCoversConnectionSetup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	cp, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	if cp.TB.Trace == nil || cp.TB.Trace.Events() == 0 {
		t.Fatal("traced testbed recorded no events")
	}
	var buf bytes.Buffer
	if err := cp.TB.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEv
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var root *chromeEv
	for i := range evs {
		e := &evs[i]
		if e.Ph == "X" && e.Cat == "verbs" && e.Name == "create_qp" {
			root = e
			break
		}
	}
	if root == nil {
		t.Fatal("no verbs-layer create_qp span in export")
	}
	contained := func(cat string) *chromeEv {
		for i := range evs {
			e := &evs[i]
			if e.Ph != "X" || e.Cat != cat || e.Args.Verb != "create_qp" {
				continue
			}
			if e.Ts >= root.Ts && e.Ts+e.Dur <= root.Ts+root.Dur {
				return e
			}
		}
		return nil
	}
	for _, cat := range []string{"virtio", "masq-frontend", "masq-backend", "rnic"} {
		if contained(cat) == nil {
			t.Errorf("create_qp span nests no %s child", cat)
		}
	}
	if root.Args.Actor == "" {
		t.Error("root span has no actor tag")
	}

	// Thread-name metadata must exist so Perfetto labels the tracks.
	meta := 0
	for _, e := range evs {
		if e.Ph == "M" {
			meta++
		}
	}
	if meta == 0 {
		t.Error("no thread_name metadata events")
	}
}
