package cluster

import (
	"errors"
	"fmt"
	"testing"

	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simnet"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// TestCloudSoak is the everything-at-once scenario: a three-host cluster
// behind a ToR switch running four tenants with a mix of virtualization
// systems, concurrent traffic, a QoS change, a security revocation and a
// live migration — all interleaving in one simulation. It asserts the
// big invariants: payload integrity per tenant, isolation across tenants,
// enforcement only where rules changed, and liveness for everyone else.
func TestCloudSoak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	tb := New(cfg)

	type tenantEnv struct {
		vni   uint32
		rule  int
		pairs []*pairConn
	}
	mkTenant := func(vni uint32, name string) *tenantEnv {
		tb.AddTenant(vni, name)
		return &tenantEnv{vni: vni, rule: tb.AllowAll(vni)}
	}
	acme := mkTenant(100, "acme")       // MasQ, will be rate limited
	globex := mkTenant(200, "globex")   // MasQ, will lose its rule
	initech := mkTenant(300, "initech") // SR-IOV tenant
	hooli := mkTenant(400, "hooli")     // FreeFlow tenant

	port := uint16(7000)
	pairUp := func(te *tenantEnv, mode Mode, hostC, hostS int, ipC, ipS packet.IP) *pairConn {
		t.Helper()
		c, err := tb.NewNode(mode, hostC, te.vni, ipC)
		if err != nil {
			t.Fatal(err)
		}
		s, err := tb.NewNode(mode, hostS, te.vni, ipS)
		if err != nil {
			t.Fatal(err)
		}
		pc := &pairConn{cNode: c, sNode: s}
		done := simtime.NewEvent[error](tb.Eng)
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var err error
			if pc.c, err = c.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			if pc.s, err = s.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			se, ce := Pair(tb.Eng, pc.s, pc.c, port)
			if err := se.Wait(p); err != nil {
				done.Trigger(err)
				return
			}
			done.Trigger(ce.Wait(p))
		})
		tb.Eng.Run()
		port++
		if err := done.Value(); err != nil {
			t.Fatalf("tenant %d %v pair: %v", te.vni, mode, err)
		}
		te.pairs = append(te.pairs, pc)
		return pc
	}

	// Topology: acme and globex MasQ pairs across hosts 0→1; initech
	// SR-IOV across 0→2; hooli FreeFlow across 1→2.
	a1 := pairUp(acme, ModeMasQ, 0, 1, packet.NewIP(10, 1, 0, 1), packet.NewIP(10, 1, 0, 2))
	g1 := pairUp(globex, ModeMasQ, 0, 1, packet.NewIP(10, 1, 0, 1), packet.NewIP(10, 1, 0, 2)) // same IPs as acme!
	i1 := pairUp(initech, ModeSRIOV, 0, 2, packet.NewIP(10, 3, 0, 1), packet.NewIP(10, 3, 0, 2))
	h1 := pairUp(hooli, ModeFreeFlow, 1, 2, packet.NewIP(10, 4, 0, 1), packet.NewIP(10, 4, 0, 2))

	// Streams: every pair pushes numbered messages; receivers verify
	// sequence and tenant tag. (Deterministic spawn order: the engine is
	// deterministic, so the whole soak replays identically.)
	names := []string{"acme", "globex", "initech", "hooli"}
	pairs := []*pairConn{a1, g1, i1, h1}
	results := map[string]*streamResult{}
	for i, name := range names {
		results[name] = startStream(t, tb, name, pairs[i], 400)
	}

	// Control-plane churn while traffic flows.
	tb.Eng.Spawn("ops", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(100))
		// QoS: clamp acme to 5 Gbps (exercised, not throughput-asserted —
		// the streams are message-rate bound).
		if err := tb.Backend(0).SetTenantRateLimit(acme.vni, 5e9); err != nil {
			t.Error(err)
		}
		p.Sleep(simtime.Us(100))
		// Security: revoke globex entirely, mid-stream.
		tb.Fab.Tenant(globex.vni).Policy.RemoveRule(globex.rule)
	})
	tb.Eng.Run()

	// globex must have died mid-stream; everyone else completes.
	for name, r := range results {
		switch name {
		case "globex":
			if r.completed == 400 {
				t.Errorf("globex finished all messages despite revocation")
			}
			if !r.sawError {
				t.Error("globex never observed an error completion")
			}
		default:
			if r.completed != 400 {
				t.Errorf("%s completed %d/400 (err=%v)", name, r.completed, r.err)
			}
		}
		if r.corrupt {
			t.Errorf("%s observed corrupted or foreign payloads", name)
		}
	}

	// Finally, migrate acme's server from host1 to host2 and reconnect.
	teardown := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("teardown", func(p *simtime.Proc) {
		if err := a1.s.QP.Destroy(p); err != nil {
			teardown.Trigger(err)
			return
		}
		if err := a1.s.MR.Dereg(p); err != nil {
			teardown.Trigger(err)
			return
		}
		teardown.Trigger(a1.c.QP.Destroy(p))
	})
	tb.Eng.Run()
	if err := teardown.Value(); err != nil {
		t.Fatal(err)
	}
	if err := tb.MigrateNode(a1.sNode, 2); err != nil {
		t.Fatal(err)
	}
	reconnect := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("reconnect", func(p *simtime.Proc) {
		sep, err := a1.sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			reconnect.Trigger(err)
			return
		}
		cep, err := a1.cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			reconnect.Trigger(err)
			return
		}
		if err := cep.ConnectRC(p, sep.Info()); err != nil {
			reconnect.Trigger(err)
			return
		}
		if err := sep.ConnectRC(p, cep.Info()); err != nil {
			reconnect.Trigger(err)
			return
		}
		sep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: 64})
		a1.cNode.Write(cep.Buf, []byte("post-soak"))
		cep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 9})
		if wc := sep.RCQ.Wait(p); wc.Status != verbs.WCSuccess {
			reconnect.Trigger(fmt.Errorf("post-migration transfer: %v", wc.Status))
			return
		}
		reconnect.Trigger(nil)
	})
	tb.Eng.Run()
	if err := reconnect.Value(); err != nil {
		t.Fatal(err)
	}
}

type pairConn struct {
	cNode, sNode *Node
	c, s         *Endpoint
}

type streamResult struct {
	completed int
	sawError  bool
	corrupt   bool
	err       error
}

// startStream pushes msgs numbered SENDs from client to server, verifying
// tag and order at the receiver.
func startStream(t *testing.T, tb *Testbed, tag string, pc *pairConn, msgs int) *streamResult {
	r := &streamResult{}
	tb.Eng.Spawn(tag+"-rx", func(p *simtime.Proc) {
		for i := 0; i < msgs; i++ {
			if err := pc.s.QP.PostRecv(p, verbs.RecvWR{
				WRID: uint64(i), Addr: pc.s.Buf, LKey: pc.s.MR.LKey(), Len: 256,
			}); err != nil {
				return
			}
			wc, ok := pc.s.RCQ.WaitTimeout(p, simtime.Ms(200))
			if !ok || wc.Status != verbs.WCSuccess {
				return
			}
			buf := make([]byte, wc.ByteLen)
			pc.sNode.Read(pc.s.Buf, buf)
			want := fmt.Sprintf("%s-%04d", tag, i)
			if string(buf) != want {
				r.corrupt = true
				return
			}
		}
	})
	tb.Eng.Spawn(tag+"-tx", func(p *simtime.Proc) {
		for i := 0; i < msgs; i++ {
			msg := []byte(fmt.Sprintf("%s-%04d", tag, i))
			pc.cNode.Write(pc.c.Buf, msg)
			if err := pc.c.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRSend, LocalAddr: pc.c.Buf, LKey: pc.c.MR.LKey(), Len: len(msg),
			}); err != nil {
				r.err = err
				return
			}
			wc, ok := pc.c.SCQ.WaitTimeout(p, simtime.Ms(200))
			if !ok {
				r.err = fmt.Errorf("%s send %d timed out", tag, i)
				return
			}
			if wc.Status != verbs.WCSuccess {
				r.sawError = true
				return
			}
			r.completed++
		}
	})
	return r
}

// TestLinkFailureErrorsOutBothSides: the underlay link dies mid-transfer;
// the sender must surface RETRY_EXC_ERR after exhausting go-back-N
// retries rather than hanging.
func TestLinkFailureErrorsOutBothSides(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RNIC.RetransTimeout = simtime.Us(300)
	cfg.RNIC.MaxRetry = 3
	tb := New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	c, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(10, 0, 0, 1))
	s, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(10, 0, 0, 2))
	var cep, sep *Endpoint
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("wire", func(p *simtime.Proc) {
		var err error
		if cep, err = c.Setup(p, DefaultEndpointOpts()); err != nil {
			done.Trigger(err)
			return
		}
		if sep, err = s.Setup(p, DefaultEndpointOpts()); err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}

	dead := false
	tb.Links[0].Drop = func(simnet.Frame) bool { return dead }
	var status verbs.WCStatus
	fin := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("tx", func(p *simtime.Proc) {
		peer := sep.Info()
		for i := 0; ; i++ {
			if err := cep.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRWrite, LocalAddr: cep.Buf, LKey: cep.MR.LKey(),
				Len: 16384, RemoteAddr: peer.Addr, RKey: peer.RKey,
			}); err != nil {
				fin.Trigger(nil) // post refused after the QP errored
				return
			}
			wc, ok := cep.SCQ.WaitTimeout(p, simtime.Ms(100))
			if !ok {
				fin.Trigger(errors.New("sender hung after link death"))
				return
			}
			if wc.Status != verbs.WCSuccess {
				status = wc.Status
				fin.Trigger(nil)
				return
			}
		}
	})
	tb.Eng.Spawn("cut", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(500))
		dead = true // backhoe
	})
	tb.Eng.Run()
	if err := fin.Value(); err != nil {
		t.Fatal(err)
	}
	if status != rnic.WCRetryExceeded {
		t.Fatalf("sender CQE status = %v, want RETRY_EXC_ERR", status)
	}
	if cep.QP.State() != verbs.StateError {
		t.Fatalf("sender QP state = %v, want ERROR", cep.QP.State())
	}
}

// TestIncastFairSharing: two senders on different hosts converge on one
// receiver through the ToR switch. The lossless fabric must deliver
// everything (zero transport retransmits) and split the egress link
// roughly evenly.
func TestIncastFairSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	tb := New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	rx, _ := tb.NewNode(ModeMasQ, 2, vni, packet.NewIP(10, 0, 0, 9))
	tx1, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(10, 0, 0, 1))
	tx2, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(10, 0, 0, 2))

	wire := func(c *Node, port uint16) (*Endpoint, *Endpoint) {
		var cep, sep *Endpoint
		done := simtime.NewEvent[error](tb.Eng)
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var err error
			if cep, err = c.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			if sep, err = rx.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			se, ce := Pair(tb.Eng, sep, cep, port)
			if err := se.Wait(p); err != nil {
				done.Trigger(err)
				return
			}
			done.Trigger(ce.Wait(p))
		})
		tb.Eng.Run()
		if err := done.Value(); err != nil {
			t.Fatal(err)
		}
		return cep, sep
	}
	c1, s1 := wire(tx1, 7000)
	c2, s2 := wire(tx2, 7001)

	stream := func(cep, sep *Endpoint) *simtime.Event[int64] {
		done := simtime.NewEvent[int64](tb.Eng)
		peer := sep.Info()
		tb.Eng.Spawn("flow", func(p *simtime.Proc) {
			const size = 64 * 1024
			var bytes int64
			deadline := p.Now().Add(simtime.Ms(8))
			posted, completed := 0, 0
			for posted < 8 {
				cep.QP.PostSend(p, verbs.SendWR{
					WRID: uint64(posted), Op: verbs.WRWrite, LocalAddr: cep.Buf,
					LKey: cep.MR.LKey(), Len: size, RemoteAddr: peer.Addr, RKey: peer.RKey,
				})
				posted++
			}
			for {
				wc, ok := cep.SCQ.WaitTimeout(p, simtime.Ms(50))
				if !ok || wc.Status != verbs.WCSuccess {
					done.Trigger(bytes)
					return
				}
				completed++
				bytes += size
				if p.Now() >= deadline {
					done.Trigger(bytes)
					return
				}
				cep.QP.PostSend(p, verbs.SendWR{
					WRID: uint64(posted), Op: verbs.WRWrite, LocalAddr: cep.Buf,
					LKey: cep.MR.LKey(), Len: size, RemoteAddr: peer.Addr, RKey: peer.RKey,
				})
				posted++
			}
		})
		return done
	}
	d1 := stream(c1, s1)
	d2 := stream(c2, s2)
	tb.Eng.Run()
	window := simtime.Ms(8).Seconds() // the measurement window each flow ran
	g1 := float64(d1.Value()*8) / window / 1e9
	g2 := float64(d2.Value()*8) / window / 1e9
	if total := g1 + g2; total < 33 || total > 41 {
		t.Fatalf("incast aggregate = %.1f Gbps, want ≈ line rate", total)
	}
	if ratio := g1 / g2; ratio < 0.7 || ratio > 1.45 {
		t.Fatalf("unfair incast split: %.1f vs %.1f Gbps", g1, g2)
	}
	for i := 0; i < 3; i++ {
		if r := tb.Hosts[i].Dev.Stats.Retransmits; r != 0 {
			t.Fatalf("host%d retransmitted %d times on a lossless fabric", i, r)
		}
	}
	_ = s2
}
