package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"masq/internal/controller"
	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

const vni = 100

// pairBed builds a 2-host testbed with one tenant (allow-all) and a
// connected endpoint pair under the given mode: server on host1, client on
// host0.
type pairBed struct {
	tb             *Testbed
	client, server *Endpoint
}

func newPairBed(t *testing.T, mode Mode) *pairBed {
	t.Helper()
	tb := New(DefaultConfig())
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	cNode, err := tb.NewNode(mode, 0, vni, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sNode, err := tb.NewNode(mode, 1, vni, packet.NewIP(192, 168, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pb := &pairBed{tb: tb}
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("setup", func(p *simtime.Proc) {
		var err error
		pb.client, err = cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		pb.server, err = sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, pb.server, pb.client, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if !done.Triggered() {
		t.Fatalf("%v: setup never finished; pending procs: %v", mode, tb.Eng.PendingProcs())
	}
	if err := done.Value(); err != nil {
		t.Fatalf("%v: setup failed: %v", mode, err)
	}
	return pb
}

// pingPong sends msg client→server and echoes it back, verifying payload
// integrity. Returns the measured round-trip time.
func (pb *pairBed) pingPong(t *testing.T, msg []byte) simtime.Duration {
	t.Helper()
	var rtt simtime.Duration
	failed := false
	pb.tb.Eng.Spawn("server", func(p *simtime.Proc) {
		s := pb.server
		s.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: s.Buf, LKey: s.MR.LKey(), Len: s.Len})
		wc := s.RCQ.Wait(p)
		if wc.Status != verbs.WCSuccess || wc.ByteLen != len(msg) {
			t.Errorf("server recv WC = %+v", wc)
			failed = true
			return
		}
		got := make([]byte, wc.ByteLen)
		s.Node.Read(s.Buf, got)
		if string(got) != string(msg) {
			t.Errorf("server got %q, want %q", got, msg)
			failed = true
		}
		s.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: s.Buf, LKey: s.MR.LKey(), Len: wc.ByteLen})
		s.SCQ.Wait(p)
	})
	pb.tb.Eng.Spawn("client", func(p *simtime.Proc) {
		c := pb.client
		c.Node.Write(c.Buf, msg)
		c.QP.PostRecv(p, verbs.RecvWR{WRID: 3, Addr: c.Buf + 32768, LKey: c.MR.LKey(), Len: len(msg)})
		start := p.Now()
		c.QP.PostSend(p, verbs.SendWR{WRID: 4, Op: verbs.WRSend, LocalAddr: c.Buf, LKey: c.MR.LKey(), Len: len(msg)})
		c.SCQ.Wait(p)
		wc := c.RCQ.Wait(p)
		rtt = p.Now().Sub(start)
		if wc.Status != verbs.WCSuccess {
			t.Errorf("client recv WC = %+v", wc)
			failed = true
			return
		}
		got := make([]byte, wc.ByteLen)
		c.Node.Read(c.Buf+32768, got)
		if string(got) != string(msg) {
			t.Errorf("echo = %q, want %q", got, msg)
			failed = true
		}
	})
	pb.tb.Eng.Run()
	if rtt == 0 && !failed {
		t.Fatal("ping-pong never completed")
	}
	return rtt
}

func TestEndToEndAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeHost, ModeSRIOV, ModeMasQ, ModeMasQPF, ModeFreeFlow} {
		t.Run(mode.String(), func(t *testing.T) {
			pb := newPairBed(t, mode)
			pb.pingPong(t, []byte("hello through "+mode.String()))
		})
	}
}

func TestLatencyOrderingAcrossModes(t *testing.T) {
	rtts := map[Mode]simtime.Duration{}
	for _, mode := range []Mode{ModeHost, ModeSRIOV, ModeMasQ, ModeFreeFlow} {
		pb := newPairBed(t, mode)
		rtts[mode] = pb.pingPong(t, []byte("xy"))
	}
	// Fig. 8a shape: host < masq ≈ sriov < freeflow.
	if !(rtts[ModeHost] < rtts[ModeMasQ]) {
		t.Errorf("host (%v) should beat masq (%v)", rtts[ModeHost], rtts[ModeMasQ])
	}
	ratio := float64(rtts[ModeMasQ]) / float64(rtts[ModeSRIOV])
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("masq (%v) should match sr-iov (%v)", rtts[ModeMasQ], rtts[ModeSRIOV])
	}
	if !(rtts[ModeFreeFlow] > rtts[ModeMasQ]*3/2) {
		t.Errorf("freeflow (%v) should be well above masq (%v)", rtts[ModeFreeFlow], rtts[ModeMasQ])
	}
}

// TestMasQWirePacketsUsePhysicalAddresses sniffs the underlay link and
// checks RConnrename's core guarantee: every RoCE packet is encapsulated
// with host (physical) IPs, never tenant (virtual) IPs.
func TestMasQWirePacketsUsePhysicalAddresses(t *testing.T) {
	tb := New(DefaultConfig())
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	cNode, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	sNode, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))

	// Capture the underlay with a passive tap, before any traffic flows.
	tap := tb.Links[0].AttachTap()

	pb := &pairBed{tb: tb}
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("setup", func(p *simtime.Proc) {
		var err error
		pb.client, err = cNode.Setup(p, DefaultEndpointOpts())
		if err == nil {
			pb.server, err = sNode.Setup(p, DefaultEndpointOpts())
		}
		if err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, pb.server, pb.client, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	pb.pingPong(t, []byte("renamed"))

	// Every captured RoCE frame must carry physical host addresses; the
	// tenant's 192.168.x.x space must never appear on the wire.
	roce := 0
	for _, f := range tap.Frames() {
		pkt, err := packet.Decode(f.Data)
		if err != nil || pkt.BTH() == nil {
			continue
		}
		roce++
		src, dst := pkt.IPv4().Src, pkt.IPv4().Dst
		if src[0] == 192 || dst[0] == 192 {
			t.Fatalf("tenant address on the wire: %v -> %v", src, dst)
		}
		if src != tb.Hosts[0].IP && src != tb.Hosts[1].IP {
			t.Fatalf("unknown source %v on the wire", src)
		}
	}
	if roce == 0 {
		t.Fatal("tap captured no RoCE frames")
	}

	// The backends renamed both RTR commands.
	if tb.Backend(0).Stats.Renames == 0 || tb.Backend(1).Stats.Renames == 0 {
		t.Error("RConnrename never fired")
	}
	// The hardware QPC holds physical addressing: find the data QPs on
	// host0's device and check their address vectors.
	checked := 0
	for qpn := uint32(1); qpn < 20; qpn++ {
		qp := tb.Hosts[0].Dev.QP(qpn)
		if qp == nil || qp.State() != rnic.StateRTS {
			continue
		}
		checked++
		if qp.AV.DIP != tb.Hosts[1].IP {
			t.Errorf("QP %d AV.DIP = %v, want physical %v", qpn, qp.AV.DIP, tb.Hosts[1].IP)
		}
		if ip, _ := qp.AV.DGID.IP(); ip != tb.Hosts[1].IP {
			t.Errorf("QP %d AV.DGID embeds %v, want physical", qpn, ip)
		}
		if qp.SrcIP != tb.Hosts[0].IP {
			t.Errorf("QP %d SrcIP = %v, want physical %v", qpn, qp.SrcIP, tb.Hosts[0].IP)
		}
	}
	if checked == 0 {
		t.Fatal("no RTS QPs found on host0")
	}
}

// TestMasQOverlappingTenantIPs: two tenants use identical virtual IPs;
// RConnrename must key its mapping by (VNI, vGID) so each client reaches
// its own tenant's server.
func TestMasQOverlappingTenantIPs(t *testing.T) {
	tb := New(DefaultConfig())
	tb.AddTenant(100, "acme")
	tb.AddTenant(200, "globex")
	tb.AllowAll(100)
	tb.AllowAll(200)

	mk := func(vni uint32, host int, ip packet.IP) *Node {
		n, err := tb.NewNode(ModeMasQ, host, vni, ip)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Tenant 100: client on host0, server on host1. Tenant 200: the
	// mirror image, same IPs.
	c1 := mk(100, 0, packet.NewIP(10, 0, 0, 1))
	s1 := mk(100, 1, packet.NewIP(10, 0, 0, 2))
	c2 := mk(200, 0, packet.NewIP(10, 0, 0, 1))
	s2 := mk(200, 1, packet.NewIP(10, 0, 0, 2))

	run := func(c, s *Node, port uint16, payload string, out *string) {
		var cep, sep *Endpoint
		tb.Eng.Spawn("setup", func(p *simtime.Proc) {
			var err error
			if cep, err = c.Setup(p, DefaultEndpointOpts()); err != nil {
				t.Error(err)
				return
			}
			if sep, err = s.Setup(p, DefaultEndpointOpts()); err != nil {
				t.Error(err)
				return
			}
			se, ce := Pair(tb.Eng, sep, cep, port)
			tb.Eng.Spawn("traffic", func(p *simtime.Proc) {
				if err := se.Wait(p); err != nil {
					t.Error(err)
					return
				}
				if err := ce.Wait(p); err != nil {
					t.Error(err)
					return
				}
				tb.Eng.Spawn("srv", func(p *simtime.Proc) {
					sep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: sep.Len})
					wc := sep.RCQ.Wait(p)
					buf := make([]byte, wc.ByteLen)
					s.Read(sep.Buf, buf)
					*out = string(buf)
				})
				tb.Eng.Spawn("cli", func(p *simtime.Proc) {
					c.Write(cep.Buf, []byte(payload))
					cep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: len(payload)})
					cep.SCQ.Wait(p)
				})
			})
		})
	}
	var got1, got2 string
	run(c1, s1, 7001, "for-acme", &got1)
	run(c2, s2, 7002, "for-globex", &got2)
	tb.Eng.Run()
	if got1 != "for-acme" || got2 != "for-globex" {
		t.Fatalf("tenant crossover: got1=%q got2=%q", got1, got2)
	}
}

// TestMasQSecurityDeniesConnection: the tenant allows the TCP path but not
// RDMA; the out-of-band exchange succeeds but modify_qp(RTR) is refused by
// RConntrack (security subproblem 1).
func TestMasQSecurityDeniesConnection(t *testing.T) {
	tb := New(DefaultConfig())
	tenant := tb.AddTenant(vni, "acme")
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	tenant.Policy.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoTCP, Src: all, Dst: all, Action: overlay.Allow})

	cNode, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	sNode, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))
	var clientErr, serverErr error
	tb.Eng.Spawn("setup", func(p *simtime.Proc) {
		cep, err := cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			t.Error(err)
			return
		}
		sep, err := sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			t.Error(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7000)
		serverErr = se.Wait(p)
		clientErr = ce.Wait(p)
	})
	tb.Eng.Run()
	if clientErr == nil || serverErr == nil {
		t.Fatalf("connection allowed despite RDMA deny: client=%v server=%v", clientErr, serverErr)
	}
	if !strings.Contains(clientErr.Error(), "denied by security rules") {
		t.Fatalf("client err = %v", clientErr)
	}
}

// TestMasQRuleRevocationResetsConnection reproduces the Fig. 17 kill: a
// running transfer dies with error completions once the allow rule is
// removed, and the QP stops emitting (Table 2).
func TestMasQRuleRevocationResetsConnection(t *testing.T) {
	tb := New(DefaultConfig())
	tenant := tb.AddTenant(vni, "acme")
	ruleID := tb.AllowAll(vni)
	cNode, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	sNode, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))

	var sawError bool
	var resets uint64
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("setup", func(p *simtime.Proc) {
		cep, err := cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		sep, err := sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		if err := ce.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		// Stream writes until the rule is pulled out from under us.
		tb.Eng.Spawn("traffic", func(p *simtime.Proc) {
			peer := sep.Info()
			for i := 0; ; i++ {
				err := cep.QP.PostSend(p, verbs.SendWR{
					WRID: uint64(i), Op: verbs.WRWrite,
					LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 16384,
					RemoteAddr: peer.Addr, RKey: peer.RKey,
				})
				if err != nil {
					done.Trigger(nil) // posting refused after ERROR: also fine
					return
				}
				wc, ok := cep.SCQ.WaitTimeout(p, simtime.Ms(100))
				if !ok {
					done.Trigger(errors.New("transfer hung"))
					return
				}
				if wc.Status != verbs.WCSuccess {
					sawError = true
					done.Trigger(nil)
					return
				}
			}
		})
		tb.Eng.Spawn("revoke", func(p *simtime.Proc) {
			p.Sleep(simtime.Ms(2))
			tenant.Policy.RemoveRule(ruleID)
		})
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if !sawError {
		t.Fatal("client never observed an error completion")
	}
	resets = tb.Backend(0).CT.Stats.Resets + tb.Backend(1).CT.Stats.Resets
	if resets == 0 {
		t.Fatal("RConntrack recorded no resets")
	}
}

// TestMasQQoSRateLimit drives a tenant through its VF rate limiter.
func TestMasQQoSRateLimit(t *testing.T) {
	pb := newPairBed(t, ModeMasQ)
	if err := pb.tb.Backend(0).SetTenantRateLimit(vni, 5e9); err != nil {
		t.Fatal(err)
	}
	const size = 64 * 1024 // the full registered region
	var elapsed simtime.Duration
	pb.tb.Eng.Spawn("client", func(p *simtime.Proc) {
		c := pb.client
		peer := pb.server.Info()
		start := p.Now()
		const rounds = 64
		for i := 0; i < rounds; i++ {
			c.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRWrite, LocalAddr: c.Buf, LKey: c.MR.LKey(),
				Len: size, RemoteAddr: peer.Addr, RKey: peer.RKey,
			})
		}
		for i := 0; i < rounds; i++ {
			if wc := c.SCQ.Wait(p); wc.Status != verbs.WCSuccess {
				t.Errorf("WC = %+v", wc)
				return
			}
		}
		elapsed = p.Now().Sub(start)
	})
	pb.tb.Eng.Run()
	gbps := float64(64*size*8) / elapsed.Seconds() / 1e9
	if gbps > 5.5 || gbps < 3.5 {
		t.Fatalf("limited throughput = %.2f Gbps, want ≈5", gbps)
	}
}

// TestTable5MaxVMs: MasQ VMs are bounded by host memory (~160 at 512 MB),
// while SR-IOV stops at 8 VFs.
func TestTable5MaxVMs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VMMem = 512 << 20
	tb := New(cfg)
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)

	masqCount := 0
	for i := 0; ; i++ {
		_, err := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(10, byte(i>>8), byte(i), 1))
		if err != nil {
			if !errors.Is(err, mem.ErrOutOfMemory) {
				t.Fatalf("masq VM %d failed with %v, want out-of-memory", i, err)
			}
			break
		}
		masqCount++
	}
	if masqCount < 150 || masqCount > 170 {
		t.Fatalf("MasQ max VMs = %d, want ≈160 (Table 5)", masqCount)
	}

	tb2 := New(cfg)
	tb2.AddTenant(vni, "acme")
	tb2.AllowAll(vni)
	sriovCount := 0
	for i := 0; ; i++ {
		_, err := tb2.NewNode(ModeSRIOV, 0, vni, packet.NewIP(10, byte(i>>8), byte(i), 1))
		if err != nil {
			if !errors.Is(err, rnic.ErrNoResources) {
				t.Fatalf("sriov VM %d failed with %v, want no-resources", i, err)
			}
			break
		}
		sriovCount++
	}
	if sriovCount != 8 {
		t.Fatalf("SR-IOV max VMs = %d, want 8 (Table 5)", sriovCount)
	}
}

// TestVBondFollowsIPChange: re-addressing the vNIC updates the vGID and
// the controller mapping, and a connection to the NEW vGID works.
func TestVBondFollowsIPChange(t *testing.T) {
	tb := New(DefaultConfig())
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	cNode, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	sNode, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))

	var gidBefore, gidAfter packet.GID
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("test", func(p *simtime.Proc) {
		sep, err := sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		gidBefore = sep.GID
		// Tenant re-addresses the server VM.
		if err := sNode.VM.VNIC.SetIP(packet.NewIP(192, 168, 1, 50)); err != nil {
			done.Trigger(err)
			return
		}
		sNode.VIP = packet.NewIP(192, 168, 1, 50)
		gidAfter, err = sep.Dev.QueryGID(p)
		if err != nil {
			done.Trigger(err)
			return
		}
		sep.GID = gidAfter
		cep, err := cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if gidBefore == gidAfter {
		t.Fatal("vGID did not change with the IP")
	}
	if ip, _ := gidAfter.IP(); ip != packet.NewIP(192, 168, 1, 50) {
		t.Fatalf("new vGID embeds %v", ip)
	}
}

// TestMasQUDRename: datagram WQEs carry virtual destinations through the
// control path and are renamed per WQE (Sec. 3.3.4).
func TestMasQUDRename(t *testing.T) {
	tb := New(DefaultConfig())
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	cNode, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	sNode, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))

	opts := DefaultEndpointOpts()
	opts.Type = verbs.UD
	var got string
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("test", func(p *simtime.Proc) {
		cep, err := cNode.Setup(p, opts)
		if err != nil {
			done.Trigger(err)
			return
		}
		sep, err := sNode.Setup(p, opts)
		if err != nil {
			done.Trigger(err)
			return
		}
		const qkey = 0x7777
		if err := cep.ConnectUD(p, sep.Info(), qkey); err != nil {
			done.Trigger(err)
			return
		}
		if err := sep.ConnectUD(p, cep.Info(), qkey); err != nil {
			done.Trigger(err)
			return
		}
		sep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: sep.Len})
		msg := []byte("ud datagram")
		cNode.Write(cep.Buf, msg)
		// Per-WQE virtual destination: only GID+QPN are known to the app.
		err = cep.QP.PostSend(p, verbs.SendWR{
			WRID: 2, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: len(msg),
			QKey: qkey, Remote: &verbs.AddressVector{DGID: sep.GID, DQPN: sep.QP.Num()},
		})
		if err != nil {
			done.Trigger(err)
			return
		}
		wc := sep.RCQ.Wait(p)
		buf := make([]byte, wc.ByteLen)
		sNode.Read(sep.Buf, buf)
		got = string(buf)
		done.Trigger(nil)
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if got != "ud datagram" {
		t.Fatalf("got %q", got)
	}
}

// TestConnectionSetupOrdering checks the Fig. 15a shape: host < sriov <
// masq < freeflow.
func TestConnectionSetupOrdering(t *testing.T) {
	setup := func(mode Mode) simtime.Duration {
		tb := New(DefaultConfig())
		tb.AddTenant(vni, "acme")
		tb.AllowAll(vni)
		cNode, err := tb.NewNode(mode, 0, vni, packet.NewIP(192, 168, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		sNode, err := tb.NewNode(mode, 1, vni, packet.NewIP(192, 168, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		// One shared CQ, as in the paper's profiled program (Fig. 15b
		// shows a single create_cq). The metric is the client-side serial
		// delay — the measuring program's own verbs — as in Fig. 15a.
		opts := DefaultEndpointOpts()
		opts.SharedCQ = true
		var dur simtime.Duration
		ready := simtime.NewEvent[*Endpoint](tb.Eng)
		tb.Eng.Spawn("server", func(p *simtime.Proc) {
			if _, err := sNode.Device(p); err != nil {
				t.Error(err)
				return
			}
			sep, err := sNode.Setup(p, opts)
			if err != nil {
				t.Error(err)
				return
			}
			ready.Trigger(sep)
			peer, err := sep.ExchangeServer(p, 7000)
			if err == nil {
				err = sep.ConnectRC(p, peer)
			}
			if err != nil {
				t.Error(err)
			}
		})
		tb.Eng.Spawn("client", func(p *simtime.Proc) {
			if _, err := cNode.Device(p); err != nil {
				t.Error(err)
				return
			}
			ready.Wait(p)
			start := p.Now()
			cep, err := cNode.Setup(p, opts)
			if err != nil {
				t.Error(err)
				return
			}
			peer, err := cep.ExchangeClient(p, sNode.VIP, 7000, simtime.Ms(50))
			if err == nil {
				err = cep.ConnectRC(p, peer)
			}
			if err != nil {
				t.Error(err)
				return
			}
			dur = p.Now().Sub(start)
		})
		tb.Eng.Run()
		return dur
	}
	host := setup(ModeHost)
	sr := setup(ModeSRIOV)
	mq := setup(ModeMasQ)
	ff := setup(ModeFreeFlow)
	if !(host < sr && sr < mq && mq < ff) {
		t.Fatalf("ordering host=%v sriov=%v masq=%v freeflow=%v", host, sr, mq, ff)
	}
	// Rough magnitudes (ms): 0.8 / 1.9 / 2.1 / 3.9.
	if mq < simtime.Ms(1.8) || mq > simtime.Ms(2.6) {
		t.Errorf("masq setup = %v, want ≈2.1ms", mq)
	}
	if ff < simtime.Ms(3.3) || ff > simtime.Ms(4.6) {
		t.Errorf("freeflow setup = %v, want ≈3.9ms", ff)
	}
}

// TestLiveMigration runs the full application-assisted migration cycle of
// Sec. 5: tear down RDMA state, migrate the VM (memory image + vNIC +
// paravirtual device), re-register the vGID, reconnect, and verify both
// the preserved guest memory and the re-routed traffic.
func TestLiveMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3 // spare host to migrate onto
	tb := New(cfg)
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	cNode, err := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sNode, err := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: connect and exchange.
	var sep, cep *Endpoint
	phase1 := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("phase1", func(p *simtime.Proc) {
		var err error
		if cep, err = cNode.Setup(p, DefaultEndpointOpts()); err != nil {
			phase1.Trigger(err)
			return
		}
		if sep, err = sNode.Setup(p, DefaultEndpointOpts()); err != nil {
			phase1.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7000)
		if err := se.Wait(p); err != nil {
			phase1.Trigger(err)
			return
		}
		if err := ce.Wait(p); err != nil {
			phase1.Trigger(err)
			return
		}
		// Move one message so the path demonstrably worked.
		sep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: 64})
		cNode.Write(cep.Buf, []byte("pre-migration"))
		cep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 13})
		if wc := sep.RCQ.Wait(p); wc.Status != verbs.WCSuccess {
			phase1.Trigger(errors.New("pre-migration transfer failed"))
			return
		}
		// Stash a marker deep in guest memory to survive the migration.
		va, _ := sNode.Alloc(4096)
		sNode.Write(va, []byte("guest state survives"))
		sNode.VM.GVA.Write(va, []byte("guest state survives"))
		phase1.Trigger(nil)
		markerVA = va
	})
	tb.Eng.Run()
	if err := phase1.Value(); err != nil {
		t.Fatal(err)
	}

	// Migrating with pinned MRs must refuse.
	if err := tb.MigrateNode(sNode, 2); err == nil {
		t.Fatal("migration accepted while MRs were registered")
	}

	// Phase 2: application-assisted teardown (destroy QP, dereg MR).
	phase2 := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("teardown", func(p *simtime.Proc) {
		if err := sep.QP.Destroy(p); err != nil {
			phase2.Trigger(err)
			return
		}
		if err := sep.MR.Dereg(p); err != nil {
			phase2.Trigger(err)
			return
		}
		if err := cep.QP.Destroy(p); err != nil {
			phase2.Trigger(err)
			return
		}
		phase2.Trigger(nil)
	})
	tb.Eng.Run()
	if err := phase2.Value(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: migrate host1 → host2.
	if err := tb.MigrateNode(sNode, 2); err != nil {
		t.Fatal(err)
	}
	if sNode.Host != tb.Hosts[2] {
		t.Fatal("node host not updated")
	}
	buf := make([]byte, 20)
	sNode.Read(markerVA, buf)
	if string(buf) != "guest state survives" {
		t.Fatalf("guest memory lost in migration: %q", buf)
	}

	// Phase 4: reconnect. The client resolves the server's unchanged vGID
	// to the NEW host via the controller.
	phase4 := simtime.NewEvent[error](tb.Eng)
	var echoed string
	tb.Eng.Spawn("phase4", func(p *simtime.Proc) {
		sep2, err := sNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			phase4.Trigger(err)
			return
		}
		cep2, err := cNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			phase4.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep2, cep2, 7100)
		if err := se.Wait(p); err != nil {
			phase4.Trigger(err)
			return
		}
		if err := ce.Wait(p); err != nil {
			phase4.Trigger(err)
			return
		}
		sep2.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep2.Buf, LKey: sep2.MR.LKey(), Len: 64})
		cNode.Write(cep2.Buf, []byte("post-migration"))
		cep2.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: cep2.Buf, LKey: cep2.MR.LKey(), Len: 14})
		wc := sep2.RCQ.Wait(p)
		if wc.Status != verbs.WCSuccess {
			phase4.Trigger(errors.New("post-migration transfer failed"))
			return
		}
		b := make([]byte, wc.ByteLen)
		sNode.Read(sep2.Buf, b)
		echoed = string(b)
		// The hardware path must now terminate at host2.
		qp := tb.Hosts[0].Dev.QP(cep2.QP.Num())
		if qp != nil && qp.AV.DIP != tb.Hosts[2].IP {
			phase4.Trigger(fmt.Errorf("client QP points at %v, want host2 %v", qp.AV.DIP, tb.Hosts[2].IP))
			return
		}
		phase4.Trigger(nil)
	})
	tb.Eng.Run()
	if err := phase4.Value(); err != nil {
		t.Fatal(err)
	}
	if echoed != "post-migration" {
		t.Fatalf("echoed %q", echoed)
	}
	if tb.Hosts[2].Dev.Stats.RxMsgs == 0 {
		t.Fatal("no traffic reached the destination host's RNIC")
	}
}

var markerVA uint64

// TestMigrationRefusedForNonMasQ: only paravirtualized devices can follow
// the VM; passthrough VFs cannot.
func TestMigrationRefusedForNonMasQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	tb := New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	n, err := tb.NewNode(ModeSRIOV, 0, vni, packet.NewIP(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MigrateNode(n, 2); err == nil {
		t.Fatal("SR-IOV node migration must be refused")
	}
}

// TestWireInfoDiagnosis: the Sec. 5 feature — map the QPN seen on the
// underlay back to tenant and virtual IP.
func TestWireInfoDiagnosis(t *testing.T) {
	pb := newPairBed(t, ModeMasQ)
	be := pb.tb.Backend(0)
	vniGot, vip, ok := be.WireInfo(pb.client.QP.Num())
	if !ok {
		t.Fatal("WireInfo found nothing for a live QP")
	}
	if vniGot != vni || vip != packet.NewIP(192, 168, 1, 1) {
		t.Fatalf("WireInfo = VNI %d, %v", vniGot, vip)
	}
	if _, _, ok := be.WireInfo(0xdead); ok {
		t.Fatal("WireInfo resolved a bogus QPN")
	}
	// Destroying the QP removes the mapping.
	done := simtime.NewEvent[error](pb.tb.Eng)
	pb.tb.Eng.Spawn("destroy", func(p *simtime.Proc) {
		done.Trigger(pb.client.QP.Destroy(p))
	})
	pb.tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := be.WireInfo(pb.client.QP.Num()); ok {
		t.Fatal("WireInfo still resolves a destroyed QP")
	}
}

// TestAtomicsThroughMasQ: RDMA atomics ride the zero-copy data path of
// the virtualized device — a distributed counter across two tenant VMs.
func TestAtomicsThroughMasQ(t *testing.T) {
	opts := DefaultEndpointOpts()
	opts.Access |= verbs.AccessRemoteAtomic
	cp, err := NewConnectedPairOpts(DefaultConfig(), ModeMasQ, opts)
	if err != nil {
		t.Fatal(err)
	}
	var final uint64
	done := simtime.NewEvent[error](cp.TB.Eng)
	cp.TB.Eng.Spawn("counter", func(p *simtime.Proc) {
		peer := cp.Server.Info()
		c := cp.Client
		for i := 0; i < 5; i++ {
			if err := c.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRAtomicFAdd,
				LocalAddr: c.Buf, LKey: c.MR.LKey(),
				RemoteAddr: peer.Addr, RKey: peer.RKey, SwapAdd: 3,
			}); err != nil {
				done.Trigger(err)
				return
			}
			wc := c.SCQ.Wait(p)
			if wc.Status != verbs.WCSuccess {
				done.Trigger(fmt.Errorf("atomic %d: %v", i, wc.Status))
				return
			}
		}
		var b [8]byte
		cp.ServerNode.Read(cp.Server.Buf, b[:])
		for _, x := range b {
			final = final<<8 | uint64(x)
		}
		done.Trigger(nil)
	})
	cp.TB.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if final != 15 {
		t.Fatalf("counter = %d, want 15", final)
	}
}

// TestSRQThroughMasQ: a shared receive queue created through the
// paravirtual control path serves two RC connections from one pool.
func TestSRQThroughMasQ(t *testing.T) {
	tb := New(DefaultConfig())
	tb.AddTenant(vni, "acme")
	tb.AllowAll(vni)
	srv, err := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("srq", func(p *simtime.Proc) {
		dev, err := srv.Device(p)
		if err != nil {
			done.Trigger(err)
			return
		}
		pd, _ := dev.AllocPD(p)
		buf, _ := srv.Alloc(8192)
		mr, err := dev.RegMR(p, pd, buf, 8192, verbs.AccessLocalWrite)
		if err != nil {
			done.Trigger(err)
			return
		}
		cq, _ := dev.CreateCQ(p, 64)
		shared, err := dev.CreateSRQ(p, 16)
		if err != nil {
			done.Trigger(err)
			return
		}
		for i := 0; i < 4; i++ {
			shared.PostRecv(p, verbs.RecvWR{WRID: uint64(i), Addr: buf + uint64(i*256), LKey: mr.LKey(), Len: 256})
		}
		caps := verbs.QPCaps{MaxSendWR: 16, MaxRecvWR: 16, SRQ: shared.Raw()}
		gid, _ := dev.QueryGID(p)

		// Two client endpoints, each to its own server QP on the pool.
		for i := 0; i < 2; i++ {
			sqp, err := dev.CreateQP(p, pd, cq, cq, verbs.RC, caps)
			if err != nil {
				done.Trigger(err)
				return
			}
			cep, err := cli.Setup(p, DefaultEndpointOpts())
			if err != nil {
				done.Trigger(err)
				return
			}
			if err := cep.ConnectRC(p, verbs.ConnInfo{GID: gid, QPN: sqp.Num()}); err != nil {
				done.Trigger(err)
				return
			}
			if err := sqp.Modify(p, verbs.Attr{ToState: verbs.StateInit}); err != nil {
				done.Trigger(err)
				return
			}
			if err := sqp.Modify(p, verbs.Attr{ToState: verbs.StateRTR, DGID: cep.GID, DQPN: cep.QP.Num()}); err != nil {
				done.Trigger(err)
				return
			}
			if err := sqp.Modify(p, verbs.Attr{ToState: verbs.StateRTS}); err != nil {
				done.Trigger(err)
				return
			}
			msg := fmt.Sprintf("via-conn-%d", i)
			cli.Write(cep.Buf, []byte(msg))
			cep.QP.PostSend(p, verbs.SendWR{WRID: 1, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: len(msg)})
			if wc := cep.SCQ.Wait(p); wc.Status != verbs.WCSuccess {
				done.Trigger(fmt.Errorf("send %d: %v", i, wc.Status))
				return
			}
		}
		for i := 0; i < 2; i++ {
			wc := cq.Wait(p)
			if wc.Status != verbs.WCSuccess || !wc.Recv {
				done.Trigger(fmt.Errorf("recv %d: %+v", i, wc))
				return
			}
			b := make([]byte, wc.ByteLen)
			srv.Read(buf+wc.WRID*256, b)
			if string(b) != fmt.Sprintf("via-conn-%d", i) {
				done.Trigger(fmt.Errorf("payload %q", b))
				return
			}
		}
		if shared.Len() != 2 {
			done.Trigger(fmt.Errorf("SRQ len %d, want 2", shared.Len()))
			return
		}
		done.Trigger(nil)
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoLevelSecurity: the security group allows a flow but the
// network-level FWaaS denies it — the paper's two-level mechanism. Both
// chains must pass for establishment, and adding a firewall rule later
// kills live connections just like a security-group change.
func TestTwoLevelSecurity(t *testing.T) {
	tb := New(DefaultConfig())
	tenant := tb.AddTenant(vni, "acme")
	tb.AllowAll(vni) // open security group
	fw := tenant.EnableFWaaS()
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	sub, _ := packet.ParseCIDR("192.168.1.0/24")
	// Firewall: TCP anywhere (so the OOB path works), RDMA only inside
	// the 192.168.1.0/24 subnet.
	fw.AddRule(overlay.Rule{Priority: 1, Proto: overlay.ProtoTCP, Src: all, Dst: all, Action: overlay.Allow})
	fwRDMA := fw.AddRule(overlay.Rule{Priority: 10, Proto: overlay.ProtoRDMA, Src: sub, Dst: sub, Action: overlay.Allow})

	c1, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 1, 1))
	s1, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 1, 2))
	c2, _ := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(192, 168, 2, 1)) // outside the firewall allowance
	s2, _ := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(192, 168, 2, 2))

	connect := func(c, s *Node, port uint16) (err error, cep, sep *Endpoint) {
		done := simtime.NewEvent[error](tb.Eng)
		tb.Eng.Spawn("wire", func(p *simtime.Proc) {
			var e error
			if cep, e = c.Setup(p, DefaultEndpointOpts()); e != nil {
				done.Trigger(e)
				return
			}
			if sep, e = s.Setup(p, DefaultEndpointOpts()); e != nil {
				done.Trigger(e)
				return
			}
			se, ce := Pair(tb.Eng, sep, cep, port)
			if e := se.Wait(p); e != nil {
				done.Trigger(e)
				return
			}
			done.Trigger(ce.Wait(p))
		})
		tb.Eng.Run()
		return done.Value(), cep, sep
	}

	errOK, cep, sep := connect(c1, s1, 7000)
	if errOK != nil {
		t.Fatalf("inside-subnet connect failed: %v", errOK)
	}
	errDeny, _, _ := connect(c2, s2, 7001)
	if errDeny == nil || !strings.Contains(errDeny.Error(), "denied") {
		t.Fatalf("firewall did not deny: %v", errDeny)
	}

	// Remove the firewall's RDMA allowance: the live connection dies.
	var sawKill bool
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("traffic", func(p *simtime.Proc) {
		peer := sep.Info()
		for i := 0; ; i++ {
			if err := cep.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRWrite, LocalAddr: cep.Buf, LKey: cep.MR.LKey(),
				Len: 16384, RemoteAddr: peer.Addr, RKey: peer.RKey,
			}); err != nil {
				done.Trigger(nil)
				return
			}
			wc, ok := cep.SCQ.WaitTimeout(p, simtime.Ms(100))
			if !ok {
				done.Trigger(errors.New("hung"))
				return
			}
			if wc.Status != verbs.WCSuccess {
				sawKill = true
				done.Trigger(nil)
				return
			}
		}
	})
	tb.Eng.Spawn("fw-revoke", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(1))
		fw.RemoveRule(fwRDMA)
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if !sawKill {
		t.Fatal("firewall revocation did not kill the connection")
	}
}

// TestConnectRetriesThroughControllerOutage: the controller is unreachable
// for the first 60ms of the run — covering the out-of-band exchange and
// the first GID queries (a plain connect completes at ~57ms). Connection
// establishment must ride through on query retry/backoff rather than
// fail, and the whole timeline must be reproducible run-for-run.
func TestConnectRetriesThroughControllerOutage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Masq.QueryRetries = 12
	cfg.CtrlFault = controller.FaultPlan{Unavailable: []controller.Window{
		{Start: 0, End: simtime.Time(simtime.Ms(60))},
	}}
	cp, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatalf("connect through outage: %v", err)
	}
	if cp.TB.Ctrl.Stats.Timeouts == 0 {
		t.Fatal("no query timed out: the fault plan was never armed")
	}
	if cp.TB.Backend(0).Stats.QueryRetries == 0 {
		t.Fatal("client backend resolved without retrying")
	}
	if cp.TB.Eng.Now() < simtime.Time(simtime.Ms(60)) {
		t.Fatalf("connected at %v, inside the outage window", cp.TB.Eng.Now())
	}
	// Determinism: an identical config must produce the identical timeline.
	cp2, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.TB.Eng.Now() != cp.TB.Eng.Now() {
		t.Fatalf("timeline not reproducible: %v vs %v", cp2.TB.Eng.Now(), cp.TB.Eng.Now())
	}
}

// TestConnectSurvivesDroppedReplies: the controller silently eats the next
// two query replies; backoff resends absorb the loss.
func TestConnectSurvivesDroppedReplies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CtrlFault = controller.FaultPlan{DropReplies: 2}
	cp, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatalf("connect with dropped replies: %v", err)
	}
	if cp.TB.Ctrl.Stats.DroppedReplies != 2 {
		t.Fatalf("dropped replies = %d, want 2", cp.TB.Ctrl.Stats.DroppedReplies)
	}
	retries := cp.TB.Backend(0).Stats.QueryRetries + cp.TB.Backend(1).Stats.QueryRetries
	if retries < 2 {
		t.Fatalf("backends retried %d times, want >= 2", retries)
	}
}

// TestMigrationStaleCacheRecovered: with controller push notifications
// delayed by 500ms, a client reconnecting right after its peer migrated
// still holds the pre-migration mapping in its GID cache. RConnrename must
// detect the staleness, invalidate, re-query, and complete the rename
// against the new host.
func TestMigrationStaleCacheRecovered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	cfg.Ctrl.NotifyDelay = simtime.Ms(500) // invalidations arrive too late
	cp, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB

	// Application-assisted teardown, then migrate the server host1 -> host2.
	phase2 := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("teardown", func(p *simtime.Proc) {
		if err := cp.Server.QP.Destroy(p); err != nil {
			phase2.Trigger(err)
			return
		}
		if err := cp.Server.MR.Dereg(p); err != nil {
			phase2.Trigger(err)
			return
		}
		phase2.Trigger(cp.Client.QP.Destroy(p))
	})
	tb.Eng.Run()
	if err := phase2.Value(); err != nil {
		t.Fatal(err)
	}
	if err := tb.MigrateNode(cp.ServerNode, 2); err != nil {
		t.Fatal(err)
	}

	// Reconnect immediately: the client's cache still maps the server's
	// vGID to host1. The delayed invalidation has not landed yet.
	phase3 := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("reconnect", func(p *simtime.Proc) {
		sep, err := cp.ServerNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			phase3.Trigger(err)
			return
		}
		cep, err := cp.ClientNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			phase3.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, 7100)
		if err := se.Wait(p); err != nil {
			phase3.Trigger(err)
			return
		}
		if err := ce.Wait(p); err != nil {
			phase3.Trigger(err)
			return
		}
		// Prove the data path terminates at the new host.
		sep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: sep.Buf, LKey: sep.MR.LKey(), Len: 64})
		cp.ClientNode.Write(cep.Buf, []byte("stale-then-fresh"))
		cep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: 16})
		if wc := sep.RCQ.Wait(p); wc.Status != verbs.WCSuccess {
			phase3.Trigger(errors.New("post-migration transfer failed"))
			return
		}
		phase3.Trigger(nil)
	})
	tb.Eng.Run()
	if err := phase3.Value(); err != nil {
		t.Fatalf("reconnect with stale cache: %v", err)
	}
	if tb.Backend(0).Stats.StaleRenames == 0 {
		t.Fatal("client backend never flagged the stale mapping")
	}
	if tb.Backend(0).Stats.Invalidations == 0 {
		t.Fatal("stale mapping was not invalidated")
	}
	if tb.Hosts[2].Dev.Stats.RxMsgs == 0 {
		t.Fatal("no traffic reached the migration target host")
	}
}

// TestVBondIPChangeWithWarmCache: the server re-addresses its vNIC while
// the client holds a warm cache entry for the OLD vGID and the controller's
// invalidation push is delayed. Connecting to the old vGID must fail (the
// re-query finds no mapping), and connecting to the new vGID must succeed.
func TestVBondIPChangeWithWarmCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ctrl.NotifyDelay = simtime.Ms(50)
	cp, err := NewConnectedPair(cfg, ModeMasQ) // warms both GID caches
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	oldGID := cp.Server.GID

	// Tenant re-addresses the server VM: vBond unregisters the old vGID
	// and registers the new one; the client's invalidation is in flight
	// for the next 50ms.
	if err := cp.ServerNode.VM.VNIC.SetIP(packet.NewIP(192, 168, 1, 50)); err != nil {
		t.Fatal(err)
	}
	cp.ServerNode.VIP = packet.NewIP(192, 168, 1, 50)

	done := simtime.NewEvent[error](tb.Eng)
	var staleErr error
	tb.Eng.Spawn("test", func(p *simtime.Proc) {
		// A fresh client QP aimed at the OLD vGID: the warm cache entry
		// must not let the connection through.
		cep, err := cp.ClientNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		staleErr = cep.ConnectRC(p, verbs.ConnInfo{GID: oldGID, QPN: cp.Server.QP.Num()})

		// Reconnect to the NEW vGID end to end.
		sep, err := cp.ServerNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		cep2, err := cp.ClientNode.Setup(p, DefaultEndpointOpts())
		if err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep2, 7100)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if staleErr == nil {
		t.Fatal("connect to the re-addressed vGID succeeded off the stale cache")
	}
	if !strings.Contains(staleErr.Error(), "no mapping") {
		t.Fatalf("stale connect error = %v, want a no-mapping failure after re-query", staleErr)
	}
	if tb.Backend(0).Stats.StaleRenames == 0 {
		t.Fatal("warm-cache hit was not detected as stale")
	}
	if tb.Backend(0).Stats.Invalidations == 0 {
		t.Fatal("stale cache entry was never invalidated")
	}
}
