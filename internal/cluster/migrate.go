// Transparent live migration (Testbed.LiveMigrateNode): move a MasQ VM
// with live RDMA connections to another host without the application
// noticing. This is the MigrOS-style alternative to the paper's Sec. 5
// application-assisted scheme (Testbed.MigrateNode): instead of asking the
// app to tear its connections down, the engine freezes the VM, carries the
// QP/CQ/MR/PD state and guest memory across, and the controller renames
// the endpoint in place on every peer.
//
// Timeline and commit discipline:
//
//	pre-copy (VM live)   iterative dirty-page rounds; converges when the
//	                     remaining dirty set fits the stop-copy threshold
//	Suspend RPC          peers quiesce their QPs toward the endpoint so
//	                     the blackout cannot exhaust their retry budgets;
//	                     failure here aborts cleanly — nothing was touched
//	freeze (blackout)    MigrateOut: QPs quiesced and detached, RCT rows
//	                     captured and erased, MRs unpinned, pool flushed
//	stop-copy            the final dirty set crosses while all is dark
//	restore              MigrateIn: re-pin, adopt under fresh QPNs and
//	                     preserved MR keys, re-validate RCT rows against
//	                     the destination's policy
//	Move RPC (commit)    the controller atomically republishes the mapping
//	                     and pushes the QPN translations; peers rename
//	                     their connections in place and resume with PSN
//	                     replay. Failure here rolls everything back to the
//	                     source — no half-migrated VM, no leaked RCT rows,
//	                     no orphaned controller mapping.
package cluster

import (
	"fmt"

	"masq/internal/controller"
	"masq/internal/masq"
	"masq/internal/simtime"
)

// MigrateOpts tunes the live-migration engine. The zero value is a sane
// default: line-rate copy, idle guest, 256 KiB stop-copy threshold.
type MigrateOpts struct {
	// DirtyRate is how fast the guest dirties memory during pre-copy, in
	// bytes per second. Zero models an idle guest (one pre-copy round).
	DirtyRate float64
	// CopyBandwidth is the migration stream's throughput in bytes per
	// second. Zero means the RNIC line rate.
	CopyBandwidth float64
	// StopCopyThreshold ends pre-copy once the remaining dirty set is at
	// or below this many bytes (zero: 256 KiB).
	StopCopyThreshold uint64
	// MaxPreCopyRounds bounds the iterative pre-copy for guests whose
	// dirty rate outruns the copy bandwidth (zero: 8).
	MaxPreCopyRounds int
}

// MigrateReport is the engine's accounting: what the blackout cost and
// where the time went.
type MigrateReport struct {
	// Pre-copy phase (the VM keeps running).
	PreCopyRounds int
	PreCopyBytes  uint64
	PreCopyTime   simtime.Duration

	// Blackout phase and its components.
	Blackout      simtime.Duration
	FreezeTime    simtime.Duration // source capture: QP quiesce/detach, RCT erase, MR unpin
	StopCopyTime  simtime.Duration // final dirty set crossing
	RestoreTime   simtime.Duration // destination restore: re-pin, adopt, re-validate
	CommitTime    simtime.Duration // controller Move RPC
	StopCopyBytes uint64

	// Capture size.
	QPs, MRs, Conns int

	// RolledBack is set when the commit failed and the VM was cleanly
	// re-adopted at the source (the error return names the cause).
	RolledBack bool
}

// LiveMigrateNode transparently live-migrates a MasQ node's VM to another
// host while its RDMA connections stay established. It must run inside a
// simulation proc (it pays RPC, copy, and per-resource costs in virtual
// time). On success the node's frontend, provider, and memory handles are
// unchanged — the session moved under them. On a commit failure the VM is
// rolled back to the source and the error says why; the report's
// RolledBack flag distinguishes a rollback from an abort that never froze
// the VM.
func (tb *Testbed) LiveMigrateNode(p *simtime.Proc, n *Node, dstHost int, opts MigrateOpts) (*MigrateReport, error) {
	if n.Mode != ModeMasQ && n.Mode != ModeMasQPF {
		return nil, fmt.Errorf("cluster: transparent live migration needs a MasQ VF/PF node (got %v)", n.Mode)
	}
	if tb.Sharded != nil && tb.Sharded.NumShards() > 1 {
		// The migration engine mutates source and destination host state
		// from one proc, which is not safe across engine shards.
		return nil, fmt.Errorf("cluster: transparent live migration is not supported with engine Shards > 1")
	}
	if n.crashed {
		return nil, fmt.Errorf("cluster: %s has crashed", n.Name)
	}
	fe, ok := n.Provider.(*masq.Frontend)
	if !ok {
		return nil, fmt.Errorf("cluster: %s has no MasQ frontend", n.Name)
	}
	if dstHost < 0 || dstHost >= len(tb.Hosts) {
		return nil, fmt.Errorf("cluster: no host %d", dstHost)
	}
	rep := &MigrateReport{}
	src, dst := n.Host, tb.Hosts[dstHost]
	if src == dst {
		return rep, nil // same-host: nothing to copy, nothing to re-register
	}
	srcB, dstB := tb.Backend(hostIndex(tb, src)), tb.Backend(dstHost)

	bw := opts.CopyBandwidth
	if bw <= 0 {
		bw = tb.Cfg.RNIC.LineRate / 8
	}
	threshold := float64(opts.StopCopyThreshold)
	if threshold <= 0 {
		threshold = 256 << 10
	}
	maxRounds := opts.MaxPreCopyRounds
	if maxRounds <= 0 {
		maxRounds = 8
	}

	// Phase 1 — iterative pre-copy, VM live: round i ships the pages
	// dirtied during round i-1; the dirty set shrinks geometrically when
	// the copy outruns the dirty rate and the blackout therefore depends
	// on the dirty rate, not the image size.
	image := float64(n.VM.GPA.MappedBytes())
	w := image
	preStart := p.Now()
	for round := 0; round < maxRounds; round++ {
		dt := w / bw
		p.Sleep(copyTime(w, bw))
		rep.PreCopyRounds++
		rep.PreCopyBytes += uint64(w)
		w = opts.DirtyRate * dt
		if w > image {
			w = image
		}
		if w <= threshold {
			break
		}
	}
	rep.PreCopyTime = p.Now().Sub(preStart)
	rep.StopCopyBytes = uint64(w)

	// Phase 2 — announce the freeze. Peers quiesce their QPs toward the
	// endpoint; a failure (controller dark) aborts with nothing touched.
	vb := fe.VBond()
	key := controller.Key{VNI: vb.VNI(), VGID: vb.GID()}
	if err := tb.CtrlSvc.Suspend(p, key); err != nil {
		return rep, fmt.Errorf("cluster: live migration of %s aborted before freeze: %w", n.Name, err)
	}

	// Phase 3 — blackout: freeze and capture on the source.
	blackStart := p.Now()
	cap, err := srcB.MigrateOut(p, fe)
	if err != nil {
		// The capture refuses before mutating anything (wrong backend,
		// dead session, shared mode). Wake the peers the Suspend push
		// quiesced; if this push is lost too, their suspend TTL fires.
		_ = tb.CtrlSvc.Move(p, key, srcB.HostMapping(), nil)
		return rep, fmt.Errorf("cluster: live migration of %s aborted: %w", n.Name, err)
	}
	rep.QPs, rep.MRs, rep.Conns = cap.Counts()
	rep.FreezeTime = p.Now().Sub(blackStart)

	// Phase 4 — stop-copy: the final dirty set crosses, then the guest
	// memory re-homes into the destination's address space.
	scStart := p.Now()
	p.Sleep(copyTime(w, bw))
	if err := n.VM.LiveMigrateTo(dst); err != nil {
		return tb.rollbackLive(p, n, rep, cap, key, srcB, nil, err)
	}
	rep.StopCopyTime = p.Now().Sub(scStart)

	// Phase 5 — restore on the destination.
	rsStart := p.Now()
	if err := dstB.MigrateIn(p, cap, false); err != nil {
		// MigrateIn fails only before mutating (no VF budget, unknown
		// tenant): move the memory back and re-adopt at the source.
		if rbErr := n.VM.LiveMigrateTo(src); rbErr != nil {
			return rep, fmt.Errorf("cluster: live migration of %s failed (%v) and memory rollback failed: %w", n.Name, err, rbErr)
		}
		return tb.rollbackLive(p, n, rep, cap, key, srcB, nil, err)
	}
	rep.RestoreTime = p.Now().Sub(rsStart)

	// Phase 6 — commit: re-home the overlay endpoint, then the Move RPC
	// atomically republishes the mapping and pushes the QPN translations.
	if err := tb.Fab.MoveEndpoint(n.VM.VNIC, dst.VSwitch); err != nil {
		return tb.rollbackLive(p, n, rep, cap, key, srcB, dstB, err)
	}
	cmStart := p.Now()
	if err := tb.CtrlSvc.Move(p, key, dstB.HostMapping(), cap.QPNMap); err != nil {
		// The realistic chaos case: the controller is unreachable at the
		// commit point. Nothing was published — put the endpoint back.
		if fbErr := tb.Fab.MoveEndpoint(n.VM.VNIC, src.VSwitch); fbErr != nil {
			return rep, fmt.Errorf("cluster: live migration of %s failed (%v) and endpoint rollback failed: %w", n.Name, err, fbErr)
		}
		return tb.rollbackLive(p, n, rep, cap, key, srcB, dstB, err)
	}
	rep.CommitTime = p.Now().Sub(cmStart)
	cap.Commit(p)
	n.Host = dst
	rep.Blackout = p.Now().Sub(blackStart)
	return rep, nil
}

// rollbackLive re-adopts a captured session at the source after a failed
// migration: evict whatever the destination restored, move the guest
// memory back if it crossed, re-adopt under the original QPNs, reactivate
// the original bond, and resume — then republish the original mapping so
// suspended peers wake (their TTL covers a lost push). The returned error
// wraps the cause; rep.RolledBack marks the clean rollback.
func (tb *Testbed) rollbackLive(p *simtime.Proc, n *Node, rep *MigrateReport, cap *masq.MigrCapture,
	key controller.Key, srcB, dstB *masq.Backend, cause error) (*MigrateReport, error) {
	if dstB != nil {
		dstB.Evict(p, cap)
		if err := n.VM.LiveMigrateTo(n.Host); err != nil {
			return rep, fmt.Errorf("cluster: live migration of %s failed (%v) and memory rollback failed: %w", n.Name, cause, err)
		}
	}
	if err := srcB.MigrateIn(p, cap, true); err != nil {
		return rep, fmt.Errorf("cluster: live migration of %s failed (%v) and source re-adoption failed: %w", n.Name, cause, err)
	}
	cap.FinishRollback(p)
	// Best-effort resume push for the peers the Suspend quiesced: the
	// mapping republished is the source's own, so a delivered push renames
	// nothing and merely wakes them; a lost push leaves the suspend TTL to
	// do the same.
	_ = tb.CtrlSvc.Move(p, key, srcB.HostMapping(), nil)
	rep.RolledBack = true
	rep.Blackout = 0
	return rep, fmt.Errorf("cluster: live migration of %s rolled back: %w", n.Name, cause)
}

// copyTime converts a byte count and a bytes-per-second bandwidth into
// virtual time.
func copyTime(bytes, bw float64) simtime.Duration {
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return simtime.Duration(bytes / bw * 1e9)
}
