package cluster

import (
	"fmt"
	"strings"
	"testing"

	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// shardedWorkload builds a 4-host ToR testbed with one SR-IOV node per
// host and runs three RDMA pairs — (0←1), (2←3), (0←3) — each side as a
// proc on its own host's engine, syncing only through the out-of-band
// overlay channel and RDMA frames. It returns one virtual-time log per
// node; the logs must be byte-identical for every shard count.
func shardedWorkload(t *testing.T, shards int) []string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hosts = 4
	cfg.Shards = shards
	tb := New(cfg)
	const vni = 100
	tb.AddTenant(vni, "tenant")
	tb.AllowAll(vni)

	nodes := make([]*Node, 4)
	for i := range nodes {
		n, err := tb.NewNode(ModeSRIOV, i, vni, packet.NewIP(10, 0, 0, byte(i+1)))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
	}

	logs := make([]*strings.Builder, 4)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}
	logf := func(i int, p *simtime.Proc, format string, args ...any) {
		fmt.Fprintf(logs[i], "%d n%d ", p.Now(), i)
		fmt.Fprintf(logs[i], format, args...)
		logs[i].WriteByte('\n')
	}

	serve := func(idx int, port uint16, tag string) {
		n := nodes[idx]
		tb.HostEngine(idx).Spawn(fmt.Sprintf("srv%d-%s", idx, tag), func(p *simtime.Proc) {
			ep, err := n.Setup(p, DefaultEndpointOpts())
			if err != nil {
				t.Errorf("server %d setup: %v", idx, err)
				return
			}
			peer, err := ep.ExchangeServer(p, port)
			if err != nil {
				t.Errorf("server %d exchange: %v", idx, err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Errorf("server %d connect: %v", idx, err)
				return
			}
			ep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: ep.Buf, LKey: ep.MR.LKey(), Len: ep.Len})
			wc := ep.RCQ.Wait(p)
			got := make([]byte, wc.ByteLen)
			n.Read(ep.Buf, got)
			logf(idx, p, "recv %s status=%v payload=%q", tag, wc.Status, got)
		})
	}
	dial := func(idx, serverIdx int, port uint16, tag string) {
		n := nodes[idx]
		tb.HostEngine(idx).Spawn(fmt.Sprintf("cli%d-%s", idx, tag), func(p *simtime.Proc) {
			ep, err := n.Setup(p, DefaultEndpointOpts())
			if err != nil {
				t.Errorf("client %d setup: %v", idx, err)
				return
			}
			peer, err := ep.ExchangeClient(p, nodes[serverIdx].VIP, port, simtime.Ms(50))
			if err != nil {
				t.Errorf("client %d exchange: %v", idx, err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Errorf("client %d connect: %v", idx, err)
				return
			}
			logf(idx, p, "connected %s", tag)
			// Give the server a beat to post its receive.
			p.Sleep(simtime.Us(50))
			msg := []byte("hello-" + tag)
			n.Write(ep.Buf, msg)
			ep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: ep.Buf, LKey: ep.MR.LKey(), Len: len(msg)})
			wc := ep.SCQ.Wait(p)
			logf(idx, p, "sent %s status=%v", tag, wc.Status)
		})
	}

	serve(0, 7000, "a")
	dial(1, 0, 7000, "a")
	serve(2, 7001, "b")
	dial(3, 2, 7001, "b")
	serve(0, 7002, "c")
	dial(3, 0, 7002, "c")

	tb.Run()
	out := make([]string, 4)
	for i, b := range logs {
		if b.Len() == 0 {
			t.Fatalf("node %d logged nothing (shards=%d); pending procs: %v",
				i, shards, tb.PendingProcs())
		}
		out[i] = b.String()
	}
	return out
}

// TestShardedClusterDeterminismAB: the full stack — SR-IOV verbs, RNIC
// pipelines, overlay OOB, ToR switch — produces byte-identical virtual
// time logs on 1 (oracle), 2, and 4 shards.
func TestShardedClusterDeterminismAB(t *testing.T) {
	oracle := shardedWorkload(t, 1)
	for _, shards := range []int{2, 4} {
		got := shardedWorkload(t, shards)
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("node %d log diverges between 1 and %d shards:\noracle:\n%s\ngot:\n%s",
					i, shards, oracle[i], got[i])
			}
		}
	}
}

// TestShardedRejectsUnsupportedModes: with more than one shard, modes that
// use the shared controller RPC path are refused with a clear error.
func TestShardedRejectsUnsupportedModes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 4
	cfg.Shards = 2
	tb := New(cfg)
	tb.AddTenant(100, "t")
	if _, err := tb.NewNode(ModeMasQ, 0, 100, packet.NewIP(10, 0, 0, 1)); err == nil {
		t.Fatal("ModeMasQ node allowed on a 2-shard testbed")
	}
	if _, err := tb.NewNode(ModeFreeFlow, 0, 100, packet.NewIP(10, 0, 0, 2)); err == nil {
		t.Fatal("ModeFreeFlow node allowed on a 2-shard testbed")
	}
	if _, err := tb.NewNode(ModeHost, 0, 100, packet.NewIP(10, 0, 0, 3)); err != nil {
		t.Fatalf("ModeHost refused: %v", err)
	}
}

// TestShardedMasqOracleMode: Shards == 1 keeps the full MasQ stack
// available (the oracle runs everything through the windowed machinery),
// and its virtual timings match the classic unsharded engine.
func TestShardedMasqOracleMode(t *testing.T) {
	run := func(shards int) simtime.Time {
		cfg := DefaultConfig()
		cfg.Shards = shards
		tb := New(cfg)
		const vni = 7
		tb.AddTenant(vni, "t")
		tb.AllowAll(vni)
		s, err := tb.NewNode(ModeMasQ, 0, vni, packet.NewIP(10, 0, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		c, err := tb.NewNode(ModeMasQ, 1, vni, packet.NewIP(10, 0, 0, 2))
		if err != nil {
			t.Fatal(err)
		}
		var connected simtime.Time
		tb.HostEngine(0).Spawn("srv", func(p *simtime.Proc) {
			ep, err := s.Setup(p, DefaultEndpointOpts())
			if err != nil {
				t.Error(err)
				return
			}
			peer, err := ep.ExchangeServer(p, 7000)
			if err != nil {
				t.Error(err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Error(err)
			}
		})
		tb.HostEngine(1).Spawn("cli", func(p *simtime.Proc) {
			ep, err := c.Setup(p, DefaultEndpointOpts())
			if err != nil {
				t.Error(err)
				return
			}
			peer, err := ep.ExchangeClient(p, s.VIP, 7000, simtime.Ms(50))
			if err != nil {
				t.Error(err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Error(err)
				return
			}
			connected = p.Now()
		})
		tb.Run()
		if connected == 0 {
			t.Fatalf("setup never completed (shards=%d); pending: %v", shards, tb.PendingProcs())
		}
		return connected
	}
	unsharded, oracle := run(0), run(1)
	if unsharded != oracle {
		t.Fatalf("MasQ connect instant: unsharded=%v vs 1-shard oracle=%v", unsharded, oracle)
	}
}
