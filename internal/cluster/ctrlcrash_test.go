package cluster_test

// The controller-crash soak: the SDN controller dies mid-workload, losing
// its mapping table and pending pushes, while a link cut forces a stream to
// re-establish its connection during the outage. The edge must carry the
// system: grace mode serves the rename from the still-fresh cache, lease
// renewals detect the restart (epoch bump), re-registration reconverges the
// controller's table to exactly the union of live vBond registrations, and
// the grace connection is re-validated once the controller returns. Two
// same-seed runs — with and without the crash schedule — must each be
// byte-identical.

import (
	"bytes"
	"fmt"
	"testing"

	"masq/internal/apps/perftest"
	"masq/internal/apps/reconnect"
	"masq/internal/chaos"
	"masq/internal/cluster"
	"masq/internal/controller"
	"masq/internal/masq"
	"masq/internal/packet"
	"masq/internal/simtime"
)

// ctrlCrashSummary runs the controller-crash soak once and returns a
// deterministic digest. With crash=false the same workload runs without the
// controller outage (the control arm of the determinism check).
func ctrlCrashSummary(t *testing.T, seed int64, crash bool) []byte {
	t.Helper()
	cfg := shortRetry(cluster.DefaultConfig())
	cfg.Hosts = 3
	cfg.Masq.PushDown = true
	cfg.Masq.GraceTTL = simtime.Ms(30)
	cfg.Masq.LeaseRenewEvery = simtime.Ms(1)
	cfg.Ctrl.LeaseTTL = simtime.Ms(20)
	cfg.Ctrl.Seed = seed
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	mk := func(host int, last byte) *cluster.Node {
		n, err := tb.NewNode(cluster.ModeMasQ, host, vni, packet.NewIP(192, 168, 11, last))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c0, s0 := mk(0, 1), mk(1, 2) // stream A: host0 → host1, killed by the link cut
	c1, s1 := mk(2, 3), mk(1, 4) // stream B: host2 → host1, rides out the outage
	nodes := []*cluster.Node{c0, s0, c1, s1}

	horizon := simtime.Ms(50)
	// The controller is dark for [15ms, 25ms). The link cut [16ms, 18ms)
	// exhausts stream A's retransmissions, so its reconnect — and the
	// RConnrename it needs — lands inside the controller outage: only the
	// grace path can serve it.
	if crash {
		tb.CrashController(simtime.Time(simtime.Ms(15)), simtime.Time(simtime.Ms(25)))
	}
	tb.Chaos.Arm(chaos.Plan{Seed: seed, Events: chaos.Outage(tb.HostLink(0),
		simtime.Time(simtime.Ms(16)), simtime.Time(simtime.Ms(18)))})
	tb.StartLeases(simtime.Time(horizon))

	pol := reconnect.Policy{
		MaxAttempts: 12,
		Backoff:     simtime.Us(500),
		MaxBackoff:  simtime.Ms(4),
		DialTimeout: simtime.Ms(5),
	}
	resA := perftest.StartResilientWriteBW(tb, c0, s0, 7600, 8192, horizon, pol)
	resB := perftest.StartResilientWriteBW(tb, c1, s1, 7601, 8192, horizon, pol)

	// The reconvergence snapshot is taken at 45ms — 20ms after the restart,
	// with lease renewals still running — because the engine drains well
	// past the horizon (lingering reconnect timers), by which time the
	// leases have lazily expired and Dump would report an empty table.
	var table map[controller.Key]controller.Mapping
	caches := make([]map[controller.Key]controller.Mapping, cfg.Hosts)
	tb.Eng.At(simtime.Time(simtime.Ms(45)), func() {
		table = tb.Ctrl.Dump(vni)
		for i, be := range tb.Backends {
			if be != nil {
				caches[i] = be.CacheSnapshot()
			}
		}
	})
	tb.Eng.Run()

	if !resA.Triggered() || !resB.Triggered() {
		t.Fatalf("streams stuck (pending procs: %v)", tb.Eng.PendingProcs())
	}
	a, b := resA.Value(), resB.Value()
	if a.Msgs == 0 || b.Msgs == 0 {
		t.Fatalf("a stream moved no data: A=%+v B=%+v", a, b)
	}
	if a.GaveUp || b.GaveUp {
		t.Fatalf("a stream gave up reconnecting: A=%+v B=%+v", a, b)
	}

	// Reconvergence: the controller's table must equal the union of live
	// vBond registrations — no lost endpoint, no resurrected ghost.
	if len(table) != len(nodes) {
		t.Fatalf("controller has %d mappings at 45ms, want %d", len(table), len(nodes))
	}
	for _, n := range nodes {
		k, m, ok := n.Provider.(*masq.Frontend).VBond().Registration()
		if !ok {
			t.Fatalf("node %s holds no registration", n.Name)
		}
		if got, ok := table[k]; !ok || got != m {
			t.Fatalf("controller table diverged for %s: got %+v ok=%v want %+v",
				n.Name, got, ok, m)
		}
	}
	// No stale mapping survives: every cache entry agrees with the
	// authoritative table (a stale-epoch push that slipped through the
	// fence would surface here).
	for i, cache := range caches {
		for k, m := range cache {
			if got, ok := table[k]; !ok || got != m {
				t.Fatalf("backend %d caches stale mapping %+v for %+v", i, m, k)
			}
		}
	}

	var grace, reval, epochBumps uint64
	for _, be := range tb.Backends {
		if be == nil {
			continue
		}
		grace += be.Stats.GraceRenames
		reval += be.Stats.GraceRevalidated
		epochBumps += be.Stats.EpochBumps
	}
	if crash {
		if tb.Ctrl.Epoch() != 2 || tb.Ctrl.Stats.Crashes != 1 || tb.Ctrl.Stats.Restarts != 1 {
			t.Fatalf("controller epoch/crashes/restarts = %d/%d/%d, want 2/1/1",
				tb.Ctrl.Epoch(), tb.Ctrl.Stats.Crashes, tb.Ctrl.Stats.Restarts)
		}
		if grace == 0 {
			t.Fatal("no rename was grace-served during the outage")
		}
		if reval == 0 {
			t.Fatal("no grace connection was re-validated after the restart")
		}
		if epochBumps == 0 {
			t.Fatal("no backend observed the epoch bump")
		}
		for i, be := range tb.Backends {
			if be != nil && be.Epoch() != tb.Ctrl.Epoch() {
				t.Fatalf("backend %d stuck at epoch %d, controller at %d",
					i, be.Epoch(), tb.Ctrl.Epoch())
			}
		}
	} else {
		if tb.Ctrl.Epoch() != 1 || grace != 0 {
			t.Fatalf("control arm saw epoch %d, grace %d; want 1, 0", tb.Ctrl.Epoch(), grace)
		}
	}

	var sum bytes.Buffer
	sum.Write(tb.Chaos.TraceBytes())
	fmt.Fprintf(&sum, "\nA msgs=%d bytes=%d fatals=%d reconnects=%d\n", a.Msgs, a.Bytes, a.Fatals, a.Reconnects)
	fmt.Fprintf(&sum, "B msgs=%d bytes=%d fatals=%d reconnects=%d\n", b.Msgs, b.Bytes, b.Fatals, b.Reconnects)
	cs := tb.Ctrl.Stats
	fmt.Fprintf(&sum, "ctrl epoch=%d crashes=%d restarts=%d renewals=%d expired=%d lost=%d wiped=%d hwm=%d table=%d\n",
		tb.Ctrl.Epoch(), cs.Crashes, cs.Restarts, cs.Renewals, cs.LeaseExpired,
		cs.LostUpdates, cs.NotifyWiped, cs.NotifyQueueHWM, len(table))
	for i, be := range tb.Backends {
		if be == nil {
			continue
		}
		fmt.Fprintf(&sum, "backend%d epoch=%d grace=%d/%d reval=%d resets=%d fenced=%d gaps=%d resyncs=%d renewals=%d/%d bumps=%d\n",
			i, be.Epoch(), be.Stats.GraceRenames, be.Stats.GraceExpired,
			be.Stats.GraceRevalidated, be.Stats.GraceResets, be.Stats.FencedNotifies,
			be.Stats.NotifyGaps, be.Stats.Resyncs,
			be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures, be.Stats.EpochBumps)
	}
	return sum.Bytes()
}

// TestCtrlCrashSoak is the controller-crash capstone: the control plane
// dies and restarts empty under live traffic and a concurrent link cut.
// Invariants: streams recover, renames are grace-served during the outage
// and re-validated after it, the controller's table reconverges to exactly
// the live registrations at the next epoch, no backend caches a stale
// mapping, and both the crash and no-crash schedules are pure functions of
// the seed.
func TestCtrlCrashSoak(t *testing.T) {
	withA := ctrlCrashSummary(t, 4711, true)
	withB := ctrlCrashSummary(t, 4711, true)
	if !bytes.Equal(withA, withB) {
		t.Fatalf("same-seed crash runs diverged:\n--- A ---\n%s\n--- B ---\n%s", withA, withB)
	}
	withoutA := ctrlCrashSummary(t, 4711, false)
	withoutB := ctrlCrashSummary(t, 4711, false)
	if !bytes.Equal(withoutA, withoutB) {
		t.Fatalf("same-seed no-crash runs diverged:\n--- A ---\n%s\n--- B ---\n%s", withoutA, withoutB)
	}
	if bytes.Equal(withA, withoutA) {
		t.Fatal("crash and no-crash digests are identical — the outage had no observable effect")
	}
	if len(withA) == 0 {
		t.Fatal("empty soak summary")
	}
}

// TestRandomPlanWithCtrlCrashes checks the chaos generator's controller-
// crash option: the base plan is byte-for-byte unchanged (existing seeds
// stay reproducible) and the added outages are in-horizon crash/restart
// pairs that actually fire.
func TestRandomPlanWithCtrlCrashes(t *testing.T) {
	cfg := cluster.DefaultConfig()
	tb := cluster.New(cfg)
	horizon := simtime.Ms(40)
	base := chaos.RandomPlan(77, tb.Links, horizon, 5, 0.3)
	ext := chaos.RandomPlan(77, tb.Links, horizon, 5, 0.3, chaos.WithCtrlCrashes(2))
	if len(ext.Events) != len(base.Events)+2 {
		t.Fatalf("extended plan has %d events, want %d", len(ext.Events), len(base.Events)+2)
	}
	crashes := 0
	for _, ev := range ext.Events {
		if ev.Kind == chaos.CtrlCrash {
			crashes++
			if ev.At <= 0 || simtime.Duration(ev.Until) > horizon || ev.Until <= ev.At {
				t.Fatalf("bad outage window [%v, %v)", ev.At, ev.Until)
			}
		}
	}
	if crashes != 2 {
		t.Fatalf("extended plan has %d ctrl crashes, want 2", crashes)
	}
	// Same seed, same options → identical plan (purity).
	again := chaos.RandomPlan(77, tb.Links, horizon, 5, 0.3, chaos.WithCtrlCrashes(2))
	if fmt.Sprintf("%+v", ext.Events) != fmt.Sprintf("%+v", again.Events) {
		t.Fatal("same-seed plans with options diverged")
	}
	tb.Chaos.Arm(ext)
	tb.Eng.Run()
	if tb.Chaos.Stats.CtrlCrashes != 2 || tb.Chaos.Stats.CtrlRestarts != 2 {
		t.Fatalf("applied %d crashes / %d restarts, want 2/2",
			tb.Chaos.Stats.CtrlCrashes, tb.Chaos.Stats.CtrlRestarts)
	}
	if tb.Ctrl.Epoch() != 3 {
		t.Fatalf("controller epoch %d after two restarts, want 3", tb.Ctrl.Epoch())
	}
}
