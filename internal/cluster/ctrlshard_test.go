package cluster_test

// The sharded-controller failover soak: the generalized form of the
// controller-crash soak. The control plane runs as four shards, each with a
// push-replicated standby; one shard's primary is crashed mid-workload,
// while a link cut forces a stream to re-establish its connection around
// the failover window. Invariants: the standby is promoted with the
// replicated table under a bumped epoch on that shard ONLY — the other
// shards' epochs, tables, and connections are undisturbed; no stale mapping
// survives reconciliation; streams recover; and both the crash and no-crash
// schedules are pure functions of the seed.

import (
	"bytes"
	"fmt"
	"testing"

	"masq/internal/apps/perftest"
	"masq/internal/apps/reconnect"
	"masq/internal/chaos"
	"masq/internal/cluster"
	"masq/internal/controller"
	"masq/internal/masq"
	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

// ctrlShardFailoverSummary runs the sharded-controller soak once and
// returns a deterministic digest. With crash=false the same workload runs
// without the shard failure (the control arm of the determinism check).
func ctrlShardFailoverSummary(t *testing.T, seed int64, crash bool) []byte {
	t.Helper()
	cfg := shortRetry(cluster.DefaultConfig())
	cfg.Hosts = 3
	cfg.CtrlShards = 4
	cfg.Masq.PushDown = true
	cfg.Masq.GraceTTL = simtime.Ms(30)
	cfg.Masq.LeaseRenewEvery = simtime.Ms(1)
	cfg.Ctrl.LeaseTTL = simtime.Ms(20)
	cfg.Ctrl.Seed = seed
	cfg.Ctrl.Replicate = true
	cfg.Ctrl.ReplDelay = simtime.Us(20)
	cfg.Ctrl.FailoverDetect = simtime.Ms(2)
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	mk := func(host int, last byte) *cluster.Node {
		n, err := tb.NewNode(cluster.ModeMasQ, host, vni, packet.NewIP(192, 168, 12, last))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c0, s0 := mk(0, 1), mk(1, 2) // stream A: host0 → host1, killed by the link cut
	c1, s1 := mk(2, 3), mk(1, 4) // stream B: host2 → host1, rides out the failover
	nodes := []*cluster.Node{c0, s0, c1, s1}

	// The victim is the shard owning stream A's client registration, so the
	// reconnect's RConnrename races the failover on that exact shard.
	k0, _, ok := c0.Provider.(*masq.Frontend).VBond().Registration()
	if !ok {
		t.Fatal("c0 holds no registration")
	}
	victim := tb.CtrlSharded.Owner(k0)

	horizon := simtime.Ms(50)
	// Shard crash at 15ms; the standby promotes at 17ms (FailoverDetect).
	// The restart edge at 25ms is a no-op — the promotion already happened.
	// The link cut [16ms, 18ms) exhausts stream A's retransmissions, so its
	// reconnect lands around the promotion instant.
	events := chaos.Outage(tb.HostLink(0),
		simtime.Time(simtime.Ms(16)), simtime.Time(simtime.Ms(18)))
	if crash {
		events = append(events, chaos.ShardCrash(victim,
			simtime.Time(simtime.Ms(15)), simtime.Time(simtime.Ms(25))))
	}
	tb.Chaos.Arm(chaos.Plan{Seed: seed, Events: events})
	tb.StartLeases(simtime.Time(horizon))

	pol := reconnect.Policy{
		MaxAttempts: 12,
		Backoff:     simtime.Us(500),
		MaxBackoff:  simtime.Ms(4),
		DialTimeout: simtime.Ms(5),
	}
	resA := perftest.StartResilientWriteBW(tb, c0, s0, 7700, 8192, horizon, pol)
	resB := perftest.StartResilientWriteBW(tb, c1, s1, 7701, 8192, horizon, pol)

	// Snapshot at 45ms, with lease renewals still running (the engine drains
	// past the horizon, by which time leases have lazily expired).
	var table map[controller.Key]controller.Mapping
	caches := make([]map[controller.Key]controller.Mapping, cfg.Hosts)
	shardStats := make([]controller.ShardStats, cfg.CtrlShards)
	tb.Eng.At(simtime.Time(simtime.Ms(45)), func() {
		table = tb.CtrlSharded.Dump(vni)
		for i := range shardStats {
			shardStats[i] = tb.CtrlSharded.ShardStats(i)
		}
		for i, be := range tb.Backends {
			if be != nil {
				caches[i] = be.CacheSnapshot()
			}
		}
	})
	tb.Eng.Run()

	if !resA.Triggered() || !resB.Triggered() {
		t.Fatalf("streams stuck (pending procs: %v)", tb.Eng.PendingProcs())
	}
	a, b := resA.Value(), resB.Value()
	if a.Msgs == 0 || b.Msgs == 0 {
		t.Fatalf("a stream moved no data: A=%+v B=%+v", a, b)
	}
	if a.GaveUp || b.GaveUp {
		t.Fatalf("a stream gave up reconnecting: A=%+v B=%+v", a, b)
	}

	// Reconvergence: the union of the shard tables must equal the union of
	// live vBond registrations — no lost endpoint, no resurrected ghost.
	if len(table) != len(nodes) {
		t.Fatalf("controller has %d mappings at 45ms, want %d", len(table), len(nodes))
	}
	for _, n := range nodes {
		k, m, ok := n.Provider.(*masq.Frontend).VBond().Registration()
		if !ok {
			t.Fatalf("node %s holds no registration", n.Name)
		}
		if got, ok := table[k]; !ok || got != m {
			t.Fatalf("controller table diverged for %s: got %+v ok=%v want %+v",
				n.Name, got, ok, m)
		}
	}
	// No stale mapping survives: every cache entry agrees with the
	// authoritative table.
	for i, cache := range caches {
		for k, m := range cache {
			if got, ok := table[k]; !ok || got != m {
				t.Fatalf("backend %d caches stale mapping %+v for %+v", i, m, k)
			}
		}
	}

	var resets, epochBumps uint64
	for _, be := range tb.Backends {
		if be == nil {
			continue
		}
		resets += be.Stats.GraceResets
		epochBumps += be.Stats.EpochBumps
	}
	// Replication means the promoted table is (nearly) complete: no grace
	// connection should ever be RESET — at worst it is re-validated against
	// the promoted incarnation.
	if resets != 0 {
		t.Fatalf("%d grace connections were reset; replication should prevent any", resets)
	}
	if crash {
		// The failover's blast radius is exactly one shard: epoch bump and
		// failover count on the victim, every other shard untouched.
		for i, st := range shardStats {
			if i == victim {
				if st.Epoch != 2 || st.Failovers != 1 || st.Down {
					t.Fatalf("victim shard %d at 45ms: %+v, want epoch 2 after one failover", i, st)
				}
			} else if st.Epoch != 1 || st.Failovers != 0 {
				t.Fatalf("shard %d disturbed by shard %d's failover: %+v", i, victim, st)
			}
		}
		if tb.Chaos.Stats.ShardCrashes != 1 {
			t.Fatalf("chaos fired %d shard crashes, want 1", tb.Chaos.Stats.ShardCrashes)
		}
		if epochBumps == 0 {
			t.Fatal("no backend observed the per-shard epoch bump")
		}
		for i, be := range tb.Backends {
			if be != nil && be.ShardEpoch(victim) != 2 {
				t.Fatalf("backend %d stuck at epoch %d on the victim shard, want 2",
					i, be.ShardEpoch(victim))
			}
		}
	} else {
		for i, st := range shardStats {
			if st.Epoch != 1 || st.Failovers != 0 {
				t.Fatalf("control arm: shard %d saw %+v, want epoch 1", i, st)
			}
		}
	}

	var sum bytes.Buffer
	sum.Write(tb.Chaos.TraceBytes())
	fmt.Fprintf(&sum, "\nvictim=%d\n", victim)
	fmt.Fprintf(&sum, "A msgs=%d bytes=%d fatals=%d reconnects=%d\n", a.Msgs, a.Bytes, a.Fatals, a.Reconnects)
	fmt.Fprintf(&sum, "B msgs=%d bytes=%d fatals=%d reconnects=%d\n", b.Msgs, b.Bytes, b.Fatals, b.Reconnects)
	for i, st := range shardStats {
		fmt.Fprintf(&sum, "shard%d epoch=%d leases=%d hwm=%d lag=%d fenced=%d failovers=%d partitions=%d\n",
			i, st.Epoch, st.Leases, st.QueueHWM, st.ReplLag, st.FencedWrites, st.Failovers, st.Partitions)
	}
	for i, be := range tb.Backends {
		if be == nil {
			continue
		}
		fmt.Fprintf(&sum, "backend%d epoch=%d grace=%d/%d reval=%d resets=%d fenced=%d gaps=%d resyncs=%d renewals=%d/%d bumps=%d\n",
			i, be.Epoch(), be.Stats.GraceRenames, be.Stats.GraceExpired,
			be.Stats.GraceRevalidated, be.Stats.GraceResets, be.Stats.FencedNotifies,
			be.Stats.NotifyGaps, be.Stats.Resyncs,
			be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures, be.Stats.EpochBumps)
	}
	fmt.Fprintf(&sum, "table=%d\n", len(table))
	return sum.Bytes()
}

// TestCtrlShardFailoverSoak is the sharded-controller capstone: one shard's
// primary dies under live traffic and a concurrent link cut; its standby is
// promoted with the replicated table while every other shard — and every
// connection they own — is undisturbed. Both arms must be pure functions of
// the seed.
func TestCtrlShardFailoverSoak(t *testing.T) {
	withA := ctrlShardFailoverSummary(t, 4712, true)
	withB := ctrlShardFailoverSummary(t, 4712, true)
	if !bytes.Equal(withA, withB) {
		t.Fatalf("same-seed failover runs diverged:\n--- A ---\n%s\n--- B ---\n%s", withA, withB)
	}
	withoutA := ctrlShardFailoverSummary(t, 4712, false)
	withoutB := ctrlShardFailoverSummary(t, 4712, false)
	if !bytes.Equal(withoutA, withoutB) {
		t.Fatalf("same-seed control runs diverged:\n--- A ---\n%s\n--- B ---\n%s", withoutA, withoutB)
	}
	if bytes.Equal(withA, withoutA) {
		t.Fatal("failover and control digests are identical — the crash had no observable effect")
	}
}

// TestTotalOutageOnShardedController: the legacy whole-controller chaos
// event on a sharded control plane crashes every shard; with replication on,
// each standby promotes independently and the restart edge is a no-op.
func TestTotalOutageOnShardedController(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 2
	cfg.CtrlShards = 2
	cfg.Ctrl.Replicate = true
	cfg.Ctrl.FailoverDetect = simtime.Ms(2)
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	if _, err := tb.NewNode(cluster.ModeMasQ, 0, vni, packet.NewIP(192, 168, 13, 1)); err != nil {
		t.Fatal(err)
	}
	tb.CrashController(simtime.Time(simtime.Ms(5)), simtime.Time(simtime.Ms(15)))
	tb.Eng.Run()
	for i := 0; i < cfg.CtrlShards; i++ {
		st := tb.CtrlSharded.ShardStats(i)
		if st.Epoch != 2 || st.Failovers != 1 || st.Down {
			t.Fatalf("shard %d after total outage: %+v, want promoted at epoch 2", i, st)
		}
	}
}

// oracleDigest runs the plain soak workload (streams, link cut, leases — no
// controller failure) and digests everything the workload can observe:
// stream counters, backend stats, and the reconverged mapping table.
func oracleDigest(t *testing.T, ctrlShards int) []byte {
	t.Helper()
	cfg := shortRetry(cluster.DefaultConfig())
	cfg.Hosts = 3
	cfg.CtrlShards = ctrlShards // 0 = the classic unsharded controller
	cfg.Masq.PushDown = true
	cfg.Masq.GraceTTL = simtime.Ms(30)
	cfg.Masq.LeaseRenewEvery = simtime.Ms(1)
	cfg.Ctrl.LeaseTTL = simtime.Ms(20)
	cfg.Ctrl.Seed = 99
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	mk := func(host int, last byte) *cluster.Node {
		n, err := tb.NewNode(cluster.ModeMasQ, host, vni, packet.NewIP(192, 168, 15, last))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c0, s0 := mk(0, 1), mk(1, 2)
	c1, s1 := mk(2, 3), mk(1, 4)

	horizon := simtime.Ms(50)
	tb.Chaos.Arm(chaos.Plan{Seed: 99, Events: chaos.Outage(tb.HostLink(0),
		simtime.Time(simtime.Ms(16)), simtime.Time(simtime.Ms(18)))})
	tb.StartLeases(simtime.Time(horizon))
	pol := reconnect.Policy{
		MaxAttempts: 12,
		Backoff:     simtime.Us(500),
		MaxBackoff:  simtime.Ms(4),
		DialTimeout: simtime.Ms(5),
	}
	resA := perftest.StartResilientWriteBW(tb, c0, s0, 7800, 8192, horizon, pol)
	resB := perftest.StartResilientWriteBW(tb, c1, s1, 7801, 8192, horizon, pol)

	var table map[controller.Key]controller.Mapping
	tb.Eng.At(simtime.Time(simtime.Ms(45)), func() {
		if tb.CtrlSharded != nil {
			table = tb.CtrlSharded.Dump(vni)
		} else {
			table = tb.Ctrl.Dump(vni)
		}
	})
	tb.Eng.Run()
	if !resA.Triggered() || !resB.Triggered() {
		t.Fatalf("streams stuck (ctrlShards=%d; pending: %v)", ctrlShards, tb.Eng.PendingProcs())
	}
	a, b := resA.Value(), resB.Value()

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "A msgs=%d bytes=%d fatals=%d reconnects=%d gaveup=%v\n",
		a.Msgs, a.Bytes, a.Fatals, a.Reconnects, a.GaveUp)
	fmt.Fprintf(&sum, "B msgs=%d bytes=%d fatals=%d reconnects=%d gaveup=%v\n",
		b.Msgs, b.Bytes, b.Fatals, b.Reconnects, b.GaveUp)
	for _, n := range []*cluster.Node{c0, s0, c1, s1} {
		k, m, ok := n.Provider.(*masq.Frontend).VBond().Registration()
		got, inTable := table[k]
		fmt.Fprintf(&sum, "%s reg=%v mapped=%v match=%v\n", n.Name, ok, inTable, got == m)
	}
	for i, be := range tb.Backends {
		if be == nil {
			continue
		}
		fmt.Fprintf(&sum, "backend%d epoch=%d hits=%d misses=%d inval=%d renames=%d retries=%d renewals=%d/%d batches=%d/%d resyncs=%d\n",
			i, be.Epoch(), be.Stats.CacheHits, be.Stats.CacheMisses, be.Stats.Invalidations,
			be.Stats.Renames, be.Stats.QueryRetries,
			be.Stats.LeaseRenewals, be.Stats.LeaseRenewFailures,
			be.Stats.BatchRPCs, be.Stats.BatchedLookups, be.Stats.Resyncs)
	}
	fmt.Fprintf(&sum, "table=%d\n", len(table))
	return sum.Bytes()
}

// TestOneShardNoReplicationMatchesClassicOracle is the seed-oracle guard:
// routing the whole control plane through a 1-shard Sharded front with
// replication off must be invisible — every workload-observable value
// (stream counters, backend stats, reconverged table) matches the classic
// unsharded controller byte for byte.
func TestOneShardNoReplicationMatchesClassicOracle(t *testing.T) {
	classic := oracleDigest(t, 0)
	oneShard := oracleDigest(t, 1)
	if !bytes.Equal(classic, oneShard) {
		t.Fatalf("1-shard controller diverges from the classic oracle:\n--- classic ---\n%s\n--- 1-shard ---\n%s",
			classic, oneShard)
	}
}

// TestMasQOnEngineShardedCluster: with a sharded controller, MasQ nodes are
// admitted on an engine-sharded testbed (each controller shard lives on its
// own event shard, RPCs travel over exchanges), and the full connect
// timeline is byte-identical across engine shard counts — the 1-shard
// engine being the oracle.
func TestMasQOnEngineShardedCluster(t *testing.T) {
	run := func(engineShards int) simtime.Time {
		cfg := cluster.DefaultConfig()
		cfg.Hosts = 4
		cfg.Shards = engineShards
		cfg.CtrlShards = 2
		tb := cluster.New(cfg)
		tb.AddTenant(vni, "t")
		tb.AllowAll(vni)
		s, err := tb.NewNode(cluster.ModeMasQ, 0, vni, packet.NewIP(192, 168, 14, 1))
		if err != nil {
			t.Fatal(err)
		}
		c, err := tb.NewNode(cluster.ModeMasQ, 1, vni, packet.NewIP(192, 168, 14, 2))
		if err != nil {
			t.Fatal(err)
		}
		var connected simtime.Time
		tb.HostEngine(0).Spawn("srv", func(p *simtime.Proc) {
			ep, err := s.Setup(p, cluster.DefaultEndpointOpts())
			if err != nil {
				t.Error(err)
				return
			}
			peer, err := ep.ExchangeServer(p, 7000)
			if err != nil {
				t.Error(err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Error(err)
				return
			}
			ep.QP.PostRecv(p, verbs.RecvWR{WRID: 1, Addr: ep.Buf, LKey: ep.MR.LKey(), Len: ep.Len})
			ep.RCQ.Wait(p)
		})
		tb.HostEngine(1).Spawn("cli", func(p *simtime.Proc) {
			ep, err := c.Setup(p, cluster.DefaultEndpointOpts())
			if err != nil {
				t.Error(err)
				return
			}
			peer, err := ep.ExchangeClient(p, s.VIP, 7000, simtime.Ms(50))
			if err != nil {
				t.Error(err)
				return
			}
			if err := ep.ConnectRC(p, peer); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(simtime.Us(50))
			msg := []byte("hello-sharded")
			c.Write(ep.Buf, msg)
			ep.QP.PostSend(p, verbs.SendWR{WRID: 2, Op: verbs.WRSend, LocalAddr: ep.Buf, LKey: ep.MR.LKey(), Len: len(msg)})
			ep.SCQ.Wait(p)
			connected = p.Now()
		})
		tb.Run()
		if connected == 0 {
			t.Fatalf("workload never completed (engine shards=%d); pending: %v",
				engineShards, tb.PendingProcs())
		}
		return connected
	}
	oracle := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != oracle {
			t.Fatalf("MasQ send-complete instant on %d engine shards = %v, oracle = %v",
				shards, got, oracle)
		}
	}
}
