package cluster_test

// Transparent live migration, end to end: a VM with live RDMA connections
// moves between hosts while a client streams into it. The invariants are
// the ISSUE's acceptance bar — zero lost or duplicated completions across
// the move (exact WC counts and payload bytes), clean completion or full
// rollback under chaos, no leaked conntrack or controller state, and
// byte-identical same-seed runs.

import (
	"bytes"
	"fmt"
	"testing"

	"masq/internal/chaos"
	"masq/internal/cluster"
	"masq/internal/controller"
	"masq/internal/masq"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

const migMsgLen = 1024

// migPayload builds the distinctive 1 KiB payload of message i.
func migPayload(i int) []byte {
	b := make([]byte, migMsgLen)
	tag := []byte(fmt.Sprintf("msg-%03d|", i))
	for off := 0; off < migMsgLen; off += len(tag) {
		copy(b[off:], tag)
	}
	return b
}

// migRecvSummary is the server side of a migration stream: exact counts,
// so a lost completion (OK < total), a corrupted replay (Bad > 0), or a
// duplicated delivery (Extra) all surface.
type migRecvSummary struct {
	OK    int
	Bad   int
	Extra bool
}

// startMigStream streams total distinct 1 KiB messages client→server with
// the given inter-send gap, while a migration runs concurrently. The
// server pre-posts every receive, then counts completions and verifies
// each payload byte-for-byte; one extra poll at the end catches
// duplicates. wcTO bounds each completion wait — it must cover the
// migration blackout (and, on rollback, the suspend TTL).
func startMigStream(cp *cluster.ConnectedPair, total int, gap, wcTO simtime.Duration) (*simtime.Event[int], *simtime.Event[migRecvSummary]) {
	tb := cp.TB
	sendDone := simtime.NewEvent[int](tb.Eng)
	recvDone := simtime.NewEvent[migRecvSummary](tb.Eng)
	tb.Eng.Spawn("mig-server", func(p *simtime.Proc) {
		s := cp.Server
		var sum migRecvSummary
		for i := 0; i < total; i++ {
			if err := s.QP.PostRecv(p, verbs.RecvWR{
				WRID: uint64(i), Addr: s.Buf + uint64(i)*migMsgLen,
				LKey: s.MR.LKey(), Len: migMsgLen,
			}); err != nil {
				recvDone.Trigger(sum)
				return
			}
		}
		for i := 0; i < total; i++ {
			wc, ok := s.RCQ.WaitTimeout(p, wcTO)
			if !ok {
				break
			}
			if wc.Status != verbs.WCSuccess || wc.ByteLen != migMsgLen {
				sum.Bad++
				continue
			}
			got := make([]byte, migMsgLen)
			cp.ServerNode.Read(s.Buf+wc.WRID*migMsgLen, got)
			if !bytes.Equal(got, migPayload(int(wc.WRID))) {
				sum.Bad++
				continue
			}
			sum.OK++
		}
		if _, ok := s.RCQ.WaitTimeout(p, simtime.Ms(5)); ok {
			sum.Extra = true
		}
		recvDone.Trigger(sum)
	})
	tb.Eng.Spawn("mig-client", func(p *simtime.Proc) {
		c := cp.Client
		p.Sleep(simtime.Us(50)) // let the server's receives land first
		for i := 0; i < total; i++ {
			cp.ClientNode.Write(c.Buf+uint64(i)*migMsgLen, migPayload(i))
			if err := c.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRSend,
				LocalAddr: c.Buf + uint64(i)*migMsgLen, LKey: c.MR.LKey(), Len: migMsgLen,
			}); err != nil {
				sendDone.Trigger(-1)
				return
			}
			if gap > 0 {
				p.Sleep(gap)
			}
		}
		okCnt := 0
		for i := 0; i < total; i++ {
			wc, ok := c.SCQ.WaitTimeout(p, wcTO)
			if !ok {
				break
			}
			if wc.Status == verbs.WCSuccess {
				okCnt++
			}
		}
		sendDone.Trigger(okCnt)
	})
	return sendDone, recvDone
}

// threeHostPair is a connected MasQ pair with a spare host to migrate onto.
func threeHostPair(t *testing.T, cfg cluster.Config) *cluster.ConnectedPair {
	t.Helper()
	cfg.Hosts = 3
	cp, err := cluster.NewConnectedPair(cfg, cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestLiveMigrateStreamingExactCompletions is the tentpole invariant: a
// client streams 40 distinct messages into a server whose VM live-migrates
// mid-stream. Every send must complete exactly once, every payload must
// arrive intact on the destination host, and no completion may be
// duplicated — the PSN windows replayed across the move, not re-invented.
func TestLiveMigrateStreamingExactCompletions(t *testing.T) {
	cp := threeHostPair(t, cluster.DefaultConfig())
	tb := cp.TB
	const total = 40
	sendDone, recvDone := startMigStream(cp, total, simtime.Us(100), simtime.Ms(300))

	var rep *cluster.MigrateReport
	migDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("migrator", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(1)) // mid-stream: ~10 of 40 messages sent
		var err error
		rep, err = tb.LiveMigrateNode(p, cp.ServerNode, 2, cluster.MigrateOpts{})
		migDone.Trigger(err)
	})
	tb.Eng.Run()

	if err := migDone.Value(); err != nil {
		t.Fatalf("live migration failed: %v", err)
	}
	if rep.RolledBack {
		t.Fatal("migration rolled back without an error")
	}
	if cp.ServerNode.Host != tb.Hosts[2] {
		t.Fatal("server VM did not move to host 2")
	}
	if rep.Blackout <= 0 || rep.Blackout > simtime.Ms(5) {
		t.Fatalf("blackout = %v, want small and positive", rep.Blackout)
	}
	if rep.QPs != 1 || rep.MRs != 1 || rep.Conns != 1 {
		t.Fatalf("capture = %d QPs / %d MRs / %d conns, want 1/1/1", rep.QPs, rep.MRs, rep.Conns)
	}

	// Zero lost, zero duplicated, zero corrupted.
	if got := sendDone.Value(); got != total {
		t.Fatalf("client saw %d successful send completions, want %d", got, total)
	}
	sum := recvDone.Value()
	if sum.OK != total || sum.Bad != 0 {
		t.Fatalf("server recv summary = %+v, want OK=%d Bad=0", sum, total)
	}
	if sum.Extra {
		t.Fatal("server saw a duplicated completion after the stream drained")
	}

	// The connection state moved, not leaked: the source host holds no
	// conntrack rows, the destination holds the migrated one, the client's
	// row survived the rename in place.
	if n := len(tb.Backend(1).CT.Conns()); n != 0 {
		t.Fatalf("source backend leaked %d conntrack entries", n)
	}
	if n := len(tb.Backend(2).CT.Conns()); n != 1 {
		t.Fatalf("destination backend has %d conntrack entries, want 1", n)
	}
	if n := len(tb.Backend(0).CT.Conns()); n != 1 {
		t.Fatalf("client backend has %d conntrack entries, want 1", n)
	}

	// The controller republished the endpoint under the destination host.
	table := tb.Ctrl.Dump(vni)
	if len(table) != 2 {
		t.Fatalf("controller has %d mappings, want 2", len(table))
	}
	k, m, ok := cp.ServerNode.Provider.(*masq.Frontend).VBond().Registration()
	if !ok {
		t.Fatal("migrated node holds no registration")
	}
	if want := tb.Backend(2).HostMapping(); m != want || table[k] != want {
		t.Fatalf("server mapping = %+v (table %+v), want destination identity %+v", m, table[k], want)
	}

	// The peer machinery fired: a suspend quiesced the client, the move
	// renamed its address vector in place and resumed it.
	cb := tb.Backend(0)
	if cb.Stats.MigrSuspends == 0 || cb.Stats.MigrSuspendedQPs == 0 {
		t.Fatalf("client backend never quiesced: %+v", cb.Stats)
	}
	if cb.Stats.MigrRenames == 0 || cb.Stats.MigrResumes == 0 {
		t.Fatalf("client backend never renamed/resumed: suspends=%d renames=%d resumes=%d",
			cb.Stats.MigrSuspends, cb.Stats.MigrRenames, cb.Stats.MigrResumes)
	}
	if tb.Backend(1).Stats.MigrOut != 1 || tb.Backend(2).Stats.MigrIn != 1 {
		t.Fatalf("MigrOut/MigrIn = %d/%d, want 1/1",
			tb.Backend(1).Stats.MigrOut, tb.Backend(2).Stats.MigrIn)
	}
	if tb.Ctrl.Stats.Suspends != 1 || tb.Ctrl.Stats.Moves != 1 {
		t.Fatalf("controller suspends/moves = %d/%d, want 1/1",
			tb.Ctrl.Stats.Suspends, tb.Ctrl.Stats.Moves)
	}
}

// TestLiveMigrateSameHostNoOp: migrating onto the VM's own host is a no-op
// — nothing frozen, nothing re-registered, no controller traffic.
func TestLiveMigrateSameHostNoOp(t *testing.T) {
	cp := threeHostPair(t, cluster.DefaultConfig())
	tb := cp.TB
	updatesBefore := tb.Ctrl.Stats.Updates
	var rep *cluster.MigrateReport
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("noop", func(p *simtime.Proc) {
		var err error
		rep, err = tb.LiveMigrateNode(p, cp.ServerNode, 1, cluster.MigrateOpts{})
		done.Trigger(err)
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		t.Fatal(err)
	}
	if rep.PreCopyRounds != 0 || rep.Blackout != 0 || rep.RolledBack {
		t.Fatalf("same-host migration did work: %+v", rep)
	}
	if tb.Backend(1).Stats.MigrOut != 0 || tb.Ctrl.Stats.Suspends != 0 {
		t.Fatal("same-host migration touched the freeze machinery")
	}
	if tb.Ctrl.Stats.Updates != updatesBefore {
		t.Fatal("same-host migration re-registered with the controller")
	}
}

// TestLiveMigrateRefusedModes: transparent migration needs a MasQ VF/PF
// node. Shared-carrier placements multiplex host-level connections that
// cannot follow one VM; passthrough VFs cannot follow at all. A refusal
// must leave the running connection untouched.
func TestLiveMigrateRefusedModes(t *testing.T) {
	for _, mode := range []cluster.Mode{cluster.ModeMasQShared, cluster.ModeSRIOV} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := cluster.DefaultConfig()
			cfg.Hosts = 3
			cp, err := cluster.NewConnectedPair(cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			tb := cp.TB
			dumpBefore := len(tb.Ctrl.Dump(vni))
			done := simtime.NewEvent[error](tb.Eng)
			tb.Eng.Spawn("refused", func(p *simtime.Proc) {
				_, err := tb.LiveMigrateNode(p, cp.ServerNode, 2, cluster.MigrateOpts{})
				done.Trigger(err)
			})
			tb.Eng.Run()
			if done.Value() == nil {
				t.Fatalf("%v live migration was not refused", mode)
			}
			if cp.ServerNode.Host != tb.Hosts[1] {
				t.Fatal("refused migration moved the VM")
			}
			if got := len(tb.Ctrl.Dump(vni)); got != dumpBefore {
				t.Fatalf("refusal changed controller state: %d -> %d mappings", dumpBefore, got)
			}
			// The pair still moves data.
			var wcOK bool
			tb.Eng.Spawn("post-refusal", func(p *simtime.Proc) {
				c := cp.Client
				peer := cp.Server.Info()
				if err := c.QP.PostSend(p, verbs.SendWR{
					WRID: 1, Op: verbs.WRWrite, LocalAddr: c.Buf, LKey: c.MR.LKey(),
					Len: 4096, RemoteAddr: peer.Addr, RKey: peer.RKey,
				}); err != nil {
					return
				}
				wc, ok := c.SCQ.WaitTimeout(p, simtime.Ms(50))
				wcOK = ok && wc.Status == verbs.WCSuccess
			})
			tb.Eng.Run()
			if !wcOK {
				t.Fatal("connection broken after a refused migration")
			}
		})
	}
}

// TestMigrateNodeRefusalLeavesStateUntouched is the satellite fix for the
// application-assisted path: a migration refused because guest memory is
// still pinned (registered MRs) must leave the node, its vBond
// registration, the controller table, and the data path exactly as they
// were — and a same-host migration must be a no-op, not a re-register.
func TestMigrateNodeRefusalLeavesStateUntouched(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 3
	cp, err := cluster.NewConnectedPair(cfg, cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	providerBefore := cp.ServerNode.Provider
	updatesBefore := tb.Ctrl.Stats.Updates
	tableBefore := tb.Ctrl.Dump(vni)

	// Refusal: the endpoint's MR is still registered (pinned).
	if err := tb.MigrateNode(cp.ServerNode, 2); err == nil {
		t.Fatal("migration accepted while MRs were pinned")
	}
	if cp.ServerNode.Host != tb.Hosts[1] || cp.ServerNode.Provider != providerBefore {
		t.Fatal("refused migration mutated the node")
	}
	if tb.Ctrl.Stats.Updates != updatesBefore {
		t.Fatal("refused migration touched the controller")
	}
	k, m, ok := cp.ServerNode.Provider.(*masq.Frontend).VBond().Registration()
	if !ok || tableBefore[k] != m {
		t.Fatal("refused migration disturbed the vBond registration")
	}
	if got := len(tb.Backend(1).CT.Conns()); got != 1 {
		t.Fatalf("refused migration disturbed conntrack: %d entries, want 1", got)
	}
	// The connection still works after the refusal.
	var wcOK bool
	tb.Eng.Spawn("post-refusal", func(p *simtime.Proc) {
		c := cp.Client
		peer := cp.Server.Info()
		if err := c.QP.PostSend(p, verbs.SendWR{
			WRID: 1, Op: verbs.WRWrite, LocalAddr: c.Buf, LKey: c.MR.LKey(),
			Len: 4096, RemoteAddr: peer.Addr, RKey: peer.RKey,
		}); err != nil {
			return
		}
		wc, ok := c.SCQ.WaitTimeout(p, simtime.Ms(50))
		wcOK = ok && wc.Status == verbs.WCSuccess
	})
	tb.Eng.Run()
	if !wcOK {
		t.Fatal("connection broken after a refused migration")
	}

	// Same-host migration: a documented no-op, not a re-register.
	updatesBefore = tb.Ctrl.Stats.Updates
	if err := tb.MigrateNode(cp.ServerNode, 1); err != nil {
		t.Fatalf("same-host migration errored: %v", err)
	}
	if cp.ServerNode.Provider != providerBefore {
		t.Fatal("same-host migration rebuilt the frontend")
	}
	if tb.Ctrl.Stats.Updates != updatesBefore {
		t.Fatal("same-host migration re-registered with the controller")
	}
}

// TestLiveMigrateLeaseAndPoolFollow: after the move, lease renewal keeps
// the endpoint alive from the DESTINATION host (the mapping would expire
// under its 10ms TTL otherwise), and the source host's warm QP pool for
// the tenant is flushed — staged fast-path state must not outlive the VM.
func TestLiveMigrateLeaseAndPoolFollow(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 3
	cfg.Masq.QPPoolSize = 4
	cfg.Masq.LeaseRenewEvery = simtime.Ms(1)
	cfg.Ctrl.LeaseTTL = simtime.Ms(10)
	cp, err := cluster.NewConnectedPair(cfg, cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	base := tb.Eng.Now() // the drained setup leaves the clock well past zero
	tb.StartLeases(base.Add(simtime.Ms(80)))

	migDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("migrator", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(5))
		_, err := tb.LiveMigrateNode(p, cp.ServerNode, 2, cluster.MigrateOpts{})
		migDone.Trigger(err)
	})
	// Snapshot the table many lease-TTLs after the move, while renewals
	// still run: only a destination-side renewal keeps the entry alive.
	var table map[controller.Key]controller.Mapping
	tb.Eng.At(base.Add(simtime.Ms(60)), func() {
		table = tb.Ctrl.Dump(vni)
	})
	tb.Eng.Run()
	if err := migDone.Value(); err != nil {
		t.Fatalf("live migration failed: %v", err)
	}
	if len(table) != 2 {
		t.Fatalf("controller has %d mappings 50ms after the move, want 2", len(table))
	}
	k, m, ok := cp.ServerNode.Provider.(*masq.Frontend).VBond().Registration()
	if !ok {
		t.Fatal("migrated node holds no registration")
	}
	if want := tb.Backend(2).HostMapping(); m != want || table[k] != want {
		t.Fatalf("lease renewal did not follow: mapping %+v, table %+v, want %+v", m, table[k], want)
	}
	if tb.Backend(1).Stats.PoolFlushes == 0 {
		t.Fatal("source host's warm QP pool survived the migration")
	}
}

// TestLiveMigrateDuringLinkFlap: the source host's uplink flaps throughout
// the migration window. The controller channel is a separate model, so the
// migration itself must complete; the stream rides the flap on RDMA
// retransmission plus the migration's own PSN replay — still exactly once.
func TestLiveMigrateDuringLinkFlap(t *testing.T) {
	cp := threeHostPair(t, cluster.DefaultConfig())
	tb := cp.TB
	base := tb.Eng.Now()
	tb.Chaos.Arm(chaos.Plan{Seed: 7, Events: []chaos.Event{
		chaos.Flap(tb.HostLink(1), base.Add(simtime.Ms(1)), base.Add(simtime.Ms(12)),
			simtime.Ms(2), simtime.Us(500)),
	}})
	const total = 40
	sendDone, recvDone := startMigStream(cp, total, simtime.Us(200), simtime.Ms(300))
	var rep *cluster.MigrateReport
	migDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("migrator", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(2)) // inside the flap window
		var err error
		rep, err = tb.LiveMigrateNode(p, cp.ServerNode, 2, cluster.MigrateOpts{})
		migDone.Trigger(err)
	})
	tb.Eng.Run()
	if err := migDone.Value(); err != nil {
		t.Fatalf("migration under link flap failed: %v", err)
	}
	if rep.RolledBack || cp.ServerNode.Host != tb.Hosts[2] {
		t.Fatal("migration under link flap did not complete onto host 2")
	}
	if got := sendDone.Value(); got != total {
		t.Fatalf("client saw %d send completions, want %d", got, total)
	}
	sum := recvDone.Value()
	if sum.OK != total || sum.Bad != 0 || sum.Extra {
		t.Fatalf("server recv summary = %+v, want OK=%d Bad=0 Extra=false", sum, total)
	}
	if tb.Chaos.Stats.LinkTransitions == 0 {
		t.Fatal("the flap never fired — the test exercised nothing")
	}
	if n := len(tb.Backend(1).CT.Conns()); n != 0 {
		t.Fatalf("source backend leaked %d conntrack entries", n)
	}
}

// TestLiveMigrateCtrlOutageRollsBack: the controller goes dark after the
// freeze announcement but before the commit. The Move RPC fails, the VM
// must be cleanly re-adopted at the source — original QPNs, reactivated
// vBond, no half-migrated state — and the suspended peer must wake via the
// suspend TTL (the resume push is lost too). The stream still delivers
// every message exactly once, just later.
func TestLiveMigrateCtrlOutageRollsBack(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 3
	cfg.Masq.PushDown = true
	cfg.Masq.LeaseRenewEvery = simtime.Ms(2)
	cfg.Ctrl.LeaseTTL = simtime.Ms(30)
	cp, err := cluster.NewConnectedPair(cfg, cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	base := tb.Eng.Now()
	tb.StartLeases(base.Add(simtime.Ms(150)))

	// Shape the timeline so the outage window separates Suspend from Move:
	// pre-copy takes 15ms (ends ~20ms: Suspend, controller still up), the
	// stop-copy of the half-image dirty set takes ~7.5ms more (Move at
	// ~27.5ms — dark). The controller is down for [23ms, 45ms).
	image := float64(cp.ServerNode.VM.GPA.MappedBytes())
	opts := cluster.MigrateOpts{
		CopyBandwidth:     image / 0.015,
		DirtyRate:         image / 0.015 / 2,
		StopCopyThreshold: uint64(image / 2),
	}
	tb.CrashController(base.Add(simtime.Ms(23)), base.Add(simtime.Ms(45)))

	const total = 40
	sendDone, recvDone := startMigStream(cp, total, simtime.Us(750), simtime.Ms(300))
	var rep *cluster.MigrateReport
	migDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("migrator", func(p *simtime.Proc) {
		p.Sleep(simtime.Ms(5))
		var err error
		rep, err = tb.LiveMigrateNode(p, cp.ServerNode, 2, opts)
		migDone.Trigger(err)
	})
	var table map[controller.Key]controller.Mapping
	tb.Eng.At(base.Add(simtime.Ms(120)), func() {
		table = tb.Ctrl.Dump(vni)
	})
	tb.Eng.Run()

	if migDone.Value() == nil {
		t.Fatal("migration with a dark commit point reported success")
	}
	if rep == nil || !rep.RolledBack {
		t.Fatalf("migration did not roll back: %+v", rep)
	}
	if cp.ServerNode.Host != tb.Hosts[1] {
		t.Fatal("rolled-back VM is not on its source host")
	}

	// Exactly-once survives the rollback: the peer resumes (suspend TTL —
	// the resume push was lost with the controller) and replays.
	if got := sendDone.Value(); got != total {
		t.Fatalf("client saw %d send completions after rollback, want %d", got, total)
	}
	sum := recvDone.Value()
	if sum.OK != total || sum.Bad != 0 || sum.Extra {
		t.Fatalf("server recv summary = %+v, want OK=%d Bad=0 Extra=false", sum, total)
	}

	// Nothing half-migrated, nothing leaked: the destination was evicted,
	// the source re-adopted, and the reconverged controller table holds
	// the source identity again.
	if n := len(tb.Backend(2).CT.Conns()); n != 0 {
		t.Fatalf("destination leaked %d conntrack entries after rollback", n)
	}
	if n := len(tb.Backend(1).CT.Conns()); n != 1 {
		t.Fatalf("source has %d conntrack entries after rollback, want 1", n)
	}
	if tb.Backend(1).Stats.MigrRollbacks != 1 {
		t.Fatalf("source rollbacks = %d, want 1", tb.Backend(1).Stats.MigrRollbacks)
	}
	if tb.Backend(0).Stats.MigrSuspendExpiry == 0 {
		t.Fatal("the peer's suspend TTL never fired — how did it resume?")
	}
	if len(table) != 2 {
		t.Fatalf("controller has %d mappings after reconvergence, want 2", len(table))
	}
	k, m, ok := cp.ServerNode.Provider.(*masq.Frontend).VBond().Registration()
	if !ok {
		t.Fatal("rolled-back node holds no registration")
	}
	if want := tb.Backend(1).HostMapping(); m != want || table[k] != want {
		t.Fatalf("rolled-back mapping = %+v (table %+v), want source identity %+v", m, table[k], want)
	}
}

// migChaosDigest runs one migration-under-chaos scenario — a seeded random
// loss/flap plan plus a scheduled NodeMigrate event through the chaos
// injector — and digests everything observable. Two same-seed runs must be
// byte-identical.
func migChaosDigest(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 3
	cp, err := cluster.NewConnectedPair(cfg, cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	base := tb.Eng.Now()
	horizon := simtime.Ms(40)
	plan := chaos.RandomPlan(seed, tb.Links, horizon, 4, 0.15)
	// RandomPlan draws times from zero; the drained setup left the clock
	// past that, so shift the whole schedule to start now.
	for i := range plan.Events {
		plan.Events[i].At = plan.Events[i].At.Add(simtime.Duration(base))
		if plan.Events[i].Until != 0 {
			plan.Events[i].Until = plan.Events[i].Until.Add(simtime.Duration(base))
		}
	}
	// Server node has index 1 (NewConnectedPair creates client then server).
	plan.Events = append(plan.Events, chaos.Migrate(1, 2, base.Add(simtime.Ms(8))))
	tb.Chaos.Arm(plan)

	const total = 40
	sendDone, recvDone := startMigStream(cp, total, simtime.Us(400), simtime.Ms(300))
	tb.Eng.Run()

	if !sendDone.Triggered() || !recvDone.Triggered() {
		t.Fatalf("stream stuck (pending procs: %v)", tb.Eng.PendingProcs())
	}
	if tb.Chaos.Stats.Migrations != 1 {
		t.Fatalf("chaos fired %d migrations, want 1", tb.Chaos.Stats.Migrations)
	}
	// Clean completion or clean rollback — never a half-moved VM.
	onSrc, onDst := cp.ServerNode.Host == tb.Hosts[1], cp.ServerNode.Host == tb.Hosts[2]
	if !onSrc && !onDst {
		t.Fatalf("server VM on unexpected host %v", cp.ServerNode.Host)
	}
	sum := recvDone.Value()
	if got := sendDone.Value(); got != total || sum.OK != total || sum.Bad != 0 || sum.Extra {
		t.Fatalf("stream not exactly-once under chaos: sends=%d recv=%+v", sendDone.Value(), sum)
	}
	var sb bytes.Buffer
	sb.Write(tb.Chaos.TraceBytes())
	fmt.Fprintf(&sb, "\nsends=%d recv=%+v host=%v\n", sendDone.Value(), sum, onDst)
	for i := 0; i < cfg.Hosts; i++ {
		be := tb.Backend(i)
		fmt.Fprintf(&sb, "backend%d out=%d in=%d rb=%d susp=%d ren=%d res=%d ttl=%d ct=%d\n",
			i, be.Stats.MigrOut, be.Stats.MigrIn, be.Stats.MigrRollbacks,
			be.Stats.MigrSuspends, be.Stats.MigrRenames, be.Stats.MigrResumes,
			be.Stats.MigrSuspendExpiry, len(be.CT.Conns()))
	}
	fmt.Fprintf(&sb, "ctrl suspends=%d moves=%d table=%d\n",
		tb.Ctrl.Stats.Suspends, tb.Ctrl.Stats.Moves, len(tb.Ctrl.Dump(vni)))
	return sb.Bytes()
}

// TestLiveMigrateChaosDeterminism: the migration soak is a pure function
// of its seed — two same-seed runs produce byte-identical digests (chaos
// trace, stream counts, per-backend migration counters, controller table).
func TestLiveMigrateChaosDeterminism(t *testing.T) {
	a := migChaosDigest(t, 90125)
	b := migChaosDigest(t, 90125)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed migration runs diverged:\n--- A ---\n%s\n--- B ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty digest")
	}
}
