package cluster

import (
	"encoding/binary"
	"fmt"

	"masq/internal/hyper"
	ooblib "masq/internal/oob"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/trace"
	"masq/internal/verbs"
)

// oob aliases the stack type for Node fields.
type oob = ooblib.Stack

// newOOB builds a node's out-of-band stack on its host's engine, so its
// retransmission timers and flows stay on the host's shard. The resolver
// closure reads fabric state that is only written at build time, which
// keeps the concurrent cross-shard reads safe.
func newOOB(tb *Testbed, h *hyper.Host, vni uint32, vp *overlay.VMPort) *oob {
	return ooblib.NewStack(h.Eng, vp, func(dst packet.IP) (packet.MAC, bool) {
		ep := tb.Fab.Lookup(vni, dst)
		if ep == nil {
			return packet.MAC{}, false
		}
		return ep.VMAC, true
	})
}

// Endpoint bundles the verbs resources of one side of a connection, built
// by the Fig. 1 setup phase.
type Endpoint struct {
	Node *Node
	Dev  verbs.Device
	PD   verbs.PD
	SCQ  verbs.CQ
	RCQ  verbs.CQ
	QP   verbs.QP
	MR   verbs.MR
	Buf  uint64 // the registered buffer's VA
	Len  int
	GID  packet.GID
}

// EndpointOpts tune Setup.
type EndpointOpts struct {
	BufLen   int
	Access   verbs.Access
	Type     verbs.QPType
	CQE      int
	Caps     verbs.QPCaps
	SharedCQ bool // use one CQ for send and recv
}

// DefaultEndpointOpts mirrors the paper's microbenchmark parameters.
func DefaultEndpointOpts() EndpointOpts {
	return EndpointOpts{
		BufLen: 64 * 1024,
		Access: verbs.AccessLocalWrite | verbs.AccessRemoteWrite | verbs.AccessRemoteRead,
		Type:   verbs.RC,
		CQE:    200,
		Caps:   verbs.QPCaps{MaxSendWR: 100, MaxRecvWR: 100},
	}
}

// Setup performs the Fig. 1 resource-initialization phase: open device,
// alloc PD, register a buffer, create CQs and a QP, query the GID.
func (n *Node) Setup(p *simtime.Proc, opts EndpointOpts) (*Endpoint, error) {
	if opts.BufLen == 0 {
		opts = DefaultEndpointOpts()
	}
	dev, err := n.Device(p)
	if err != nil {
		return nil, err
	}
	pd, err := dev.AllocPD(p)
	if err != nil {
		return nil, err
	}
	buf, err := n.Alloc(opts.BufLen)
	if err != nil {
		return nil, err
	}
	mr, err := dev.RegMR(p, pd, buf, opts.BufLen, opts.Access)
	if err != nil {
		return nil, err
	}
	scq, err := dev.CreateCQ(p, opts.CQE)
	if err != nil {
		return nil, err
	}
	rcq := scq
	if !opts.SharedCQ {
		if rcq, err = dev.CreateCQ(p, opts.CQE); err != nil {
			return nil, err
		}
	}
	qp, err := dev.CreateQP(p, pd, scq, rcq, opts.Type, opts.Caps)
	if err != nil {
		return nil, err
	}
	gid, err := dev.QueryGID(p)
	if err != nil {
		return nil, err
	}
	return &Endpoint{
		Node: n, Dev: dev, PD: pd, SCQ: scq, RCQ: rcq, QP: qp,
		MR: mr, Buf: buf, Len: opts.BufLen, GID: gid,
	}, nil
}

// Info returns the connection information to exchange out of band.
func (ep *Endpoint) Info() verbs.ConnInfo {
	return verbs.ConnInfo{GID: ep.GID, QPN: ep.QP.Num(), RKey: ep.MR.RKey(), Addr: ep.Buf}
}

// Close tears down the endpoint's verbs resources: the QP first (flushing
// its conntrack state on MasQ), then the CQs and the MR. Errors are
// ignored — Close runs on already-broken endpoints during reconnect, where
// some handles may be dead.
func (ep *Endpoint) Close(p *simtime.Proc) {
	if ep.QP != nil {
		_ = ep.QP.Destroy(p)
	}
	if ep.SCQ != nil {
		_ = ep.SCQ.Destroy(p)
	}
	if ep.RCQ != nil && ep.RCQ != ep.SCQ {
		_ = ep.RCQ.Destroy(p)
	}
	if ep.MR != nil {
		_ = ep.MR.Dereg(p)
	}
}

// MarshalConnInfo encodes ci for the out-of-band channel (the bytes that
// really cross the overlay).
func MarshalConnInfo(ci verbs.ConnInfo) []byte { return marshalInfo(ci) }

// UnmarshalConnInfo decodes an out-of-band ConnInfo message.
func UnmarshalConnInfo(b []byte) (verbs.ConnInfo, error) { return unmarshalInfo(b) }

// connInfo wire codec (the bytes that really cross the overlay channel).
func marshalInfo(ci verbs.ConnInfo) []byte {
	b := make([]byte, 16+4+4+8)
	copy(b[0:16], ci.GID[:])
	binary.BigEndian.PutUint32(b[16:20], ci.QPN)
	binary.BigEndian.PutUint32(b[20:24], ci.RKey)
	binary.BigEndian.PutUint64(b[24:32], ci.Addr)
	return b
}

func unmarshalInfo(b []byte) (verbs.ConnInfo, error) {
	if len(b) != 32 {
		return verbs.ConnInfo{}, fmt.Errorf("cluster: conn info is %d bytes, want 32", len(b))
	}
	var ci verbs.ConnInfo
	copy(ci.GID[:], b[0:16])
	ci.QPN = binary.BigEndian.Uint32(b[16:20])
	ci.RKey = binary.BigEndian.Uint32(b[20:24])
	ci.Addr = binary.BigEndian.Uint64(b[24:32])
	return ci, nil
}

// ExchangeServer listens on port, accepts one peer, and swaps ConnInfo
// (Fig. 1's "exchange connection information through TCP/IP socket").
func (ep *Endpoint) ExchangeServer(p *simtime.Proc, port uint16) (verbs.ConnInfo, error) {
	sp := ep.Node.tb.Trace.Begin(p, trace.LayerOOB, "exchange-server")
	defer sp.End(p)
	l, err := ep.Node.OOB.Listen(port)
	if err != nil {
		return verbs.ConnInfo{}, err
	}
	conn := l.Accept(p)
	defer conn.Close()
	msg, err := conn.Recv(p)
	if err != nil {
		return verbs.ConnInfo{}, err
	}
	peer, err := unmarshalInfo(msg)
	if err != nil {
		return verbs.ConnInfo{}, err
	}
	if err := conn.Send(p, marshalInfo(ep.Info())); err != nil {
		return verbs.ConnInfo{}, err
	}
	return peer, nil
}

// ExchangeClient dials the server and swaps ConnInfo.
func (ep *Endpoint) ExchangeClient(p *simtime.Proc, server packet.IP, port uint16, timeout simtime.Duration) (verbs.ConnInfo, error) {
	sp := ep.Node.tb.Trace.Begin(p, trace.LayerOOB, "exchange-client")
	defer sp.End(p)
	conn, err := ep.Node.OOB.Dial(p, server, port, timeout)
	if err != nil {
		return verbs.ConnInfo{}, err
	}
	defer conn.Close()
	if err := conn.Send(p, marshalInfo(ep.Info())); err != nil {
		return verbs.ConnInfo{}, err
	}
	msg, err := conn.RecvTimeout(p, timeout)
	if err != nil {
		return verbs.ConnInfo{}, err
	}
	return unmarshalInfo(msg)
}

// ConnectRC walks the QP to RTS against the peer (RESET→INIT→RTR→RTS).
func (ep *Endpoint) ConnectRC(p *simtime.Proc, peer verbs.ConnInfo) error {
	if err := ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateInit}); err != nil {
		return err
	}
	if err := ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateRTR, DGID: peer.GID, DQPN: peer.QPN}); err != nil {
		return err
	}
	return ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateRTS})
}

// ConnectUD walks a UD QP to RTS with a shared queue key.
func (ep *Endpoint) ConnectUD(p *simtime.Proc, peer verbs.ConnInfo, qkey uint32) error {
	if err := ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateInit}); err != nil {
		return err
	}
	if err := ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateRTR, DGID: peer.GID, DQPN: peer.QPN, QKey: qkey}); err != nil {
		return err
	}
	return ep.QP.Modify(p, verbs.Attr{ToState: verbs.StateRTS})
}

// Pair connects two endpoints whose owners run in separate processes,
// returning each side's view of the peer. It is the whole Fig. 1 setup +
// exchange for tests and benchmarks. Port numbers must be unique per pair.
func Pair(eng *simtime.Engine, server, client *Endpoint, port uint16) (serverErr, clientErr *simtime.Event[error]) {
	serverErr = simtime.NewEvent[error](eng)
	clientErr = simtime.NewEvent[error](eng)
	eng.Spawn("pair-server", func(p *simtime.Proc) {
		peer, err := server.ExchangeServer(p, port)
		if err == nil {
			err = server.ConnectRC(p, peer)
		}
		serverErr.Trigger(err)
	})
	eng.Spawn("pair-client", func(p *simtime.Proc) {
		peer, err := client.ExchangeClient(p, server.Node.VIP, port, simtime.Ms(50))
		if err == nil {
			err = client.ConnectRC(p, peer)
		}
		clientErr.Trigger(err)
	})
	return serverErr, clientErr
}
