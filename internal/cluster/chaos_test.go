package cluster_test

// The failure-reaction chain, end to end: chaos faults at the bottom,
// QP-fatal async events in the middle, reconnecting applications on top.
// The soak at the end runs all of it at once and checks the global
// invariants — nothing leaks, nobody hangs, and the whole run is a pure
// function of its seed.

import (
	"bytes"
	"fmt"
	"testing"

	"masq/internal/apps/perftest"
	"masq/internal/apps/reconnect"
	"masq/internal/chaos"
	"masq/internal/cluster"
	"masq/internal/packet"
	"masq/internal/simtime"
	"masq/internal/verbs"
)

const vni = 100 // NewConnectedPair's tenant

// shortRetry makes retry exhaustion fast enough that mid-run fault windows
// actually kill QPs instead of being ridden out by retransmission.
func shortRetry(cfg cluster.Config) cluster.Config {
	cfg.RNIC.RetransTimeout = simtime.Us(200)
	cfg.RNIC.MaxRetry = 3
	return cfg
}

// TestCrashNodeCleansUpStateEverywhere kills the server VM of a connected
// pair and checks every layer reacted: the dead host's conntrack and the
// controller mapping are flushed immediately; the surviving client's QP
// dies by retry exhaustion, raising one fatal async event whose handler
// erases the client-side conntrack entry.
func TestCrashNodeCleansUpStateEverywhere(t *testing.T) {
	cp, err := cluster.NewConnectedPair(shortRetry(cluster.DefaultConfig()), cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	clientB, serverB := tb.Backends[0], tb.Backends[1]
	if len(serverB.CT.Conns()) == 0 || len(clientB.CT.Conns()) == 0 {
		t.Fatal("expected conntrack entries on both hosts after connect")
	}
	if got := len(tb.Ctrl.Dump(vni)); got != 2 {
		t.Fatalf("controller has %d mappings, want 2", got)
	}

	peer := cp.Server.Info() // captured before the crash, like a real app
	if err := tb.CrashNode(cp.ServerNode); err != nil {
		t.Fatal(err)
	}
	var status verbs.WCStatus
	tb.Eng.Spawn("survivor", func(p *simtime.Proc) {
		for i := 0; ; i++ {
			if err := cp.Client.QP.PostSend(p, verbs.SendWR{
				WRID: uint64(i), Op: verbs.WRWrite, LocalAddr: cp.Client.Buf,
				LKey: cp.Client.MR.LKey(), Len: 4096, RemoteAddr: peer.Addr, RKey: peer.RKey,
			}); err != nil {
				return
			}
			wc, ok := cp.Client.SCQ.WaitTimeout(p, simtime.Ms(100))
			if !ok {
				return
			}
			if wc.Status != verbs.WCSuccess {
				status = wc.Status
				return
			}
		}
	})
	tb.Eng.Run()

	if status == verbs.WCSuccess {
		t.Fatal("survivor never saw its QP die")
	}
	if n := len(serverB.CT.Conns()); n != 0 {
		t.Fatalf("dead host leaked %d conntrack entries", n)
	}
	if serverB.Stats.Crashes != 1 {
		t.Fatalf("server backend crashes = %d, want 1", serverB.Stats.Crashes)
	}
	if got := len(tb.Ctrl.Dump(vni)); got != 1 {
		t.Fatalf("controller has %d mappings after crash, want 1 (survivor only)", got)
	}
	if tb.Fab.Lookup(vni, cp.ServerNode.VIP) != nil {
		t.Fatal("fabric still resolves the dead endpoint")
	}
	if cp.ServerNode.Host.VMs() != 0 {
		t.Fatal("dead VM still attached to its host")
	}
	if clientB.Stats.FatalEvents != 1 || clientB.Stats.AsyncCleanups != 1 {
		t.Fatalf("client backend fatal/cleanup = %d/%d, want 1/1",
			clientB.Stats.FatalEvents, clientB.Stats.AsyncCleanups)
	}
	if n := len(clientB.CT.Conns()); n != 0 {
		t.Fatalf("survivor leaked %d conntrack entries after the fatal event", n)
	}
}

// TestDestroyQPRacesCrashNode fires a guest-initiated destroy_qp and the
// VM's death at the same virtual instant: both cleanup paths must run to
// completion without panicking or leaving state behind, whichever wins.
func TestDestroyQPRacesCrashNode(t *testing.T) {
	cp, err := cluster.NewConnectedPair(shortRetry(cluster.DefaultConfig()), cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	tb.Eng.Spawn("guest-destroy", func(p *simtime.Proc) {
		_ = cp.Server.QP.Destroy(p)
	})
	if err := tb.CrashNode(cp.ServerNode); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Run()
	if n := len(tb.Backends[1].CT.Conns()); n != 0 {
		t.Fatalf("leaked %d conntrack entries", n)
	}
	if got := len(tb.Ctrl.Dump(vni)); got != 1 {
		t.Fatalf("controller has %d mappings, want 1", got)
	}
	if cp.ServerNode.Host.VMs() != 0 {
		t.Fatal("dead VM still attached")
	}
}

// TestChaosLinkCutRaisesGuestPortEvents arms a link outage through the
// testbed injector and reads the resulting PORT_DOWN / PORT_UP pair from
// inside the guest via the async event channel — the full path simnet →
// injector → RNIC port state → virtio IRQ → frontend event queue.
func TestChaosLinkCutRaisesGuestPortEvents(t *testing.T) {
	cp, err := cluster.NewConnectedPair(cluster.DefaultConfig(), cluster.ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	tb.Chaos.Arm(chaos.Plan{Events: chaos.Outage(tb.HostLink(0),
		tb.Eng.Now().Add(simtime.Us(100)), tb.Eng.Now().Add(simtime.Us(300)))})
	var evs []verbs.AsyncEventType
	tb.Eng.Spawn("guest-watcher", func(p *simtime.Proc) {
		aev, ok := verbs.AsAsync(cp.Client.Dev)
		if !ok {
			t.Error("masq device does not expose the async event channel")
			return
		}
		for {
			ev, ok := aev.GetAsyncEventTimeout(p, simtime.Ms(2))
			if !ok {
				return
			}
			evs = append(evs, ev.Type)
		}
	})
	tb.Eng.Run()
	if len(evs) != 2 || evs[0] != verbs.EventPortDown || evs[1] != verbs.EventPortUp {
		t.Fatalf("guest saw %v, want [PORT_DOWN PORT_UP]", evs)
	}
	if tb.Chaos.Stats.LinkTransitions != 2 {
		t.Fatalf("injector transitions = %d, want 2", tb.Chaos.Stats.LinkTransitions)
	}
}

// TestOOBSurvivesBurstLoss pushes the out-of-band channel through two
// chaos loss windows: the connection handshake retransmits its SYN until
// the first window passes, and a data message sent into the second window
// is retransmitted and delivered exactly once.
func TestOOBSurvivesBurstLoss(t *testing.T) {
	cfg := cluster.DefaultConfig()
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	c, err := tb.NewNode(cluster.ModeHost, 0, vni, packet.NewIP(10, 9, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.NewNode(cluster.ModeHost, 1, vni, packet.NewIP(10, 9, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	l := tb.HostLink(0)
	tb.Chaos.Arm(chaos.Plan{Seed: 1, Events: []chaos.Event{
		chaos.Loss(l, simtime.Time(simtime.Us(10)), simtime.Time(simtime.Ms(3)), 1.0, 1),
		chaos.Loss(l, simtime.Time(simtime.Ms(8)), simtime.Time(simtime.Ms(10)), 1.0, 1),
	}})

	var got []byte
	var extra bool
	srvDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("server", func(p *simtime.Proc) {
		lis, err := s.OOB.Listen(4001)
		if err != nil {
			srvDone.Trigger(err)
			return
		}
		conn, ok := lis.AcceptTimeout(p, simtime.Ms(100))
		if !ok {
			srvDone.Trigger(fmt.Errorf("no connection"))
			return
		}
		msg, err := conn.Recv(p)
		if err != nil {
			srvDone.Trigger(err)
			return
		}
		got = msg
		if _, err := conn.RecvTimeout(p, simtime.Ms(20)); err == nil {
			extra = true // a duplicate delivery would be a retx bug
		}
		srvDone.Trigger(nil)
	})
	cliDone := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("client", func(p *simtime.Proc) {
		p.Sleep(simtime.Us(50)) // dial inside the first loss window
		conn, err := c.OOB.Dial(p, s.VIP, 4001, simtime.Ms(50))
		if err != nil {
			cliDone.Trigger(err)
			return
		}
		// Send into the second loss window: the DATA segment is lost and
		// must be retransmitted.
		for p.Now() < simtime.Time(simtime.Ms(8)+simtime.Us(500)) {
			p.Sleep(simtime.Us(100))
		}
		cliDone.Trigger(conn.Send(p, []byte("through the storm")))
	})
	tb.Eng.Run()
	if err := cliDone.Value(); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := srvDone.Value(); err != nil {
		t.Fatalf("server: %v", err)
	}
	if string(got) != "through the storm" {
		t.Fatalf("server got %q", got)
	}
	if extra {
		t.Fatal("message delivered more than once")
	}
	if c.OOB.Stats.SynRetx == 0 {
		t.Fatalf("no SYN retransmissions under a full blackout: %+v", c.OOB.Stats)
	}
	if c.OOB.Stats.DataRetx == 0 {
		t.Fatalf("no DATA retransmissions under loss: %+v", c.OOB.Stats)
	}
}

// soakSummary runs the chaos soak once for a given seed and returns a
// deterministic textual digest of everything observable: the injector's
// applied-fault trace, per-stream goodput and recovery counters, per-link
// drop accounting, backend failure counters, and the controller's final
// table. Two same-seed runs must produce byte-identical digests.
func soakSummary(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := shortRetry(cluster.DefaultConfig())
	cfg.Hosts = 3
	tb := cluster.New(cfg)
	tb.AddTenant(vni, "t")
	tb.AllowAll(vni)
	mk := func(host int, last byte) *cluster.Node {
		n, err := tb.NewNode(cluster.ModeMasQ, host, vni, packet.NewIP(192, 168, 9, last))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c0, s0 := mk(0, 1), mk(1, 2) // stream A: host0 → host1, node idx 0,1
	c1, s1 := mk(2, 3), mk(1, 4) // stream B: host2 → host1, node idx 2,3
	victim := mk(2, 5)           // node idx 4: idle, crashed mid-run
	_ = victim

	// Long enough that streams can ride out the worst-case fault windows
	// (outages up to 10% of the horizon) plus oob retransmission backoff.
	horizon := simtime.Ms(50)
	plan := chaos.RandomPlan(seed, tb.Links, horizon, 6, 0.25)
	plan.Events = append(plan.Events, chaos.Crash(4, simtime.Time(simtime.Ms(20))))
	tb.Chaos.Arm(plan)

	pol := reconnect.Policy{
		MaxAttempts: 12,
		Backoff:     simtime.Us(500),
		MaxBackoff:  simtime.Ms(4),
		DialTimeout: simtime.Ms(5),
	}
	resA := perftest.StartResilientWriteBW(tb, c0, s0, 7500, 8192, horizon, pol)
	resB := perftest.StartResilientWriteBW(tb, c1, s1, 7501, 8192, horizon, pol)
	tb.Eng.Run()

	if !resA.Triggered() || !resB.Triggered() {
		t.Fatalf("streams stuck (pending procs: %v)", tb.Eng.PendingProcs())
	}
	a, b := resA.Value(), resB.Value()
	// Liveness: sub-fatal loss and bounded outages must never black a
	// stream out permanently — both recovered and moved bytes.
	if a.Msgs == 0 || b.Msgs == 0 {
		t.Fatalf("a stream moved no data: A=%+v B=%+v", a, b)
	}
	if a.GaveUp || b.GaveUp {
		t.Fatalf("a stream gave up reconnecting: A=%+v B=%+v", a, b)
	}
	// No leaks: every app closed its endpoints (or died trying), every
	// fatal event's cleanup ran, the crash flushed the victim — so no
	// conntrack entry may survive the drain, and the controller holds
	// exactly the four live nodes' mappings.
	for i, be := range tb.Backends {
		if be == nil {
			continue
		}
		if n := len(be.CT.Conns()); n != 0 {
			t.Fatalf("backend %d leaked %d conntrack entries: %v", i, n, be.CT.Conns())
		}
	}
	if got := len(tb.Ctrl.Dump(vni)); got != 4 {
		t.Fatalf("controller has %d mappings after drain, want 4", got)
	}

	var sum bytes.Buffer
	sum.Write(tb.Chaos.TraceBytes())
	fmt.Fprintf(&sum, "\nA msgs=%d bytes=%d fatals=%d reconnects=%d\n", a.Msgs, a.Bytes, a.Fatals, a.Reconnects)
	fmt.Fprintf(&sum, "B msgs=%d bytes=%d fatals=%d reconnects=%d\n", b.Msgs, b.Bytes, b.Fatals, b.Reconnects)
	for i, l := range tb.Links {
		st := l.Stats()
		fmt.Fprintf(&sum, "link%d delivered=%d dropped=%d down=%d loss=%d\n",
			i, st.Delivered, st.Dropped, st.DroppedDown, st.DroppedLoss)
	}
	for i, be := range tb.Backends {
		if be == nil {
			continue
		}
		fmt.Fprintf(&sum, "backend%d fatals=%d cleanups=%d crashes=%d\n",
			i, be.Stats.FatalEvents, be.Stats.AsyncCleanups, be.Stats.Crashes)
	}
	fmt.Fprintf(&sum, "chaos transitions=%d loss=%d crashes=%d ctrl=%d\n",
		tb.Chaos.Stats.LinkTransitions, tb.Chaos.Stats.LossWindows,
		tb.Chaos.Stats.Crashes, len(tb.Ctrl.Dump(vni)))
	return sum.Bytes()
}

// TestChaosSoak is the capstone: two resilient streams and an idle victim
// on three hosts under a seeded random fault schedule plus a VM crash.
// Invariants: streams finish and recover, nothing leaks, no process hangs,
// and the entire run is byte-identical across same-seed executions.
func TestChaosSoak(t *testing.T) {
	first := soakSummary(t, 1702)
	second := soakSummary(t, 1702)
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed soak runs diverged:\n--- A ---\n%s\n--- B ---\n%s", first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty soak summary")
	}
}
