package cluster

import (
	"fmt"

	"masq/internal/packet"
	"masq/internal/simtime"
)

// ConnectedPair is a ready-to-use RC connection between two nodes on
// different hosts of a fresh testbed: the standard fixture of the paper's
// microbenchmarks.
type ConnectedPair struct {
	TB             *Testbed
	ClientNode     *Node
	ServerNode     *Node
	Client, Server *Endpoint
}

// NewConnectedPair builds a testbed with one allow-all tenant, boots a
// client on host 0 and a server on host 1 under the given mode, and brings
// an RC connection to RTS. The testbed's engine is drained and ready for
// workload processes.
func NewConnectedPair(cfg Config, mode Mode) (*ConnectedPair, error) {
	return NewConnectedPairOpts(cfg, mode, DefaultEndpointOpts())
}

// NewConnectedPairOpts is NewConnectedPair with endpoint options.
func NewConnectedPairOpts(cfg Config, mode Mode, opts EndpointOpts) (*ConnectedPair, error) {
	tb := New(cfg)
	const vni = 100
	tb.AddTenant(vni, "tenant")
	tb.AllowAll(vni)
	cNode, err := tb.NewNode(mode, 0, vni, packet.NewIP(192, 168, 1, 1))
	if err != nil {
		return nil, err
	}
	sNode, err := tb.NewNode(mode, 1, vni, packet.NewIP(192, 168, 1, 2))
	if err != nil {
		return nil, err
	}
	cp := &ConnectedPair{TB: tb, ClientNode: cNode, ServerNode: sNode}
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("pair-setup", func(p *simtime.Proc) {
		var err error
		if cp.Client, err = cNode.Setup(p, opts); err != nil {
			done.Trigger(err)
			return
		}
		if cp.Server, err = sNode.Setup(p, opts); err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, cp.Server, cp.Client, 7000)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if !done.Triggered() {
		return nil, fmt.Errorf("cluster: pair setup stalled (pending: %v)", tb.Eng.PendingProcs())
	}
	if err := done.Value(); err != nil {
		return nil, err
	}
	return cp, nil
}

// ConnectExtraQP adds another connected RC QP between the pair's two nodes
// (Fig. 11's multi-QP scaling). port must be unique per call.
func (cp *ConnectedPair) ConnectExtraQP(opts EndpointOpts, port uint16) (client, server *Endpoint, err error) {
	tb := cp.TB
	done := simtime.NewEvent[error](tb.Eng)
	var cep, sep *Endpoint
	tb.Eng.Spawn("extra-qp", func(p *simtime.Proc) {
		var err error
		if cep, err = cp.ClientNode.Setup(p, opts); err != nil {
			done.Trigger(err)
			return
		}
		if sep, err = cp.ServerNode.Setup(p, opts); err != nil {
			done.Trigger(err)
			return
		}
		se, ce := Pair(tb.Eng, sep, cep, port)
		if err := se.Wait(p); err != nil {
			done.Trigger(err)
			return
		}
		done.Trigger(ce.Wait(p))
	})
	tb.Eng.Run()
	if err := done.Value(); err != nil {
		return nil, nil, err
	}
	return cep, sep, nil
}

// NewConnectedPairs builds n independent node pairs (client on host 0,
// server on host 1) in one testbed and connects each — the Fig. 19 VM-pair
// scaling fixture.
func NewConnectedPairs(cfg Config, mode Mode, n int) (*Testbed, []*ConnectedPair, error) {
	tb := New(cfg)
	const vni = 100
	tb.AddTenant(vni, "tenant")
	tb.AllowAll(vni)
	pairs := make([]*ConnectedPair, n)
	for i := 0; i < n; i++ {
		subnet, host := byte(1+i/100), byte((i%100)*2)
		cNode, err := tb.NewNode(mode, 0, vni, packet.NewIP(192, 168, subnet, host+1))
		if err != nil {
			return nil, nil, err
		}
		sNode, err := tb.NewNode(mode, 1, vni, packet.NewIP(192, 168, subnet, host+2))
		if err != nil {
			return nil, nil, err
		}
		pairs[i] = &ConnectedPair{TB: tb, ClientNode: cNode, ServerNode: sNode}
	}
	done := simtime.NewEvent[error](tb.Eng)
	tb.Eng.Spawn("pairs-setup", func(p *simtime.Proc) {
		for i, cp := range pairs {
			var err error
			if cp.Client, err = cp.ClientNode.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			if cp.Server, err = cp.ServerNode.Setup(p, DefaultEndpointOpts()); err != nil {
				done.Trigger(err)
				return
			}
			se, ce := Pair(tb.Eng, cp.Server, cp.Client, uint16(7000+i))
			if err := se.Wait(p); err != nil {
				done.Trigger(err)
				return
			}
			if err := ce.Wait(p); err != nil {
				done.Trigger(err)
				return
			}
		}
		done.Trigger(nil)
	})
	tb.Eng.Run()
	if !done.Triggered() {
		return nil, nil, fmt.Errorf("cluster: pairs setup stalled")
	}
	if err := done.Value(); err != nil {
		return nil, nil, err
	}
	return tb, pairs, nil
}
