// Package cluster assembles complete testbeds: hosts with RNICs wired by a
// direct link or a ToR switch, the VXLAN overlay fabric, the SDN
// controller, MasQ backends, and workload nodes running under any of the
// four virtualization systems of the paper's evaluation (Fig. 7):
// Host-RDMA, SR-IOV passthrough, MasQ (VF or PF placement), and FreeFlow
// containers. It also provides the Fig. 1 connection workflow (resource
// setup, out-of-band exchange, QP state transitions) that every example
// and benchmark builds on.
package cluster

import (
	"fmt"

	"masq/internal/baselines/freeflow"
	"masq/internal/baselines/hostrdma"
	"masq/internal/baselines/sriov"
	"masq/internal/chaos"
	"masq/internal/controller"
	"masq/internal/hyper"
	"masq/internal/masq"
	"masq/internal/mem"
	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/rnic"
	"masq/internal/simnet"
	"masq/internal/simtime"
	"masq/internal/trace"
	"masq/internal/verbs"
)

// Mode selects the virtualization system a node runs under.
type Mode int

// Node modes.
const (
	ModeHost Mode = iota
	ModeSRIOV
	ModeMasQ   // VF placement (default MasQ)
	ModeMasQPF // PF placement (Fig. 9)
	ModeFreeFlow
	ModeMasQShared // VF placement with shared host connections
)

var modeNames = [...]string{"host-rdma", "sr-iov", "masq", "masq-pf", "freeflow", "masq-shared"}

func (m Mode) String() string {
	if m >= 0 && int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes a testbed. Zero fields take the paper's defaults.
type Config struct {
	Hosts    int
	HostMem  uint64
	VMMem    uint64
	RNIC     rnic.Params
	Hyper    hyper.Params
	Overlay  overlay.Params
	Masq     masq.Params
	FreeFlow freeflow.Params
	Ctrl     controller.Params
	// CtrlFault arms the controller's fault-injection plan (unavailability
	// windows, dropped replies) for the whole testbed run.
	CtrlFault controller.FaultPlan
	// Chaos arms a network/VM fault schedule on the testbed's injector as
	// soon as the topology is built. Plans referencing links or nodes can
	// also be armed later via Testbed.Chaos.Arm.
	Chaos chaos.Plan
	PropDelay simtime.Duration
	SwitchFwd simtime.Duration

	// Shards runs the testbed on a parallel ShardedEngine: host i (its
	// RNIC, vswitch, VMs, procs) lives on shard i % Shards, while the ToR
	// switch, fabric, and chaos injector stay on shard 0. The underlay
	// links become cross-shard exchanges whose minimum latency is
	// PropDelay, which therefore must be positive and becomes the engine's
	// conservative lookahead. 0 (the default) keeps the classic single
	// Engine with no exchange machinery; 1 runs the sharded machinery on
	// one shard — the reference oracle that N-shard runs are byte-compared
	// against. With Shards > 1, ModeHost and ModeSRIOV nodes are always
	// supported; MasQ modes additionally require CtrlShards > 0 (the
	// sharded controller places each shard on an engine shard and backends
	// reach it through per-host exchange proxies — see controller.Remote).
	// FreeFlow is not shard-safe, and chaos plans are rejected (fault
	// callbacks mutate devices across shards).
	Shards int

	// CtrlShards splits the controller's mapping table across this many
	// shards by consistent hash of (VNI, vGID) — each with its own epoch,
	// lease table, push queues, and (with Ctrl.Replicate) a standby
	// replica that auto-promotes on failover. 0 (the default) keeps the
	// classic single Controller in Testbed.Ctrl; any value > 0 builds a
	// controller.Sharded in Testbed.CtrlSharded instead. CtrlSvc always
	// exposes whichever was built. On an engine-sharded testbed controller
	// shard c lives on engine shard c % Shards.
	CtrlShards int

	// Trace enables the cross-layer span recorder: Testbed.Trace is
	// created and threaded through every device, backend, ring and the
	// controller, and each node's verbs device is wrapped so control verbs
	// open invocations. Tracing never changes virtual-time behaviour.
	Trace bool
}

// DefaultConfig mirrors the paper's Table 3 testbed: two directly
// connected servers, 96 GB RAM, 40 Gbps CX-3-calibrated RNICs.
func DefaultConfig() Config {
	return Config{
		Hosts:     2,
		HostMem:   96 << 30,
		VMMem:     4 << 30,
		RNIC:      rnic.DefaultParams(),
		Hyper:     hyper.DefaultParams(),
		Overlay:   overlay.DefaultParams(),
		Masq:      masq.DefaultParams(),
		FreeFlow:  freeflow.DefaultParams(),
		Ctrl:      controller.DefaultParams(),
		PropDelay: simtime.Us(0.1),
		SwitchFwd: simtime.Us(0.3),
	}
}

// Testbed is an assembled cluster.
type Testbed struct {
	// Eng is the control-plane engine: shard 0 of Sharded when the testbed
	// is sharded, or the single global engine otherwise. The controller,
	// fabric, ToR switch, and chaos injector live on it.
	Eng *simtime.Engine
	// Sharded is the parallel engine driving all shards, non-nil iff
	// Cfg.Shards > 0. Drive sharded testbeds with tb.Run/tb.RunUntil (or
	// Sharded.Run), never Eng.Run — shard 0 alone would starve the rest.
	Sharded *simtime.ShardedEngine
	Cfg   Config
	Hosts []*hyper.Host
	Fab   *overlay.Fabric
	// Ctrl is the classic single controller, non-nil iff CtrlShards == 0.
	Ctrl *controller.Controller
	// CtrlSharded is the sharded controller, non-nil iff CtrlShards > 0.
	CtrlSharded *controller.Sharded
	// CtrlSvc is the controller service every backend talks to: Ctrl or
	// CtrlSharded, whichever the config built.
	CtrlSvc  controller.Service
	Backends []*masq.Backend // per host, nil until first MasQ node
	// Links are the underlay links: one for a direct pair, or one per host
	// toward the ToR switch (Links[i] is host i's uplink). Attach taps here
	// to capture pcaps, or target them with chaos faults.
	Links []*simnet.Link
	// Switch is the ToR switch for testbeds with more than two hosts (nil
	// for a directly connected pair).
	Switch *simnet.Switch
	// Chaos is the testbed's fault injector. Link/switch transitions it
	// applies are mirrored into the adjacent RNICs' port state (raising
	// port async events), and NodeCrash events call CrashNode.
	Chaos *chaos.Injector
	// Trace is the cross-layer span recorder, non-nil iff Cfg.Trace.
	Trace *trace.Recorder

	masqMode   masq.Mode
	routers    []*freeflow.Router // per host, lazy
	neighbors  map[packet.IP]packet.MAC
	nodes      []*Node // in creation order; chaos NodeCrash indexes this
	vfSeq      byte
	nodeSeq    int
	leaseUntil simtime.Time // nonzero once StartLeases ran; late backends join
}

// New assembles a testbed. Two hosts are directly connected; more hang off
// a ToR switch.
func New(cfg Config) *Testbed {
	if cfg.Hosts == 0 {
		cfg = DefaultConfig()
	}
	var eng *simtime.Engine
	var se *simtime.ShardedEngine
	if cfg.Shards > 0 {
		if cfg.PropDelay <= 0 {
			panic("cluster: sharded testbeds need PropDelay > 0 (it is the conservative lookahead)")
		}
		if cfg.Shards > 1 && len(cfg.Chaos.Events) > 0 {
			panic("cluster: chaos plans are not supported with Shards > 1")
		}
		se = simtime.NewSharded(cfg.Shards)
		eng = se.Shard(0)
	} else {
		eng = simtime.NewEngine()
	}
	tb := &Testbed{
		Eng:       eng,
		Sharded:   se,
		Cfg:       cfg,
		neighbors: make(map[packet.IP]packet.MAC),
		masqMode:  masq.ModeVF,
	}
	if cfg.CtrlShards > 0 {
		// Controller shard c lives on engine shard c % Shards (shard 0's
		// engine when the testbed is not engine-sharded), so MasQ nodes on
		// any engine shard reach their shards without serializing through
		// engine shard 0.
		engines := []*simtime.Engine{eng}
		if se != nil {
			engines = engines[:0]
			for i := 0; i < se.NumShards(); i++ {
				engines = append(engines, se.Shard(i))
			}
		}
		tb.CtrlSharded = controller.NewSharded(engines, cfg.Ctrl, cfg.CtrlShards)
		tb.CtrlSvc = tb.CtrlSharded
		tb.CtrlSharded.SetFaultPlan(cfg.CtrlFault)
	} else {
		tb.Ctrl = controller.New(eng, cfg.Ctrl)
		tb.CtrlSvc = tb.Ctrl
		tb.Ctrl.SetFaultPlan(cfg.CtrlFault)
	}
	tb.Fab = overlay.NewFabric(eng, cfg.Overlay)
	if cfg.Trace {
		tb.Trace = trace.NewSharded(max(cfg.Shards, 1))
		if tb.CtrlSharded != nil {
			tb.CtrlSharded.SetRecorder(tb.Trace)
		} else {
			tb.Ctrl.SetRecorder(tb.Trace)
		}
	}

	resolveHost := func(ip packet.IP) (packet.MAC, bool) {
		mac, ok := tb.neighbors[ip]
		return mac, ok
	}
	for i := 0; i < cfg.Hosts; i++ {
		ip := packet.NewIP(172, 16, byte(i>>8), byte(i+1))
		mac := packet.MAC{0x02, 0x10, 0, 0, byte(i >> 8), byte(i)}
		// Disjoint MR-key ranges per host: a live-migrated MR keeps its
		// lkey/rkey at the destination (peers hold rkeys in application
		// state), which must never collide with a key minted there.
		rn := cfg.RNIC
		rn.KeyBase = uint32(i) << 20
		h := hyper.NewHost(tb.HostEngine(i), hyper.HostConfig{
			Name: fmt.Sprintf("host%d", i), IP: ip, MAC: mac,
			MemBytes: cfg.HostMem, RNIC: rn, Hyper: cfg.Hyper,
			Fabric: tb.Fab, ResolveHost: resolveHost,
		})
		tb.neighbors[ip] = mac
		h.Dev.SetRecorder(tb.Trace)
		tb.Hosts = append(tb.Hosts, h)
	}
	tb.Backends = make([]*masq.Backend, cfg.Hosts)
	tb.routers = make([]*freeflow.Router, cfg.Hosts)

	switch {
	case cfg.Hosts == 2 && se == nil:
		tb.Links = append(tb.Links,
			simnet.Connect(eng, tb.Hosts[0].Port, tb.Hosts[1].Port, cfg.RNIC.LineRate, cfg.PropDelay))
	case cfg.Hosts == 2:
		tb.Links = append(tb.Links,
			simnet.ConnectVia(se, tb.Hosts[0].Port, tb.Hosts[1].Port, cfg.RNIC.LineRate, cfg.PropDelay))
	default:
		tb.Switch = simnet.NewSwitch(eng, "tor", cfg.SwitchFwd)
		for _, h := range tb.Hosts {
			if se == nil {
				tb.Links = append(tb.Links, tb.Switch.AttachPort(h.Port, cfg.RNIC.LineRate, cfg.PropDelay))
			} else {
				tb.Links = append(tb.Links, tb.Switch.AttachPortVia(se, h.Port, cfg.RNIC.LineRate, cfg.PropDelay))
			}
		}
	}

	tb.Chaos = chaos.NewInjector(eng)
	tb.Chaos.OnCrash = func(node int) {
		if node >= 0 && node < len(tb.nodes) {
			_ = tb.CrashNode(tb.nodes[node])
		}
	}
	tb.Chaos.OnMigrate = func(node, dst int) {
		if node < 0 || node >= len(tb.nodes) || dst < 0 || dst >= len(tb.Hosts) {
			return
		}
		n := tb.nodes[node]
		tb.Eng.Spawn("chaos-migrate:"+n.Name, func(p *simtime.Proc) {
			_, _ = tb.LiveMigrateNode(p, n, dst, MigrateOpts{})
		})
	}
	if tb.CtrlSharded != nil {
		// A whole-controller outage on a sharded control plane crashes
		// every shard's primary; with replication on, each standby
		// auto-promotes after the detect window, so the Until edge's
		// RestartAll only restarts shards still down.
		tb.Chaos.OnCtrlCrash = func() { tb.CtrlSharded.CrashAll() }
		tb.Chaos.OnCtrlRestart = func() { tb.CtrlSharded.RestartAll() }
		tb.Chaos.OnShardCrash = tb.CtrlSharded.CrashShard
		tb.Chaos.OnShardRestart = tb.CtrlSharded.RestartShard
		tb.Chaos.OnShardPartition = func(shard int, heal simtime.Time) {
			tb.CtrlSharded.PartitionShard(shard, heal.Sub(tb.Eng.Now()))
		}
		tb.Chaos.OnReplLag = tb.CtrlSharded.SetLagWindow
	} else {
		tb.Chaos.OnCtrlCrash = func() { tb.Ctrl.Crash() }
		tb.Chaos.OnCtrlRestart = func() { tb.Ctrl.Restart() }
	}
	tb.Chaos.OnLinkState = func(l *simnet.Link, down bool) {
		// A cable cut is visible to both adjacent RNICs as a port event.
		for _, h := range tb.Hosts {
			if l.A == h.Port || l.B == h.Port {
				h.Dev.SetPortState(!down)
			}
		}
	}
	tb.Chaos.Arm(cfg.Chaos)
	return tb
}

// HostEngine returns the engine host i's components run on: shard
// i % Shards of the sharded engine, or the single global engine. Spawn
// workload procs that touch host i's devices on this engine.
func (tb *Testbed) HostEngine(i int) *simtime.Engine {
	if tb.Sharded == nil {
		return tb.Eng
	}
	return tb.Sharded.Shard(i % tb.Sharded.NumShards())
}

// Run drives the testbed to quiescence — on the sharded engine when
// configured, the classic engine otherwise — and returns the final
// virtual time.
func (tb *Testbed) Run() simtime.Time {
	if tb.Sharded != nil {
		return tb.Sharded.Run()
	}
	return tb.Eng.Run()
}

// RunUntil drives the testbed up to the deadline (see Engine.RunUntil).
func (tb *Testbed) RunUntil(deadline simtime.Time) simtime.Time {
	if tb.Sharded != nil {
		return tb.Sharded.RunUntil(deadline)
	}
	return tb.Eng.RunUntil(deadline)
}

// PendingProcs lists blocked procs across every shard of the testbed's
// engine, for post-run diagnostics.
func (tb *Testbed) PendingProcs() []string {
	if tb.Sharded != nil {
		return tb.Sharded.PendingProcs()
	}
	return tb.Eng.PendingProcs()
}

// HostLink returns the underlay link adjacent to host i: the single
// direct link for a two-host pair, or the host's ToR uplink otherwise.
func (tb *Testbed) HostLink(i int) *simnet.Link {
	if tb.Switch == nil {
		return tb.Links[0]
	}
	return tb.Links[i]
}

// SetMasqMode selects VF (default) or PF placement for MasQ nodes created
// afterwards. It must be called before the first MasQ node on a host.
func (tb *Testbed) SetMasqMode(m masq.Mode) { tb.masqMode = m }

// AddTenant creates a VPC.
func (tb *Testbed) AddTenant(vni uint32, name string) *overlay.Tenant {
	return tb.Fab.AddTenant(vni, name)
}

// AllowAll installs a lowest-priority allow-everything rule on the tenant
// (the common "open security group" starting point in the evaluation).
func (tb *Testbed) AllowAll(vni uint32) int {
	all, _ := packet.ParseCIDR("0.0.0.0/0")
	return tb.Fab.Tenant(vni).Policy.AddRule(overlay.Rule{
		Priority: 1, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Allow,
	})
}

// ctrlFor returns the controller service host hostIdx's backend should
// talk to: the shared Ctrl/CtrlSharded front directly, or — on an
// engine-sharded testbed with a sharded controller — a per-host
// controller.Remote that routes every RPC and notification over
// exchanges, so host procs never touch another engine shard's state.
func (tb *Testbed) ctrlFor(hostIdx int) controller.Service {
	if tb.CtrlSharded == nil {
		return tb.Ctrl
	}
	if tb.Sharded == nil {
		return tb.CtrlSharded
	}
	n := tb.Sharded.NumShards()
	return controller.NewRemote(tb.Sharded, tb.CtrlSharded, hostIdx%n,
		func(ctrlShard int) int { return ctrlShard % n }, tb.Cfg.PropDelay)
}

// Backend returns (creating on demand) the MasQ backend of a host.
func (tb *Testbed) Backend(hostIdx int) *masq.Backend {
	if tb.Backends[hostIdx] == nil {
		tb.Backends[hostIdx] = masq.NewBackend(tb.Hosts[hostIdx], tb.ctrlFor(hostIdx), tb.Fab, tb.Cfg.Masq, tb.masqMode)
		tb.Backends[hostIdx].SetRecorder(tb.Trace)
		if tb.leaseUntil != 0 {
			tb.Backends[hostIdx].StartLeaseRenewal(tb.leaseUntil)
		}
	}
	return tb.Backends[hostIdx]
}

// StartLeases starts every backend's lease-renewal process, running until
// the given horizon. Backends created later (lazily, by the first MasQ node
// on a host) join automatically. Renewals keep controller registrations
// alive past their LeaseTTL and double as the failure detector that drives
// post-crash reconciliation.
func (tb *Testbed) StartLeases(until simtime.Time) {
	tb.leaseUntil = until
	for _, b := range tb.Backends {
		if b != nil {
			b.StartLeaseRenewal(until)
		}
	}
}

// CrashController schedules a controller crash at the given instant and,
// when restart is nonzero, a restart at that later instant. The crash wipes
// the controller's mapping table and pending notification queues and is
// recorded in the chaos trace; the restart bumps the epoch, fencing any
// stale state. Recovery is driven by the backends' lease renewals (see
// StartLeases), which re-register live endpoints and re-request push-down.
func (tb *Testbed) CrashController(at, restart simtime.Time) {
	tb.Chaos.Arm(chaos.Plan{Seed: 1, Events: []chaos.Event{chaos.CtrlOutage(at, restart)}})
}

// Router returns (creating on demand) the FreeFlow router of a host.
func (tb *Testbed) Router(hostIdx int) *freeflow.Router {
	if tb.routers[hostIdx] == nil {
		tb.routers[hostIdx] = freeflow.NewRouter(tb.Hosts[hostIdx], tb.Cfg.FreeFlow)
	}
	return tb.routers[hostIdx]
}

// resolveUnderlayGID maps a GID carrying an underlay IP (host or VF) to
// its addressing — the neighbor table of Host-RDMA and SR-IOV drivers.
func (tb *Testbed) resolveUnderlayGID(gid packet.GID) (packet.IP, packet.MAC, bool) {
	ip, ok := gid.IP()
	if !ok {
		return packet.IP{}, packet.MAC{}, false
	}
	mac, ok := tb.neighbors[ip]
	return ip, mac, ok
}

// Node is one workload endpoint: an application environment with a verbs
// provider, an out-of-band channel, memory, and (virtualization-scaled)
// compute.
type Node struct {
	Name string
	Mode Mode
	VIP  packet.IP
	Host *hyper.Host

	Provider verbs.Provider
	Mem      *mem.AddrSpace
	OOB      *oob
	VM       *hyper.VM  // nil for host/container nodes
	VF       *rnic.Func // the passthrough VF of an SR-IOV node

	tb      *Testbed
	vni     uint32
	compute func(p *simtime.Proc, d simtime.Duration)
	crashed bool

	dev verbs.Device // cached open device
}

// Crashed reports whether the node was killed by CrashNode.
func (n *Node) Crashed() bool { return n.crashed }

// NewNode creates a workload endpoint on a host under the given mode,
// attached to tenant vni at virtual IP vip.
func (tb *Testbed) NewNode(mode Mode, hostIdx int, vni uint32, vip packet.IP) (*Node, error) {
	if tb.Sharded != nil && tb.Sharded.NumShards() > 1 {
		switch mode {
		case ModeHost, ModeSRIOV:
			// Shard-safe: after setup these nodes only interact across
			// hosts through simnet frames, which ride the exchanges.
		case ModeMasQ, ModeMasQPF, ModeMasQShared:
			// Shard-safe iff the controller is sharded: backends then talk
			// to it through per-host exchange proxies (controller.Remote)
			// instead of reaching into another shard's state.
			if tb.CtrlSharded == nil {
				return nil, fmt.Errorf("cluster: %v nodes with Shards > 1 need CtrlShards > 0 "+
					"(the sharded controller is what makes cross-shard control RPCs shard-safe)", mode)
			}
		default:
			return nil, fmt.Errorf("cluster: %v nodes call the shared controller from host procs, "+
				"which is not shard-safe; use ModeHost or ModeSRIOV with Shards > 1", mode)
		}
	}
	tb.nodeSeq++
	name := fmt.Sprintf("%s-%d", mode, tb.nodeSeq)
	h := tb.Hosts[hostIdx]
	n := &Node{Name: name, Mode: mode, VIP: vip, Host: h, tb: tb, vni: vni}

	switch mode {
	case ModeHost:
		// Bare metal: app in host userspace on the PF. The out-of-band
		// channel still runs over the tenant overlay for uniformity.
		vp, err := h.VSwitch.AttachVM(vni, vip)
		if err != nil {
			return nil, err
		}
		n.Mem = h.HVA
		n.Provider = hostrdma.New(hostrdma.Config{
			Dev: h.Dev, Fn: h.Dev.PF(), Mem: h.HVA, Resolve: tb.resolveUnderlayGID,
		})
		n.compute = func(p *simtime.Proc, d simtime.Duration) { p.Sleep(d) }
		n.OOB = newOOB(tb, h, vni, vp)
	case ModeSRIOV:
		vm, err := h.NewVM(name, tb.Cfg.VMMem, vni, vip)
		if err != nil {
			return nil, err
		}
		n.VM = vm
		n.Mem = vm.GVA
		tb.vfSeq++
		vfIP := packet.NewIP(172, 18, byte(hostIdx), tb.vfSeq)
		vfMAC := packet.MAC{0x02, 0x20, 0, 0, byte(hostIdx), tb.vfSeq}
		pr, vf, err := sriov.NewProvider(h, vm, vfIP, vfMAC, tb.resolveUnderlayGID)
		if err != nil {
			vm.Shutdown()
			return nil, err
		}
		tb.neighbors[vfIP] = vfMAC
		n.Provider = pr
		n.VF = vf
		n.compute = vm.Compute
		n.OOB = newOOB(tb, h, vni, vm.VNIC)
	case ModeMasQ, ModeMasQPF, ModeMasQShared:
		if mode == ModeMasQPF {
			tb.SetMasqMode(masq.ModePF)
		}
		if mode == ModeMasQShared {
			tb.SetMasqMode(masq.ModeVFShared)
		}
		vm, err := h.NewVM(name, tb.Cfg.VMMem, vni, vip)
		if err != nil {
			return nil, err
		}
		fe, err := tb.Backend(hostIdx).NewFrontend(vm, vni)
		if err != nil {
			vm.Shutdown()
			return nil, err
		}
		n.VM = vm
		n.Mem = vm.GVA
		n.Provider = fe
		n.compute = vm.Compute
		n.OOB = newOOB(tb, h, vni, vm.VNIC)
	case ModeFreeFlow:
		c, err := h.NewContainer(name, vni, vip)
		if err != nil {
			return nil, err
		}
		n.Mem = c.GVA
		r := tb.Router(hostIdx)
		n.Provider = freeflow.NewProvider(r, c, func(gid packet.GID) (packet.IP, packet.MAC, bool) {
			// FreeFlow's controller: virtual GID → host underlay address.
			ip, ok := gid.IP()
			if !ok {
				return packet.IP{}, packet.MAC{}, false
			}
			ep := tb.Fab.Lookup(vni, ip)
			if ep == nil {
				return packet.IP{}, packet.MAC{}, false
			}
			return ep.HostIP, ep.HostMAC, true
		})
		n.compute = c.Compute
		n.OOB = newOOB(tb, h, vni, c.VNIC)
	default:
		return nil, fmt.Errorf("cluster: unknown mode %v", mode)
	}
	tb.nodes = append(tb.nodes, n)
	return n, nil
}

// CrashNode kills a MasQ node's VM abruptly — the unplanned counterpart of
// MigrateNode. The host-side reaction chain runs first (masq.Backend.Crash:
// destroy the session's QPs and flush their conntrack entries, deregister
// MRs, unregister the vBond's controller mapping), then the vNIC is detached
// from the vswitch and the VM's memory released. Surviving peers are NOT
// notified: they discover the death through transport retry exhaustion,
// which surfaces as a QP-fatal async event on their side (Sec. 3.3's
// security argument depends on stale state never outliving the endpoint).
func (tb *Testbed) CrashNode(n *Node) error {
	if n.Mode != ModeMasQ && n.Mode != ModeMasQPF && n.Mode != ModeMasQShared {
		return fmt.Errorf("cluster: crash is implemented for MasQ nodes (got %v)", n.Mode)
	}
	if n.crashed {
		return nil
	}
	n.crashed = true
	fe, _ := n.Provider.(*masq.Frontend)
	vm, vnic := n.VM, n.VM.VNIC
	host := n.Host
	b := tb.Backends[hostIndex(tb, host)]
	tb.Eng.Spawn("crash:"+n.Name, func(p *simtime.Proc) {
		if b != nil && fe != nil {
			b.Crash(p, fe)
		}
		host.VSwitch.DetachVM(vnic)
		vm.Shutdown()
	})
	return nil
}

func hostIndex(tb *Testbed, h *hyper.Host) int {
	for i, x := range tb.Hosts {
		if x == h {
			return i
		}
	}
	return -1
}

// Compute burns CPU time scaled by the node's virtualization overhead.
func (n *Node) Compute(p *simtime.Proc, d simtime.Duration) { n.compute(p, d) }

// Alloc allocates an application buffer and returns its virtual address.
func (n *Node) Alloc(size int) (uint64, error) { return n.Mem.Alloc(size) }

// Write stores data at an application virtual address.
func (n *Node) Write(va uint64, b []byte) error { return n.Mem.Write(va, b) }

// Read loads data from an application virtual address.
func (n *Node) Read(va uint64, b []byte) error { return n.Mem.Read(va, b) }

// MigrateNode live-migrates a MasQ node's VM to another host, following
// the application-assisted scheme the paper endorses in Sec. 5 (after
// AccelNet): the application must first tear down its RDMA resources —
// destroy QPs and deregister MRs, falling back to the TCP path — because
// pinned, DMA-visible memory cannot move. Migration then copies the
// guest's memory image, re-homes the vNIC on the destination vswitch, and
// plugs in a fresh MasQ frontend whose vBond re-registers the (VNI, vGID)
// mapping with the new host's physical identity; peers that reconnect
// resolve the new location through the controller (stale caches are
// refreshed by the controller's push notifications).
func (tb *Testbed) MigrateNode(n *Node, dstHost int) error {
	if n.Mode != ModeMasQ && n.Mode != ModeMasQPF && n.Mode != ModeMasQShared {
		return fmt.Errorf("cluster: live migration is implemented for MasQ nodes (got %v)", n.Mode)
	}
	dst := tb.Hosts[dstHost]
	if n.Host == dst {
		// Same-host "migration" is a no-op: nothing to copy, nothing to
		// re-register — the existing frontend and vBond stay authoritative.
		return nil
	}
	srcIdx := hostIndex(tb, n.Host)
	// The memory move runs first: a refused migration (pinned, DMA-visible
	// guest memory) must leave the source completely untouched — vBond
	// registered, counters unchanged, controller state intact.
	if err := n.VM.MigrateTo(dst); err != nil {
		return err
	}
	if old, ok := n.Provider.(*masq.Frontend); ok {
		old.VBond().Stop()
		// Source-host fast-path state staged for the departed VM —
		// warm-pool QPs, shared-connection carrier entries — dies with it,
		// and the stopped bond leaves the lease set so renewal follows the
		// successor bond created below.
		if srcB := tb.Backends[srcIdx]; srcB != nil {
			srcB.RetireFrontend(old)
		}
	}
	if err := tb.Fab.MoveEndpoint(n.VM.VNIC, dst.VSwitch); err != nil {
		return err
	}
	fe, err := tb.Backend(dstHost).NewFrontend(n.VM, n.vni)
	if err != nil {
		return err
	}
	n.Host = dst
	n.Provider = fe
	n.Mem = n.VM.GVA // the rebuilt guest address space
	n.compute = n.VM.Compute
	n.dev = nil // the guest re-opens its device after resuming
	return nil
}

// Device opens (once) and returns the node's verbs device context.
func (n *Node) Device(p *simtime.Proc) (verbs.Device, error) {
	if n.dev == nil {
		dev, err := n.Provider.Open(p)
		if err != nil {
			return nil, err
		}
		// With tracing on, control verbs issued through this device open
		// trace invocations attributed to this node (tenant + name).
		n.dev = verbs.Instrument(dev, n.tb.Trace, fmt.Sprintf("vni%d/%s", n.vni, n.Name))
	}
	return n.dev, nil
}
