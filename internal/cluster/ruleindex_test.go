package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"masq/internal/overlay"
	"masq/internal/packet"
	"masq/internal/simtime"
)

// ruleEngineFingerprint runs the canonical MasQ scenario — traced pair
// setup, an extra QP, then a deny-all rule change that forces enforcement
// to reset every connection — and renders everything observable about the
// run: the final virtual clock, the full cross-layer trace aggregate, and
// the RCT outcome counters. Mode-dependent scan counters (incremental vs
// full vs skipped) are deliberately excluded: they describe how the work
// was found, not what the simulation did.
func ruleEngineFingerprint(t *testing.T, linear bool) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Trace = true
	cfg.Overlay.LinearRules = linear
	cfg.Masq.LinearEnforce = linear
	cp, err := NewConnectedPair(cfg, ModeMasQ)
	if err != nil {
		t.Fatal(err)
	}
	tb := cp.TB
	if _, _, err := cp.ConnectExtraQP(DefaultEndpointOpts(), 7100); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Spawn("revoke", func(p *simtime.Proc) {
		all := packet.CIDR{}
		tb.Fab.Tenant(100).Policy.AddRule(overlay.Rule{
			Priority: 90, Proto: overlay.ProtoAny, Src: all, Dst: all, Action: overlay.Deny,
		})
	})
	tb.Eng.Run()

	var sb strings.Builder
	fmt.Fprintf(&sb, "now=%d events=%d\n", tb.Eng.Now(), tb.Eng.Events())
	for _, row := range tb.Trace.Aggregate() {
		fmt.Fprintf(&sb, "agg %s %s %d %d %d\n", row.Actor, row.Verb, row.Layer, row.Count, row.Self)
	}
	for hi, be := range tb.Backends {
		if be == nil {
			continue
		}
		s := be.CT.Stats
		fmt.Fprintf(&sb, "host%d validated=%d denied=%d inserted=%d deleted=%d resets=%d hits=%d misses=%d revalidated=%d\n",
			hi, s.Validated, s.Denied, s.Inserted, s.Deleted, s.Resets, s.VerdictHits, s.VerdictMisses, s.Revalidated)
		conns := be.CT.Conns()
		sort.Slice(conns, func(a, b int) bool { return conns[a].String() < conns[b].String() })
		fmt.Fprintf(&sb, "host%d conns=%v\n", hi, conns)
	}
	return sb.String()
}

// TestRuleEngineTraceByteIdentical is the determinism guard for the
// indexed rule engine: the default-mode cluster trace — every span, every
// virtual timestamp, every RCT outcome — must be byte-identical with the
// decision index on and off. The index may only change how fast verdicts
// are found at scale, never what the simulation observes in the canonical
// single-rule scenarios.
func TestRuleEngineTraceByteIdentical(t *testing.T) {
	indexed := ruleEngineFingerprint(t, false)
	linear := ruleEngineFingerprint(t, true)
	if indexed != linear {
		t.Fatalf("cluster trace diverges between indexed and linear rule engines:\n--- indexed ---\n%s\n--- linear ---\n%s", indexed, linear)
	}
}
