package cluster

import (
	"testing"

	"masq/internal/simtime"
	"masq/internal/verbs"
)

// TestSharedModeEndToEnd: under masq-shared, the first connection between
// two hosts establishes one carrier per side, further QPs between the same
// nodes soft-attach instead of paying firmware RTR/RTS, data on attached
// flows is delivered intact, and the wire carries flow-tagged frames.
func TestSharedModeEndToEnd(t *testing.T) {
	cp, err := NewConnectedPair(DefaultConfig(), ModeMasQShared)
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := cp.TB.Backend(0), cp.TB.Backend(1)
	if b0.Stats.SharedCarriers != 1 || b1.Stats.SharedCarriers != 1 {
		t.Fatalf("carriers = %d/%d, want 1 per side for the first connection",
			b0.Stats.SharedCarriers, b1.Stats.SharedCarriers)
	}
	if b0.Stats.SharedAttaches != 0 || b1.Stats.SharedAttaches != 0 {
		t.Fatalf("attaches = %d/%d before any extra QP",
			b0.Stats.SharedAttaches, b1.Stats.SharedAttaches)
	}

	// A second QP between the same nodes multiplexes onto the existing
	// host connection: no new carrier, one attach per side.
	cep, sep, err := cp.ConnectExtraQP(DefaultEndpointOpts(), 7100)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Stats.SharedCarriers != 1 || b1.Stats.SharedCarriers != 1 {
		t.Fatalf("extra QP created a carrier: %d/%d",
			b0.Stats.SharedCarriers, b1.Stats.SharedCarriers)
	}
	if b0.Stats.SharedAttaches != 1 || b1.Stats.SharedAttaches != 1 {
		t.Fatalf("attaches = %d/%d after extra QP, want 1 per side",
			b0.Stats.SharedAttaches, b1.Stats.SharedAttaches)
	}

	// Data still flows on the attached QP: RDMA-write a message and read
	// it back out of the server VM's memory.
	msg := []byte("multiplexed flow")
	done := false
	cp.TB.Eng.Spawn("shared-write", func(p *simtime.Proc) {
		cep.Node.Write(cep.Buf, msg)
		cep.QP.PostSend(p, verbs.SendWR{
			WRID: 1, Op: verbs.WRWrite,
			LocalAddr: cep.Buf, LKey: cep.MR.LKey(), Len: len(msg),
			RemoteAddr: sep.Info().Addr, RKey: sep.Info().RKey,
		})
		wc := cep.SCQ.Wait(p)
		if wc.Status != verbs.WCSuccess {
			t.Errorf("write WC = %+v", wc)
		}
		done = true
	})
	cp.TB.Eng.Run()
	if !done {
		t.Fatal("write on attached QP never completed")
	}
	got := make([]byte, len(msg))
	sep.Node.Read(sep.Info().Addr, got)
	if string(got) != string(msg) {
		t.Fatalf("server memory = %q, want %q", got, msg)
	}

	// The receiving RNIC saw flow-tagged frames on the shared port.
	if rx := cp.TB.Hosts[1].Dev.Stats.TaggedRx; rx == 0 {
		t.Fatal("no flow-tagged frames reached the server host")
	}
}

// TestSharedModeCarrierGoneNextFlowRecarries: destroying the carrier QP
// retires the host connection; the next flow to the same peer pays for a
// fresh carrier instead of attaching to an orphan.
func TestSharedModeCarrierGoneNextFlowRecarries(t *testing.T) {
	cp, err := NewConnectedPair(DefaultConfig(), ModeMasQShared)
	if err != nil {
		t.Fatal(err)
	}
	b0 := cp.TB.Backend(0)
	cp.TB.Eng.Spawn("teardown", func(p *simtime.Proc) {
		if err := cp.Client.QP.Destroy(p); err != nil {
			t.Errorf("destroy carrier: %v", err)
		}
	})
	cp.TB.Eng.Run()
	if _, _, err := cp.ConnectExtraQP(DefaultEndpointOpts(), 7200); err != nil {
		t.Fatal(err)
	}
	if b0.Stats.SharedCarriers != 2 {
		t.Fatalf("client-side carriers = %d, want 2 (fresh carrier after the first died)",
			b0.Stats.SharedCarriers)
	}
	// The server side never lost its carrier, so its new QP attaches.
	if b1 := cp.TB.Backend(1); b1.Stats.SharedCarriers != 1 || b1.Stats.SharedAttaches != 1 {
		t.Fatalf("server side = %d carriers / %d attaches, want 1/1",
			b1.Stats.SharedCarriers, b1.Stats.SharedAttaches)
	}
}
