package packet

import "testing"

// FuzzDecode drives the wire decoder with arbitrary inputs; it must reject
// gracefully, never panic. Seeds cover each protocol family.
func FuzzDecode(f *testing.F) {
	f.Add(Serialize(rocePacket([]byte("seed payload"))...))
	f.Add(Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 1, DstPort: PortVXLAN},
		&VXLAN{VNI: 9},
		Payload(Serialize(rocePacket([]byte("inner"))...)),
	))
	f.Add(Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 1, DstPort: PortRoCEv2},
		&BTH{OpCode: OpFetchAdd, DestQP: 1, PSN: 1},
		&AtomicETH{VA: 8, RKey: 1, SwapAdd: 2, Compare: 3},
	))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		Decode(data) // decode errors are fine; panics are not
	})
}
