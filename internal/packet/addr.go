// Package packet implements encoding and decoding of the wire formats used
// by the simulated network: Ethernet, IPv4, UDP, VXLAN, and the RoCEv2
// (InfiniBand-over-UDP) transport headers BTH, RETH, AETH, DETH and ImmDt.
//
// The design follows gopacket: each header is a Layer that can serialize
// itself and be decoded from bytes, and Decode walks a packet's layers
// outside-in. Unlike gopacket the decoder is closed-world — it knows exactly
// the protocols the simulation uses — which keeps it small and allocation-
// light.
package packet

import (
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// BroadcastMAC is the Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IP is an IPv4 address.
type IP [4]byte

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (ip IP) IsZero() bool { return ip == IP{} }

// NewIP builds an IP from four octets.
func NewIP(a, b, c, d byte) IP { return IP{a, b, c, d} }

// ParseIP parses dotted-quad notation. It returns the zero IP and false on
// malformed input.
func ParseIP(s string) (IP, bool) {
	var ip IP
	var idx, val, digits int
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || idx > 3 {
				return IP{}, false
			}
			ip[idx] = byte(val)
			idx++
			val, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return IP{}, false
		}
		val = val*10 + int(c-'0')
		if val > 255 || digits == 3 {
			return IP{}, false
		}
		digits++
	}
	if idx != 4 {
		return IP{}, false
	}
	return ip, true
}

// CIDR is an IPv4 prefix, e.g. 192.168.1.0/24.
type CIDR struct {
	IP   IP
	Bits int
}

func (c CIDR) String() string { return fmt.Sprintf("%v/%d", c.IP, c.Bits) }

// Contains reports whether ip falls inside the prefix.
func (c CIDR) Contains(ip IP) bool {
	if c.Bits <= 0 {
		return true
	}
	if c.Bits > 32 {
		return false
	}
	mask := ^uint32(0) << (32 - uint(c.Bits))
	return ipU32(ip)&mask == ipU32(c.IP)&mask
}

// ParseCIDR parses "a.b.c.d/n". It returns false on malformed input.
func ParseCIDR(s string) (CIDR, bool) {
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return CIDR{}, false
	}
	ip, ok := ParseIP(s[:slash])
	if !ok {
		return CIDR{}, false
	}
	bits := 0
	if slash+1 >= len(s) {
		return CIDR{}, false
	}
	for i := slash + 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return CIDR{}, false
		}
		bits = bits*10 + int(c-'0')
		if bits > 32 {
			return CIDR{}, false
		}
	}
	return CIDR{IP: ip, Bits: bits}, true
}

// MaskIP zeroes the host bits of ip, keeping the first bits prefix bits.
// bits <= 0 yields 0.0.0.0; bits >= 32 returns ip unchanged.
func MaskIP(ip IP, bits int) IP {
	if bits <= 0 {
		return IP{}
	}
	if bits >= 32 {
		return ip
	}
	v := ipU32(ip) & (^uint32(0) << (32 - uint(bits)))
	return IP{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func ipU32(ip IP) uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// GID is a 128-bit RDMA global identifier. RoCEv2 GIDs are IPv4-mapped IPv6
// addresses (::ffff:a.b.c.d).
type GID [16]byte

// GIDFromIP returns the RoCEv2 GID for an IPv4 address.
func GIDFromIP(ip IP) GID {
	var g GID
	g[10], g[11] = 0xff, 0xff
	copy(g[12:], ip[:])
	return g
}

// IP returns the IPv4 address embedded in an IPv4-mapped GID and true, or
// the zero IP and false if the GID is not IPv4-mapped.
func (g GID) IP() (IP, bool) {
	for i := 0; i < 10; i++ {
		if g[i] != 0 {
			return IP{}, false
		}
	}
	if g[10] != 0xff || g[11] != 0xff {
		return IP{}, false
	}
	return IP{g[12], g[13], g[14], g[15]}, true
}

// IsZero reports whether the GID is all zeros.
func (g GID) IsZero() bool { return g == GID{} }

func (g GID) String() string {
	if ip, ok := g.IP(); ok {
		return "::ffff:" + ip.String()
	}
	return fmt.Sprintf("%x", g[:])
}
