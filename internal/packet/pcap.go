package packet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Pcap support: simulated traffic can be captured and inspected with
// standard tooling (tcpdump -r, Wireshark, tshark). The classic pcap
// format is used (not pcapng): a 24-byte global header followed by
// 16-byte-headed records. Timestamps are the virtual-time nanoseconds of
// the simulation.

const (
	pcapMagicNanos  = 0xa1b23c4d // nanosecond-resolution magic
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkTypeEth = 1 // LINKTYPE_ETHERNET
	pcapSnapLen     = 65535
)

// CapturedFrame is one frame with its virtual capture time in nanoseconds.
type CapturedFrame struct {
	TimeNanos int64
	Data      []byte
}

// WritePcap writes frames as a nanosecond-resolution pcap stream.
func WritePcap(w io.Writer, frames []CapturedFrame) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone (4) and sigfigs (4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkTypeEth)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, f := range frames {
		sec := uint32(f.TimeNanos / 1e9)
		nsec := uint32(f.TimeNanos % 1e9)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], nsec)
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(f.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(f.Data)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(f.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap parses a stream produced by WritePcap (round-trip support and
// testing; it is not a general pcap reader — only the nanosecond classic
// format is accepted).
func ReadPcap(r io.Reader) ([]CapturedFrame, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagicNanos {
		return nil, fmt.Errorf("packet: not a nanosecond pcap stream")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != pcapLinkTypeEth {
		return nil, fmt.Errorf("packet: unsupported link type %d", lt)
	}
	var out []CapturedFrame
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		n := binary.LittleEndian.Uint32(rec[8:12])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("packet: absurd record length %d", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		out = append(out, CapturedFrame{
			TimeNanos: int64(binary.LittleEndian.Uint32(rec[0:4]))*1e9 + int64(binary.LittleEndian.Uint32(rec[4:8])),
			Data:      data,
		})
	}
}
