package packet

import (
	"encoding/binary"
	"fmt"
)

// OpCode is the BTH operation code. The top three bits select the transport
// class (RC = 000, UD = 011) and the low five bits the operation.
type OpCode byte

// Reliable-connection opcodes.
const (
	OpSendFirst          OpCode = 0x00
	OpSendMiddle         OpCode = 0x01
	OpSendLast           OpCode = 0x02
	OpSendLastImm        OpCode = 0x03
	OpSendOnly           OpCode = 0x04
	OpSendOnlyImm        OpCode = 0x05
	OpWriteFirst         OpCode = 0x06
	OpWriteMiddle        OpCode = 0x07
	OpWriteLast          OpCode = 0x08
	OpWriteLastImm       OpCode = 0x09
	OpWriteOnly          OpCode = 0x0a
	OpWriteOnlyImm       OpCode = 0x0b
	OpReadRequest        OpCode = 0x0c
	OpReadResponseFirst  OpCode = 0x0d
	OpReadResponseMiddle OpCode = 0x0e
	OpReadResponseLast   OpCode = 0x0f
	OpReadResponseOnly   OpCode = 0x10
	OpAcknowledge        OpCode = 0x11
	OpAtomicAcknowledge  OpCode = 0x12
	OpCompareSwap        OpCode = 0x13
	OpFetchAdd           OpCode = 0x14
)

// Unreliable-datagram opcodes.
const (
	OpUDSendOnly    OpCode = 0x64
	OpUDSendOnlyImm OpCode = 0x65
)

var opNames = map[OpCode]string{
	OpSendFirst:          "SEND_FIRST",
	OpSendMiddle:         "SEND_MIDDLE",
	OpSendLast:           "SEND_LAST",
	OpSendLastImm:        "SEND_LAST_IMM",
	OpSendOnly:           "SEND_ONLY",
	OpSendOnlyImm:        "SEND_ONLY_IMM",
	OpWriteFirst:         "RDMA_WRITE_FIRST",
	OpWriteMiddle:        "RDMA_WRITE_MIDDLE",
	OpWriteLast:          "RDMA_WRITE_LAST",
	OpWriteLastImm:       "RDMA_WRITE_LAST_IMM",
	OpWriteOnly:          "RDMA_WRITE_ONLY",
	OpWriteOnlyImm:       "RDMA_WRITE_ONLY_IMM",
	OpReadRequest:        "RDMA_READ_REQUEST",
	OpReadResponseFirst:  "RDMA_READ_RESPONSE_FIRST",
	OpReadResponseMiddle: "RDMA_READ_RESPONSE_MIDDLE",
	OpReadResponseLast:   "RDMA_READ_RESPONSE_LAST",
	OpReadResponseOnly:   "RDMA_READ_RESPONSE_ONLY",
	OpAcknowledge:        "ACKNOWLEDGE",
	OpAtomicAcknowledge:  "ATOMIC_ACKNOWLEDGE",
	OpCompareSwap:        "COMPARE_SWAP",
	OpFetchAdd:           "FETCH_ADD",
	OpUDSendOnly:         "UD_SEND_ONLY",
	OpUDSendOnlyImm:      "UD_SEND_ONLY_IMM",
}

func (op OpCode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%#x)", byte(op))
}

// IsUD reports whether the opcode belongs to the unreliable-datagram class.
func (op OpCode) IsUD() bool { return op&0xe0 == 0x60 }

// IsFirst reports whether the opcode starts a multi-packet message.
func (op OpCode) IsFirst() bool {
	switch op {
	case OpSendFirst, OpWriteFirst, OpReadResponseFirst:
		return true
	}
	return false
}

// IsLast reports whether the opcode completes a message (LAST or ONLY).
func (op OpCode) IsLast() bool {
	switch op {
	case OpSendLast, OpSendLastImm, OpSendOnly, OpSendOnlyImm,
		OpWriteLast, OpWriteLastImm, OpWriteOnly, OpWriteOnlyImm,
		OpReadResponseLast, OpReadResponseOnly,
		OpUDSendOnly, OpUDSendOnlyImm:
		return true
	}
	return false
}

// IsSend reports whether the opcode is a SEND variant (consumes a receive
// WQE at the responder).
func (op OpCode) IsSend() bool {
	switch op {
	case OpSendFirst, OpSendMiddle, OpSendLast, OpSendLastImm, OpSendOnly,
		OpSendOnlyImm, OpUDSendOnly, OpUDSendOnlyImm:
		return true
	}
	return false
}

// IsWrite reports whether the opcode is an RDMA WRITE variant.
func (op OpCode) IsWrite() bool {
	switch op {
	case OpWriteFirst, OpWriteMiddle, OpWriteLast, OpWriteLastImm,
		OpWriteOnly, OpWriteOnlyImm:
		return true
	}
	return false
}

// IsReadResponse reports whether the opcode is an RDMA READ response.
func (op OpCode) IsReadResponse() bool {
	switch op {
	case OpReadResponseFirst, OpReadResponseMiddle, OpReadResponseLast,
		OpReadResponseOnly:
		return true
	}
	return false
}

// IsAtomic reports whether the opcode is an atomic request.
func (op OpCode) IsAtomic() bool {
	return op == OpCompareSwap || op == OpFetchAdd
}

// HasImmediate reports whether an ImmDt header follows the BTH/RETH.
func (op OpCode) HasImmediate() bool {
	switch op {
	case OpSendLastImm, OpSendOnlyImm, OpWriteLastImm, OpWriteOnlyImm, OpUDSendOnlyImm:
		return true
	}
	return false
}

// BTH is the InfiniBand base transport header (12 bytes).
type BTH struct {
	OpCode   OpCode
	SolEvent bool
	PartKey  uint16
	DestQP   uint32 // 24 bits
	AckReq   bool
	PSN      uint32 // 24 bits
}

func (*BTH) LayerType() LayerType { return LayerBTH }
func (*BTH) headerLen() int       { return 12 }

func (h *BTH) marshal(b []byte) {
	b[0] = byte(h.OpCode)
	b[1] = 0x40 // TVer 0, PadCnt 0, MigReq 1 (as on the wire from mlx HCAs)
	if h.SolEvent {
		b[1] |= 0x80
	}
	binary.BigEndian.PutUint16(b[2:4], h.PartKey)
	b[4] = 0
	put24(b[5:8], h.DestQP)
	b[8] = 0
	if h.AckReq {
		b[8] = 0x80
	}
	put24(b[9:12], h.PSN)
}

func (h *BTH) unmarshal(b []byte) (int, error) {
	if len(b) < 12 {
		return 0, fmt.Errorf("packet: bth truncated (%d bytes)", len(b))
	}
	h.OpCode = OpCode(b[0])
	h.SolEvent = b[1]&0x80 != 0
	h.PartKey = binary.BigEndian.Uint16(b[2:4])
	h.DestQP = get24(b[5:8])
	h.AckReq = b[8]&0x80 != 0
	h.PSN = get24(b[9:12])
	return 12, nil
}

// RETH is the RDMA extended transport header carried on WRITE/READ requests.
type RETH struct {
	VA     uint64
	RKey   uint32
	DMALen uint32
}

func (*RETH) LayerType() LayerType { return LayerRETH }
func (*RETH) headerLen() int       { return 16 }

func (h *RETH) marshal(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], h.RKey)
	binary.BigEndian.PutUint32(b[12:16], h.DMALen)
}

func (h *RETH) unmarshal(b []byte) (int, error) {
	if len(b) < 16 {
		return 0, fmt.Errorf("packet: reth truncated (%d bytes)", len(b))
	}
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = binary.BigEndian.Uint32(b[8:12])
	h.DMALen = binary.BigEndian.Uint32(b[12:16])
	return 16, nil
}

// AETH syndrome values (high bits of the syndrome byte).
const (
	AckSyndromeACK    byte = 0x00
	AckSyndromeRNRNAK byte = 0x20
	AckSyndromeNAK    byte = 0x60
)

// NAK codes carried in the low five bits of a NAK syndrome.
const (
	NakPSNSequenceError   byte = 0
	NakInvalidRequest     byte = 1
	NakRemoteAccessError  byte = 2
	NakRemoteOperationErr byte = 3
	NakInvalidRDRequest   byte = 4
)

// AETH is the ACK extended transport header.
type AETH struct {
	Syndrome byte
	MSN      uint32 // 24 bits
}

func (*AETH) LayerType() LayerType { return LayerAETH }
func (*AETH) headerLen() int       { return 4 }

func (h *AETH) marshal(b []byte) {
	b[0] = h.Syndrome
	put24(b[1:4], h.MSN)
}

func (h *AETH) unmarshal(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("packet: aeth truncated (%d bytes)", len(b))
	}
	h.Syndrome = b[0]
	h.MSN = get24(b[1:4])
	return 4, nil
}

// IsNAK reports whether the AETH carries a NAK, returning its code.
func (h *AETH) IsNAK() (byte, bool) {
	if h.Syndrome&0x60 == 0x60 {
		return h.Syndrome & 0x1f, true
	}
	return 0, false
}

// IsRNR reports whether the AETH carries a receiver-not-ready NAK.
func (h *AETH) IsRNR() bool { return h.Syndrome&0xe0 == 0x20 }

// DETH is the datagram extended transport header used by UD.
type DETH struct {
	QKey  uint32
	SrcQP uint32 // 24 bits
}

func (*DETH) LayerType() LayerType { return LayerDETH }
func (*DETH) headerLen() int       { return 8 }

func (h *DETH) marshal(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], h.QKey)
	b[4] = 0
	put24(b[5:8], h.SrcQP)
}

func (h *DETH) unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("packet: deth truncated (%d bytes)", len(b))
	}
	h.QKey = binary.BigEndian.Uint32(b[0:4])
	h.SrcQP = get24(b[5:8])
	return 8, nil
}

// AtomicETH is the atomic extended transport header carried on
// COMPARE_SWAP and FETCH_ADD requests (28 bytes).
type AtomicETH struct {
	VA      uint64
	RKey    uint32
	SwapAdd uint64 // swap value (CSwap) or addend (FetchAdd)
	Compare uint64 // compare value (CSwap only)
}

func (*AtomicETH) LayerType() LayerType { return LayerAtomicETH }
func (*AtomicETH) headerLen() int       { return 28 }

func (h *AtomicETH) marshal(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], h.RKey)
	binary.BigEndian.PutUint64(b[12:20], h.SwapAdd)
	binary.BigEndian.PutUint64(b[20:28], h.Compare)
}

func (h *AtomicETH) unmarshal(b []byte) (int, error) {
	if len(b) < 28 {
		return 0, fmt.Errorf("packet: atomiceth truncated (%d bytes)", len(b))
	}
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = binary.BigEndian.Uint32(b[8:12])
	h.SwapAdd = binary.BigEndian.Uint64(b[12:20])
	h.Compare = binary.BigEndian.Uint64(b[20:28])
	return 28, nil
}

// AtomicAckETH carries the original value back on an atomic response
// (8 bytes, following the AETH).
type AtomicAckETH struct {
	Orig uint64
}

func (*AtomicAckETH) LayerType() LayerType { return LayerAtomicAckETH }
func (*AtomicAckETH) headerLen() int       { return 8 }

func (h *AtomicAckETH) marshal(b []byte) { binary.BigEndian.PutUint64(b[0:8], h.Orig) }

func (h *AtomicAckETH) unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("packet: atomicacketh truncated (%d bytes)", len(b))
	}
	h.Orig = binary.BigEndian.Uint64(b[0:8])
	return 8, nil
}

// ImmDt carries the 4-byte immediate data of *_IMM opcodes.
type ImmDt struct {
	Value uint32
}

func (*ImmDt) LayerType() LayerType { return LayerImmDt }
func (*ImmDt) headerLen() int       { return 4 }

func (h *ImmDt) marshal(b []byte) { binary.BigEndian.PutUint32(b[0:4], h.Value) }

func (h *ImmDt) unmarshal(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("packet: immdt truncated (%d bytes)", len(b))
	}
	h.Value = binary.BigEndian.Uint32(b[0:4])
	return 4, nil
}

// Payload is the application bytes of a packet.
type Payload []byte

func (Payload) LayerType() LayerType { return LayerPayload }
func (p Payload) headerLen() int     { return len(p) }
func (p Payload) marshal(b []byte)   { copy(b, p) }
func (p Payload) unmarshal(b []byte) (int, error) {
	return 0, fmt.Errorf("packet: payload does not self-decode")
}

func put24(b []byte, v uint32) {
	b[0] = byte(v >> 16)
	b[1] = byte(v >> 8)
	b[2] = byte(v)
}

func get24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}
