package packet

import (
	"encoding/binary"
	"fmt"
)

// LayerType identifies the kind of a decoded header.
type LayerType int

// Layer types known to the decoder.
const (
	LayerEthernet LayerType = iota
	LayerIPv4
	LayerUDP
	LayerVXLAN
	LayerBTH
	LayerRETH
	LayerAETH
	LayerDETH
	LayerImmDt
	LayerAtomicETH
	LayerAtomicAckETH
	LayerPayload
)

var layerNames = map[LayerType]string{
	LayerEthernet:     "Ethernet",
	LayerIPv4:         "IPv4",
	LayerUDP:          "UDP",
	LayerVXLAN:        "VXLAN",
	LayerBTH:          "BTH",
	LayerRETH:         "RETH",
	LayerAETH:         "AETH",
	LayerDETH:         "DETH",
	LayerImmDt:        "ImmDt",
	LayerAtomicETH:    "AtomicETH",
	LayerAtomicAckETH: "AtomicAckETH",
	LayerPayload:      "Payload",
}

func (t LayerType) String() string {
	if s, ok := layerNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one protocol header (or the payload) of a packet.
type Layer interface {
	// LayerType identifies the header.
	LayerType() LayerType
	// headerLen is the serialized length in bytes.
	headerLen() int
	// marshal writes the header into b, which is at least headerLen bytes.
	marshal(b []byte)
	// unmarshal parses the header from the front of b and returns the number
	// of bytes consumed.
	unmarshal(b []byte) (int, error)
}

// EtherType values used by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers used by the simulation.
const (
	ProtoTCP byte = 6
	ProtoUDP byte = 17
)

// Well-known UDP destination ports.
const (
	PortRoCEv2 uint16 = 4791
	PortVXLAN  uint16 = 4789
	// PortRoCEShared carries flow-tagged RoCEv2 traffic (MasQ's
	// shared-connection mode): a VXLAN header bearing the flow tag sits
	// between UDP and BTH, demultiplexing guest flows that share one host
	// connection. Plain RoCEv2 on 4791 never carries the extra header.
	PortRoCEShared uint16 = 4790
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

func (*Ethernet) LayerType() LayerType { return LayerEthernet }
func (*Ethernet) headerLen() int       { return 14 }

func (h *Ethernet) marshal(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

func (h *Ethernet) unmarshal(b []byte) (int, error) {
	if len(b) < 14 {
		return 0, fmt.Errorf("packet: ethernet header truncated (%d bytes)", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return 14, nil
}

// IPv4 is an IPv4 header without options (IHL = 5).
type IPv4 struct {
	DSCP     byte
	TotalLen uint16 // filled by Serialize when zero
	ID       uint16
	TTL      byte
	Protocol byte
	Checksum uint16 // filled by Serialize; verified by Decode
	Src, Dst IP
}

func (*IPv4) LayerType() LayerType { return LayerIPv4 }
func (*IPv4) headerLen() int       { return 20 }

func (h *IPv4) marshal(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.DSCP << 2
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	b[6], b[7] = 0x40, 0 // don't fragment
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint16(b[10:12], 0)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	h.Checksum = internetChecksum(b[:20])
	binary.BigEndian.PutUint16(b[10:12], h.Checksum)
}

func (h *IPv4) unmarshal(b []byte) (int, error) {
	if len(b) < 20 {
		return 0, fmt.Errorf("packet: ipv4 header truncated (%d bytes)", len(b))
	}
	if b[0] != 0x45 {
		return 0, fmt.Errorf("packet: unsupported ipv4 version/IHL byte %#x", b[0])
	}
	if internetChecksum(b[:20]) != 0 {
		return 0, fmt.Errorf("packet: ipv4 header checksum mismatch")
	}
	h.DSCP = b[1] >> 2
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return 20, nil
}

// internetChecksum is the RFC 1071 ones-complement sum of b. Computed over a
// header whose checksum field holds the correct value, it returns zero.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a UDP header. The checksum is left zero (legal for IPv4), matching
// common RoCEv2 practice where the ICRC protects the payload.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by Serialize when zero
}

func (*UDP) LayerType() LayerType { return LayerUDP }
func (*UDP) headerLen() int       { return 8 }

func (h *UDP) marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
}

func (h *UDP) unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("packet: udp header truncated (%d bytes)", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	return 8, nil
}

// VXLAN is a VXLAN header (RFC 7348).
type VXLAN struct {
	VNI uint32 // 24 bits
	// FlowTag demultiplexes guest flows sharing one host connection
	// (shared-connection mode). A nonzero tag is carried in the first
	// reserved field behind a private flag bit; a zero tag marshals a
	// byte-identical standard VXLAN header.
	FlowTag uint16
}

func (*VXLAN) LayerType() LayerType { return LayerVXLAN }
func (*VXLAN) headerLen() int       { return 8 }

func (h *VXLAN) marshal(b []byte) {
	b[0] = 0x08 // I flag: VNI valid
	b[1], b[2], b[3] = 0, 0, 0
	if h.FlowTag != 0 {
		b[0] |= 0x04 // private flag: flow tag valid
		b[1] = byte(h.FlowTag >> 8)
		b[2] = byte(h.FlowTag)
	}
	b[4] = byte(h.VNI >> 16)
	b[5] = byte(h.VNI >> 8)
	b[6] = byte(h.VNI)
	b[7] = 0
}

func (h *VXLAN) unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("packet: vxlan header truncated (%d bytes)", len(b))
	}
	if b[0]&0x08 == 0 {
		return 0, fmt.Errorf("packet: vxlan I flag not set")
	}
	h.VNI = uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	h.FlowTag = 0
	if b[0]&0x04 != 0 {
		h.FlowTag = uint16(b[1])<<8 | uint16(b[2])
	}
	return 8, nil
}
