package packet

import (
	"fmt"
	"hash/crc32"
)

// icrcTable is the CRC-32C polynomial used for the RoCEv2 invariant CRC.
// (The real ICRC masks variant fields; the simulation computes it over the
// transport headers and payload, which protects everything that matters
// end-to-end here.)
var icrcTable = crc32.MakeTable(crc32.Castagnoli)

// Serialize encodes the layers outside-in into a single wire buffer.
// IPv4.TotalLen and UDP.Length are filled in when zero. If the packet
// contains a BTH, a 4-byte ICRC covering the BTH and everything after it is
// appended (and accounted for in the length fields).
func Serialize(layers ...Layer) []byte {
	total := 0
	bthIdx := -1
	for i, l := range layers {
		total += l.headerLen()
		if l.LayerType() == LayerBTH {
			bthIdx = i
		}
	}
	icrcLen := 0
	if bthIdx >= 0 {
		icrcLen = 4
	}
	buf := make([]byte, total+icrcLen)

	// Fill length fields bottom-up first: bytes remaining after each header.
	remaining := total + icrcLen
	for _, l := range layers {
		switch h := l.(type) {
		case *IPv4:
			if h.TotalLen == 0 {
				h.TotalLen = uint16(remaining)
			}
		case *UDP:
			if h.Length == 0 {
				h.Length = uint16(remaining)
			}
		}
		remaining -= l.headerLen()
	}

	off := 0
	bthOff := -1
	for i, l := range layers {
		if i == bthIdx {
			bthOff = off
		}
		l.marshal(buf[off : off+l.headerLen()])
		off += l.headerLen()
	}
	if bthIdx >= 0 {
		crc := crc32.Checksum(buf[bthOff:off], icrcTable)
		buf[off] = byte(crc >> 24)
		buf[off+1] = byte(crc >> 16)
		buf[off+2] = byte(crc >> 8)
		buf[off+3] = byte(crc)
	}
	return buf
}

// Packet is a decoded packet: its layers outside-in, the application
// payload, and — for VXLAN — the decoded inner packet.
type Packet struct {
	Layers  []Layer
	Payload Payload
	Inner   *Packet // non-nil after a VXLAN header
	// InnerRaw is the undecoded inner frame bytes behind a VXLAN header,
	// useful for forwarding without re-serialization.
	InnerRaw []byte
}

// Layer returns the first layer of type t, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Ethernet returns the Ethernet header, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if l := p.Layer(LayerEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// IPv4 returns the IPv4 header, or nil.
func (p *Packet) IPv4() *IPv4 {
	if l := p.Layer(LayerIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// UDP returns the UDP header, or nil.
func (p *Packet) UDP() *UDP {
	if l := p.Layer(LayerUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// VXLAN returns the VXLAN header, or nil.
func (p *Packet) VXLAN() *VXLAN {
	if l := p.Layer(LayerVXLAN); l != nil {
		return l.(*VXLAN)
	}
	return nil
}

// BTH returns the base transport header, or nil.
func (p *Packet) BTH() *BTH {
	if l := p.Layer(LayerBTH); l != nil {
		return l.(*BTH)
	}
	return nil
}

// RETH returns the RDMA extended transport header, or nil.
func (p *Packet) RETH() *RETH {
	if l := p.Layer(LayerRETH); l != nil {
		return l.(*RETH)
	}
	return nil
}

// AETH returns the ACK extended transport header, or nil.
func (p *Packet) AETH() *AETH {
	if l := p.Layer(LayerAETH); l != nil {
		return l.(*AETH)
	}
	return nil
}

// DETH returns the datagram extended transport header, or nil.
func (p *Packet) DETH() *DETH {
	if l := p.Layer(LayerDETH); l != nil {
		return l.(*DETH)
	}
	return nil
}

// AtomicETH returns the atomic request header, or nil.
func (p *Packet) AtomicETH() *AtomicETH {
	if l := p.Layer(LayerAtomicETH); l != nil {
		return l.(*AtomicETH)
	}
	return nil
}

// AtomicAckETH returns the atomic response header, or nil.
func (p *Packet) AtomicAckETH() *AtomicAckETH {
	if l := p.Layer(LayerAtomicAckETH); l != nil {
		return l.(*AtomicAckETH)
	}
	return nil
}

// ImmDt returns the immediate-data header, or nil.
func (p *Packet) ImmDt() *ImmDt {
	if l := p.Layer(LayerImmDt); l != nil {
		return l.(*ImmDt)
	}
	return nil
}

func (p *Packet) String() string {
	s := ""
	for i, l := range p.Layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	if p.Inner != nil {
		s += "/(" + p.Inner.String() + ")"
	}
	if len(p.Payload) > 0 {
		s += fmt.Sprintf("/Payload(%dB)", len(p.Payload))
	}
	return s
}

// Decode parses a full Ethernet frame produced by Serialize.
func Decode(data []byte) (*Packet, error) {
	p := &Packet{}
	eth := &Ethernet{}
	n, err := eth.unmarshal(data)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, eth)
	rest := data[n:]

	if eth.EtherType != EtherTypeIPv4 {
		p.Payload = Payload(rest)
		return p, nil
	}
	ip := &IPv4{}
	n, err = ip.unmarshal(rest)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, ip)
	if int(ip.TotalLen) > len(rest) {
		return nil, fmt.Errorf("packet: ipv4 total length %d exceeds frame (%d)", ip.TotalLen, len(rest))
	}
	rest = rest[n:ip.TotalLen]

	if ip.Protocol != ProtoUDP {
		p.Payload = Payload(rest)
		return p, nil
	}
	udp := &UDP{}
	n, err = udp.unmarshal(rest)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, udp)
	rest = rest[n:]

	switch udp.DstPort {
	case PortRoCEv2:
		return p, decodeRoCE(p, rest)
	case PortVXLAN:
		vx := &VXLAN{}
		n, err = vx.unmarshal(rest)
		if err != nil {
			return nil, err
		}
		p.Layers = append(p.Layers, vx)
		inner, err := Decode(rest[n:])
		if err != nil {
			return nil, fmt.Errorf("packet: inner frame: %w", err)
		}
		p.Inner = inner
		p.InnerRaw = rest[n:]
		return p, nil
	default:
		p.Payload = Payload(rest)
		return p, nil
	}
}

func decodeRoCE(p *Packet, rest []byte) error {
	start := rest // ICRC covers from BTH
	bth := &BTH{}
	n, err := bth.unmarshal(rest)
	if err != nil {
		return err
	}
	p.Layers = append(p.Layers, bth)
	rest = rest[n:]

	op := bth.OpCode
	if op.IsUD() {
		deth := &DETH{}
		n, err = deth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, deth)
		rest = rest[n:]
	}
	if op == OpReadRequest || (op.IsWrite() && (op.IsFirst() || op == OpWriteOnly || op == OpWriteOnlyImm)) {
		reth := &RETH{}
		n, err = reth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, reth)
		rest = rest[n:]
	}
	if op.IsAtomic() {
		ae := &AtomicETH{}
		n, err = ae.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, ae)
		rest = rest[n:]
	}
	if op == OpAcknowledge || op == OpAtomicAcknowledge || op == OpReadResponseFirst || op == OpReadResponseLast || op == OpReadResponseOnly {
		aeth := &AETH{}
		n, err = aeth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, aeth)
		rest = rest[n:]
	}
	if op == OpAtomicAcknowledge {
		aa := &AtomicAckETH{}
		n, err = aa.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, aa)
		rest = rest[n:]
	}
	if op.HasImmediate() {
		imm := &ImmDt{}
		n, err = imm.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, imm)
		rest = rest[n:]
	}

	if len(rest) < 4 {
		return fmt.Errorf("packet: roce packet missing icrc")
	}
	icrc := uint32(rest[len(rest)-4])<<24 | uint32(rest[len(rest)-3])<<16 |
		uint32(rest[len(rest)-2])<<8 | uint32(rest[len(rest)-1])
	covered := start[:len(start)-4]
	if got := crc32.Checksum(covered, icrcTable); got != icrc {
		return fmt.Errorf("packet: icrc mismatch: got %#x want %#x", got, icrc)
	}
	p.Payload = Payload(rest[:len(rest)-4])
	return nil
}
