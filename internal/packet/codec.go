package packet

import (
	"fmt"
	"hash/crc32"
)

// icrcTable is the CRC-32C polynomial used for the RoCEv2 invariant CRC.
// (The real ICRC masks variant fields; the simulation computes it over the
// transport headers and payload, which protects everything that matters
// end-to-end here.)
var icrcTable = crc32.MakeTable(crc32.Castagnoli)

// Serialize encodes the layers outside-in into a single wire buffer.
// IPv4.TotalLen and UDP.Length are filled in when zero. If the packet
// contains a BTH, a 4-byte ICRC covering the BTH and everything after it is
// appended (and accounted for in the length fields).
func Serialize(layers ...Layer) []byte {
	// One headerLen pass, cached for the later loops (the interface
	// dispatch per layer shows up at packet rates).
	var hlbuf [16]int
	hls := hlbuf[:0]
	total := 0
	bthIdx := -1
	for i, l := range layers {
		n := l.headerLen()
		hls = append(hls, n)
		total += n
		if _, ok := l.(*BTH); ok {
			bthIdx = i
		}
	}
	icrcLen := 0
	if bthIdx >= 0 {
		icrcLen = 4
	}
	buf := make([]byte, total+icrcLen)

	// Fill length fields bottom-up first: bytes remaining after each header.
	remaining := total + icrcLen
	for i, l := range layers {
		switch h := l.(type) {
		case *IPv4:
			if h.TotalLen == 0 {
				h.TotalLen = uint16(remaining)
			}
		case *UDP:
			if h.Length == 0 {
				h.Length = uint16(remaining)
			}
		}
		remaining -= hls[i]
	}

	off := 0
	bthOff := -1
	for i, l := range layers {
		if i == bthIdx {
			bthOff = off
		}
		n := hls[i]
		l.marshal(buf[off : off+n])
		off += n
	}
	if bthIdx >= 0 {
		crc := crc32.Checksum(buf[bthOff:off], icrcTable)
		buf[off] = byte(crc >> 24)
		buf[off+1] = byte(crc >> 16)
		buf[off+2] = byte(crc >> 8)
		buf[off+3] = byte(crc)
	}
	return buf
}

// Packet is a decoded packet: its layers outside-in, the application
// payload, and — for VXLAN — the decoded inner packet.
type Packet struct {
	Layers  []Layer
	Payload Payload
	Inner   *Packet // non-nil after a VXLAN header
	// InnerRaw is the undecoded inner frame bytes behind a VXLAN header,
	// useful for forwarding without re-serialization.
	InnerRaw []byte

	arena *decodeArena // backing arena, for Release

	// Typed header pointers, filled by the decoder so the accessors below
	// skip the Layers scan (and its per-element interface dispatch) on the
	// hot path. Hand-assembled packets leave them nil and fall back to the
	// scan.
	ethHdr  *Ethernet
	ipHdr   *IPv4
	udpHdr  *UDP
	vxHdr   *VXLAN
	bthHdr  *BTH
	dethHdr *DETH
	rethHdr *RETH
	aethHdr *AETH
	aeHdr   *AtomicETH
	aaHdr   *AtomicAckETH
	immHdr  *ImmDt
}

// Layer returns the first layer of type t, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Ethernet returns the Ethernet header, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if p.ethHdr != nil {
		return p.ethHdr
	}
	if l := p.Layer(LayerEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// IPv4 returns the IPv4 header, or nil.
func (p *Packet) IPv4() *IPv4 {
	if p.ipHdr != nil {
		return p.ipHdr
	}
	if l := p.Layer(LayerIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// UDP returns the UDP header, or nil.
func (p *Packet) UDP() *UDP {
	if p.udpHdr != nil {
		return p.udpHdr
	}
	if l := p.Layer(LayerUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// VXLAN returns the VXLAN header, or nil.
func (p *Packet) VXLAN() *VXLAN {
	if p.vxHdr != nil {
		return p.vxHdr
	}
	if l := p.Layer(LayerVXLAN); l != nil {
		return l.(*VXLAN)
	}
	return nil
}

// BTH returns the base transport header, or nil.
func (p *Packet) BTH() *BTH {
	if p.bthHdr != nil {
		return p.bthHdr
	}
	if l := p.Layer(LayerBTH); l != nil {
		return l.(*BTH)
	}
	return nil
}

// RETH returns the RDMA extended transport header, or nil.
func (p *Packet) RETH() *RETH {
	if p.rethHdr != nil {
		return p.rethHdr
	}
	if l := p.Layer(LayerRETH); l != nil {
		return l.(*RETH)
	}
	return nil
}

// AETH returns the ACK extended transport header, or nil.
func (p *Packet) AETH() *AETH {
	if p.aethHdr != nil {
		return p.aethHdr
	}
	if l := p.Layer(LayerAETH); l != nil {
		return l.(*AETH)
	}
	return nil
}

// DETH returns the datagram extended transport header, or nil.
func (p *Packet) DETH() *DETH {
	if p.dethHdr != nil {
		return p.dethHdr
	}
	if l := p.Layer(LayerDETH); l != nil {
		return l.(*DETH)
	}
	return nil
}

// AtomicETH returns the atomic request header, or nil.
func (p *Packet) AtomicETH() *AtomicETH {
	if p.aeHdr != nil {
		return p.aeHdr
	}
	if l := p.Layer(LayerAtomicETH); l != nil {
		return l.(*AtomicETH)
	}
	return nil
}

// AtomicAckETH returns the atomic response header, or nil.
func (p *Packet) AtomicAckETH() *AtomicAckETH {
	if p.aaHdr != nil {
		return p.aaHdr
	}
	if l := p.Layer(LayerAtomicAckETH); l != nil {
		return l.(*AtomicAckETH)
	}
	return nil
}

// ImmDt returns the immediate-data header, or nil.
func (p *Packet) ImmDt() *ImmDt {
	if p.immHdr != nil {
		return p.immHdr
	}
	if l := p.Layer(LayerImmDt); l != nil {
		return l.(*ImmDt)
	}
	return nil
}

func (p *Packet) String() string {
	s := ""
	for i, l := range p.Layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	if p.Inner != nil {
		s += "/(" + p.Inner.String() + ")"
	}
	if len(p.Payload) > 0 {
		s += fmt.Sprintf("/Payload(%dB)", len(p.Payload))
	}
	return s
}

// decodeArena backs one Decode call with a single allocation: the Packet,
// the layer-slice storage, and every header struct the frame could contain
// all share one block and one lifetime (the returned *Packet pins them).
// Decode is the hottest allocation site in a packet-level run — collapsing
// its ~9 small allocations into one is worth the arena's slack bytes.
type decodeArena struct {
	pkt    Packet
	layers [8]Layer
	eth    Ethernet
	ip     IPv4
	udp    UDP
	vx     VXLAN
	bth    BTH
	deth   DETH
	reth   RETH
	ae     AtomicETH
	aeth   AETH
	aa     AtomicAckETH
	imm    ImmDt

	pool *Pool // owning pool, nil for one-shot arenas
}

// Pool recycles decode arenas for consumers with a clear packet lifetime
// (the RNIC RX pipeline copies every payload byte out before moving on).
// Pool.Decode draws an arena from the free list and Packet.Release returns
// it, so steady-state decoding allocates nothing. Packets whose consumers
// may retain them (or that never call Release) fall back to the garbage
// collector — an unreleased arena is lost to the pool, never corrupted.
type Pool struct {
	free []*decodeArena
}

// Decode is the package-level Decode drawing its arena from the pool. The
// packet and every header it exposes are valid only until Release.
func (pl *Pool) Decode(data []byte) (*Packet, error) {
	var a *decodeArena
	if n := len(pl.free); n > 0 {
		a = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
	} else {
		a = &decodeArena{}
	}
	a.pool = pl
	p, err := decodeInto(a, data)
	if err != nil {
		*a = decodeArena{}
		pl.free = append(pl.free, a)
		return nil, err
	}
	return p, nil
}

// Release returns the packet's arena to its pool for reuse; the packet and
// all its layers are invalid afterwards. It is a no-op for packets decoded
// outside a pool, so release points need not know how a packet was made.
func (p *Packet) Release() {
	a := p.arena
	if a == nil || a.pool == nil {
		return
	}
	pl := a.pool
	*a = decodeArena{} // drop frame/payload references before pooling
	pl.free = append(pl.free, a)
}

// Decode parses a full Ethernet frame produced by Serialize.
func Decode(data []byte) (*Packet, error) {
	return decodeInto(&decodeArena{}, data)
}

func decodeInto(a *decodeArena, data []byte) (*Packet, error) {
	p := &a.pkt
	p.arena = a
	p.Layers = a.layers[:0]
	n, err := a.eth.unmarshal(data)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, &a.eth)
	p.ethHdr = &a.eth
	rest := data[n:]

	if a.eth.EtherType != EtherTypeIPv4 {
		p.Payload = Payload(rest)
		return p, nil
	}
	n, err = a.ip.unmarshal(rest)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, &a.ip)
	p.ipHdr = &a.ip
	if int(a.ip.TotalLen) > len(rest) {
		return nil, fmt.Errorf("packet: ipv4 total length %d exceeds frame (%d)", a.ip.TotalLen, len(rest))
	}
	rest = rest[n:a.ip.TotalLen]

	if a.ip.Protocol != ProtoUDP {
		p.Payload = Payload(rest)
		return p, nil
	}
	n, err = a.udp.unmarshal(rest)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, &a.udp)
	p.udpHdr = &a.udp
	rest = rest[n:]

	switch a.udp.DstPort {
	case PortRoCEv2:
		return p, decodeRoCE(a, rest)
	case PortRoCEShared:
		// Flow-tagged RoCE (shared-connection mode): a VXLAN header
		// carrying the flow tag sits between UDP and the BTH.
		n, err = a.vx.unmarshal(rest)
		if err != nil {
			return nil, err
		}
		p.Layers = append(p.Layers, &a.vx)
		p.vxHdr = &a.vx
		return p, decodeRoCE(a, rest[n:])
	case PortVXLAN:
		n, err = a.vx.unmarshal(rest)
		if err != nil {
			return nil, err
		}
		p.Layers = append(p.Layers, &a.vx)
		p.vxHdr = &a.vx
		inner, err := Decode(rest[n:])
		if err != nil {
			return nil, fmt.Errorf("packet: inner frame: %w", err)
		}
		p.Inner = inner
		p.InnerRaw = rest[n:]
		return p, nil
	default:
		p.Payload = Payload(rest)
		return p, nil
	}
}

func decodeRoCE(a *decodeArena, rest []byte) error {
	p := &a.pkt
	start := rest // ICRC covers from BTH
	n, err := a.bth.unmarshal(rest)
	if err != nil {
		return err
	}
	p.Layers = append(p.Layers, &a.bth)
	p.bthHdr = &a.bth
	rest = rest[n:]

	op := a.bth.OpCode
	if op.IsUD() {
		n, err = a.deth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.deth)
		p.dethHdr = &a.deth
		rest = rest[n:]
	}
	if op == OpReadRequest || (op.IsWrite() && (op.IsFirst() || op == OpWriteOnly || op == OpWriteOnlyImm)) {
		n, err = a.reth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.reth)
		p.rethHdr = &a.reth
		rest = rest[n:]
	}
	if op.IsAtomic() {
		n, err = a.ae.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.ae)
		p.aeHdr = &a.ae
		rest = rest[n:]
	}
	if op == OpAcknowledge || op == OpAtomicAcknowledge || op == OpReadResponseFirst || op == OpReadResponseLast || op == OpReadResponseOnly {
		n, err = a.aeth.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.aeth)
		p.aethHdr = &a.aeth
		rest = rest[n:]
	}
	if op == OpAtomicAcknowledge {
		n, err = a.aa.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.aa)
		p.aaHdr = &a.aa
		rest = rest[n:]
	}
	if op.HasImmediate() {
		n, err = a.imm.unmarshal(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, &a.imm)
		p.immHdr = &a.imm
		rest = rest[n:]
	}

	if len(rest) < 4 {
		return fmt.Errorf("packet: roce packet missing icrc")
	}
	icrc := uint32(rest[len(rest)-4])<<24 | uint32(rest[len(rest)-3])<<16 |
		uint32(rest[len(rest)-2])<<8 | uint32(rest[len(rest)-1])
	covered := start[:len(start)-4]
	if got := crc32.Checksum(covered, icrcTable); got != icrc {
		return fmt.Errorf("packet: icrc mismatch: got %#x want %#x", got, icrc)
	}
	p.Payload = Payload(rest[:len(rest)-4])
	return nil
}
