package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"192.168.1.1", IP{192, 168, 1, 1}, true},
		{"0.0.0.0", IP{}, true},
		{"255.255.255.255", IP{255, 255, 255, 255}, true},
		{"256.1.1.1", IP{}, false},
		{"1.2.3", IP{}, false},
		{"1.2.3.4.5", IP{}, false},
		{"a.b.c.d", IP{}, false},
		{"", IP{}, false},
		{"1..2.3", IP{}, false},
	}
	for _, c := range cases {
		got, ok := ParseIP(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseIP(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIPStringRoundtrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := NewIP(a, b, c, d)
		got, ok := ParseIP(ip.String())
		return ok && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCIDRContains(t *testing.T) {
	c, ok := ParseCIDR("192.168.1.0/24")
	if !ok {
		t.Fatal("ParseCIDR failed")
	}
	if !c.Contains(NewIP(192, 168, 1, 77)) {
		t.Error("should contain 192.168.1.77")
	}
	if c.Contains(NewIP(192, 168, 2, 1)) {
		t.Error("should not contain 192.168.2.1")
	}
	all, _ := ParseCIDR("0.0.0.0/0")
	if !all.Contains(NewIP(8, 8, 8, 8)) {
		t.Error("/0 should contain everything")
	}
	host, _ := ParseCIDR("10.0.0.5/32")
	if !host.Contains(NewIP(10, 0, 0, 5)) || host.Contains(NewIP(10, 0, 0, 6)) {
		t.Error("/32 must match exactly one host")
	}
}

func TestParseCIDRRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "1.2.3.4", "1.2.3.4/", "1.2.3.4/33", "x/24", "1.2.3.4/ab"} {
		if _, ok := ParseCIDR(s); ok {
			t.Errorf("ParseCIDR(%q) accepted", s)
		}
	}
}

func TestGIDFromIPRoundtrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := NewIP(a, b, c, d)
		g := GIDFromIP(ip)
		got, ok := g.IP()
		return ok && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGIDNotIPv4Mapped(t *testing.T) {
	var g GID
	g[0] = 0xfe
	if _, ok := g.IP(); ok {
		t.Error("non-mapped GID decoded as IPv4")
	}
	if !(GID{}).IsZero() {
		t.Error("zero GID not zero")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0xde, 0xad, 0xbe, 0xef}
	if m.String() != "02:00:de:ad:be:ef" {
		t.Errorf("MAC.String() = %q", m.String())
	}
	if !(MAC{}).IsZero() || m.IsZero() {
		t.Error("IsZero wrong")
	}
}

func rocePacket(payload []byte) []Layer {
	return []Layer{
		&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 2}, Src: MAC{2, 0, 0, 0, 0, 1}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(10, 0, 0, 1), Dst: NewIP(10, 0, 0, 2)},
		&UDP{SrcPort: 49152, DstPort: PortRoCEv2},
		&BTH{OpCode: OpSendOnly, PartKey: 0xffff, DestQP: 0x11, PSN: 7, AckReq: true},
		Payload(payload),
	}
}

func TestSerializeDecodeSendOnly(t *testing.T) {
	payload := []byte("hello rdma")
	data := Serialize(rocePacket(payload)...)
	p, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.BTH() == nil || p.BTH().OpCode != OpSendOnly || p.BTH().DestQP != 0x11 || p.BTH().PSN != 7 {
		t.Fatalf("BTH = %+v", p.BTH())
	}
	if !p.BTH().AckReq {
		t.Error("AckReq lost")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.IPv4().Src != NewIP(10, 0, 0, 1) || p.IPv4().Dst != NewIP(10, 0, 0, 2) {
		t.Fatalf("IPs = %v -> %v", p.IPv4().Src, p.IPv4().Dst)
	}
	if p.UDP().DstPort != PortRoCEv2 {
		t.Fatalf("dst port = %d", p.UDP().DstPort)
	}
}

func TestSerializeDecodeWriteWithRETH(t *testing.T) {
	layers := []Layer{
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 1000, DstPort: PortRoCEv2},
		&BTH{OpCode: OpWriteOnly, DestQP: 42, PSN: 100},
		&RETH{VA: 0xdeadbeef0000, RKey: 0x1234, DMALen: 64},
		Payload(make([]byte, 64)),
	}
	p, err := Decode(Serialize(layers...))
	if err != nil {
		t.Fatal(err)
	}
	r := p.RETH()
	if r == nil || r.VA != 0xdeadbeef0000 || r.RKey != 0x1234 || r.DMALen != 64 {
		t.Fatalf("RETH = %+v", r)
	}
	if len(p.Payload) != 64 {
		t.Fatalf("payload len = %d", len(p.Payload))
	}
}

func TestSerializeDecodeAck(t *testing.T) {
	layers := []Layer{
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(2, 2, 2, 2), Dst: NewIP(1, 1, 1, 1)},
		&UDP{SrcPort: 1000, DstPort: PortRoCEv2},
		&BTH{OpCode: OpAcknowledge, DestQP: 9, PSN: 55},
		&AETH{Syndrome: AckSyndromeACK, MSN: 3},
	}
	p, err := Decode(Serialize(layers...))
	if err != nil {
		t.Fatal(err)
	}
	a := p.AETH()
	if a == nil || a.MSN != 3 {
		t.Fatalf("AETH = %+v", a)
	}
	if _, nak := a.IsNAK(); nak {
		t.Error("plain ACK decoded as NAK")
	}
}

func TestNAKSyndrome(t *testing.T) {
	a := &AETH{Syndrome: AckSyndromeNAK | NakRemoteAccessError}
	code, nak := a.IsNAK()
	if !nak || code != NakRemoteAccessError {
		t.Fatalf("IsNAK = %v, %v", code, nak)
	}
	rnr := &AETH{Syndrome: AckSyndromeRNRNAK | 5}
	if !rnr.IsRNR() {
		t.Error("RNR not detected")
	}
	if a.IsRNR() {
		t.Error("NAK misdetected as RNR")
	}
}

func TestSerializeDecodeUD(t *testing.T) {
	layers := []Layer{
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 1000, DstPort: PortRoCEv2},
		&BTH{OpCode: OpUDSendOnly, DestQP: 7, PSN: 1},
		&DETH{QKey: 0x1ee7, SrcQP: 3},
		Payload([]byte("dgram")),
	}
	p, err := Decode(Serialize(layers...))
	if err != nil {
		t.Fatal(err)
	}
	d := p.DETH()
	if d == nil || d.QKey != 0x1ee7 || d.SrcQP != 3 {
		t.Fatalf("DETH = %+v", d)
	}
	if string(p.Payload) != "dgram" {
		t.Fatalf("payload = %q", p.Payload)
	}
}

func TestSerializeDecodeImmediate(t *testing.T) {
	layers := []Layer{
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 1, DstPort: PortRoCEv2},
		&BTH{OpCode: OpSendOnlyImm, DestQP: 1, PSN: 1},
		&ImmDt{Value: 0xcafebabe},
		Payload([]byte("x")),
	}
	p, err := Decode(Serialize(layers...))
	if err != nil {
		t.Fatal(err)
	}
	if p.ImmDt() == nil || p.ImmDt().Value != 0xcafebabe {
		t.Fatalf("ImmDt = %+v", p.ImmDt())
	}
}

func TestVXLANEncapsulation(t *testing.T) {
	inner := Serialize(rocePacket([]byte("tunneled"))...)
	outer := []Layer{
		&Ethernet{Dst: MAC{2, 0, 0, 0, 1, 2}, Src: MAC{2, 0, 0, 0, 1, 1}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(172, 16, 0, 1), Dst: NewIP(172, 16, 0, 2)},
		&UDP{SrcPort: 55555, DstPort: PortVXLAN},
		&VXLAN{VNI: 0xabc123},
		Payload(inner),
	}
	p, err := Decode(Serialize(outer...))
	if err != nil {
		t.Fatal(err)
	}
	if p.VXLAN() == nil || p.VXLAN().VNI != 0xabc123 {
		t.Fatalf("VXLAN = %+v", p.VXLAN())
	}
	if p.Inner == nil {
		t.Fatal("inner packet not decoded")
	}
	if string(p.Inner.Payload) != "tunneled" {
		t.Fatalf("inner payload = %q", p.Inner.Payload)
	}
	if p.Inner.BTH() == nil {
		t.Fatal("inner BTH missing")
	}
}

func TestICRCDetectsCorruption(t *testing.T) {
	data := Serialize(rocePacket([]byte("payload bytes"))...)
	data[len(data)-6] ^= 0xff // flip a payload byte
	if _, err := Decode(data); err == nil {
		t.Fatal("corrupted packet decoded without error")
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	data := Serialize(rocePacket([]byte("x"))...)
	data[14+8] ^= 0xff // flip the TTL inside the IPv4 header
	if _, err := Decode(data); err == nil {
		t.Fatal("corrupted IPv4 header decoded without error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	data := Serialize(rocePacket([]byte("some payload"))...)
	for _, n := range []int{0, 5, 14, 20, 33, 40, 45} {
		if n >= len(data) {
			continue
		}
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestInternetChecksumSelfVerifies(t *testing.T) {
	f := func(a, b, c, d byte, id uint16, ttl byte) bool {
		h := &IPv4{TTL: ttl | 1, Protocol: ProtoUDP, ID: id, Src: NewIP(a, b, c, d), Dst: NewIP(d, c, b, a), TotalLen: 20}
		buf := make([]byte, 20)
		h.marshal(buf)
		return internetChecksum(buf) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTHRoundtripQuick(t *testing.T) {
	f := func(op byte, se, ack bool, pkey uint16, qp, psn uint32) bool {
		in := &BTH{
			OpCode:   OpCode(op),
			SolEvent: se,
			AckReq:   ack,
			PartKey:  pkey,
			DestQP:   qp & 0xffffff,
			PSN:      psn & 0xffffff,
		}
		buf := make([]byte, in.headerLen())
		in.marshal(buf)
		out := &BTH{}
		if _, err := out.unmarshal(buf); err != nil {
			return false
		}
		return *in == *out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRETHRoundtripQuick(t *testing.T) {
	f := func(va uint64, rkey, l uint32) bool {
		in := &RETH{VA: va, RKey: rkey, DMALen: l}
		buf := make([]byte, in.headerLen())
		in.marshal(buf)
		out := &RETH{}
		if _, err := out.unmarshal(buf); err != nil {
			return false
		}
		return *in == *out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadRoundtripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 4000 {
			payload = payload[:4000]
		}
		data := Serialize(rocePacket(payload)...)
		p, err := Decode(data)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpCodePredicates(t *testing.T) {
	cases := []struct {
		op                    OpCode
		first, last, send, wr bool
	}{
		{OpSendFirst, true, false, true, false},
		{OpSendMiddle, false, false, true, false},
		{OpSendOnly, false, true, true, false},
		{OpSendLastImm, false, true, true, false},
		{OpWriteFirst, true, false, false, true},
		{OpWriteOnly, false, true, false, true},
		{OpWriteMiddle, false, false, false, true},
		{OpAcknowledge, false, false, false, false},
		{OpUDSendOnly, false, true, true, false},
	}
	for _, c := range cases {
		if c.op.IsFirst() != c.first || c.op.IsLast() != c.last ||
			c.op.IsSend() != c.send || c.op.IsWrite() != c.wr {
			t.Errorf("%v predicates wrong: first=%v last=%v send=%v write=%v",
				c.op, c.op.IsFirst(), c.op.IsLast(), c.op.IsSend(), c.op.IsWrite())
		}
	}
	if !OpUDSendOnly.IsUD() || OpSendOnly.IsUD() {
		t.Error("IsUD wrong")
	}
	if !OpSendOnlyImm.HasImmediate() || OpSendOnly.HasImmediate() {
		t.Error("HasImmediate wrong")
	}
	if !OpReadResponseOnly.IsReadResponse() || OpReadRequest.IsReadResponse() {
		t.Error("IsReadResponse wrong")
	}
}

func TestPacketString(t *testing.T) {
	p, err := Decode(Serialize(rocePacket([]byte("abc"))...))
	if err != nil {
		t.Fatal(err)
	}
	want := "Ethernet/IPv4/UDP/BTH/Payload(3B)"
	if p.String() != want {
		t.Errorf("String() = %q, want %q", p.String(), want)
	}
}

func TestSerializeNonRoCEHasNoICRC(t *testing.T) {
	layers := []Layer{
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
		&UDP{SrcPort: 9, DstPort: 12345},
		Payload([]byte("plain")),
	}
	data := Serialize(layers...)
	want := 14 + 20 + 8 + 5
	if len(data) != want {
		t.Fatalf("len = %d, want %d (no ICRC)", len(data), want)
	}
	p, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "plain" {
		t.Fatalf("payload = %q", p.Payload)
	}
}

// TestDecodeNeverPanics fuzzes the decoder with arbitrary bytes and with
// mutations of valid packets: it may reject, but must never panic.
func TestDecodeNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decode panicked: %v", r)
		}
	}()
	f := func(data []byte) bool {
		Decode(data) // errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Mutations of a valid frame exercise deeper decode paths.
	valid := Serialize(rocePacket([]byte("seed packet for mutation"))...)
	g := func(pos uint16, val byte) bool {
		m := append([]byte(nil), valid...)
		m[int(pos)%len(m)] = val
		Decode(m)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSerializeRoundtripAllOpcodes walks every RC opcode through a
// serialize/decode cycle with the headers it requires.
func TestSerializeRoundtripAllOpcodes(t *testing.T) {
	ops := []OpCode{
		OpSendFirst, OpSendMiddle, OpSendLast, OpSendLastImm, OpSendOnly,
		OpSendOnlyImm, OpWriteFirst, OpWriteMiddle, OpWriteLast,
		OpWriteLastImm, OpWriteOnly, OpWriteOnlyImm, OpReadRequest,
		OpReadResponseFirst, OpReadResponseMiddle, OpReadResponseLast,
		OpReadResponseOnly, OpAcknowledge, OpUDSendOnly, OpUDSendOnlyImm,
	}
	for _, op := range ops {
		layers := []Layer{
			&Ethernet{EtherType: EtherTypeIPv4},
			&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(1, 1, 1, 1), Dst: NewIP(2, 2, 2, 2)},
			&UDP{SrcPort: 7, DstPort: PortRoCEv2},
			&BTH{OpCode: op, DestQP: 5, PSN: 9},
		}
		if op.IsUD() {
			layers = append(layers, &DETH{QKey: 1, SrcQP: 2})
		}
		if op == OpReadRequest || (op.IsWrite() && (op.IsFirst() || op == OpWriteOnly || op == OpWriteOnlyImm)) {
			layers = append(layers, &RETH{VA: 1, RKey: 2, DMALen: 3})
		}
		if op == OpAcknowledge || op == OpReadResponseFirst || op == OpReadResponseLast || op == OpReadResponseOnly {
			layers = append(layers, &AETH{Syndrome: AckSyndromeACK, MSN: 1})
		}
		if op.HasImmediate() {
			layers = append(layers, &ImmDt{Value: 7})
		}
		layers = append(layers, Payload([]byte("x")))
		p, err := Decode(Serialize(layers...))
		if err != nil {
			t.Errorf("%v: %v", op, err)
			continue
		}
		if p.BTH() == nil || p.BTH().OpCode != op {
			t.Errorf("%v: decoded opcode %v", op, p.BTH())
		}
	}
}

func TestPcapRoundtrip(t *testing.T) {
	frames := []CapturedFrame{
		{TimeNanos: 1_500_000_123, Data: Serialize(rocePacket([]byte("one"))...)},
		{TimeNanos: 2_000_000_456, Data: Serialize(rocePacket([]byte("two"))...)},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, frames); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d frames", len(got))
	}
	for i := range frames {
		if got[i].TimeNanos != frames[i].TimeNanos {
			t.Errorf("frame %d time %d, want %d", i, got[i].TimeNanos, frames[i].TimeNanos)
		}
		if !bytes.Equal(got[i].Data, frames[i].Data) {
			t.Errorf("frame %d data mismatch", i)
		}
		// Captured frames must still decode as RoCE packets.
		p, err := Decode(got[i].Data)
		if err != nil || p.BTH() == nil {
			t.Errorf("frame %d no longer decodes: %v", i, err)
		}
	}
}

func TestPcapHeaderIsWiresharkCompatible(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if len(h) != 24 {
		t.Fatalf("header length %d", len(h))
	}
	// Magic 0xa1b23c4d little-endian = nanosecond pcap.
	if h[0] != 0x4d || h[1] != 0x3c || h[2] != 0xb2 || h[3] != 0xa1 {
		t.Fatalf("magic bytes % x", h[:4])
	}
	if h[20] != 1 { // LINKTYPE_ETHERNET
		t.Fatalf("linktype %d", h[20])
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestVXLANFlowTagRoundtrip(t *testing.T) {
	for _, tag := range []uint16{1, 2, 0x00ff, 0xffff} {
		var b [8]byte
		h := VXLAN{VNI: 0xabc123, FlowTag: tag}
		h.marshal(b[:])
		if b[0]&0x04 == 0 {
			t.Fatalf("tag %d: flow-tag flag bit not set", tag)
		}
		var got VXLAN
		if _, err := got.unmarshal(b[:]); err != nil {
			t.Fatal(err)
		}
		if got.FlowTag != tag || got.VNI != 0xabc123 {
			t.Fatalf("tag %d: roundtrip = %+v", tag, got)
		}
	}
}

// TestVXLANZeroFlowTagByteIdentical: a zero flow tag marshals the exact
// standard RFC 7348 header — the shared-connection extension is invisible
// unless used, so default-mode traces stay byte-identical.
func TestVXLANZeroFlowTagByteIdentical(t *testing.T) {
	var b [8]byte
	(&VXLAN{VNI: 0xabc123}).marshal(b[:])
	want := [8]byte{0x08, 0, 0, 0, 0xab, 0xc1, 0x23, 0}
	if b != want {
		t.Fatalf("zero-tag header = %x, want %x", b, want)
	}
	var got VXLAN
	if _, err := got.unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if got.FlowTag != 0 {
		t.Fatalf("zero-tag header decoded tag %d", got.FlowTag)
	}
}

// TestSharedPortDecode: port 4790 carries a flow-tagged VXLAN shim directly
// in front of the BTH; the decoder surfaces both the tag and the RoCE
// transport headers of the same frame.
func TestSharedPortDecode(t *testing.T) {
	payload := []byte("shared flow")
	data := Serialize(
		&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 2}, Src: MAC{2, 0, 0, 0, 0, 1}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: NewIP(10, 0, 0, 1), Dst: NewIP(10, 0, 0, 2)},
		&UDP{SrcPort: 49152, DstPort: PortRoCEShared},
		&VXLAN{VNI: 100, FlowTag: 7},
		&BTH{OpCode: OpSendOnly, PartKey: 0xffff, DestQP: 0x11, PSN: 3},
		Payload(payload),
	)
	p, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.VXLAN() == nil || p.VXLAN().FlowTag != 7 || p.VXLAN().VNI != 100 {
		t.Fatalf("VXLAN shim = %+v", p.VXLAN())
	}
	if p.BTH() == nil || p.BTH().DestQP != 0x11 {
		t.Fatalf("BTH = %+v", p.BTH())
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
}
