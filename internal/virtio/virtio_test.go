package virtio

import (
	"testing"

	"masq/internal/simtime"
)

func TestCallRoundTripCost(t *testing.T) {
	eng := simtime.NewEngine()
	ring := NewRing(eng, DefaultParams())
	ring.Serve("backend", func(p *simtime.Proc, cmd any) any {
		return cmd.(int) * 2
	})
	var elapsed simtime.Duration
	var resp any
	eng.Spawn("guest", func(p *simtime.Proc) {
		start := p.Now()
		resp = ring.Call(p, 21)
		elapsed = p.Now().Sub(start)
	})
	eng.Run()
	if resp != 42 {
		t.Fatalf("resp = %v", resp)
	}
	if elapsed != simtime.Us(20) {
		t.Fatalf("RTT = %v, want 20µs (paper's measured virtio overhead)", elapsed)
	}
}

func TestHandlerWorkAddsToRTT(t *testing.T) {
	eng := simtime.NewEngine()
	ring := NewRing(eng, DefaultParams())
	ring.Serve("backend", func(p *simtime.Proc, cmd any) any {
		p.Sleep(simtime.Us(100)) // device work
		return nil
	})
	var elapsed simtime.Duration
	eng.Spawn("guest", func(p *simtime.Proc) {
		start := p.Now()
		ring.Call(p, nil)
		elapsed = p.Now().Sub(start)
	})
	eng.Run()
	if elapsed != simtime.Us(120) {
		t.Fatalf("elapsed = %v, want 120µs", elapsed)
	}
}

func TestCallsAreSerializedFIFO(t *testing.T) {
	eng := simtime.NewEngine()
	ring := NewRing(eng, DefaultParams())
	var order []int
	ring.Serve("backend", func(p *simtime.Proc, cmd any) any {
		order = append(order, cmd.(int))
		return nil
	})
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("guest", func(p *simtime.Proc) {
			p.Sleep(simtime.Duration(i) * simtime.Microsecond)
			ring.Call(p, i)
		})
	}
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBatchSharesKickAndIRQ(t *testing.T) {
	eng := simtime.NewEngine()
	pr := DefaultParams()
	ring := NewRing(eng, pr)
	ring.Serve("backend", func(p *simtime.Proc, cmd any) any {
		p.Sleep(simtime.Us(10))
		return cmd
	})
	var batched, serial simtime.Duration
	eng.Spawn("guest", func(p *simtime.Proc) {
		start := p.Now()
		resp := ring.CallBatch(p, []any{1, 2, 3, 4})
		batched = p.Now().Sub(start)
		if len(resp) != 4 || resp[3] != 4 {
			t.Errorf("batch resp = %v", resp)
		}
		start = p.Now()
		for i := 0; i < 4; i++ {
			ring.Call(p, i)
		}
		serial = p.Now().Sub(start)
	})
	eng.Run()
	// Batched: one kick(8) + one hostproc(4) + 4×10 work + one irq(8) = 60µs.
	if batched != simtime.Us(60) {
		t.Fatalf("batched = %v, want 60µs", batched)
	}
	// Serial: 4 × (20 + 10) = 120µs.
	if serial != simtime.Us(120) {
		t.Fatalf("serial = %v, want 120µs", serial)
	}
}

func TestRTTHelper(t *testing.T) {
	if DefaultParams().RTT() != simtime.Us(20) {
		t.Fatalf("RTT = %v", DefaultParams().RTT())
	}
}
