// Package virtio models the paravirtual command transport between a
// frontend driver in a VM and a backend driver on the host (Appendix A of
// the MasQ paper): the guest enqueues a command into a virtqueue and kicks
// (a VM exit), the backend dequeues, processes and responds, and an
// injected interrupt resumes the guest.
//
// The cost split is calibrated so one round trip is ~20 µs, the figure the
// paper measured and used to derive Table 1's "w/ virtio" column.
package virtio

import (
	"masq/internal/simtime"
	"masq/internal/trace"
)

// Params are the per-leg costs of a virtqueue round trip.
type Params struct {
	KickCost simtime.Duration // guest: descriptor setup + kick + VM exit
	HostProc simtime.Duration // backend: wakeup and dequeue
	IRQCost  simtime.Duration // interrupt injection + guest handler
}

// DefaultParams yields the paper's ~20 µs guest↔host round trip.
func DefaultParams() Params {
	return Params{
		KickCost: simtime.Us(8),
		HostProc: simtime.Us(4),
		IRQCost:  simtime.Us(8),
	}
}

// RTT is the total round-trip overhead excluding handler work.
func (p Params) RTT() simtime.Duration { return p.KickCost + p.HostProc + p.IRQCost }

// call is one in-flight batch of commands on the ring. inv carries the
// guest's active trace invocation across the proc hop so the host-side
// spans attribute to the right verb call under concurrent setups.
type call struct {
	cmds []any
	done *simtime.Event[[]any]
	inv  int
}

// Ring is an RPC-style virtqueue pair (request + response).
type Ring struct {
	P Params

	// Rec, when set, records the three transport legs of each round trip
	// as virtio-layer spans ("kick", "ring-service", "irq"). Nil is free.
	Rec *trace.Recorder

	eng  *simtime.Engine
	reqs *simtime.Queue[*call]
}

// NewRing creates a ring; call Serve on the host side before issuing Calls.
func NewRing(eng *simtime.Engine, p Params) *Ring {
	return &Ring{P: p, eng: eng, reqs: simtime.NewQueue[*call](eng)}
}

// Call issues one command from the guest and blocks until the backend's
// response arrives, paying the full virtqueue round trip.
func (r *Ring) Call(p *simtime.Proc, cmd any) any {
	return r.CallBatch(p, []any{cmd})[0]
}

// CallBatch issues several commands under a single kick and a single
// interrupt (the virtio batching ablation). The backend handler still runs
// once per command.
func (r *Ring) CallBatch(p *simtime.Proc, cmds []any) []any {
	sp := r.Rec.Begin(p, trace.LayerVirtio, "kick")
	p.Sleep(r.P.KickCost)
	sp.End(p)
	c := &call{cmds: cmds, done: simtime.NewEvent[[]any](r.eng), inv: r.Rec.CurrentInv(p)}
	r.reqs.Put(c)
	return c.done.Wait(p)
}

// Serve runs the backend loop: for each batch, handler is invoked per
// command in order (it may sleep — it runs in the backend process), then
// the responses are returned to the guest behind one interrupt.
func (r *Ring) Serve(name string, handler func(p *simtime.Proc, cmd any) any) {
	r.eng.Spawn(name, func(p *simtime.Proc) {
		for {
			c := r.reqs.Get(p)
			r.Rec.AdoptInv(p, c.inv)
			sp := r.Rec.Begin(p, trace.LayerVirtio, "ring-service")
			p.Sleep(r.P.HostProc)
			sp.End(p)
			resp := make([]any, len(c.cmds))
			for i, cmd := range c.cmds {
				resp[i] = handler(p, cmd)
			}
			done := c.done
			// The IRQ leg runs as a scheduled callback, not a Proc, so it
			// is recorded as a pre-delimited interval.
			r.Rec.Interval(p, trace.LayerVirtio, "irq", p.Now(), p.Now().Add(r.P.IRQCost))
			r.Rec.ReleaseInv(p)
			r.eng.After(r.P.IRQCost, func() { done.Trigger(resp) })
		}
	})
}
