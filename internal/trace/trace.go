// Package trace is a deterministic span/counter recorder for the MasQ
// control path. Spans are keyed to the simulation clock: recording a span
// only reads p.Now() and appends to host-side slices, so event ordering and
// every virtual-time measurement are bit-identical whether tracing is on or
// off. A disabled (or nil) Recorder is zero-cost — no events, no
// allocations.
//
// The recorder understands two kinds of structure:
//
//   - Verb invocations. The verbs-layer wrapper (verbs.Instrument) opens an
//     invocation per control-verb call and binds it to the calling Proc;
//     spans recorded on that Proc are tagged with it. When the control path
//     hops Procs — the guest posts a command and the host-side virtio ring
//     process handles it — the transport carries the invocation across
//     (CurrentInv on the posting side, AdoptInv/ReleaseInv on the serving
//     side), which is what lets a guest-side kick, the host-side backend
//     handler, and the deferred IRQ all roll up under one "create_qp" even
//     when several connections are being set up concurrently.
//
//   - Layers. Every span carries a Layer from a fixed taxonomy mirroring
//     the software stack of the paper's Fig. 16. Attribution computes
//     per-layer *self* time (span duration minus time covered by nested
//     spans), so layer shares of a verb partition its measured total.
//
// Sharding. One Recorder can serve a whole sharded testbed: spans and
// invocations land in the lane of the recording Proc's shard (each lane is
// only ever touched by its shard's goroutine), and read-side views merge
// the lanes into one globally ordered stream keyed by (start, lane, record
// index) — a key that is identical across shard counts, so sharded and
// single-shard runs export byte-identical traces. With a single lane (the
// default) the merge is the identity and nothing changes. Counters are the
// one shared structure; they take a mutex, and Add stays
// order-independent (pure sums), so they too are deterministic.
package trace

import (
	"sort"
	"sync"

	"masq/internal/simtime"
)

// Layer identifies the software layer a span belongs to.
type Layer uint8

const (
	LayerVerbs        Layer = iota // user-facing verbs API boundary
	LayerVirtio                    // virtio transport: kick, ring service, irq
	LayerMasqFrontend              // in-VM MasQ provider (vBond side)
	LayerMasqBackend               // host MasQ backend command handlers
	LayerRConnrename               // rename: GID resolution, cache, stale handling
	LayerRConntrack                // connection-tracking checks and table ops
	LayerController                // SDN controller queries and notifications
	LayerRNIC                      // RNIC firmware command processor
	LayerOOB                       // out-of-band / overlay connection exchange
	NumLayers
)

var layerNames = [NumLayers]string{
	"verbs", "virtio", "masq-frontend", "masq-backend",
	"rconnrename", "rconntrack", "controller", "rnic", "overlay/oob",
}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "unknown"
}

// Invocation is one control-verb call recorded by BeginVerb. IDs are
// assigned in global merged order, so they are stable across shard counts.
type Invocation struct {
	ID    int
	Verb  string // rnic verb name, e.g. "create_qp", "modify_qp_RTR"
	Actor string // who issued it, e.g. "vni100/client"
	Start simtime.Time
	End   simtime.Time
}

type spanRec struct {
	layer      Layer
	name       string
	proc       string
	start, end simtime.Time
	inv        int // lane-local invocation index, -1 if none active
	open       bool
}

// lane is one shard's private recording surface. Only the owning shard's
// goroutine appends to it; readers merge lanes while the sim is quiesced.
type lane struct {
	spans []spanRec
	invs  []Invocation
	cur   map[string]int // proc name -> lane-local invocation bound to it
}

// Recorder accumulates spans and counters. The zero value is disabled; New
// returns an enabled one. All methods are safe on a nil receiver.
type Recorder struct {
	enabled bool
	lanes   []lane

	mu       sync.Mutex // guards counters (shared across shards)
	counters map[string]int64
}

// New returns an enabled single-lane Recorder.
func New() *Recorder { return NewSharded(1) }

// NewSharded returns an enabled Recorder with one lane per shard. Procs
// record into the lane of their engine's ShardID, so a recorder built for
// a ShardedEngine must have at least NumShards lanes.
func NewSharded(shards int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	return &Recorder{enabled: true, lanes: make([]lane, shards)}
}

// laneOf picks the recording lane for p. Standalone engines report shard
// 0, so unsharded setups always land in lane 0.
func (r *Recorder) laneOf(p *simtime.Proc) *lane {
	return &r.lanes[p.Engine().ShardID()]
}

// SetEnabled turns recording on or off. Already-recorded events are kept;
// spans opened while enabled may still be closed after disabling.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	if on && len(r.lanes) == 0 {
		// A zero-value Recorder enabled after the fact gets one lane.
		r.lanes = make([]lane, 1)
	}
	r.enabled = on
}

// Enabled reports whether the recorder is currently accepting events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Events returns the number of recorded spans across all lanes.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.lanes {
		n += len(r.lanes[i].spans)
	}
	return n
}

// bind marks inv as the active invocation on the named proc.
func (ln *lane) bind(proc string, inv int) {
	if ln.cur == nil {
		ln.cur = make(map[string]int)
	}
	ln.cur[proc] = inv
}

// currentOf returns the invocation bound to the named proc, or -1.
func (ln *lane) currentOf(proc string) int {
	if inv, ok := ln.cur[proc]; ok {
		return inv
	}
	return -1
}

// VerbCall is an open verb invocation; close it with End.
type VerbCall struct {
	r    *Recorder
	ln   *lane
	inv  int
	prev int // invocation previously bound to proc, -1 if none
	proc string
	span Span
}

// BeginVerb opens a verb invocation plus its root verbs-layer span and
// binds it to p, so spans recorded on p until End are tagged with it.
func (r *Recorder) BeginVerb(p *simtime.Proc, verb, actor string) VerbCall {
	if r == nil || !r.enabled {
		return VerbCall{inv: -1}
	}
	ln := r.laneOf(p)
	id := len(ln.invs)
	ln.invs = append(ln.invs, Invocation{ID: id, Verb: verb, Actor: actor, Start: p.Now(), End: -1})
	name := p.Name()
	prev := ln.currentOf(name)
	ln.bind(name, id)
	return VerbCall{r: r, ln: ln, inv: id, prev: prev, proc: name, span: r.Begin(p, LayerVerbs, verb)}
}

// End closes the invocation and its root span, restoring whatever
// invocation the proc was bound to before (for nested verb calls).
func (vc VerbCall) End(p *simtime.Proc) {
	if vc.r == nil {
		return
	}
	vc.span.End(p)
	vc.ln.invs[vc.inv].End = p.Now()
	if vc.prev >= 0 {
		vc.ln.bind(vc.proc, vc.prev)
	} else {
		delete(vc.ln.cur, vc.proc)
	}
}

// CurrentInv returns the invocation bound to p, or -1. The virtio transport
// captures it on the guest side so the host-side ring process can adopt it.
// The returned index is lane-local: it may only be adopted by a Proc on the
// same shard (the virtio ring never hops shards — guest and host backend
// share a host, hence a shard).
func (r *Recorder) CurrentInv(p *simtime.Proc) int {
	if r == nil || !r.enabled {
		return -1
	}
	return r.laneOf(p).currentOf(p.Name())
}

// AdoptInv binds p to an invocation opened on another Proc of the same
// shard, so host-side spans roll up under the guest's verb call. Undo with
// ReleaseInv. Adopting -1 (no active invocation) just releases.
func (r *Recorder) AdoptInv(p *simtime.Proc, inv int) {
	if r == nil || !r.enabled {
		return
	}
	if inv < 0 {
		r.ReleaseInv(p)
		return
	}
	r.laneOf(p).bind(p.Name(), inv)
}

// ReleaseInv removes p's invocation binding.
func (r *Recorder) ReleaseInv(p *simtime.Proc) {
	if r == nil {
		return
	}
	ln := r.laneOf(p)
	if ln.cur != nil {
		delete(ln.cur, p.Name())
	}
}

// Span is an open span handle; close it with End. The zero value (from a
// disabled recorder) is a no-op.
type Span struct {
	ln  *lane
	idx int
}

// Begin opens a span at p.Now() in the given layer, tagged with the active
// invocation (if any).
func (r *Recorder) Begin(p *simtime.Proc, layer Layer, name string) Span {
	if r == nil || !r.enabled {
		return Span{}
	}
	ln := r.laneOf(p)
	ln.spans = append(ln.spans, spanRec{
		layer: layer, name: name, proc: p.Name(),
		start: p.Now(), end: -1, inv: ln.currentOf(p.Name()), open: true,
	})
	return Span{ln: ln, idx: len(ln.spans)}
}

// End closes the span at p.Now().
func (s Span) End(p *simtime.Proc) {
	if s.ln == nil {
		return
	}
	rec := &s.ln.spans[s.idx-1]
	rec.end = p.Now()
	rec.open = false
}

// Interval records an already-delimited span, for regions that do not run
// inside a Proc at their own virtual time — e.g. the virtio IRQ leg, which
// is scheduled with Engine.After. start/end must come from p.Now() plus
// model constants, never from the wall clock.
func (r *Recorder) Interval(p *simtime.Proc, layer Layer, name string, start, end simtime.Time) {
	if r == nil || !r.enabled {
		return
	}
	ln := r.laneOf(p)
	ln.spans = append(ln.spans, spanRec{
		layer: layer, name: name, proc: p.Name(),
		start: start, end: end, inv: ln.currentOf(p.Name()),
	})
}

// Add increments a named counter. Counters are shared across shards (Add
// carries no Proc), so this takes the recorder's mutex.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || !r.enabled {
		return
	}
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter is a named event count.
type Counter struct {
	Name  string
	Value int64
}

// Counters returns all counters sorted by name.
func (r *Recorder) Counters() []Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) == 0 {
		return nil
	}
	out := make([]Counter, 0, len(r.counters))
	for k, v := range r.counters {
		out = append(out, Counter{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// merged flattens the lanes into one globally ordered stream: invocations
// sorted by (Start, lane, lane index) and renumbered in that order, spans
// sorted by (start, lane, record index) with their invocation references
// remapped. The key never compares anything that depends on the shard
// count, so an N-shard run merges to exactly the single-shard stream.
// With one lane this is the identity (no copy, original IDs).
func (r *Recorder) merged() ([]spanRec, []Invocation) {
	if r == nil || len(r.lanes) == 0 {
		return nil, nil
	}
	if len(r.lanes) == 1 {
		return r.lanes[0].spans, r.lanes[0].invs
	}
	type ref struct{ lane, idx int }
	var iorder []ref
	for li := range r.lanes {
		for ii := range r.lanes[li].invs {
			iorder = append(iorder, ref{li, ii})
		}
	}
	sort.Slice(iorder, func(a, b int) bool {
		x, y := iorder[a], iorder[b]
		sx := r.lanes[x.lane].invs[x.idx].Start
		sy := r.lanes[y.lane].invs[y.idx].Start
		if sx != sy {
			return sx < sy
		}
		if x.lane != y.lane {
			return x.lane < y.lane
		}
		return x.idx < y.idx
	})
	invs := make([]Invocation, len(iorder))
	remap := make([][]int, len(r.lanes))
	for li := range r.lanes {
		remap[li] = make([]int, len(r.lanes[li].invs))
	}
	for mid, k := range iorder {
		inv := r.lanes[k.lane].invs[k.idx]
		inv.ID = mid
		invs[mid] = inv
		remap[k.lane][k.idx] = mid
	}
	var sorder []ref
	for li := range r.lanes {
		for si := range r.lanes[li].spans {
			sorder = append(sorder, ref{li, si})
		}
	}
	sort.Slice(sorder, func(a, b int) bool {
		x, y := sorder[a], sorder[b]
		sx := r.lanes[x.lane].spans[x.idx].start
		sy := r.lanes[y.lane].spans[y.idx].start
		if sx != sy {
			return sx < sy
		}
		if x.lane != y.lane {
			return x.lane < y.lane
		}
		return x.idx < y.idx
	})
	spans := make([]spanRec, 0, len(sorder))
	for _, k := range sorder {
		s := r.lanes[k.lane].spans[k.idx]
		if s.inv >= 0 {
			s.inv = remap[k.lane][s.inv]
		}
		spans = append(spans, s)
	}
	return spans, invs
}

// Breakdown is the per-layer self-time attribution of one verb invocation.
type Breakdown struct {
	Invocation
	Total simtime.Duration            // End - Start
	Layer [NumLayers]simtime.Duration // self time per layer
	Named map[string]simtime.Duration // self time per "layer/name"
}

// Attribute computes, for every closed invocation, the self time of each
// recorded span (duration minus time covered by nested spans) rolled up by
// layer and by layer/name. Because the instrumented control path leaves no
// uncovered gaps, the layer self-times of an invocation sum to its total.
func (r *Recorder) Attribute() []Breakdown {
	if r == nil {
		return nil
	}
	allSpans, allInvs := r.merged()
	// Group closed spans by invocation.
	byInv := make(map[int][]spanRec)
	for _, s := range allSpans {
		if s.open || s.inv < 0 {
			continue
		}
		byInv[s.inv] = append(byInv[s.inv], s)
	}
	var out []Breakdown
	for _, inv := range allInvs {
		if inv.End < 0 {
			continue
		}
		b := Breakdown{
			Invocation: inv,
			Total:      inv.End.Sub(inv.Start),
			Named:      map[string]simtime.Duration{},
		}
		spans := byInv[inv.ID]
		// Sort outermost-first: by start ascending, then end descending.
		// Ties (identical intervals) keep record order, so an enclosing
		// span recorded first stays the parent.
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end
		})
		// Containment scan: child time is subtracted from the innermost
		// enclosing span's self time.
		type frame struct {
			i     int
			child simtime.Duration
		}
		var stack []frame
		selfOf := func(f frame) {
			s := spans[f.i]
			self := s.end.Sub(s.start) - f.child
			b.Layer[s.layer] += self
			b.Named[s.layer.String()+"/"+s.name] += self
		}
		for i, s := range spans {
			for len(stack) > 0 && spans[stack[len(stack)-1].i].end <= s.start {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				selfOf(f)
			}
			if len(stack) > 0 {
				stack[len(stack)-1].child += s.end.Sub(s.start)
			}
			stack = append(stack, frame{i: i})
		}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			selfOf(f)
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AggRow is one cell of the per-actor × per-verb × per-layer rollup.
type AggRow struct {
	Actor string
	Verb  string
	Layer Layer
	Count int // closed invocations contributing (for Count>0 rows)
	Self  simtime.Duration
}

// Aggregate sums Attribute() across invocations, keyed by
// (actor, verb, layer), sorted for deterministic output. Layers with zero
// self time are omitted.
func (r *Recorder) Aggregate() []AggRow {
	type key struct {
		actor, verb string
		layer       Layer
	}
	acc := make(map[key]*AggRow)
	for _, b := range r.Attribute() {
		for l := Layer(0); l < NumLayers; l++ {
			if b.Layer[l] == 0 {
				continue
			}
			k := key{b.Actor, b.Verb, l}
			row := acc[k]
			if row == nil {
				row = &AggRow{Actor: b.Actor, Verb: b.Verb, Layer: l}
				acc[k] = row
			}
			row.Count++
			row.Self += b.Layer[l]
		}
	}
	out := make([]AggRow, 0, len(acc))
	for _, row := range acc {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		if a.Verb != b.Verb {
			return a.Verb < b.Verb
		}
		return a.Layer < b.Layer
	})
	return out
}
