package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"masq/internal/simtime"
)

// TestDisabledRecorderIsFree: a disabled (or nil) recorder records nothing
// and allocates nothing on the span hot path.
func TestDisabledRecorderIsFree(t *testing.T) {
	for _, r := range []*Recorder{nil, {}} {
		eng := simtime.NewEngine()
		eng.Spawn("w", func(p *simtime.Proc) {
			vc := r.BeginVerb(p, "create_qp", "a")
			sp := r.Begin(p, LayerRNIC, "create_qp")
			p.Sleep(simtime.Us(5))
			sp.End(p)
			r.Interval(p, LayerVirtio, "irq", p.Now(), p.Now().Add(simtime.Us(8)))
			r.Add("c", 1)
			vc.End(p)
		})
		eng.Run()
		if r.Events() != 0 {
			t.Fatalf("disabled recorder recorded %d events", r.Events())
		}
		if r.Enabled() {
			t.Fatal("recorder reports enabled")
		}
		if got := r.Counters(); got != nil {
			t.Fatalf("disabled recorder has counters %v", got)
		}
	}

	// Allocation check: the whole Begin/End + Interval + Add sequence on a
	// disabled recorder must not allocate.
	r := &Recorder{}
	eng := simtime.NewEngine()
	var p *simtime.Proc
	eng.Spawn("w", func(pp *simtime.Proc) { p = pp })
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		vc := r.BeginVerb(p, "create_qp", "a")
		sp := r.Begin(p, LayerRNIC, "create_qp")
		sp.End(p)
		r.Interval(p, LayerVirtio, "irq", 0, 8)
		r.Add("c", 1)
		vc.End(p)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f per op, want 0", allocs)
	}
}

// buildTrace records a nested verbs→virtio→backend→rnic invocation shaped
// like one forwarded MasQ control verb.
func buildTrace(r *Recorder) {
	eng := simtime.NewEngine()
	eng.Spawn("guest", func(p *simtime.Proc) {
		vc := r.BeginVerb(p, "create_qp", "vni7/client") // [0, 35]
		kick := r.Begin(p, LayerVirtio, "kick")          // [0, 8] self 8
		p.Sleep(simtime.Us(8))
		kick.End(p)
		ring := r.Begin(p, LayerVirtio, "ring-service") // [8, 12] self 4
		p.Sleep(simtime.Us(4))
		ring.End(p)
		be := r.Begin(p, LayerMasqBackend, "create_qp") // [12, 27] self 5
		p.Sleep(simtime.Us(3))
		hw := r.Begin(p, LayerRNIC, "create_qp") // [15, 25] self 10
		p.Sleep(simtime.Us(10))
		hw.End(p)
		p.Sleep(simtime.Us(2))
		be.End(p)
		r.Interval(p, LayerVirtio, "irq", p.Now(), p.Now().Add(simtime.Us(8))) // [27, 35] self 8
		p.Sleep(simtime.Us(8))
		vc.End(p)
	})
	eng.Run()
	r.Add("renames", 2)
}

func TestAttributionSelfTimes(t *testing.T) {
	r := New()
	buildTrace(r)

	atts := r.Attribute()
	if len(atts) != 1 {
		t.Fatalf("got %d invocations, want 1", len(atts))
	}
	b := atts[0]
	if b.Verb != "create_qp" || b.Actor != "vni7/client" {
		t.Fatalf("invocation = %+v", b.Invocation)
	}
	if b.Total != simtime.Us(35) {
		t.Fatalf("total = %v, want 35µs", b.Total)
	}
	want := map[Layer]simtime.Duration{
		LayerVerbs:       0, // fully covered by nested spans
		LayerVirtio:      simtime.Us(20),
		LayerMasqBackend: simtime.Us(5),
		LayerRNIC:        simtime.Us(10),
	}
	var sum simtime.Duration
	for l := Layer(0); l < NumLayers; l++ {
		if b.Layer[l] != want[l] {
			t.Errorf("layer %s self = %v, want %v", l, b.Layer[l], want[l])
		}
		sum += b.Layer[l]
	}
	if sum != b.Total {
		t.Errorf("layer selves sum to %v, want total %v", sum, b.Total)
	}
	if b.Named["virtio/kick"] != simtime.Us(8) || b.Named["virtio/irq"] != simtime.Us(8) ||
		b.Named["virtio/ring-service"] != simtime.Us(4) {
		t.Errorf("named virtio selves = %v", b.Named)
	}

	agg := r.Aggregate()
	if len(agg) != 3 {
		t.Fatalf("aggregate rows = %d (%v), want 3", len(agg), agg)
	}
	for _, row := range agg {
		if row.Actor != "vni7/client" || row.Verb != "create_qp" || row.Count != 1 {
			t.Errorf("agg row = %+v", row)
		}
	}
	cs := r.Counters()
	if len(cs) != 1 || cs[0].Name != "renames" || cs[0].Value != 2 {
		t.Errorf("counters = %v", cs)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := New()
	buildTrace(r)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var spans, meta int
	cats := map[string]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			spans++
			cats[ev["cat"].(string)] = true
			args := ev["args"].(map[string]any)
			if args["verb"] != "create_qp" {
				t.Errorf("span %v missing verb arg", ev["name"])
			}
		case "M":
			meta++
		}
	}
	if spans != 6 || meta != 1 {
		t.Fatalf("got %d spans, %d metadata events", spans, meta)
	}
	for _, want := range []string{"verbs", "virtio", "masq-backend", "rnic"} {
		if !cats[want] {
			t.Errorf("missing category %q", want)
		}
	}
}

// TestSetEnabledWindow: events before SetEnabled(true) and after
// SetEnabled(false) are dropped.
func TestSetEnabledWindow(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	eng := simtime.NewEngine()
	eng.Spawn("w", func(p *simtime.Proc) {
		vc := r.BeginVerb(p, "warmup", "a")
		p.Sleep(simtime.Us(1))
		vc.End(p)
		r.SetEnabled(true)
		vc = r.BeginVerb(p, "measured", "a")
		p.Sleep(simtime.Us(1))
		vc.End(p)
	})
	eng.Run()
	atts := r.Attribute()
	if len(atts) != 1 || atts[0].Verb != "measured" {
		t.Fatalf("attributions = %+v", atts)
	}
}
