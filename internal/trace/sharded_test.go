package trace

import (
	"bytes"
	"testing"

	"masq/internal/simtime"
)

// record drives the same two-actor verb workload on either a plain engine
// (both actors on shard 0) or a 2-shard engine (one actor per shard) and
// returns the recorder. The virtual timings are identical by construction;
// only the lane placement differs.
func record(shards int) *Recorder {
	se := simtime.NewSharded(shards)
	r := NewSharded(shards)
	for i := 0; i < 2; i++ {
		i := i
		eng := se.Shard(i % shards)
		actor := []string{"vni1/a", "vni1/b"}[i]
		eng.Spawn(actor, func(p *simtime.Proc) {
			p.Sleep(simtime.Duration(10 * (i + 1))) // stagger starts
			for k := 0; k < 3; k++ {
				vc := r.BeginVerb(p, "create_qp", actor)
				sp := r.Begin(p, LayerRNIC, "fw")
				p.Sleep(simtime.Us(2))
				sp.End(p)
				r.Interval(p, LayerVirtio, "irq", p.Now(), p.Now().Add(simtime.Us(1)))
				vc.End(p)
				r.Add("qp_created", 1)
				p.Sleep(simtime.Us(5))
			}
		})
	}
	se.Run()
	return r
}

// TestShardedRecorderMatchesOracle: the merged view of a 2-lane recorder
// (actors on separate shards) is byte-identical — Chrome export,
// attribution, aggregates, counters — to the single-lane recording of the
// same workload.
func TestShardedRecorderMatchesOracle(t *testing.T) {
	oracle, sharded := record(1), record(2)
	if oracle.Events() == 0 {
		t.Fatal("no spans recorded; test is vacuous")
	}
	if oracle.Events() != sharded.Events() {
		t.Fatalf("span counts differ: %d vs %d", oracle.Events(), sharded.Events())
	}

	var a, b bytes.Buffer
	if err := oracle.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("chrome export diverges:\noracle:\n%s\nsharded:\n%s", a.String(), b.String())
	}

	ao, as := oracle.Attribute(), sharded.Attribute()
	if len(ao) != len(as) || len(ao) == 0 {
		t.Fatalf("attribution lengths: %d vs %d", len(ao), len(as))
	}
	for i := range ao {
		if ao[i].ID != as[i].ID || ao[i].Verb != as[i].Verb || ao[i].Actor != as[i].Actor ||
			ao[i].Start != as[i].Start || ao[i].Total != as[i].Total || ao[i].Layer != as[i].Layer {
			t.Fatalf("breakdown %d diverges:\n%+v\nvs\n%+v", i, ao[i], as[i])
		}
	}

	co, cs := oracle.Counters(), sharded.Counters()
	if len(co) != len(cs) {
		t.Fatalf("counter sets differ: %v vs %v", co, cs)
	}
	for i := range co {
		if co[i] != cs[i] {
			t.Fatalf("counter %d: %v vs %v", i, co[i], cs[i])
		}
	}
}
