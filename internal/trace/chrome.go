package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (the format chrome://tracing and Perfetto load directly).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports all closed spans as a Chrome trace-event JSON
// array. Each simulation Proc becomes a "thread" (tid assigned by first
// appearance, named via metadata events); span categories are layer names,
// and spans carry the owning verb invocation in args. Timestamps are
// virtual microseconds since simulation start.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	tids := map[string]int{}
	if r != nil {
		spans, invs := r.merged()
		for _, s := range spans {
			if s.open {
				continue
			}
			tid, ok := tids[s.proc]
			if !ok {
				tid = len(tids) + 1
				tids[s.proc] = tid
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
					Args: map[string]any{"name": s.proc},
				})
			}
			args := map[string]any{"layer": s.layer.String()}
			if s.inv >= 0 {
				inv := invs[s.inv]
				args["verb"] = inv.Verb
				args["actor"] = inv.Actor
			}
			events = append(events, chromeEvent{
				Name: s.name, Cat: s.layer.String(), Ph: "X",
				Ts:  float64(s.start) / 1e3,
				Dur: float64(s.end.Sub(s.start)) / 1e3,
				Pid: 1, Tid: tid, Args: args,
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
