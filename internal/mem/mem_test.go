package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

const gb = 1 << 30

func TestPhysReserveAccounting(t *testing.T) {
	p := NewPhys(4 * gb)
	if p.Capacity() != 4*gb || p.Free() != 4*gb {
		t.Fatalf("capacity %d free %d", p.Capacity(), p.Free())
	}
	if err := p.Reserve(3 * gb); err != nil {
		t.Fatal(err)
	}
	if p.Reserved() != 3*gb || p.Free() != gb {
		t.Fatalf("reserved %d free %d", p.Reserved(), p.Free())
	}
	if err := p.Reserve(2 * gb); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-reserve err = %v", err)
	}
	p.Release(gb)
	if err := p.Reserve(2 * gb); err != nil {
		t.Fatal(err)
	}
}

func TestPhysReadWriteAcrossPages(t *testing.T) {
	p := NewPhys(gb)
	hpa, err := p.AllocPages(3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	off := hpa + 50 // straddle page boundaries
	if err := p.Write(off, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestPhysLazyBacking(t *testing.T) {
	p := NewPhys(96 * gb) // must not actually allocate 96 GB
	if err := p.Reserve(90 * gb); err != nil {
		t.Fatal(err)
	}
	if len(p.pages) != 0 {
		t.Fatalf("pages allocated without touch: %d", len(p.pages))
	}
	hpa, _ := p.AllocPages(1)
	p.Write(hpa, []byte{1})
	if len(p.pages) != 1 {
		t.Fatalf("pages = %d, want 1", len(p.pages))
	}
}

func newHostSpace(t *testing.T) (*Phys, *AddrSpace) {
	t.Helper()
	phys := NewPhys(gb)
	host := NewAddrSpace("hva", phys, phys.AllocPages)
	return phys, host
}

func TestAddrSpaceAllocReadWrite(t *testing.T) {
	_, host := newHostSpace(t)
	va, err := host.Alloc(10000)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello through the page table")
	if err := host.Write(va+123, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := host.Read(va+123, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestAddrSpaceUnmappedAccess(t *testing.T) {
	_, host := newHostSpace(t)
	if err := host.Read(0xdead000, make([]byte, 4)); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v", err)
	}
	if _, err := host.Translate(0xdead000); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v", err)
	}
}

// TestLayeredSpaces builds the full GVA→GPA→HVA→HPA chain of Appendix B and
// checks that a write through the top layer is visible at the resolved
// physical address.
func TestLayeredSpaces(t *testing.T) {
	phys := NewPhys(gb)
	hva := NewAddrSpace("hva", phys, phys.AllocPages) // QEMU's address space
	gpa := NewAddrSpace("gpa", hva, hva.AllocBacking) // guest-physical (VM RAM)
	gva := NewAddrSpace("gva", gpa, gpa.AllocBacking) // application space
	va, err := gva.Alloc(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("three layers down")
	if err := gva.Write(va+PageSize-5, msg); err != nil {
		t.Fatal(err)
	}

	// Manual walk, as MasQ's frontend/backend do it.
	g, err := gva.Translate(va + PageSize - 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := gpa.Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	hpa, err := hva.Translate(h)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := phys.Read(hpa, got[:5]); err != nil { // first 5 bytes end the page
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], msg[:5]) {
		t.Fatalf("phys bytes %q, want %q", got[:5], msg[:5])
	}
}

func TestTranslateRangeMergesContiguous(t *testing.T) {
	phys := NewPhys(gb)
	host := NewAddrSpace("hva", phys, phys.AllocPages)
	va, err := host.Alloc(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := host.TranslateRange(va, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 || ext[0].Len != 4*PageSize {
		t.Fatalf("extents = %+v, want one merged extent", ext)
	}
}

func TestTranslateRangeSplitsDiscontiguous(t *testing.T) {
	phys := NewPhys(gb)
	host := NewAddrSpace("hva", phys, phys.AllocPages)
	p1, _ := phys.AllocPages(1)
	_, _ = phys.AllocPages(1) // hole
	p2, _ := phys.AllocPages(1)
	host.Map(0x10000, p1, 1)
	host.Map(0x10000+PageSize, p2, 1)
	ext, err := host.TranslateRange(0x10000, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 2 {
		t.Fatalf("extents = %+v, want 2", ext)
	}
}

func TestPinUnpin(t *testing.T) {
	_, host := newHostSpace(t)
	va, _ := host.Alloc(2 * PageSize)
	ext, err := host.Pin(va, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) == 0 {
		t.Fatal("no extents from Pin")
	}
	if err := host.Unpin(va, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := host.Unpin(va, 2*PageSize); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("double unpin err = %v", err)
	}
}

func TestPinUnmappedFails(t *testing.T) {
	_, host := newHostSpace(t)
	if _, err := host.Pin(0x999000, PageSize); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	_, host := newHostSpace(t)
	if err := host.Map(0x1001, 0x2000, 1); err == nil {
		t.Fatal("unaligned Map accepted")
	}
	if err := host.Map(0x1000, 0x2001, 1); err == nil {
		t.Fatal("unaligned Map accepted")
	}
}

func TestReadWriteQuickRoundtrip(t *testing.T) {
	phys := NewPhys(gb)
	host := NewAddrSpace("hva", phys, phys.AllocPages)
	va, err := host.Alloc(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 32*1024 {
			data = data[:32*1024]
		}
		addr := va + uint64(off)
		if err := host.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := host.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocZeroSizeGetsOnePage(t *testing.T) {
	_, host := newHostSpace(t)
	va, err := host.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Write(va, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateToCopiesPagesAndPreservesVAs(t *testing.T) {
	phys := NewPhys(gb)
	hva := NewAddrSpace("hva", phys, phys.AllocPages)
	src := NewAddrSpace("src", hva, hva.AllocBacking)
	va1, _ := src.Alloc(2 * PageSize)
	va2, _ := src.Alloc(PageSize)
	src.Write(va1+100, []byte("first region"))
	src.Write(va2, []byte("second region"))

	phys2 := NewPhys(gb)
	hva2 := NewAddrSpace("hva2", phys2, phys2.AllocPages)
	dst := NewAddrSpace("dst", hva2, hva2.AllocBacking)
	if err := src.MigrateTo(dst); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 12)
	if err := dst.Read(va1+100, b); err != nil || string(b) != "first region" {
		t.Fatalf("read after migrate: %q, %v", b, err)
	}
	b = make([]byte, 13)
	if err := dst.Read(va2, b); err != nil || string(b) != "second region" {
		t.Fatalf("read after migrate: %q, %v", b, err)
	}
	// New allocations in dst must not collide with migrated VAs.
	va3, err := dst.Alloc(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if va3 == va1 || va3 == va2 {
		t.Fatalf("post-migration alloc reused VA %#x", va3)
	}
}

func TestMigrateRefusesPinnedMemory(t *testing.T) {
	phys := NewPhys(gb)
	hva := NewAddrSpace("hva", phys, phys.AllocPages)
	src := NewAddrSpace("src", hva, hva.AllocBacking)
	va, _ := src.Alloc(PageSize)
	if _, err := src.PinToPhys(va, PageSize); err != nil {
		t.Fatal(err)
	}
	if !src.Pinned() {
		t.Fatal("Pinned() false after pin")
	}
	dst := NewAddrSpace("dst", hva, hva.AllocBacking)
	if err := src.MigrateTo(dst); err == nil {
		t.Fatal("migration of pinned memory accepted")
	}
	if err := src.UnpinToPhys(va, PageSize); err != nil {
		t.Fatal(err)
	}
	if src.Pinned() {
		t.Fatal("Pinned() true after UnpinToPhys")
	}
	if err := src.MigrateTo(dst); err != nil {
		t.Fatalf("migration after unpin: %v", err)
	}
}

func TestUnpinToPhysReleasesEveryLayer(t *testing.T) {
	phys := NewPhys(gb)
	hva := NewAddrSpace("hva", phys, phys.AllocPages)
	gpa := NewAddrSpace("gpa", hva, hva.AllocBacking)
	gva := NewAddrSpace("gva", gpa, gpa.AllocBacking)
	va, _ := gva.Alloc(3 * PageSize)
	if _, err := gva.PinToPhys(va, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	if !gva.Pinned() || !gpa.Pinned() || !hva.Pinned() {
		t.Fatal("PinToPhys did not pin every layer")
	}
	if err := gva.UnpinToPhys(va, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	if gva.Pinned() || gpa.Pinned() || hva.Pinned() {
		t.Fatal("UnpinToPhys left a layer pinned")
	}
}

func TestMappedPagesSorted(t *testing.T) {
	phys := NewPhys(gb)
	s := NewAddrSpace("s", phys, phys.AllocPages)
	s.Alloc(PageSize)
	s.Alloc(2 * PageSize)
	pages := s.MappedPages()
	if len(pages) != 3 {
		t.Fatalf("pages = %v", pages)
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatalf("pages not sorted: %v", pages)
		}
	}
}
